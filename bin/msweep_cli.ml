(* msweep: command-line driver for the MineSweeper reproduction.

   Subcommands:
     list                      enumerate available benchmarks
     run -b BENCH -s SCHEME    run one benchmark under one scheme
     bench -b BENCH --metrics-out F
                               run and export the metrics registry (JSONL)
     serve -p PROFILE -s SCHEME [--repeat N] [--attack]
                               server-traffic family under open-loop load:
                               p50/p99/p999 total and stall-induced latency,
                               optional vtable hijack under live traffic
     trace -b BENCH [-o F]     run and dump the structured span ring
     compare -b BENCH          run all schemes and print overheads
     figures [--only IDS]      regenerate paper figures (see bench/)
     attack [-s SCHEME]        run the Figure-2 exploit scenarios
     trace-gen -b BENCH -o F   derive a portable trace file from a profile
     trace-replay -i F -s S    replay a trace file against a scheme
     check [-i F] [--oracle] [--corpus] [--races] [--strict]
                               lint traces, audit a differential replay,
                               self-test the lint corpus, race-check
                               recorded synchronization events
     analyze [-i F] [--policy P] [--json F] [--lockset] [--pools] [--strict]
                               static dataflow analysis of traces: dangling
                               exposure, retention prediction, quarantine
                               bounds — no replay; --pools adds the siteflow
                               allocation-site pooling plan with static
                               occupancy/footprint bounds
     explore [--schedules N]   permute sweep boundaries through a fixed
                               mutator script and verify soundness, race
                               freedom and deterministic accounting *)

open Cmdliner

let suites =
  [
    ("spec2006", Workloads.Spec2006.all);
    ("spec2017", Workloads.Spec2017.all);
    ("mimalloc", Workloads.Mimalloc_bench.all);
  ]

let find_profile suite name =
  let pool =
    match List.assoc_opt suite suites with
    | Some ps -> ps
    | None -> invalid_arg ("unknown suite " ^ suite)
  in
  try List.find (fun p -> p.Workloads.Profile.name = name) pool
  with Not_found -> invalid_arg ("unknown benchmark " ^ name)

(* MineSweeper configurations resolve through the canonical preset
   table; the error message already lists the accepted names. *)
let ms_config preset =
  match Minesweeper.Config.of_preset preset with
  | Ok config -> config
  | Error msg -> invalid_arg msg

let scheme_of_string = function
  | "baseline" -> Workloads.Harness.Baseline
  | "minesweeper" -> Workloads.Harness.Mine_sweeper (ms_config "default")
  | ("ms" | "ms-inc" | "mostly" | "incremental" | "incremental-mostly") as p ->
    Workloads.Harness.Mine_sweeper (ms_config p)
  | "markus" -> Workloads.Harness.Mark_us
  | "ffmalloc" | "ff" -> Workloads.Harness.Ff_malloc
  | "dlmalloc" -> Workloads.Harness.Dl_baseline
  | "dlmalloc-minesweeper" | "dl-ms" ->
    Workloads.Harness.Dl_sweeper (ms_config "default")
  | "crcount" -> Workloads.Harness.Cr_count
  | "psweeper" -> Workloads.Harness.P_sweeper
  | "dangsan" -> Workloads.Harness.Dang_san
  | "scudo" -> Workloads.Harness.Scudo_baseline
  | "scudo-minesweeper" | "scudo-ms" ->
    Workloads.Harness.Scudo_sweeper (ms_config "default")
  | "pooled" -> Workloads.Harness.Pooled None
  | s -> invalid_arg ("unknown scheme " ^ s)

(* --domains overrides the marker-domain count of any MineSweeper-family
   scheme (the parallel marking engine, lib/parsweep); other schemes
   have no marking phase to parallelise. *)
let apply_domains n scheme =
  if n <= 1 then scheme
  else
    match scheme with
    | Workloads.Harness.Mine_sweeper c ->
      Workloads.Harness.Mine_sweeper (Minesweeper.Config.with_domains n c)
    | Workloads.Harness.Scudo_sweeper c ->
      Workloads.Harness.Scudo_sweeper (Minesweeper.Config.with_domains n c)
    | Workloads.Harness.Dl_sweeper c ->
      Workloads.Harness.Dl_sweeper (Minesweeper.Config.with_domains n c)
    | _ ->
      invalid_arg "--domains only applies to MineSweeper-family schemes"

let mb x = float_of_int x /. 1048576.

let print_result (r : Workloads.Driver.result) =
  Fmt.pr "benchmark      %s@." r.benchmark;
  Fmt.pr "scheme         %s@." r.scheme;
  Fmt.pr "wall           %d cycles@." r.wall;
  Fmt.pr "app busy       %d cycles@." r.app_busy;
  Fmt.pr "bg busy        %d cycles@." r.background_busy;
  Fmt.pr "stalled        %d cycles@." r.stalled;
  Fmt.pr "cpu util       %.3f@." r.cpu_utilisation;
  Fmt.pr "avg rss        %.2f MiB@." (r.avg_rss /. 1048576.);
  Fmt.pr "peak rss       %.2f MiB@." (mb r.peak_rss);
  Fmt.pr "sweeps         %d@." r.sweeps;
  Fmt.pr "failed frees   %d@." r.failed_frees;
  Fmt.pr "allocs/frees   %d/%d@." r.allocations r.frees;
  Fmt.pr "live at end    %.2f MiB@." (mb r.live_bytes_end);
  List.iter (fun (k, v) -> Fmt.pr "%-14s %.0f@." k v) r.extra

let suite_arg =
  Arg.(value & opt string "spec2006" & info [ "suite" ] ~doc:"Benchmark suite")

let bench_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "b"; "bench" ] ~doc:"Benchmark name")

let scheme_arg =
  Arg.(
    value & opt string "minesweeper"
    & info [ "s"; "scheme" ]
        ~doc:
          "Scheme: baseline, minesweeper, mostly, incremental, markus, \
           ffmalloc, pooled")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Trace length scale")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:
          "Worker domains for the marking phase (1 = the sequential scan; \
           n > 1 shards readable pages across n OCaml domains with \
           identical results)")

let list_cmd =
  let doc = "List available benchmarks" in
  let f () =
    List.iter
      (fun (suite, ps) ->
        Fmt.pr "%s:@." suite;
        List.iter (fun p -> Fmt.pr "  %s@." p.Workloads.Profile.name) ps)
      suites
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const f $ const ())

let run_cmd =
  let doc = "Run one benchmark under one scheme" in
  let f suite bench scheme scale domains =
    let profile = find_profile suite bench in
    let r =
      Workloads.Driver.run ~ops_scale:scale profile
        (apply_domains domains (scheme_of_string scheme))
    in
    print_result r
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const f $ suite_arg $ bench_arg $ scheme_arg $ scale_arg $ domains_arg)

(* Run a benchmark while holding on to the stack that served it, so the
   telemetry registry and span ring survive for export after the run. *)
let run_capturing ~suite ~bench ~scheme ~scale =
  let profile = find_profile suite bench in
  let captured = ref None in
  let result =
    Workloads.Driver.run ~ops_scale:scale
      ~on_build:(fun stack -> captured := Some stack)
      profile scheme
  in
  match !captured with
  | Some stack -> (result, stack)
  | None -> assert false (* on_build always fires *)

let bench_cmd =
  let doc =
    "Run one benchmark under one scheme and export the metrics registry \
     as JSONL. Exports are deterministic: timestamps come from the \
     simulated clock, so identical runs produce byte-identical files."
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~doc:"Write the metrics snapshot (JSONL) here")
  in
  let spans_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans-out" ] ~doc:"Also write the span ring (JSONL) here")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ]
          ~doc:
            "Run the benchmark N times and report the median host \
             wall-clock time. The simulation is deterministic — every \
             repeat must land on the same simulated cycle count (verified) \
             — so repeats denoise only the host-side timing that the \
             speedup figures are guarded against.")
  in
  let config_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ]
          ~doc:
            "Override the scheme with a named configuration: $(b,pooled) \
             (site-keyed pools, identity plan), $(b,pooled-analyzed) \
             (site-keyed pools driven by a flowcheck siteflow plan derived \
             from the benchmark's own trace), or a MineSweeper preset name \
             (default, mostly, incremental, ...)")
  in
  let f suite bench scheme scale domains repeat config metrics_out spans_out =
    let scheme =
      match config with
      | None -> scheme_of_string scheme
      | Some "pooled" -> Workloads.Harness.Pooled None
      | Some "pooled-analyzed" ->
        let profile =
          Workloads.Profile.scale_ops scale (find_profile suite bench)
        in
        let trace = Workloads.Trace.generate profile in
        let plan = Flowcheck.Poolplan.of_trace trace in
        Workloads.Harness.Pooled (Some (Flowcheck.Poolplan.to_alloc_plan plan))
      | Some preset -> Workloads.Harness.Mine_sweeper (ms_config preset)
    in
    let scheme = apply_domains domains scheme in
    let repeat = max 1 repeat in
    let timed =
      Array.init repeat (fun _ ->
          let t0 = Sys.time () in
          let result, stack = run_capturing ~suite ~bench ~scheme ~scale in
          (Sys.time () -. t0, result, stack))
    in
    let _, result, stack = timed.(0) in
    Array.iter
      (fun (_, (r : Workloads.Driver.result), _) ->
        if r.Workloads.Driver.wall <> result.Workloads.Driver.wall then begin
          Fmt.epr
            "FAIL: repeats diverged on the simulated clock (%d vs %d cycles)@."
            r.Workloads.Driver.wall result.Workloads.Driver.wall;
          exit 1
        end)
      timed;
    print_result result;
    if repeat > 1 then begin
      let times = Array.map (fun (dt, _, _) -> dt) timed in
      Array.sort compare times;
      let median =
        if repeat mod 2 = 1 then times.(repeat / 2)
        else (times.((repeat / 2) - 1) +. times.(repeat / 2)) /. 2.0
      in
      Fmt.pr "host wall      %.1f ms median of %d (min %.1f, max %.1f)@."
        (median *. 1e3) repeat
        (times.(0) *. 1e3)
        (times.(repeat - 1) *. 1e3)
    end;
    (match (metrics_out, stack.Workloads.Harness.obs) with
    | Some file, Some reg ->
      Obs.Export.write_file file (Obs.Export.metrics_to_string reg);
      Fmt.pr "metrics        %s (%d metrics)@." file
        (List.length (Obs.Registry.names reg))
    | Some _, None ->
      Fmt.epr "scheme %s keeps no metrics registry@."
        stack.Workloads.Harness.scheme;
      exit 1
    | None, _ -> ());
    match (spans_out, stack.Workloads.Harness.trace) with
    | Some file, Some ring ->
      Obs.Export.write_file file (Obs.Export.spans_to_string ring);
      Fmt.pr "spans          %s (%d retained)@." file
        (Obs.Trace_ring.retained ring)
    | Some _, None ->
      Fmt.epr "scheme %s keeps no trace ring@." stack.Workloads.Harness.scheme;
      exit 1
    | None, _ -> ()
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const f $ suite_arg $ bench_arg $ scheme_arg $ scale_arg $ domains_arg
      $ repeat_arg $ config_arg $ metrics_arg $ spans_arg)

let trace_cmd =
  let doc =
    "Run one benchmark under one scheme and dump the structured span \
     ring (sweep phases, stop-the-world re-scans, quarantine events, \
     allocation stalls) as JSONL."
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~doc:"Output file (default: stdout)")
  in
  let f suite bench scheme scale out =
    let _result, stack =
      run_capturing ~suite ~bench ~scheme:(scheme_of_string scheme) ~scale
    in
    match stack.Workloads.Harness.trace with
    | None ->
      Fmt.epr "scheme %s keeps no trace ring@." scheme;
      exit 1
    | Some ring -> (
      let contents = Obs.Export.spans_to_string ring in
      match out with
      | None -> print_string contents
      | Some file ->
        Obs.Export.write_file file contents;
        Fmt.pr "wrote %s: %d span(s) retained (%d emitted)@." file
          (Obs.Trace_ring.retained ring)
          (Obs.Trace_ring.emitted ring))
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const f $ suite_arg $ bench_arg $ scheme_arg $ scale_arg $ out_arg)

let compare_cmd =
  let doc = "Run all schemes on a benchmark and print overheads" in
  let f suite bench scale =
    let profile = find_profile suite bench in
    let run s = Workloads.Driver.run ~ops_scale:scale profile s in
    let baseline = run Workloads.Harness.Baseline in
    Fmt.pr "%-22s %9s %9s %9s %8s %7s %7s@." bench "slowdown" "mem" "peak"
      "cpu" "sweeps" "failed";
    Fmt.pr "%-22s %9.3f %9.3f %9.3f %8.3f %7d %7d@." "baseline" 1.0 1.0 1.0
      baseline.cpu_utilisation 0 0;
    List.iter
      (fun scheme ->
        let r = run scheme in
        Fmt.pr "%-22s %9.3f %9.3f %9.3f %8.3f %7d %7d@." r.scheme
          (Workloads.Driver.slowdown ~baseline r)
          (Workloads.Driver.memory_overhead ~baseline r)
          (Workloads.Driver.peak_memory_overhead ~baseline r)
          r.cpu_utilisation r.sweeps r.failed_frees)
      [
        Workloads.Harness.Mine_sweeper Minesweeper.Config.default;
        Workloads.Harness.Mine_sweeper Minesweeper.Config.mostly_concurrent;
        Workloads.Harness.Mark_us;
        Workloads.Harness.Ff_malloc;
      ]
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const f $ suite_arg $ bench_arg $ scale_arg)

let figures_cmd =
  let doc = "Regenerate the paper's tables and figures" in
  let only_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~doc:"Comma-separated figure ids (fig1..fig19, scudo, ...)")
  in
  let f only scale =
    let env = Experiments.make_env ~scale ~verbose:true () in
    let wanted =
      match only with
      | None -> (fun _ -> true)
      | Some s ->
        let ids = String.split_on_char ',' s in
        fun key -> List.mem key ids
    in
    List.iter
      (fun (key, render) -> if wanted key then print_string (render env))
      Experiments.all_figures
  in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const f $ only_arg $ scale_arg)

let attack_cmd =
  let doc = "Run the use-after-free exploit scenarios against a scheme" in
  let f scheme =
    let fresh () =
      let machine = Alloc.Machine.create () in
      List.iter
        (fun (base, size) ->
          Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
        Layout.root_regions;
      Workloads.Harness.build (scheme_of_string scheme) ~threads:1 machine
    in
    Fmt.pr "scheme: %s@." scheme;
    Fmt.pr "  vtable hijack      %s@."
      (Attack.describe (Attack.vtable_hijack (fresh ())));
    Fmt.pr "  double-free hijack %s@."
      (Attack.describe (Attack.double_free_hijack (fresh ())));
    Fmt.pr "  unlink corruption  %s@."
      (Attack.describe (Attack.unlink_corruption (fresh ())));
    Fmt.pr "  reuse after clear  %b@." (Attack.reuse_after_clear (fresh ()))
  in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const f $ scheme_arg)

let print_server_result (r : Workloads.Server.result) =
  let q name (v : Workloads.Server.quantiles) =
    Fmt.pr "%-14s p50 %.0f  p99 %.0f  p999 %.0f cycles@." name v.p50 v.p99
      v.p999
  in
  Fmt.pr "profile        %s@." r.profile;
  Fmt.pr "scheme         %s@." r.scheme;
  Fmt.pr "requests       %d offered, %d served%s@." r.requests r.completed
    (if r.oom_killed then " (OOM-killed)" else "");
  Fmt.pr "wall           %d cycles@." r.wall;
  Fmt.pr "app busy       %d cycles@." r.app_busy;
  Fmt.pr "stalled        %d cycles@." r.stalled;
  q "latency" r.latency;
  q "stall latency" r.stall_latency;
  q "queue wait" r.queue_wait;
  q "service" r.service;
  Fmt.pr "max queue      %d@." r.max_queue_depth;
  Fmt.pr "peak rss       %.2f MiB@." (mb r.peak_rss);
  Fmt.pr "sweeps         %d@." r.sweeps;
  Fmt.pr "failed frees   %d@." r.failed_frees;
  Fmt.pr "leaked         %d objects, %d dangling roots left@." r.leaked
    r.dangling_left

let serve_cmd =
  let doc =
    "Run a server-traffic profile under the open-loop load generator and \
     report per-request tail latency (p50/p99/p999 total and stall-induced). \
     The offered arrival timeline is a pure function of (profile, seed): the \
     generator never observes the service side, so allocator stalls surface \
     as queueing delay instead of slowing the load down. Exports are \
     deterministic (simulated clock), so identical runs produce \
     byte-identical files."
  in
  let profile_arg =
    Arg.(
      value & opt string "steady"
      & info [ "p"; "profile" ]
          ~doc:"Server profile: steady, bursty, diurnal, spike, slow-leak")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ]
          ~doc:
            "Run N statistically independent repeats. Repeat 0 keeps the \
             profile's seed; repeat i derives its stream with \
             Rng.split_seed from the top-level seed, so replicas are \
             uncorrelated (correlated replicas bias median-of-N tail \
             estimates) yet the whole family stays deterministic. Reports \
             per-repeat and median-of-N quantiles.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:"Write the metrics snapshot (srv.* alongside ms.*) here")
  in
  let spans_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans-out" ] ~doc:"Also write the span ring (JSONL) here")
  in
  let attack_arg =
    Arg.(
      value & flag
      & info [ "attack" ]
          ~doc:
            "Mount the Figure-2 vtable hijack against the live server: \
             plant a dangling virtual-call site mid-traffic, spray \
             attacker payloads between requests and report the outcome \
             alongside the traffic's tail latency")
  in
  let f profile_name scheme_name scale repeat metrics_out spans_out attack =
    let profile =
      match Workloads.Server.find profile_name with
      | Some p -> p
      | None ->
        invalid_arg
          (Fmt.str "unknown profile %s (expected one of: %s)" profile_name
             (String.concat ", " Workloads.Server.names))
    in
    let profile =
      if scale = 1.0 then profile else Workloads.Server.scale scale profile
    in
    let scheme = scheme_of_string scheme_name in
    if attack then begin
      let machine = Alloc.Machine.create () in
      let stack = Workloads.Harness.build scheme ~threads:1 machine in
      let outcome, result = Attack.hijack_under_traffic ~profile stack in
      print_server_result result;
      Fmt.pr "attack         %s@." (Attack.describe outcome)
    end
    else begin
      let captured = ref None in
      let result =
        Workloads.Server.run
          ~on_build:(fun stack -> captured := Some stack)
          profile scheme
      in
      print_server_result result;
      let repeat = max 1 repeat in
      if repeat > 1 then begin
        let rs = Workloads.Server.run_repeats ~repeats:repeat profile scheme in
        List.iteri
          (fun i (r : Workloads.Server.result) ->
            Fmt.pr
              "repeat %-2d      lat p50/p99/p999 %.0f/%.0f/%.0f  stall \
               %.0f/%.0f/%.0f@."
              i r.latency.p50 r.latency.p99 r.latency.p999
              r.stall_latency.p50 r.stall_latency.p99 r.stall_latency.p999)
          rs;
        let med f = Workloads.Server.median (List.map f rs) in
        Fmt.pr
          "median of %-2d   lat p50 %.0f  p99 %.0f  p999 %.0f  stall p999 \
           %.0f@."
          repeat
          (med (fun (r : Workloads.Server.result) -> r.latency.p50))
          (med (fun (r : Workloads.Server.result) -> r.latency.p99))
          (med (fun (r : Workloads.Server.result) -> r.latency.p999))
          (med (fun (r : Workloads.Server.result) -> r.stall_latency.p999))
      end;
      let stack =
        match !captured with Some s -> s | None -> assert false
      in
      (match (metrics_out, stack.Workloads.Harness.obs) with
      | Some file, Some reg ->
        Obs.Export.write_file file (Obs.Export.metrics_to_string reg);
        Fmt.pr "metrics        %s (%d metrics)@." file
          (List.length (Obs.Registry.names reg))
      | Some _, None ->
        Fmt.epr "scheme %s keeps no metrics registry@."
          stack.Workloads.Harness.scheme;
        exit 1
      | None, _ -> ());
      match (spans_out, stack.Workloads.Harness.trace) with
      | Some file, Some ring ->
        Obs.Export.write_file file (Obs.Export.spans_to_string ring);
        Fmt.pr "spans          %s (%d retained)@." file
          (Obs.Trace_ring.retained ring)
      | Some _, None ->
        Fmt.epr "scheme %s keeps no trace ring@."
          stack.Workloads.Harness.scheme;
        exit 1
      | None, _ -> ()
    end
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const f $ profile_arg $ scheme_arg $ scale_arg $ repeat_arg
      $ metrics_arg $ spans_arg $ attack_arg)

(* --tenants grammar: comma-separated entries, each
   profile:scheme[*count][@weight] — e.g. the default fleet
   "slow-leak:minesweeper,steady:minesweeper*4". *)
let parse_tenants ~quarantine_budget spec =
  let parse_entry entry =
    let entry = String.trim entry in
    let entry, weight =
      match String.index_opt entry '@' with
      | Some i ->
        ( String.sub entry 0 i,
          int_of_string (String.sub entry (i + 1) (String.length entry - i - 1))
        )
      | None -> (entry, 1)
    in
    let entry, count =
      match String.index_opt entry '*' with
      | Some i ->
        ( String.sub entry 0 i,
          int_of_string (String.sub entry (i + 1) (String.length entry - i - 1))
        )
      | None -> (entry, 1)
    in
    let profile_name, scheme_name =
      match String.index_opt entry ':' with
      | Some i ->
        ( String.sub entry 0 i,
          String.sub entry (i + 1) (String.length entry - i - 1) )
      | None -> invalid_arg ("tenant entry needs profile:scheme, got " ^ entry)
    in
    let profile =
      match Workloads.Server.find profile_name with
      | Some p -> p
      | None ->
        invalid_arg
          (Fmt.str "unknown profile %s (expected one of: %s)" profile_name
             (String.concat ", " Workloads.Server.names))
    in
    let scheme = scheme_of_string scheme_name in
    List.init (max 1 count) (fun i ->
        let name =
          if count = 1 then profile_name
          else Fmt.str "%s%d" profile_name i
        in
        Fleet.tenant ~weight ~quarantine_budget ~name profile scheme)
  in
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.concat_map parse_entry

let print_fleet_result (r : Fleet.result) =
  Fmt.pr "tenants        %d  scheduler %s  purge-order %s@."
    (List.length r.tenants)
    (Fleet.scheduler_name r.scheduler)
    (Fleet.purge_order_name r.purge_order);
  Fmt.pr "budget         %.2f MiB@." (mb r.budget);
  Fmt.pr "committed peak %.2f MiB (raw %.2f, overshoot %.2f)@."
    (mb r.committed_peak) (mb r.committed_peak_raw) (mb r.overshoot);
  Fmt.pr "pressure       %d events, %d reclaims, %d oom kills@."
    r.pressure_events r.total_reclaims r.oom_kills;
  Fmt.pr "steps          %d@." r.steps;
  let q label (v : Workloads.Server.quantiles) =
    Fmt.pr "%-14s p50 %.0f  p99 %.0f  p999 %.0f@." label v.p50 v.p99 v.p999
  in
  q "fleet latency" r.agg_latency;
  q "fleet stall" r.agg_stall;
  q "fleet pause" r.agg_pause;
  List.iter
    (fun (t : Fleet.tenant_result) ->
      Fmt.pr
        "  %-10s %-22s %5d/%-5d lat p99 %8.0f  stall p99 %8.0f  injected \
         %8d  reclaims %d%s%s@."
        t.name t.scheme t.server.Workloads.Server.completed
        t.server.Workloads.Server.requests
        t.server.Workloads.Server.latency.p99
        t.server.Workloads.Server.stall_latency.p99 t.injected_stall_cycles
        t.reclaims
        (if t.quarantine_trims > 0 then Fmt.str " trims %d" t.quarantine_trims
         else "")
        (if t.killed then "  KILLED"
         else if t.server.Workloads.Server.oom_killed then "  OOM"
         else ""))
    r.tenants

let fleet_cmd =
  let doc =
    "Run N tenant instances on one simulated machine with a shared \
     physical-page budget. Each tenant is a full stack (own address space, \
     clock, backend) driven by its own open-loop traffic; the machine layer \
     interleaves their steps deterministically, charges one tenant's sweep \
     stalls and marking bandwidth to its neighbours' request windows, and \
     holds the summed committed bytes under the budget by forcing \
     cross-tenant reclaim (largest-quarantine-first or round-robin) with \
     OOM kill as the backstop. Deterministic: identical invocations \
     produce byte-identical exports."
  in
  let tenants_arg =
    Arg.(
      value
      & opt string "slow-leak:minesweeper,steady:minesweeper*4"
      & info [ "t"; "tenants" ]
          ~doc:
            "Tenant spec: comma-separated profile:scheme[*count][@weight] \
             entries (weight = consecutive steps per priority quantum)")
  in
  let budget_arg =
    Arg.(
      value & opt int 192
      & info [ "budget" ] ~doc:"Machine physical-page budget in MiB")
  in
  let scheduler_arg =
    Arg.(
      value & opt string "round-robin"
      & info [ "scheduler" ] ~doc:"Scheduler: round-robin or priority")
  in
  let purge_arg =
    Arg.(
      value & opt string "largest-quarantine"
      & info [ "purge-order" ]
          ~doc:
            "Cross-tenant reclaim order under pressure: largest-quarantine \
             or round-robin")
  in
  let qbudget_arg =
    Arg.(
      value & opt int 0
      & info [ "quarantine-budget" ]
          ~doc:
            "Per-tenant quarantine budget in MiB (0 = unlimited): a tenant \
             overrunning it is reclaimed immediately")
  in
  let seed_arg =
    Arg.(value & opt int 9100 & info [ "seed" ] ~doc:"Fleet seed")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ]
          ~doc:
            "Run N independent repeats; repeat i derives its seed with \
             Rng.split_seed, tenant j within a repeat splits again — one \
             stream per tenant per repeat")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:
            "Write the fleet registry (fleet.*, per-tenant fleet.t<i>.*, \
             cross-tenant fleet.agg.*) as JSONL here")
  in
  let f tenants_spec budget scheduler purge qbudget scale seed repeat
      metrics_out =
    let scheduler =
      match Fleet.scheduler_of_string scheduler with
      | Some s -> s
      | None -> invalid_arg ("unknown scheduler " ^ scheduler)
    in
    let purge_order =
      match Fleet.purge_order_of_string purge with
      | Some p -> p
      | None -> invalid_arg ("unknown purge order " ^ purge)
    in
    let specs =
      parse_tenants ~quarantine_budget:(qbudget * 1024 * 1024) tenants_spec
    in
    if specs = [] then invalid_arg "empty tenant spec";
    let cfg =
      Fleet.config ~budget:(budget * 1024 * 1024) ~scheduler ~purge_order ()
    in
    let repeat = max 1 repeat in
    let results = Fleet.run_repeats ~scale ~seed ~repeats:repeat cfg specs in
    let first = List.hd results in
    print_fleet_result first;
    if repeat > 1 then begin
      List.iteri
        (fun i (r : Fleet.result) ->
          Fmt.pr
            "repeat %-2d      stall p99 %.0f  latency p99 %.0f  peak %.2f \
             MiB  pressure %d@."
            i r.agg_stall.p99 r.agg_latency.p99 (mb r.committed_peak)
            r.pressure_events)
        results;
      let med f = Workloads.Server.median (List.map f results) in
      Fmt.pr "median of %-2d   stall p99 %.0f  latency p99 %.0f@." repeat
        (med (fun (r : Fleet.result) -> r.agg_stall.p99))
        (med (fun (r : Fleet.result) -> r.agg_latency.p99))
    end;
    match metrics_out with
    | Some file ->
      Obs.Export.write_file file
        (Obs.Export.metrics_to_string first.Fleet.registry);
      Fmt.pr "metrics        %s (%d metrics)@." file
        (List.length (Obs.Registry.names first.Fleet.registry))
    | None -> ()
  in
  Cmd.v (Cmd.info "fleet" ~doc)
    Term.(
      const f $ tenants_arg $ budget_arg $ scheduler_arg $ purge_arg
      $ qbudget_arg $ scale_arg $ seed_arg $ repeat_arg $ metrics_arg)

let trace_gen_cmd =
  let doc = "Generate a portable trace file from a benchmark profile" in
  let out_arg =
    Arg.(
      required & opt (some string) None & info [ "o"; "out" ] ~doc:"Output file")
  in
  let f suite bench scale out =
    let profile = find_profile suite bench in
    let profile =
      if scale = 1.0 then profile else Workloads.Profile.scale_ops scale profile
    in
    let trace = Workloads.Trace.generate profile in
    Workloads.Trace.to_file trace out;
    Fmt.pr "wrote %s: %d ops (%d allocations)@." out
      (Workloads.Trace.length trace)
      (Workloads.Trace.allocation_count trace)
  in
  Cmd.v (Cmd.info "trace-gen" ~doc)
    Term.(const f $ suite_arg $ bench_arg $ scale_arg $ out_arg)

let trace_replay_cmd =
  let doc = "Replay a trace file against an allocator scheme" in
  let in_arg =
    Arg.(
      required & opt (some string) None & info [ "i"; "in" ] ~doc:"Trace file")
  in
  let f input scheme =
    let trace = Workloads.Trace.of_file input in
    let machine = Alloc.Machine.create () in
    List.iter
      (fun (base, size) ->
        Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
      Layout.root_regions;
    let stack =
      Workloads.Harness.build (scheme_of_string scheme) ~threads:1 machine
    in
    let executed = Workloads.Trace.replay trace stack in
    Fmt.pr "replayed %d ops of %s under %s@." executed
      trace.Workloads.Trace.name stack.Workloads.Harness.scheme;
    Fmt.pr "wall %d cycles, cpu util %.3f, rss %.2f MiB, sweeps %d@."
      (Sim.Clock.wall machine.Alloc.Machine.clock)
      (Sim.Clock.cpu_utilisation machine.Alloc.Machine.clock)
      (float_of_int (Vmem.committed_bytes machine.Alloc.Machine.mem)
      /. 1048576.)
      (stack.Workloads.Harness.sweeps ())
  in
  Cmd.v (Cmd.info "trace-replay" ~doc) Term.(const f $ in_arg $ scheme_arg)

(* Shared by `check` and `analyze`: both exit non-zero on errors and
   self-test failures always, and additionally on warnings under
   --strict. *)
let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Treat every finding as fatal: exit non-zero on warnings too, \
           not only on errors and self-test failures")

let check_cmd =
  let doc =
    "Lint trace files and (optionally) audit a differential replay. Exits \
     non-zero when any check reports an error or a self-test fails; with \
     $(b,--strict), on any finding at all."
  in
  let files_arg =
    Arg.(
      value & opt_all string []
      & info [ "i"; "in" ] ~doc:"Trace file to check (repeatable)")
  in
  let oracle_arg =
    Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:
            "Also replay each trace under MineSweeper with the differential \
             sweep oracle and the cross-layer invariant audit")
  in
  let corpus_arg =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:
            "Self-test: lint the seeded known-bad corpus (each case must \
             raise exactly its expected rules) and the well-behaved control \
             traces (which must stay clean)")
  in
  let config_arg =
    Arg.(
      value & opt string "default"
      & info [ "config" ]
          ~doc:
            "Oracle configuration: default, mostly, incremental, \
             incremental-mostly, partial")
  in
  let latency_arg =
    Arg.(
      value & opt int 3
      & info [ "latency" ]
          ~doc:
            "Completed sweeps an unreferenced quarantined allocation may \
             survive before the oracle reports it as retained")
  in
  let races_arg =
    Arg.(
      value & flag
      & info [ "races" ]
          ~doc:
            "Also record each trace's synchronization events on a live \
             instrumented stack (under both the default and \
             mostly-concurrent presets) and run the vector-clock \
             happens-before analysis; with --corpus, additionally replay \
             every sweep-protocol mutant, which the checker must flag")
  in
  let f files oracle corpus races config latency domains strict =
    (* --domains routes every replayed configuration through the parallel
       marking engine: the oracle then certifies the parallel mark's
       releases against ground truth, and --races certifies the event
       funnel stays sound under it. *)
    let oracle_config name =
      Minesweeper.Config.with_domains domains (ms_config name)
    in
    let errs = ref 0 in
    let warns = ref 0 in
    let print_diags diags =
      let diags = Sanitizer.Diagnostic.sort diags in
      List.iter
        (fun d ->
          (match d.Sanitizer.Diagnostic.severity with
          | Sanitizer.Diagnostic.Error -> incr errs
          | Sanitizer.Diagnostic.Warning -> incr warns);
          Fmt.pr "  %s@." (Sanitizer.Diagnostic.to_string d))
        diags
    in
    List.iter
      (fun file ->
        let trace = Workloads.Trace.of_file file in
        let diags = Sanitizer.Trace_lint.lint trace in
        Fmt.pr "%s: lint: %d finding(s)@." file (List.length diags);
        print_diags diags;
        if oracle then begin
          let r =
            Sanitizer.Sweep_oracle.run ~config:(oracle_config config)
              ~latency_sweeps:latency trace
          in
          let diags = Sanitizer.Sweep_oracle.findings r in
          Fmt.pr
            "%s: oracle: %d ops, %d allocs, %d frees, %d releases, %d \
             sweeps, %d finding(s)@."
            file r.Sanitizer.Sweep_oracle.ops r.Sanitizer.Sweep_oracle.allocs
            r.Sanitizer.Sweep_oracle.frees r.Sanitizer.Sweep_oracle.releases
            r.Sanitizer.Sweep_oracle.sweeps (List.length diags);
          print_diags diags
        end;
        if races then
          List.iter
            (fun config_name ->
              let r =
                Racecheck.Recorder.run ~config:(oracle_config config_name)
                  ~config_name trace
              in
              Fmt.pr
                "%s: races(%s): %d threads, %d sweeps, %d events, %d window \
                 writes, %d finding(s)@."
                file config_name r.Racecheck.Recorder.threads
                r.Racecheck.Recorder.sweeps r.Racecheck.Recorder.events
                r.Racecheck.Recorder.window_writes
                (List.length r.Racecheck.Recorder.diags);
              print_diags r.Racecheck.Recorder.diags;
              (* The static lockset pass reads the same recorded stream:
                 a correct sweep protocol must come back clean. *)
              let ls = Flowcheck.Lockset.analyze r.Racecheck.Recorder.stream in
              Fmt.pr "%s: lockset(%s): %d finding(s)@." file config_name
                (List.length ls);
              print_diags ls)
            [ "default"; "mostly" ])
      files;
    if corpus then begin
      Fmt.pr "corpus self-test:@.";
      List.iter
        (fun (c : Sanitizer.Corpus.case) ->
          let diags = Sanitizer.Trace_lint.lint c.trace in
          let got =
            List.sort_uniq compare
              (List.map (fun d -> d.Sanitizer.Diagnostic.rule) diags)
          in
          if got = c.expected_rules then
            Fmt.pr "  ok   %-22s [%s]@." c.name (String.concat "; " got)
          else begin
            incr errs;
            Fmt.pr "  FAIL %-22s expected [%s] got [%s]@." c.name
              (String.concat "; " c.expected_rules)
              (String.concat "; " got)
          end)
        Sanitizer.Corpus.cases;
      List.iter
        (fun trace ->
          match Sanitizer.Trace_lint.lint trace with
          | [] ->
            Fmt.pr "  ok   %-22s clean@." trace.Workloads.Trace.name
          | diags ->
            Fmt.pr "  FAIL %-22s %d diagnostic(s) on a well-behaved trace@."
              trace.Workloads.Trace.name (List.length diags);
            print_diags diags)
        (Sanitizer.Corpus.well_behaved ())
    end;
    if corpus && races then begin
      Fmt.pr "protocol mutant self-test:@.";
      List.iter
        (fun (r : Racecheck.Protocol.mutant_result) ->
          if r.passed then
            Fmt.pr "  ok   %-24s [%s]@." r.name (String.concat "; " r.got)
          else begin
            incr errs;
            Fmt.pr "  FAIL %-24s expected [%s] got [%s]@." r.name
              (String.concat "; " r.expected)
              (String.concat "; " r.got)
          end)
        (Racecheck.Protocol.self_test ());
      Fmt.pr "lockset mutant self-test:@.";
      List.iter
        (fun (r : Flowcheck.Lockset.mutant_result) ->
          if r.Flowcheck.Lockset.passed then
            Fmt.pr "  ok   %-24s [%s]@." r.Flowcheck.Lockset.name
              (String.concat "; " r.Flowcheck.Lockset.got)
          else begin
            incr errs;
            Fmt.pr "  FAIL %-24s expected [%s] got [%s]@."
              r.Flowcheck.Lockset.name
              (String.concat "; " r.Flowcheck.Lockset.expected)
              (String.concat "; " r.Flowcheck.Lockset.got)
          end)
        (Flowcheck.Lockset.self_test ())
    end;
    if (not corpus) && files = [] then
      Fmt.pr "nothing to check: pass -i FILE and/or --corpus@.";
    let total = !errs + !warns in
    if total > 0 then
      Fmt.pr "check: %d finding(s) (%d error(s), %d warning(s))@." total !errs
        !warns;
    if !errs > 0 || (strict && total > 0) then exit 1
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const f $ files_arg $ oracle_arg $ corpus_arg $ races_arg $ config_arg
      $ latency_arg $ domains_arg $ strict_arg)

let analyze_cmd =
  let doc =
    "Statically analyze trace files without replay: a single pass over a \
     chunked stream builds an allocation-site points-to graph, reports \
     dangling-pointer exposure with witnessing write chains, predicts \
     conservative-sweep retention, and computes per-policy quarantine \
     bounds. Exits non-zero on errors (with $(b,--strict), on any \
     finding)."
  in
  let files_arg =
    Arg.(
      value & opt_all string []
      & info [ "i"; "in" ] ~doc:"Trace file to analyze (repeatable)")
  in
  let policy_arg =
    Arg.(
      value & opt string "all"
      & info [ "policy" ]
          ~doc:
            "Bounds policies: all, minesweeper, a MineSweeper preset name \
             (mostly, incremental, ...), ffmalloc, markus")
  in
  let chunk_arg =
    Arg.(
      value
      & opt int Workloads.Trace.default_chunk_ops
      & info [ "chunk" ]
          ~doc:
            "Ops per streamed chunk (memory use is proportional to this \
             plus live state, not to trace length)")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:
            "Write one line of deterministic JSON per trace to this file \
             (byte-identical across runs on equal input)")
  in
  let lockset_arg =
    Arg.(
      value & flag
      & info [ "lockset" ]
          ~doc:
            "Also self-test the static lockset pass: the unmutated \
             sweep-protocol emulator must come back clean and every seeded \
             mutant must raise exactly its expected ls-* rules")
  in
  let pools_arg =
    Arg.(
      value & flag
      & info [ "pools" ]
          ~doc:
            "Also run the siteflow allocation-site pooling analysis: \
             partition sites into the fewest pools that can never recycle \
             a danglingly-aliased object, print the plan with its static \
             occupancy/footprint/retired bounds, and include site and pool \
             records in the $(b,--json) document (schema v2)")
  in
  let f files policy chunk json lockset pools strict =
    let policies =
      match Flowcheck.Policy.of_string policy with
      | Ok ps -> ps
      | Error msg -> invalid_arg msg
    in
    let errs = ref 0 in
    let warns = ref 0 in
    let json_lines = ref [] in
    List.iter
      (fun file ->
        let stream =
          Workloads.Trace.stream_of_file ~chunk_ops:(max 1 chunk) file
        in
        let r = Flowcheck.Report.analyze ~policies stream in
        print_string (Flowcheck.Report.render r);
        (* Streams are single-shot, so the pooling pass re-opens the
           file; both passes see the identical chunking. *)
        let plan =
          if pools then
            Some
              (Flowcheck.Poolplan.of_stream
                 (Workloads.Trace.stream_of_file ~chunk_ops:(max 1 chunk) file))
          else None
        in
        Option.iter (fun p -> print_string (Flowcheck.Poolplan.render p)) plan;
        List.iter
          (fun (d : Sanitizer.Diagnostic.t) ->
            match d.Sanitizer.Diagnostic.severity with
            | Sanitizer.Diagnostic.Error -> incr errs
            | Sanitizer.Diagnostic.Warning -> incr warns)
          r.Flowcheck.Report.findings;
        if json <> None then
          json_lines := Flowcheck.Report.to_json ?pools:plan r :: !json_lines)
      files;
    (match json with
    | Some file ->
      let oc = open_out file in
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (List.rev !json_lines);
      close_out oc;
      Fmt.pr "json           %s (%d trace(s))@." file (List.length files)
    | None -> ());
    if lockset then begin
      Fmt.pr "lockset self-test:@.";
      List.iter
        (fun (r : Flowcheck.Lockset.mutant_result) ->
          if r.Flowcheck.Lockset.passed then
            Fmt.pr "  ok   %-24s [%s]@." r.Flowcheck.Lockset.name
              (String.concat "; " r.Flowcheck.Lockset.got)
          else begin
            incr errs;
            Fmt.pr "  FAIL %-24s expected [%s] got [%s]@."
              r.Flowcheck.Lockset.name
              (String.concat "; " r.Flowcheck.Lockset.expected)
              (String.concat "; " r.Flowcheck.Lockset.got)
          end)
        (Flowcheck.Lockset.self_test ())
    end;
    if files = [] && not lockset then
      Fmt.pr "nothing to analyze: pass -i FILE and/or --lockset@.";
    let total = !errs + !warns in
    if total > 0 then
      Fmt.pr "analyze: %d finding(s) (%d error(s), %d warning(s))@." total
        !errs !warns;
    if !errs > 0 || (strict && total > 0) then exit 1
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const f $ files_arg $ policy_arg $ chunk_arg $ json_arg $ lockset_arg
      $ pools_arg $ strict_arg)

let explore_cmd =
  let doc =
    "Bounded schedule exploration of the sweep protocol: permute sweep \
     start/finish boundaries through a fixed two-mutator script, checking \
     ground-truth release soundness, race freedom and deterministic \
     accounting per schedule. Exits non-zero on any violation or race."
  in
  let schedules_arg =
    Arg.(
      value & opt int 64
      & info [ "schedules" ]
          ~doc:"Schedules to explore (stride-sampled from the full space)")
  in
  let config_arg =
    Arg.(
      value & opt string "mostly"
      & info [ "config" ]
          ~doc:
            "Instance configuration: default, mostly, incremental, \
             incremental-mostly, partial")
  in
  let metrics_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~doc:"Write rc.* metrics as JSONL to this file")
  in
  let f schedules config metrics_out =
    let r =
      Racecheck.Explorer.run ~config:(ms_config config) ~config_name:config
        ~schedules ()
    in
    print_string (Racecheck.Explorer.render r);
    (match metrics_out with
    | Some file ->
      Obs.Export.write_file file
        (Obs.Export.metrics_to_string r.Racecheck.Explorer.registry);
      Fmt.pr "metrics written to %s@." file
    | None -> ());
    let bad =
      List.length (Racecheck.Explorer.violations r)
      + List.length (Racecheck.Explorer.races r)
    in
    if bad > 0 || not (r.Racecheck.Explorer.deterministic && r.Racecheck.Explorer.consistent)
    then exit 1
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const f $ schedules_arg $ config_arg $ metrics_arg)

let () =
  let doc = "MineSweeper reproduction driver" in
  let info = Cmd.info "msweep" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; bench_cmd; serve_cmd; fleet_cmd; trace_cmd;
            compare_cmd; figures_cmd; attack_cmd; trace_gen_cmd;
            trace_replay_cmd; check_cmd; analyze_cmd; explore_cmd;
          ]))
