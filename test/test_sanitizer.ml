(* Sanitizer tests: trace lint vs the seeded corpus, the cross-layer
   invariant audit, and the differential sweep oracle. *)

module Trace = Workloads.Trace
module Lint = Sanitizer.Trace_lint
module Diagnostic = Sanitizer.Diagnostic

let rules_of diags =
  List.sort_uniq compare (List.map (fun d -> d.Diagnostic.rule) diags)

let fresh_machine () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  machine

(* Perlbench (spec2006) has a nonzero dangling rate: frees with live
   pointers still outstanding — exactly what the oracle must referee. *)
let dangling_trace () =
  let profile =
    List.find
      (fun p -> p.Workloads.Profile.name = "perlbench")
      Workloads.Spec2006.all
  in
  Trace.generate (Workloads.Profile.scale_ops 0.05 profile)

(* --- Trace_lint ---------------------------------------------------- *)

let test_corpus_rules () =
  List.iter
    (fun (c : Sanitizer.Corpus.case) ->
      Alcotest.(check (list string))
        (c.name ^ " raises exactly its expected rules")
        c.expected_rules
        (rules_of (Lint.lint c.trace)))
    Sanitizer.Corpus.cases

let test_corpus_covers_rules () =
  (* Every documented rule is the expectation of at least one case. *)
  let expected =
    List.concat_map
      (fun (c : Sanitizer.Corpus.case) -> c.expected_rules)
      Sanitizer.Corpus.cases
  in
  List.iter
    (fun (rule, _) ->
      Alcotest.(check bool)
        (rule ^ " exercised by the corpus")
        true (List.mem rule expected))
    Lint.rules;
  (* ...and no case expects a rule the lint does not document. *)
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (rule ^ " documented in Trace_lint.rules")
        true
        (List.mem_assoc rule Lint.rules))
    expected

let test_clean_on_stock_traces () =
  List.iter
    (fun trace ->
      Alcotest.(check (list string))
        (trace.Trace.name ^ " is lint-clean")
        []
        (rules_of (Lint.lint trace)))
    (Sanitizer.Corpus.well_behaved ~seeds:[ 1; 2 ] ~scale:0.03 ())

let test_lint_flags_dangling_workload () =
  (* A nonzero dangling rate must surface as unclear-before-free. *)
  let diags = Lint.lint (dangling_trace ()) in
  Alcotest.(check (list string))
    "only the dangling-pointer precondition fires"
    [ "unclear-before-free" ] (rules_of diags);
  Alcotest.(check bool) "warnings, not errors" true (Diagnostic.errors diags = [])

let test_diagnostics_ordered () =
  let diags =
    Lint.lint (Trace.of_string "# msweep-trace v1 o\nx 5\na 0 64\nx 0\nx 0\n")
  in
  let indices = List.map (fun d -> d.Diagnostic.op_index) diags in
  Alcotest.(check (list int)) "op order" [ 0; 3 ] indices

(* --- Invariants ---------------------------------------------------- *)

let churn ms n =
  let live = Queue.create () in
  for i = 1 to n do
    let addr = Minesweeper.Instance.malloc ms (16 + (i * 7 mod 2048)) in
    Queue.add addr live;
    if i mod 3 = 0 && Queue.length live > 8 then
      Minesweeper.Instance.free ms (Queue.take live);
    Minesweeper.Instance.tick ms
  done;
  Queue.iter (fun addr -> Minesweeper.Instance.free ms addr) live

let test_invariants_hold_on_live_stack () =
  let ms = Minesweeper.Instance.create (fresh_machine ()) in
  churn ms 4000;
  Alcotest.(check (list string)) "mid-run audit clean" []
    (List.map Diagnostic.to_string (Sanitizer.Invariants.audit ms));
  Minesweeper.Instance.drain ms;
  Alcotest.(check (list string)) "post-drain audit clean" []
    (List.map Diagnostic.to_string (Sanitizer.Invariants.audit ms))

let test_post_sweep_hook_fires () =
  let ms = Minesweeper.Instance.create (fresh_machine ()) in
  let fired = ref 0 in
  Minesweeper.Instance.set_post_sweep_hook ms (fun () -> incr fired);
  churn ms 4000;
  Minesweeper.Instance.drain ms;
  let sweeps = (Minesweeper.Instance.stats ms).Minesweeper.Stats.sweeps in
  Alcotest.(check bool) "workload swept" true (sweeps > 0);
  Alcotest.(check int) "hook ran once per completed sweep" sweeps !fired

let test_invariants_detect_corruption () =
  (* Negative control: cook the shadow map behind the instance's back.
     A mark beyond the wilderness can never arise from a real sweep, so
     the audit must flag it. *)
  let ms = Minesweeper.Instance.create (fresh_machine ()) in
  churn ms 500;
  let shadow = Minesweeper.Instance.shadow ms in
  let wilderness = Alloc.Jemalloc.wilderness (Minesweeper.Instance.jemalloc ms) in
  Minesweeper.Shadow.mark shadow wilderness;
  let diags = Sanitizer.Invariants.audit ms in
  Alcotest.(check bool) "shadow corruption detected" true
    (Diagnostic.has_rule "inv-shadow" diags)

(* --- Sweep_oracle -------------------------------------------------- *)

let test_oracle_sound_on_default () =
  let r = Sanitizer.Sweep_oracle.run (dangling_trace ()) in
  Alcotest.(check int) "allocations replayed" 13_000
    r.Sanitizer.Sweep_oracle.allocs;
  Alcotest.(check bool) "sweeps completed" true
    (r.Sanitizer.Sweep_oracle.sweeps > 0);
  Alcotest.(check bool) "quarantine recycled memory" true
    (r.Sanitizer.Sweep_oracle.releases > 0);
  Alcotest.(check (list string)) "no soundness violations" []
    (List.map Diagnostic.to_string r.Sanitizer.Sweep_oracle.soundness);
  Alcotest.(check (list string)) "no invariant findings" []
    (List.map Diagnostic.to_string r.Sanitizer.Sweep_oracle.audit)

let test_oracle_flags_unsound_config () =
  (* Quarantine without sweeping recycles entries on a timer, dangling
     pointers or not — the oracle must catch it red-handed. *)
  let r =
    Sanitizer.Sweep_oracle.run
      ~config:Minesweeper.Config.partial_quarantine (dangling_trace ())
  in
  Alcotest.(check bool) "unsound releases detected" true
    (Diagnostic.has_rule "oracle-unsound" r.Sanitizer.Sweep_oracle.soundness)

let test_oracle_sound_on_clean_trace () =
  let trace =
    match Sanitizer.Corpus.well_behaved ~seeds:[ 3 ] ~scale:0.05 () with
    | t :: _ -> t
    | [] -> Alcotest.fail "no control traces"
  in
  let r = Sanitizer.Sweep_oracle.run trace in
  Alcotest.(check (list string)) "sound" []
    (List.map Diagnostic.to_string r.Sanitizer.Sweep_oracle.soundness);
  Alcotest.(check (list string)) "invariants hold" []
    (List.map Diagnostic.to_string r.Sanitizer.Sweep_oracle.audit)

let suite =
  ( "sanitizer",
    [
      Alcotest.test_case "corpus rules exact" `Quick test_corpus_rules;
      Alcotest.test_case "corpus covers every rule" `Quick
        test_corpus_covers_rules;
      Alcotest.test_case "stock traces lint clean" `Quick
        test_clean_on_stock_traces;
      Alcotest.test_case "dangling workload flagged" `Quick
        test_lint_flags_dangling_workload;
      Alcotest.test_case "diagnostics in op order" `Quick
        test_diagnostics_ordered;
      Alcotest.test_case "invariants hold on live stack" `Quick
        test_invariants_hold_on_live_stack;
      Alcotest.test_case "post-sweep hook fires" `Quick
        test_post_sweep_hook_fires;
      Alcotest.test_case "invariants detect corruption" `Quick
        test_invariants_detect_corruption;
      Alcotest.test_case "oracle: default config sound" `Quick
        test_oracle_sound_on_default;
      Alcotest.test_case "oracle: unsound config flagged" `Quick
        test_oracle_flags_unsound_config;
      Alcotest.test_case "oracle: clean trace sound" `Quick
        test_oracle_sound_on_clean_trace;
    ] )
