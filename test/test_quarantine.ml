(* Quarantine tests: buffers, dedup, accounting and the failed-free
   bookkeeping behind the trigger arithmetic. *)

let fresh ?(threads = 1) () =
  let machine = Alloc.Machine.create () in
  (machine, Minesweeper.Quarantine.create machine ~threads)

let entry ?(unmapped = 0) addr usable =
  { Minesweeper.Quarantine.addr; usable; unmapped_len = unmapped; failures = 0 }

let test_push_and_contains () =
  let _, q = fresh () in
  Minesweeper.Quarantine.push q ~thread:0 (entry 0x1000 64);
  Alcotest.(check bool) "contains" true
    (Minesweeper.Quarantine.contains q 0x1000);
  Alcotest.(check bool) "other address" false
    (Minesweeper.Quarantine.contains q 0x2000)

let test_buffered_until_flush () =
  let _, q = fresh () in
  Minesweeper.Quarantine.push q ~thread:0 (entry 0x1000 64);
  (* Still in the thread-local buffer: global accounting unchanged. *)
  Alcotest.(check int) "not yet global" 0
    (Minesweeper.Quarantine.fresh_mapped_bytes q);
  Minesweeper.Quarantine.flush_thread q ~thread:0;
  Alcotest.(check int) "flushed" 64
    (Minesweeper.Quarantine.fresh_mapped_bytes q)

let test_auto_flush_at_threshold () =
  let _, q = fresh () in
  for i = 1 to 64 do
    Minesweeper.Quarantine.push q ~thread:0 (entry (0x1000 + (i * 64)) 64)
  done;
  Alcotest.(check int) "auto-flushed at 64 entries" (64 * 64)
    (Minesweeper.Quarantine.fresh_mapped_bytes q)

let test_thread_buffers_independent () =
  let _, q = fresh ~threads:4 () in
  Minesweeper.Quarantine.push q ~thread:0 (entry 0x1000 64);
  Minesweeper.Quarantine.push q ~thread:3 (entry 0x2000 32);
  Minesweeper.Quarantine.flush_thread q ~thread:0;
  Alcotest.(check int) "only thread 0 flushed" 64
    (Minesweeper.Quarantine.fresh_mapped_bytes q);
  Minesweeper.Quarantine.flush_all q;
  Alcotest.(check int) "all flushed" 96
    (Minesweeper.Quarantine.fresh_mapped_bytes q)

let test_lock_in_takes_everything () =
  let _, q = fresh () in
  Minesweeper.Quarantine.push q ~thread:0 (entry 0x1000 64);
  Minesweeper.Quarantine.push q ~thread:0 (entry 0x2000 32);
  let locked = Minesweeper.Quarantine.lock_in q in
  Alcotest.(check int) "both locked" 2 (List.length locked);
  Alcotest.(check int) "accounting reset" 0
    (Minesweeper.Quarantine.fresh_mapped_bytes q);
  (* Dedup survives lock-in: the entries are still quarantined. *)
  Alcotest.(check bool) "still deduped" true
    (Minesweeper.Quarantine.contains q 0x1000)

let test_release_forgets () =
  let _, q = fresh () in
  let e = entry 0x1000 64 in
  Minesweeper.Quarantine.push q ~thread:0 e;
  let locked = Minesweeper.Quarantine.lock_in q in
  List.iter (Minesweeper.Quarantine.release q) locked;
  Alcotest.(check bool) "released" false
    (Minesweeper.Quarantine.contains q 0x1000)

let test_requeue_failed_accounting () =
  let _, q = fresh () in
  let e = entry 0x1000 64 in
  Minesweeper.Quarantine.push q ~thread:0 e;
  let locked = Minesweeper.Quarantine.lock_in q in
  List.iter (Minesweeper.Quarantine.requeue_failed q) locked;
  Alcotest.(check int) "failed bytes" 64 (Minesweeper.Quarantine.failed_bytes q);
  Alcotest.(check int) "not counted as fresh" 0
    (Minesweeper.Quarantine.fresh_mapped_bytes q);
  Alcotest.(check int) "failure count" 1 e.Minesweeper.Quarantine.failures;
  (* The failed entry is retried by the next lock-in. *)
  let again = Minesweeper.Quarantine.lock_in q in
  Alcotest.(check int) "retried" 1 (List.length again)

let test_requeue_across_two_sweeps () =
  (* The failed list's contract across consecutive sweeps: a blocked
     entry is retried exactly once per lock_in — never dropped, never
     duplicated — and fresh pushes arriving between the sweeps ride the
     same retry without disturbing it. *)
  let _, q = fresh () in
  let a = entry 0x1000 64 and b = entry 0x2000 32 and c = entry 0x3000 16 in
  List.iter (Minesweeper.Quarantine.push q ~thread:0) [ a; b; c ];
  (* Sweep 1: a and b stay referenced, c releases. *)
  let locked1 = Minesweeper.Quarantine.lock_in q in
  Alcotest.(check int) "sweep 1 locks all three" 3 (List.length locked1);
  Minesweeper.Quarantine.requeue_failed q a;
  Minesweeper.Quarantine.requeue_failed q b;
  Minesweeper.Quarantine.release q c;
  let failed_now =
    let acc = ref [] in
    Minesweeper.Quarantine.iter_failed q (fun e ->
        acc := e.Minesweeper.Quarantine.addr :: !acc);
    List.sort compare !acc
  in
  Alcotest.(check (list int)) "iter_failed sees exactly the requeued pair"
    [ 0x1000; 0x2000 ] failed_now;
  Alcotest.(check int) "one failure recorded on each" 1
    a.Minesweeper.Quarantine.failures;
  (* A fresh free lands between the sweeps. *)
  let d = entry 0x4000 8 in
  Minesweeper.Quarantine.push q ~thread:0 d;
  (* Sweep 2 locks the carried-over failures plus the fresh entry, each
     exactly once, and empties the failed list. *)
  let locked2 =
    List.sort compare
      (List.map
         (fun e -> e.Minesweeper.Quarantine.addr)
         (Minesweeper.Quarantine.lock_in q))
  in
  Alcotest.(check (list int)) "sweep 2 retries both failures plus the push"
    [ 0x1000; 0x2000; 0x4000 ] locked2;
  Minesweeper.Quarantine.iter_failed q (fun _ ->
      Alcotest.fail "failed list must be empty right after lock_in");
  (* b releases this time; a fails again and its count keeps growing. *)
  Minesweeper.Quarantine.requeue_failed q a;
  Minesweeper.Quarantine.release q b;
  Minesweeper.Quarantine.release q d;
  Alcotest.(check int) "second failure accumulates" 2
    a.Minesweeper.Quarantine.failures;
  Alcotest.(check int) "only a's bytes still pending" 64
    (Minesweeper.Quarantine.failed_bytes q);
  Alcotest.(check bool) "released entries forgotten" false
    (Minesweeper.Quarantine.contains q 0x2000);
  Alcotest.(check bool) "failed entry still quarantined" true
    (Minesweeper.Quarantine.contains q 0x1000)

let test_unmapped_accounting () =
  let _, q = fresh () in
  Minesweeper.Quarantine.push q ~thread:0 (entry ~unmapped:4096 0x1000 5000);
  Minesweeper.Quarantine.flush_all q;
  Alcotest.(check int) "mapped share" 904
    (Minesweeper.Quarantine.fresh_mapped_bytes q);
  Alcotest.(check int) "unmapped share" 4096
    (Minesweeper.Quarantine.unmapped_bytes q);
  Alcotest.(check int) "total" 5000 (Minesweeper.Quarantine.total_bytes q)

let test_entry_count () =
  let _, q = fresh ~threads:2 () in
  Minesweeper.Quarantine.push q ~thread:0 (entry 0x1000 8);
  Minesweeper.Quarantine.push q ~thread:1 (entry 0x2000 8);
  Minesweeper.Quarantine.flush_thread q ~thread:0;
  Alcotest.(check int) "counts buffered and global" 2
    (Minesweeper.Quarantine.entry_count q)

let test_double_free_dedup_live () =
  (* End to end through a live instance: the second free of a
     quarantined pointer is absorbed (Section 3's idempotence), visible
     from outside via the new quarantine accessor. *)
  let machine = Alloc.Machine.create () in
  let ms = Minesweeper.Instance.create machine in
  let addr = Minesweeper.Instance.malloc ms 64 in
  Minesweeper.Instance.free ms addr;
  let q = Minesweeper.Instance.quarantine ms in
  Alcotest.(check bool) "first free quarantines" true
    (Minesweeper.Quarantine.contains q addr);
  let entries = Minesweeper.Quarantine.entry_count q in
  let usable =
    match Minesweeper.Quarantine.find q addr with
    | Some e -> e.Minesweeper.Quarantine.usable
    | None -> Alcotest.fail "entry not findable after first free"
  in
  Minesweeper.Instance.free ms addr;
  Minesweeper.Instance.free ms addr;
  Alcotest.(check int) "double frees counted" 2
    (Minesweeper.Instance.stats ms).Minesweeper.Stats.double_frees;
  Alcotest.(check int) "no duplicate entries" entries
    (Minesweeper.Quarantine.entry_count q);
  Alcotest.(check bool) "still quarantined" true
    (Minesweeper.Quarantine.contains q addr);
  (match Minesweeper.Quarantine.find q addr with
  | Some e ->
    Alcotest.(check int) "entry untouched" usable
      e.Minesweeper.Quarantine.usable
  | None -> Alcotest.fail "entry lost by the double free");
  (* A different pointer is unaffected by the dedup. *)
  let other = Minesweeper.Instance.malloc ms 64 in
  Minesweeper.Instance.free ms other;
  Alcotest.(check int) "distinct free is not a double free" 2
    (Minesweeper.Instance.stats ms).Minesweeper.Stats.double_frees;
  Alcotest.(check bool) "distinct free quarantined" true
    (Minesweeper.Quarantine.contains q other)

let prop_accounting_consistent =
  QCheck.Test.make
    ~name:"total = fresh_mapped + failed + unmapped after any sequence"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (pair (int_range 8 4096) bool))
    (fun ops ->
      let _, q = fresh () in
      List.iteri
        (fun i (usable, fail_it) ->
          let e = entry (0x10000 + (i * 8192)) usable in
          Minesweeper.Quarantine.push q ~thread:0 e;
          if fail_it then begin
            Minesweeper.Quarantine.flush_all q;
            ignore fail_it
          end)
        ops;
      Minesweeper.Quarantine.flush_all q;
      Minesweeper.Quarantine.total_bytes q
      = Minesweeper.Quarantine.fresh_mapped_bytes q
        + Minesweeper.Quarantine.failed_bytes q
        + Minesweeper.Quarantine.unmapped_bytes q)

let prop_lock_in_preserves_entries =
  QCheck.Test.make ~name:"lock_in returns exactly the pushed entries"
    ~count:200
    QCheck.(int_range 1 200)
    (fun n ->
      let _, q = fresh () in
      for i = 1 to n do
        Minesweeper.Quarantine.push q ~thread:0 (entry (0x1000 * i) 16)
      done;
      List.length (Minesweeper.Quarantine.lock_in q) = n)

let suite =
  ( "minesweeper.quarantine",
    [
      Alcotest.test_case "push and contains" `Quick test_push_and_contains;
      Alcotest.test_case "buffered until flush" `Quick test_buffered_until_flush;
      Alcotest.test_case "auto flush" `Quick test_auto_flush_at_threshold;
      Alcotest.test_case "thread buffers independent" `Quick
        test_thread_buffers_independent;
      Alcotest.test_case "lock_in takes everything" `Quick
        test_lock_in_takes_everything;
      Alcotest.test_case "release forgets" `Quick test_release_forgets;
      Alcotest.test_case "requeue failed accounting" `Quick
        test_requeue_failed_accounting;
      Alcotest.test_case "requeue across two sweeps" `Quick
        test_requeue_across_two_sweeps;
      Alcotest.test_case "unmapped accounting" `Quick test_unmapped_accounting;
      Alcotest.test_case "entry count" `Quick test_entry_count;
      Alcotest.test_case "double-free dedup on a live instance" `Quick
        test_double_free_dedup_live;
      QCheck_alcotest.to_alcotest prop_accounting_consistent;
      QCheck_alcotest.to_alcotest prop_lock_in_preserves_entries;
    ] )
