(* Open-loop arrival process tests: monotonicity over arbitrary
   (including degenerate) parameters, empirical rates, determinism. *)

module A = Sim.Arrival

let take ?(seed = 11) ?(n = 2000) process =
  A.take (A.make process (Sim.Rng.create seed)) n

let strictly_increasing a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then ok := false
  done;
  !ok

let test_poisson_rate () =
  let a = take ~n:20_000 (A.Poisson { rate = 200. }) in
  Alcotest.(check int) "open loop delivers every arrival" 20_000
    (Array.length a);
  let span = float_of_int a.(Array.length a - 1) in
  let mean_gap = span /. float_of_int (Array.length a) in
  (* rate 200/Mcycle -> mean gap 5000 cycles, within 5%. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.0f ~ 5000" mean_gap)
    true
    (mean_gap > 4750. && mean_gap < 5250.)

let test_zero_rate_is_silent () =
  List.iter
    (fun (name, process) ->
      Alcotest.(check int) name 0 (Array.length (take process)))
    [
      ("poisson 0", A.Poisson { rate = 0. });
      ("poisson -1", A.Poisson { rate = -1. });
      ("poisson nan", A.Poisson { rate = Float.nan });
      ( "mmpp 0/0",
        A.Mmpp { rate_lo = 0.; rate_hi = 0.; dwell_lo = 100; dwell_hi = 100 } );
      ("diurnal 0", A.Diurnal { rate = 0.; period = 1000; depth = 0.5 });
      ( "spike 0 base",
        A.Spike { rate = 0.; spike_at = 10; spike_len = 10; spike_mult = 4. } );
    ]

let test_mmpp_silent_phase () =
  (* Arrivals only inside the Hi phases when rate_lo = 0. *)
  let a =
    take ~n:500
      (A.Mmpp { rate_lo = 0.; rate_hi = 500.; dwell_lo = 10_000; dwell_hi = 10_000 })
  in
  Alcotest.(check bool) "still generates" true (Array.length a > 0);
  Array.iter
    (fun t ->
      (* Phases alternate Lo [0,10k), Hi [10k,20k), ... arrivals land in
         odd 10k windows. *)
      Alcotest.(check bool)
        (Printf.sprintf "arrival %d in a Hi window" t)
        true
        (t / 10_000 mod 2 = 1))
    a

let test_spike_density () =
  let process =
    A.Spike { rate = 100.; spike_at = 1_000_000; spike_len = 1_000_000; spike_mult = 8. }
  in
  let a = take ~n:2_000 process in
  let inside =
    Array.fold_left
      (fun acc t -> if t >= 1_000_000 && t < 2_000_000 then acc + 1 else acc)
      0 a
  in
  let before =
    Array.fold_left (fun acc t -> if t < 1_000_000 then acc + 1 else acc) 0 a
  in
  (* 8x rate inside the window: expect ~800 arrivals inside vs ~100 before. *)
  Alcotest.(check bool)
    (Printf.sprintf "spike density (%d inside vs %d before)" inside before)
    true
    (before > 0 && inside > 4 * before)

let test_determinism () =
  let process =
    A.Mmpp { rate_lo = 50.; rate_hi = 900.; dwell_lo = 30_000; dwell_hi = 20_000 }
  in
  Alcotest.(check bool) "same seed, same timeline" true
    (take ~seed:99 process = take ~seed:99 process);
  Alcotest.(check bool) "different seed, different timeline" true
    (take ~seed:99 process <> take ~seed:100 process)

let test_rates () =
  let close a b = Float.abs (a -. b) < 1e-9 in
  Alcotest.(check bool) "poisson mean" true
    (close (A.mean_rate (A.Poisson { rate = 320. })) 320.);
  Alcotest.(check bool) "diurnal peak" true
    (close (A.peak_rate (A.Diurnal { rate = 100.; period = 10; depth = 0.5 })) 150.);
  Alcotest.(check bool) "spike peak" true
    (close
       (A.peak_rate
          (A.Spike { rate = 100.; spike_at = 0; spike_len = 1; spike_mult = 4. }))
       400.)

(* Arbitrary processes, degenerate corners included. *)
let arb_process =
  let open QCheck.Gen in
  let rate = oneof [ return 0.; return (-5.); float_bound_exclusive 1000.; return 1e12 ] in
  let gen =
    oneof
      [
        map (fun r -> A.Poisson { rate = r }) rate;
        map3
          (fun lo hi (dl, dh) ->
            A.Mmpp { rate_lo = lo; rate_hi = hi; dwell_lo = dl; dwell_hi = dh })
          rate rate
          (pair (int_range (-10) 50_000) (int_range (-10) 50_000));
        map3
          (fun r p d -> A.Diurnal { rate = r; period = p; depth = d })
          rate
          (int_range (-5) 100_000)
          (oneof [ return (-1.); return 0.; float_bound_exclusive 2.; return Float.nan ]);
        map3
          (fun r (at, len) m ->
            A.Spike { rate = r; spike_at = at; spike_len = len; spike_mult = m })
          rate
          (pair (int_range (-10) 100_000) (int_range (-10) 100_000))
          (oneof [ return 0.; return (-2.); float_bound_exclusive 16. ]);
      ]
  in
  QCheck.make gen

let prop_monotone =
  QCheck.Test.make ~name:"timestamps strictly increase for any parameters"
    ~count:200
    QCheck.(pair small_int arb_process)
    (fun (seed, process) ->
      strictly_increasing (take ~seed ~n:300 process))

let prop_independent_of_consumption =
  (* Open-loop: pulling arrivals one at a time (as a server under load
     does) yields the same timeline as pulling them in bulk. *)
  QCheck.Test.make ~name:"timeline independent of how it is consumed"
    ~count:100
    QCheck.(pair small_int arb_process)
    (fun (seed, process) ->
      let bulk = take ~seed ~n:100 process in
      let one_by_one =
        let g = A.make process (Sim.Rng.create seed) in
        let rec go acc k =
          if k = 0 then List.rev acc
          else match A.next g with None -> List.rev acc | Some t -> go (t :: acc) (k - 1)
        in
        Array.of_list (go [] 100)
      in
      bulk = one_by_one)

let suite =
  ( "sim.arrival",
    [
      Alcotest.test_case "poisson empirical rate" `Quick test_poisson_rate;
      Alcotest.test_case "zero/NaN rates are silent" `Quick test_zero_rate_is_silent;
      Alcotest.test_case "mmpp silent phase" `Quick test_mmpp_silent_phase;
      Alcotest.test_case "spike density" `Quick test_spike_density;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "mean/peak rates" `Quick test_rates;
      QCheck_alcotest.to_alcotest prop_monotone;
      QCheck_alcotest.to_alcotest prop_independent_of_consumption;
    ] )
