(* Parallel marking engine tests: the deque and sharding primitives,
   and the headline equivalence property — for every workload preset and
   every domain count, the parallel mark produces exactly the sequential
   paths' shadow set, counters, release decisions and simulated timing.
   The only permitted difference is the [par.*] telemetry. *)

module I = Minesweeper.Instance
module C = Minesweeper.Config
module Shadow = Minesweeper.Shadow
module Deque = Parsweep.Deque

(* --- Deque ----------------------------------------------------------- *)

let test_deque_orders () =
  let d = Deque.create () in
  for i = 1 to 5 do
    Deque.push d i
  done;
  Alcotest.(check int) "length" 5 (Deque.length d);
  Alcotest.(check (option int)) "owner pops LIFO" (Some 5) (Deque.pop d);
  Alcotest.(check (option int)) "thief steals FIFO" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "next steal" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "next pop" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "last item either way" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal d)

let test_deque_growth () =
  let d = Deque.create () in
  for i = 0 to 999 do
    Deque.push d i
  done;
  let seen = ref [] in
  let rec drain () =
    match Deque.steal d with
    | Some x ->
      seen := x :: !seen;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "grows and steals in FIFO order"
    (List.init 1000 (fun i -> i))
    (List.rev !seen)

let test_deque_concurrent_steal () =
  (* Four thief domains drain one deque concurrently: every item must be
     taken exactly once. *)
  let d = Deque.create () in
  let n = 2000 in
  for i = 0 to n - 1 do
    Deque.push d i
  done;
  let thief () =
    let rec go acc =
      match Deque.steal d with Some x -> go (x :: acc) | None -> acc
    in
    go []
  in
  let pool = Array.init 4 (fun _ -> Domain.spawn thief) in
  let batches = Array.to_list (Array.map Domain.join pool) in
  let all = List.sort compare (List.concat batches) in
  Alcotest.(check int) "deque drained" 0 (Deque.length d);
  Alcotest.(check (list int)) "each item stolen exactly once"
    (List.init n (fun i -> i))
    all

(* --- Sharding and the pool ------------------------------------------ *)

let mk_pages n =
  Array.init n (fun i ->
      { Parsweep.base = i * 4096; bytes = Bytes.create 4096; write_gen = 0 })

let test_shard_canonical () =
  let chunks = Parsweep.shard ~chunk_pages:8 (mk_pages 20) in
  Alcotest.(check int) "chunk count" 3 (Array.length chunks);
  Array.iteri
    (fun i c -> Alcotest.(check int) "dense ids" i c.Parsweep.cid)
    chunks;
  Alcotest.(check (list int)) "consecutive full then short slices"
    [ 8; 8; 4 ]
    (Array.to_list (Array.map (fun c -> Array.length c.Parsweep.pages) chunks));
  Alcotest.(check int) "last chunk bytes" (4 * 4096)
    chunks.(2).Parsweep.chunk_bytes;
  Alcotest.(check int) "address order preserved" (8 * 4096)
    chunks.(1).Parsweep.pages.(0).Parsweep.base

let test_map_chunks_results_and_stats () =
  let chunks = Parsweep.shard ~chunk_pages:4 (mk_pages 37) in
  let scan (c : Parsweep.chunk) = c.Parsweep.cid * 10 in
  let expect = Array.map scan chunks in
  List.iter
    (fun domains ->
      let per_chunk, stats = Parsweep.map_chunks ~domains ~scan chunks in
      Alcotest.(check (array int))
        (Printf.sprintf "results in chunk order at %d domains" domains)
        expect per_chunk;
      Alcotest.(check int) "all bytes seeded" (37 * 4096)
        (Array.fold_left ( + ) 0 stats.Parsweep.seeded_bytes);
      Alcotest.(check int) "chunks counted" (Array.length chunks)
        stats.Parsweep.chunks)
    [ 1; 2; 4; 8 ];
  let _, seq_stats = Parsweep.map_chunks ~domains:1 ~scan chunks in
  Alcotest.(check int) "no steals inline" 0 seq_stats.Parsweep.stolen

let test_critical_path () =
  (* Perfectly balanced 4-way seeding of 4 MiB: a single marker at
     0.25 cyc/B costs 1Mi cycles per domain, but the DRAM floor over the
     whole 4 MiB (0.0625 cyc/B) costs 256Ki cycles more — the floor
     binds, i.e. scaling saturates. *)
  let mib = 1 lsl 20 in
  let stats =
    {
      Parsweep.domains = 4;
      chunks = 4;
      total_bytes = 4 * mib;
      stolen = 0;
      seeded_bytes = [| mib; mib; mib; mib |];
    }
  in
  Alcotest.(check int) "DRAM floor binds at 4 domains"
    (Sim.Cost.bytes_cost 0.0625 (4 * mib))
    (Parsweep.critical_path_cycles ~single_per_byte:0.25
       ~bandwidth_per_byte:0.0625 stats);
  let solo = { stats with Parsweep.seeded_bytes = [| 4 * mib |] } in
  Alcotest.(check int) "single marker binds at 1 domain"
    (Sim.Cost.bytes_cost 0.25 (4 * mib))
    (Parsweep.critical_path_cycles ~single_per_byte:0.25
       ~bandwidth_per_byte:0.0625 solo)

(* --- Instance-level equivalence -------------------------------------- *)

let fresh ?(config = C.default) () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  (machine, I.create ~config machine)

let granule_set shadow =
  let acc = ref [] in
  Shadow.iter_marked shadow (fun a -> acc := a :: !acc);
  List.sort compare !acc

let root_slot = Layout.globals_base + 64

(* Scripted mixed workload (same shape as test_sweep_equiv): long-lived
   pointer-holding blocks, churn, stores the mark must observe. *)
let run_workload ?(ops = 6_000) machine ms seed =
  let rng = Sim.Rng.create seed in
  let mem = machine.Alloc.Machine.mem in
  let addresses = ref [] in
  let live = ref [] in
  let stable = ref [] in
  for _ = 1 to 64 do
    let p = I.malloc ms 1024 in
    Vmem.store mem p p;
    stable := p :: !stable
  done;
  for i = 1 to ops do
    if Sim.Rng.bool rng 0.55 then begin
      let size = 16 + Sim.Rng.int rng 1024 in
      let p = I.malloc ms size in
      addresses := p :: !addresses;
      if Sim.Rng.bool rng 0.3 then
        Vmem.store mem p (List.nth !stable (Sim.Rng.int rng 64));
      if i mod 97 = 0 then Vmem.store mem root_slot p;
      live := p :: !live
    end
    else
      match !live with
      | p :: rest ->
        I.free ms p;
        live := rest
      | [] -> ()
  done;
  I.drain ms;
  List.rev !addresses

type observation = {
  addresses : int list;
  marks : int list;
  stats : Minesweeper.Stats.t;
  wall : int;
}

let observe config seed =
  let machine, ms = fresh ~config () in
  let addresses = run_workload machine ms seed in
  {
    addresses;
    marks = granule_set (I.shadow ms);
    stats = I.stats ms;
    wall = Sim.Clock.wall machine.Alloc.Machine.clock;
  }

let check_equivalent name reference observed =
  Alcotest.(check (list int))
    (name ^ ": address stream") reference.addresses observed.addresses;
  Alcotest.(check (list int))
    (name ^ ": shadow mark set") reference.marks observed.marks;
  Alcotest.(check int)
    (name ^ ": simulated wall clock") reference.wall observed.wall;
  Alcotest.(check bool)
    (name ^ ": full stats snapshot") true (reference.stats = observed.stats)

(* The tentpole property: every preset, domains in {1, 2, 4, 8}, same
   everything. The domains=1 run takes the historical sequential path,
   so this is parallel-vs-sequential equivalence, not parallel-vs-
   parallel. *)
let test_presets_equivalent () =
  List.iter
    (fun (preset, config) ->
      let reference = observe config 7 in
      Alcotest.(check bool)
        (preset ^ ": workload exercises the path") true
        (reference.stats.Minesweeper.Stats.sweeps > 0 || not config.C.sweeping);
      List.iter
        (fun domains ->
          let observed = observe (C.with_domains domains config) 7 in
          check_equivalent
            (Printf.sprintf "%s @ %d domains" preset domains)
            reference observed)
        [ 2; 4; 8 ])
    C.presets

let prop_equivalent_random =
  QCheck.Test.make
    ~name:"parallel mark = sequential mark on random workloads (4 domains)"
    ~count:8 QCheck.small_int (fun seed ->
      let sequential = { C.default with C.concurrency = C.Sequential } in
      let reference = observe sequential seed in
      let par = observe (C.with_domains 4 sequential) seed in
      reference.addresses = par.addresses
      && reference.marks = par.marks
      && reference.stats = par.stats
      && reference.wall = par.wall)

let prop_incremental_equivalent_random =
  QCheck.Test.make
    ~name:"parallel incremental mark = sequential (4 domains)" ~count:8
    QCheck.small_int (fun seed ->
      let config = { C.incremental with C.concurrency = C.Sequential } in
      let reference = observe config seed in
      let par = observe (C.with_domains 4 config) seed in
      reference.marks = par.marks
      && reference.stats = par.stats
      && reference.wall = par.wall
      && reference.stats.Minesweeper.Stats.sweep_pages_skipped > 0)

let test_par_metrics_presence () =
  let machine, ms = fresh ~config:(C.with_domains 4 C.default) () in
  ignore (run_workload machine ms 17);
  let reg = I.registry ms in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Obs.Registry.mem reg name))
    [
      "par.domains"; "par.chunks"; "par.chunks_stolen"; "par.imbalance";
      "par.mark_cycles_est"; "par.mark_cycles_seq_est";
    ];
  Alcotest.(check (option int)) "domain count exported" (Some 4)
    (Obs.Registry.read reg "par.domains");
  let read name = Option.value ~default:0 (Obs.Registry.read reg name) in
  Alcotest.(check bool) "chunks were marked" true (read "par.chunks" > 0);
  let est = read "par.mark_cycles_est" in
  let seq = read "par.mark_cycles_seq_est" in
  Alcotest.(check bool)
    (Printf.sprintf "modeled critical path shortened (%d < %d)" est seq)
    true
    (est > 0 && est < seq);
  (* ...and none of it leaks into a sequential instance. *)
  let _, ms1 = fresh () in
  Alcotest.(check bool) "domains=1 exports no par.* metrics" false
    (Obs.Registry.mem (I.registry ms1) "par.domains")

let test_reference_marks_agree_parallel () =
  let machine, ms = fresh ~config:(C.with_domains 4 C.incremental) () in
  ignore (run_workload machine ms 23);
  Alcotest.(check (list int))
    "parallel incremental rebuild equals from-scratch full mark"
    (granule_set (I.reference_full_mark ms))
    (granule_set (I.reference_incremental_mark ms));
  Alcotest.(check (list string)) "invariant audit clean under 4 domains" []
    (List.map Sanitizer.Diagnostic.to_string (Sanitizer.Invariants.audit ms))

(* --- Oracle and race-checker certification --------------------------- *)

let perlbench_trace () =
  let profile =
    List.find
      (fun p -> p.Workloads.Profile.name = "perlbench")
      Workloads.Spec2006.all
  in
  Workloads.Trace.generate (Workloads.Profile.scale_ops 0.05 profile)

let test_oracle_certifies_parallel () =
  let trace = perlbench_trace () in
  List.iter
    (fun config ->
      let r =
        Sanitizer.Sweep_oracle.run ~config:(C.with_domains 4 config) trace
      in
      Alcotest.(check bool) "sweeps completed" true
        (r.Sanitizer.Sweep_oracle.sweeps > 0);
      Alcotest.(check (list string)) "no unsound recycles at 4 domains" []
        (List.map Sanitizer.Diagnostic.to_string
           r.Sanitizer.Sweep_oracle.soundness);
      Alcotest.(check (list string)) "invariants hold at 4 domains" []
        (List.map Sanitizer.Diagnostic.to_string
           r.Sanitizer.Sweep_oracle.audit))
    [ C.default; C.incremental ]

let test_races_clean_parallel () =
  let trace = perlbench_trace () in
  List.iter
    (fun (config_name, config) ->
      let r =
        Racecheck.Recorder.run
          ~config:(C.with_domains 4 config)
          ~config_name trace
      in
      Alcotest.(check bool) "events recorded" true
        (r.Racecheck.Recorder.events > 0);
      Alcotest.(check (list string))
        (config_name ^ ": no races under parallel marking") []
        (List.map Sanitizer.Diagnostic.to_string r.Racecheck.Recorder.diags))
    [ ("default", C.default); ("mostly", C.mostly_concurrent) ]

let suite =
  ( "minesweeper.parsweep",
    [
      Alcotest.test_case "deque LIFO pop / FIFO steal" `Quick test_deque_orders;
      Alcotest.test_case "deque growth" `Quick test_deque_growth;
      Alcotest.test_case "deque concurrent steal" `Quick
        test_deque_concurrent_steal;
      Alcotest.test_case "canonical sharding" `Quick test_shard_canonical;
      Alcotest.test_case "map_chunks results + stats" `Quick
        test_map_chunks_results_and_stats;
      Alcotest.test_case "critical-path projection" `Quick test_critical_path;
      Alcotest.test_case "all presets equivalent at 1/2/4/8 domains" `Slow
        test_presets_equivalent;
      QCheck_alcotest.to_alcotest prop_equivalent_random;
      QCheck_alcotest.to_alcotest prop_incremental_equivalent_random;
      Alcotest.test_case "par.* telemetry presence" `Quick
        test_par_metrics_presence;
      Alcotest.test_case "reference marks agree (parallel)" `Quick
        test_reference_marks_agree_parallel;
      Alcotest.test_case "oracle certifies 4-domain marking" `Slow
        test_oracle_certifies_parallel;
      Alcotest.test_case "race checker clean at 4 domains" `Slow
        test_races_clean_parallel;
    ] )
