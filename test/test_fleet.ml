(* Fleet layer tests: shared-budget enforcement, deterministic
   scheduling, interference visibility and registry aggregation. *)

module R = Obs.Registry

let scheme = Workloads.Harness.Mine_sweeper Minesweeper.Config.default
let scale = 0.02

(* Small but real: 1 leaker + 2 steady tenants keeps the quick tests
   under a second while still exercising cross-tenant coupling. *)
let small_specs () = Fleet.noisy_neighbour ~steady:2 scheme

let run_small ?(budget = Fleet.default_budget) ?purge_order ?scheduler () =
  Fleet.run ~scale (Fleet.config ~budget ?purge_order ?scheduler ())
    (small_specs ())

let test_budget_never_exceeded () =
  (* A budget below the natural footprint forces the full pressure
     path: reclaims first, OOM kills as the backstop — and the
     post-enforcement peak must still respect the budget. *)
  let budget = 3 * 1024 * 1024 in
  let r = run_small ~budget () in
  Alcotest.(check bool) "pressure path exercised" true
    (r.Fleet.pressure_events > 0);
  Alcotest.(check bool) "reclaim attempted before killing" true
    (r.Fleet.total_reclaims > 0);
  Alcotest.(check bool) "committed peak within budget" true
    (r.Fleet.committed_peak <= budget);
  Alcotest.(check int) "overshoot is raw minus budget (clamped)"
    (max 0 (r.Fleet.committed_peak_raw - budget))
    r.Fleet.overshoot;
  let killed = List.filter (fun t -> t.Fleet.killed) r.Fleet.tenants in
  Alcotest.(check bool) "budget below the mapping floor forces a kill" true
    (killed <> []);
  List.iter
    (fun (t : Fleet.tenant_result) ->
      Alcotest.(check bool)
        (t.Fleet.name ^ ": killed tenants stop serving") true
        (t.Fleet.server.Workloads.Server.completed
        < t.Fleet.server.Workloads.Server.requests))
    killed;
  Alcotest.(check int) "oom_kills counts killed tenants"
    (List.length killed) r.Fleet.oom_kills

let test_ample_budget_no_pressure () =
  let r = run_small () in
  Alcotest.(check int) "no pressure events" 0 r.Fleet.pressure_events;
  Alcotest.(check int) "no reclaims" 0 r.Fleet.total_reclaims;
  Alcotest.(check int) "no kills" 0 r.Fleet.oom_kills;
  List.iter
    (fun (t : Fleet.tenant_result) ->
      Alcotest.(check bool) (t.Fleet.name ^ " not killed") false t.Fleet.killed)
    r.Fleet.tenants

let test_deterministic_export () =
  let export () = Obs.Export.metrics_to_string (run_small ()).Fleet.registry in
  Alcotest.(check string) "two runs export identical metrics" (export ())
    (export ())

let test_seed_changes_run () =
  let stalled r =
    List.fold_left
      (fun acc (t : Fleet.tenant_result) ->
        acc + t.Fleet.server.Workloads.Server.stalled)
      0 r.Fleet.tenants
  in
  let a = Fleet.run ~scale ~seed:1 (Fleet.config ()) (small_specs ()) in
  let b = Fleet.run ~scale ~seed:2 (Fleet.config ()) (small_specs ()) in
  Alcotest.(check bool) "different seeds give different dynamics" true
    (stalled a <> stalled b)

let test_neighbour_stall_above_isolation () =
  (* The acceptance property: a steady tenant's p99 stall latency inside
     the fleet (beside a leaking, sweeping neighbour) is strictly above
     the same tenant running alone on the same seed. *)
  let r = run_small () in
  List.iteri
    (fun i (t : Fleet.tenant_result) ->
      if i > 0 then begin
        let spec = List.nth (small_specs ()) i in
        let iso =
          Workloads.Server.run ~scale
            ~seed:(Sim.Rng.split_seed ~seed:9100 ~index:i)
            spec.Fleet.profile scheme
        in
        Alcotest.(check bool)
          (t.Fleet.name ^ ": same arrivals as isolation")
          true
          (t.Fleet.server.Workloads.Server.arrivals
          = iso.Workloads.Server.arrivals);
        Alcotest.(check bool)
          (t.Fleet.name ^ ": interference was injected")
          true
          (t.Fleet.injected_stall_cycles > 0);
        Alcotest.(check bool)
          (t.Fleet.name ^ ": fleet p99 stall strictly above isolation")
          true
          (t.Fleet.server.Workloads.Server.stall_latency.Workloads.Server.p99
          > iso.Workloads.Server.stall_latency.Workloads.Server.p99)
      end)
    r.Fleet.tenants

let test_registry_aggregation () =
  let r = run_small () in
  let reg = r.Fleet.registry in
  let read name =
    match R.read reg name with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  (* Per-tenant namespaces exist for every tenant, and the aggregate is
     their bucket-wise / additive union. *)
  let n = List.length r.Fleet.tenants in
  let sum name =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + read (Printf.sprintf "fleet.t%d.%s" i name)
    done;
    !acc
  in
  Alcotest.(check int) "agg requests = sum of tenant requests"
    (sum "srv.requests")
    (read "fleet.agg.srv.requests");
  (match R.find reg "fleet.agg.srv.latency" with
  | Some (R.Histogram h) ->
    let per_tenant = ref 0 in
    for i = 0 to n - 1 do
      match R.find reg (Printf.sprintf "fleet.t%d.srv.latency" i) with
      | Some (R.Histogram th) -> per_tenant := !per_tenant + R.Histogram.count th
      | _ -> Alcotest.failf "tenant %d latency histogram missing" i
    done;
    Alcotest.(check int) "agg latency count = sum of tenant counts"
      !per_tenant (R.Histogram.count h)
  | _ -> Alcotest.fail "fleet.agg.srv.latency missing");
  Alcotest.(check int) "fleet.tenants gauge" n (read "fleet.tenants");
  Alcotest.(check bool) "committed peak recorded" true
    (read "fleet.committed_peak" > 0)

let test_quarantine_budget_trims () =
  (* A tiny per-tenant quarantine budget forces reclaims even when the
     machine budget is ample. *)
  let specs =
    List.map
      (fun (s : Fleet.tenant_spec) ->
        { s with Fleet.quarantine_budget = 64 * 1024 })
      (small_specs ())
  in
  let r = Fleet.run ~scale (Fleet.config ()) specs in
  let trims =
    List.fold_left
      (fun acc (t : Fleet.tenant_result) -> acc + t.Fleet.quarantine_trims)
      0 r.Fleet.tenants
  in
  Alcotest.(check bool) "quarantine budget forced trims" true (trims > 0);
  Alcotest.(check int) "no machine pressure needed" 0 r.Fleet.pressure_events

let test_purge_orders_both_run () =
  let budget = 3 * 1024 * 1024 in
  List.iter
    (fun order ->
      let r = run_small ~budget ~purge_order:order () in
      Alcotest.(check bool)
        (Fleet.purge_order_name order ^ " reclaims under pressure")
        true
        (r.Fleet.total_reclaims > 0))
    [ Fleet.Largest_quarantine; Fleet.Round_robin_purge ]

let test_priority_scheduler () =
  (* Priority scheduling reorders the interleaving deterministically;
     all tenants still finish and the run stays reproducible. *)
  let weighted =
    List.mapi
      (fun i (s : Fleet.tenant_spec) -> { s with Fleet.weight = i + 1 })
      (small_specs ())
  in
  let run () =
    Fleet.run ~scale (Fleet.config ~scheduler:Fleet.Priority ()) weighted
  in
  let a = run () in
  List.iter
    (fun (t : Fleet.tenant_result) ->
      Alcotest.(check bool) (t.Fleet.name ^ " completed requests") true
        (t.Fleet.server.Workloads.Server.completed > 0))
    a.Fleet.tenants;
  Alcotest.(check string) "priority runs are deterministic"
    (Obs.Export.metrics_to_string a.Fleet.registry)
    (Obs.Export.metrics_to_string (run ()).Fleet.registry)

let test_machine_single_shot () =
  let m = Fleet.Machine.create (Fleet.config ()) (small_specs ()) in
  Alcotest.(check bool) "empty tenant list rejected" true
    (try
       ignore (Fleet.Machine.create (Fleet.config ()) []);
       false
     with Invalid_argument _ -> true);
  ignore (Fleet.Machine.run m : Fleet.result);
  Alcotest.(check bool) "second run rejected" true
    (try
       ignore (Fleet.Machine.run m : Fleet.result);
       false
     with Invalid_argument _ -> true)

let test_run_repeats_distinct () =
  let rs = Fleet.run_repeats ~scale ~repeats:2 (Fleet.config ()) (small_specs ()) in
  match rs with
  | [ a; b ] ->
    let arr (r : Fleet.result) =
      (List.hd r.Fleet.tenants).Fleet.server.Workloads.Server.arrivals
    in
    Alcotest.(check bool) "repeats draw independent arrival streams" true
      (arr a <> arr b)
  | _ -> Alcotest.fail "expected 2 results"

let suite =
  ( "fleet",
    [
      Alcotest.test_case "budget never exceeded under pressure" `Quick
        test_budget_never_exceeded;
      Alcotest.test_case "ample budget: no pressure" `Quick
        test_ample_budget_no_pressure;
      Alcotest.test_case "deterministic export" `Quick
        test_deterministic_export;
      Alcotest.test_case "seed changes the run" `Quick test_seed_changes_run;
      Alcotest.test_case "neighbour stall above isolation" `Slow
        test_neighbour_stall_above_isolation;
      Alcotest.test_case "registry aggregation" `Quick
        test_registry_aggregation;
      Alcotest.test_case "quarantine budget trims" `Quick
        test_quarantine_budget_trims;
      Alcotest.test_case "both purge orders reclaim" `Quick
        test_purge_orders_both_run;
      Alcotest.test_case "priority scheduler deterministic" `Quick
        test_priority_scheduler;
      Alcotest.test_case "machine is single-shot" `Quick
        test_machine_single_shot;
      Alcotest.test_case "run_repeats independent" `Quick
        test_run_repeats_distinct;
    ] )
