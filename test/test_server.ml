(* Server-traffic family tests: open-loop independence, determinism,
   split-seed repeats, trace round-trips, attack under live traffic. *)

module Server = Workloads.Server
module Trace = Workloads.Trace

let steady = Option.get (Server.find "steady")
let slow_leak = Option.get (Server.find "slow-leak")

let small = Server.scale 0.02 steady (* 600 requests *)
let ms_scheme = Workloads.Harness.Mine_sweeper Minesweeper.Config.default

let run ?(profile = steady) ?(scale = 0.02) scheme =
  Server.run ~scale profile scheme

let test_completes () =
  let r = run Workloads.Harness.Baseline in
  Alcotest.(check bool) "offered some load" true (r.Server.requests > 100);
  Alcotest.(check int) "served everything" r.Server.requests r.Server.completed;
  Alcotest.(check bool) "not oom" false r.Server.oom_killed;
  Alcotest.(check bool) "clock advanced" true (r.Server.wall > 0)

let test_quantiles_ordered () =
  List.iter
    (fun scheme ->
      let r = run scheme in
      let q = r.Server.latency in
      Alcotest.(check bool) "p50 <= p99" true (q.Server.p50 <= q.Server.p99);
      Alcotest.(check bool) "p99 <= p999" true (q.Server.p99 <= q.Server.p999);
      let s = r.Server.stall_latency in
      Alcotest.(check bool) "stall p50 <= p99 <= p999" true
        (s.Server.p50 <= s.Server.p99 && s.Server.p99 <= s.Server.p999);
      Alcotest.(check bool) "stall tail below total tail" true
        (s.Server.p999 <= q.Server.p999 +. 1e-9))
    [ Workloads.Harness.Baseline; ms_scheme ]

let test_arrivals_monotone () =
  let r = run ms_scheme in
  let a = r.Server.arrivals in
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then Alcotest.fail "arrival timestamps not monotone"
  done

let test_open_loop_independence () =
  (* The offered timeline must be identical whatever the allocator does:
     baseline and MineSweeper have very different service/stall profiles,
     yet see the same arrivals (closed-loop generators would not). *)
  let a = run Workloads.Harness.Baseline in
  let b = run ms_scheme in
  Alcotest.(check bool) "same arrivals across schemes" true
    (a.Server.arrivals = b.Server.arrivals);
  Alcotest.(check bool) "service differs across schemes" true
    (a.Server.wall <> b.Server.wall)

let test_deterministic () =
  let a = run ms_scheme and b = run ms_scheme in
  Alcotest.(check bool) "identical reruns" true (a = b)

let test_repeats_independent () =
  let rs = Server.run_repeats ~scale:0.02 ~repeats:3 steady Workloads.Harness.Baseline in
  (match rs with
  | [ r0; r1; r2 ] ->
    Alcotest.(check bool) "repeat 0 keeps the profile seed" true
      (r0.Server.arrivals = (run Workloads.Harness.Baseline).Server.arrivals);
    Alcotest.(check bool) "repeat 1 is a different stream" true
      (r0.Server.arrivals <> r1.Server.arrivals);
    Alcotest.(check bool) "repeat 2 differs from both" true
      (r2.Server.arrivals <> r0.Server.arrivals
      && r2.Server.arrivals <> r1.Server.arrivals)
  | _ -> Alcotest.fail "expected 3 results");
  Alcotest.(check bool) "repeat family deterministic" true
    (rs = Server.run_repeats ~scale:0.02 ~repeats:3 steady Workloads.Harness.Baseline)

let test_leak_accounting () =
  let r = run ~profile:slow_leak ~scale:0.05 Workloads.Harness.Baseline in
  Alcotest.(check bool) "handlers leaked" true (r.Server.leaked > 0);
  Alcotest.(check bool) "dangling pointers left" true (r.Server.dangling_left > 0)

let test_srv_metrics_registered () =
  let captured = ref None in
  let _ =
    Server.run ~scale:0.02 ~on_build:(fun stack -> captured := Some stack)
      steady ms_scheme
  in
  match !captured with
  | None -> Alcotest.fail "on_build not called"
  | Some stack -> (
    match stack.Workloads.Harness.obs with
    | None -> Alcotest.fail "minesweeper stack has a registry"
    | Some reg ->
      List.iter
        (fun name ->
          Alcotest.(check bool) (name ^ " registered") true
            (Obs.Registry.mem reg name))
        [
          "srv.latency"; "srv.stall_latency"; "srv.queue_wait"; "srv.service";
          "srv.requests"; "srv.completed"; "srv.queue_depth_max";
        ];
      (* ms.* and srv.* share one export. *)
      Alcotest.(check bool) "ms metrics alongside" true
        (List.exists
           (fun n -> String.length n > 3 && String.sub n 0 3 = "ms.")
           (Obs.Registry.names reg)))

let test_median () =
  Alcotest.(check (float 1e-9)) "odd" 2. (Server.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "even" 2.5 (Server.median [ 4.; 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Server.median [])

(* --- trace lowering ------------------------------------------------- *)

let test_to_trace_round_trip () =
  let t = Server.to_trace small in
  let s = Trace.to_string t in
  let t' = Trace.of_string s in
  Alcotest.(check string) "byte-identical re-serialisation" s
    (Trace.to_string t');
  Alcotest.(check int) "op count survives" (Trace.length t) (Trace.length t')

let test_to_trace_replays () =
  let t = Server.to_trace small in
  let machine = Alloc.Machine.create () in
  let stack = Workloads.Harness.build ms_scheme ~threads:1 machine in
  List.iter
    (fun (base, size) -> Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  let executed = Trace.replay t stack in
  Alcotest.(check int) "replay executes every op" (Trace.length t) executed

let prop_stream_chunks =
  (* The chunked stream agrees with the materialised trace at ANY chunk
     size — the consumer cannot tell how the bytes were buffered. *)
  QCheck.Test.make ~name:"server trace streams identically at any chunk size"
    ~count:25
    QCheck.(int_range 1 300)
    (fun chunk_ops ->
      let t = Server.to_trace (Server.scale 0.005 steady) in
      let s = Trace.to_string t in
      let stream = Trace.stream_of_string ~chunk_ops s in
      let ops =
        Trace.fold_stream stream ~init:[] ~f:(fun acc _ op -> op :: acc)
      in
      Array.of_list (List.rev ops) = t.Trace.ops)

(* --- attack under live traffic -------------------------------------- *)

let attack_outcome ?(double_free = false) scheme =
  let machine = Alloc.Machine.create () in
  let stack = Workloads.Harness.build scheme ~threads:1 machine in
  let outcome, result =
    Attack.hijack_under_traffic ~double_free
      ~profile:(Server.scale 0.05 steady) stack
  in
  Alcotest.(check bool) "traffic flowed during the attack" true
    (result.Server.completed > 1000);
  outcome

let test_attack_baseline_exploited () =
  match attack_outcome Workloads.Harness.Baseline with
  | Attack.Exploited -> ()
  | o -> Alcotest.fail ("baseline should be exploited, got: " ^ Attack.describe o)

let test_attack_minesweeper_prevented () =
  (match attack_outcome ms_scheme with
  | Attack.Exploited -> Alcotest.fail "minesweeper must not be exploited"
  | Attack.Prevented_fault | Attack.Benign -> ());
  match attack_outcome ~double_free:true ms_scheme with
  | Attack.Exploited -> Alcotest.fail "double-free variant must not be exploited"
  | Attack.Prevented_fault | Attack.Benign -> ()

let suite =
  ( "workloads.server",
    [
      Alcotest.test_case "serves the offered load" `Quick test_completes;
      Alcotest.test_case "quantiles ordered" `Quick test_quantiles_ordered;
      Alcotest.test_case "arrivals monotone" `Quick test_arrivals_monotone;
      Alcotest.test_case "open-loop independence" `Quick test_open_loop_independence;
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "repeats use split seeds" `Quick test_repeats_independent;
      Alcotest.test_case "leak accounting" `Quick test_leak_accounting;
      Alcotest.test_case "srv.* metrics registered" `Quick test_srv_metrics_registered;
      Alcotest.test_case "median" `Quick test_median;
      Alcotest.test_case "trace round-trip" `Quick test_to_trace_round_trip;
      Alcotest.test_case "trace replays" `Quick test_to_trace_replays;
      QCheck_alcotest.to_alcotest prop_stream_chunks;
      Alcotest.test_case "attack: baseline exploited" `Quick test_attack_baseline_exploited;
      Alcotest.test_case "attack: minesweeper prevented" `Quick test_attack_minesweeper_prevented;
    ] )
