(* Aggregated test runner for the whole reproduction. *)

let () =
  Alcotest.run "minesweeper-repro"
    [
      Test_rng.suite;
      Test_dist.suite;
      Test_arrival.suite;
      Test_clock_sampler.suite;
      Test_machine.suite;
      Test_vmem.suite;
      Test_size_class.suite;
      Test_extent.suite;
      Test_jemalloc.suite;
      Test_model.suite;
      Test_shadow.suite;
      Test_quarantine.suite;
      Test_config.suite;
      Test_obs.suite;
      Test_instance.suite;
      Test_sweep_equiv.suite;
      Test_parsweep.suite;
      Test_pipeline.suite;
      Test_realloc.suite;
      Test_event_log.suite;
      Test_markus.suite;
      Test_ffmalloc.suite;
      Test_scudo.suite;
      Test_dlmalloc.suite;
      Test_ptrtrack.suite;
      Test_workloads.suite;
      Test_trace.suite;
      Test_server.suite;
      Test_fleet.suite;
      Test_sanitizer.suite;
      Test_racecheck.suite;
      Test_attack.suite;
      Test_report.suite;
      Test_experiments.suite;
      Test_flowcheck.suite;
      Test_poolalloc.suite;
      Test_siteflow.suite;
    ]
