(* Experiment-harness smoke tests: every figure must render from a
   heavily scaled-down environment, and the memoisation must hold. *)

let tiny_env () = Experiments.make_env ~scale:0.02 ()

let test_scheme_keys_resolve () =
  let env = tiny_env () in
  List.iter
    (fun scheme ->
      let r = Experiments.run env ~suite:"spec2006" ~bench:"sjeng" ~scheme in
      Alcotest.(check bool)
        (scheme ^ " produced a run")
        true
        (r.Workloads.Driver.wall > 0))
    Experiments.scheme_keys

let test_memoisation () =
  let env = tiny_env () in
  let r1 =
    Experiments.run env ~suite:"spec2006" ~bench:"sjeng" ~scheme:"baseline"
  in
  let r2 =
    Experiments.run env ~suite:"spec2006" ~bench:"sjeng" ~scheme:"baseline"
  in
  Alcotest.(check bool) "same physical result" true (r1 == r2)

let test_unknown_scheme_rejected () =
  let env = tiny_env () in
  Alcotest.check_raises "bad scheme"
    (Invalid_argument "unknown scheme key bogus") (fun () ->
      ignore
        (Experiments.run env ~suite:"spec2006" ~bench:"sjeng" ~scheme:"bogus"))

let data_free_figures = [ "fig1"; "fig2" ]

let test_data_figures_render () =
  let env = tiny_env () in
  List.iter
    (fun key ->
      let f = List.assoc key Experiments.all_figures in
      let s = f env in
      Alcotest.(check bool) (key ^ " non-empty") true (String.length s > 100))
    data_free_figures

let test_fig1_has_all_years () =
  let env = tiny_env () in
  let s = Experiments.fig1 env in
  List.iter
    (fun year ->
      Alcotest.(check bool) (year ^ " present") true
        (Astring_contains.contains s year))
    [ "2012"; "2015"; "2019" ]

let test_fig2_shows_prevention () =
  let env = tiny_env () in
  let s = Experiments.fig2 env in
  Alcotest.(check bool) "baseline exploited" true
    (Astring_contains.contains s "EXPLOITED");
  Alcotest.(check bool) "minesweeper benign" true
    (Astring_contains.contains s "BENIGN")

let test_figure_list_complete () =
  Alcotest.(check (list string)) "all figure ids"
    [
      "fig1"; "fig2"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12";
      "fig13"; "fig14"; "fig15"; "fig16"; "fig17"; "fig18"; "fig19";
      "scudo"; "ptrtrack"; "ablation-threshold"; "ablation-granule";
      "ablation-helpers"; "incremental-sweep"; "parallel-mark";
      "sweep-pipeline"; "static-bounds"; "pooled-landscape"; "tail-latency";
      "fleet-pressure";
    ]
    (List.map fst Experiments.all_figures)

(* A single scaled-down sweep through the simulation-backed figures.
   Marked `Slow so `dune runtest` exercises it while quick cycles can
   filter it out. *)
let test_simulation_figures_render () =
  let env = tiny_env () in
  List.iter
    (fun (key, f) ->
      if not (List.mem key data_free_figures) then begin
        let s = f env in
        Alcotest.(check bool) (key ^ " non-empty") true (String.length s > 200);
        Alcotest.(check bool)
          (key ^ " is a rendered section")
          true
          (Astring_contains.contains s "==== ")
      end)
    Experiments.all_figures

let suite =
  ( "experiments",
    [
      Alcotest.test_case "scheme keys resolve" `Quick test_scheme_keys_resolve;
      Alcotest.test_case "memoisation" `Quick test_memoisation;
      Alcotest.test_case "unknown scheme rejected" `Quick
        test_unknown_scheme_rejected;
      Alcotest.test_case "data figures render" `Quick test_data_figures_render;
      Alcotest.test_case "fig1 years" `Quick test_fig1_has_all_years;
      Alcotest.test_case "fig2 prevention" `Quick test_fig2_shows_prevention;
      Alcotest.test_case "figure list complete" `Quick test_figure_list_complete;
      Alcotest.test_case "all figures render (scaled)" `Slow
        test_simulation_figures_render;
    ] )
