(* Analysis-driven pooled backend (lib/alloc/poolalloc.ml): plan
   validation, site-keyed pool isolation, recycling vs retiring
   behaviour, and the no-cross-pool-reuse guarantee. *)

let machine () =
  let m = Alloc.Machine.create () in
  List.iter
    (fun (base, size) -> Vmem.map m.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  m

let plan_two_pools ~recycles_a ~recycles_b =
  {
    Alloc.Poolalloc.sites = 4;
    pools = 2;
    pool_of_site = [| 0; 1; 0; 1 |];
    recycles = [| recycles_a; recycles_b |];
  }

let test_identity_plan () =
  let p = Alloc.Poolalloc.identity_plan ~sites:3 in
  Alcotest.(check int) "3 pools" 3 p.Alloc.Poolalloc.pools;
  Alcotest.(check (array int)) "identity map" [| 0; 1; 2 |]
    p.Alloc.Poolalloc.pool_of_site;
  Alcotest.(check bool) "all recycle" true
    (Array.for_all Fun.id p.Alloc.Poolalloc.recycles)

let test_plan_validation () =
  let bad pool_of_site recycles =
    {
      Alloc.Poolalloc.sites = 2;
      pools = 2;
      pool_of_site;
      recycles;
    }
  in
  Alcotest.check_raises "pool id out of range"
    (Invalid_argument "Poolalloc.plan: pool id out of range") (fun () ->
      ignore
        (Alloc.Poolalloc.create ~plan:(bad [| 0; 5 |] [| true; true |])
           (machine ())));
  Alcotest.check_raises "recycles length"
    (Invalid_argument "Poolalloc.plan: recycles length <> pools") (fun () ->
      ignore
        (Alloc.Poolalloc.create ~plan:(bad [| 0; 1 |] [| true |]) (machine ())))

let test_recycling_reuses_same_base () =
  let pa = Alloc.Poolalloc.create (machine ()) in
  let a = Alloc.Poolalloc.malloc pa 64 in
  Alloc.Poolalloc.free pa a;
  let b = Alloc.Poolalloc.malloc pa 64 in
  Alcotest.(check int) "freed slot recycled" a b;
  Alcotest.(check bool) "recycled slot is live" true
    (Alloc.Poolalloc.is_live pa b)

let test_retiring_never_reuses () =
  let plan =
    {
      Alloc.Poolalloc.sites = 1;
      pools = 1;
      pool_of_site = [| 0 |];
      recycles = [| false |];
    }
  in
  let pa = Alloc.Poolalloc.create ~plan (machine ()) in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 32 do
    let a = Alloc.Poolalloc.malloc pa 64 in
    Alcotest.(check bool) "retired base never re-served" false
      (Hashtbl.mem seen a);
    Hashtbl.replace seen a ();
    Alloc.Poolalloc.free pa a;
    Alcotest.(check bool) "retired slot is dead" false
      (Alloc.Poolalloc.is_live pa a)
  done;
  Alcotest.(check int) "retired bytes accounted" (32 * 64)
    (Alloc.Poolalloc.retired_bytes pa)

let test_no_cross_pool_reuse () =
  (* Sites 0/2 -> pool 0, sites 1/3 -> pool 1, both recycling: a slot
     freed by pool 0 must never be served to pool 1, even with
     identical size classes. *)
  let plan = plan_two_pools ~recycles_a:true ~recycles_b:true in
  let pa = Alloc.Poolalloc.create ~plan (machine ()) in
  let a = Alloc.Poolalloc.malloc_site pa ~site:0 64 in
  Alloc.Poolalloc.free pa a;
  let b = Alloc.Poolalloc.malloc_site pa ~site:1 64 in
  Alcotest.(check bool) "pool 1 does not get pool 0's slot" true (a <> b);
  Alcotest.(check (option int)) "a belongs to pool 0" (Some 0)
    (Alloc.Poolalloc.pool_of_addr pa a);
  Alcotest.(check (option int)) "b belongs to pool 1" (Some 1)
    (Alloc.Poolalloc.pool_of_addr pa b);
  (* Same-pool site sharing is allowed. *)
  let c = Alloc.Poolalloc.malloc_site pa ~site:2 64 in
  Alcotest.(check int) "site 2 recycles pool 0's slot" a c

let test_large_pool_isolation () =
  let plan = plan_two_pools ~recycles_a:true ~recycles_b:false in
  let pa = Alloc.Poolalloc.create ~plan (machine ()) in
  let size = 5 * Vmem.page_size in
  let a = Alloc.Poolalloc.malloc_site pa ~site:0 size in
  Alloc.Poolalloc.free pa a;
  let b = Alloc.Poolalloc.malloc_site pa ~site:0 size in
  Alcotest.(check int) "large range recycled within pool" a b;
  Alloc.Poolalloc.free pa b;
  let c = Alloc.Poolalloc.malloc_site pa ~site:1 size in
  Alcotest.(check bool) "retiring pool gets fresh space" true (b <> c);
  Alloc.Poolalloc.free pa c;
  let d = Alloc.Poolalloc.malloc_site pa ~site:3 size in
  Alcotest.(check bool) "retired large range never re-served" true (c <> d)

let test_site_clamping () =
  let plan = plan_two_pools ~recycles_a:true ~recycles_b:true in
  let pa = Alloc.Poolalloc.create ~plan (machine ()) in
  let a = Alloc.Poolalloc.malloc_site pa ~site:99 64 in
  Alcotest.(check (option int)) "out-of-range site lands in site 0's pool"
    (Some 0)
    (Alloc.Poolalloc.pool_of_addr pa a)

let test_pool_stats_and_telemetry () =
  let plan = plan_two_pools ~recycles_a:true ~recycles_b:false in
  let pa = Alloc.Poolalloc.create ~plan (machine ()) in
  let a = Alloc.Poolalloc.malloc_site pa ~site:0 100 in
  let b = Alloc.Poolalloc.malloc_site pa ~site:1 100 in
  ignore a;
  Alloc.Poolalloc.free pa b;
  let st = Alloc.Poolalloc.pool_stats pa in
  Alcotest.(check int) "two pools" 2 (Array.length st);
  Alcotest.(check bool) "pool 0 recycles" true
    st.(0).Alloc.Poolalloc.recycling;
  Alcotest.(check bool) "pool 1 retires" false
    st.(1).Alloc.Poolalloc.recycling;
  Alcotest.(check int) "pool 0 live = one 112B slot" 112
    st.(0).Alloc.Poolalloc.live_now_bytes;
  Alcotest.(check int) "pool 1 nothing live" 0
    st.(1).Alloc.Poolalloc.live_now_bytes;
  Alcotest.(check int) "pool 1 retired the slot" 112
    st.(1).Alloc.Poolalloc.retired_bytes;
  Alcotest.(check bool) "footprints are whole slabs" true
    (st.(0).Alloc.Poolalloc.footprint_bytes > 0
    && st.(0).Alloc.Poolalloc.footprint_bytes mod Vmem.page_size = 0);
  let reg = Obs.Registry.create () in
  Alloc.Poolalloc.attach_obs pa reg;
  let read name = Option.value ~default:min_int (Obs.Registry.read reg name) in
  Alcotest.(check int) "pool.pools gauge" 2 (read "pool.pools");
  Alcotest.(check int) "pool.retired_bytes gauge"
    (Alloc.Poolalloc.retired_bytes pa)
    (read "pool.retired_bytes");
  Alcotest.(check int) "alloc.mallocs counter" 2 (read "alloc.mallocs")

let test_allocation_containing () =
  let pa = Alloc.Poolalloc.create (machine ()) in
  let a = Alloc.Poolalloc.malloc pa 64 in
  (match Alloc.Poolalloc.allocation_containing pa (a + 32) with
  | Some (base, usable) ->
    Alcotest.(check int) "interior resolves to base" a base;
    Alcotest.(check int) "usable is the class size" 64 usable
  | None -> Alcotest.fail "interior pointer did not resolve");
  let big = Alloc.Poolalloc.malloc pa (3 * Vmem.page_size) in
  match Alloc.Poolalloc.allocation_containing pa (big + Vmem.page_size) with
  | Some (base, usable) ->
    Alcotest.(check int) "large interior resolves" big base;
    Alcotest.(check int) "large usable" (3 * Vmem.page_size) usable
  | None -> Alcotest.fail "large interior pointer did not resolve"

let suite =
  ( "poolalloc",
    [
      Alcotest.test_case "identity plan" `Quick test_identity_plan;
      Alcotest.test_case "plan validation" `Quick test_plan_validation;
      Alcotest.test_case "recycling reuses same base" `Quick
        test_recycling_reuses_same_base;
      Alcotest.test_case "retiring never reuses" `Quick
        test_retiring_never_reuses;
      Alcotest.test_case "no cross-pool reuse" `Quick test_no_cross_pool_reuse;
      Alcotest.test_case "large pool isolation" `Quick
        test_large_pool_isolation;
      Alcotest.test_case "site clamping" `Quick test_site_clamping;
      Alcotest.test_case "pool stats and telemetry" `Quick
        test_pool_stats_and_telemetry;
      Alcotest.test_case "allocation containing" `Quick
        test_allocation_containing;
    ] )
