(* MineSweeper core-layer tests: the paper's protection guarantees. *)

module I = Minesweeper.Instance
module C = Minesweeper.Config

let fresh ?config () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  (machine, I.create ?config machine)

let root_slot = Layout.globals_base + 64

let churn ms n size =
  for _ = 1 to n do
    let p = I.malloc ms size in
    I.free ms p
  done;
  I.drain ms

(* Proof of release: the victim's address is served again. (Checking
   [is_quarantined] after churn is unreliable — churn re-allocates and
   re-frees released addresses, re-quarantining them legitimately.) *)
let eventually_reused ms size victim =
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < 60_000 do
    let p = I.malloc ms size in
    if p = victim then found := true else I.free ms p;
    incr i
  done;
  !found

let test_free_quarantines () =
  let _, ms = fresh () in
  let p = I.malloc ms 64 in
  Alcotest.(check bool) "not quarantined while live" false (I.is_quarantined ms p);
  I.free ms p;
  Alcotest.(check bool) "quarantined after free" true (I.is_quarantined ms p)

let test_zeroing_on_free () =
  let machine, ms = fresh () in
  let p = I.malloc ms 64 in
  Vmem.store machine.Alloc.Machine.mem p 12345;
  I.free ms p;
  Alcotest.(check int) "payload zeroed in quarantine" 0
    (Vmem.load machine.Alloc.Machine.mem p)

let test_no_immediate_reuse () =
  let _, ms = fresh () in
  let p = I.malloc ms 64 in
  I.free ms p;
  let q = I.malloc ms 64 in
  Alcotest.(check bool) "freed address not served while quarantined" true
    (p <> q)

let test_double_free_idempotent () =
  let _, ms = fresh () in
  let p = I.malloc ms 64 in
  I.free ms p;
  I.free ms p;
  I.free ms p;
  Alcotest.(check int) "double frees counted" 2
    (I.stats ms).Minesweeper.Stats.double_frees

(* The core soundness property (Section 3): while a pointer to a freed
   allocation exists anywhere in memory, no new allocation may alias it. *)
let test_dangling_pointer_blocks_reuse () =
  let machine, ms = fresh () in
  let victim = I.malloc ms 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  I.free ms victim;
  for _ = 1 to 20_000 do
    let p = I.malloc ms 48 in
    Alcotest.(check bool) "no aliasing while dangling pointer lives" true
      (p <> victim);
    I.free ms p
  done;
  Alcotest.(check bool) "survived many sweeps" true
    ((I.stats ms).Minesweeper.Stats.sweeps > 3);
  Alcotest.(check bool) "held in quarantine" true (I.is_quarantined ms victim)

let test_interior_pointer_blocks_reuse () =
  let machine, ms = fresh () in
  let victim = I.malloc ms 256 in
  (* Only an interior pointer survives. *)
  Vmem.store machine.Alloc.Machine.mem root_slot (victim + 128);
  I.free ms victim;
  churn ms 20_000 256;
  Alcotest.(check bool) "interior pointer protects too" true
    (I.is_quarantined ms victim)

let test_past_the_end_pointer_blocks_reuse () =
  let machine, ms = fresh () in
  let victim = I.malloc ms 64 in
  (* C/C++ end() pointer: one past the last byte of the request. The
     extra allocation byte keeps it inside the same shadow range. *)
  Vmem.store machine.Alloc.Machine.mem root_slot (victim + 64);
  I.free ms victim;
  churn ms 20_000 64;
  Alcotest.(check bool) "past-the-end pointer protects" true
    (I.is_quarantined ms victim)

let test_release_after_pointer_cleared () =
  let machine, ms = fresh () in
  let victim = I.malloc ms 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  I.free ms victim;
  churn ms 20_000 48;
  Alcotest.(check bool) "held while pointer lives" true
    (I.is_quarantined ms victim);
  Vmem.store machine.Alloc.Machine.mem root_slot 0;
  Alcotest.(check bool) "reused after clear" true
    (eventually_reused ms 48 victim)

let test_false_pointer_blocks_reuse () =
  let machine, ms = fresh () in
  let victim = I.malloc ms 48 in
  I.free ms victim;
  (* An integer that happens to equal the address ("unlucky data"). *)
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  churn ms 20_000 48;
  Alcotest.(check bool) "conservatively held" true (I.is_quarantined ms victim)

let test_hidden_pointer_not_protected () =
  (* Section 1.2: pointers hidden by arithmetic (XOR lists) are invisible
     to sweeps; MineSweeper explicitly gives no guarantee for them. The
     object is released even though a (hidden) reference exists. *)
  let machine, ms = fresh () in
  let victim = I.malloc ms 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot (victim lxor 0x5A5A5A5A);
  I.free ms victim;
  Alcotest.(check bool) "hidden pointer does not pin the object" true
    (eventually_reused ms 48 victim)

let test_failed_frees_counted () =
  let machine, ms = fresh () in
  let victim = I.malloc ms 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  I.free ms victim;
  churn ms 20_000 48;
  Alcotest.(check bool) "failed frees recorded" true
    ((I.stats ms).Minesweeper.Stats.failed_frees > 0)

let test_cyclic_garbage_is_freed () =
  (* Two freed objects pointing at each other: zeroing breaks the cycle
     (Section 4.1 / Figure 6) so both must eventually be released. *)
  let machine, ms = fresh () in
  let a = I.malloc ms 64 and b = I.malloc ms 64 in
  Vmem.store machine.Alloc.Machine.mem a b;
  Vmem.store machine.Alloc.Machine.mem b a;
  I.free ms a;
  I.free ms b;
  churn ms 20_000 64;
  Alcotest.(check bool) "cycle member a released" false (I.is_quarantined ms a);
  Alcotest.(check bool) "cycle member b released" false (I.is_quarantined ms b)

let test_cycle_leaks_without_zeroing () =
  (* Ablation: with zeroing off and a pointer chain into the cycle left
     dangling, the pair can never free. *)
  let config = { C.default with C.zeroing = false } in
  let machine, ms = fresh ~config () in
  let a = I.malloc ms 64 and b = I.malloc ms 64 in
  Vmem.store machine.Alloc.Machine.mem a b;
  Vmem.store machine.Alloc.Machine.mem b a;
  I.free ms a;
  I.free ms b;
  churn ms 20_000 64;
  Alcotest.(check bool) "cycle stuck in quarantine without zeroing" true
    (I.is_quarantined ms a && I.is_quarantined ms b)

let test_unmapping_releases_pages () =
  let machine, ms = fresh () in
  let big = I.malloc ms 65536 in
  let rss_before = Vmem.committed_bytes machine.Alloc.Machine.mem in
  Vmem.store machine.Alloc.Machine.mem root_slot big;
  I.free ms big;
  let rss_after = Vmem.committed_bytes machine.Alloc.Machine.mem in
  Alcotest.(check bool) "physical pages released in quarantine" true
    (rss_before - rss_after >= 65536);
  Alcotest.(check int) "unmap recorded" 1
    (I.stats ms).Minesweeper.Stats.unmapped_allocations;
  (* Writes through the dangling pointer now fault: clean termination. *)
  Alcotest.(check bool) "access faults" true
    (match Vmem.load machine.Alloc.Machine.mem big with
    | _ -> false
    | exception Vmem.Fault _ -> true)

let test_unmapped_restored_on_release () =
  let machine, ms = fresh () in
  let big = I.malloc ms 65536 in
  I.free ms big;
  churn ms 20_000 64;
  Alcotest.(check bool) "released" false (I.is_quarantined ms big);
  (* The address range must be reusable again. *)
  let again = I.malloc ms 65536 in
  Vmem.store machine.Alloc.Machine.mem again 7;
  Alcotest.(check int) "recycled range writable" 7
    (Vmem.load machine.Alloc.Machine.mem again)

let test_small_allocations_not_unmapped () =
  let _, ms = fresh () in
  let p = I.malloc ms 256 in
  I.free ms p;
  Alcotest.(check int) "no unmapping below the threshold" 0
    (I.stats ms).Minesweeper.Stats.unmapped_allocations

let test_unmapped_trigger_rule () =
  (* Section 4.2: even when the mapped quarantine stays below the 15 %
     threshold, a sweep fires once the *unmapped* quarantine exceeds
     unmap_factor x the resident footprint, to relieve kernel and
     allocator structures. *)
  let config = { C.default with C.unmap_factor = 0.05 } in
  let _, ms = fresh ~config () in
  (* Large allocations are unmapped on free; mapped fresh bytes stay ~0,
     so only the unmapped rule can trigger the sweeps. *)
  for _ = 1 to 8 do
    let big = I.malloc ms 262144 in
    I.free ms big;
    I.tick ms
  done;
  Alcotest.(check bool) "unmapped-quarantine rule fired" true
    ((I.stats ms).Minesweeper.Stats.sweeps > 0)

let test_no_unmapped_trigger_at_default_factor () =
  let _, ms = fresh () in
  for _ = 1 to 8 do
    let big = I.malloc ms 262144 in
    I.free ms big;
    I.tick ms
  done;
  (* At the paper's 9x the same pattern must NOT sweep (mapped fresh
     bytes are ~0 and unmapped < 9x RSS). *)
  Alcotest.(check int) "no sweep at 9x" 0 (I.stats ms).Minesweeper.Stats.sweeps

let test_allocation_pause_under_flood () =
  (* Section 5.7: when frees outrun sweeps, allocation stalls briefly
     instead of letting memory balloon. A tiny pause threshold makes the
     path deterministic to hit. *)
  let config = { C.default with C.pause_factor = 0.01 } in
  let _, ms = fresh ~config () in
  for _ = 1 to 30_000 do
    let p = I.malloc ms 128 in
    I.free ms p
  done;
  I.drain ms;
  Alcotest.(check bool) "pauses recorded" true
    ((I.stats ms).Minesweeper.Stats.alloc_pauses > 0)

let test_shadow_granule_config () =
  (* Coarse shadow granules alias neighbours: a pointer to an adjacent
     slot of the same slab blocks the victim too. *)
  let config = { C.default with C.shadow_granule = 1024 } in
  let machine, ms = fresh ~config () in
  let a = I.malloc ms 48 in
  let b = I.malloc ms 48 in
  (* Keep a pointer to b only; free a. With 1 KiB granules the mark for
     b covers a's granule as well whenever they share one. *)
  Vmem.store machine.Alloc.Machine.mem root_slot b;
  I.free ms a;
  churn ms 20_000 48;
  ignore a;
  (* The property we can assert robustly: the run completes and failed
     frees are at least as common as at fine granularity. *)
  let coarse_failed = (I.stats ms).Minesweeper.Stats.failed_frees in
  let _, ms2 = fresh () in
  let a2 = I.malloc ms2 48 in
  let b2 = I.malloc ms2 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot b2;
  I.free ms2 a2;
  churn ms2 20_000 48;
  Alcotest.(check bool) "coarse granule fails at least as often" true
    (coarse_failed >= (I.stats ms2).Minesweeper.Stats.failed_frees)

let test_sweeps_triggered_by_threshold () =
  let _, ms = fresh () in
  (* Push well past the quarantine threshold; sweeps must fire. *)
  churn ms 30_000 128;
  Alcotest.(check bool) "sweeps happened" true
    ((I.stats ms).Minesweeper.Stats.sweeps > 0)

let test_no_sweep_below_floor () =
  let _, ms = fresh () in
  (* A handful of small frees stays under threshold_min_bytes. *)
  for _ = 1 to 100 do
    let p = I.malloc ms 64 in
    I.free ms p
  done;
  Alcotest.(check int) "no sweep for a tiny quarantine" 0
    (I.stats ms).Minesweeper.Stats.sweeps

let protection_holds_under config =
  let machine, ms = fresh ~config () in
  let victim = I.malloc ms 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  I.free ms victim;
  let ok = ref true in
  for _ = 1 to 20_000 do
    let p = I.malloc ms 48 in
    if p = victim then ok := false;
    I.free ms p
  done;
  !ok

let test_modes_equal_protection () =
  Alcotest.(check bool) "fully concurrent" true
    (protection_holds_under C.default);
  Alcotest.(check bool) "mostly concurrent" true
    (protection_holds_under C.mostly_concurrent);
  Alcotest.(check bool) "sequential (unoptimised)" true
    (protection_holds_under C.unoptimised);
  Alcotest.(check bool) "every optimisation level" true
    (List.for_all
       (fun (_, config) -> protection_holds_under config)
       C.optimisation_levels)

let test_mostly_concurrent_pauses () =
  let machine, ms = fresh ~config:C.mostly_concurrent () in
  ignore machine;
  churn ms 30_000 128;
  let stats = I.stats ms in
  Alcotest.(check bool) "stop-the-world pauses happened" true
    (stats.Minesweeper.Stats.stw_pauses > 0);
  Alcotest.(check int) "one pause per sweep" stats.Minesweeper.Stats.sweeps
    stats.Minesweeper.Stats.stw_pauses

let test_stw_rescan_bytes_accounted () =
  (* Regression: the stop-the-world dirty re-scan did real marking work
     but never showed up in swept_bytes. *)
  let machine, ms = fresh ~config:C.mostly_concurrent () in
  ignore machine;
  churn ms 30_000 128;
  let stats = I.stats ms in
  Alcotest.(check bool) "dirty re-scan work recorded" true
    (stats.Minesweeper.Stats.stw_rescanned_bytes > 0);
  Alcotest.(check bool) "re-scan counted inside swept_bytes" true
    (stats.Minesweeper.Stats.swept_bytes
    >= stats.Minesweeper.Stats.stw_rescanned_bytes)

let test_partial_no_quarantine_reuses () =
  let _, ms = fresh ~config:C.partial_base () in
  let p = I.malloc ms 64 in
  I.free ms p;
  let q = I.malloc ms 64 in
  Alcotest.(check int) "forwarding free reuses immediately" p q

let test_partial_sweep_releases_everything () =
  (* keep_failed = false: dangling pointers are detected but ignored. *)
  let machine, ms = fresh ~config:C.partial_sweep () in
  let victim = I.malloc ms 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  I.free ms victim;
  churn ms 20_000 48;
  Alcotest.(check bool) "would-fail detected" true
    ((I.stats ms).Minesweeper.Stats.failed_frees > 0);
  Alcotest.(check bool) "but released anyway (reused despite the pointer)"
    true
    (eventually_reused ms 48 victim)

let test_stats_balance () =
  let _, ms = fresh () in
  churn ms 25_000 96;
  let stats = I.stats ms in
  Alcotest.(check int) "frees = releases + still-quarantined + doubles"
    stats.Minesweeper.Stats.frees_intercepted
    (stats.Minesweeper.Stats.releases
    + I.quarantine_entries ms
    + stats.Minesweeper.Stats.double_frees)

let prop_protection_random_workload =
  (* Soundness under random traffic: a victim with a live root pointer is
     never re-served, whatever the interleaving. *)
  QCheck.Test.make ~name:"random workload never aliases protected victim"
    ~count:20
    QCheck.(pair small_int (list_of_size Gen.(return 400) (int_range 1 2048)))
    (fun (seed, sizes) ->
      let machine, ms = fresh () in
      let rng = Sim.Rng.create seed in
      let victim = I.malloc ms 48 in
      Vmem.store machine.Alloc.Machine.mem root_slot victim;
      I.free ms victim;
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun size ->
          if Sim.Rng.bool rng 0.5 then begin
            let p = I.malloc ms size in
            if p = victim then ok := false;
            live := p :: !live
          end
          else
            match !live with
            | p :: rest ->
              I.free ms p;
              live := rest
            | [] -> ())
        sizes;
      I.drain ms;
      !ok && I.is_quarantined ms victim)

let suite =
  ( "minesweeper.instance",
    [
      Alcotest.test_case "free quarantines" `Quick test_free_quarantines;
      Alcotest.test_case "zeroing on free" `Quick test_zeroing_on_free;
      Alcotest.test_case "no immediate reuse" `Quick test_no_immediate_reuse;
      Alcotest.test_case "double free idempotent" `Quick
        test_double_free_idempotent;
      Alcotest.test_case "dangling pointer blocks reuse" `Quick
        test_dangling_pointer_blocks_reuse;
      Alcotest.test_case "interior pointer blocks reuse" `Quick
        test_interior_pointer_blocks_reuse;
      Alcotest.test_case "past-the-end pointer blocks reuse" `Quick
        test_past_the_end_pointer_blocks_reuse;
      Alcotest.test_case "release after pointer cleared" `Quick
        test_release_after_pointer_cleared;
      Alcotest.test_case "false pointer blocks reuse" `Quick
        test_false_pointer_blocks_reuse;
      Alcotest.test_case "hidden pointer not protected" `Quick
        test_hidden_pointer_not_protected;
      Alcotest.test_case "failed frees counted" `Quick test_failed_frees_counted;
      Alcotest.test_case "cyclic garbage freed (zeroing)" `Quick
        test_cyclic_garbage_is_freed;
      Alcotest.test_case "cycle leaks without zeroing" `Quick
        test_cycle_leaks_without_zeroing;
      Alcotest.test_case "unmapping releases pages" `Quick
        test_unmapping_releases_pages;
      Alcotest.test_case "unmapped restored on release" `Quick
        test_unmapped_restored_on_release;
      Alcotest.test_case "small allocations not unmapped" `Quick
        test_small_allocations_not_unmapped;
      Alcotest.test_case "sweep threshold" `Quick
        test_sweeps_triggered_by_threshold;
      Alcotest.test_case "unmapped trigger rule" `Quick
        test_unmapped_trigger_rule;
      Alcotest.test_case "no unmapped trigger at 9x" `Quick
        test_no_unmapped_trigger_at_default_factor;
      Alcotest.test_case "allocation pause under flood" `Quick
        test_allocation_pause_under_flood;
      Alcotest.test_case "shadow granule config" `Quick
        test_shadow_granule_config;
      Alcotest.test_case "no sweep below floor" `Quick test_no_sweep_below_floor;
      Alcotest.test_case "all modes protect equally" `Slow
        test_modes_equal_protection;
      Alcotest.test_case "mostly concurrent pauses" `Quick
        test_mostly_concurrent_pauses;
      Alcotest.test_case "stw re-scan bytes accounted" `Quick
        test_stw_rescan_bytes_accounted;
      Alcotest.test_case "partial: no quarantine reuses" `Quick
        test_partial_no_quarantine_reuses;
      Alcotest.test_case "partial: sweep without keep_failed" `Quick
        test_partial_sweep_releases_everything;
      Alcotest.test_case "stats balance" `Quick test_stats_balance;
      QCheck_alcotest.to_alcotest prop_protection_random_workload;
    ] )
