(* Virtual-memory substrate tests: mapping, protection, commit cycle,
   word access, soft-dirty tracking and the sweep iterator. *)

let page = Vmem.page_size
let base = Layout.heap_base

let fresh () =
  let m = Vmem.create () in
  Vmem.map m ~addr:base ~len:(4 * page);
  m

let test_map_and_access () =
  let m = fresh () in
  Alcotest.(check bool) "mapped" true (Vmem.is_mapped m base);
  Alcotest.(check bool) "committed" true (Vmem.is_committed m base);
  Vmem.store m base 0xDEAD;
  Alcotest.(check int) "load returns store" 0xDEAD (Vmem.load m base);
  Alcotest.(check int) "fresh pages zeroed" 0 (Vmem.load m (base + 8))

let test_unmapped_faults () =
  let m = fresh () in
  Alcotest.check_raises "load unmapped"
    (Vmem.Fault (Vmem.Unmapped_access, base + (8 * page)))
    (fun () -> ignore (Vmem.load m (base + (8 * page))));
  Alcotest.check_raises "store unmapped"
    (Vmem.Fault (Vmem.Unmapped_access, base + (8 * page)))
    (fun () -> Vmem.store m (base + (8 * page)) 1)

let test_unmap () =
  let m = fresh () in
  Vmem.unmap m ~addr:base ~len:page;
  Alcotest.(check bool) "unmapped" false (Vmem.is_mapped m base);
  Alcotest.(check bool) "rest still mapped" true (Vmem.is_mapped m (base + page))

let test_protection () =
  let m = fresh () in
  Vmem.protect m ~addr:base ~len:page Vmem.Read_only;
  Alcotest.(check int) "read allowed" 0 (Vmem.load m base);
  Alcotest.check_raises "write denied"
    (Vmem.Fault (Vmem.Protection_violation, base))
    (fun () -> Vmem.store m base 1);
  Vmem.protect m ~addr:base ~len:page Vmem.No_access;
  Alcotest.check_raises "read denied"
    (Vmem.Fault (Vmem.Protection_violation, base))
    (fun () -> ignore (Vmem.load m base));
  Vmem.protect m ~addr:base ~len:page Vmem.Read_write;
  Vmem.store m base 9;
  Alcotest.(check int) "restored" 9 (Vmem.load m base)

let test_decommit_loses_content () =
  let m = fresh () in
  Vmem.store m base 123;
  Vmem.decommit m ~addr:base ~len:page;
  Alcotest.(check bool) "not committed" false (Vmem.is_committed m base);
  (* Demand-commit on access returns zeroed memory. *)
  Alcotest.(check int) "zeroed after decommit" 0 (Vmem.load m base);
  Alcotest.(check bool) "recommitted by access" true (Vmem.is_committed m base)

let test_demand_commit_hook () =
  let m = fresh () in
  let faults = ref 0 in
  Vmem.set_demand_commit_hook m (fun ~pages -> faults := !faults + pages);
  Vmem.decommit m ~addr:base ~len:(2 * page);
  ignore (Vmem.load m base);
  ignore (Vmem.load m (base + page));
  ignore (Vmem.load m base);
  Alcotest.(check int) "two demand commits" 2 !faults

let test_committed_bytes () =
  let m = fresh () in
  Alcotest.(check int) "initial rss" (4 * page) (Vmem.committed_bytes m);
  Vmem.decommit m ~addr:base ~len:page;
  Alcotest.(check int) "after decommit" (3 * page) (Vmem.committed_bytes m);
  Vmem.commit m ~addr:base ~len:page;
  Alcotest.(check int) "after commit" (4 * page) (Vmem.committed_bytes m);
  Vmem.unmap m ~addr:base ~len:(4 * page);
  Alcotest.(check int) "after unmap" 0 (Vmem.committed_bytes m)

let test_zero_range_partial () =
  let m = fresh () in
  Vmem.store m base 1;
  Vmem.store m (base + 8) 2;
  Vmem.store m (base + 16) 3;
  Vmem.zero_range m ~addr:(base + 8) ~len:8;
  Alcotest.(check int) "before untouched" 1 (Vmem.load m base);
  Alcotest.(check int) "zeroed" 0 (Vmem.load m (base + 8));
  Alcotest.(check int) "after untouched" 3 (Vmem.load m (base + 16))

let test_zero_range_spans_pages () =
  let m = fresh () in
  Vmem.store m (base + page - 8) 7;
  Vmem.store m (base + page) 8;
  Vmem.zero_range m ~addr:(base + page - 8) ~len:16;
  Alcotest.(check int) "end of page zeroed" 0 (Vmem.load m (base + page - 8));
  Alcotest.(check int) "start of next zeroed" 0 (Vmem.load m (base + page))

let test_soft_dirty () =
  let m = fresh () in
  Vmem.clear_soft_dirty m;
  Alcotest.(check int) "clean" 0 (Vmem.soft_dirty_pages m);
  Vmem.store m base 1;
  Vmem.store m (base + 8) 2 (* same page *);
  Vmem.store m (base + (2 * page)) 3;
  Alcotest.(check int) "two dirty pages" 2 (Vmem.soft_dirty_pages m);
  let seen = ref [] in
  Vmem.iter_soft_dirty_pages m (fun p -> seen := p :: !seen);
  Alcotest.(check bool) "first page dirty" true (List.mem base !seen);
  Alcotest.(check bool) "third page dirty" true
    (List.mem (base + (2 * page)) !seen)

let test_dirty_walk_skips_unreadable () =
  (* Regression: pages dirtied and then decommitted or protected
     No_access used to be walked (and billed) by the dirty-page re-scan
     even though a real scan of them would fault. *)
  let m = fresh () in
  Vmem.clear_soft_dirty m;
  Vmem.store m base 1;
  Vmem.store m (base + page) 2;
  Vmem.store m (base + (2 * page)) 3;
  Vmem.decommit m ~addr:base ~len:page;
  Vmem.protect m ~addr:(base + page) ~len:page Vmem.No_access;
  let seen = ref [] in
  Vmem.iter_soft_dirty_pages m (fun p -> seen := p :: !seen);
  Alcotest.(check (list int)) "only the readable dirty page is walked"
    [ base + (2 * page) ]
    !seen;
  (* The raw bit counter still reports all three. *)
  Alcotest.(check int) "raw counter untouched" 3 (Vmem.soft_dirty_pages m)

let test_write_generations () =
  let m = fresh () in
  let g = Vmem.advance_generation m in
  Alcotest.(check int) "generation readable" g (Vmem.generation m);
  (* Pages mapped before the advance predate it. *)
  Alcotest.(check bool) "initial pages below the new generation" true
    (Vmem.write_generation m base < g);
  Vmem.store m base 1;
  Alcotest.(check int) "store stamps the current generation" g
    (Vmem.write_generation m base);
  (* Every content-changing operation stamps: zero, decommit, protect. *)
  let g2 = Vmem.advance_generation m in
  Vmem.zero_range m ~addr:(base + page) ~len:8;
  Vmem.decommit m ~addr:(base + (2 * page)) ~len:page;
  Vmem.protect m ~addr:(base + (3 * page)) ~len:page Vmem.Read_only;
  Alcotest.(check int) "zero_range stamps" g2
    (Vmem.write_generation m (base + page));
  Alcotest.(check int) "decommit stamps" g2
    (Vmem.write_generation m (base + (2 * page)));
  Alcotest.(check int) "protect stamps" g2
    (Vmem.write_generation m (base + (3 * page)));
  (* Re-protecting with the same protection is a no-op. *)
  let g3 = Vmem.advance_generation m in
  Vmem.protect m ~addr:(base + (3 * page)) ~len:page Vmem.Read_only;
  Alcotest.(check int) "idempotent protect does not stamp" g2
    (Vmem.write_generation m (base + (3 * page)));
  ignore g3;
  (* The generation-aware page walk exposes the stamps. *)
  let gens = ref [] in
  Vmem.iter_readable_pages_gen m (fun p _ ~write_gen ->
      gens := (p, write_gen) :: !gens);
  Alcotest.(check bool) "walk reports the stamped generation" true
    (List.assoc base !gens = g)

let test_iter_committed_words () =
  let m = fresh () in
  Vmem.store m base 10;
  Vmem.store m (base + 8) 20;
  let seen = ref [] in
  Vmem.iter_committed_words m ~addr:base ~len:16 (fun a w ->
      seen := (a, w) :: !seen);
  Alcotest.(check (list (pair int int)))
    "both words in order"
    [ (base, 10); (base + 8, 20) ]
    (List.rev !seen)

let test_iter_skips_protected_and_decommitted () =
  let m = fresh () in
  Vmem.store m base 1;
  Vmem.store m (base + page) 2;
  Vmem.store m (base + (2 * page)) 3;
  Vmem.protect m ~addr:base ~len:page Vmem.No_access;
  Vmem.decommit m ~addr:(base + page) ~len:page;
  let count = ref 0 and total = ref 0 in
  Vmem.iter_committed_words m ~addr:base ~len:(3 * page) (fun _ w ->
      incr count;
      total := !total + w);
  (* Only the third page is visited: 512 words, sum 3. *)
  Alcotest.(check int) "words visited" (page / 8) !count;
  Alcotest.(check int) "content" 3 !total;
  (* Crucially, the decommitted page was NOT demand-committed. *)
  Alcotest.(check bool) "no demand commit" false
    (Vmem.is_committed m (base + page))

let test_iter_readable_pages () =
  let m = fresh () in
  Vmem.protect m ~addr:base ~len:page Vmem.No_access;
  Vmem.decommit m ~addr:(base + page) ~len:page;
  let pages = ref [] in
  Vmem.iter_readable_pages m (fun p _ -> pages := p :: !pages);
  let sorted = List.sort compare !pages in
  Alcotest.(check (list int)) "two readable pages"
    [ base + (2 * page); base + (3 * page) ]
    sorted;
  Alcotest.(check int) "readable bytes" (2 * page) (Vmem.readable_bytes m)

let test_commit_observer () =
  let m = Vmem.create () in
  let events = ref [] in
  Vmem.set_commit_observer m (fun ~addr ~len -> events := (addr, len) :: !events);
  Vmem.map m ~addr:base ~len:(2 * page);
  Alcotest.(check (list (pair int int)))
    "map commits the whole run in one event"
    [ (base, 2 * page) ]
    (List.rev !events);
  (* Recommitting resident pages is a no-op and must stay silent. *)
  Vmem.commit m ~addr:base ~len:page;
  Alcotest.(check int) "no event for already-committed pages" 1
    (List.length !events);
  Vmem.decommit m ~addr:base ~len:page;
  ignore (Vmem.load m base);
  Alcotest.(check (pair int int)) "demand commit fires page-granular"
    (base, page) (List.hd !events);
  Vmem.clear_commit_observer m;
  Vmem.decommit m ~addr:base ~len:page;
  Vmem.commit m ~addr:base ~len:page;
  Alcotest.(check int) "cleared observer is silent" 2 (List.length !events)

let test_committed_bytes_gauge () =
  (* Satellite: the read-through gauge must round-trip to exactly zero
     after committed pages are decommitted again — the fleet budget
     accounting leans on this invariant. *)
  let m = Vmem.create () in
  let reg = Obs.Registry.create () in
  Vmem.attach_obs m reg;
  let read name =
    match Obs.Registry.read reg name with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  Alcotest.(check int) "empty space commits nothing" 0
    (read "vmem.committed_bytes");
  Vmem.map m ~addr:base ~len:(4 * page);
  Alcotest.(check int) "map commits eagerly" (4 * page)
    (read "vmem.committed_bytes");
  Vmem.decommit m ~addr:base ~len:(4 * page);
  Alcotest.(check int) "decommit returns the gauge to zero" 0
    (read "vmem.committed_bytes");
  ignore (Vmem.load m base);
  Alcotest.(check int) "demand commit is one page" page
    (read "vmem.committed_bytes");
  Vmem.decommit m ~addr:base ~len:(4 * page);
  Alcotest.(check int) "round-trips to zero again" 0
    (read "vmem.committed_bytes");
  (* A second address space shares the registry under a prefix. *)
  let m2 = Vmem.create () in
  Vmem.attach_obs ~prefix:"t1." m2 reg;
  Vmem.map m2 ~addr:base ~len:page;
  Alcotest.(check int) "prefixed gauge tracks the other space" page
    (read "t1.vmem.committed_bytes");
  Alcotest.(check int) "unprefixed gauge unaffected" 0
    (read "vmem.committed_bytes")

let prop_store_load_roundtrip =
  QCheck.Test.make ~name:"store/load round-trips any word" ~count:300
    QCheck.(pair (int_range 0 511) (int_range 0 max_int))
    (fun (word_index, value) ->
      let m = fresh () in
      let addr = base + (word_index * 8) in
      Vmem.store m addr value;
      Vmem.load m addr = value)

let suite =
  ( "vmem",
    [
      Alcotest.test_case "map and access" `Quick test_map_and_access;
      Alcotest.test_case "unmapped faults" `Quick test_unmapped_faults;
      Alcotest.test_case "unmap" `Quick test_unmap;
      Alcotest.test_case "protection" `Quick test_protection;
      Alcotest.test_case "decommit loses content" `Quick
        test_decommit_loses_content;
      Alcotest.test_case "demand-commit hook" `Quick test_demand_commit_hook;
      Alcotest.test_case "committed bytes" `Quick test_committed_bytes;
      Alcotest.test_case "zero_range partial" `Quick test_zero_range_partial;
      Alcotest.test_case "zero_range spans pages" `Quick
        test_zero_range_spans_pages;
      Alcotest.test_case "soft dirty" `Quick test_soft_dirty;
      Alcotest.test_case "dirty walk skips unreadable pages" `Quick
        test_dirty_walk_skips_unreadable;
      Alcotest.test_case "write generations" `Quick test_write_generations;
      Alcotest.test_case "iter committed words" `Quick
        test_iter_committed_words;
      Alcotest.test_case "iter skips protected/decommitted" `Quick
        test_iter_skips_protected_and_decommitted;
      Alcotest.test_case "iter readable pages" `Quick test_iter_readable_pages;
      Alcotest.test_case "commit observer" `Quick test_commit_observer;
      Alcotest.test_case "committed-bytes gauge round-trip" `Quick
        test_committed_bytes_gauge;
      QCheck_alcotest.to_alcotest prop_store_load_roundtrip;
    ] )
