(* Sweep-equivalence tests: the incremental marking phase (cached
   per-page pointer summaries + dirty-page rescans) must be
   observationally identical to a from-scratch full scan — same shadow
   mark set, same release / failed-free decisions — while scanning
   strictly fewer bytes once the summary cache is warm. *)

module I = Minesweeper.Instance
module C = Minesweeper.Config
module Shadow = Minesweeper.Shadow

let fresh ?(config = C.incremental) () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  (machine, I.create ~config machine)

let granule_set shadow =
  let acc = ref [] in
  Shadow.iter_marked shadow (fun a -> acc := a :: !acc);
  List.sort compare !acc

let root_slot = Layout.globals_base + 64

(* A mixed workload: long-lived blocks holding pointers, stores that
   overwrite them, churn that triggers sweeps. Fully scripted by the
   seed so the same traffic can be replayed under different configs. *)
let run_workload ?(ops = 15_000) machine ms seed =
  let rng = Sim.Rng.create seed in
  let mem = machine.Alloc.Machine.mem in
  let addresses = ref [] in
  let live = ref [] in
  let stable = ref [] in
  for _ = 1 to 64 do
    let p = I.malloc ms 1024 in
    Vmem.store mem p p;
    stable := p :: !stable
  done;
  for i = 1 to ops do
    if Sim.Rng.bool rng 0.55 then begin
      let size = 16 + Sim.Rng.int rng 1024 in
      let p = I.malloc ms size in
      addresses := p :: !addresses;
      (* Sometimes plant a pointer to a live block in memory the sweep
         must see (a stable block or the root region). *)
      if Sim.Rng.bool rng 0.3 then
        Vmem.store mem p (List.nth !stable (Sim.Rng.int rng 64));
      if i mod 97 = 0 then Vmem.store mem root_slot p;
      live := p :: !live
    end
    else
      match !live with
      | p :: rest ->
        I.free ms p;
        live := rest
      | [] -> ()
  done;
  I.drain ms;
  List.rev !addresses

(* --- Mark-set equality ---------------------------------------------- *)

let test_reference_marks_agree () =
  let machine, ms = fresh () in
  ignore (run_workload machine ms 11);
  Alcotest.(check bool) "summaries exercised" true
    ((I.stats ms).Minesweeper.Stats.sweeps > 1);
  Alcotest.(check (list int))
    "incremental rebuild equals from-scratch full mark"
    (granule_set (I.reference_full_mark ms))
    (granule_set (I.reference_incremental_mark ms))

let test_reference_marks_agree_after_stores () =
  (* Dirty a clean summarised page between sweeps: the stale summary
     must be invalidated, not replayed. *)
  let machine, ms = fresh () in
  let mem = machine.Alloc.Machine.mem in
  let blocks = Array.init 32 (fun _ -> I.malloc ms 4096) in
  ignore (run_workload ~ops:8_000 machine ms 13);
  (* Overwrite pointers in long-clean pages after the last sweep. *)
  Array.iter
    (fun p ->
      Vmem.store mem p blocks.(0);
      Vmem.store mem (p + 512) 0)
    blocks;
  Alcotest.(check (list int)) "stores invalidate their summaries"
    (granule_set (I.reference_full_mark ms))
    (granule_set (I.reference_incremental_mark ms))

let prop_marks_agree_random =
  QCheck.Test.make ~name:"incremental mark = full mark on random workloads"
    ~count:15 QCheck.small_int (fun seed ->
      let machine, ms = fresh () in
      ignore (run_workload ~ops:6_000 machine ms seed);
      granule_set (I.reference_full_mark ms)
      = granule_set (I.reference_incremental_mark ms))

(* --- Decision equivalence ------------------------------------------- *)

(* Under Sequential concurrency every sweep completes synchronously, so
   the two modes diverge only if their mark sets do: the full address
   stream and the release/failed-free decisions must match exactly. *)
let prop_equivalent_decisions =
  QCheck.Test.make
    ~name:"full and incremental sweeps make identical decisions" ~count:10
    QCheck.small_int (fun seed ->
      let sequential = { C.default with C.concurrency = C.Sequential } in
      let machine_f, ms_f = fresh ~config:sequential () in
      let addrs_f = run_workload ~ops:10_000 machine_f ms_f seed in
      let machine_i, ms_i =
        fresh ~config:(C.with_sweep_mode C.Incremental sequential) ()
      in
      let addrs_i = run_workload ~ops:10_000 machine_i ms_i seed in
      let sf = I.stats ms_f and si = I.stats ms_i in
      addrs_f = addrs_i
      && sf.Minesweeper.Stats.sweeps = si.Minesweeper.Stats.sweeps
      && sf.Minesweeper.Stats.releases = si.Minesweeper.Stats.releases
      && sf.Minesweeper.Stats.failed_frees = si.Minesweeper.Stats.failed_frees)

let protection_holds_under config =
  let machine, ms = fresh ~config () in
  let victim = I.malloc ms 48 in
  Vmem.store machine.Alloc.Machine.mem root_slot victim;
  I.free ms victim;
  let ok = ref true in
  for _ = 1 to 20_000 do
    let p = I.malloc ms 48 in
    if p = victim then ok := false;
    I.free ms p
  done;
  !ok && I.is_quarantined ms victim

let test_incremental_protection () =
  Alcotest.(check bool) "incremental (fully concurrent)" true
    (protection_holds_under C.incremental);
  Alcotest.(check bool) "incremental (mostly concurrent)" true
    (protection_holds_under C.incremental_mostly)

(* --- Fewer bytes swept ---------------------------------------------- *)

let bytes_swept_under config seed =
  let machine, ms = fresh ~config () in
  ignore (run_workload machine ms seed);
  let stats = I.stats ms in
  ( stats.Minesweeper.Stats.sweeps,
    stats.Minesweeper.Stats.swept_bytes,
    stats.Minesweeper.Stats.sweep_pages_skipped )

let test_incremental_sweeps_fewer_bytes () =
  let sequential = { C.default with C.concurrency = C.Sequential } in
  let sweeps_f, swept_f, _ = bytes_swept_under sequential 21 in
  let sweeps_i, swept_i, skipped =
    bytes_swept_under (C.with_sweep_mode C.Incremental sequential) 21
  in
  Alcotest.(check int) "same sweeps either way" sweeps_f sweeps_i;
  Alcotest.(check bool) "several sweeps ran" true (sweeps_f > 1);
  Alcotest.(check bool) "clean pages were served from the cache" true
    (skipped > 0);
  Alcotest.(check bool)
    (Printf.sprintf "incremental swept strictly less (%d < %d)" swept_i
       swept_f)
    true (swept_i < swept_f)

let test_summary_cache_accounted () =
  let _, ms = fresh () in
  let machine = I.machine ms in
  ignore (run_workload machine ms 31);
  Alcotest.(check bool) "summary cache footprint reported" true
    ((I.stats ms).Minesweeper.Stats.summary_cache_bytes > 0)

(* --- Sanitizer gates ------------------------------------------------ *)

let test_audit_clean_incremental () =
  let machine, ms = fresh () in
  ignore (run_workload machine ms 41);
  Alcotest.(check (list string)) "inv-summary (and the rest) hold" []
    (List.map Sanitizer.Diagnostic.to_string (Sanitizer.Invariants.audit ms))

let test_audit_detects_stale_summary () =
  (* Negative control: write to a summarised page behind vmem's back by
     resetting its generation tracking — the audit must notice that the
     replayed summary no longer matches memory. Absent a backdoor into
     vmem, corrupt from the other side: mutate memory through a raw Bytes
     handle so no write generation is bumped. *)
  let machine, ms = fresh () in
  ignore (run_workload machine ms 43);
  let mem = machine.Alloc.Machine.mem in
  (* Find a clean readable heap page whose summary would be replayed and
     smuggle a heap pointer into it without Vmem.store. *)
  let victim = I.malloc ms 64 in
  let planted = ref false in
  Vmem.iter_readable_pages mem (fun base bytes ->
      if (not !planted) && base >= Layout.heap_base then begin
        Bytes.set_int64_le bytes 0 (Int64.of_int victim);
        planted := true
      end);
  Alcotest.(check bool) "planted a hidden pointer" true !planted;
  (* The full mark sees the new pointer; a replayed summary cannot. If
     the page happened to be rescanned anyway the sets still differ for
     the synthetic store only when its summary was clean — so assert the
     weaker, always-true property: the audit equals the reference
     comparison. *)
  let full = granule_set (I.reference_full_mark ms) in
  let inc = granule_set (I.reference_incremental_mark ms) in
  let audit_flags =
    Sanitizer.Diagnostic.has_rule "inv-summary" (Sanitizer.Invariants.audit ms)
  in
  Alcotest.(check bool) "audit fires iff the mark sets diverge" (full <> inc)
    audit_flags

let test_oracle_certifies_incremental () =
  let profile =
    List.find
      (fun p -> p.Workloads.Profile.name = "perlbench")
      Workloads.Spec2006.all
  in
  let trace =
    Workloads.Trace.generate (Workloads.Profile.scale_ops 0.05 profile)
  in
  let r = Sanitizer.Sweep_oracle.run ~config:C.incremental trace in
  Alcotest.(check bool) "sweeps completed" true
    (r.Sanitizer.Sweep_oracle.sweeps > 0);
  Alcotest.(check (list string)) "no unsound recycles under incremental" []
    (List.map Sanitizer.Diagnostic.to_string r.Sanitizer.Sweep_oracle.soundness);
  Alcotest.(check (list string)) "invariants (incl. inv-summary) hold" []
    (List.map Sanitizer.Diagnostic.to_string r.Sanitizer.Sweep_oracle.audit)

let suite =
  ( "minesweeper.sweep-equivalence",
    [
      Alcotest.test_case "reference marks agree" `Quick
        test_reference_marks_agree;
      Alcotest.test_case "stores invalidate summaries" `Quick
        test_reference_marks_agree_after_stores;
      QCheck_alcotest.to_alcotest prop_marks_agree_random;
      QCheck_alcotest.to_alcotest prop_equivalent_decisions;
      Alcotest.test_case "incremental modes protect" `Slow
        test_incremental_protection;
      Alcotest.test_case "incremental sweeps fewer bytes" `Quick
        test_incremental_sweeps_fewer_bytes;
      Alcotest.test_case "summary cache accounted" `Quick
        test_summary_cache_accounted;
      Alcotest.test_case "invariant audit clean" `Quick
        test_audit_clean_incremental;
      Alcotest.test_case "audit detects stale summary" `Quick
        test_audit_detects_stale_summary;
      Alcotest.test_case "oracle certifies incremental" `Quick
        test_oracle_certifies_incremental;
    ] )
