(* Race checker tests: vector clocks, the happens-before rules against
   hand-built streams, the protocol mutant corpus, the live recorder,
   and the bounded schedule explorer. *)

module Event = Racecheck.Event
module Vclock = Racecheck.Vclock
module Hb = Racecheck.Hb
module Protocol = Racecheck.Protocol
module Recorder = Racecheck.Recorder
module Explorer = Racecheck.Explorer
module Diagnostic = Sanitizer.Diagnostic

let rules_of diags =
  List.sort_uniq compare (List.map (fun d -> d.Diagnostic.rule) diags)

(* ------------------------------------------------------------------ *)
(* Vector clocks *)

let test_vclock_order () =
  let a = Vclock.create 3 and b = Vclock.create 3 in
  Alcotest.(check bool) "zero <= zero" true (Vclock.leq a b);
  Vclock.tick a 0;
  Alcotest.(check bool) "b <= a" true (Vclock.leq b a);
  Alcotest.(check bool) "not a <= b" false (Vclock.leq a b);
  Vclock.tick b 1;
  Alcotest.(check bool) "ticks on different components race" true
    (Vclock.concurrent a b);
  Vclock.join b a;
  Alcotest.(check bool) "after join a <= b" true (Vclock.leq a b);
  Alcotest.(check bool) "join keeps own component" true (Vclock.get b 1 = 1);
  Alcotest.(check string) "rendering" "<1,1,0>" (Vclock.to_string b)

(* ------------------------------------------------------------------ *)
(* Happens-before rules on hand-built streams *)

let ev seq tid kind = { Event.seq; tid; kind }

let test_hb_reuse_quarantined () =
  let diags =
    Hb.analyze ~threads:1
      [
        ev 0 (Event.Mutator 0)
          (Event.Push { raw_thread = 0; addr = 0x5000; usable = 64 });
        ev 1 (Event.Mutator 0) (Event.Serve { addr = 0x5000; usable = 64 });
      ]
  in
  Alcotest.(check (list string)) "serve of quarantined addr flagged"
    [ "rc-reuse-quarantined" ] (rules_of diags)

let test_hb_release_after_mark_clean () =
  let s = Event.Sweeper in
  let diags =
    Hb.analyze ~threads:1
      [
        ev 0 (Event.Mutator 0)
          (Event.Push { raw_thread = 0; addr = 0x5000; usable = 64 });
        ev 1 s (Event.Lock_in { sweep = 1; entries = [ (0x5000, 64) ] });
        ev 2 s (Event.Mark_done { sweep = 1 });
        ev 3 s (Event.Release { sweep = 1; addr = 0x5000 });
        ev 4 s (Event.Sweep_done { sweep = 1 });
      ]
  in
  Alcotest.(check (list string)) "ordered release is clean" [] (rules_of diags)

let test_hb_every_rule_documented () =
  List.iter
    (fun (rule, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s documented" rule)
        true
        (List.mem_assoc rule Hb.rules))
    Hb.rules;
  Alcotest.(check int) "five race rules" 5 (List.length Hb.rules)

(* ------------------------------------------------------------------ *)
(* Protocol emulator and the mutant corpus *)

let test_protocol_mutants () =
  let results = Protocol.self_test () in
  Alcotest.(check int) "unmutated plus every corpus mutant"
    (1 + List.length Sanitizer.Corpus.protocol_mutants)
    (List.length results);
  List.iter
    (fun (r : Protocol.mutant_result) ->
      Alcotest.(check (list string))
        (Printf.sprintf "mutant %s raises exactly its rules" r.name)
        r.expected r.got)
    results

let test_protocol_rules_are_known () =
  (* Every rule a corpus mutant expects must be a documented Hb rule. *)
  List.iter
    (fun (m : Sanitizer.Corpus.protocol_mutant) ->
      List.iter
        (fun rule ->
          Alcotest.(check bool)
            (Printf.sprintf "%s expects documented rule %s" m.mutant_name rule)
            true
            (List.mem_assoc rule Hb.rules))
        m.expected_race_rules)
    Sanitizer.Corpus.protocol_mutants

(* ------------------------------------------------------------------ *)
(* Recorder on live stacks *)

let small_trace seed =
  Workloads.Trace.generate ~seed
    (Workloads.Profile.scale_ops 0.02 (List.hd Workloads.Mimalloc_bench.all))

let test_recorder_clean_on_seeded_trace () =
  List.iter
    (fun (config_name, config) ->
      let r = Recorder.run ~config ~config_name (small_trace 1) in
      Alcotest.(check int)
        (Printf.sprintf "no races under %s" config_name)
        0
        (List.length r.Recorder.diags);
      Alcotest.(check bool)
        (Printf.sprintf "sweeps happened under %s" config_name)
        true (r.Recorder.sweeps > 0);
      Alcotest.(check bool)
        (Printf.sprintf "events recorded under %s" config_name)
        true (r.Recorder.events > 0))
    [
      ("default", Minesweeper.Config.default);
      ("mostly", Minesweeper.Config.mostly_concurrent);
    ]

let test_recorder_deterministic () =
  let render (r : Recorder.report) =
    Printf.sprintf "%d/%d/%d/%d" r.Recorder.sweeps r.Recorder.events
      r.Recorder.window_writes
      (List.length r.Recorder.diags)
  in
  let r1 = Recorder.run ~config:Minesweeper.Config.mostly_concurrent (small_trace 2) in
  let r2 = Recorder.run ~config:Minesweeper.Config.mostly_concurrent (small_trace 2) in
  Alcotest.(check string) "two identical replays record identically"
    (render r1) (render r2)

(* ------------------------------------------------------------------ *)
(* Explorer *)

let test_explorer_sound_and_deterministic () =
  let r = Explorer.run ~config_name:"mostly" ~schedules:24 () in
  Alcotest.(check int) "explored what was asked" 24
    (List.length r.Explorer.outcomes);
  Alcotest.(check (list string)) "no ground-truth violations" []
    (Explorer.violations r);
  Alcotest.(check int) "no races in any schedule" 0
    (List.length (Explorer.races r));
  Alcotest.(check bool) "double runs render identically" true
    r.Explorer.deterministic;
  Alcotest.(check bool) "equal signatures account equally" true
    r.Explorer.consistent;
  (* The dangling window in the script must actually exercise both
     outcomes across the sampled schedules. *)
  let released = List.fold_left (fun a o -> a + o.Explorer.released) 0 r.Explorer.outcomes in
  let requeued = List.fold_left (fun a o -> a + o.Explorer.requeued) 0 r.Explorer.outcomes in
  Alcotest.(check bool) "some schedule released" true (released > 0);
  Alcotest.(check bool) "some schedule requeued" true (requeued > 0);
  (* One span per schedule landed in the explorer's ring. *)
  Alcotest.(check int) "rc spans exported" 24
    (List.length (Obs.Trace_ring.spans r.Explorer.ring))

let test_explorer_render_stable () =
  let r1 = Explorer.run ~config_name:"mostly" ~schedules:8 () in
  let r2 = Explorer.run ~config_name:"mostly" ~schedules:8 () in
  Alcotest.(check string) "render byte-identical across runs"
    (Explorer.render r1) (Explorer.render r2)

let suite =
  ( "racecheck",
    [
      Alcotest.test_case "vclock order" `Quick test_vclock_order;
      Alcotest.test_case "hb reuse-quarantined" `Quick test_hb_reuse_quarantined;
      Alcotest.test_case "hb ordered release clean" `Quick
        test_hb_release_after_mark_clean;
      Alcotest.test_case "hb rules documented" `Quick
        test_hb_every_rule_documented;
      Alcotest.test_case "protocol mutants" `Quick test_protocol_mutants;
      Alcotest.test_case "protocol rules known" `Quick
        test_protocol_rules_are_known;
      Alcotest.test_case "recorder clean on seeded trace" `Quick
        test_recorder_clean_on_seeded_trace;
      Alcotest.test_case "recorder deterministic" `Quick
        test_recorder_deterministic;
      Alcotest.test_case "explorer sound and deterministic" `Quick
        test_explorer_sound_and_deterministic;
      Alcotest.test_case "explorer render stable" `Quick
        test_explorer_render_stable;
    ] )
