(* Static dataflow analyzer (lib/flowcheck) tests: abstract-domain
   behaviour on hand-written traces, and the two differential contracts
   against the dynamic layers — bounds dominate the measured ms.*
   telemetry, and every dynamic oracle finding is statically predicted. *)

let analyze_text text =
  Flowcheck.Report.analyze_trace (Workloads.Trace.of_string text)

let rules (r : Flowcheck.Report.t) =
  List.sort_uniq compare
    (List.map
       (fun d -> d.Sanitizer.Diagnostic.rule)
       r.Flowcheck.Report.findings)

let test_dangling_basic () =
  let r =
    analyze_text "# msweep-trace v1 t\na 0 64\np r 1 0\nx 0\n"
  in
  Alcotest.(check (list string)) "flow-dangling raised" [ "flow-dangling" ]
    (rules r);
  Alcotest.(check (list int)) "unsound-if-recycled predicted" [ 0 ]
    r.Flowcheck.Report.predicted_unsound;
  Alcotest.(check (list int)) "retention predicted" [ 0 ]
    r.Flowcheck.Report.predicted_retained;
  Alcotest.(check int) "window opened" 1 r.Flowcheck.Report.windows.opened;
  Alcotest.(check int) "window still open" 1
    r.Flowcheck.Report.windows.open_at_end;
  match r.Flowcheck.Report.findings with
  | [ d ] ->
    Alcotest.(check int) "flagged at the free" 2 d.Sanitizer.Diagnostic.op_index
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length ds))

let test_window_closes_on_overwrite () =
  (* Overwriting the dangling slot with plain data ends the exposure
     window; the graph edge dies with it. *)
  let r =
    analyze_text "# msweep-trace v1 t\na 0 64\np r 1 0\nx 0\nd r 1 5\n"
  in
  Alcotest.(check int) "window opened" 1 r.Flowcheck.Report.windows.opened;
  Alcotest.(check int) "window closed" 1 r.Flowcheck.Report.windows.closed;
  Alcotest.(check int) "none open at end" 0
    r.Flowcheck.Report.windows.open_at_end;
  Alcotest.(check int) "window length = overwrite - free" 1
    r.Flowcheck.Report.windows.max_len

let test_clear_semantics () =
  (* Clearing before the free removes the edge: no exposure at all. *)
  let r =
    analyze_text "# msweep-trace v1 t\na 0 64\np r 1 0\nc r 1 0\nx 0\n"
  in
  Alcotest.(check (list string)) "clear before free: clean" [] (rules r);
  Alcotest.(check int) "no window" 0 r.Flowcheck.Report.windows.opened;
  (* Clearing after the free is skipped at replay (dead target), so the
     pointer bytes physically persist: the window must stay open. *)
  let r' =
    analyze_text "# msweep-trace v1 t\na 0 64\np r 1 0\nx 0\nc r 1 0\n"
  in
  Alcotest.(check int) "dead-target clear closes nothing" 0
    r'.Flowcheck.Report.windows.closed;
  Alcotest.(check int) "window still open" 1
    r'.Flowcheck.Report.windows.open_at_end

let test_witness_chain () =
  (* id 0 is held by a field of id 1, itself held by a root: the witness
     names the whole chain. *)
  let r =
    analyze_text
      "# msweep-trace v1 t\na 0 64\na 1 64\np f 1 0 0\np r 3 1\nx 0\n"
  in
  (match r.Flowcheck.Report.findings with
  | [ d ] ->
    let msg = d.Sanitizer.Diagnostic.message in
    let contains needle =
      let nl = String.length needle and ml = String.length msg in
      let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "chain names the field slot" true
      (contains "obj1[0]");
    Alcotest.(check bool) "chain names the root holder" true
      (contains "root[3]")
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length ds)));
  Alcotest.(check (list int)) "only the freed id is unsound" [ 0 ]
    r.Flowcheck.Report.predicted_unsound

let test_alias_retention () =
  (* A negative Store_data value encodes the address of an object as
     data: not a pointer, but exactly what makes a conservative sweep
     retain the free. *)
  let r = analyze_text "# msweep-trace v1 t\na 0 64\nd r 2 -1\nx 0\n" in
  Alcotest.(check (list string)) "flow-alias raised" [ "flow-alias" ] (rules r);
  Alcotest.(check (list int)) "no unsoundness predicted" []
    r.Flowcheck.Report.predicted_unsound;
  Alcotest.(check (list int)) "retention predicted" [ 0 ]
    r.Flowcheck.Report.predicted_retained

let test_wild_store () =
  let wild = 0x4000_0000 in
  let r =
    analyze_text
      (Printf.sprintf "# msweep-trace v1 t\na 0 64\nd r 1 %d\nx 0\n" wild)
  in
  Alcotest.(check (list string)) "flow-wild raised" [ "flow-wild" ] (rules r);
  Alcotest.(check int) "wild store counted" 1 r.Flowcheck.Report.wild_stores;
  Alcotest.(check (list int)) "wild data forces retention prediction" [ 0 ]
    r.Flowcheck.Report.predicted_retained

let test_subgranule_free () =
  (* A 4-byte request lands in the 8-byte class (extra byte included):
     smaller than the 16-byte shadow granule, so a neighbour's bytes can
     keep it marked. *)
  let r = analyze_text "# msweep-trace v1 t\na 0 4\nx 0\n" in
  Alcotest.(check int) "sub-granule free counted" 1
    r.Flowcheck.Report.subgranule_frees;
  Alcotest.(check (list int)) "retention predicted" [ 0 ]
    r.Flowcheck.Report.predicted_retained;
  (* 16-byte-class frees are granule-aligned: no such prediction. *)
  let r16 = analyze_text "# msweep-trace v1 t\na 0 15\nx 0\n" in
  Alcotest.(check int) "16B class is not sub-granule" 0
    r16.Flowcheck.Report.subgranule_frees

let test_bounds_math () =
  let r = analyze_text "# msweep-trace v1 t\na 0 100\na 1 200\nx 0\nx 1\n" in
  let b =
    List.find
      (fun (b : Flowcheck.Policy.bounds) ->
        b.Flowcheck.Policy.policy = "minesweeper")
      r.Flowcheck.Report.bounds
  in
  let ms = List.hd Flowcheck.Policy.default_policies in
  let u s = Flowcheck.Policy.usable ms s in
  Alcotest.(check int) "peak live = both usable sizes" (u 100 + u 200)
    b.Flowcheck.Policy.peak_live_bytes;
  Alcotest.(check int) "occupancy bound = total freed usable"
    (u 100 + u 200) b.Flowcheck.Policy.occupancy_bound;
  Alcotest.(check int) "max entry" (u 200) b.Flowcheck.Policy.max_entry_bytes;
  Alcotest.(check bool) "modeled <= sound bound" true
    (b.Flowcheck.Policy.modeled_occupancy <= b.Flowcheck.Policy.occupancy_bound);
  let ff =
    List.find
      (fun (b : Flowcheck.Policy.bounds) ->
        b.Flowcheck.Policy.policy = "ffmalloc")
      r.Flowcheck.Report.bounds
  in
  Alcotest.(check bool) "ffmalloc never reuses" true
    ff.Flowcheck.Policy.never_reuse;
  Alcotest.(check int) "ffmalloc sweeps nothing" 0
    ff.Flowcheck.Policy.sweeps_bound

let test_json_deterministic_and_chunk_independent () =
  let profile =
    Workloads.Profile.scale_ops 0.05 (Workloads.Mimalloc_bench.find "espresso")
  in
  let trace = Workloads.Trace.generate profile in
  let text = Workloads.Trace.to_string trace in
  let j1 = Flowcheck.Report.to_json (Flowcheck.Report.analyze_trace trace) in
  let j2 = Flowcheck.Report.to_json (Flowcheck.Report.analyze_trace trace) in
  Alcotest.(check string) "byte-identical across runs" j1 j2;
  List.iter
    (fun chunk_ops ->
      let st = Workloads.Trace.stream_of_string ~chunk_ops text in
      let j = Flowcheck.Report.to_json (Flowcheck.Report.analyze st) in
      Alcotest.(check string)
        (Printf.sprintf "chunk size %d changes nothing" chunk_ops)
        j1 j)
    [ 1; 7; 4096 ]

(* The zero-false-negative contract, on both seeded workloads, under the
   default and incremental configurations, at retention latency 1 (the
   most eager dynamic reporter) and 3. *)
let test_certify_static () =
  let workloads =
    [
      ( "espresso",
        Workloads.Profile.scale_ops 0.05
          (Workloads.Mimalloc_bench.find "espresso") );
      ( "perlbench",
        Workloads.Profile.scale_ops 0.05
          (List.find
             (fun p -> p.Workloads.Profile.name = "perlbench")
             Workloads.Spec2006.all) );
    ]
  in
  List.iter
    (fun (wname, profile) ->
      let trace = Workloads.Trace.generate profile in
      List.iter
        (fun (cname, config) ->
          let sr =
            Flowcheck.Report.analyze_trace
              ~policies:[ Flowcheck.Policy.Minesweeper config ]
              trace
          in
          List.iter
            (fun latency_sweeps ->
              let orc =
                Sanitizer.Sweep_oracle.run ~config ~latency_sweeps
                  ~audit:false trace
              in
              let misses =
                Sanitizer.Sweep_oracle.certify_static
                  ~predicted_unsound:sr.Flowcheck.Report.predicted_unsound
                  ~predicted_retained:sr.Flowcheck.Report.predicted_retained
                  orc
              in
              Alcotest.(check (list string))
                (Printf.sprintf "%s/%s latency %d: no static misses" wname
                   cname latency_sweeps)
                []
                (List.map Sanitizer.Diagnostic.to_string misses))
            [ 1; 3 ])
        [
          ("default", Minesweeper.Config.default);
          ("incremental", Minesweeper.Config.incremental);
        ])
    workloads

let test_bounds_dominate_replay () =
  let profile =
    Workloads.Profile.scale_ops 0.05 (Workloads.Mimalloc_bench.find "espresso")
  in
  let trace = Workloads.Trace.generate profile in
  let sr = Flowcheck.Report.analyze_trace trace in
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  let stack =
    Workloads.Harness.build
      (Workloads.Harness.Mine_sweeper Minesweeper.Config.default)
      ~threads:1 machine
  in
  ignore (Workloads.Trace.replay trace stack);
  let reg = Option.get stack.Workloads.Harness.obs in
  let read name = Option.value ~default:0 (Obs.Registry.read reg name) in
  let diags =
    Flowcheck.Report.check_bounds sr ~policy:"minesweeper"
      ~peak_quarantine_bytes:(read "ms.peak_quarantine_bytes")
      ~swept_bytes:(read "ms.swept_bytes")
      ~sweeps:(read "ms.sweeps")
  in
  Alcotest.(check (list string)) "static bounds dominate the replay" []
    (List.map Sanitizer.Diagnostic.to_string diags);
  (* The detector itself must fire when a bound is genuinely exceeded. *)
  let forced =
    Flowcheck.Report.check_bounds sr ~policy:"minesweeper"
      ~peak_quarantine_bytes:max_int ~swept_bytes:0 ~sweeps:0
  in
  Alcotest.(check (list string)) "exceeded occupancy is flagged"
    [ "flow-bound-occupancy" ]
    (List.map (fun d -> d.Sanitizer.Diagnostic.rule) forced);
  Alcotest.(check (list string)) "unknown policy is flagged"
    [ "flow-bound-missing" ]
    (List.map
       (fun d -> d.Sanitizer.Diagnostic.rule)
       (Flowcheck.Report.check_bounds sr ~policy:"nonesuch"
          ~peak_quarantine_bytes:0 ~swept_bytes:0 ~sweeps:0))

let test_lockset_self_test () =
  List.iter
    (fun (r : Flowcheck.Lockset.mutant_result) ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s raises exactly %s" r.Flowcheck.Lockset.name
           (String.concat "," r.Flowcheck.Lockset.expected))
        r.Flowcheck.Lockset.expected r.Flowcheck.Lockset.got;
      Alcotest.(check bool) (r.Flowcheck.Lockset.name ^ " passes") true
        r.Flowcheck.Lockset.passed)
    (Flowcheck.Lockset.self_test ())

let test_lockset_clean_on_recorded_stream () =
  (* A real recorded replay follows the protocol: the static lockset
     pass must come back clean on its event stream. *)
  let profile =
    Workloads.Profile.scale_ops 0.05 (Workloads.Mimalloc_bench.find "espresso")
  in
  let trace = Workloads.Trace.generate profile in
  List.iter
    (fun (cname, config) ->
      let r = Racecheck.Recorder.run ~config ~config_name:cname trace in
      Alcotest.(check bool)
        (cname ^ ": events recorded") true
        (r.Racecheck.Recorder.stream <> []);
      Alcotest.(check (list string))
        (cname ^ ": lockset clean") []
        (List.map Sanitizer.Diagnostic.to_string
           (Flowcheck.Lockset.analyze r.Racecheck.Recorder.stream)))
    [
      ("default", Minesweeper.Config.default);
      ("mostly", Minesweeper.Config.mostly_concurrent);
    ]

let test_corpus_self_test () =
  List.iter
    (fun (name, expected, got, passed) ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s raises exactly [%s]" name
           (String.concat "; " expected))
        expected got;
      Alcotest.(check bool) (name ^ " passes") true passed)
    (Flowcheck.Report.corpus_self_test ())

let test_diagnostic_sort () =
  let mk rule op msg =
    Sanitizer.Diagnostic.make ~rule ~severity:Sanitizer.Diagnostic.Warning
      ~op_index:op msg
  in
  let shuffled =
    [ mk "b" 1 "x"; mk "a" 9 "z"; mk "a" 2 "b"; mk "a" 2 "a"; mk "b" 0 "y" ]
  in
  let sorted = Sanitizer.Diagnostic.sort shuffled in
  Alcotest.(check (list string)) "(rule, op, message) order"
    [ "a/2/a"; "a/2/b"; "a/9/z"; "b/0/y"; "b/1/x" ]
    (List.map
       (fun (d : Sanitizer.Diagnostic.t) ->
         Printf.sprintf "%s/%d/%s" d.Sanitizer.Diagnostic.rule
           d.Sanitizer.Diagnostic.op_index d.Sanitizer.Diagnostic.message)
       sorted)

let suite =
  ( "flowcheck",
    [
      Alcotest.test_case "dangling basic" `Quick test_dangling_basic;
      Alcotest.test_case "window closes on overwrite" `Quick
        test_window_closes_on_overwrite;
      Alcotest.test_case "clear semantics" `Quick test_clear_semantics;
      Alcotest.test_case "witness chain" `Quick test_witness_chain;
      Alcotest.test_case "alias retention" `Quick test_alias_retention;
      Alcotest.test_case "wild store" `Quick test_wild_store;
      Alcotest.test_case "sub-granule free" `Quick test_subgranule_free;
      Alcotest.test_case "bounds math" `Quick test_bounds_math;
      Alcotest.test_case "json deterministic, chunk-independent" `Quick
        test_json_deterministic_and_chunk_independent;
      Alcotest.test_case "certify static: zero false negatives" `Slow
        test_certify_static;
      Alcotest.test_case "bounds dominate a real replay" `Quick
        test_bounds_dominate_replay;
      Alcotest.test_case "lockset mutant self-test" `Quick
        test_lockset_self_test;
      Alcotest.test_case "lockset clean on recorded streams" `Quick
        test_lockset_clean_on_recorded_stream;
      Alcotest.test_case "corpus self-test" `Quick test_corpus_self_test;
      Alcotest.test_case "diagnostic sort order" `Quick test_diagnostic_sort;
    ] )
