(* Static allocation-site pooling analysis (lib/flowcheck siteflow +
   poolplan) and its differential contract: plans derived from the
   analysis are certified UAF-free by the pooled oracle, static pool
   bounds dominate the backend's live telemetry, and the plan is a pure
   function of the op sequence. *)

let flow_of_text text =
  Flowcheck.Siteflow.analyze (Workloads.Trace.stream_of_string text)

let plan_of_text text =
  Flowcheck.Poolplan.of_trace (Workloads.Trace.of_string text)

let test_clean_sites_share_one_pool () =
  let plan =
    plan_of_text "# msweep-trace v1 t\n# sites 3\na 0 64 1\nx 0\na 1 32 2\nx 1\n"
  in
  Alcotest.(check int) "three sites" 3 plan.Flowcheck.Poolplan.site_count;
  Alcotest.(check int) "one shared pool" 1 plan.Flowcheck.Poolplan.pool_count;
  (match plan.Flowcheck.Poolplan.pools with
  | [ p ] ->
    Alcotest.(check bool) "shared pool recycles" true
      p.Flowcheck.Poolplan.recycles;
    Alcotest.(check (list int)) "all sites are members" [ 0; 1; 2 ]
      p.Flowcheck.Poolplan.members
  | ps -> Alcotest.fail (Printf.sprintf "expected 1 pool, got %d" (List.length ps)));
  let s = plan.Flowcheck.Poolplan.flow.Flowcheck.Siteflow.summaries.(1) in
  Alcotest.(check int) "site 1 alloc counted" 1 s.Flowcheck.Siteflow.allocs;
  Alcotest.(check bool) "site 1 unexposed" false
    (s.Flowcheck.Siteflow.ptr_exposed || s.Flowcheck.Siteflow.alias_exposed
   || s.Flowcheck.Siteflow.wild_exposed)

let test_ptr_exposure_retires () =
  (* root[1] still points at id 0 (site 1) when it dies: the site can
     never be recycled. Site 0 stays clean and keeps its own pool. *)
  let plan =
    plan_of_text
      "# msweep-trace v1 t\n# sites 2\na 1 64 0\na 0 64 1\np r 1 0\nx 0\nx 1\n"
  in
  let flow = plan.Flowcheck.Poolplan.flow in
  Alcotest.(check bool) "site 1 ptr-exposed" true
    flow.Flowcheck.Siteflow.summaries.(1).Flowcheck.Siteflow.ptr_exposed;
  Alcotest.(check bool) "site 0 clean" false
    flow.Flowcheck.Siteflow.summaries.(0).Flowcheck.Siteflow.ptr_exposed;
  Alcotest.(check int) "two pools" 2 plan.Flowcheck.Poolplan.pool_count;
  let pool_of site = plan.Flowcheck.Poolplan.pool_of_site.(site) in
  Alcotest.(check bool) "sites separated" true (pool_of 0 <> pool_of 1);
  let p1 =
    List.find
      (fun p -> p.Flowcheck.Poolplan.id = pool_of 1)
      plan.Flowcheck.Poolplan.pools
  in
  Alcotest.(check bool) "site 1's pool retires" false
    p1.Flowcheck.Poolplan.recycles;
  Alcotest.(check bool) "retired bound covers the freed slot" true
    (p1.Flowcheck.Poolplan.retired_bound >= 64)

let test_alias_isolates_site () =
  (* A data word aliasing id 0 survives its free: site 1 may still
     recycle (same-site reuse is type-compatible) but must do it alone.
     Sites 0 and 2 share the clean pool. *)
  let plan =
    plan_of_text
      "# msweep-trace v1 t\n\
       # sites 3\n\
       a 1 64 0\na 2 64 2\na 0 64 1\nd r 2 -1\nx 0\nx 1\nx 2\n"
  in
  let flow = plan.Flowcheck.Poolplan.flow in
  Alcotest.(check bool) "site 1 alias-exposed" true
    flow.Flowcheck.Siteflow.summaries.(1).Flowcheck.Siteflow.alias_exposed;
  Alcotest.(check bool) "site 1 not ptr-exposed" false
    flow.Flowcheck.Siteflow.summaries.(1).Flowcheck.Siteflow.ptr_exposed;
  Alcotest.(check int) "clean pool + singleton" 2
    plan.Flowcheck.Poolplan.pool_count;
  let pool_of site = plan.Flowcheck.Poolplan.pool_of_site.(site) in
  Alcotest.(check int) "sites 0 and 2 share" (pool_of 0) (pool_of 2);
  Alcotest.(check bool) "site 1 alone" true (pool_of 1 <> pool_of 0);
  let p1 =
    List.find
      (fun p -> p.Flowcheck.Poolplan.id = pool_of 1)
      plan.Flowcheck.Poolplan.pools
  in
  Alcotest.(check bool) "singleton still recycles" true
    p1.Flowcheck.Poolplan.recycles;
  Alcotest.(check (list int)) "singleton member" [ 1 ]
    p1.Flowcheck.Poolplan.members

let test_wild_treated_as_alias () =
  let wild = 0x4000_0000 in
  let flow =
    flow_of_text
      (Printf.sprintf "# msweep-trace v1 t\n# sites 2\na 0 64 1\nd r 1 %d\nx 0\n"
         wild)
  in
  Alcotest.(check bool) "wild exposure recorded" true
    flow.Flowcheck.Siteflow.summaries.(1).Flowcheck.Siteflow.wild_exposed;
  let plan = Flowcheck.Poolplan.build flow in
  let p =
    List.find
      (fun p ->
        p.Flowcheck.Poolplan.id = plan.Flowcheck.Poolplan.pool_of_site.(1))
      plan.Flowcheck.Poolplan.pools
  in
  Alcotest.(check bool) "wild site is isolated but recycling" true
    (p.Flowcheck.Poolplan.recycles
    && p.Flowcheck.Poolplan.members = [ 1 ]
    && p.Flowcheck.Poolplan.reason = Flowcheck.Poolplan.Alias_isolated)

let test_out_of_range_site_clamped () =
  let flow = flow_of_text "# msweep-trace v1 t\n# sites 2\na 0 64 9\nx 0\n" in
  Alcotest.(check int) "clamp counted" 1 flow.Flowcheck.Siteflow.out_of_range;
  Alcotest.(check int) "accounted to site 0" 1
    flow.Flowcheck.Siteflow.summaries.(0).Flowcheck.Siteflow.allocs;
  Alcotest.(check int) "site 1 untouched" 0
    flow.Flowcheck.Siteflow.summaries.(1).Flowcheck.Siteflow.allocs

let test_pooled_usable_agrees () =
  (* The demand model's units are the backend's: usable_of_key after
     class_key_of_size must equal Policy.pooled_usable everywhere. *)
  List.iter
    (fun size ->
      Alcotest.(check int)
        (Printf.sprintf "pooled_usable %d" size)
        (Flowcheck.Policy.pooled_usable size)
        (Flowcheck.Siteflow.usable_of_key
           (Flowcheck.Siteflow.class_key_of_size size)))
    [ 0; 1; 7; 8; 16; 63; 64; 100; 112; 2048; 4095; 4096; 4097; 65536; 99999 ]

let test_bounds_math () =
  (* Two concurrent 64B objects, both freed, then one more: peak demand
     2 slots, total 3. The recycling bound rounds the peak to whole
     slabs; the retiring variant rounds the total and bounds retirement
     by the freed usable bytes. *)
  let text =
    "# msweep-trace v1 t\na 0 64\na 1 64\nx 0\nx 1\na 2 64\nx 2\n"
  in
  let plan = plan_of_text text in
  let cls = Alloc.Size_class.class_of_size 64 in
  let slab_bytes = Alloc.Size_class.slab_pages cls * Vmem.page_size in
  let slots = Alloc.Size_class.slab_slots cls in
  (match plan.Flowcheck.Poolplan.pools with
  | [ p ] ->
    Alcotest.(check int) "occupancy bound = peak usable" (2 * 64)
      p.Flowcheck.Poolplan.occupancy_bound;
    Alcotest.(check int) "footprint bound = peak demand in whole slabs"
      ((2 + slots - 1) / slots * slab_bytes)
      p.Flowcheck.Poolplan.footprint_bound
  | ps -> Alcotest.fail (Printf.sprintf "expected 1 pool, got %d" (List.length ps)));
  (* Force the retiring shape of the same demand via a pointer leak. *)
  let plan' =
    plan_of_text
      "# msweep-trace v1 t\na 0 64\np r 7 0\na 1 64\nx 0\nx 1\na 2 64\nx 2\n"
  in
  match plan'.Flowcheck.Poolplan.pools with
  | [ p ] ->
    Alcotest.(check bool) "leaked site retires" false
      p.Flowcheck.Poolplan.recycles;
    Alcotest.(check int) "retiring footprint rounds total demand"
      ((3 + slots - 1) / slots * slab_bytes)
      p.Flowcheck.Poolplan.footprint_bound;
    Alcotest.(check int) "retired bound = freed usable" (3 * 64)
      p.Flowcheck.Poolplan.retired_bound
  | ps -> Alcotest.fail (Printf.sprintf "expected 1 pool, got %d" (List.length ps))

let test_plan_deterministic_and_chunk_independent () =
  let profile =
    Workloads.Profile.scale_ops 0.05 (Workloads.Mimalloc_bench.find "espresso")
  in
  let trace = Workloads.Trace.generate profile in
  let text = Workloads.Trace.to_string trace in
  let render_of plan =
    Flowcheck.Poolplan.render plan
    ^ Flowcheck.Poolplan.sites_json plan
    ^ Flowcheck.Poolplan.pools_json plan
  in
  let r1 = render_of (Flowcheck.Poolplan.of_trace trace) in
  let r2 = render_of (Flowcheck.Poolplan.of_trace trace) in
  Alcotest.(check string) "byte-identical across runs" r1 r2;
  List.iter
    (fun chunk_ops ->
      let st = Workloads.Trace.stream_of_string ~chunk_ops text in
      let r = render_of (Flowcheck.Poolplan.of_stream st) in
      Alcotest.(check string)
        (Printf.sprintf "chunk size %d changes nothing" chunk_ops)
        r1 r)
    [ 1; 7; 4096 ]

(* Poolplan.t is a total partition of the declared sites, for arbitrary
   generator parameters and chunk sizes. *)
let prop_plan_total_partition =
  QCheck.Test.make ~name:"pool plan is a total partition of sites" ~count:40
    QCheck.(
      triple (int_range 1 6) (int_range 0 1_000_000) (int_range 1 257))
    (fun (sites, seed, chunk_ops) ->
      let profile =
        Workloads.Profile.make ~name:"prop" ~suite:"test" ~ops:300
          ~size:(Sim.Dist.uniform ~lo:8 ~hi:256)
          ~lifetime:(Sim.Dist.exponential ~mean:60.)
          ~work_per_op:10 ~sites ()
      in
      let trace = Workloads.Trace.generate ~seed profile in
      let st =
        Workloads.Trace.stream_of_string ~chunk_ops
          (Workloads.Trace.to_string trace)
      in
      let plan = Flowcheck.Poolplan.of_stream st in
      let n = plan.Flowcheck.Poolplan.site_count in
      let total =
        Array.length plan.Flowcheck.Poolplan.pool_of_site = n
        && Array.for_all
             (fun p -> p >= 0 && p < plan.Flowcheck.Poolplan.pool_count)
             plan.Flowcheck.Poolplan.pool_of_site
      in
      let members =
        List.concat_map
          (fun p -> p.Flowcheck.Poolplan.members)
          plan.Flowcheck.Poolplan.pools
      in
      let partition =
        List.sort_uniq compare members = List.init n Fun.id
        && List.length members = n
        && List.for_all
             (fun p ->
               List.for_all
                 (fun s -> plan.Flowcheck.Poolplan.pool_of_site.(s) = p.Flowcheck.Poolplan.id)
                 p.Flowcheck.Poolplan.members)
             plan.Flowcheck.Poolplan.pools
      in
      let alloc_plan = Flowcheck.Poolplan.to_alloc_plan plan in
      let runtime =
        alloc_plan.Alloc.Poolalloc.sites = n
        && alloc_plan.Alloc.Poolalloc.pools = plan.Flowcheck.Poolplan.pool_count
      in
      total && partition && runtime)

let test_oracle_detects_unsound_baseline () =
  (* Under the no-analysis identity plan every pool recycles: the freed
     slot is re-served for id 1 while root[1] still points at id 0 —
     the oracle must flag it. *)
  let trace =
    Workloads.Trace.of_string
      "# msweep-trace v1 bad\na 0 64\np r 1 0\nx 0\na 1 64\n"
  in
  let r = Sanitizer.Pool_oracle.run trace in
  Alcotest.(check int) "one recycle" 1 r.Sanitizer.Pool_oracle.recycled;
  Alcotest.(check (list int)) "unsound recycle flagged" [ 0 ]
    r.Sanitizer.Pool_oracle.unsound_ids;
  Alcotest.(check bool) "certify reports the miss" true
    (Sanitizer.Pool_oracle.certify r <> [])

let test_analysis_plan_is_certified () =
  (* Same trace, analysis-derived plan: site 0 is pointer-exposed, so
     its pool retires and the unsound recycle cannot happen. *)
  let trace =
    Workloads.Trace.of_string
      "# msweep-trace v1 bad\na 0 64\np r 1 0\nx 0\na 1 64\n"
  in
  let plan = Flowcheck.Poolplan.of_trace trace in
  let r =
    Sanitizer.Pool_oracle.run
      ~plan:(Flowcheck.Poolplan.to_alloc_plan plan)
      trace
  in
  Alcotest.(check int) "no recycle at all" 0 r.Sanitizer.Pool_oracle.recycled;
  Alcotest.(check (list int)) "zero unsound" []
    r.Sanitizer.Pool_oracle.unsound_ids;
  Alcotest.(check (list string)) "certified" []
    (List.map Sanitizer.Diagnostic.to_string (Sanitizer.Pool_oracle.certify r))

(* The acceptance contract, in miniature per profile: every
   mimalloc-bench trace's analysis plan is certified UAF-free by the
   differential oracle, and the static pool bounds dominate the pooled
   backend's telemetry with zero misses. *)
let test_mimalloc_certified_and_bounded () =
  List.iter
    (fun profile ->
      let profile = Workloads.Profile.scale_ops 0.02 profile in
      let name = profile.Workloads.Profile.name in
      let trace = Workloads.Trace.generate profile in
      let plan = Flowcheck.Poolplan.of_trace trace in
      let r =
        Sanitizer.Pool_oracle.run
          ~plan:(Flowcheck.Poolplan.to_alloc_plan plan)
          trace
      in
      Alcotest.(check (list string))
        (name ^ ": zero unsound recycles")
        []
        (List.map Sanitizer.Diagnostic.to_string
           (Sanitizer.Pool_oracle.certify r));
      let checks =
        Flowcheck.Poolplan.check_pool_stats plan r.Sanitizer.Pool_oracle.pool_stats
      in
      Alcotest.(check bool) (name ^ ": bounds computed") true (checks <> []);
      List.iter
        (fun (c : Flowcheck.Poolplan.bound_check) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: pool %d %s %d <= %d" name
               c.Flowcheck.Poolplan.check_pool c.Flowcheck.Poolplan.metric
               c.Flowcheck.Poolplan.measured c.Flowcheck.Poolplan.bound)
            true c.Flowcheck.Poolplan.holds)
        checks)
    Workloads.Mimalloc_bench.all

let test_server_trace_certified () =
  match Workloads.Server.find "steady" with
  | None -> Alcotest.fail "server profile missing"
  | Some profile ->
    let profile = Workloads.Server.scale 0.1 profile in
    let trace = Workloads.Server.to_trace profile in
    Alcotest.(check int) "server traces declare semantic sites" 2
      trace.Workloads.Trace.sites;
    let plan = Flowcheck.Poolplan.of_trace trace in
    let r =
      Sanitizer.Pool_oracle.run
        ~plan:(Flowcheck.Poolplan.to_alloc_plan plan)
        trace
    in
    Alcotest.(check (list string)) "server plan certified" []
      (List.map Sanitizer.Diagnostic.to_string
         (Sanitizer.Pool_oracle.certify r));
    List.iter
      (fun (c : Flowcheck.Poolplan.bound_check) ->
        Alcotest.(check bool)
          (Printf.sprintf "server pool %d %s holds"
             c.Flowcheck.Poolplan.check_pool c.Flowcheck.Poolplan.metric)
          true c.Flowcheck.Poolplan.holds)
      (Flowcheck.Poolplan.check_pool_stats plan r.Sanitizer.Pool_oracle.pool_stats)

let test_bound_check_detector_fires () =
  let plan = plan_of_text "# msweep-trace v1 t\na 0 64\nx 0\n" in
  let forged =
    Array.map
      (fun (s : Alloc.Poolalloc.pool_stats) ->
        { s with Alloc.Poolalloc.footprint_bytes = max_int })
      (let r = Sanitizer.Pool_oracle.run (Workloads.Trace.of_string "# msweep-trace v1 t\na 0 64\nx 0\n") in
       r.Sanitizer.Pool_oracle.pool_stats)
  in
  let checks = Flowcheck.Poolplan.check_pool_stats plan forged in
  Alcotest.(check bool) "forged footprint is flagged" true
    (List.exists
       (fun (c : Flowcheck.Poolplan.bound_check) ->
         c.Flowcheck.Poolplan.metric = "footprint" && not c.Flowcheck.Poolplan.holds)
       checks);
  Alcotest.check_raises "pool count mismatch rejected"
    (Invalid_argument "Poolplan.check_pool_stats: pool count mismatch")
    (fun () -> ignore (Flowcheck.Poolplan.check_pool_stats plan [||]))

(* Schema v2: carries site/pool records, stays v1-parseable. *)
let test_json_v2_schema () =
  let trace =
    Workloads.Trace.of_string
      "# msweep-trace v1 t\n# sites 2\na 0 64 1\np r 1 0\nx 0\n"
  in
  let report = Flowcheck.Report.analyze_trace trace in
  let plan = Flowcheck.Poolplan.of_trace trace in
  let doc = Flowcheck.Report.to_json ~pools:plan report in
  Alcotest.(check (option string)) "schema bumped"
    (Some "\"msweep-flowcheck-v2\"")
    (Flowcheck.Report.json_field doc "schema");
  Alcotest.(check bool) "sites array present" true
    (match Flowcheck.Report.json_field doc "sites" with
    | Some s -> String.length s > 2
    | None -> false);
  Alcotest.(check bool) "pools array present" true
    (match Flowcheck.Report.json_field doc "pools" with
    | Some s -> String.length s > 2
    | None -> false);
  let doc' =
    Flowcheck.Report.to_json ~pools:(Flowcheck.Poolplan.of_trace trace)
      (Flowcheck.Report.analyze_trace trace)
  in
  Alcotest.(check string) "double run byte-identical" doc doc';
  (* Without the pooling analysis the arrays are empty but present. *)
  let bare = Flowcheck.Report.to_json report in
  Alcotest.(check (option string)) "empty sites" (Some "[]")
    (Flowcheck.Report.json_field bare "sites");
  (* A v1 document (no sites/pools fields) reads identically through
     the same tolerant extractor: v1 consumers survive the bump, and
     v2 readers survive v1 documents. *)
  let v1_doc =
    "{\"schema\":\"msweep-flowcheck-v1\",\"trace\":\"legacy {x} \\\"q\\\"\",\
     \"ops\":12,\"allocs\":3,\"frees\":2,\"findings\":[{\"rule\":\"flow-dangling\",\
     \"severity\":\"error\",\"op\":7,\"message\":\"a, b] c\"}],\
     \"predicted_unsound\":[0],\"bounds\":[]}"
  in
  Alcotest.(check (option string)) "v1 schema readable"
    (Some "\"msweep-flowcheck-v1\"")
    (Flowcheck.Report.json_field v1_doc "schema");
  Alcotest.(check (option string)) "v1 scalar field"
    (Some "12")
    (Flowcheck.Report.json_field v1_doc "ops");
  Alcotest.(check (option string)) "v1 nested array with tricky string"
    (Some
       "[{\"rule\":\"flow-dangling\",\"severity\":\"error\",\"op\":7,\
        \"message\":\"a, b] c\"}]")
    (Flowcheck.Report.json_field v1_doc "findings");
  Alcotest.(check (option string)) "absent field is None" None
    (Flowcheck.Report.json_field v1_doc "pools")

let suite =
  ( "siteflow",
    [
      Alcotest.test_case "clean sites share one pool" `Quick
        test_clean_sites_share_one_pool;
      Alcotest.test_case "ptr exposure retires" `Quick
        test_ptr_exposure_retires;
      Alcotest.test_case "alias isolates site" `Quick test_alias_isolates_site;
      Alcotest.test_case "wild treated as alias" `Quick
        test_wild_treated_as_alias;
      Alcotest.test_case "out-of-range site clamped" `Quick
        test_out_of_range_site_clamped;
      Alcotest.test_case "pooled usable agrees with policy" `Quick
        test_pooled_usable_agrees;
      Alcotest.test_case "bounds math" `Quick test_bounds_math;
      Alcotest.test_case "plan deterministic, chunk-independent" `Quick
        test_plan_deterministic_and_chunk_independent;
      QCheck_alcotest.to_alcotest prop_plan_total_partition;
      Alcotest.test_case "oracle flags unsound baseline" `Quick
        test_oracle_detects_unsound_baseline;
      Alcotest.test_case "analysis plan is certified" `Quick
        test_analysis_plan_is_certified;
      Alcotest.test_case "mimalloc-bench certified + bounded" `Slow
        test_mimalloc_certified_and_bounded;
      Alcotest.test_case "server trace certified" `Quick
        test_server_trace_certified;
      Alcotest.test_case "bound-check detector fires" `Quick
        test_bound_check_detector_fires;
      Alcotest.test_case "json schema v2" `Quick test_json_v2_schema;
    ] )
