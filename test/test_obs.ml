(* Telemetry subsystem tests: registry semantics, trace-ring bounds,
   export determinism, and the redesigned Stats / error APIs built on
   top of them. *)

module R = Obs.Registry
module Ring = Obs.Trace_ring
module Export = Obs.Export
module I = Minesweeper.Instance
module C = Minesweeper.Config
module Stats = Minesweeper.Stats

let fresh ?config () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  (machine, I.create ?config machine)

let churn ms n size =
  for _ = 1 to n do
    let p = I.malloc ms size in
    I.free ms p
  done;
  I.drain ms

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)

let test_histogram_buckets () =
  let open R.Histogram in
  Alcotest.(check int) "63 buckets" 63 bucket_count;
  (* Bucket 0 absorbs v <= 1; bucket i covers [2^i, 2^(i+1)). *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b (bucket_of v))
    [
      (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3);
      (1023, 9); (1024, 10); (1025, 10); (1 lsl 40, 40); (max_int, 61);
    ];
  Alcotest.(check int) "lower_bound 0" 0 (lower_bound 0);
  Alcotest.(check int) "lower_bound 1" 2 (lower_bound 1);
  Alcotest.(check int) "lower_bound 10" 1024 (lower_bound 10);
  (* Every representable bucket's lower bound maps back into that bucket
     (bucket 62's lower bound, [1 lsl 62], overflows a 63-bit int). *)
  for i = 0 to 61 do
    Alcotest.(check int)
      (Printf.sprintf "lower_bound/bucket_of round-trip %d" i)
      i
      (bucket_of (lower_bound i))
  done

let test_histogram_observe () =
  let reg = R.create () in
  let h = R.histogram reg "h" in
  List.iter (R.Histogram.observe h) [ 0; 1; 3; 1024; -5 ];
  Alcotest.(check int) "count" 5 (R.Histogram.count h);
  (* -5 clamps to 0 before summing. *)
  Alcotest.(check int) "sum" 1028 (R.Histogram.sum h);
  Alcotest.(check (list (pair int int)))
    "non-empty buckets, ascending"
    [ (0, 3); (2, 1); (1024, 1) ]
    (R.Histogram.buckets h)

let test_registry_basics () =
  let reg = R.create () in
  let c = R.counter reg "b.count" in
  let g = R.gauge reg "a.level" in
  R.derive_gauge reg "c.derived" (fun () -> 7);
  R.Counter.incr c 3;
  R.Counter.incr c 2;
  R.Gauge.set g 10;
  R.Gauge.set_max g 4;
  Alcotest.(check int) "counter accumulates" 5 (R.Counter.value c);
  Alcotest.(check int) "set_max keeps high-watermark" 10 (R.Gauge.value g);
  Alcotest.(check (list string))
    "names sorted" [ "a.level"; "b.count"; "c.derived" ] (R.names reg);
  Alcotest.(check (option int)) "read counter" (Some 5) (R.read reg "b.count");
  Alcotest.(check (option int)) "read derived" (Some 7) (R.read reg "c.derived");
  Alcotest.(check (option int)) "read missing" None (R.read reg "nope");
  Alcotest.check_raises "duplicate name rejected" (R.Duplicate "b.count")
    (fun () -> ignore (R.counter reg "b.count"));
  R.reset reg;
  Alcotest.(check (option int)) "counter zeroed" (Some 0) (R.read reg "b.count");
  Alcotest.(check (option int)) "gauge zeroed" (Some 0) (R.read reg "a.level");
  Alcotest.(check (option int))
    "derived reads through reset" (Some 7) (R.read reg "c.derived")

let test_merge_into () =
  let src = R.create () in
  let c = R.counter src "reqs" in
  let g = R.gauge src "depth" in
  let h = R.histogram src "lat" in
  R.derive_gauge src "derived" (fun () -> 11);
  R.Counter.incr c 5;
  R.Gauge.set g 9;
  List.iter (R.Histogram.observe h) [ 1; 3; 100 ];
  let into = R.create () in
  (* Fresh names: merge creates plain cells carrying the values. *)
  R.merge_into ~prefix:"t0." src ~into;
  Alcotest.(check (option int)) "counter copied" (Some 5)
    (R.read into "t0.reqs");
  Alcotest.(check (option int)) "derived sampled into a plain gauge"
    (Some 11) (R.read into "t0.derived");
  (* Merging a second source under the SAME prefix is additive —
     counters and gauges add, histograms add bucket-wise. *)
  let src2 = R.create () in
  let c2 = R.counter src2 "reqs" in
  let h2 = R.histogram src2 "lat" in
  R.Counter.incr c2 7;
  List.iter (R.Histogram.observe h2) [ 3; 200_000 ];
  R.merge_into ~prefix:"t0." src2 ~into;
  Alcotest.(check (option int)) "counter collision adds" (Some 12)
    (R.read into "t0.reqs");
  (match R.find into "t0.lat" with
  | Some (R.Histogram mh) ->
    Alcotest.(check int) "histogram count adds" 5 (R.Histogram.count mh);
    Alcotest.(check int) "histogram sum adds" 200_107 (R.Histogram.sum mh);
    let expect v n =
      (* buckets are (lower_bound, count) pairs *)
      let lb = R.Histogram.lower_bound (R.Histogram.bucket_of v) in
      let got =
        try List.assoc lb (R.Histogram.buckets mh) with Not_found -> 0
      in
      Alcotest.(check int) (Printf.sprintf "bucket of %d" v) n got
    in
    expect 1 1;
    expect 3 2;
    expect 100 1;
    expect 200_000 1
  | _ -> Alcotest.fail "t0.lat should be a merged histogram");
  (* A name collision across KINDS is a caller bug, not data. *)
  let bad = R.create () in
  ignore (R.counter bad "depth");
  Alcotest.check_raises "kind mismatch rejected" (R.Kind_mismatch "t0.depth")
    (fun () -> R.merge_into ~prefix:"t0." bad ~into);
  (* Merge output is deterministic: names come out sorted. *)
  Alcotest.(check (list string))
    "merged names sorted"
    [ "t0.depth"; "t0.derived"; "t0.lat"; "t0.reqs" ]
    (R.names into)

(* ------------------------------------------------------------------ *)
(* Trace ring                                                         *)

let emit_n ring n =
  for i = 0 to n - 1 do
    Ring.emit ring ~phase:Ring.Mark ~label:"m" ~t_start:i ~t_end:i ()
  done

let test_ring_overflow () =
  let ring = Ring.create ~capacity:4 () in
  emit_n ring 3;
  Alcotest.(check bool) "not wrapped before capacity" false (Ring.wrapped ring);
  emit_n ring 3;
  Alcotest.(check int) "emitted counts evictions" 6 (Ring.emitted ring);
  Alcotest.(check int) "retained capped at capacity" 4 (Ring.retained ring);
  Alcotest.(check bool) "wrapped" true (Ring.wrapped ring);
  Alcotest.(check (list int))
    "oldest spans evicted, order preserved" [ 2; 3; 4; 5 ]
    (List.map (fun s -> s.Ring.seq) (Ring.spans ring))

let test_ring_enter_exit () =
  let ring = Ring.create ~capacity:8 () in
  let p = Ring.enter ~now:100 Ring.Scan "stw-rescan" in
  Ring.exit ring p ~now:150 ~bytes:4096 ~attrs:[ ("sweep", 2) ] ();
  match Ring.spans ring with
  | [ s ] ->
    Alcotest.(check int) "t_start" 100 s.Ring.t_start;
    Alcotest.(check int) "t_end" 150 s.Ring.t_end;
    Alcotest.(check int) "bytes" 4096 s.Ring.bytes;
    Alcotest.(check string) "label" "stw-rescan" s.Ring.label;
    Alcotest.(check (list (pair string int))) "attrs" [ ("sweep", 2) ]
      s.Ring.attrs
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_phase_names () =
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "phase %s round-trips" (Ring.phase_name phase))
        true
        (Ring.phase_of_name (Ring.phase_name phase) = Some phase))
    [ Ring.Mark; Ring.Scan; Ring.Purge; Ring.Quarantine; Ring.Alloc_slow;
      Ring.Race ];
  Alcotest.(check bool) "unknown phase name" true
    (Ring.phase_of_name "bogus" = None)

(* ------------------------------------------------------------------ *)
(* Export                                                             *)

let test_metrics_roundtrip () =
  let reg = R.create () in
  let c = R.counter reg "ms.sweeps" in
  let g = R.gauge reg "ms.cache_bytes" in
  let h = R.histogram reg "ms.scan_bytes" in
  R.derive_counter reg "alloc.mallocs" (fun () -> 41);
  R.Counter.incr c 12;
  R.Gauge.set g 3456;
  List.iter (R.Histogram.observe h) [ 300; 600; 700 ];
  let text = Export.metrics_to_string reg in
  (match Export.parse_metrics text with
  | Error e -> Alcotest.failf "parse_metrics: %s" e
  | Ok pairs ->
    Alcotest.(check (list (pair string int)))
      "round-trip (histogram scalar = count)"
      [
        ("alloc.mallocs", 41); ("ms.cache_bytes", 3456); ("ms.scan_bytes", 3);
        ("ms.sweeps", 12);
      ]
      pairs);
  (* The header advertises the exact line count: truncation is detected. *)
  let truncated =
    String.concat "\n"
      (List.filteri (fun i _ -> i < 3) (String.split_on_char '\n' text))
    ^ "\n"
  in
  Alcotest.(check bool) "truncated export rejected" true
    (Result.is_error (Export.parse_metrics truncated))

let test_spans_export () =
  let ring = Ring.create ~capacity:8 () in
  Ring.emit ring ~phase:Ring.Mark ~label:"mark-full" ~t_start:10 ~t_end:42
    ~bytes:8192 ~attrs:[ ("sweep", 2) ] ();
  let text = Export.spans_to_string ring in
  match String.split_on_char '\n' (String.trim text) with
  | [ header; span ] ->
    (match Export.parse_line header with
    | Ok j ->
      Alcotest.(check (option string)) "schema" (Some "msweep-spans-v1")
        (Option.bind (Export.member "schema" j) Export.to_string);
      Alcotest.(check (option int)) "retained" (Some 1)
        (Option.bind (Export.member "retained" j) Export.to_int)
    | Error e -> Alcotest.failf "header: %s" e);
    (match Export.parse_line span with
    | Ok j ->
      Alcotest.(check (option string)) "phase" (Some "mark")
        (Option.bind (Export.member "phase" j) Export.to_string);
      Alcotest.(check (option int)) "bytes" (Some 8192)
        (Option.bind (Export.member "bytes" j) Export.to_int);
      Alcotest.(check (option int)) "attr sweep" (Some 2)
        (Option.bind
           (Option.bind (Export.member "attrs" j) (Export.member "sweep"))
           Export.to_int)
    | Error e -> Alcotest.failf "span: %s" e)
  | lines -> Alcotest.failf "expected 2 lines, got %d" (List.length lines)

(* Two identical runs of the full stack must export byte-identical
   metrics — the determinism the check.sh gate and the paper's
   reproducibility claims rest on. *)
let test_export_determinism () =
  let run () =
    let captured = ref None in
    let profile = Workloads.Spec2006.find "perlbench" in
    ignore
      (Workloads.Driver.run ~ops_scale:0.005
         ~on_build:(fun stack -> captured := stack.Workloads.Harness.obs)
         profile
         (Workloads.Harness.Mine_sweeper C.default));
    match !captured with
    | Some reg -> Export.metrics_to_string reg
    | None -> Alcotest.fail "Mine_sweeper stack exposed no registry"
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "exports non-trivial" true (String.length a > 200);
  Alcotest.(check string) "byte-identical across identical runs" a b

(* ------------------------------------------------------------------ *)
(* Stats over the registry                                            *)

let test_stats_completeness () =
  let _, ms = fresh () in
  let reg = I.registry ms in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s registered" name)
        true (R.mem reg name))
    Stats.registered_names;
  Alcotest.(check int) "one registry name per snapshot field"
    (List.length Stats.field_names)
    (List.length Stats.registered_names);
  Alcotest.(check (list string)) "to_fields covers the field set"
    Stats.field_names
    (List.map fst (Stats.to_fields (I.stats ms)))

let test_stats_reset () =
  let _, ms = fresh () in
  churn ms 4_000 64;
  let s = I.stats ms in
  Alcotest.(check bool) "activity recorded" true
    (s.Stats.frees_intercepted > 0 && s.Stats.sweeps > 0);
  I.reset_stats ms;
  List.iter
    (fun (name, v) ->
      Alcotest.(check int) (Printf.sprintf "%s zeroed" name) 0 v)
    (Stats.to_fields (I.stats ms));
  (* A snapshot is a point-in-time copy: resetting must not rewrite
     history captured before the reset. *)
  Alcotest.(check bool) "pre-reset snapshot unaffected" true
    (s.Stats.frees_intercepted > 0)

(* Acceptance criterion: sweep-phase spans account for 100% of the
   charged cost-model bytes — the mark spans (full or incremental) plus
   the stop-the-world re-scan spans sum exactly to [swept_bytes]. *)
let span_coverage config =
  let _, ms = fresh ~config () in
  churn ms 6_000 64;
  let ring = I.trace_ring ms in
  Alcotest.(check bool) "ring holds the complete history" false
    (Ring.wrapped ring);
  let charged =
    List.fold_left
      (fun acc s ->
        match (s.Ring.phase, s.Ring.label) with
        | Ring.Mark, ("mark-full" | "mark-incremental") -> acc + s.Ring.bytes
        | Ring.Scan, "stw-rescan" -> acc + s.Ring.bytes
        | _ -> acc)
      0 (Ring.spans ring)
  in
  let s = I.stats ms in
  Alcotest.(check bool) "profile actually swept" true (s.Stats.sweeps > 0);
  Alcotest.(check int) "span bytes == swept_bytes" s.Stats.swept_bytes charged

let test_span_coverage_default () = span_coverage C.default
let test_span_coverage_incremental () = span_coverage C.incremental
let test_span_coverage_mostly () = span_coverage C.mostly_concurrent

(* ------------------------------------------------------------------ *)
(* Typed error API                                                    *)

let error : I.error Alcotest.testable =
  Alcotest.testable I.pp_error ( = )

let test_free_result () =
  let _, ms = fresh () in
  let p = I.malloc ms 64 in
  Alcotest.(check (result unit error)) "first free succeeds" (Ok ())
    (I.free_result ms p);
  Alcotest.(check (result unit error)) "second free reports double free"
    (Error (I.Double_free p))
    (I.free_result ms p);
  let bogus = p + 8 in
  Alcotest.(check (result unit error)) "unknown pointer rejected"
    (Error (I.Unknown_pointer bogus))
    (I.free_result ms bogus);
  let s = I.stats ms in
  Alcotest.(check int) "double free counted once" 1 s.Stats.double_frees;
  Alcotest.(check int) "unknown pointer intercepts nothing" 2
    s.Stats.frees_intercepted

let test_calloc_result () =
  let _, ms = fresh () in
  (match I.calloc_result ms 4 16 with
  | Ok p -> Alcotest.(check bool) "calloc serves an address" true (p <> 0)
  | Error e -> Alcotest.failf "calloc_result: %a" I.pp_error e);
  Alcotest.(check bool) "count*size overflow rejected" true
    (I.calloc_result ms max_int 2 = Error I.Size_overflow)

let test_realloc_result () =
  let machine, ms = fresh () in
  let p = I.malloc ms 64 in
  Vmem.store machine.Alloc.Machine.mem p 4242;
  (match I.realloc_result ms p 256 with
  | Ok q ->
    Alcotest.(check int) "contents copied" 4242
      (Vmem.load machine.Alloc.Machine.mem q);
    Alcotest.(check (result unit error)) "old block now quarantined"
      (Error (I.Double_free p))
      (I.free_result ms p)
  | Error e -> Alcotest.failf "realloc_result: %a" I.pp_error e);
  let q = I.malloc ms 64 in
  I.free ms q;
  Alcotest.(check (result int error)) "realloc of a freed block rejected"
    (Error (I.Double_free q))
    (I.realloc_result ms q 128)

(* ------------------------------------------------------------------ *)
(* Config presets                                                     *)

let test_config_presets () =
  (match C.of_preset "default" with
  | Ok c -> Alcotest.(check bool) "default preset" true (c = C.default)
  | Error e -> Alcotest.failf "of_preset default: %s" e);
  (match C.of_preset "ms" with
  | Ok c -> Alcotest.(check bool) "alias ms -> default" true (c = C.default)
  | Error e -> Alcotest.failf "of_preset ms: %s" e);
  (match C.of_preset "ms-inc" with
  | Ok c ->
    Alcotest.(check bool) "alias ms-inc -> incremental" true
      (c = C.incremental)
  | Error e -> Alcotest.failf "of_preset ms-inc: %s" e);
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "preset %s resolves" name)
        true
        (Result.is_ok (C.of_preset name)))
    C.presets;
  Alcotest.(check bool) "unknown preset rejected with the accepted list" true
    (match C.of_preset "bogus" with
    | Error msg -> String.length msg > 0
    | Ok _ -> false);
  List.iter
    (fun (name, c) ->
      Alcotest.(check (option string))
        (Printf.sprintf "preset_name reverses %s" name)
        (Some name) (C.preset_name c))
    C.presets;
  Alcotest.(check (option string)) "hand-built config has no preset name" None
    (C.preset_name (C.make ~threshold_min_bytes:123_456 ()))

let test_config_make () =
  Alcotest.(check bool) "make () = default" true (C.make () = C.default);
  let c = C.make ~zeroing:false () in
  Alcotest.(check bool) "override applies" true
    ((not c.C.zeroing) && C.default.C.zeroing)

(* ------------------------------------------------------------------ *)
(* Histogram quantiles: within-bucket interpolation boundary cases.    *)

let hist_with observations =
  let reg = R.create () in
  let h = R.histogram reg "q" in
  List.iter (fun (v, n) -> for _ = 1 to n do R.Histogram.observe h v done)
    observations;
  h

let test_upper_bounds () =
  Alcotest.(check int) "bucket 0" 2 (R.Histogram.upper_bound 0);
  Alcotest.(check int) "bucket 5" 64 (R.Histogram.upper_bound 5);
  Alcotest.(check int) "last bucket open-ended" max_int
    (R.Histogram.upper_bound (R.Histogram.bucket_count - 1))

let test_quantile_empty () =
  Alcotest.(check (float 0.)) "empty histogram" 0.
    (R.Histogram.quantile (hist_with []) 0.999)

let test_quantile_single_observation () =
  (* One observation of 100 lands in bucket [64, 128). The raw upper
     bound would report every quantile as 128 (a 28% overstatement here,
     up to ~2x in general); interpolation spreads the rank across the
     bucket instead. *)
  let h = hist_with [ (100, 1) ] in
  Alcotest.(check (float 1e-9)) "q=0 reads the lower edge" 64.
    (R.Histogram.quantile h 0.);
  Alcotest.(check (float 1e-9)) "q=1 reads the upper edge" 128.
    (R.Histogram.quantile h 1.);
  Alcotest.(check (float 1e-9)) "median interpolates" 96.
    (R.Histogram.quantile h 0.5);
  let p999 = R.Histogram.quantile h 0.999 in
  Alcotest.(check bool) "p999 stays inside the bucket" true
    (p999 > 127.8 && p999 < 128.)

let test_quantile_boundary_mass () =
  (* All mass exactly on a power of two: the documented worst case. The
     true p50 is 1024; interpolation reads 1536 (+50%), the raw upper
     bound would read 2048 (+100%). *)
  let h = hist_with [ (1024, 1000) ] in
  let p50 = R.Histogram.quantile h 0.5 in
  Alcotest.(check (float 1e-9)) "worst-case +50%" 1536. p50;
  Alcotest.(check bool) "better than the raw upper bound" true (p50 < 2048.)

let test_quantile_mixed_tail () =
  (* 900 fast requests (2 cycles), 100 slow (1500 cycles, bucket
     [1024, 2048)): p50 in the fast bucket, p99/p999 interpolated within
     the slow bucket, strictly below its upper edge. *)
  let h = hist_with [ (2, 900); (1500, 100) ] in
  let p50 = R.Histogram.quantile h 0.5 in
  let p99 = R.Histogram.quantile h 0.99 in
  let p999 = R.Histogram.quantile h 0.999 in
  Alcotest.(check bool) "p50 in fast bucket" true (p50 >= 2. && p50 < 4.);
  Alcotest.(check bool) "p99 in slow bucket" true (p99 >= 1024. && p99 < 2048.);
  Alcotest.(check bool) "ordered" true (p50 <= p99 && p99 <= p999);
  Alcotest.(check bool) "p999 below raw upper bound" true (p999 < 2048.)

let test_quantile_clamps () =
  let h = hist_with [ (10, 5) ] in
  Alcotest.(check (float 1e-9)) "q < 0 clamps to 0" (R.Histogram.quantile h 0.)
    (R.Histogram.quantile h (-3.));
  Alcotest.(check (float 1e-9)) "q > 1 clamps to 1" (R.Histogram.quantile h 1.)
    (R.Histogram.quantile h 7.)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (int_range 0 100_000))
        (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun (values, (q1, q2)) ->
      let h = hist_with (List.map (fun v -> (v, 1)) values) in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      R.Histogram.quantile h lo <= R.Histogram.quantile h hi +. 1e-9)

let suite =
  ( "obs",
    [
      Alcotest.test_case "histogram bucket boundaries" `Quick
        test_histogram_buckets;
      Alcotest.test_case "histogram upper bounds" `Quick test_upper_bounds;
      Alcotest.test_case "quantile: empty" `Quick test_quantile_empty;
      Alcotest.test_case "quantile: single observation" `Quick
        test_quantile_single_observation;
      Alcotest.test_case "quantile: boundary mass" `Quick
        test_quantile_boundary_mass;
      Alcotest.test_case "quantile: mixed tail" `Quick test_quantile_mixed_tail;
      Alcotest.test_case "quantile: q clamps" `Quick test_quantile_clamps;
      QCheck_alcotest.to_alcotest prop_quantile_monotone;
      Alcotest.test_case "histogram observe/sum/buckets" `Quick
        test_histogram_observe;
      Alcotest.test_case "registry basics" `Quick test_registry_basics;
      Alcotest.test_case "merge_into: namespaced additive union" `Quick
        test_merge_into;
      Alcotest.test_case "ring overflow evicts oldest" `Quick
        test_ring_overflow;
      Alcotest.test_case "ring enter/exit" `Quick test_ring_enter_exit;
      Alcotest.test_case "phase names round-trip" `Quick test_phase_names;
      Alcotest.test_case "metrics JSONL round-trip" `Quick
        test_metrics_roundtrip;
      Alcotest.test_case "spans JSONL export" `Quick test_spans_export;
      Alcotest.test_case "export determinism" `Slow test_export_determinism;
      Alcotest.test_case "stats registry completeness" `Quick
        test_stats_completeness;
      Alcotest.test_case "stats reset + snapshot isolation" `Quick
        test_stats_reset;
      Alcotest.test_case "span coverage: default" `Quick
        test_span_coverage_default;
      Alcotest.test_case "span coverage: incremental" `Quick
        test_span_coverage_incremental;
      Alcotest.test_case "span coverage: mostly" `Quick
        test_span_coverage_mostly;
      Alcotest.test_case "free_result errors" `Quick test_free_result;
      Alcotest.test_case "calloc_result overflow" `Quick test_calloc_result;
      Alcotest.test_case "realloc_result errors" `Quick test_realloc_result;
      Alcotest.test_case "config presets" `Quick test_config_presets;
      Alcotest.test_case "config make" `Quick test_config_make;
    ] )
