(* Distribution sampling tests. *)

let rng () = Sim.Rng.create 5

let test_constant () =
  let d = Sim.Dist.constant 42 in
  let r = rng () in
  for _ = 1 to 50 do
    Alcotest.(check int) "constant" 42 (Sim.Dist.sample d r)
  done

let test_uniform_bounds () =
  let d = Sim.Dist.uniform ~lo:10 ~hi:20 in
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Sim.Dist.sample d r in
    Alcotest.(check bool) "in [10,20]" true (v >= 10 && v <= 20)
  done

let test_uniform_hits_endpoints () =
  let d = Sim.Dist.uniform ~lo:0 ~hi:3 in
  let r = rng () in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Sim.Dist.sample d r) <- true
  done;
  Alcotest.(check bool) "all endpoints reachable" true
    (Array.for_all Fun.id seen)

let test_exponential_positive () =
  let d = Sim.Dist.exponential ~mean:100. in
  let r = rng () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Sim.Dist.sample d r >= 1)
  done

let test_exponential_mean () =
  let d = Sim.Dist.exponential ~mean:500. in
  let r = rng () in
  let n = 50_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Sim.Dist.sample d r
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "empirical mean %.1f within 5%% of 500" mean)
    true
    (mean > 475. && mean < 525.)

let test_pareto_bounds () =
  let d = Sim.Dist.pareto ~shape:1.3 ~scale:64 ~cap:4096 in
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Sim.Dist.sample d r in
    Alcotest.(check bool) "within [scale, cap]" true (v >= 64 && v <= 4096)
  done

let test_pareto_heavy_tail () =
  let d = Sim.Dist.pareto ~shape:1.1 ~scale:64 ~cap:65536 in
  let r = rng () in
  let big = ref 0 in
  for _ = 1 to 10_000 do
    if Sim.Dist.sample d r > 640 then incr big
  done;
  (* shape 1.1: P(X > 10*scale) ~ 10^-1.1 ~ 8% *)
  Alcotest.(check bool) "tail exists" true (!big > 300 && !big < 2000)

let test_choice_mixture () =
  let d =
    Sim.Dist.choice
      [ (0.5, Sim.Dist.constant 1); (0.5, Sim.Dist.constant 1000) ]
  in
  let r = rng () in
  let ones = ref 0 and n = 10_000 in
  for _ = 1 to n do
    if Sim.Dist.sample d r = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "roughly half" true (frac > 0.45 && frac < 0.55)

let test_choice_weights () =
  let d =
    Sim.Dist.choice
      [ (0.9, Sim.Dist.constant 1); (0.1, Sim.Dist.constant 2) ]
  in
  let r = rng () in
  let ones = ref 0 and n = 10_000 in
  for _ = 1 to n do
    if Sim.Dist.sample d r = 1 then incr ones
  done;
  let frac = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "90/10 split" true (frac > 0.87 && frac < 0.93)

let test_shifted () =
  let d = Sim.Dist.shifted 100 (Sim.Dist.constant 5) in
  Alcotest.(check int) "shifted" 105 (Sim.Dist.sample d (rng ()))

let test_mean_estimates () =
  let close a b = Float.abs (a -. b) /. b < 0.01 in
  Alcotest.(check bool) "constant mean" true
    (close (Sim.Dist.mean_estimate (Sim.Dist.constant 7)) 7.);
  Alcotest.(check bool) "uniform mean" true
    (close (Sim.Dist.mean_estimate (Sim.Dist.uniform ~lo:0 ~hi:10)) 5.);
  Alcotest.(check bool) "exponential mean" true
    (close (Sim.Dist.mean_estimate (Sim.Dist.exponential ~mean:42.)) 42.)

(* ------------------------------------------------------------------ *)
(* Degenerate parameters: clamp-don't-crash semantics (see dist.mli). *)

let test_degenerate_exponential () =
  let r = rng () in
  List.iter
    (fun mean ->
      let d = Sim.Dist.exponential ~mean in
      for _ = 1 to 100 do
        Alcotest.(check int) "degenerate mean samples 1" 1 (Sim.Dist.sample d r)
      done)
    [ 0.; -5.; Float.nan; Float.neg_infinity ]

let test_extreme_exponential_mean () =
  (* Astronomical means must saturate, not hit int_of_float UB. *)
  let r = rng () in
  List.iter
    (fun mean ->
      let d = Sim.Dist.exponential ~mean in
      for _ = 1 to 100 do
        let v = Sim.Dist.sample d r in
        Alcotest.(check bool) "in [1, max_int]" true (v >= 1 && v <= max_int)
      done)
    [ 1e18; 1e300; Float.infinity ]

let test_degenerate_pareto () =
  let r = rng () in
  (* shape <= 0: all mass at the cap. *)
  List.iter
    (fun shape ->
      let d = Sim.Dist.pareto ~shape ~scale:64 ~cap:4096 in
      for _ = 1 to 50 do
        Alcotest.(check int) "heavy-tail degenerate" 4096 (Sim.Dist.sample d r)
      done)
    [ 0.; -1.; Float.nan ];
  (* Tiny shape overflows the variate: clamps to cap, never UB. *)
  let d = Sim.Dist.pareto ~shape:0.001 ~scale:64 ~cap:4096 in
  for _ = 1 to 200 do
    let v = Sim.Dist.sample d r in
    Alcotest.(check bool) "within clamped range" true (v >= 64 && v <= 4096)
  done;
  (* scale/cap clamps: scale >= 1, cap >= scale. *)
  let d = Sim.Dist.pareto ~shape:1.3 ~scale:(-8) ~cap:(-100) in
  for _ = 1 to 50 do
    let v = Sim.Dist.sample d r in
    Alcotest.(check bool) "negative scale/cap clamp to 1" true (v = 1)
  done

let test_reversed_uniform () =
  let d = Sim.Dist.uniform ~lo:20 ~hi:10 in
  let r = rng () in
  for _ = 1 to 200 do
    let v = Sim.Dist.sample d r in
    Alcotest.(check bool) "swapped bounds" true (v >= 10 && v <= 20)
  done

let test_zero_weight_choice () =
  let d =
    Sim.Dist.choice
      [ (0., Sim.Dist.constant 1); (0., Sim.Dist.constant 9) ]
  in
  let r = rng () in
  for _ = 1 to 50 do
    Alcotest.(check int) "zero total weight picks last branch" 9
      (Sim.Dist.sample d r)
  done;
  let d =
    Sim.Dist.choice
      [ (-3., Sim.Dist.constant 1); (1., Sim.Dist.constant 2) ]
  in
  for _ = 1 to 50 do
    Alcotest.(check int) "negative weight clamps to 0" 2 (Sim.Dist.sample d r)
  done

let test_sampler_normalised_guard () =
  let s = Sim.Sampler.create () in
  Alcotest.(check int) "empty trace" 0
    (Array.length (Sim.Sampler.normalised s ~points:10));
  Sim.Sampler.record s ~now:0 ~rss:100;
  Alcotest.(check int) "points = 0" 0
    (Array.length (Sim.Sampler.normalised s ~points:0));
  Alcotest.(check int) "points < 0" 0
    (Array.length (Sim.Sampler.normalised s ~points:(-4)));
  Alcotest.(check int) "points = 1 still works" 1
    (Array.length (Sim.Sampler.normalised s ~points:1))

(* Valid parameters keep their exact pre-clamp sample streams: the CI
   export gates compare runs byte-for-byte, so the clamps must be inert
   in range. Golden first draws for a fixed seed. *)
let test_valid_params_bit_identical () =
  let draws d =
    let r = Sim.Rng.create 5 in
    List.init 4 (fun _ -> Sim.Dist.sample d r)
  in
  let check name expected d =
    Alcotest.(check (list int)) (name ^ " golden stream") expected (draws d)
  in
  check "exponential" [ 53; 76; 152; 146 ] (Sim.Dist.exponential ~mean:100.);
  check "pareto" [ 96; 115; 207; 197 ]
    (Sim.Dist.pareto ~shape:1.3 ~scale:64 ~cap:4096);
  check "uniform" [ 18; 20; 10; 18 ] (Sim.Dist.uniform ~lo:10 ~hi:20)

let prop_degenerate_total =
  QCheck.Test.make ~name:"sampling never raises for arbitrary parameters"
    ~count:500
    QCheck.(
      triple small_int
        (triple (float_range (-1e3) 1e3) small_signed_int small_signed_int)
        (float_range (-10.) 10.))
    (fun (seed, (shape, scale, cap), mean) ->
      let r = Sim.Rng.create seed in
      let p = Sim.Dist.pareto ~shape ~scale ~cap in
      let e = Sim.Dist.exponential ~mean in
      let vp = Sim.Dist.sample p r and ve = Sim.Dist.sample e r in
      vp >= 1 && ve >= 1)

let prop_sample_non_negative =
  QCheck.Test.make ~name:"samples non-negative for non-negative params"
    ~count:300
    QCheck.(triple small_int (int_range 0 1000) (int_range 0 1000))
    (fun (seed, lo, extra) ->
      let r = Sim.Rng.create seed in
      let d = Sim.Dist.uniform ~lo ~hi:(lo + extra) in
      Sim.Dist.sample d r >= 0)

let suite =
  ( "sim.dist",
    [
      Alcotest.test_case "constant" `Quick test_constant;
      Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
      Alcotest.test_case "uniform endpoints" `Quick test_uniform_hits_endpoints;
      Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
      Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
      Alcotest.test_case "pareto bounds" `Quick test_pareto_bounds;
      Alcotest.test_case "pareto heavy tail" `Quick test_pareto_heavy_tail;
      Alcotest.test_case "choice mixture" `Quick test_choice_mixture;
      Alcotest.test_case "choice weights" `Quick test_choice_weights;
      Alcotest.test_case "shifted" `Quick test_shifted;
      Alcotest.test_case "mean estimates" `Quick test_mean_estimates;
      Alcotest.test_case "degenerate exponential" `Quick
        test_degenerate_exponential;
      Alcotest.test_case "extreme exponential mean" `Quick
        test_extreme_exponential_mean;
      Alcotest.test_case "degenerate pareto" `Quick test_degenerate_pareto;
      Alcotest.test_case "reversed uniform" `Quick test_reversed_uniform;
      Alcotest.test_case "zero-weight choice" `Quick test_zero_weight_choice;
      Alcotest.test_case "sampler normalised guard" `Quick
        test_sampler_normalised_guard;
      Alcotest.test_case "valid params bit-identical" `Quick
        test_valid_params_bit_identical;
      QCheck_alcotest.to_alcotest prop_degenerate_total;
      QCheck_alcotest.to_alcotest prop_sample_non_negative;
    ] )
