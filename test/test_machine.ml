(* Machine context tests: sink routing and charge accounting. *)

let test_app_charge () =
  let m = Alloc.Machine.create () in
  Alloc.Machine.charge m 100;
  Alcotest.(check int) "app busy" 100
    (Sim.Clock.app_busy m.Alloc.Machine.clock);
  Alcotest.(check int) "wall" 100 (Sim.Clock.now m.Alloc.Machine.clock)

let test_background_sink () =
  let m = Alloc.Machine.create () in
  Alloc.Machine.with_sink m Alloc.Machine.Background (fun () ->
      Alloc.Machine.charge m 100);
  Alcotest.(check int) "bg busy" 100
    (Sim.Clock.background_busy m.Alloc.Machine.clock);
  Alcotest.(check int) "wall unaffected" 0 (Sim.Clock.now m.Alloc.Machine.clock)

let test_stall_sink () =
  let m = Alloc.Machine.create () in
  Alloc.Machine.with_sink m Alloc.Machine.Stall (fun () ->
      Alloc.Machine.charge m 100);
  Alcotest.(check int) "stalled" 100 (Sim.Clock.stalled m.Alloc.Machine.clock);
  Alcotest.(check int) "wall includes stall" 100
    (Sim.Clock.now m.Alloc.Machine.clock);
  Alcotest.(check int) "busy excludes stall" 0
    (Sim.Clock.app_busy m.Alloc.Machine.clock)

let test_sink_restored () =
  let m = Alloc.Machine.create () in
  (try
     Alloc.Machine.with_sink m Alloc.Machine.Background (fun () ->
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "sink restored after exception" true
    (m.Alloc.Machine.sink = Alloc.Machine.App)

let test_nested_sink_restored () =
  (* An exception escaping an inner with_sink must restore the OUTER
     sink, not App: each level unwinds exactly one switch. *)
  let m = Alloc.Machine.create () in
  Alloc.Machine.with_sink m Alloc.Machine.Background (fun () ->
      (try
         Alloc.Machine.with_sink m Alloc.Machine.Stall (fun () ->
             failwith "boom")
       with Failure _ -> ());
      Alcotest.(check bool) "inner unwind restores Background" true
        (m.Alloc.Machine.sink = Alloc.Machine.Background);
      Alloc.Machine.charge m 7);
  Alcotest.(check int) "charge after unwind lands in background" 7
    (Sim.Clock.background_busy m.Alloc.Machine.clock);
  Alcotest.(check int) "nothing stalled" 0 (Sim.Clock.stalled m.Alloc.Machine.clock);
  Alcotest.(check bool) "outer unwind restores App" true
    (m.Alloc.Machine.sink = Alloc.Machine.App)

let test_cross_machine_sinks () =
  (* The sink is per-machine state: two machines whose with_sink scopes
     interleave (as fleet tenants' do, one step per scheduling quantum)
     must save/restore independently, including when an exception
     unwinds one machine's scope while the other is mid-switch. *)
  let a = Alloc.Machine.create () and b = Alloc.Machine.create () in
  Alloc.Machine.with_sink a Alloc.Machine.Background (fun () ->
      (try
         Alloc.Machine.with_sink b Alloc.Machine.Stall (fun () ->
             Alloc.Machine.charge a 3;
             Alloc.Machine.charge b 5;
             failwith "boom")
       with Failure _ -> ());
      Alcotest.(check bool) "b restored to App by its own unwind" true
        (b.Alloc.Machine.sink = Alloc.Machine.App);
      Alcotest.(check bool) "a untouched by b's unwind" true
        (a.Alloc.Machine.sink = Alloc.Machine.Background);
      Alloc.Machine.charge a 4;
      Alloc.Machine.charge b 6);
  Alcotest.(check int) "a charges all background" 7
    (Sim.Clock.background_busy a.Alloc.Machine.clock);
  Alcotest.(check int) "a never stalled" 0
    (Sim.Clock.stalled a.Alloc.Machine.clock);
  Alcotest.(check int) "b stalled only inside its scope" 5
    (Sim.Clock.stalled b.Alloc.Machine.clock);
  Alcotest.(check int) "b's post-unwind charge is app time" 6
    (Sim.Clock.app_busy b.Alloc.Machine.clock);
  Alcotest.(check bool) "both end at App" true
    (a.Alloc.Machine.sink = Alloc.Machine.App
    && b.Alloc.Machine.sink = Alloc.Machine.App)

let test_charge_bytes () =
  let m = Alloc.Machine.create () in
  Alloc.Machine.charge_bytes m 0.5 1000;
  Alcotest.(check int) "rounded streaming cost" 500
    (Sim.Clock.app_busy m.Alloc.Machine.clock);
  Alloc.Machine.charge_bytes m 0.001 10;
  Alcotest.(check int) "minimum one cycle for non-empty" 501
    (Sim.Clock.app_busy m.Alloc.Machine.clock);
  Alloc.Machine.charge_bytes m 1.0 0;
  Alcotest.(check int) "zero bytes free" 501
    (Sim.Clock.app_busy m.Alloc.Machine.clock)

let test_demand_commit_charges_fault () =
  let m = Alloc.Machine.create () in
  Vmem.map m.Alloc.Machine.mem ~addr:Layout.heap_base ~len:4096;
  Vmem.decommit m.Alloc.Machine.mem ~addr:Layout.heap_base ~len:4096;
  let before = Sim.Clock.app_busy m.Alloc.Machine.clock in
  ignore (Vmem.load m.Alloc.Machine.mem Layout.heap_base);
  Alcotest.(check int) "page-fault cost charged"
    (before + m.Alloc.Machine.cost.Sim.Cost.page_fault)
    (Sim.Clock.app_busy m.Alloc.Machine.clock)

let test_cost_scale_sweep () =
  let c = Sim.Cost.default in
  let scaled = Sim.Cost.scale_sweep 2.0 c in
  Alcotest.(check (float 0.0001)) "sweep doubled"
    (2.0 *. c.Sim.Cost.sweep_per_byte)
    scaled.Sim.Cost.sweep_per_byte;
  Alcotest.(check int) "others untouched" c.Sim.Cost.malloc_fast
    scaled.Sim.Cost.malloc_fast

let suite =
  ( "alloc.machine",
    [
      Alcotest.test_case "app charge" `Quick test_app_charge;
      Alcotest.test_case "background sink" `Quick test_background_sink;
      Alcotest.test_case "stall sink" `Quick test_stall_sink;
      Alcotest.test_case "sink restored on exception" `Quick test_sink_restored;
      Alcotest.test_case "nested sink restored on exception" `Quick
        test_nested_sink_restored;
      Alcotest.test_case "cross-machine sinks independent" `Quick
        test_cross_machine_sinks;
      Alcotest.test_case "charge_bytes" `Quick test_charge_bytes;
      Alcotest.test_case "demand commit charges fault" `Quick
        test_demand_commit_charges_fault;
      Alcotest.test_case "cost scale_sweep" `Quick test_cost_scale_sweep;
    ] )
