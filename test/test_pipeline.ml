(* Sweep-pipeline tests: the typed stage API (Sweep.plan / Sweep.run /
   Sweep.last), the batched-overlap cycle projection, the batched
   quarantine flush, preset → sweep-knob routing, and the pipeline-wide
   determinism discipline — every preset × marking mode × domain count
   must export byte-identical metrics and spans once the [par.*] /
   [sweep.stage.*] telemetry and the per-domain mark spans are
   stripped. *)

module I = Minesweeper.Instance
module C = Minesweeper.Config
module P = Minesweeper.Pipeline
module Q = Minesweeper.Quarantine
module Shadow = Minesweeper.Shadow

(* --- The overlap projection ------------------------------------------ *)

let test_pipeline_cycles () =
  let pc ~domains ~batches stages =
    Parsweep.pipeline_cycles ~domains ~batches (Array.of_list stages)
  in
  Alcotest.(check int) "no stages, no cycles" 0 (pc ~domains:4 ~batches:4 []);
  Alcotest.(check int) "one domain runs sequentially" 600
    (pc ~domains:1 ~batches:8 [ 100; 200; 300 ]);
  Alcotest.(check int) "one batch has nothing to overlap with" 600
    (pc ~domains:4 ~batches:1 [ 100; 200; 300 ]);
  let sum = 4 * 1000 in
  let overlapped = pc ~domains:4 ~batches:8 [ 1000; 1000; 1000; 1000 ] in
  Alcotest.(check bool)
    (Printf.sprintf "balanced stages overlap (%d < %d)" overlapped sum)
    true
    (overlapped < sum);
  Alcotest.(check bool) "bounded below by the slowest stage" true
    (overlapped >= 1000);
  Alcotest.(check bool) "skewed stages never exceed the sequential sum" true
    (pc ~domains:8 ~batches:16 [ 1; 1000; 3 ] <= 1004)

(* --- Preset routing --------------------------------------------------- *)

let test_sweep_of_preset () =
  List.iter
    (fun (name, config) ->
      match C.Sweep.of_preset name with
      | Ok knobs ->
        Alcotest.(check bool)
          (name ^ ": of_preset returns the preset's sweep record")
          true
          (knobs = config.C.sweep)
      | Error e -> Alcotest.fail e)
    C.presets;
  (match C.Sweep.of_preset "ms-inc" with
  | Ok knobs ->
    Alcotest.(check bool) "alias ms-inc routes to incremental marking" true
      (knobs.C.Sweep.mode = C.Incremental)
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unknown names are rejected" true
    (match C.Sweep.of_preset "no-such-preset" with
    | Error _ -> true
    | Ok _ -> false)

(* --- Batched quarantine flush ----------------------------------------- *)

let entry addr usable = { Q.addr; usable; unmapped_len = 0; failures = 0 }

let seeded_quarantine n =
  let machine = Alloc.Machine.create () in
  let q = Q.create machine ~threads:4 in
  for i = 0 to n - 1 do
    Q.push q ~thread:(i mod 4) (entry (0x100000 + (i * 64)) 48)
  done;
  (machine, q)

let lockin_pairs q = List.map (fun e -> (e.Q.addr, e.Q.usable)) (Q.lock_in q)

let test_flush_batch_matches_flush_all () =
  let n = 100 in
  let m_single, q_single = seeded_quarantine n in
  let m_batch, q_batch = seeded_quarantine n in
  let ev_single = ref [] and ev_batch = ref [] in
  Q.set_observer q_single (fun e -> ev_single := e :: !ev_single);
  Q.set_observer q_batch (fun e -> ev_batch := e :: !ev_batch);
  let wall m = Sim.Clock.wall m.Alloc.Machine.clock in
  let before_single = wall m_single in
  Q.flush_all q_single;
  let cost_single = wall m_single - before_single in
  let before_batch = wall m_batch in
  let batches = Q.flush_batch q_batch ~batch:16 in
  let cost_batch = wall m_batch - before_batch in
  Alcotest.(check int) "lock taken once per 16 entries" 7 batches;
  Alcotest.(check bool) "identical Flushed events in identical order" true
    (!ev_single = !ev_batch);
  Alcotest.(check bool)
    (Printf.sprintf "batched flush charges less (%d < %d)" cost_batch
       cost_single)
    true
    (cost_batch < cost_single);
  Alcotest.(check int) "identical byte accounting"
    (Q.fresh_mapped_bytes q_single)
    (Q.fresh_mapped_bytes q_batch);
  Alcotest.(check (list (pair int int)))
    "identical lock-in set in identical order" (lockin_pairs q_single)
    (lockin_pairs q_batch)

let test_flush_batch_empty () =
  let _, q = seeded_quarantine 0 in
  Alcotest.(check int) "empty buffers flush in zero batches" 0
    (Q.flush_batch q ~batch:8);
  let _, q = seeded_quarantine 5 in
  Alcotest.(check int) "batch size is clamped to at least 1" 5
    (Q.flush_batch q ~batch:0)

(* --- Workload scaffolding (same shape as test_parsweep) ---------------- *)

let fresh ?(config = C.default) () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  (machine, I.create ~config machine)

let granule_set shadow =
  let acc = ref [] in
  Shadow.iter_marked shadow (fun a -> acc := a :: !acc);
  List.sort compare !acc

let root_slot = Layout.globals_base + 64

let run_workload ?(ops = 5_000) machine ms seed =
  let rng = Sim.Rng.create seed in
  let mem = machine.Alloc.Machine.mem in
  let live = ref [] in
  let stable = ref [] in
  for _ = 1 to 64 do
    let p = I.malloc ms 1024 in
    Vmem.store mem p p;
    stable := p :: !stable
  done;
  for i = 1 to ops do
    if Sim.Rng.bool rng 0.55 then begin
      let size = 16 + Sim.Rng.int rng 1024 in
      let p = I.malloc ms size in
      if Sim.Rng.bool rng 0.3 then
        Vmem.store mem p (List.nth !stable (Sim.Rng.int rng 64));
      if i mod 97 = 0 then Vmem.store mem root_slot p;
      live := p :: !live
    end
    else
      match !live with
      | p :: rest ->
        I.free ms p;
        live := rest
      | [] -> ()
  done;
  I.drain ms

(* --- The Sweep API ----------------------------------------------------- *)

let test_sweep_run_api () =
  let machine, ms = fresh ~config:(C.with_domains 4 C.default) () in
  run_workload ~ops:2_000 machine ms 5;
  let plan = I.Sweep.plan ms in
  Alcotest.(check bool) "plan derives from the instance config" true
    (plan = P.plan_of_config (I.config ms));
  Alcotest.(check bool) "default plan runs every stage" true
    (plan.P.stages = [ P.Mark; P.Merge; P.Release; P.Purge ]);
  let before = (I.stats ms).Minesweeper.Stats.sweeps in
  let o = I.Sweep.run ms plan in
  Alcotest.(check int) "the run is counted as a sweep" (before + 1)
    (I.stats ms).Minesweeper.Stats.sweeps;
  Alcotest.(check bool) "Sweep.last returns the same outcome" true
    (I.Sweep.last ms = Some o);
  Alcotest.(check bool) "one report per executed stage, in order" true
    (List.map (fun r -> r.P.stage) o.P.reports = plan.P.stages);
  Alcotest.(check bool) "mark scanned something" true (o.P.scanned_bytes > 0);
  Alcotest.(check bool) "pipelined projection never exceeds sequential" true
    (o.P.pipelined_cycles <= o.P.sequential_cycles);
  Alcotest.(check bool) "speedup is at least 1" true (P.speedup o >= 1.0);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (P.stage_name r.P.stage ^ " report is non-negative")
        true
        (r.P.cycles >= 0 && r.P.items >= 0 && r.P.bytes >= 0))
    o.P.reports

let test_mark_shims_route_through_pipeline () =
  let machine, ms = fresh ~config:C.default () in
  run_workload ~ops:2_000 machine ms 3;
  let scanned = I.mark_all_memory ms in
  (match I.Sweep.last ms with
  | None -> Alcotest.fail "mark_all_memory published no outcome"
  | Some o ->
    Alcotest.(check int) "shim returns the outcome's scanned bytes" scanned
      o.P.scanned_bytes;
    Alcotest.(check bool) "shim plan is mark-only" true
      (List.map (fun r -> r.P.stage) o.P.reports = [ P.Mark; P.Merge ]);
    Alcotest.(check int) "no quarantine entries locked in" 0 o.P.entries;
    Alcotest.(check bool) "shim forces a full scan" true
      (o.P.plan.P.mode = C.Full_scan));
  let machine_i, ms_i = fresh ~config:C.incremental () in
  run_workload ~ops:2_000 machine_i ms_i 3;
  let rescanned, replayed = I.mark_incremental ms_i in
  match I.Sweep.last ms_i with
  | None -> Alcotest.fail "mark_incremental published no outcome"
  | Some o ->
    Alcotest.(check int) "replayed words surface in the outcome" replayed
      o.P.replayed_words;
    Alcotest.(check int) "rescanned bytes = scanned minus replays" rescanned
      (o.P.scanned_bytes - (o.P.replayed_words * 8));
    Alcotest.(check bool) "shim plan marks incrementally" true
      (o.P.plan.P.mode = C.Incremental)

(* --- Export determinism across the whole pipeline ---------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* The per-domain mark spans shift the emission ordinal of every later
   span; the ordinal is presentation only, so drop the leading
   ["span":N] field before comparing. *)
let drop_span_seq line =
  if String.length line >= 8 && String.sub line 0 8 = "{\"span\":" then
    match String.index_opt line ',' with
    | Some i -> "{" ^ String.sub line (i + 1) (String.length line - i - 1)
    | None -> line
  else line

(* Everything parallelism is allowed to change: the [par.*] and
   [sweep.stage.*] telemetry, the per-domain mark spans, and the header
   lines whose line counts include them. *)
let strip text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         not
           (contains l "\"schema\""
           || contains l "\"metric\":\"par."
           || contains l "\"metric\":\"sweep.stage."
           || contains l "mark-domain"))
  |> List.map drop_span_seq
  |> String.concat "\n"

type observation = {
  metrics : string;
  spans : string;
  marks : int list;
  stats : Minesweeper.Stats.t;
  wall : int;
}

let observe config seed =
  let machine, ms = fresh ~config () in
  run_workload machine ms seed;
  Alcotest.(check bool) "trace ring did not wrap" false
    (Obs.Trace_ring.wrapped (I.trace_ring ms));
  {
    metrics = strip (Obs.Export.metrics_to_string (I.registry ms));
    spans = strip (Obs.Export.spans_to_string (I.trace_ring ms));
    marks = granule_set (I.shadow ms);
    stats = I.stats ms;
    wall = Sim.Clock.wall machine.Alloc.Machine.clock;
  }

(* The tentpole property, extended from the mark phase to the whole
   pipeline: every preset × marking mode × domain count produces
   byte-identical metrics and spans exports modulo the stripped
   telemetry, the same shadow set, the same stats snapshot and the same
   simulated wall clock. *)
let test_exports_equivalent_across_domains () =
  List.iter
    (fun (preset, base) ->
      List.iter
        (fun (mode_name, mode) ->
          let config = C.with_sweep_mode mode base in
          let reference = observe config 7 in
          List.iter
            (fun domains ->
              let observed = observe (C.with_domains domains config) 7 in
              let name =
                Printf.sprintf "%s/%s @ %d domains" preset mode_name domains
              in
              Alcotest.(check string)
                (name ^ ": metrics export") reference.metrics observed.metrics;
              Alcotest.(check string)
                (name ^ ": spans export") reference.spans observed.spans;
              Alcotest.(check (list int))
                (name ^ ": shadow mark set") reference.marks observed.marks;
              Alcotest.(check int)
                (name ^ ": simulated wall clock") reference.wall observed.wall;
              Alcotest.(check bool)
                (name ^ ": full stats snapshot") true
                (reference.stats = observed.stats))
            [ 2; 4; 8 ])
        [ ("full", C.Full_scan); ("incremental", C.Incremental) ])
    C.presets

let test_stage_telemetry_present () =
  let machine, ms = fresh ~config:(C.with_domains 4 C.default) () in
  run_workload machine ms 17;
  let reg = I.registry ms in
  let read name = Option.value ~default:0 (Obs.Registry.read reg name) in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        ("sweep.stage." ^ name ^ " registered")
        true
        (Obs.Registry.mem reg ("sweep.stage." ^ name)))
    [
      "mark_cycles_est"; "merge_cycles_est"; "release_cycles_est";
      "purge_cycles_est"; "seq_cycles_est"; "pipeline_cycles_est"; "batches";
      "flush_batches";
    ];
  let seq = read "sweep.stage.seq_cycles_est" in
  let pipe = read "sweep.stage.pipeline_cycles_est" in
  Alcotest.(check bool)
    (Printf.sprintf "pipelined projection shortened (%d < %d)" pipe seq)
    true
    (pipe > 0 && pipe < seq);
  Alcotest.(check bool) "flush batches counted" true
    (read "sweep.stage.flush_batches" > 0);
  (* The counters exist at one domain too (values differ, names do not:
     the equivalence test strips them by prefix either way). *)
  let _, ms1 = fresh () in
  Alcotest.(check bool) "stage telemetry registered at 1 domain" true
    (Obs.Registry.mem (I.registry ms1) "sweep.stage.seq_cycles_est")

(* --- Ptrtrack-oracle property ------------------------------------------ *)

(* Interleaved stage completion must never release an entry the exact
   pointer registry still holds: replay random traces through the
   4-domain pipeline under the Sweep_oracle, which mirrors every pointer
   store into a {!Ptrtrack.Registry} and reports [oracle-unsound] if a
   release beats a live pointer. *)
let prop_pipeline_never_releases_held =
  QCheck.Test.make
    ~name:"pipelined sweep never releases an entry the ptrtrack oracle holds"
    ~count:6 QCheck.small_int (fun seed ->
      let trace =
        Workloads.Trace.generate ~seed
          (Workloads.Profile.scale_ops 0.02
             (List.hd Workloads.Mimalloc_bench.all))
      in
      List.for_all
        (fun config ->
          let r =
            Sanitizer.Sweep_oracle.run ~config:(C.with_domains 4 config) trace
          in
          r.Sanitizer.Sweep_oracle.sweeps > 0
          && r.Sanitizer.Sweep_oracle.soundness = [])
        [ C.default; C.incremental ])

let suite =
  ( "minesweeper.pipeline",
    [
      Alcotest.test_case "overlap projection" `Quick test_pipeline_cycles;
      Alcotest.test_case "Sweep.of_preset routing" `Quick test_sweep_of_preset;
      Alcotest.test_case "flush_batch = flush_all" `Quick
        test_flush_batch_matches_flush_all;
      Alcotest.test_case "flush_batch edge cases" `Quick test_flush_batch_empty;
      Alcotest.test_case "Sweep.run outcome" `Quick test_sweep_run_api;
      Alcotest.test_case "deprecated shims route through the pipeline" `Quick
        test_mark_shims_route_through_pipeline;
      Alcotest.test_case "exports equivalent at 1/2/4/8 domains" `Slow
        test_exports_equivalent_across_domains;
      Alcotest.test_case "sweep.stage.* telemetry" `Quick
        test_stage_telemetry_present;
      QCheck_alcotest.to_alcotest prop_pipeline_never_releases_held;
    ] )
