(* Unit and property tests for the deterministic RNG. *)

let test_deterministic () =
  let a = Sim.Rng.create 42 and b = Sim.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Sim.Rng.next a) (Sim.Rng.next b)
  done

let test_seed_changes_stream () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Sim.Rng.next a <> Sim.Rng.next b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_split_independent () =
  let parent = Sim.Rng.create 7 in
  let child = Sim.Rng.split parent in
  let child_values = List.init 10 (fun _ -> Sim.Rng.next child) in
  let parent_values = List.init 10 (fun _ -> Sim.Rng.next parent) in
  Alcotest.(check bool) "streams differ" true (child_values <> parent_values)

let test_split_seed_streams () =
  (* The fleet derives every tenant's (and repeat's) seed with
     split_seed: the derived streams must be pairwise distinct and the
     derivation itself deterministic, or per-tenant traffic would be
     correlated (or irreproducible) across the machine. *)
  let streams = 8 and prefix = 16 in
  let derive () =
    List.init streams (fun index ->
        let rng = Sim.Rng.create (Sim.Rng.split_seed ~seed:9100 ~index) in
        List.init prefix (fun _ -> Sim.Rng.next rng))
  in
  let first = derive () in
  Alcotest.(check bool) "derivation deterministic" true (first = derive ());
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool)
              (Printf.sprintf "streams %d and %d differ" i j)
              true (a <> b))
        first)
    first;
  let parent = Sim.Rng.create 9100 in
  let parent_prefix = List.init prefix (fun _ -> Sim.Rng.next parent) in
  List.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "stream %d differs from parent seed's stream" i)
        true (a <> parent_prefix))
    first

let test_non_negative () =
  let rng = Sim.Rng.create 3 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "next >= 0" true (Sim.Rng.next rng >= 0)
  done

let prop_int_bounds =
  QCheck.Test.make ~name:"Rng.int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create seed in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_float_bounds =
  QCheck.Test.make ~name:"Rng.float within bounds" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create seed in
      let v = Sim.Rng.float rng bound in
      v >= 0.0 && v < bound)

let prop_bool_probability =
  QCheck.Test.make ~name:"Rng.bool respects extreme probabilities" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Sim.Rng.create seed in
      (not (Sim.Rng.bool rng 0.0)) && Sim.Rng.bool rng 1.0)

let test_uniformity () =
  (* Chi-squared-lite: each of 10 buckets should receive 10% +- 3%. *)
  let rng = Sim.Rng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Sim.Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun count ->
      let frac = float_of_int count /. float_of_int n in
      Alcotest.(check bool) "bucket within 3% of uniform" true
        (frac > 0.07 && frac < 0.13))
    buckets

let suite =
  ( "sim.rng",
    [
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "seed changes stream" `Quick test_seed_changes_stream;
      Alcotest.test_case "split independent" `Quick test_split_independent;
      Alcotest.test_case "split_seed streams independent" `Quick
        test_split_seed_streams;
      Alcotest.test_case "non-negative" `Quick test_non_negative;
      Alcotest.test_case "uniformity" `Quick test_uniformity;
      QCheck_alcotest.to_alcotest prop_int_bounds;
      QCheck_alcotest.to_alcotest prop_float_bounds;
      QCheck_alcotest.to_alcotest prop_bool_probability;
    ] )
