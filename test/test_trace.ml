(* Trace generate / serialise / replay tests. *)

let tiny_profile =
  Workloads.Profile.make ~name:"trace-test" ~suite:"test" ~ops:3000
    ~size:(Sim.Dist.uniform ~lo:16 ~hi:512)
    ~lifetime:(Sim.Dist.exponential ~mean:200.)
    ~work_per_op:100 ()

let fresh_stack scheme =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  Workloads.Harness.build scheme ~threads:1 machine

let test_generate_structure () =
  let t = Workloads.Trace.generate tiny_profile in
  Alcotest.(check int) "one alloc per op" 3000
    (Workloads.Trace.allocation_count t);
  Alcotest.(check bool) "frees and writes present" true
    (Workloads.Trace.length t > 6000)

let test_generate_deterministic () =
  let a = Workloads.Trace.generate ~seed:7 tiny_profile in
  let b = Workloads.Trace.generate ~seed:7 tiny_profile in
  Alcotest.(check string) "identical traces"
    (Workloads.Trace.to_string a)
    (Workloads.Trace.to_string b);
  let c = Workloads.Trace.generate ~seed:8 tiny_profile in
  Alcotest.(check bool) "seed changes the trace" true
    (Workloads.Trace.to_string a <> Workloads.Trace.to_string c)

let test_roundtrip () =
  let t = Workloads.Trace.generate tiny_profile in
  let parsed = Workloads.Trace.of_string (Workloads.Trace.to_string t) in
  Alcotest.(check string) "serialise . parse = id"
    (Workloads.Trace.to_string t)
    (Workloads.Trace.to_string parsed);
  Alcotest.(check string) "name preserved" "trace-test"
    parsed.Workloads.Trace.name

let test_threads_header_roundtrip () =
  let text = "# msweep-trace v1 mt\n# threads 3\na 0 64\nx 0 2\na 1 32\nx 1\n" in
  let t = Workloads.Trace.of_string text in
  Alcotest.(check int) "threads parsed" 3 t.Workloads.Trace.threads;
  (match t.Workloads.Trace.ops.(1) with
  | Workloads.Trace.Free { id; thread } ->
    Alcotest.(check int) "free id" 0 id;
    Alcotest.(check int) "free thread" 2 thread
  | _ -> Alcotest.fail "op 1 should be a free");
  (match t.Workloads.Trace.ops.(3) with
  | Workloads.Trace.Free { thread; _ } ->
    Alcotest.(check int) "thread defaults to 0" 0 thread
  | _ -> Alcotest.fail "op 3 should be a free");
  let reparsed = Workloads.Trace.of_string (Workloads.Trace.to_string t) in
  Alcotest.(check int) "threads survive roundtrip" 3
    reparsed.Workloads.Trace.threads;
  Alcotest.(check string) "text roundtrip with header"
    (Workloads.Trace.to_string t)
    (Workloads.Trace.to_string reparsed);
  (* Single-threaded traces keep the compact form: no header, no
     thread column. *)
  let single = Workloads.Trace.generate tiny_profile in
  let contains_threads_header s =
    List.exists
      (fun line -> String.length line >= 9 && String.sub line 0 9 = "# threads")
      (String.split_on_char '\n' s)
  in
  Alcotest.(check bool) "no header for 1 thread" false
    (contains_threads_header (Workloads.Trace.to_string single))

let test_roundtrip_property () =
  (* Round-trip must hold structurally (not just textually) across
     generator profiles and seeds: every op survives serialisation. *)
  let profiles =
    tiny_profile
    :: List.map
         (Workloads.Profile.scale_ops 0.02)
         (List.filteri (fun i _ -> i mod 4 = 0) Workloads.Mimalloc_bench.all)
  in
  List.iter
    (fun profile ->
      List.iter
        (fun seed ->
          let t = Workloads.Trace.generate ~seed profile in
          let parsed =
            Workloads.Trace.of_string (Workloads.Trace.to_string t)
          in
          let label =
            Printf.sprintf "%s seed %d" profile.Workloads.Profile.name seed
          in
          Alcotest.(check string) (label ^ ": name") t.Workloads.Trace.name
            parsed.Workloads.Trace.name;
          Alcotest.(check bool) (label ^ ": ops identical") true
            (t.Workloads.Trace.ops = parsed.Workloads.Trace.ops);
          Alcotest.(check string) (label ^ ": text fixpoint")
            (Workloads.Trace.to_string t)
            (Workloads.Trace.to_string parsed))
        [ 1; 7; 42 ])
    profiles

let test_parse_errors () =
  Alcotest.check_raises "bad op"
    (Failure "Trace.of_string: line 1: unrecognised op: zz 1 2") (fun () ->
      ignore (Workloads.Trace.of_string "zz 1 2"));
  Alcotest.check_raises "bad int"
    (Failure "Trace.of_string: line 1: size") (fun () ->
      ignore (Workloads.Trace.of_string "a 1 pancake"))

let test_parse_error_line_numbers () =
  (* The reported line number must point at the offending line, counting
     the header and every earlier (valid) line. *)
  Alcotest.check_raises "bad op mid-file"
    (Failure "Trace.of_string: line 4: unrecognised op: zz 9") (fun () ->
      ignore
        (Workloads.Trace.of_string
           "# msweep-trace v1 broken\na 0 64\nx 0\nzz 9\na 1 32\n"));
  Alcotest.check_raises "truncated store"
    (Failure "Trace.of_string: line 3: unrecognised op: p r") (fun () ->
      ignore
        (Workloads.Trace.of_string "# msweep-trace v1 broken\na 0 64\np r\n"))

let test_file_roundtrip () =
  let t = Workloads.Trace.generate tiny_profile in
  let path = Filename.temp_file "msweep" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workloads.Trace.to_file t path;
      let back = Workloads.Trace.of_file path in
      Alcotest.(check int) "ops preserved" (Workloads.Trace.length t)
        (Workloads.Trace.length back))

let test_replay_all_schemes () =
  let t = Workloads.Trace.generate tiny_profile in
  List.iter
    (fun scheme ->
      let stack = fresh_stack scheme in
      let executed = Workloads.Trace.replay t stack in
      Alcotest.(check int)
        (stack.Workloads.Harness.scheme ^ " executes every op")
        (Workloads.Trace.length t) executed;
      Alcotest.(check bool) "time advanced" true
        (Sim.Clock.wall stack.Workloads.Harness.machine.Alloc.Machine.clock > 0))
    [
      Workloads.Harness.Baseline;
      Workloads.Harness.Mine_sweeper Minesweeper.Config.default;
      Workloads.Harness.Mark_us;
      Workloads.Harness.Ff_malloc;
      Workloads.Harness.Cr_count;
      Workloads.Harness.P_sweeper;
      Workloads.Harness.Dang_san;
    ]

let test_replay_deterministic () =
  let t = Workloads.Trace.generate tiny_profile in
  let wall scheme =
    let stack = fresh_stack scheme in
    ignore (Workloads.Trace.replay t stack);
    Sim.Clock.wall stack.Workloads.Harness.machine.Alloc.Machine.clock
  in
  Alcotest.(check int) "same trace, same cycles"
    (wall (Workloads.Harness.Mine_sweeper Minesweeper.Config.default))
    (wall (Workloads.Harness.Mine_sweeper Minesweeper.Config.default))

let test_replay_protection () =
  (* A hand-written trace with a deliberate dangling pointer: the freed
     object must stay quarantined under MineSweeper during replay. *)
  let text =
    "# msweep-trace v1 dangling\n\
     a 0 64\n\
     p r 1 0\n\
     x 0\n"
    ^ String.concat ""
        (List.init 3000 (fun i ->
             Printf.sprintf "a %d 64\nx %d\n" (i + 1) (i + 1)))
  in
  let t = Workloads.Trace.of_string text in
  let stack =
    fresh_stack (Workloads.Harness.Mine_sweeper Minesweeper.Config.default)
  in
  ignore (Workloads.Trace.replay t stack);
  Alcotest.(check bool) "sweeps ran during replay" true
    (stack.Workloads.Harness.sweeps () > 0);
  (* The dangling root pointer still holds the victim's address. *)
  let victim =
    Vmem.load stack.Workloads.Harness.machine.Alloc.Machine.mem
      (Layout.stack_base + 8)
  in
  Alcotest.(check bool) "victim address preserved in root" true
    (Layout.in_heap victim);
  Alcotest.(check bool) "victim quarantined" true
    (stack.Workloads.Harness.is_protected_addr victim)

let test_threads_zero_header () =
  (* A declared mutator count below 1 is meaningless: both parsers must
     reject it with the offending line number (they share one grammar). *)
  Alcotest.check_raises "zero threads"
    (Failure "Trace.of_string: line 2: threads must be >= 1") (fun () ->
      ignore
        (Workloads.Trace.of_string
           "# msweep-trace v1 bad\n# threads 0\na 0 64\n"));
  Alcotest.check_raises "negative threads"
    (Failure "Trace.of_string: line 1: threads must be >= 1") (fun () ->
      ignore (Workloads.Trace.of_string "# threads -3\n"));
  Alcotest.check_raises "zero threads via stream"
    (Failure "Trace.of_string: line 2: threads must be >= 1") (fun () ->
      let st =
        Workloads.Trace.stream_of_string
          "# msweep-trace v1 bad\n# threads 0\na 0 64\n"
      in
      ignore (Workloads.Trace.fold_stream st ~init:0 ~f:(fun acc _ _ -> acc)))

let test_single_thread_free_column () =
  (* An explicit free-thread column parses even without a threads
     header; serialisation keeps the compact form whenever the column
     carries no information (mutator 0). *)
  let t = Workloads.Trace.of_string "# msweep-trace v1 one\na 0 64\nx 0 0\n" in
  Alcotest.(check int) "threads stays 1" 1 t.Workloads.Trace.threads;
  (match t.Workloads.Trace.ops.(1) with
  | Workloads.Trace.Free { id; thread } ->
    Alcotest.(check int) "free id" 0 id;
    Alcotest.(check int) "explicit thread 0" 0 thread
  | _ -> Alcotest.fail "op 1 should be a free");
  let text = Workloads.Trace.to_string t in
  Alcotest.(check bool) "compact form: no column for mutator 0" true
    (List.mem "x 0" (String.split_on_char '\n' text));
  Alcotest.(check string) "serialisation is a parse fixpoint" text
    (Workloads.Trace.to_string (Workloads.Trace.of_string text))

let test_sites_header_roundtrip () =
  let text =
    "# msweep-trace v1 st\n# sites 3\na 0 64 2\nx 0\na 1 32\nx 1\n"
  in
  let t = Workloads.Trace.of_string text in
  Alcotest.(check int) "sites parsed" 3 t.Workloads.Trace.sites;
  (match t.Workloads.Trace.ops.(0) with
  | Workloads.Trace.Alloc { id; site; _ } ->
    Alcotest.(check int) "alloc id" 0 id;
    Alcotest.(check int) "alloc site" 2 site
  | _ -> Alcotest.fail "op 0 should be an alloc");
  (match t.Workloads.Trace.ops.(2) with
  | Workloads.Trace.Alloc { site; _ } ->
    Alcotest.(check int) "site defaults to 0" 0 site
  | _ -> Alcotest.fail "op 2 should be an alloc");
  let reparsed = Workloads.Trace.of_string (Workloads.Trace.to_string t) in
  Alcotest.(check int) "sites survive roundtrip" 3
    reparsed.Workloads.Trace.sites;
  Alcotest.(check string) "text roundtrip with header"
    (Workloads.Trace.to_string t)
    (Workloads.Trace.to_string reparsed);
  (* Site-free traces keep the compact pre-sites form: no header, no
     site column — byte-compatible with older readers. *)
  let sitefree =
    Workloads.Trace.generate
      (Workloads.Profile.make ~name:"sitefree" ~suite:"test" ~ops:200
         ~size:(Sim.Dist.uniform ~lo:16 ~hi:64)
         ~lifetime:(Sim.Dist.exponential ~mean:50.)
         ~work_per_op:10 ~sites:1 ())
  in
  let text = Workloads.Trace.to_string sitefree in
  let has_prefix p line =
    String.length line >= String.length p && String.sub line 0 (String.length p) = p
  in
  Alcotest.(check bool) "no header for 1 site" false
    (List.exists (has_prefix "# sites") (String.split_on_char '\n' text));
  Alcotest.(check bool) "allocs keep the two-column form" true
    (List.exists
       (fun line ->
         has_prefix "a " line
         && List.length (String.split_on_char ' ' line) = 3)
       (String.split_on_char '\n' text))

let test_single_site_column () =
  (* An explicit site column parses even without a sites header;
     serialisation keeps the compact form whenever the column carries no
     information (site 0). *)
  let t = Workloads.Trace.of_string "# msweep-trace v1 one\na 0 64 0\nx 0\n" in
  Alcotest.(check int) "sites stays 1" 1 t.Workloads.Trace.sites;
  (match t.Workloads.Trace.ops.(0) with
  | Workloads.Trace.Alloc { site; _ } ->
    Alcotest.(check int) "explicit site 0" 0 site
  | _ -> Alcotest.fail "op 0 should be an alloc");
  let text = Workloads.Trace.to_string t in
  Alcotest.(check bool) "compact form: no column for site 0" true
    (List.mem "a 0 64" (String.split_on_char '\n' text));
  Alcotest.(check string) "serialisation is a parse fixpoint" text
    (Workloads.Trace.to_string (Workloads.Trace.of_string text))

let test_sites_zero_header () =
  Alcotest.check_raises "zero sites"
    (Failure "Trace.of_string: line 2: sites must be >= 1") (fun () ->
      ignore
        (Workloads.Trace.of_string "# msweep-trace v1 bad\n# sites 0\na 0 64\n"));
  Alcotest.check_raises "negative sites via stream"
    (Failure "Trace.of_string: line 1: sites must be >= 1") (fun () ->
      let st = Workloads.Trace.stream_of_string "# sites -2\na 0 64\n" in
      ignore (Workloads.Trace.fold_stream st ~init:0 ~f:(fun acc _ _ -> acc)))

let test_generated_sites_replayable () =
  (* Generator profiles now attribute allocs to sites; the pooled
     harness consumes them and every other scheme ignores them. *)
  let t = Workloads.Trace.generate tiny_profile in
  Alcotest.(check int) "default profile declares 8 sites" 8
    t.Workloads.Trace.sites;
  let some_nonzero =
    Array.exists
      (function
        | Workloads.Trace.Alloc { site; _ } -> site > 0
        | _ -> false)
      t.Workloads.Trace.ops
  in
  Alcotest.(check bool) "sites actually vary" true some_nonzero;
  let stack = fresh_stack (Workloads.Harness.Pooled None) in
  let executed = Workloads.Trace.replay t stack in
  Alcotest.(check int) "pooled replay executes every op"
    (Workloads.Trace.length t) executed

(* The streaming fold and the one-shot parser share one line parser;
   this property pins the stronger claim that chunking cannot change
   what a consumer observes: any chunk size, any generator profile. *)
let prop_chunked_fold_equals_parse =
  QCheck.Test.make ~name:"chunked fold == full parse (any chunk size)"
    ~count:40
    QCheck.(pair (int_range 1 257) (int_range 0 1_000_000))
    (fun (chunk_ops, seed) ->
      let profile =
        Workloads.Profile.make ~name:"prop" ~suite:"test" ~ops:400
          ~size:(Sim.Dist.uniform ~lo:8 ~hi:256)
          ~lifetime:(Sim.Dist.exponential ~mean:60.)
          ~work_per_op:10 ()
      in
      let t = Workloads.Trace.generate ~seed profile in
      let text = Workloads.Trace.to_string t in
      let st = Workloads.Trace.stream_of_string ~chunk_ops text in
      let streamed =
        List.rev
          (Workloads.Trace.fold_stream st ~init:[] ~f:(fun acc idx op ->
               (idx, op) :: acc))
      in
      let parsed = Workloads.Trace.of_string text in
      let expected =
        Array.to_list (Array.mapi (fun i op -> (i, op)) parsed.Workloads.Trace.ops)
      in
      Workloads.Trace.stream_name st = parsed.Workloads.Trace.name
      && Workloads.Trace.stream_threads st = parsed.Workloads.Trace.threads
      && Workloads.Trace.stream_sites st = parsed.Workloads.Trace.sites
      && streamed = expected)

let test_stream_single_shot () =
  let st = Workloads.Trace.stream_of_string "a 0 64\nx 0\n" in
  ignore (Workloads.Trace.fold_stream st ~init:() ~f:(fun () _ _ -> ()));
  Alcotest.check_raises "second fold rejected"
    (Invalid_argument "Trace.fold_stream: stream already consumed")
    (fun () ->
      ignore (Workloads.Trace.fold_stream st ~init:() ~f:(fun () _ _ -> ())))

let suite =
  ( "workloads.trace",
    [
      Alcotest.test_case "generate structure" `Quick test_generate_structure;
      Alcotest.test_case "generate deterministic" `Quick
        test_generate_deterministic;
      Alcotest.test_case "string roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "threads header roundtrip" `Quick
        test_threads_header_roundtrip;
      Alcotest.test_case "roundtrip across seeds and profiles" `Quick
        test_roundtrip_property;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "parse error line numbers" `Quick
        test_parse_error_line_numbers;
      Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
      Alcotest.test_case "replay all schemes" `Quick test_replay_all_schemes;
      Alcotest.test_case "replay deterministic" `Quick test_replay_deterministic;
      Alcotest.test_case "replay protection" `Quick test_replay_protection;
      Alcotest.test_case "threads-0 header rejected" `Quick
        test_threads_zero_header;
      Alcotest.test_case "free-thread column, single-threaded" `Quick
        test_single_thread_free_column;
      Alcotest.test_case "sites header roundtrip" `Quick
        test_sites_header_roundtrip;
      Alcotest.test_case "site column, single-site" `Quick
        test_single_site_column;
      Alcotest.test_case "sites-0 header rejected" `Quick
        test_sites_zero_header;
      Alcotest.test_case "generated sites replay under pooled" `Quick
        test_generated_sites_replayable;
      QCheck_alcotest.to_alcotest prop_chunked_fold_equals_parse;
      Alcotest.test_case "stream is single-shot" `Quick
        test_stream_single_shot;
    ] )
