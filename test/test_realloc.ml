(* calloc/realloc drop-in API tests, plus the fully-vs-mostly concurrent
   guarantee difference of Section 4.3. *)

module I = Minesweeper.Instance
module C = Minesweeper.Config

let fresh ?config () =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  (machine, I.create ?config machine)

let test_calloc_zeroed () =
  let machine, ms = fresh () in
  let p = I.calloc ms 8 16 in
  for k = 0 to 15 do
    Alcotest.(check int) "zeroed word" 0
      (Vmem.load machine.Alloc.Machine.mem (p + (k * 8)))
  done;
  Alcotest.(check bool) "usable covers count*size" true
    (Alloc.Jemalloc.usable_size (I.jemalloc ms) p >= 128)

let test_realloc_copies_and_quarantines () =
  let machine, ms = fresh () in
  let p = I.malloc ms 64 in
  Vmem.store machine.Alloc.Machine.mem p 111;
  Vmem.store machine.Alloc.Machine.mem (p + 56) 222;
  let q = I.realloc ms p 256 in
  Alcotest.(check bool) "moved" true (q <> p);
  Alcotest.(check int) "prefix copied" 111 (Vmem.load machine.Alloc.Machine.mem q);
  Alcotest.(check int) "tail copied" 222
    (Vmem.load machine.Alloc.Machine.mem (q + 56));
  Alcotest.(check bool) "old block quarantined" true (I.is_quarantined ms p)

let test_calloc_overflow_rejected () =
  let _, ms = fresh () in
  (* count * size overflows the native int: a real allocator returns
     NULL rather than silently truncating the request. *)
  Alcotest.(check int) "max_int/2 * 4 rejected" 0 (I.calloc ms (max_int / 2) 4);
  Alcotest.(check int) "max_int * 2 rejected" 0 (I.calloc ms max_int 2);
  Alcotest.(check int) "2 * max_int rejected" 0 (I.calloc ms 2 max_int);
  (* Requests that do NOT overflow keep working. *)
  Alcotest.(check bool) "ordinary calloc still served" true
    (I.calloc ms 8 16 <> 0)

let test_realloc_copies_partial_tail () =
  (* Regression: the copy loop moved whole words only, dropping the
     final [copy mod 8] bytes when shrinking to an unaligned size. *)
  let machine, ms = fresh () in
  let mem = machine.Alloc.Machine.mem in
  let p = I.malloc ms 64 in
  Vmem.store mem (p + 56) 0x1122334455667788;
  (* Shrink to 61 bytes: 7 full words + a 5-byte tail. *)
  let q = I.realloc ms p 61 in
  Alcotest.(check int) "surviving tail bytes copied, rest zero"
    0x4455667788
    (Vmem.load mem (q + 56))

let test_realloc_grow_from_unaligned () =
  (* Growing from a block whose requested size was unaligned: the copy
     covers min(new size, old usable), so the whole old word range must
     arrive — including the word straddling the old requested size. *)
  let machine, ms = fresh () in
  let mem = machine.Alloc.Machine.mem in
  let p = I.malloc ms 61 in
  Vmem.store mem (p + 56) 0x0102030405060708;
  let q = I.realloc ms p 256 in
  Alcotest.(check int) "straddling word copied in full" 0x0102030405060708
    (Vmem.load mem (q + 56))

let test_realloc_shrink_keeps_prefix () =
  let machine, ms = fresh () in
  let p = I.malloc ms 256 in
  Vmem.store machine.Alloc.Machine.mem p 7;
  let q = I.realloc ms p 32 in
  Alcotest.(check int) "prefix survives shrink" 7
    (Vmem.load machine.Alloc.Machine.mem q)

let test_realloc_null_and_zero () =
  let _, ms = fresh () in
  let p = I.realloc ms 0 64 in
  Alcotest.(check bool) "realloc(NULL) allocates" true (p <> 0);
  let r = I.realloc ms p 0 in
  Alcotest.(check int) "realloc(p,0) frees" 0 r;
  Alcotest.(check bool) "freed into quarantine" true (I.is_quarantined ms p)

(* Section 4.3: the fully concurrent mode only guarantees to see
   pointers that existed when the sweep started. A pointer that first
   appears mid-sweep (e.g. spilled from a register) can be missed by the
   fully concurrent version but is caught by the mostly concurrent
   stop-the-world re-scan of dirty pages. *)
let mid_sweep_pointer_spill config =
  let machine, ms = fresh ~config () in
  let mem = machine.Alloc.Machine.mem in
  let root_slot = Layout.globals_base + 64 in
  let victim = I.malloc ms 48 in
  (* Freed with no pointer in memory (it lives "in a register"). *)
  I.free ms victim;
  (* Build quarantine pressure until the first sweep (which has locked
     the victim in) is caught in flight, then spill the register. *)
  let spilled = ref false in
  let i = ref 0 in
  while (not !spilled) && !i < 10_000 do
    let p = I.malloc ms 64 in
    I.free ms p;
    if (not !spilled) && I.sweep_in_progress ms then begin
      Vmem.store mem root_slot victim;
      spilled := true
    end;
    incr i
  done;
  I.drain ms;
  (!spilled, I.is_quarantined ms victim)

let test_fully_concurrent_can_miss_moved_pointer () =
  let spilled, held = mid_sweep_pointer_spill C.default in
  Alcotest.(check bool) "scenario armed (sweep was in flight)" true spilled;
  Alcotest.(check bool)
    "fully concurrent missed the mid-sweep spill (by design)" false held

let test_mostly_concurrent_catches_moved_pointer () =
  let spilled, held = mid_sweep_pointer_spill C.mostly_concurrent in
  Alcotest.(check bool) "scenario armed (sweep was in flight)" true spilled;
  Alcotest.(check bool) "stop-the-world re-scan caught the spill" true held

let suite =
  ( "minesweeper.api",
    [
      Alcotest.test_case "calloc zeroed" `Quick test_calloc_zeroed;
      Alcotest.test_case "calloc overflow rejected" `Quick
        test_calloc_overflow_rejected;
      Alcotest.test_case "realloc copies + quarantines" `Quick
        test_realloc_copies_and_quarantines;
      Alcotest.test_case "realloc copies partial tail" `Quick
        test_realloc_copies_partial_tail;
      Alcotest.test_case "realloc grow from unaligned size" `Quick
        test_realloc_grow_from_unaligned;
      Alcotest.test_case "realloc shrink" `Quick test_realloc_shrink_keeps_prefix;
      Alcotest.test_case "realloc NULL/zero" `Quick test_realloc_null_and_zero;
      Alcotest.test_case "fully concurrent misses mid-sweep spill" `Quick
        test_fully_concurrent_can_miss_moved_pointer;
      Alcotest.test_case "mostly concurrent catches mid-sweep spill" `Quick
        test_mostly_concurrent_catches_moved_pointer;
    ] )
