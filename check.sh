#!/bin/sh
# One-command verification gate: build, tests, sanitizer checks.
#
# The oracle runs with a high --latency so its retention warnings (the
# conservatism MineSweeper deliberately accepts, present on any workload
# with unlucky integers) do not fail the gate: here it referees
# soundness and the cross-layer invariants only.
set -eu
cd "$(dirname "$0")"

CLI=_build/default/bin/msweep_cli.exe
TMPDIR="${TMPDIR:-/tmp}"
workdir=$(mktemp -d "$TMPDIR/msweep-check.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== sanitizer corpus self-test (lint + protocol + lockset mutants)"
# --races adds the protocol-mutant and static-lockset self-tests: every
# seeded mutation of the sweep protocol must be flagged with exactly its
# expected rules, and the unmutated protocol must come back clean.
"$CLI" check --corpus --races --strict

echo "== lint + sweep oracle over example traces"
# espresso (mimalloc-bench): well-behaved — must be fully clean, so
# --strict (any finding fails) must succeed.
"$CLI" trace-gen --suite mimalloc -b espresso --scale 0.05 \
  -o "$workdir/espresso.trace" >/dev/null
"$CLI" check -i "$workdir/espresso.trace" --oracle --latency 100000 --strict

# perlbench (spec2006): nonzero dangling rate — the lint must warn
# (fatal only under the shared --strict; warnings exit 0 by default),
# and the oracle must still certify MineSweeper sound on it.
"$CLI" trace-gen --suite spec2006 -b perlbench --scale 0.05 \
  -o "$workdir/perl.trace" >/dev/null
if "$CLI" check -i "$workdir/perl.trace" --strict >/dev/null; then
  echo "FAIL: lint found nothing on a dangling-rate workload" >&2
  exit 1
fi
"$CLI" check -i "$workdir/perl.trace" >/dev/null \
  || { echo "FAIL: warnings must not be fatal without --strict" >&2; exit 1; }
echo "lint flags the dangling-rate workload (expected; fatal only under --strict)"
"$CLI" check -i "$workdir/perl.trace" --oracle --latency 100000 --strict >/dev/null 2>&1 \
  && { echo "FAIL: oracle run unexpectedly clean (lint should still fail it under --strict)" >&2; exit 1; }
# The exit above reflects the lint warnings; certify the oracle verdict
# separately: soundness + invariant findings must be absent.
"$CLI" check -i "$workdir/perl.trace" --oracle --latency 100000 2>&1 \
  | grep -q "oracle-unsound\|inv-" \
  && { echo "FAIL: oracle reported unsoundness on the default config" >&2; exit 1; }
echo "oracle certifies the default config sound on it"

echo "== sweep-mode equivalence (full vs incremental)"
# The dedicated equivalence suite: identical mark sets and decisions.
_build/default/test/test_main.exe test minesweeper.sweep-equivalence \
  >/dev/null
echo "equivalence suite passed"

# The oracle must certify the incremental configuration too: zero
# unsound recycles, zero invariant findings (inv-summary included), on
# both the clean and the dangling-rate workload.
for trace in espresso perl; do
  "$CLI" check -i "$workdir/$trace.trace" --oracle --config incremental \
    --latency 100000 2>&1 \
    | grep -q "oracle-unsound\|inv-" \
    && { echo "FAIL: oracle flagged the incremental config on $trace" >&2; exit 1; }
done
echo "oracle certifies the incremental config sound"

echo "== race checker: recorded streams clean, bounded exploration sound"
# The happens-before analysis over live recorded synchronization events
# must certify both seeded workloads race-free under the default and
# mostly-concurrent presets (the generator never republishes a freed
# address, so no write can hide a locked-in pointer from the mark).
for trace in espresso perl; do
  "$CLI" check -i "$workdir/$trace.trace" --races >"$workdir/races-$trace.txt" 2>&1 || true
  grep -q "races(default):.* 0 finding(s)" "$workdir/races-$trace.txt" \
    || { echo "FAIL: race findings under default on $trace" >&2; exit 1; }
  grep -q "races(mostly):.* 0 finding(s)" "$workdir/races-$trace.txt" \
    || { echo "FAIL: race findings under mostly on $trace" >&2; exit 1; }
  grep -q "rc-" "$workdir/races-$trace.txt" \
    && { echo "FAIL: race diagnostics on $trace" >&2; exit 1; }
  # The static lockset pass reads the same recorded streams and must
  # agree: a correct sweep protocol has no ls-* findings.
  grep -q "lockset(default): 0 finding(s)" "$workdir/races-$trace.txt" \
    || { echo "FAIL: lockset findings under default on $trace" >&2; exit 1; }
  grep -q "lockset(mostly): 0 finding(s)" "$workdir/races-$trace.txt" \
    || { echo "FAIL: lockset findings under mostly on $trace" >&2; exit 1; }
done
echo "recorded event streams race-free and lockset-clean under default and mostly"

# Bounded schedule exploration: no quarantined chunk may be released
# while a ground-truth pointer to it exists, no schedule may race, and
# two identical explorations must render byte-identically.
"$CLI" explore --schedules 64 >"$workdir/explore1.txt" \
  || { echo "FAIL: explorer found violations or races" >&2; exit 1; }
"$CLI" explore --schedules 64 >"$workdir/explore2.txt"
cmp "$workdir/explore1.txt" "$workdir/explore2.txt" \
  || { echo "FAIL: explorer output differs across identical runs" >&2; exit 1; }
grep -q "violations=0 races=0" "$workdir/explore1.txt" \
  || { echo "FAIL: explorer summary reports findings" >&2; exit 1; }
echo "explored 64 schedules: sound, race-free, deterministic"

echo "== static dataflow analyzer (flowcheck)"
# Dedicated suite: abstract-domain semantics, witness chains, bounds
# math, the corpus known-bads statically flagged, lockset mutants, and
# the zero-false-negative certification against the dynamic oracle.
_build/default/test/test_main.exe test flowcheck >/dev/null
echo "flowcheck suite passed"

# The siteflow pooling pass and the pooled backend it drives: exposure
# lattice, pool-merge optimality, bound math, plan determinism, and the
# differential Pool_oracle certification (zero unsound recycles under
# every analyzed plan, including the whole mimalloc-bench suite).
_build/default/test/test_main.exe test siteflow >/dev/null
echo "siteflow suite passed"
_build/default/test/test_main.exe test poolalloc >/dev/null
echo "poolalloc suite passed"

# `msweep analyze` must be deterministic: two runs over both seeded
# traces (with the pooling pass enabled) render and export
# byte-identically — this doubles as the pool-plan double-run gate.
"$CLI" analyze -i "$workdir/espresso.trace" -i "$workdir/perl.trace" \
  --json "$workdir/flow1.json" --lockset --pools >"$workdir/flow1.txt"
"$CLI" analyze -i "$workdir/espresso.trace" -i "$workdir/perl.trace" \
  --json "$workdir/flow2.json" --lockset --pools >"$workdir/flow2.txt"
cmp "$workdir/flow1.json" "$workdir/flow2.json" \
  || { echo "FAIL: analyze JSON differs across identical runs" >&2; exit 1; }
# The rendered report embeds the --json path in its status line; strip
# it before comparing the rest byte-for-byte.
grep -v '^json ' "$workdir/flow1.txt" >"$workdir/flow1.stripped"
grep -v '^json ' "$workdir/flow2.txt" >"$workdir/flow2.stripped"
cmp "$workdir/flow1.stripped" "$workdir/flow2.stripped" \
  || { echo "FAIL: analyze report differs across identical runs" >&2; exit 1; }
head -1 "$workdir/flow1.json" | grep -q '"schema":"msweep-flowcheck-v2"' \
  || { echo "FAIL: missing flowcheck JSON schema header" >&2; exit 1; }
# --pools must land the site/pool records in the JSON and a rendered
# plan in the report.
head -1 "$workdir/flow1.json" | grep -q '"pools":\[' \
  || { echo "FAIL: --pools exported no pool records" >&2; exit 1; }
grep -q "pool plan for" "$workdir/flow1.txt" \
  || { echo "FAIL: --pools rendered no pool plan" >&2; exit 1; }
# perlbench's dangling rate must be statically visible, with a witness
# chain, without replaying anything.
grep -q "flow-dangling" "$workdir/flow1.txt" \
  || { echo "FAIL: analyzer missed the dangling-rate workload" >&2; exit 1; }
grep -q "witness:" "$workdir/flow1.txt" \
  || { echo "FAIL: dangling findings carry no witness chain" >&2; exit 1; }
# Exit-code parity with `check`: warnings are fatal only under --strict.
"$CLI" analyze -i "$workdir/perl.trace" >/dev/null \
  || { echo "FAIL: analyze warnings must not be fatal without --strict" >&2; exit 1; }
"$CLI" analyze -i "$workdir/perl.trace" --strict >/dev/null 2>&1 \
  && { echo "FAIL: analyze --strict must fail on findings" >&2; exit 1; }
echo "analyze: deterministic output, static dangling coverage, shared --strict"

echo "== bench smoke: static bounds vs dynamic telemetry"
# Every mimalloc-bench profile: the static quarantine-occupancy and
# sweep bounds must dominate the measured ms.* values, and every
# dynamic oracle finding must have been statically predicted.
"$CLI" figures --only static-bounds --scale 0.02 >"$workdir/staticfig.txt" 2>/dev/null
if grep -q "REGRESSION" "$workdir/staticfig.txt"; then
  grep "REGRESSION" "$workdir/staticfig.txt" >&2
  echo "FAIL: a measured ms.* value exceeded its static bound or an oracle finding was unpredicted" >&2
  exit 1
fi
echo "static bounds dominate measured ms.* telemetry on every mimalloc profile"

echo "== bench smoke: pooled backend landscape (siteflow certification)"
# Every mimalloc-bench profile replayed under its own siteflow-derived
# pool plan with the differential UAF oracle attached: zero unsound
# recycles and every static occupancy/footprint/retired bound must
# dominate the backend's pool telemetry (the figure prints REGRESSION
# otherwise).
"$CLI" figures --only pooled-landscape --scale 0.02 >"$workdir/pooledfig.txt" 2>/dev/null
if grep -q "REGRESSION" "$workdir/pooledfig.txt"; then
  grep "REGRESSION" "$workdir/pooledfig.txt" >&2
  echo "FAIL: an unsound recycle survived the siteflow plan or a bound under-shot telemetry" >&2
  exit 1
fi
echo "pooled backend certified UAF-free with dominating bounds on every mimalloc profile"

echo "== bench smoke: incremental sweeps fewer bytes than full"
"$CLI" figures --only incremental-sweep --scale 0.02 >"$workdir/incfig.txt" 2>/dev/null
if grep -q "REGRESSION" "$workdir/incfig.txt"; then
  grep "REGRESSION" "$workdir/incfig.txt" >&2
  echo "FAIL: incremental mode did not sweep strictly fewer bytes" >&2
  exit 1
fi
echo "incremental swept strictly fewer bytes on every sweeping profile"

echo "== parallel marking: equivalence suite + determinism across domains"
# The dedicated equivalence suite: for every preset and domain count the
# parallel mark's shadow set, stats and simulated clock equal the
# sequential paths', certified by the sweep oracle.
_build/default/test/test_main.exe test minesweeper.parsweep >/dev/null
echo "parallel equivalence suite passed"

# The pipeline suite extends the same discipline to the whole sweep
# cycle: stage API outcomes, batched quarantine flushes, and export
# equivalence across presets × marking modes × domain counts.
_build/default/test/test_main.exe test minesweeper.pipeline >/dev/null
echo "sweep pipeline suite passed"

# Metrics exports at 1 vs 4 domains must be byte-identical once the
# schema header (it advertises the metric count, which grows with the
# par.* family) and the par.* / sweep.stage.* lines themselves are
# stripped: parallelism may add telemetry about itself but must not
# perturb a single other exported value.
"$CLI" bench --suite spec2006 -b perlbench -s minesweeper --scale 0.02 \
  --domains 1 --metrics-out "$workdir/d1.jsonl" >/dev/null
"$CLI" bench --suite spec2006 -b perlbench -s minesweeper --scale 0.02 \
  --domains 4 --metrics-out "$workdir/d4.jsonl" >/dev/null
grep -v '"schema"' "$workdir/d1.jsonl" | grep -v '"metric":"par\.' \
  | grep -v '"metric":"sweep\.stage\.' >"$workdir/d1.stripped"
grep -v '"schema"' "$workdir/d4.jsonl" | grep -v '"metric":"par\.' \
  | grep -v '"metric":"sweep\.stage\.' >"$workdir/d4.stripped"
cmp "$workdir/d1.stripped" "$workdir/d4.stripped" \
  || { echo "FAIL: 4-domain export differs from 1-domain beyond par.*/sweep.stage.*" >&2; exit 1; }
grep -q '"metric":"par\.chunks"' "$workdir/d4.jsonl" \
  || { echo "FAIL: 4-domain run exported no par.* telemetry" >&2; exit 1; }
grep -q '"metric":"par\.' "$workdir/d1.jsonl" \
  && { echo "FAIL: 1-domain run exported par.* telemetry" >&2; exit 1; }
echo "1- and 4-domain exports identical modulo par.*/sweep.stage.* telemetry"

# The race checker must stay sound with the parallel engine enabled: the
# coordinator emits every synchronization event in canonical order, so
# both seeded workloads must come back clean at 4 domains too.
for trace in espresso perl; do
  "$CLI" check -i "$workdir/$trace.trace" --races --domains 4 \
    >"$workdir/races4-$trace.txt" 2>&1 || true
  grep -q "races(default):.* 0 finding(s)" "$workdir/races4-$trace.txt" \
    || { echo "FAIL: race findings under default at 4 domains on $trace" >&2; exit 1; }
  grep -q "races(mostly):.* 0 finding(s)" "$workdir/races4-$trace.txt" \
    || { echo "FAIL: race findings under mostly at 4 domains on $trace" >&2; exit 1; }
done
echo "recorded event streams race-free at 4 domains"

# Median-of-N reporting: repeats of a deterministic simulation must agree
# on the simulated clock (the CLI exits nonzero if they diverge).
"$CLI" bench --suite mimalloc -b espresso -s minesweeper --scale 0.02 \
  --domains 4 --repeat 3 >"$workdir/repeat.txt" \
  || { echo "FAIL: repeats diverged on the simulated clock" >&2; exit 1; }
grep -q "median of 3" "$workdir/repeat.txt" \
  || { echo "FAIL: --repeat 3 did not report a median" >&2; exit 1; }
echo "bench --repeat reports the median over agreeing repeats"

echo "== bench smoke: parallel mark speedup figure"
"$CLI" figures --only parallel-mark --scale 0.02 >"$workdir/parfig.txt" 2>/dev/null
if grep -q "REGRESSION" "$workdir/parfig.txt"; then
  grep "REGRESSION" "$workdir/parfig.txt" >&2
  echo "FAIL: parallel mark diverged or lost its modeled speedup" >&2
  exit 1
fi
echo "parallel mark identical across domains with modeled speedup >= 1.5x"

echo "== bench smoke: sweep pipeline speedup figure"
# The staged pipeline's modeled end-to-end speedup: swept bytes must be
# identical at every domain count and the best modeled sweep-cycle
# speedup at 4 domains must stay >= 2x (the figure prints REGRESSION
# otherwise).
"$CLI" figures --only sweep-pipeline --scale 0.02 >"$workdir/pipefig.txt" 2>/dev/null
if grep -q "REGRESSION" "$workdir/pipefig.txt"; then
  grep "REGRESSION" "$workdir/pipefig.txt" >&2
  echo "FAIL: sweep pipeline diverged or lost its modeled speedup" >&2
  exit 1
fi
echo "sweep pipeline identical across domains with modeled speedup >= 2x"

echo "== api: deprecated mark entry points stay quarantined"
# The legacy mark_* entry points survive only as shims inside the
# instance layer; nothing else in the tree may call them (the pipeline
# suite's shim test is the one sanctioned caller).
if grep -rn "mark_all_memory\|mark_incremental" lib bin test \
    --include='*.ml' --include='*.mli' \
    | grep -v "^lib/core/instance\.ml:" \
    | grep -v "^lib/core/instance\.mli:" \
    | grep -v "^lib/core/instance_intf\.ml:" \
    | grep -v "^test/test_pipeline\.ml:" \
    | grep -q .; then
  grep -rn "mark_all_memory\|mark_incremental" lib bin test \
    --include='*.ml' --include='*.mli' \
    | grep -v "^lib/core/instance\.ml:" \
    | grep -v "^lib/core/instance\.mli:" \
    | grep -v "^lib/core/instance_intf\.ml:" \
    | grep -v "^test/test_pipeline\.ml:" >&2
  echo "FAIL: deprecated mark entry points called outside their shims" >&2
  exit 1
fi
echo "no callers of the deprecated mark entry points outside the shims"

echo "== telemetry: metrics export determinism + schema"
# Two identical runs must export byte-identical JSONL (every value is an
# integer off the simulated clock — nothing host-dependent may leak in).
"$CLI" bench --suite spec2006 -b perlbench -s minesweeper --scale 0.02 \
  --metrics-out "$workdir/m1.jsonl" --spans-out "$workdir/s1.jsonl" >/dev/null
"$CLI" bench --suite spec2006 -b perlbench -s minesweeper --scale 0.02 \
  --metrics-out "$workdir/m2.jsonl" >/dev/null
cmp "$workdir/m1.jsonl" "$workdir/m2.jsonl" \
  || { echo "FAIL: metrics exports differ across identical runs" >&2; exit 1; }
echo "metrics export byte-identical across identical runs"

# Schema: header line advertises the exact number of metric lines.
awk '
  NR == 1 {
    if ($0 !~ /"schema":"msweep-metrics-v1"/) {
      print "FAIL: missing metrics schema header" > "/dev/stderr"; exit 1
    }
    n = $0; sub(/.*"metrics":/, "", n); sub(/[^0-9].*/, "", n)
    advertised = n + 0; next
  }
  /"metric":/ { lines++ }
  END {
    if (lines != advertised) {
      printf "FAIL: header advertises %d metrics, found %d lines\n", \
        advertised, lines > "/dev/stderr"
      exit 1
    }
  }' "$workdir/m1.jsonl"
echo "metrics header count matches exported lines"

# Every instance counter registered under the ms. prefix must appear in
# the export — a registration that silently falls out of the snapshot
# path is exactly the drift this gate exists to catch.
for name in frees_intercepted double_frees sweeps swept_bytes \
    stw_rescanned_bytes sweep_pages_skipped sweep_pages_rescanned \
    summary_cache_bytes releases released_bytes failed_frees \
    unmapped_allocations unmapped_bytes stw_pauses stw_cycles \
    alloc_pauses alloc_pause_cycles peak_quarantine_bytes uaf_prevented; do
  grep -q "\"metric\":\"ms\.$name\"" "$workdir/m1.jsonl" \
    || { echo "FAIL: registered counter ms.$name absent from export" >&2; exit 1; }
done
# The layered registries must have joined the same export.
for name in vmem.committed_bytes alloc.mallocs ms.sweep_scan_bytes; do
  grep -q "\"metric\":\"$name\"" "$workdir/m1.jsonl" \
    || { echo "FAIL: $name absent from export" >&2; exit 1; }
done
echo "all registered counters present in the export"

head -1 "$workdir/s1.jsonl" | grep -q '"schema":"msweep-spans-v1"' \
  || { echo "FAIL: missing spans schema header" >&2; exit 1; }
grep -q '"phase":"mark"' "$workdir/s1.jsonl" \
  || { echo "FAIL: no mark-phase spans in a sweeping profile" >&2; exit 1; }
echo "span export carries the sweep-phase profile"

echo "== server traffic: open-loop determinism, srv.* export, repeats"
# Two identical serve runs must export byte-identical metrics: the whole
# pipeline (arrival generation, Lindley decomposition, histogram fills)
# runs off the simulated clock and the profile seed.
"$CLI" serve -p steady -s minesweeper --scale 0.02 \
  --metrics-out "$workdir/srv1.jsonl" >"$workdir/srv1.txt"
"$CLI" serve -p steady -s minesweeper --scale 0.02 \
  --metrics-out "$workdir/srv2.jsonl" >/dev/null
cmp "$workdir/srv1.jsonl" "$workdir/srv2.jsonl" \
  || { echo "FAIL: server metric exports differ across identical runs" >&2; exit 1; }
# srv.* and ms.* must share one export (the server registers its metrics
# into the stack's own registry).
for name in srv.latency srv.stall_latency srv.queue_wait srv.service \
    srv.requests srv.completed srv.queue_depth_max; do
  grep -q "\"metric\":\"$name\"" "$workdir/srv1.jsonl" \
    || { echo "FAIL: $name absent from the serve export" >&2; exit 1; }
done
grep -q '"metric":"ms\.sweeps"' "$workdir/srv1.jsonl" \
  || { echo "FAIL: ms.* telemetry missing from the serve export" >&2; exit 1; }
# --repeat derives independent streams per repeat (split seeds) and
# reports a median-of-N row.
"$CLI" serve -p steady -s baseline --scale 0.02 --repeat 3 \
  >"$workdir/srv-repeat.txt" \
  || { echo "FAIL: serve --repeat exited nonzero" >&2; exit 1; }
grep -q "median of 3" "$workdir/srv-repeat.txt" \
  || { echo "FAIL: serve --repeat 3 did not report a median" >&2; exit 1; }
r0=$(grep "^repeat 0" "$workdir/srv-repeat.txt")
r1=$(grep "^repeat 1" "$workdir/srv-repeat.txt")
[ "${r0#repeat 0}" != "${r1#repeat 1}" ] \
  || { echo "FAIL: repeat 1 replayed repeat 0's stream (split seed lost)" >&2; exit 1; }
echo "serve: byte-identical exports, srv.* beside ms.*, independent repeats"

echo "== attack under live traffic"
# The vtable hijack mounted mid-traffic: the baseline must be exploited,
# MineSweeper must not — while both keep serving the offered load.
"$CLI" serve -p steady -s baseline --scale 0.05 --attack \
  >"$workdir/atk-base.txt" \
  || { echo "FAIL: serve --attack (baseline) exited nonzero" >&2; exit 1; }
grep -q "EXPLOITED" "$workdir/atk-base.txt" \
  || { echo "FAIL: baseline not exploited under live traffic" >&2; exit 1; }
"$CLI" serve -p steady -s minesweeper --scale 0.05 --attack \
  >"$workdir/atk-ms.txt" \
  || { echo "FAIL: serve --attack (minesweeper) exited nonzero" >&2; exit 1; }
grep -q "EXPLOITED" "$workdir/atk-ms.txt" \
  && { echo "FAIL: minesweeper exploited under live traffic" >&2; exit 1; }
echo "baseline exploited, minesweeper clean, traffic served throughout"

echo "== bench smoke: tail-latency figure"
# All five server profiles x all backends: quantile families monotone,
# stall latency below total latency, arrivals identical across backends
# (the open-loop property), attack outcomes as expected — and the whole
# figure byte-identical across runs.
"$CLI" figures --only tail-latency --scale 0.02 >"$workdir/tail1.txt" 2>/dev/null
if grep -q "REGRESSION" "$workdir/tail1.txt"; then
  grep "REGRESSION" "$workdir/tail1.txt" >&2
  echo "FAIL: tail-latency figure reported a regression" >&2
  exit 1
fi
"$CLI" figures --only tail-latency --scale 0.02 >"$workdir/tail2.txt" 2>/dev/null
cmp "$workdir/tail1.txt" "$workdir/tail2.txt" \
  || { echo "FAIL: tail-latency figure differs across identical runs" >&2; exit 1; }
echo "tail-latency figure deterministic, monotone, open-loop, attack-clean"

echo "== fleet: shared-budget determinism, aggregation, noisy neighbour"
# Two identical 5-tenant fleet runs (the default noisy-neighbour spec on
# the default 192 MiB budget) must export byte-identical merged
# registries: split-seed tenant streams, integer interference arithmetic
# and sorted merge order leave no room for drift.
"$CLI" fleet --scale 0.05 --metrics-out "$workdir/fleet1.jsonl" \
  >"$workdir/fleet1.txt" \
  || { echo "FAIL: fleet smoke run exited nonzero" >&2; exit 1; }
"$CLI" fleet --scale 0.05 --metrics-out "$workdir/fleet2.jsonl" \
  >/dev/null
cmp "$workdir/fleet1.jsonl" "$workdir/fleet2.jsonl" \
  || { echo "FAIL: fleet metric exports differ across identical runs" >&2; exit 1; }
# The default budget must hold without pressure, and the export must
# carry the per-tenant namespaces beside the machine-wide aggregation.
grep -q "pressure       0 events, 0 reclaims, 0 oom kills" "$workdir/fleet1.txt" \
  || { echo "FAIL: 5-tenant fleet under default budget hit pressure" >&2; exit 1; }
for name in fleet.agg.srv.latency fleet.agg.srv.stall_latency \
    fleet.t0.srv.requests fleet.t4.srv.requests fleet.committed_peak \
    fleet.t0.vmem.committed_bytes; do
  grep -q "\"metric\":\"$name\"" "$workdir/fleet1.jsonl" \
    || { echo "FAIL: $name absent from the fleet export" >&2; exit 1; }
done
echo "fleet: byte-identical exports, aggregation present, budget held"

echo "== bench smoke: fleet-pressure figure"
# Noisy-neighbour across backends and both purge orders: committed peak
# within budget, arrivals identical to isolation (open loop preserved
# across the fleet), neighbour p99 stall strictly above isolation where
# interference was injected (the figure prints REGRESSION otherwise).
"$CLI" figures --only fleet-pressure --scale 0.02 \
  >"$workdir/fleetfig.txt" 2>/dev/null
if grep -q "REGRESSION" "$workdir/fleetfig.txt"; then
  grep "REGRESSION" "$workdir/fleetfig.txt" >&2
  echo "FAIL: fleet-pressure figure reported a regression" >&2
  exit 1
fi
echo "fleet-pressure figure: budget held, open loop, neighbour stall visible"

echo "== all checks passed"
