#!/bin/sh
# One-command verification gate: build, tests, sanitizer checks.
#
# The oracle runs with a high --latency so its retention warnings (the
# conservatism MineSweeper deliberately accepts, present on any workload
# with unlucky integers) do not fail the gate: here it referees
# soundness and the cross-layer invariants only.
set -eu
cd "$(dirname "$0")"

CLI=_build/default/bin/msweep_cli.exe
TMPDIR="${TMPDIR:-/tmp}"
workdir=$(mktemp -d "$TMPDIR/msweep-check.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== sanitizer corpus self-test"
"$CLI" check --corpus

echo "== lint + sweep oracle over example traces"
# espresso (mimalloc-bench): well-behaved — must be fully clean.
"$CLI" trace-gen --suite mimalloc -b espresso --scale 0.05 \
  -o "$workdir/espresso.trace" >/dev/null
"$CLI" check -i "$workdir/espresso.trace" --oracle --latency 100000

# perlbench (spec2006): nonzero dangling rate — the lint must warn, and
# the oracle must still certify MineSweeper sound on it.
"$CLI" trace-gen --suite spec2006 -b perlbench --scale 0.05 \
  -o "$workdir/perl.trace" >/dev/null
if "$CLI" check -i "$workdir/perl.trace" >/dev/null; then
  echo "FAIL: lint found nothing on a dangling-rate workload" >&2
  exit 1
fi
echo "lint flags the dangling-rate workload (expected)"
"$CLI" check -i "$workdir/perl.trace" --oracle --latency 100000 >/dev/null 2>&1 \
  && { echo "FAIL: oracle run unexpectedly clean (lint should still fail it)" >&2; exit 1; }
# The exit above reflects the lint warnings; certify the oracle verdict
# separately: soundness + invariant findings must be absent.
"$CLI" check -i "$workdir/perl.trace" --oracle --latency 100000 2>&1 \
  | grep -q "oracle-unsound\|inv-" \
  && { echo "FAIL: oracle reported unsoundness on the default config" >&2; exit 1; }
echo "oracle certifies the default config sound on it"

echo "== sweep-mode equivalence (full vs incremental)"
# The dedicated equivalence suite: identical mark sets and decisions.
_build/default/test/test_main.exe test minesweeper.sweep-equivalence \
  >/dev/null
echo "equivalence suite passed"

# The oracle must certify the incremental configuration too: zero
# unsound recycles, zero invariant findings (inv-summary included), on
# both the clean and the dangling-rate workload.
for trace in espresso perl; do
  "$CLI" check -i "$workdir/$trace.trace" --oracle --config incremental \
    --latency 100000 2>&1 \
    | grep -q "oracle-unsound\|inv-" \
    && { echo "FAIL: oracle flagged the incremental config on $trace" >&2; exit 1; }
done
echo "oracle certifies the incremental config sound"

echo "== bench smoke: incremental sweeps fewer bytes than full"
"$CLI" figures --only incremental-sweep --scale 0.02 >"$workdir/incfig.txt" 2>/dev/null
if grep -q "REGRESSION" "$workdir/incfig.txt"; then
  grep "REGRESSION" "$workdir/incfig.txt" >&2
  echo "FAIL: incremental mode did not sweep strictly fewer bytes" >&2
  exit 1
fi
echo "incremental swept strictly fewer bytes on every sweeping profile"

echo "== all checks passed"
