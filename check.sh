#!/bin/sh
# One-command verification gate: build, tests, sanitizer checks.
#
# The oracle runs with a high --latency so its retention warnings (the
# conservatism MineSweeper deliberately accepts, present on any workload
# with unlucky integers) do not fail the gate: here it referees
# soundness and the cross-layer invariants only.
set -eu
cd "$(dirname "$0")"

CLI=_build/default/bin/msweep_cli.exe
TMPDIR="${TMPDIR:-/tmp}"
workdir=$(mktemp -d "$TMPDIR/msweep-check.XXXXXX")
trap 'rm -rf "$workdir"' EXIT INT TERM

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== sanitizer corpus self-test"
"$CLI" check --corpus

echo "== lint + sweep oracle over example traces"
# espresso (mimalloc-bench): well-behaved — must be fully clean.
"$CLI" trace-gen --suite mimalloc -b espresso --scale 0.05 \
  -o "$workdir/espresso.trace" >/dev/null
"$CLI" check -i "$workdir/espresso.trace" --oracle --latency 100000

# perlbench (spec2006): nonzero dangling rate — the lint must warn, and
# the oracle must still certify MineSweeper sound on it.
"$CLI" trace-gen --suite spec2006 -b perlbench --scale 0.05 \
  -o "$workdir/perl.trace" >/dev/null
if "$CLI" check -i "$workdir/perl.trace" >/dev/null; then
  echo "FAIL: lint found nothing on a dangling-rate workload" >&2
  exit 1
fi
echo "lint flags the dangling-rate workload (expected)"
"$CLI" check -i "$workdir/perl.trace" --oracle --latency 100000 >/dev/null 2>&1 \
  && { echo "FAIL: oracle run unexpectedly clean (lint should still fail it)" >&2; exit 1; }
# The exit above reflects the lint warnings; certify the oracle verdict
# separately: soundness + invariant findings must be absent.
"$CLI" check -i "$workdir/perl.trace" --oracle --latency 100000 2>&1 \
  | grep -q "oracle-unsound\|inv-" \
  && { echo "FAIL: oracle reported unsoundness on the default config" >&2; exit 1; }
echo "oracle certifies the default config sound on it"

echo "== all checks passed"
