let name = "dlmalloc"

let word = Vmem.word_size
let header_bytes = word
let min_payload = 16
let bin_count = 64
let malloc_cycles = 45
let free_cycles = 40

(* Carve chunks out of extents in 64-page strides. *)
let stride_pages = 64

type t = {
  machine : Machine.t;
  extent : Extent.t;
  bins : int array; (* head payload address per bin; 0 = empty *)
  extra_byte : bool;
  mutable top : int; (* bump pointer inside the current stride *)
  mutable stride_end : int;
  mutable live_bytes : int;
  mutable live_allocs : int;
}

let create ?(extra_byte = false) machine =
  {
    machine;
    extent = Extent.create machine;
    bins = Array.make bin_count 0;
    extra_byte;
    top = 0;
    stride_end = 0;
    live_bytes = 0;
    live_allocs = 0;
  }

let mem t = t.machine.Machine.mem

let round_up size = max min_payload ((size + word - 1) / word * word)

let bin_of_size size =
  let rounded = round_up size in
  if rounded <= 512 then ((rounded + 15) / 16) - 1 (* 16-byte-spaced small bins *)
  else
    (* logarithmic large bins above 512 *)
    let rec log2 n acc = if n <= 512 then acc else log2 (n / 2) (acc + 1) in
    min (bin_count - 1) (31 + log2 rounded 0)

(* In-band metadata accessors. The header word holds size|allocated-bit;
   a free chunk's first two payload words are the fd/bk list links. *)
let header_of _t payload = payload - header_bytes
let read_header t payload = Vmem.load (mem t) (payload - header_bytes)
let chunk_size header_word = header_word land lnot 7
let is_allocated header_word = header_word land 1 = 1

let write_header t payload size ~allocated =
  Vmem.store (mem t) (payload - header_bytes)
    (size lor if allocated then 1 else 0)

let fd t payload = Vmem.load (mem t) payload
let bk t payload = Vmem.load (mem t) (payload + word)
let set_fd t payload v = Vmem.store (mem t) payload v
let set_bk t payload v = Vmem.store (mem t) (payload + word) v

let bin_push t bin payload =
  let head = t.bins.(bin) in
  set_fd t payload head;
  set_bk t payload 0;
  if head <> 0 then set_bk t head payload;
  t.bins.(bin) <- payload

(* The classic unlink: blind writes through the chunk's own fd/bk links.
   If a use-after-free write corrupted them, these stores go wherever the
   attacker pointed them — the exploit of Section 2's footnote. *)
let unlink t bin payload =
  let f = fd t payload and b = bk t payload in
  let blind_store addr v =
    if addr mod word = 0 then
      match Vmem.store (mem t) addr v with
      | () -> ()
      | exception Vmem.Fault _ -> () (* the real program would crash here *)
  in
  if f <> 0 then blind_store (f + word) b;
  if b <> 0 then blind_store b f else t.bins.(bin) <- f

let fresh_chunk t rounded =
  let need = rounded + header_bytes in
  if t.top = 0 || t.top + need > t.stride_end then begin
    let pages = max stride_pages ((need + Vmem.page_size - 1) / Vmem.page_size)
    in
    let base = Extent.alloc t.extent ~pages in
    t.top <- base;
    t.stride_end <- base + (pages * Vmem.page_size)
  end;
  let payload = t.top + header_bytes in
  t.top <- t.top + need;
  payload

let malloc t size =
  assert (size >= 0);
  Machine.charge t.machine malloc_cycles;
  let size = max 1 size + if t.extra_byte then 1 else 0 in
  let rounded = round_up size in
  let bin = bin_of_size rounded in
  (* First fit within the bin's list (bins are size-homogeneous for
     small sizes; large bins may need a short walk). *)
  let rec scan payload =
    if payload = 0 then None
    else if chunk_size (read_header t payload) >= rounded then Some payload
    else scan (fd t payload)
  in
  let payload =
    match scan t.bins.(bin) with
    | Some p ->
      unlink t bin p;
      p
    | None -> fresh_chunk t rounded
  in
  let actual = max rounded (chunk_size (read_header t payload)) in
  write_header t payload actual ~allocated:true;
  Vmem.zero_range (mem t) ~addr:payload ~len:actual;
  Machine.charge_bytes t.machine t.machine.Machine.cost.Sim.Cost.touch_per_byte
    actual;
  t.live_bytes <- t.live_bytes + actual;
  t.live_allocs <- t.live_allocs + 1;
  payload

let usable_size t payload = chunk_size (read_header t payload)

let free t payload =
  Machine.charge t.machine free_cycles;
  let header = read_header t payload in
  if not (is_allocated header) then
    invalid_arg "Dlmalloc.free: double free or not an allocation";
  let size = chunk_size header in
  write_header t payload size ~allocated:false;
  t.live_bytes <- t.live_bytes - size;
  t.live_allocs <- t.live_allocs - 1;
  bin_push t (bin_of_size size) payload

let live_bytes t = t.live_bytes

(* In-band metadata is all there is: an address is live iff its header
   word parses as allocated. Reading the header of an arbitrary address
   may fault (unmapped page) — that is a definitive "not live". *)
let is_live t payload =
  payload > header_bytes
  &&
  match read_header t payload with
  | header -> is_allocated header
  | exception _ -> false

let wilderness t = Extent.wilderness t.extent
let set_extent_hooks t hooks = Extent.set_hooks t.extent hooks

(* dlmalloc trims via sbrk only at the very top; model as no-ops. *)
let purge_tick _t = ()
let purge_all _t = ()

let check_bin_integrity t =
  let ok = ref true in
  Array.iteri
    (fun _ head ->
      let rec walk payload steps =
        if payload <> 0 && steps < 100_000 then begin
          (match
             if not (Vmem.is_mapped (mem t) payload) then None
             else Some (fd t payload)
           with
          | None -> ok := false
          | Some f ->
            if f <> 0 then
              if (not (Vmem.is_mapped (mem t) f)) || bk t f <> payload then
                ok := false;
            if is_allocated (read_header t payload) then ok := false;
            walk f (steps + 1))
        end
      in
      walk head 0)
    t.bins;
  !ok
