(** Shared simulation context: memory + clock + cost model.

    Every component charges cycles through the machine; the [sink]
    selects which thread pays. The application thread pays [`App] costs
    as wall time, sweeper threads pay [`Background] costs that overlap
    the application, and [`Stall] charges wall time without busy time
    (stop-the-world pauses, allocation pauses). *)

type sink =
  | App
  | Background
  | Stall

type t = {
  mem : Vmem.t;
  cost : Sim.Cost.t;
  clock : Sim.Clock.t;
  mutable sink : sink;
}

val create : ?cost:Sim.Cost.t -> unit -> t
(** Builds the machine and installs a demand-commit hook that charges
    page-fault costs to the current sink. *)

val charge : t -> int -> unit

val charge_bytes : t -> float -> int -> unit
(** [charge_bytes t per_byte n] charges a streaming cost. *)

val with_sink : t -> sink -> (unit -> 'a) -> 'a
(** Run a closure with a temporarily switched sink.

    Nesting- and exception-safe: the previous sink (whatever it was,
    including one set by an enclosing [with_sink]) is restored both on
    normal return and when the closure raises, so nested switches unwind
    in LIFO order. The sink is {e per-machine} mutable state: when
    closures over two machines interleave — the fleet scheduler runs one
    tenant's reclaim inside another tenant's scheduling quantum, each
    tenant owning its own machine — the save/restore pairs are
    independent, and an exception unwinding through both leaves each
    machine at its own pre-entry sink. *)

val now : t -> int
(** Wall-clock position in cycles. *)
