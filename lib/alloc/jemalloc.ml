let page = Vmem.page_size
let tcache_cap = 16

type stats = {
  mallocs : int;
  frees : int;
  live : int;
  live_bytes : int;
  slab_count : int;
  large_count : int;
}

type slab = {
  base : int;
  cls : int;
  slots : int;
  mutable free : int list; (* free slot indices *)
  mutable used : int; (* slots handed out (including tcache-held) *)
  mutable in_nonfull : bool;
}

type bin = { mutable nonfull : slab list }

type tcache_bin = { mutable items : int list; mutable count : int }

(* Allocation life-cycle events for the race checker: a chunk is
   [Recycled] the moment [free] takes it back (into the thread cache for
   small classes) and [Served] when [malloc] hands it (or fresh memory)
   out. Reuse of quarantined memory would surface as a [Served] of an
   address the quarantine still holds. *)
type event =
  | Served of { addr : int; usable : int; from_tcache : bool }
  | Recycled of { addr : int; to_tcache : bool }

type t = {
  machine : Machine.t;
  extent : Extent.t;
  bins : bin array;
  tcache : tcache_bin array;
  slab_of_page : (int, slab) Hashtbl.t;
  large : (int, int) Hashtbl.t; (* base address -> pages *)
  large_page_index : (int, int) Hashtbl.t; (* page index -> base address *)
  extra_byte : bool;
  mutable live_bytes : int;
  mutable live_allocs : int;
  mutable slab_count : int;
  mutable mallocs : int;
  mutable frees : int;
  mutable observer : (event -> unit) option;
}

let create ?(extra_byte = false) ?decay_cycles machine =
  {
    machine;
    extent = Extent.create ?decay_cycles machine;
    bins = Array.init Size_class.count (fun _ -> { nonfull = [] });
    tcache = Array.init Size_class.count (fun _ -> { items = []; count = 0 });
    slab_of_page = Hashtbl.create 1024;
    large = Hashtbl.create 256;
    large_page_index = Hashtbl.create 256;
    extra_byte;
    live_bytes = 0;
    live_allocs = 0;
    slab_count = 0;
    mallocs = 0;
    frees = 0;
    observer = None;
  }

let set_observer t f = t.observer <- Some f
let clear_observer t = t.observer <- None

let observe t ev =
  match t.observer with None -> () | Some f -> f ev

let cost t = t.machine.Machine.cost
let charge t n = Machine.charge t.machine n

let new_slab t cls =
  let pages = Size_class.slab_pages cls in
  let base = Extent.alloc t.extent ~pages in
  let slots = Size_class.slab_slots cls in
  let slab =
    { base; cls; slots; free = List.init slots Fun.id; used = 0; in_nonfull = true }
  in
  for i = 0 to pages - 1 do
    Hashtbl.replace t.slab_of_page ((base / page) + i) slab
  done;
  t.slab_count <- t.slab_count + 1;
  slab

let release_slab t slab =
  let pages = Size_class.slab_pages slab.cls in
  for i = 0 to pages - 1 do
    Hashtbl.remove t.slab_of_page ((slab.base / page) + i)
  done;
  t.slab_count <- t.slab_count - 1;
  Extent.dalloc t.extent ~addr:slab.base ~pages

(* Pop one slot from the bin, creating a slab if needed. *)
let bin_pop t cls =
  let bin = t.bins.(cls) in
  let slab =
    match bin.nonfull with
    | s :: _ -> s
    | [] ->
      let s = new_slab t cls in
      bin.nonfull <- [ s ];
      s
  in
  match slab.free with
  | [] -> assert false
  | slot :: rest ->
    slab.free <- rest;
    slab.used <- slab.used + 1;
    if rest = [] then begin
      (* Slab is now full: retire it from the bin. *)
      (match bin.nonfull with
      | s :: tl when s == slab -> bin.nonfull <- tl
      | _ -> bin.nonfull <- List.filter (fun s -> s != slab) bin.nonfull);
      slab.in_nonfull <- false
    end;
    slab.base + (slot * Size_class.size_of_class cls)

let bin_push t slab addr =
  let cls = slab.cls in
  let size = Size_class.size_of_class cls in
  let slot = (addr - slab.base) / size in
  assert (addr = slab.base + (slot * size));
  slab.free <- slot :: slab.free;
  slab.used <- slab.used - 1;
  assert (slab.used >= 0);
  if slab.used = 0 then begin
    if slab.in_nonfull then
      t.bins.(cls).nonfull <- List.filter (fun s -> s != slab) t.bins.(cls).nonfull;
    release_slab t slab
  end
  else if not slab.in_nonfull then begin
    slab.in_nonfull <- true;
    t.bins.(cls).nonfull <- slab :: t.bins.(cls).nonfull
  end

let malloc_small t cls =
  let tc = t.tcache.(cls) in
  (match tc.items with
  | [] ->
    (* Refill half the cache in one batched slow-path trip. *)
    charge t (cost t).Sim.Cost.malloc_slow;
    let batch = tcache_cap / 2 in
    for _ = 1 to batch do
      tc.items <- bin_pop t cls :: tc.items;
      tc.count <- tc.count + 1
    done
  | _ :: _ -> ());
  charge t (cost t).Sim.Cost.malloc_fast;
  match tc.items with
  | [] -> assert false
  | addr :: rest ->
    tc.items <- rest;
    tc.count <- tc.count - 1;
    addr

let free_small t slab addr =
  let cls = slab.cls in
  let tc = t.tcache.(cls) in
  charge t (cost t).Sim.Cost.free_fast;
  tc.items <- addr :: tc.items;
  tc.count <- tc.count + 1;
  if tc.count > tcache_cap then begin
    (* Flush the older half back to the slabs. *)
    charge t (cost t).Sim.Cost.free_slow;
    let keep = tcache_cap / 2 in
    let rec split i = function
      | kept when i = 0 -> ([], kept)
      | [] -> ([], [])
      | x :: tl ->
        let front, back = split (i - 1) tl in
        (x :: front, back)
    in
    let front, back = split keep tc.items in
    tc.items <- front;
    tc.count <- List.length front;
    List.iter
      (fun a ->
        match Hashtbl.find_opt t.slab_of_page (a / page) with
        | Some s -> bin_push t s a
        | None -> assert false)
      back
  end

let malloc t size =
  assert (size >= 0);
  let size = max 1 size + if t.extra_byte then 1 else 0 in
  t.mallocs <- t.mallocs + 1;
  let addr, usable, from_tcache =
    if Size_class.is_small size then begin
      let cls = Size_class.class_of_size size in
      (malloc_small t cls, Size_class.size_of_class cls, true)
    end
    else begin
      charge t (cost t).Sim.Cost.malloc_slow;
      let pages = Size_class.large_pages size in
      let addr = Extent.alloc t.extent ~pages in
      Hashtbl.replace t.large addr pages;
      for i = 0 to pages - 1 do
        Hashtbl.replace t.large_page_index ((addr / page) + i) addr
      done;
      (addr, pages * page, false)
    end
  in
  observe t (Served { addr; usable; from_tcache });
  (* Applications initialise what they allocate; model that by zeroing the
     usable range and charging the streaming writes. *)
  Vmem.zero_range t.machine.Machine.mem ~addr ~len:usable;
  Machine.charge_bytes t.machine (cost t).Sim.Cost.touch_per_byte usable;
  t.live_bytes <- t.live_bytes + usable;
  t.live_allocs <- t.live_allocs + 1;
  addr

let lookup_usable t addr =
  match Hashtbl.find_opt t.large addr with
  | Some pages -> pages * page
  | None ->
    (match Hashtbl.find_opt t.slab_of_page (addr / page) with
    | Some slab -> Size_class.size_of_class slab.cls
    | None -> invalid_arg "Jemalloc.usable_size: not an allocation")

let usable_size = lookup_usable

let free t addr =
  t.frees <- t.frees + 1;
  (match Hashtbl.find_opt t.large addr with
  | Some pages ->
    charge t (cost t).Sim.Cost.free_slow;
    observe t (Recycled { addr; to_tcache = false });
    Hashtbl.remove t.large addr;
    for i = 0 to pages - 1 do
      Hashtbl.remove t.large_page_index ((addr / page) + i)
    done;
    Extent.dalloc t.extent ~addr ~pages;
    t.live_bytes <- t.live_bytes - (pages * page)
  | None ->
    (match Hashtbl.find_opt t.slab_of_page (addr / page) with
    | Some slab ->
      observe t (Recycled { addr; to_tcache = true });
      t.live_bytes <- t.live_bytes - Size_class.size_of_class slab.cls;
      free_small t slab addr
    | None -> invalid_arg "Jemalloc.free: not an allocation"));
  t.live_allocs <- t.live_allocs - 1

let is_live t addr =
  Hashtbl.mem t.large addr
  ||
  match Hashtbl.find_opt t.slab_of_page (addr / page) with
  | None -> false
  | Some slab ->
    let size = Size_class.size_of_class slab.cls in
    let slot = (addr - slab.base) / size in
    addr = slab.base + (slot * size)
    && (not (List.mem slot slab.free))
    && not (List.mem addr t.tcache.(slab.cls).items)

(* Conservative-GC style lookup: the allocation whose usable range
   contains [addr], if any. Interior pointers resolve to the base. *)
let allocation_containing t addr =
  match Hashtbl.find_opt t.large_page_index (addr / page) with
  | Some base ->
    let pages = Hashtbl.find t.large base in
    Some (base, pages * page)
  | None ->
    (match Hashtbl.find_opt t.slab_of_page (addr / page) with
    | None -> None
    | Some slab ->
      let size = Size_class.size_of_class slab.cls in
      let offset = addr - slab.base in
      if offset < 0 || offset >= slab.slots * size then None
      else Some (slab.base + (offset / size * size), size))

let live_bytes t = t.live_bytes
let live_allocations t = t.live_allocs
let extent t = t.extent
let extra_byte t = t.extra_byte

let iter_slabs t f =
  (* slab_of_page has one entry per page of each slab; dedup by base. *)
  let seen = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ slab ->
      if not (Hashtbl.mem seen slab.base) then begin
        Hashtbl.replace seen slab.base ();
        f ~base:slab.base ~cls:slab.cls ~slots:slab.slots ~used:slab.used
          ~free_slots:slab.free
      end)
    t.slab_of_page

let iter_large t f = Hashtbl.iter (fun base pages -> f ~base ~pages) t.large

let tcache_count t cls =
  assert (cls >= 0 && cls < Size_class.count);
  t.tcache.(cls).count

let tcache_items t cls =
  assert (cls >= 0 && cls < Size_class.count);
  t.tcache.(cls).items
let set_extent_hooks t hooks = Extent.set_hooks t.extent hooks
let purge_tick t = Extent.purge_tick t.extent
let purge_all t = Extent.purge_all t.extent
let retained_dirty_bytes t = Extent.retained_dirty_bytes t.extent
let machine t = t.machine
let wilderness t = Extent.wilderness t.extent

let stats t =
  {
    mallocs = t.mallocs;
    frees = t.frees;
    live = t.live_allocs;
    live_bytes = t.live_bytes;
    slab_count = t.slab_count;
    large_count = Hashtbl.length t.large;
  }

let attach_obs t reg =
  Obs.Registry.derive_counter reg "alloc.mallocs" (fun () -> t.mallocs);
  Obs.Registry.derive_counter reg "alloc.frees" (fun () -> t.frees);
  Obs.Registry.derive_gauge reg "alloc.live_allocations" (fun () ->
      t.live_allocs);
  Obs.Registry.derive_gauge reg "alloc.live_bytes" (fun () -> t.live_bytes);
  Obs.Registry.derive_gauge reg "alloc.retained_dirty_bytes" (fun () ->
      retained_dirty_bytes t)
