let name = "scudo"

let header_bytes = 16
let checksum_cycles = 28 (* CRC32-based header checksum, each direction *)
let pool_capacity = 32

type t = {
  heap : Jemalloc.t;
  machine : Machine.t;
  rng : Sim.Rng.t;
  (* Randomisation pool: recently freed slots, released in random order. *)
  pool : int array;
  mutable pool_len : int;
}

let create ?extra_byte machine =
  {
    heap = Jemalloc.create ?extra_byte machine;
    machine;
    rng = Sim.Rng.create 0x5C0D0;
    pool = Array.make pool_capacity 0;
    pool_len = 0;
  }

let malloc t size =
  Machine.charge t.machine checksum_cycles;
  Jemalloc.malloc t.heap (size + header_bytes)

let free t addr =
  Machine.charge t.machine checksum_cycles;
  if t.pool_len < pool_capacity then begin
    t.pool.(t.pool_len) <- addr;
    t.pool_len <- t.pool_len + 1
  end
  else begin
    (* Pool full: evict a random victim to the heap, keep the newcomer.
       Reuse order thus never matches free order. *)
    let i = Sim.Rng.int t.rng pool_capacity in
    Jemalloc.free t.heap t.pool.(i);
    t.pool.(i) <- addr
  end

let usable_size t addr = Jemalloc.usable_size t.heap addr

(* Slots parked in the randomisation pool were already freed by the
   caller: the underlying heap still counts them live, the app does not. *)
let is_live t addr =
  Jemalloc.is_live t.heap addr
  &&
  let pooled = ref false in
  for i = 0 to t.pool_len - 1 do
    if t.pool.(i) = addr then pooled := true
  done;
  not !pooled
let live_bytes t = Jemalloc.live_bytes t.heap
let wilderness t = Jemalloc.wilderness t.heap
let set_extent_hooks t hooks = Jemalloc.set_extent_hooks t.heap hooks

let drain_pool t =
  for i = 0 to t.pool_len - 1 do
    Jemalloc.free t.heap t.pool.(i)
  done;
  t.pool_len <- 0

let purge_tick t = Jemalloc.purge_tick t.heap

let purge_all t =
  drain_pool t;
  Jemalloc.purge_all t.heap

let pool_size t = t.pool_len
