(** Site-keyed pooled allocator: UAF prevention by static segregation.

    The SeMalloc/CAMP-style comparison point to MineSweeper's dynamic
    quarantine: allocations are segregated into pools keyed by their
    static allocation site, following a {!plan} computed by the
    flowcheck siteflow analysis. A pool either recycles freed slots
    among its own sites or retires them forever; address space is drawn
    from the shared {!Extent} allocator but never returned to it, so no
    freed range can ever be re-issued to a different pool. With a sound
    plan, no freed object can re-materialise under a live dangling
    pointer — no quarantine, no sweeps, fragmentation instead of scan
    cost. *)

type plan = {
  sites : int;  (** allocation sites the plan covers (>= 1) *)
  pools : int;  (** pools the sites are partitioned into (>= 1) *)
  pool_of_site : int array;  (** length [sites]; values in [0, pools) *)
  recycles : bool array;
      (** length [pools]; [false] means the pool retires every free —
          the analysis found a live dangling alias that could otherwise
          be re-materialised *)
}

val identity_plan : sites:int -> plan
(** One pool per site, all recycling — the plan-free fallback used when
    no analysis has run (maximum segregation, no retirement). *)

val validate_plan : plan -> unit
(** @raise Invalid_argument if lengths or pool ids are inconsistent. *)

type t

val create : ?extra_byte:bool -> ?plan:plan -> Machine.t -> t
(** Default plan is [identity_plan ~sites:1] (one recycling pool). *)

val malloc_site : t -> site:int -> int -> int
(** Allocate from the pool owning [site]. Site ids outside
    [0, plan.sites) alias site 0, matching {!Workloads.Trace} replay. *)

val malloc : t -> int -> int
(** [malloc t size] is [malloc_site t ~site:0 size]. *)

val free : t -> int -> unit
val usable_size : t -> int -> int
val is_live : t -> int -> bool
val live_bytes : t -> int
val live_allocations : t -> int

val allocation_containing : t -> int -> (int * int) option
(** Conservative lookup: [(base, usable)] of the allocation whose range
    contains the address, interior pointers included. *)

val pool_of_addr : t -> int -> int option
(** The pool owning the page behind [addr], if any. *)

val plan : t -> plan
val machine : t -> Machine.t
val extra_byte : t -> bool
val wilderness : t -> int
val set_extent_hooks : t -> Extent.hooks -> unit
val purge_tick : t -> unit
val purge_all : t -> unit

type pool_stats = {
  pool : int;
  recycling : bool;
  footprint_bytes : int;  (** address space owned by the pool *)
  live_now_bytes : int;
  peak_live_bytes : int;
  retired_bytes : int;  (** freed bytes the pool will never reuse *)
}

val pool_stats : t -> pool_stats array
val footprint_bytes : t -> int
val retired_bytes : t -> int

type stats = { mallocs : int; frees : int; live : int; live_bytes : int }

val stats : t -> stats
val attach_obs : t -> Obs.Registry.t -> unit
(** Registers [alloc.*] and the [pool.*] gauges ([pool.pools],
    [pool.footprint_bytes], [pool.retired_bytes]). *)
