let page = Vmem.page_size

(* ------------------------------------------------------------------ *)
(* The pooling plan: the runtime-neutral product of the static siteflow
   analysis (lib/flowcheck computes it; this allocator only consumes
   it). Sites are mapped onto pools; a pool either recycles freed slots
   internally or retires them forever. Address space never moves
   between pools — extents are requested from the shared [Extent]
   allocator but never returned to it, so its first-fit reuse can never
   hand one pool's freed range to another. *)

type plan = {
  sites : int;
  pools : int;
  pool_of_site : int array;
  recycles : bool array;
}

let identity_plan ~sites =
  let sites = max 1 sites in
  {
    sites;
    pools = sites;
    pool_of_site = Array.init sites Fun.id;
    recycles = Array.make sites true;
  }

let validate_plan p =
  if p.sites < 1 then invalid_arg "Poolalloc.plan: sites must be >= 1";
  if p.pools < 1 then invalid_arg "Poolalloc.plan: pools must be >= 1";
  if Array.length p.pool_of_site <> p.sites then
    invalid_arg "Poolalloc.plan: pool_of_site length <> sites";
  if Array.length p.recycles <> p.pools then
    invalid_arg "Poolalloc.plan: recycles length <> pools";
  Array.iter
    (fun pool ->
      if pool < 0 || pool >= p.pools then
        invalid_arg "Poolalloc.plan: pool id out of range")
    p.pool_of_site

(* ------------------------------------------------------------------ *)
(* Heap structure: per-(pool, class) slab bins, jemalloc-style, minus
   the thread cache and minus slab release — an empty slab stays with
   its pool so no page is ever re-keyed. *)

type slab = {
  base : int;
  pool : int;
  cls : int;
  slots : int;
  mutable free : int list; (* free slot indices *)
  mutable used : int;
  mutable in_nonfull : bool;
}

type bin = { mutable nonfull : slab list }

type t = {
  machine : Machine.t;
  extent : Extent.t;
  plan : plan;
  bins : bin array array; (* pool -> class -> bin *)
  large_free : (int * int, int list ref) Hashtbl.t;
      (* (pool, pages) -> free bases, most recent first *)
  slab_of_page : (int, slab) Hashtbl.t;
  large : (int, int * int) Hashtbl.t; (* base -> (pages, pool) *)
  large_page_index : (int, int) Hashtbl.t; (* page index -> base *)
  retired_slots : (int, unit) Hashtbl.t; (* freed-forever small bases *)
  extra_byte : bool;
  pool_footprint : int array; (* address space owned, bytes *)
  pool_live : int array;
  pool_peak : int array;
  pool_retired : int array; (* freed-forever bytes in retire pools *)
  mutable live_bytes : int;
  mutable live_allocs : int;
  mutable mallocs : int;
  mutable frees : int;
}

let create ?(extra_byte = false) ?(plan = identity_plan ~sites:1) machine =
  validate_plan plan;
  {
    machine;
    extent = Extent.create machine;
    plan;
    bins =
      Array.init plan.pools (fun _ ->
          Array.init Size_class.count (fun _ -> { nonfull = [] }));
    large_free = Hashtbl.create 64;
    slab_of_page = Hashtbl.create 1024;
    large = Hashtbl.create 256;
    large_page_index = Hashtbl.create 256;
    retired_slots = Hashtbl.create 256;
    extra_byte;
    pool_footprint = Array.make plan.pools 0;
    pool_live = Array.make plan.pools 0;
    pool_peak = Array.make plan.pools 0;
    pool_retired = Array.make plan.pools 0;
    live_bytes = 0;
    live_allocs = 0;
    mallocs = 0;
    frees = 0;
  }

let cost t = t.machine.Machine.cost
let charge t n = Machine.charge t.machine n

let new_slab t pool cls =
  let pages = Size_class.slab_pages cls in
  let base = Extent.alloc t.extent ~pages in
  let slots = Size_class.slab_slots cls in
  let slab =
    {
      base;
      pool;
      cls;
      slots;
      free = List.init slots Fun.id;
      used = 0;
      in_nonfull = true;
    }
  in
  for i = 0 to pages - 1 do
    Hashtbl.replace t.slab_of_page ((base / page) + i) slab
  done;
  t.pool_footprint.(pool) <- t.pool_footprint.(pool) + (pages * page);
  slab

let bin_pop t pool cls =
  let bin = t.bins.(pool).(cls) in
  let slab =
    match bin.nonfull with
    | s :: _ ->
      charge t (cost t).Sim.Cost.malloc_fast;
      s
    | [] ->
      charge t (cost t).Sim.Cost.malloc_slow;
      let s = new_slab t pool cls in
      bin.nonfull <- [ s ];
      s
  in
  match slab.free with
  | [] -> assert false
  | slot :: rest ->
    slab.free <- rest;
    slab.used <- slab.used + 1;
    if rest = [] then begin
      (match bin.nonfull with
      | s :: tl when s == slab -> bin.nonfull <- tl
      | _ -> bin.nonfull <- List.filter (fun s -> s != slab) bin.nonfull);
      slab.in_nonfull <- false
    end;
    slab.base + (slot * Size_class.size_of_class cls)

let bin_push t slab addr =
  let cls = slab.cls in
  let size = Size_class.size_of_class cls in
  let slot = (addr - slab.base) / size in
  assert (addr = slab.base + (slot * size));
  slab.free <- slot :: slab.free;
  slab.used <- slab.used - 1;
  assert (slab.used >= 0);
  if not slab.in_nonfull then begin
    slab.in_nonfull <- true;
    t.bins.(slab.pool).(cls).nonfull <-
      slab :: t.bins.(slab.pool).(cls).nonfull
  end

let pool_of_site t site =
  let site = if site >= 0 && site < t.plan.sites then site else 0 in
  t.plan.pool_of_site.(site)

let malloc_site t ~site size =
  assert (size >= 0);
  let size = max 1 size + if t.extra_byte then 1 else 0 in
  let pool = pool_of_site t site in
  t.mallocs <- t.mallocs + 1;
  let addr, usable =
    if Size_class.is_small size then begin
      let cls = Size_class.class_of_size size in
      (bin_pop t pool cls, Size_class.size_of_class cls)
    end
    else begin
      let pages = Size_class.large_pages size in
      let addr =
        match Hashtbl.find_opt t.large_free (pool, pages) with
        | Some ({ contents = base :: rest } as l) ->
          charge t (cost t).Sim.Cost.malloc_fast;
          l := rest;
          base
        | Some { contents = [] } | None ->
          charge t (cost t).Sim.Cost.malloc_slow;
          let base = Extent.alloc t.extent ~pages in
          t.pool_footprint.(pool) <- t.pool_footprint.(pool) + (pages * page);
          base
      in
      Hashtbl.replace t.large addr (pages, pool);
      for i = 0 to pages - 1 do
        Hashtbl.replace t.large_page_index ((addr / page) + i) addr
      done;
      (addr, pages * page)
    end
  in
  Vmem.zero_range t.machine.Machine.mem ~addr ~len:usable;
  Machine.charge_bytes t.machine (cost t).Sim.Cost.touch_per_byte usable;
  t.live_bytes <- t.live_bytes + usable;
  t.live_allocs <- t.live_allocs + 1;
  t.pool_live.(pool) <- t.pool_live.(pool) + usable;
  if t.pool_live.(pool) > t.pool_peak.(pool) then
    t.pool_peak.(pool) <- t.pool_live.(pool);
  addr

let malloc t size = malloc_site t ~site:0 size

let lookup_usable t addr =
  match Hashtbl.find_opt t.large addr with
  | Some (pages, _) -> pages * page
  | None ->
    (match Hashtbl.find_opt t.slab_of_page (addr / page) with
    | Some slab -> Size_class.size_of_class slab.cls
    | None -> invalid_arg "Poolalloc.usable_size: not an allocation")

let usable_size = lookup_usable

let free t addr =
  t.frees <- t.frees + 1;
  (match Hashtbl.find_opt t.large addr with
  | Some (pages, pool) ->
    charge t (cost t).Sim.Cost.free_slow;
    Hashtbl.remove t.large addr;
    for i = 0 to pages - 1 do
      Hashtbl.remove t.large_page_index ((addr / page) + i)
    done;
    let usable = pages * page in
    t.live_bytes <- t.live_bytes - usable;
    t.pool_live.(pool) <- t.pool_live.(pool) - usable;
    if t.plan.recycles.(pool) then begin
      let l =
        match Hashtbl.find_opt t.large_free (pool, pages) with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace t.large_free (pool, pages) l;
          l
      in
      l := addr :: !l
    end
    else t.pool_retired.(pool) <- t.pool_retired.(pool) + usable
  | None ->
    (match Hashtbl.find_opt t.slab_of_page (addr / page) with
    | Some slab ->
      charge t (cost t).Sim.Cost.free_fast;
      let usable = Size_class.size_of_class slab.cls in
      t.live_bytes <- t.live_bytes - usable;
      t.pool_live.(slab.pool) <- t.pool_live.(slab.pool) - usable;
      if t.plan.recycles.(slab.pool) then bin_push t slab addr
      else begin
        (* Retired for good: never pushed back to the slab free list,
           so reuse can never see it again. *)
        Hashtbl.replace t.retired_slots addr ();
        t.pool_retired.(slab.pool) <- t.pool_retired.(slab.pool) + usable
      end
    | None -> invalid_arg "Poolalloc.free: not an allocation"));
  t.live_allocs <- t.live_allocs - 1

let is_live t addr =
  Hashtbl.mem t.large addr
  ||
  match Hashtbl.find_opt t.slab_of_page (addr / page) with
  | None -> false
  | Some slab ->
    let size = Size_class.size_of_class slab.cls in
    let slot = (addr - slab.base) / size in
    addr = slab.base + (slot * size)
    && (not (List.mem slot slab.free))
    && not (Hashtbl.mem t.retired_slots addr)

let allocation_containing t addr =
  match Hashtbl.find_opt t.large_page_index (addr / page) with
  | Some base ->
    let pages, _ = Hashtbl.find t.large base in
    Some (base, pages * page)
  | None ->
    (match Hashtbl.find_opt t.slab_of_page (addr / page) with
    | None -> None
    | Some slab ->
      let size = Size_class.size_of_class slab.cls in
      let offset = addr - slab.base in
      if offset < 0 || offset >= slab.slots * size then None
      else Some (slab.base + (offset / size * size), size))

let pool_of_addr t addr =
  match Hashtbl.find_opt t.large_page_index (addr / page) with
  | Some base ->
    let _, pool = Hashtbl.find t.large base in
    Some pool
  | None ->
    (match Hashtbl.find_opt t.slab_of_page (addr / page) with
    | Some slab -> Some slab.pool
    | None -> None)

let live_bytes t = t.live_bytes
let live_allocations t = t.live_allocs
let plan t = t.plan
let machine t = t.machine
let extra_byte t = t.extra_byte
let wilderness t = Extent.wilderness t.extent
let set_extent_hooks t hooks = Extent.set_hooks t.extent hooks
let purge_tick t = Extent.purge_tick t.extent
let purge_all t = Extent.purge_all t.extent

type pool_stats = {
  pool : int;
  recycling : bool;
  footprint_bytes : int;
  live_now_bytes : int;
  peak_live_bytes : int;
  retired_bytes : int;
}

let pool_stats t =
  Array.init t.plan.pools (fun pool ->
      {
        pool;
        recycling = t.plan.recycles.(pool);
        footprint_bytes = t.pool_footprint.(pool);
        live_now_bytes = t.pool_live.(pool);
        peak_live_bytes = t.pool_peak.(pool);
        retired_bytes = t.pool_retired.(pool);
      })

let footprint_bytes t = Array.fold_left ( + ) 0 t.pool_footprint
let retired_bytes t = Array.fold_left ( + ) 0 t.pool_retired

type stats = { mallocs : int; frees : int; live : int; live_bytes : int }

let stats (t : t) =
  {
    mallocs = t.mallocs;
    frees = t.frees;
    live = t.live_allocs;
    live_bytes = t.live_bytes;
  }

let attach_obs (t : t) reg =
  Obs.Registry.derive_counter reg "alloc.mallocs" (fun () -> t.mallocs);
  Obs.Registry.derive_counter reg "alloc.frees" (fun () -> t.frees);
  Obs.Registry.derive_gauge reg "alloc.live_allocations" (fun () ->
      t.live_allocs);
  Obs.Registry.derive_gauge reg "alloc.live_bytes" (fun () -> t.live_bytes);
  Obs.Registry.derive_gauge reg "pool.pools" (fun () -> t.plan.pools);
  Obs.Registry.derive_gauge reg "pool.footprint_bytes" (fun () ->
      footprint_bytes t);
  Obs.Registry.derive_gauge reg "pool.retired_bytes" (fun () ->
      retired_bytes t)
