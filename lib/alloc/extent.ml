let page = Vmem.page_size

type hooks = {
  on_decommit : addr:int -> pages:int -> unit;
  on_commit : addr:int -> pages:int -> unit;
}

let default_hooks = {
  on_decommit = (fun ~addr:_ ~pages:_ -> ());
  on_commit = (fun ~addr:_ ~pages:_ -> ());
}

type range = {
  pages : int;
  committed : bool;
  dirty_since : int; (* wall cycles when retained; meaningful if committed *)
}

module Addr_map = Map.Make (Int)

type t = {
  machine : Machine.t;
  decay_cycles : int;
  mutable hooks : hooks;
  mutable retained : range Addr_map.t; (* keyed by base address *)
  mutable brk : int;
  mutable used_bytes : int;
  mutable retained_total : int;
  mutable retained_dirty : int;
}

let create ?(decay_cycles = 2_500_000) machine =
  {
    machine;
    decay_cycles;
    hooks = default_hooks;
    retained = Addr_map.empty;
    brk = Layout.heap_base;
    used_bytes = 0;
    retained_total = 0;
    retained_dirty = 0;
  }

let set_hooks t hooks = t.hooks <- hooks

let syscall t = Machine.charge t.machine t.machine.Machine.cost.Sim.Cost.syscall

let take_from_retained t base r ~pages =
  (* Serve the request from the front of [r]; re-retain any remainder. *)
  t.retained <- Addr_map.remove base t.retained;
  t.retained_total <- t.retained_total - (r.pages * page);
  if r.committed then t.retained_dirty <- t.retained_dirty - (r.pages * page);
  if r.pages > pages then begin
    let rest_base = base + (pages * page) in
    let rest = { r with pages = r.pages - pages } in
    t.retained <- Addr_map.add rest_base rest t.retained;
    t.retained_total <- t.retained_total + (rest.pages * page);
    if rest.committed then t.retained_dirty <- t.retained_dirty + (rest.pages * page)
  end;
  let len = pages * page in
  if r.committed then
    (* Dirty reuse: hand the (zeroed-below) range straight back. *)
    Vmem.zero_range t.machine.Machine.mem ~addr:base ~len
  else begin
    Vmem.commit t.machine.Machine.mem ~addr:base ~len;
    syscall t;
    t.hooks.on_commit ~addr:base ~pages
  end;
  t.used_bytes <- t.used_bytes + len;
  base

let alloc t ~pages =
  assert (pages > 0);
  (* First fit in address order keeps reuse at low addresses (JeMalloc's
     policy), which limits fragmentation of the retained set. *)
  let found =
    Addr_map.to_seq t.retained
    |> Seq.find (fun (_, r) -> r.pages >= pages)
  in
  match found with
  | Some (base, r) -> take_from_retained t base r ~pages
  | None ->
    let base = t.brk in
    let len = pages * page in
    t.brk <- t.brk + len;
    assert (t.brk <= Layout.heap_limit);
    Vmem.map t.machine.Machine.mem ~addr:base ~len;
    syscall t;
    t.used_bytes <- t.used_bytes + len;
    base

let add_retained t base r =
  t.retained <- Addr_map.add base r t.retained;
  t.retained_total <- t.retained_total + (r.pages * page);
  if r.committed then t.retained_dirty <- t.retained_dirty + (r.pages * page)

let remove_retained t base r =
  t.retained <- Addr_map.remove base t.retained;
  t.retained_total <- t.retained_total - (r.pages * page);
  if r.committed then t.retained_dirty <- t.retained_dirty - (r.pages * page)

let dalloc t ~addr ~pages =
  assert (pages > 0);
  t.used_bytes <- t.used_bytes - (pages * page);
  let r = { pages; committed = true; dirty_since = Machine.now t.machine } in
  (* Coalesce with committed neighbours so large reusable runs re-form;
     mixed commit states are left split to keep the model simple. *)
  let r, addr =
    match Addr_map.find_last_opt (fun b -> b < addr) t.retained with
    | Some (b, prev) when b + (prev.pages * page) = addr && prev.committed ->
      remove_retained t b prev;
      ({ r with pages = prev.pages + r.pages; dirty_since = prev.dirty_since }, b)
    | Some _ | None -> (r, addr)
  in
  let r =
    match Addr_map.find_opt (addr + (r.pages * page)) t.retained with
    | Some next when next.committed ->
      remove_retained t (addr + (r.pages * page)) next;
      { r with pages = r.pages + next.pages }
    | Some _ | None -> r
  in
  add_retained t addr r

let purge_range t base r =
  remove_retained t base r;
  Vmem.decommit t.machine.Machine.mem ~addr:base ~len:(r.pages * page);
  syscall t;
  t.hooks.on_decommit ~addr:base ~pages:r.pages;
  add_retained t base { r with committed = false }

let purge_matching t pred =
  let victims =
    Addr_map.fold
      (fun base r acc -> if r.committed && pred r then (base, r) :: acc else acc)
      t.retained []
  in
  List.iter (fun (base, r) -> purge_range t base r) victims

let purge_tick t =
  let now = Machine.now t.machine in
  purge_matching t (fun r -> now - r.dirty_since >= t.decay_cycles)

let purge_all t = purge_matching t (fun _ -> true)

let iter_retained t f =
  Addr_map.iter
    (fun base r -> f ~addr:base ~pages:r.pages ~committed:r.committed)
    t.retained

let retained_bytes t = t.retained_total
let retained_dirty_bytes t = t.retained_dirty
let heap_used_bytes t = t.used_bytes
let wilderness t = t.brk
