(** The allocator interface MineSweeper layers over.

    The quarantine is allocator-agnostic (Section 3): it only needs the
    public allocation entry points plus three integration hooks — a way
    to bound the heap (for cheap pointer filtering during sweeps), the
    extent hooks that let purged memory be protected out of sweeps, and
    explicit purge control for the post-sweep cleanup of Section 4.5.
    [Jemalloc] implements this signature; [Scudo] is the second backend
    the paper reports (Section 7). *)

module type S = sig
  type t

  val name : string

  val create : ?extra_byte:bool -> Machine.t -> t
  (** [extra_byte] enables the +1-byte modification that keeps C/C++
      one-past-the-end pointers inside the same allocation. *)

  val malloc : t -> int -> int
  val free : t -> int -> unit
  val usable_size : t -> int -> int

  val live_bytes : t -> int
  (** The heap-size measure quarantine thresholds compare against. *)

  val is_live : t -> int -> bool
  (** Whether [addr] is the base of an allocation the application
      currently owns — handed out by [malloc] and not yet returned.
      MineSweeper consults it to classify a free of a never-allocated
      pointer ([Unknown_pointer]) apart from a quarantined double free. *)

  val wilderness : t -> int
  (** Upper bound of the heap: sweeps reject word values above it. *)

  val set_extent_hooks : t -> Extent.hooks -> unit
  val purge_tick : t -> unit
  val purge_all : t -> unit
end
