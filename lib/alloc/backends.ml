(** {!Backend.S} adapters for the concrete allocators. *)

module Jemalloc_backend : Backend.S with type t = Jemalloc.t = struct
  type t = Jemalloc.t

  let name = "jemalloc"
  let create ?extra_byte machine = Jemalloc.create ?extra_byte machine
  let malloc = Jemalloc.malloc
  let free = Jemalloc.free
  let usable_size = Jemalloc.usable_size
  let live_bytes = Jemalloc.live_bytes
  let is_live = Jemalloc.is_live
  let wilderness = Jemalloc.wilderness
  let set_extent_hooks = Jemalloc.set_extent_hooks
  let purge_tick = Jemalloc.purge_tick
  let purge_all = Jemalloc.purge_all
end

module Scudo_backend : Backend.S with type t = Scudo.t = struct
  type t = Scudo.t

  let name = Scudo.name
  let create = Scudo.create
  let malloc = Scudo.malloc
  let free = Scudo.free
  let usable_size = Scudo.usable_size
  let live_bytes = Scudo.live_bytes
  let is_live = Scudo.is_live
  let wilderness = Scudo.wilderness
  let set_extent_hooks = Scudo.set_extent_hooks
  let purge_tick = Scudo.purge_tick
  let purge_all = Scudo.purge_all
end

module Pool_backend : Backend.S with type t = Poolalloc.t = struct
  type t = Poolalloc.t

  let name = "poolalloc"
  let create ?extra_byte machine = Poolalloc.create ?extra_byte machine
  let malloc = Poolalloc.malloc
  let free = Poolalloc.free
  let usable_size = Poolalloc.usable_size
  let live_bytes = Poolalloc.live_bytes
  let is_live = Poolalloc.is_live
  let wilderness = Poolalloc.wilderness
  let set_extent_hooks = Poolalloc.set_extent_hooks
  let purge_tick = Poolalloc.purge_tick
  let purge_all = Poolalloc.purge_all
end

module Dlmalloc_backend : Backend.S with type t = Dlmalloc.t = struct
  type t = Dlmalloc.t

  let name = Dlmalloc.name
  let create = Dlmalloc.create
  let malloc = Dlmalloc.malloc
  let free = Dlmalloc.free
  let usable_size = Dlmalloc.usable_size
  let live_bytes = Dlmalloc.live_bytes
  let is_live = Dlmalloc.is_live
  let wilderness = Dlmalloc.wilderness
  let set_extent_hooks = Dlmalloc.set_extent_hooks
  let purge_tick = Dlmalloc.purge_tick
  let purge_all = Dlmalloc.purge_all
end
