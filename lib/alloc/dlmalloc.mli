(** A GNU-malloc-style boundary-tag allocator with *in-band* metadata.

    Unlike the JeMalloc model (metadata out-of-band, in host structures),
    this allocator keeps chunk headers and free-list links inside the
    simulated memory itself, the way dlmalloc/ptmalloc do. That is the
    design the paper's Section 2 footnote warns about: a use-after-free
    write lands on free-list metadata, and the next unlink turns it into
    an arbitrary memory write (the classic unlink exploit).

    The module exists to demonstrate exactly that failure mode — and
    that MineSweeper layered on top (via {!Backend.S}) defuses it: the
    quarantine defers the free-list insertion until no dangling pointer
    remains, and zero-filling destroys any corrupted links.

    Chunk layout (sizes in bytes, all fields 8-byte words in simulated
    memory):

    {v
      [ size | A-bit ][ payload ... ]                  allocated
      [ size | 0     ][ fd ][ bk ][ ... ]              free, in a bin
    v} *)

type t

val name : string
val create : ?extra_byte:bool -> Machine.t -> t
val malloc : t -> int -> int
val free : t -> int -> unit
val usable_size : t -> int -> int
val live_bytes : t -> int

val is_live : t -> int -> bool
(** Whether the address's in-band header parses as an allocated chunk
    (false for free chunks and for addresses outside the heap). *)

val wilderness : t -> int
val set_extent_hooks : t -> Extent.hooks -> unit
val purge_tick : t -> unit
val purge_all : t -> unit

val header_of : t -> int -> int
(** Address of the chunk header for a payload address (tests/attacks). *)

val bin_of_size : int -> int
(** Bin index used for a request size (tests). *)

val check_bin_integrity : t -> bool
(** Walk every free list verifying the doubly-linked invariants
    ([chunk.fd.bk == chunk]); [false] means metadata was corrupted. *)
