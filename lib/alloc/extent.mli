(** Extent management: page-granularity ranges of heap address space.

    Extents back both slabs and large allocations. Freed extents are
    retained (address space is kept mapped) and reused; retained extents
    that stay dirty past the decay deadline are purged — their physical
    pages are released, mirroring JeMalloc's decay-based [madvise]
    purging. MineSweeper replaces the default purge behaviour through the
    {!hooks} (Section 4.5: decommit/commit pairs instead of
    purge/demand-allocation). *)

type hooks = {
  on_decommit : addr:int -> pages:int -> unit;
      (** Runs after physical pages of a retained extent are discarded.
          MineSweeper uses this to protect the range and record it in the
          unmapped-shadow bitmap. *)
  on_commit : addr:int -> pages:int -> unit;
      (** Runs after a previously decommitted extent is recommitted for
          reuse, before it is handed out. *)
}

val default_hooks : hooks

type t

val create : ?decay_cycles:int -> Machine.t -> t
(** [decay_cycles] is the age after which a dirty retained extent is
    purged by {!purge_tick} (JeMalloc's 10-second decay curve, scaled to
    simulated cycles). *)

val set_hooks : t -> hooks -> unit

val alloc : t -> pages:int -> int
(** Returns the base address of a zero-filled, committed extent. Reuses
    retained address space when possible (coalescing first-fit),
    otherwise extends the heap break. *)

val dalloc : t -> addr:int -> pages:int -> unit
(** Retain an extent for reuse. The range stays committed ("dirty")
    until purged. *)

val purge_tick : t -> unit
(** Purge retained extents whose decay deadline has passed. *)

val purge_all : t -> unit
(** Purge every dirty retained extent immediately (MineSweeper's
    post-sweep full purge). *)

val iter_retained : t -> (addr:int -> pages:int -> committed:bool -> unit) -> unit
(** Visit every retained extent in ascending address order — the
    sanitizer's window into the extent map for overlap/alignment and
    accounting audits. [committed = false] means the range was purged. *)

val retained_bytes : t -> int
val retained_dirty_bytes : t -> int
val heap_used_bytes : t -> int
(** Total address space handed out and not retained. *)

val wilderness : t -> int
(** Current heap break — all extents live below this address. *)
