(** A JeMalloc-model allocator over the simulated address space.

    Size-classed slabs with a thread cache for small requests, whole-page
    extents for large ones, retained-extent reuse and decay purging. The
    structural properties MineSweeper depends on are reproduced:
    metadata lives out-of-band (in OCaml values, not in the simulated
    memory), freed memory is recycled by address-ordered extent reuse,
    and the extent life-cycle is steerable through {!Extent.hooks}.

    The [extra_byte] option implements the paper's modified JeMalloc that
    serves every request one byte larger, so C/C++ one-past-the-end
    pointers land inside the same allocation's shadow range. *)

type t

val create : ?extra_byte:bool -> ?decay_cycles:int -> Machine.t -> t

val malloc : t -> int -> int
(** [malloc t size] returns the address of a zero-filled allocation of at
    least [size] bytes (plus the extra byte when enabled). *)

val free : t -> int -> unit
(** Return an allocation. The address must be one returned by {!malloc}
    and still live; anything else is a simulation bug and asserts. *)

val usable_size : t -> int -> int
(** Usable bytes backing the allocation at this address. *)

val is_live : t -> int -> bool
(** Whether the address is a currently live allocation (used by tests and
    by the exploit checker; not part of the C API). *)

val allocation_containing : t -> int -> (int * int) option
(** [allocation_containing t addr] resolves an interior pointer to the
    [(base, usable)] of the slab slot or large extent containing it —
    what a conservative collector needs to mark whole allocations. The
    slot need not be live (conservative marking does not know). *)

val live_bytes : t -> int
(** Sum of usable sizes over live allocations — the heap-size measure the
    quarantine threshold compares against. *)

val live_allocations : t -> int

val extent : t -> Extent.t
(** The underlying extent allocator (sanitizer audits only). *)

val extra_byte : t -> bool
(** Whether the +1-byte modification is active on this instance. *)

(** {1 Introspection for the sanitizer's cross-layer audit}

    These expose the internal accounting so {!Sanitizer.Invariants} can
    recompute it independently; they are not part of the allocator API. *)

val iter_slabs :
  t ->
  (base:int -> cls:int -> slots:int -> used:int -> free_slots:int list -> unit) ->
  unit
(** Visit every live slab once. [used] counts slots handed out (slots
    parked in the thread cache included); [free_slots] are the free slot
    indices. *)

val iter_large : t -> (base:int -> pages:int -> unit) -> unit
(** Visit every live large allocation. *)

val tcache_count : t -> int -> int
(** [tcache_count t cls] — entries cached for the size class. *)

val tcache_items : t -> int -> int list
(** The cached addresses themselves. *)

val set_extent_hooks : t -> Extent.hooks -> unit
val purge_tick : t -> unit
val purge_all : t -> unit

val retained_dirty_bytes : t -> int
val machine : t -> Machine.t

val wilderness : t -> int
(** Heap break of the underlying extent allocator: every heap pointer is
    below this, so sweeps can cheaply reject non-heap word values. *)

type stats = {
  mallocs : int;
  frees : int;
  live : int;
  live_bytes : int;
  slab_count : int;
  large_count : int;
}

val stats : t -> stats

val attach_obs : t -> Obs.Registry.t -> unit
(** Register the allocator's accounting as read-through metrics
    ([alloc.mallocs], [alloc.frees], [alloc.live_allocations],
    [alloc.live_bytes], [alloc.retained_dirty_bytes]). Raises
    {!Obs.Registry.Duplicate} if the names are already claimed. *)

(** {1 Allocation life-cycle observation}

    The race checker ({!Racecheck}) subscribes to serve/recycle events
    to detect quarantined memory re-entering circulation: a [Served]
    whose address the quarantine still holds means the interposition
    layer was bypassed. [from_tcache]/[to_tcache] distinguish the
    thread-cache fast path from extent traffic. At most one observer is
    active; emission is synchronous. *)

type event =
  | Served of { addr : int; usable : int; from_tcache : bool }
  | Recycled of { addr : int; to_tcache : bool }

val set_observer : t -> (event -> unit) -> unit
val clear_observer : t -> unit
