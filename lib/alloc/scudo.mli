(** A Scudo-model hardened allocator (LLVM's hardened allocator), the
    second backend the paper integrates MineSweeper with (Section 7).

    Differences from the JeMalloc model that matter here:
    - every allocation carries an inline 16-byte header whose checksum is
      computed on [malloc] and verified on [free] (a flat cycle
      surcharge and a size overhead);
    - freed slots pass through a small randomised pool before returning
      to the underlying heap, so reuse order is unpredictable — Scudo's
      probabilistic use-after-free hardening. The {!Attack} spray
      becomes unreliable against plain Scudo but is still possible;
      MineSweeper on top makes it deterministic-impossible. *)

type t

val name : string
val create : ?extra_byte:bool -> Machine.t -> t
val malloc : t -> int -> int
val free : t -> int -> unit
val usable_size : t -> int -> int
val live_bytes : t -> int

val is_live : t -> int -> bool
(** Live from the application's perspective: allocated and neither freed
    to the randomisation pool nor to the underlying heap. *)

val wilderness : t -> int
val set_extent_hooks : t -> Extent.hooks -> unit
val purge_tick : t -> unit
val purge_all : t -> unit

val pool_size : t -> int
(** Slots currently held in the randomisation pool (tests). *)
