module Trace = Workloads.Trace

type case = {
  name : string;
  trace : Trace.t;
  expected_rules : string list;
}

let case name expected_rules body =
  {
    name;
    trace = Trace.of_string (Printf.sprintf "# msweep-trace v1 %s\n%s" name body);
    expected_rules = List.sort_uniq compare expected_rules;
  }

let cases =
  [
    case "double-free" [ "double-free" ] "a 0 64\nx 0\nx 0\n";
    case "free-unallocated" [ "free-unallocated" ] "x 42\n";
    case "duplicate-alloc" [ "duplicate-alloc" ] "a 0 64\na 0 32\n";
    (* id 0 is freed before the data store lands in it: the write is a
       use-after-free the replay silently skips. *)
    case "store-after-free" [ "store-after-free" ] "a 0 64\nx 0\nd f 0 0 5\n";
    case "store-unallocated" [ "store-unallocated" ] "p f 9 0 0\n";
    (* the store publishes id 1 after it died *)
    case "dangling-target" [ "dangling-target" ] "a 0 64\na 1 64\nx 1\np r 0 1\n";
    (* root[3] still points at id 0 when it is freed — the paper's
       Section 3.2 precondition for a dangling pointer. *)
    case "unclear-before-free" [ "unclear-before-free" ]
      "a 0 64\np r 3 0\nx 0\n";
    (* a 16-byte object has 2 words; word 99 wraps *)
    case "field-out-of-range" [ "field-out-of-range" ] "a 0 16\nd f 0 99 7\n";
    (* compound: a free-then-write-then-free chain raising three rules *)
    case "uaf-chain"
      [ "double-free"; "store-after-free"; "unclear-before-free" ]
      "a 0 64\na 1 64\np f 1 0 0\nx 0\nd f 0 2 9\nx 0\nx 1\n";
    (* the trace declares 2 threads but frees from thread 5: the
       quarantine aliases the push to buffer 0 *)
    case "free-thread-out-of-range" [ "free-thread-out-of-range" ]
      "# threads 2\na 0 64\nx 0 5\n";
    (* the trace declares 2 allocation sites but allocates at site 5:
       replay and the siteflow analysis alias it to site 0 *)
    case "alloc-site-out-of-range" [ "alloc-site-out-of-range" ]
      "# sites 2\na 0 64 5\nx 0\n";
  ]

(* ------------------------------------------------------------------ *)
(* Protocol mutants                                                    *)

type protocol_mutation =
  | Skip_stw_fence
  | Release_before_mark_done
  | Lose_requeued_entry
  | Reorder_stage_boundaries

type protocol_mutant = {
  mutant_name : string;
  mutation : protocol_mutation;
  expected_race_rules : string list;
}

let protocol_mutants =
  [
    {
      mutant_name = "skip-stw-fence";
      mutation = Skip_stw_fence;
      expected_race_rules = [ "rc-mark-hidden-write" ];
    };
    {
      mutant_name = "release-before-mark-done";
      mutation = Release_before_mark_done;
      expected_race_rules = [ "rc-early-release" ];
    };
    {
      mutant_name = "lose-requeued-entry";
      mutation = Lose_requeued_entry;
      expected_race_rules = [ "rc-lost-entry" ];
    };
    {
      mutant_name = "reorder-stage-boundaries";
      mutation = Reorder_stage_boundaries;
      expected_race_rules = [ "rc-stage-order" ];
    };
  ]

let well_behaved ?(seeds = [ 1; 2 ]) ?(scale = 0.05) () =
  List.concat_map
    (fun profile ->
      let profile =
        if scale = 1.0 then profile else Workloads.Profile.scale_ops scale profile
      in
      List.map (fun seed -> Trace.generate ~seed profile) seeds)
    Workloads.Mimalloc_bench.all
