(** Static analysis over {!Workloads.Trace.t} programs.

    Walks the op array without executing it, tracking an abstract state
    (id liveness, which slot statically holds which pointer) and emits a
    {!Diagnostic.t} per violation. The analysis mirrors
    {!Workloads.Trace.replay}'s semantics exactly — including index
    wrapping and the skip rules for unresolvable operands — so a clean
    lint means the replay performs no silent no-ops beyond the guarded
    [Clear_ptr] cases.

    Rules (stable ids; E = error, W = warning):
    - [double-free] (E): [Free] of an id already freed.
    - [free-unallocated] (E): [Free] of an id never allocated.
    - [duplicate-alloc] (E): [Alloc] reusing an id seen before.
    - [store-after-free] (E): [Store_ptr]/[Store_data] through a [Field]
      of a freed holder — a use-after-free write. ([Clear_ptr] is exempt:
      it is defined as a guarded no-op and the replay skips it.)
    - [store-unallocated] (E): [Store_ptr]/[Store_data] through a [Field]
      of a never-allocated holder.
    - [dangling-target] (W): [Store_ptr] whose target is dead (freed or
      never allocated) at store time — the store manufactures a dangling
      pointer (and the replay skips it).
    - [unclear-before-free] (W): at [Free id], some live slot outside the
      dying object still holds a pointer to [id] — no [Clear_ptr] (or
      overwrite) intervened since the [Store_ptr]. This is precisely the
      dangling-pointer precondition of the paper's Section 3.2: the sweep
      will find the pointer and the free will fail until it is cleared.
    - [field-out-of-range] (W): a [Field] word index at or beyond the
      holder's size (or a [Root] index beyond the window) — the replay
      wraps it, so the op touches a different word than written. *)

val rules : (string * string) list
(** [(rule id, one-line description)] for every rule, in a stable order. *)

val lint : Workloads.Trace.t -> Diagnostic.t list
(** All diagnostics, in op order. *)
