module Instance = Minesweeper.Instance
module Registry = Ptrtrack.Registry
module Trace = Workloads.Trace

type report = {
  trace_name : string;
  ops : int;
  allocs : int;
  frees : int;
  releases : int;
  sweeps : int;
  soundness : Diagnostic.t list;
  precision : Diagnostic.t list;
  audit : Diagnostic.t list;
  unsound_ids : int list;
  retained_ids : int list;
}

let findings r = r.soundness @ r.precision @ r.audit

(* One still-quarantined allocation under observation. *)
type tracked = {
  id : int;
  eligible_from : int;
      (** completed-sweep count after which a completion could have
          locked this entry in: a sweep already in flight at free time
          fixed its lock-in set earlier and never observed the entry,
          so its completion is no retention evidence *)
  mutable clean_sweeps : int;  (** consecutive completed sweeps that
                                   locked the entry in and found no
                                   ground-truth pointer to it *)
  mutable reported : bool;
}

let run ?(config = Minesweeper.Config.default) ?(latency_sweeps = 3)
    ?(audit = true) (trace : Trace.t) =
  let machine = Alloc.Machine.create () in
  let mem = machine.Alloc.Machine.mem in
  List.iter
    (fun (base, size) -> Vmem.map mem ~addr:base ~len:size)
    Layout.root_regions;
  let ms = Instance.create ~config ~threads:1 machine in
  let je = Instance.jemalloc ms in
  let registry = Registry.create je in
  (* [Instance.stats] returns a point-in-time snapshot: re-read at every
     use instead of freezing the build-time zeros. *)
  let stats () = Instance.stats ms in
  let audit_findings = ref [] in
  if audit then
    Invariants.attach ms (fun fs -> audit_findings := !audit_findings @ fs);
  let addr_of = Hashtbl.create 4096 in
  (* addr -> tracked, for every allocation currently in quarantine *)
  let quarantined : (int, tracked) Hashtbl.t = Hashtbl.create 4096 in
  let soundness = ref [] in
  let precision = ref [] in
  let unsound_ids = ref [] in
  let retained_ids = ref [] in
  let allocs = ref 0 in
  let frees = ref 0 in
  let completed_sweeps () =
    (stats ()).Minesweeper.Stats.sweeps
    - if Instance.sweep_in_progress ms then 1 else 0
  in
  let last_completed = ref 0 in
  let resolve_loc = function
    | Trace.Root w ->
      Some (Layout.stack_base + (8 * (w mod Trace.root_window_words)))
    | Trace.Field (id, w) -> (
      match Hashtbl.find_opt addr_of id with
      | Some (addr, size) when size >= 8 -> Some (addr + (8 * (w mod (size / 8))))
      | Some _ | None -> None)
  in
  let writable slot =
    Vmem.is_mapped mem slot
    && Vmem.is_committed mem slot
    && Vmem.protection mem slot = Vmem.Read_write
  in
  (* Every pointer-typed write flows through here: memory and ground
     truth stay in lock-step. *)
  let pointer_write slot value =
    Vmem.store mem slot value;
    Registry.record_write registry ~slot ~value
  in
  let poll op_index =
    (* Release detection: quarantine membership dropped => the backend
       recycled the entry during this op. *)
    let released =
      Hashtbl.fold
        (fun addr tr acc ->
          if Instance.is_quarantined ms addr then acc else (addr, tr) :: acc)
        quarantined []
    in
    List.iter
      (fun (addr, (tr : tracked)) ->
        Hashtbl.remove quarantined addr;
        let n = Registry.in_pointer_count registry ~base:addr in
        if n > 0 then begin
          unsound_ids := tr.id :: !unsound_ids;
          soundness :=
            Diagnostic.make ~rule:"oracle-unsound" ~severity:Diagnostic.Error
              ~op_index
              (Printf.sprintf
                 "id %d (addr %#x) recycled while %d live pointer(s) to it \
                  exist"
                 tr.id addr n)
            :: !soundness
        end)
      released;
    let c = completed_sweeps () in
    if c > !last_completed then begin
      let prev = !last_completed in
      last_completed := c;
      Hashtbl.iter
        (fun addr (tr : tracked) ->
          if Registry.in_pointer_count registry ~base:addr = 0 then begin
            tr.clean_sweeps <-
              tr.clean_sweeps + max 0 (c - max prev tr.eligible_from);
            if tr.clean_sweeps >= latency_sweeps && not tr.reported then begin
              tr.reported <- true;
              retained_ids := tr.id :: !retained_ids;
              precision :=
                Diagnostic.make ~rule:"oracle-retention"
                  ~severity:Diagnostic.Warning ~op_index
                  (Printf.sprintf
                     "id %d (addr %#x) still quarantined after %d consecutive \
                      sweeps with no live pointers (conservative retention)"
                     tr.id addr tr.clean_sweeps)
                :: !precision
            end
          end
          else tr.clean_sweeps <- 0)
        quarantined
    end
  in
  Array.iteri
    (fun op_index op ->
      (match op with
      | Trace.Alloc { id; size; site = _ } ->
        let addr = Instance.malloc ms size in
        incr allocs;
        (* The backend zeroes fresh memory; any registry slots recorded
           inside this range belong to a dead incarnation. *)
        Registry.drop_slots_in registry ~base:addr
          ~usable:(Alloc.Jemalloc.usable_size je addr)
          (fun ~slot:_ ~target:_ -> ());
        Hashtbl.replace addr_of id (addr, size);
        Instance.tick ms
      | Trace.Free { id; thread = _ } -> (
        match Hashtbl.find_opt addr_of id with
        | Some (addr, _) ->
          Hashtbl.remove addr_of id;
          incr frees;
          (* Zeroing destroys pointers stored inside the freed object:
             the ground truth must forget them too. *)
          if config.Minesweeper.Config.zeroing then
            Registry.drop_slots_in registry ~base:addr
              ~usable:(Alloc.Jemalloc.usable_size je addr)
              (fun ~slot:_ ~target:_ -> ());
          Instance.free ms addr;
          if Instance.is_quarantined ms addr then
            Hashtbl.replace quarantined addr
              {
                id;
                eligible_from =
                  completed_sweeps ()
                  + (if Instance.sweep_in_progress ms then 1 else 0);
                clean_sweeps = 0;
                reported = false;
              }
        | None -> ())
      | Trace.Store_ptr { loc; target } -> (
        match (resolve_loc loc, Hashtbl.find_opt addr_of target) with
        | Some slot, Some (taddr, _) when writable slot ->
          pointer_write slot taddr
        | _ -> ())
      | Trace.Clear_ptr { loc; target } -> (
        match (resolve_loc loc, Hashtbl.find_opt addr_of target) with
        | Some slot, Some (taddr, _) when writable slot ->
          if Vmem.load mem slot = taddr then pointer_write slot 0
        | _ -> ())
      | Trace.Store_data { loc; value } -> (
        match resolve_loc loc with
        | Some slot when writable slot ->
          let concrete =
            if value >= 0 then value
            else
              match Hashtbl.find_opt addr_of (-value - 1) with
              | Some (addr, _) -> addr
              | None -> 0
          in
          Vmem.store mem slot concrete;
          (* Not a pointer: overwrite any tracked pointer in the slot but
             record nothing — this is exactly the coverage gap between
             ground truth and the conservative sweep. *)
          Registry.forget_slot registry ~slot
        | _ -> ())
      | Trace.Work cycles -> Alloc.Machine.charge machine cycles);
      poll op_index)
    trace.Trace.ops;
  Instance.drain ms;
  poll (Array.length trace.Trace.ops);
  {
    trace_name = trace.Trace.name;
    ops = Array.length trace.Trace.ops;
    allocs = !allocs;
    frees = !frees;
    releases = (stats ()).Minesweeper.Stats.releases;
    sweeps = completed_sweeps ();
    soundness = List.rev !soundness;
    precision = List.rev !precision;
    audit = !audit_findings;
    unsound_ids = List.sort_uniq compare !unsound_ids;
    retained_ids = List.sort_uniq compare !retained_ids;
  }

let certify_static ~predicted_unsound ~predicted_retained r =
  let missing predicted ids = List.filter (fun id -> not (List.mem id predicted)) ids in
  let diag kind id =
    Diagnostic.make ~rule:"static-miss" ~severity:Diagnostic.Error
      (Printf.sprintf
         "dynamic %s finding for id %d was not predicted by the static \
          analyzer (static false negative)"
         kind id)
  in
  List.map (diag "oracle-unsound") (missing predicted_unsound r.unsound_ids)
  @ List.map (diag "oracle-retention") (missing predicted_retained r.retained_ids)
  |> Diagnostic.sort
