(* Differential UAF oracle for the analysis-driven pooled backend.

   The pooled allocator has no quarantine and no sweeps: its safety
   argument is entirely static ("this pool may recycle because no site
   in it is ever dangling-exposed"). This oracle replays a trace
   against the backend while maintaining the same instrumented-pointer
   ground truth the sweep oracle uses, and flags every *unsound
   recycle*: a malloc that returns a previously-freed base while the
   registry still records live pointers into it. A plan derived from
   the siteflow analysis must produce zero such events; any hit is a
   static false negative.

   Unlike the sweep oracle, a free here never drops registry records:
   the pooled backend does not zero on free, so pointers stored inside
   a freed-but-not-reused object physically persist. Records die only
   when their memory is re-served (malloc zeroes) or overwritten. *)

module Poolalloc = Alloc.Poolalloc
module Registry = Ptrtrack.Registry
module Trace = Workloads.Trace

type report = {
  trace_name : string;
  ops : int;
  allocs : int;
  frees : int;
  recycled : int;  (** mallocs served from a previously-freed base *)
  footprint_bytes : int;
  retired_bytes : int;
  soundness : Diagnostic.t list;
  unsound_ids : int list;
  pool_stats : Poolalloc.pool_stats array;
}

let run ?plan (trace : Trace.t) =
  let plan =
    match plan with
    | Some p -> p
    | None -> Poolalloc.identity_plan ~sites:trace.Trace.sites
  in
  let machine = Alloc.Machine.create () in
  let mem = machine.Alloc.Machine.mem in
  List.iter
    (fun (base, size) -> Vmem.map mem ~addr:base ~len:size)
    Layout.root_regions;
  let pa = Poolalloc.create ~plan machine in
  let registry =
    Registry.create_with ~resolve:(fun value ->
        Poolalloc.allocation_containing pa value)
  in
  let addr_of = Hashtbl.create 4096 in
  (* base -> id of the last occupant freed there *)
  let freed_bases : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let soundness = ref [] in
  let unsound_ids = ref [] in
  let allocs = ref 0 in
  let frees = ref 0 in
  let recycled = ref 0 in
  let resolve_loc = function
    | Trace.Root w ->
      Some (Layout.stack_base + (8 * (w mod Trace.root_window_words)))
    | Trace.Field (id, w) -> (
      match Hashtbl.find_opt addr_of id with
      | Some (addr, size) when size >= 8 ->
        Some (addr + (8 * (w mod (size / 8))))
      | Some _ | None -> None)
  in
  let writable slot =
    Vmem.is_mapped mem slot
    && Vmem.is_committed mem slot
    && Vmem.protection mem slot = Vmem.Read_write
  in
  let pointer_write slot value =
    Vmem.store mem slot value;
    Registry.record_write registry ~slot ~value
  in
  Array.iteri
    (fun op_index op ->
      match op with
      | Trace.Alloc { id; size; site } ->
        let addr = Poolalloc.malloc_site pa ~site size in
        incr allocs;
        (match Hashtbl.find_opt freed_bases addr with
        | Some prev_id ->
          incr recycled;
          Hashtbl.remove freed_bases addr;
          let n = Registry.in_pointer_count registry ~base:addr in
          if n > 0 then begin
            unsound_ids := prev_id :: !unsound_ids;
            soundness :=
              Diagnostic.make ~rule:"oracle-unsound"
                ~severity:Diagnostic.Error ~op_index
                (Printf.sprintf
                   "pool %s recycled id %d's slot (addr %#x) for id %d \
                    while %d live pointer(s) to the old object exist"
                   (match Poolalloc.pool_of_addr pa addr with
                   | Some p -> string_of_int p
                   | None -> "?")
                   prev_id addr id n)
              :: !soundness
          end
        | None -> ());
        (* Malloc zeroes the slot: any surviving records inside it
           belong to the dead incarnation. *)
        Registry.drop_slots_in registry ~base:addr
          ~usable:(Poolalloc.usable_size pa addr)
          (fun ~slot:_ ~target:_ -> ());
        Hashtbl.replace addr_of id (addr, size)
      | Trace.Free { id; thread = _ } -> (
        match Hashtbl.find_opt addr_of id with
        | Some (addr, _) ->
          Hashtbl.remove addr_of id;
          incr frees;
          (* No zeroing on free: registry records inside the object
             persist until the memory is re-served. *)
          Poolalloc.free pa addr;
          Hashtbl.replace freed_bases addr id
        | None -> ())
      | Trace.Store_ptr { loc; target } -> (
        match (resolve_loc loc, Hashtbl.find_opt addr_of target) with
        | Some slot, Some (taddr, _) when writable slot ->
          pointer_write slot taddr
        | _ -> ())
      | Trace.Clear_ptr { loc; target } -> (
        match (resolve_loc loc, Hashtbl.find_opt addr_of target) with
        | Some slot, Some (taddr, _) when writable slot ->
          if Vmem.load mem slot = taddr then pointer_write slot 0
        | _ -> ())
      | Trace.Store_data { loc; value } -> (
        match resolve_loc loc with
        | Some slot when writable slot ->
          let concrete =
            if value >= 0 then value
            else
              match Hashtbl.find_opt addr_of (-value - 1) with
              | Some (addr, _) -> addr
              | None -> 0
          in
          Vmem.store mem slot concrete;
          Registry.forget_slot registry ~slot
        | _ -> ())
      | Trace.Work cycles -> Alloc.Machine.charge machine cycles)
    trace.Trace.ops;
  {
    trace_name = trace.Trace.name;
    ops = Array.length trace.Trace.ops;
    allocs = !allocs;
    frees = !frees;
    recycled = !recycled;
    footprint_bytes = Poolalloc.footprint_bytes pa;
    retired_bytes = Poolalloc.retired_bytes pa;
    soundness = List.rev !soundness;
    unsound_ids = List.sort_uniq compare !unsound_ids;
    pool_stats = Poolalloc.pool_stats pa;
  }

let certify r =
  List.map
    (fun id ->
      Diagnostic.make ~rule:"static-miss" ~severity:Diagnostic.Error
        (Printf.sprintf
           "unsound recycle of id %d under an analysis-derived plan: the \
            siteflow pass failed to expose the site (static false \
            negative)"
           id))
    r.unsound_ids
  |> Diagnostic.sort
