module Trace = Workloads.Trace

let rules =
  [
    ("double-free", "free of an id that was already freed");
    ("free-unallocated", "free of an id that was never allocated");
    ("duplicate-alloc", "alloc reusing an id seen before");
    ("store-after-free", "store through a field of a freed holder");
    ("store-unallocated", "store through a field of a never-allocated holder");
    ("dangling-target", "pointer store whose target is dead at store time");
    ( "unclear-before-free",
      "pointer to the freed object survives the free (Section 3.2 \
       dangling-pointer precondition)" );
    ( "field-out-of-range",
      "word index beyond the holder (or root window); the replay wraps it" );
    ( "free-thread-out-of-range",
      "free issued from a thread id outside the trace's declared thread \
       count; the quarantine silently aliases it to buffer 0" );
    ( "alloc-site-out-of-range",
      "allocation attributed to a site id outside the trace's declared \
       site count; replay and the siteflow analysis alias it to site 0" );
  ]

type id_state =
  | Live of { size : int; at : int }
  | Freed of { at : int }

(* Normalised slot key. Raw Field/Root indices wrap at replay time, so
   two syntactically different locations can alias the same word; the
   abstract state must key on the post-wrap location. *)
type slot =
  | Root_slot of int
  | Field_slot of int * int

let slot_to_string = function
  | Root_slot w -> Printf.sprintf "root[%d]" w
  | Field_slot (id, w) -> Printf.sprintf "id %d word %d" id w

type state = {
  ids : (int, id_state) Hashtbl.t;
  (* slot -> (target id, op index of the store) *)
  contents : (slot, int * int) Hashtbl.t;
  (* target id -> set of slots holding a pointer to it *)
  holders : (int, (slot, unit) Hashtbl.t) Hashtbl.t;
  (* holder id -> set of Field slots tracked inside it *)
  fields : (int, (slot, unit) Hashtbl.t) Hashtbl.t;
  mutable diags : Diagnostic.t list;
}

let report st ~rule ~severity ~op_index message =
  st.diags <- Diagnostic.make ~rule ~severity ~op_index message :: st.diags

let set_add table key slot =
  let set =
    match Hashtbl.find_opt table key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace table key s;
      s
  in
  Hashtbl.replace set slot ()

let set_remove table key slot =
  match Hashtbl.find_opt table key with
  | None -> ()
  | Some s ->
    Hashtbl.remove s slot;
    if Hashtbl.length s = 0 then Hashtbl.remove table key

let clear_slot st slot =
  match Hashtbl.find_opt st.contents slot with
  | None -> ()
  | Some (target, _) ->
    Hashtbl.remove st.contents slot;
    set_remove st.holders target slot;
    (match slot with
    | Field_slot (holder, _) -> set_remove st.fields holder slot
    | Root_slot _ -> ())

let set_slot st slot target ~op_index =
  clear_slot st slot;
  Hashtbl.replace st.contents slot (target, op_index);
  set_add st.holders target slot;
  match slot with
  | Field_slot (holder, _) -> set_add st.fields holder slot
  | Root_slot _ -> ()

(* Resolve a location the way the replay will, reporting wraps and (for
   the given op kinds) dead holders. Returns [None] when the replay
   would skip the op entirely. *)
let resolve st ~op_index ~what ~report_dead_holder = function
  | Trace.Root w ->
    if w < 0 || w >= Trace.root_window_words then
      report st ~rule:"field-out-of-range" ~severity:Diagnostic.Warning
        ~op_index
        (Printf.sprintf
           "%s root index %d is outside the %d-word root window (replay wraps \
            to %d)"
           what w Trace.root_window_words
           (((w mod Trace.root_window_words) + Trace.root_window_words)
           mod Trace.root_window_words));
    Some
      (Root_slot
         (((w mod Trace.root_window_words) + Trace.root_window_words)
         mod Trace.root_window_words))
  | Trace.Field (holder, w) -> (
    match Hashtbl.find_opt st.ids holder with
    | None ->
      if report_dead_holder then
        report st ~rule:"store-unallocated" ~severity:Diagnostic.Error
          ~op_index
          (Printf.sprintf "%s through field of id %d which was never allocated"
             what holder);
      None
    | Some (Freed { at }) ->
      if report_dead_holder then
        report st ~rule:"store-after-free" ~severity:Diagnostic.Error ~op_index
          (Printf.sprintf
             "%s through field of id %d which was freed at op %d — a \
              use-after-free write"
             what holder at);
      None
    | Some (Live { size; _ }) ->
      let words = size / 8 in
      if words = 0 then begin
        report st ~rule:"field-out-of-range" ~severity:Diagnostic.Warning
          ~op_index
          (Printf.sprintf
             "%s into id %d of size %d, which has no addressable words \
              (replay skips it)"
             what holder size);
        None
      end
      else begin
        if w < 0 || w >= words then
          report st ~rule:"field-out-of-range" ~severity:Diagnostic.Warning
            ~op_index
            (Printf.sprintf
               "%s word %d of id %d which has only %d words (replay wraps to \
                %d)"
               what w holder words (((w mod words) + words) mod words));
        Some (Field_slot (holder, ((w mod words) + words) mod words))
      end)

let lint (trace : Trace.t) =
  let st =
    {
      ids = Hashtbl.create 4096;
      contents = Hashtbl.create 4096;
      holders = Hashtbl.create 4096;
      fields = Hashtbl.create 4096;
      diags = [];
    }
  in
  Array.iteri
    (fun op_index op ->
      match op with
      | Trace.Alloc { id; size; site } ->
        if site < 0 || site >= trace.Trace.sites then
          report st ~rule:"alloc-site-out-of-range"
            ~severity:Diagnostic.Warning ~op_index
            (Printf.sprintf
               "alloc of id %d at site %d, but the trace declares %d \
                site%s — replay and siteflow alias it to site 0, merging \
                its lifetime into the wrong pool"
               id site trace.Trace.sites
               (if trace.Trace.sites = 1 then "" else "s"));
        (match Hashtbl.find_opt st.ids id with
        | Some (Live { at; _ }) ->
          report st ~rule:"duplicate-alloc" ~severity:Diagnostic.Error
            ~op_index
            (Printf.sprintf "id %d is still live (allocated at op %d)" id at)
        | Some (Freed { at }) ->
          report st ~rule:"duplicate-alloc" ~severity:Diagnostic.Error
            ~op_index
            (Printf.sprintf "id %d was already used (freed at op %d)" id at)
        | None -> ());
        Hashtbl.replace st.ids id (Live { size; at = op_index })
      | Trace.Free { id; thread } -> (
        if thread < 0 || thread >= trace.Trace.threads then
          report st ~rule:"free-thread-out-of-range"
            ~severity:Diagnostic.Warning ~op_index
            (Printf.sprintf
               "free of id %d from thread %d, but the trace declares %d \
                thread%s — the quarantine aliases it to buffer 0, silently \
                serialising the push"
               id thread trace.Trace.threads
               (if trace.Trace.threads = 1 then "" else "s"));
        match Hashtbl.find_opt st.ids id with
        | None ->
          report st ~rule:"free-unallocated" ~severity:Diagnostic.Error
            ~op_index
            (Printf.sprintf "free of id %d which was never allocated" id)
        | Some (Freed { at }) ->
          report st ~rule:"double-free" ~severity:Diagnostic.Error ~op_index
            (Printf.sprintf "id %d was already freed at op %d" id at)
        | Some (Live _) ->
          (* The paper's precondition: report every slot outside the
             dying object that still holds its address. *)
          let dangling =
            match Hashtbl.find_opt st.holders id with
            | None -> []
            | Some set ->
              Hashtbl.fold
                (fun slot () acc ->
                  match slot with
                  | Field_slot (h, _) when h = id -> acc
                  | _ -> (
                    match Hashtbl.find_opt st.contents slot with
                    | Some (_, stored_at) -> (slot, stored_at) :: acc
                    | None -> acc))
                set []
              |> List.sort compare
          in
          List.iter
            (fun (slot, stored_at) ->
              report st ~rule:"unclear-before-free"
                ~severity:Diagnostic.Warning ~op_index
                (Printf.sprintf
                   "id %d freed while %s still holds a pointer to it (stored \
                    at op %d, never cleared)"
                   id (slot_to_string slot) stored_at))
            dangling;
          Hashtbl.replace st.ids id (Freed { at = op_index });
          (* Slots inside the freed object die with it (the replay's
             zeroing destroys their contents). *)
          (match Hashtbl.find_opt st.fields id with
          | None -> ()
          | Some set ->
            let victims = Hashtbl.fold (fun s () acc -> s :: acc) set [] in
            List.iter (clear_slot st) victims))
      | Trace.Store_ptr { loc; target } -> (
        match
          resolve st ~op_index ~what:"pointer store" ~report_dead_holder:true
            loc
        with
        | None -> ()
        | Some slot -> (
          match Hashtbl.find_opt st.ids target with
          | None ->
            report st ~rule:"dangling-target" ~severity:Diagnostic.Warning
              ~op_index
              (Printf.sprintf
                 "pointer store of id %d which was never allocated (replay \
                  skips it)"
                 target)
          | Some (Freed { at }) ->
            report st ~rule:"dangling-target" ~severity:Diagnostic.Warning
              ~op_index
              (Printf.sprintf
                 "pointer store of id %d which was freed at op %d (replay \
                  skips it)"
                 target at)
          | Some (Live _) -> set_slot st slot target ~op_index))
      | Trace.Clear_ptr { loc; target } -> (
        (* Guarded no-op by definition: never a diagnostic beyond index
           wrapping, but the abstract state must honour a clear that the
           replay would perform. *)
        match
          resolve st ~op_index ~what:"pointer clear" ~report_dead_holder:false
            loc
        with
        | None -> ()
        | Some slot -> (
          match (Hashtbl.find_opt st.ids target, Hashtbl.find_opt st.contents slot) with
          | Some (Live _), Some (held, _) when held = target ->
            clear_slot st slot
          | _ -> ()))
      | Trace.Store_data { loc; value = _ } -> (
        match
          resolve st ~op_index ~what:"data store" ~report_dead_holder:true loc
        with
        | None -> ()
        | Some slot -> clear_slot st slot)
      | Trace.Work _ -> ())
    trace.Trace.ops;
  List.rev st.diags
