(** Seeded known-bad traces for exercising {!Trace_lint}.

    Each case is a tiny hand-written trace (kept in the v1 text format,
    so loading the corpus also exercises {!Workloads.Trace.of_string})
    together with the exact set of rule ids the lint must raise on it —
    no more, no fewer. The CLI's [check --corpus] self-test and the test
    suite both replay this corpus.

    {!well_behaved} provides the negative control: generated traces from
    the mimalloc-bench profiles, whose generator never produces a
    dangling pointer, double free, or out-of-range index — the lint must
    stay silent on all of them. *)

type case = {
  name : string;
  trace : Workloads.Trace.t;
  expected_rules : string list;  (** sorted, duplicate-free *)
}

val cases : case list
(** Every lint rule in {!Trace_lint.rules} is the expectation of at
    least one case. *)

val well_behaved :
  ?seeds:int list -> ?scale:float -> unit -> Workloads.Trace.t list
(** Stock mimalloc-bench traces (default seeds [[1; 2]], op counts
    scaled by [scale], default [0.05]) on which the lint must produce
    zero diagnostics. *)
