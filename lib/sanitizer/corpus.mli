(** Seeded known-bad traces for exercising {!Trace_lint}.

    Each case is a tiny hand-written trace (kept in the v1 text format,
    so loading the corpus also exercises {!Workloads.Trace.of_string})
    together with the exact set of rule ids the lint must raise on it —
    no more, no fewer. The CLI's [check --corpus] self-test and the test
    suite both replay this corpus.

    {!well_behaved} provides the negative control: generated traces from
    the mimalloc-bench profiles, whose generator never produces a
    dangling pointer, double free, or out-of-range index — the lint must
    stay silent on all of them. *)

type case = {
  name : string;
  trace : Workloads.Trace.t;
  expected_rules : string list;  (** sorted, duplicate-free *)
}

val cases : case list
(** Every lint rule in {!Trace_lint.rules} is the expectation of at
    least one case. *)

val well_behaved :
  ?seeds:int list -> ?scale:float -> unit -> Workloads.Trace.t list
(** Stock mimalloc-bench traces (default seeds [[1; 2]], op counts
    scaled by [scale], default [0.05]) on which the lint must produce
    zero diagnostics. *)

(** {1 Protocol mutants}

    Known-bad variants of the sweep protocol itself, described
    declaratively so this library needs no dependency on the race
    checker: {!Racecheck.Protocol} interprets each mutation when
    emulating a sweep's synchronization-event stream, and the
    happens-before analysis must raise exactly the expected rules.
    [check --races --corpus] and the test suite replay all of them. *)

type protocol_mutation =
  | Skip_stw_fence
      (** Mostly-concurrent mode without the stop-the-world re-scan: a
          pointer hidden by a mutator write during marking is missed. *)
  | Release_before_mark_done
      (** An entry is released while the background mark is still
          running — its proof of unreachability does not exist yet. *)
  | Lose_requeued_entry
      (** A blocked entry is dropped instead of requeued: it never
          reaches a later sweep and leaks out of the protocol. *)
  | Reorder_stage_boundaries
      (** The pipelined sweep opens its Release stage while the Mark
          stage is still running: stage boundaries appear out of the
          canonical mark → merge → release → purge order. *)

type protocol_mutant = {
  mutant_name : string;
  mutation : protocol_mutation;
  expected_race_rules : string list;  (** sorted, duplicate-free *)
}

val protocol_mutants : protocol_mutant list
