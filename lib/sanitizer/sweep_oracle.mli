(** Differential soundness/precision oracle for MineSweeper's sweep.

    Replays a trace against a MineSweeper instance while maintaining, on
    the side, the ground-truth pointer graph in a
    {!Ptrtrack.Registry.t}: every pointer store and clear the replay
    performs is recorded exactly (data stores are not — an integer that
    merely aliases an address is {e not} a pointer, which is precisely
    the information MineSweeper's conservative sweep lacks).

    Against that ground truth the oracle checks the paper's Section 3.2
    invariant from the outside:

    - {b soundness} ([oracle-unsound], error): a quarantined allocation
      was recycled by the backend while the registry still records a
      live pointer to it. MineSweeper must never do this — the sweep is
      conservative, so every real pointer is also a marked word.
    - {b precision/latency} ([oracle-retention], warning): an allocation
      stayed quarantined for [latency_sweeps] consecutive completed
      sweeps that locked it in although the registry records no pointer
      to it (a sweep already in flight when the entry was freed fixed
      its lock-in set earlier, never observed the entry, and is not
      counted) — memory
      held hostage by unlucky integers or shadow-granule aliasing, the
      conservatism cost the paper accepts but a regression here should
      not grow silently.

    With [audit] set, {!Invariants.audit} also runs after every
    completed sweep and its findings are folded into the report. *)

type report = {
  trace_name : string;
  ops : int;
  allocs : int;
  frees : int;
  releases : int;  (** allocations the backend recycled *)
  sweeps : int;  (** sweeps completed during the replay *)
  soundness : Diagnostic.t list;
  precision : Diagnostic.t list;
  audit : Diagnostic.t list;
  unsound_ids : int list;
      (** trace ids behind [oracle-unsound] findings, sorted, deduped *)
  retained_ids : int list;
      (** trace ids behind [oracle-retention] findings, sorted, deduped *)
}

val run :
  ?config:Minesweeper.Config.t ->
  ?latency_sweeps:int ->
  ?audit:bool ->
  Workloads.Trace.t ->
  report
(** Replay under the given configuration (default
    {!Minesweeper.Config.default}; [latency_sweeps] defaults to 3,
    [audit] to [true]). *)

val findings : report -> Diagnostic.t list
(** All diagnostics of a report: soundness, then precision, then audit. *)

val certify_static :
  predicted_unsound:int list ->
  predicted_retained:int list ->
  report ->
  Diagnostic.t list
(** Cross-check a dynamic oracle report against a static analyzer's
    predictions (plain id lists, so the static side need not live in
    this library). The static analysis is only useful if it is a sound
    over-approximation: every dynamic [oracle-unsound] id must appear in
    [predicted_unsound] and every [oracle-retention] id in
    [predicted_retained]. Each miss yields a [static-miss] error — an
    empty result certifies zero static false negatives on this trace. *)
