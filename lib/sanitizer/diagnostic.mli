(** Structured findings shared by the sanitizer's passes.

    Every lint rule, invariant audit and oracle check reports through
    this one shape so callers (CLI, tests, CI gate) can filter, count
    and render findings uniformly. *)

type severity =
  | Error  (** the trace/stack is ill-formed — would be UB as a C program *)
  | Warning  (** legal but suspicious — e.g. the paper's UAF precondition *)

type t = {
  rule : string;  (** stable rule id, e.g. ["double-free"] *)
  severity : severity;
  op_index : int;  (** 0-based index into the trace's op array; -1 when
                       the finding is not tied to a trace position *)
  message : string;
}

val make : rule:string -> severity:severity -> ?op_index:int -> string -> t

val severity_to_string : severity -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val errors : t list -> t list
val warnings : t list -> t list

val count_by_rule : t list -> (string * int) list
(** Rule ids with their occurrence counts, sorted by rule id. *)

val has_rule : string -> t list -> bool

val sort : t list -> t list
(** Canonical report order: (rule, op index, message). Printing and
    exports sort through this so reports are byte-stable across runs
    and usable in cmp-based CI gates (the message embeds the address
    when a finding carries one, so equal-rule, equal-op findings still
    order deterministically). *)
