(** Differential UAF oracle for the analysis-driven pooled backend.

    The pooled allocator has no quarantine and no sweeps; its safety is
    a static claim about the pool plan. This oracle replays a trace
    against {!Alloc.Poolalloc} under a given plan while maintaining the
    instrumented-pointer ground truth ({!Ptrtrack.Registry}), and flags
    every {e unsound recycle}: a malloc served from a previously-freed
    base while live pointers into that base are still recorded.

    A plan produced by the siteflow analysis must yield zero unsound
    recycles on its own trace; {!certify} turns any survivor into a
    [static-miss] error, mirroring {!Sweep_oracle.certify_static}. *)

type report = {
  trace_name : string;
  ops : int;
  allocs : int;
  frees : int;
  recycled : int;  (** mallocs served from a previously-freed base *)
  footprint_bytes : int;
  retired_bytes : int;
  soundness : Diagnostic.t list;  (** one [oracle-unsound] per event *)
  unsound_ids : int list;  (** ids whose slot was unsoundly recycled *)
  pool_stats : Alloc.Poolalloc.pool_stats array;
      (** final per-pool telemetry, for bound certification *)
}

val run : ?plan:Alloc.Poolalloc.plan -> Workloads.Trace.t -> report
(** Replay under [plan] (default: one recycling pool per declared site,
    i.e. no analysis — useful as an unsafe baseline). *)

val certify : report -> Diagnostic.t list
(** Zero-unsound certification: every unsound recycle becomes a
    [static-miss] error; empty means the plan is certified on this
    trace. *)
