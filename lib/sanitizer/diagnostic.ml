type severity =
  | Error
  | Warning

type t = {
  rule : string;
  severity : severity;
  op_index : int;
  message : string;
}

let make ~rule ~severity ?(op_index = -1) message =
  { rule; severity; op_index; message }

let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string d =
  if d.op_index < 0 then
    Printf.sprintf "%s [%s]: %s" (severity_to_string d.severity) d.rule d.message
  else
    Printf.sprintf "op %d: %s [%s]: %s" d.op_index
      (severity_to_string d.severity)
      d.rule d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let count_by_rule ds =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace tbl d.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d.rule)))
    ds;
  Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let has_rule rule ds = List.exists (fun d -> d.rule = rule) ds

let sort ds =
  List.stable_sort
    (fun a b ->
      match compare a.rule b.rule with
      | 0 -> (
        match compare a.op_index b.op_index with
        | 0 -> compare a.message b.message
        | c -> c)
      | c -> c)
    ds
