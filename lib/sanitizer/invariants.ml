module Instance = Minesweeper.Instance
module Quarantine = Minesweeper.Quarantine
module Shadow = Minesweeper.Shadow

let page = Vmem.page_size

let finding ~rule fmt =
  Printf.ksprintf (fun m -> Diagnostic.make ~rule ~severity:Diagnostic.Error m) fmt

(* ------------------------------------------------------------------ *)
(* Extent map: alignment, containment, non-overlap, accounting.        *)

let check_extent je out =
  let extent = Alloc.Jemalloc.extent je in
  let wilderness = Alloc.Extent.wilderness extent in
  let prev_end = ref Layout.heap_base in
  let total = ref 0 in
  let dirty = ref 0 in
  Alloc.Extent.iter_retained extent (fun ~addr ~pages ~committed ->
      if addr mod page <> 0 then
        out (finding ~rule:"inv-extent" "retained extent %#x not page-aligned" addr);
      if pages <= 0 then
        out (finding ~rule:"inv-extent" "retained extent %#x has %d pages" addr pages);
      if addr < Layout.heap_base || addr + (pages * page) > wilderness then
        out
          (finding ~rule:"inv-extent"
             "retained extent %#x+%d pages outside [heap_base, wilderness)"
             addr pages);
      if addr < !prev_end then
        out
          (finding ~rule:"inv-extent"
             "retained extent %#x overlaps the previous one ending at %#x" addr
             !prev_end);
      prev_end := addr + (pages * page);
      total := !total + (pages * page);
      if committed then dirty := !dirty + (pages * page));
  if !total <> Alloc.Extent.retained_bytes extent then
    out
      (finding ~rule:"inv-extent"
         "retained_bytes counter %d <> sum over ranges %d"
         (Alloc.Extent.retained_bytes extent)
         !total);
  if !dirty <> Alloc.Extent.retained_dirty_bytes extent then
    out
      (finding ~rule:"inv-extent"
         "retained_dirty_bytes counter %d <> sum over committed ranges %d"
         (Alloc.Extent.retained_dirty_bytes extent)
         !dirty);
  (* Conservation: every byte below the heap break is either handed out
     or retained for reuse — the extent map loses nothing. *)
  let used = Alloc.Extent.heap_used_bytes extent in
  if used + !total <> wilderness - Layout.heap_base then
    out
      (finding ~rule:"inv-extent"
         "address-space conservation: used %d + retained %d <> wilderness - \
          heap_base = %d"
         used !total
         (wilderness - Layout.heap_base))

(* ------------------------------------------------------------------ *)
(* Size-class bins vs the allocator's live accounting.                 *)

let check_bins je out =
  let wilderness = Alloc.Jemalloc.wilderness je in
  let slab_bytes = ref 0 in
  Alloc.Jemalloc.iter_slabs je
    (fun ~base ~cls ~slots ~used ~free_slots ->
      let nfree = List.length free_slots in
      if used + nfree <> slots then
        out
          (finding ~rule:"inv-bin"
             "slab %#x (class %d): used %d + free %d <> slots %d" base cls used
             nfree slots);
      if used < 0 then
        out (finding ~rule:"inv-bin" "slab %#x: negative used count %d" base used);
      if base mod page <> 0 || base < Layout.heap_base || base >= wilderness
      then out (finding ~rule:"inv-bin" "slab %#x misplaced or misaligned" base);
      let seen = Hashtbl.create 16 in
      List.iter
        (fun slot ->
          if slot < 0 || slot >= slots then
            out
              (finding ~rule:"inv-bin" "slab %#x: free slot %d out of range"
                 base slot);
          if Hashtbl.mem seen slot then
            out
              (finding ~rule:"inv-bin" "slab %#x: free slot %d listed twice"
                 base slot);
          Hashtbl.replace seen slot ())
        free_slots;
      slab_bytes := !slab_bytes + (used * Alloc.Size_class.size_of_class cls));
  let cached_bytes = ref 0 in
  for cls = 0 to Alloc.Size_class.count - 1 do
    let count = Alloc.Jemalloc.tcache_count je cls in
    let items = Alloc.Jemalloc.tcache_items je cls in
    if count <> List.length items then
      out
        (finding ~rule:"inv-bin" "tcache class %d: count %d <> %d items" cls
           count (List.length items));
    cached_bytes := !cached_bytes + (count * Alloc.Size_class.size_of_class cls)
  done;
  let large_bytes = ref 0 in
  Alloc.Jemalloc.iter_large je (fun ~base ~pages ->
      if base mod page <> 0 || base < Layout.heap_base || base >= wilderness
      then
        out
          (finding ~rule:"inv-bin" "large allocation %#x misplaced or misaligned"
             base);
      large_bytes := !large_bytes + (pages * page));
  (* Slab slots handed out include thread-cached ones; those were
     already subtracted from live_bytes when they were freed. *)
  let recount = !slab_bytes - !cached_bytes + !large_bytes in
  if recount <> Alloc.Jemalloc.live_bytes je then
    out
      (finding ~rule:"inv-bin"
         "live_bytes counter %d <> recount %d (slabs %d - tcache %d + large %d)"
         (Alloc.Jemalloc.live_bytes je)
         recount !slab_bytes !cached_bytes !large_bytes)

(* ------------------------------------------------------------------ *)
(* Vmem state of extents and allocations.                              *)

let check_vmem je mem out =
  Alloc.Extent.iter_retained (Alloc.Jemalloc.extent je)
    (fun ~addr ~pages ~committed ->
      if not committed then
        for i = 0 to pages - 1 do
          let p = addr + (i * page) in
          if Vmem.is_committed mem p then
            out
              (finding ~rule:"inv-vmem"
                 "purged retained page %#x still committed" p)
          else if Vmem.protection mem p <> Vmem.No_access then
            out
              (finding ~rule:"inv-vmem"
                 "purged retained page %#x not protected No_access (extent \
                  hook missed it)"
                 p)
        done);
  Alloc.Jemalloc.iter_slabs je (fun ~base ~cls:_ ~slots:_ ~used:_ ~free_slots:_ ->
      if not (Vmem.is_mapped mem base) then
        out (finding ~rule:"inv-vmem" "slab %#x not mapped" base));
  Alloc.Jemalloc.iter_large je (fun ~base ~pages:_ ->
      if not (Vmem.is_mapped mem base) then
        out (finding ~rule:"inv-vmem" "large allocation %#x not mapped" base))

(* ------------------------------------------------------------------ *)
(* Quarantine accounting vs its entry lists.                           *)

let check_quarantine ms je q out =
  let fresh_mapped = ref 0 in
  let failed_total = ref 0 in
  let unmapped = ref 0 in
  let each_entry ~counted (e : Quarantine.entry) =
    if e.Quarantine.usable <= 0 then
      out
        (finding ~rule:"inv-quarantine" "entry %#x has usable %d"
           e.Quarantine.addr e.Quarantine.usable);
    if e.Quarantine.unmapped_len < 0 || e.Quarantine.unmapped_len > e.Quarantine.usable
    then
      out
        (finding ~rule:"inv-quarantine" "entry %#x: unmapped %d of usable %d"
           e.Quarantine.addr e.Quarantine.unmapped_len e.Quarantine.usable);
    if not (Layout.in_heap e.Quarantine.addr) then
      out
        (finding ~rule:"inv-quarantine" "entry %#x outside the heap"
           e.Quarantine.addr);
    if not (Quarantine.contains q e.Quarantine.addr) then
      out
        (finding ~rule:"inv-quarantine"
           "entry %#x missing from the dedup table (double frees would slip \
            through)"
           e.Quarantine.addr);
    if not (Alloc.Jemalloc.is_live je e.Quarantine.addr) then
      out
        (finding ~rule:"inv-quarantine"
           "entry %#x already recycled by the backend while quarantined"
           e.Quarantine.addr);
    if counted then
      unmapped := !unmapped + e.Quarantine.unmapped_len
  in
  Quarantine.iter_fresh q (fun e ->
      each_entry ~counted:true e;
      fresh_mapped := !fresh_mapped + (e.Quarantine.usable - e.Quarantine.unmapped_len));
  Quarantine.iter_failed q (fun e ->
      each_entry ~counted:true e;
      failed_total := !failed_total + (e.Quarantine.usable - e.Quarantine.unmapped_len));
  Quarantine.iter_buffered q (fun e -> each_entry ~counted:false e);
  if !fresh_mapped <> Quarantine.fresh_mapped_bytes q then
    out
      (finding ~rule:"inv-quarantine"
         "fresh_mapped_bytes counter %d <> sum over fresh entries %d"
         (Quarantine.fresh_mapped_bytes q)
         !fresh_mapped);
  if !failed_total <> Quarantine.failed_bytes q then
    out
      (finding ~rule:"inv-quarantine"
         "failed_bytes counter %d <> sum over failed entries %d"
         (Quarantine.failed_bytes q)
         !failed_total);
  if !unmapped <> Quarantine.unmapped_bytes q then
    out
      (finding ~rule:"inv-quarantine"
         "unmapped_bytes counter %d <> sum over entries %d"
         (Quarantine.unmapped_bytes q)
         !unmapped);
  ignore ms

(* ------------------------------------------------------------------ *)
(* Unmapped-in-quarantine page bookkeeping.                            *)

let check_unmapped ms mem q out =
  let pages_bytes = ref 0 in
  Instance.iter_unmapped_pages ms (fun addr ->
      pages_bytes := !pages_bytes + page;
      if not (Vmem.is_mapped mem addr) then
        out
          (finding ~rule:"inv-unmapped" "unmapped-quarantine page %#x not mapped"
             addr)
      else begin
        if Vmem.is_committed mem addr then
          out
            (finding ~rule:"inv-unmapped"
               "unmapped-quarantine page %#x still committed" addr);
        if Vmem.protection mem addr <> Vmem.No_access then
          out
            (finding ~rule:"inv-unmapped"
               "unmapped-quarantine page %#x accessible (use-after-free would \
                not fault)"
               addr)
      end);
  (* During a sweep, locked-in entries keep their pages in the table but
     out of the quarantine's counters; compare only at rest. *)
  if (not (Instance.sweep_in_progress ms)) && !pages_bytes <> Quarantine.unmapped_bytes q
  then
    out
      (finding ~rule:"inv-unmapped"
         "unmapped page table holds %d bytes but the quarantine accounts %d"
         !pages_bytes
         (Quarantine.unmapped_bytes q))

(* ------------------------------------------------------------------ *)
(* Shadow-map bookkeeping.                                             *)

let check_shadow ms je shadow out =
  let config = Instance.config ms in
  if Shadow.granule shadow <> config.Minesweeper.Config.shadow_granule then
    out
      (finding ~rule:"inv-shadow" "shadow granule %d <> configured %d"
         (Shadow.granule shadow)
         config.Minesweeper.Config.shadow_granule);
  let wilderness = Alloc.Jemalloc.wilderness je in
  let count = ref 0 in
  Shadow.iter_marked shadow (fun addr ->
      incr count;
      if not (Layout.in_heap addr) then
        out (finding ~rule:"inv-shadow" "mark at %#x outside the heap" addr)
      else if addr >= wilderness then
        out
          (finding ~rule:"inv-shadow" "mark at %#x beyond the wilderness %#x"
             addr wilderness));
  if !count <> Shadow.marked_granules shadow then
    out
      (finding ~rule:"inv-shadow" "marked_granules %d <> recount %d"
         (Shadow.marked_granules shadow)
         !count)

(* ------------------------------------------------------------------ *)
(* Incremental-sweep summary cache vs a from-scratch full mark.         *)

let check_summary ms out =
  let config = Instance.config ms in
  match Minesweeper.Config.sweep_mode config with
  | Minesweeper.Config.Full_scan -> ()
  | Minesweeper.Config.Incremental ->
    (* The whole point of the summary cache is that replaying it is
       indistinguishable from rescanning: the mark set the incremental
       strategy would build right now must equal the ground-truth full
       mark, granule for granule. Any divergence means an invalidation
       rule (store/zero/decommit/protect/remap) was missed. *)
    let full = Instance.reference_full_mark ms in
    let inc = Instance.reference_incremental_mark ms in
    Shadow.iter_marked full (fun addr ->
        if not (Shadow.is_marked inc addr) then
          out
            (finding ~rule:"inv-summary"
               "full mark at %#x missing from the incremental rebuild (stale \
                summary hides a dangling pointer)"
               addr));
    Shadow.iter_marked inc (fun addr ->
        if not (Shadow.is_marked full addr) then
          out
            (finding ~rule:"inv-summary"
               "incremental mark at %#x absent from the full mark (summary \
                replays a dead pointer)"
               addr));
    if Shadow.marked_granules full <> Shadow.marked_granules inc then
      out
        (finding ~rule:"inv-summary"
           "mark counts diverge: full %d vs incremental %d"
           (Shadow.marked_granules full)
           (Shadow.marked_granules inc))

(* ------------------------------------------------------------------ *)

let audit ms =
  let je = Instance.jemalloc ms in
  let machine = Instance.machine ms in
  let mem = machine.Alloc.Machine.mem in
  let q = Instance.quarantine ms in
  let shadow = Instance.shadow ms in
  let findings = ref [] in
  let out d = findings := d :: !findings in
  check_extent je out;
  check_bins je out;
  check_vmem je mem out;
  check_quarantine ms je q out;
  check_unmapped ms mem q out;
  check_shadow ms je shadow out;
  check_summary ms out;
  List.rev !findings

let attach ms f =
  Instance.set_post_sweep_hook ms (fun () ->
      match audit ms with [] -> () | findings -> f findings)
