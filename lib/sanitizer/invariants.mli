(** Cross-layer invariant audit over a live MineSweeper stack.

    Recomputes, from first principles and the raw structures, the
    aggregate accounting every layer publishes — and checks the
    structural invariants the sweep's correctness rests on. One
    {!Diagnostic.t} (severity [Error], [op_index = -1]) per violated
    invariant:

    - [inv-extent]: retained-extent map — page alignment, containment in
      [heap_base, wilderness), non-overlap in address order, and the
      retained/dirty byte counters vs the sum over ranges; plus
      address-space conservation (used + retained = wilderness − base).
    - [inv-bin]: size-class accounting — per-slab [used + free = slots],
      free-slot uniqueness and range, thread-cache counts, and the
      allocator's [live_bytes] vs a recount over slabs, caches and large
      allocations.
    - [inv-vmem]: purged retained extents must be decommitted and
      protected [No_access] (the Section 4.5 hook integration), and live
      slab/large bases must be mapped.
    - [inv-quarantine]: {!Minesweeper.Quarantine.fresh_mapped_bytes},
      [failed_bytes] and [unmapped_bytes] vs the sums over the actual
      entry lists; per-entry sanity (usable > 0, unmapped ≤ usable, in
      heap, present in the dedup table, still live in the backend).
    - [inv-unmapped]: every page recorded as unmapped-in-quarantine is
      decommitted and [No_access]; when no sweep is in flight, the page
      total matches the quarantine's unmapped byte count.
    - [inv-shadow]: every shadow mark lies in the heap below the
      wilderness, the granule matches the configuration, and the mark
      count agrees with a recount.
    - [inv-summary] (incremental sweep mode only): the mark set an
      incremental rebuild would produce right now — cached per-page
      pointer summaries replayed for clean pages, dirty pages rescanned —
      equals a from-scratch full mark of all readable memory, granule for
      granule. A miss in either direction means a summary-invalidation
      rule (store, zero, decommit, protection change, remap) was
      violated. *)

val audit : Minesweeper.Instance.t -> Diagnostic.t list
(** Run every check; empty list = all invariants hold. *)

val attach : Minesweeper.Instance.t -> (Diagnostic.t list -> unit) -> unit
(** [attach ms f] installs a post-sweep hook that audits the stack after
    every completed sweep and calls [f findings] when any invariant is
    violated — the debug-mode backstop for perf work on the sweep path. *)
