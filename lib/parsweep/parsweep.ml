type page = { base : int; bytes : Bytes.t; write_gen : int }
type chunk = { cid : int; pages : page array; chunk_bytes : int }

let default_chunk_pages = 32

let shard ?(chunk_pages = default_chunk_pages) pages =
  assert (chunk_pages > 0);
  let n = Array.length pages in
  let chunks = (n + chunk_pages - 1) / chunk_pages in
  Array.init chunks (fun cid ->
      let first = cid * chunk_pages in
      let len = min chunk_pages (n - first) in
      let pages = Array.sub pages first len in
      let chunk_bytes =
        Array.fold_left (fun acc p -> acc + Bytes.length p.bytes) 0 pages
      in
      { cid; pages; chunk_bytes })

type stats = {
  domains : int;
  chunks : int;
  total_bytes : int;
  stolen : int;
  seeded_bytes : int array;
}

let imbalance s =
  if Array.length s.seeded_bytes = 0 then 0
  else
    Array.fold_left max min_int s.seeded_bytes
    - Array.fold_left min max_int s.seeded_bytes

let map_chunks ~domains ~scan chunks =
  let n = Array.length chunks in
  let d = max 1 (min domains (max 1 n)) in
  let seeded_bytes = Array.make d 0 in
  Array.iter
    (fun c ->
      let owner = c.cid mod d in
      seeded_bytes.(owner) <- seeded_bytes.(owner) + c.chunk_bytes)
    chunks;
  let total_bytes = Array.fold_left (fun acc c -> acc + c.chunk_bytes) 0 chunks in
  let results = Array.make n None in
  let stolen = Atomic.make 0 in
  if d = 1 then
    Array.iter (fun c -> results.(c.cid) <- Some (scan c)) chunks
  else begin
    let deques = Array.init d (fun _ -> Deque.create ()) in
    (* Static round-robin seeding: chunk [i] starts on domain [i mod d].
       Deterministic, so the imbalance gauge, per-domain spans and cost
       projection don't depend on the host scheduler. *)
    Array.iter (fun c -> Deque.push deques.(c.cid mod d) c) chunks;
    let worker me =
      (* Results land in disjoint slots indexed by chunk id; the joins
         below publish them to the coordinator. No other shared state
         is written from here. *)
      let run c = results.(c.cid) <- Some (scan c) in
      let steal_one () =
        let rec go k =
          if k >= d then None
          else
            match Deque.steal deques.((me + k) mod d) with
            | Some c ->
              ignore (Atomic.fetch_and_add stolen 1);
              Some c
            | None -> go (k + 1)
        in
        go 1
      in
      let rec loop () =
        match Deque.pop deques.(me) with
        | Some c -> run c; loop ()
        | None -> (
          match steal_one () with
          | Some c -> run c; loop ()
          | None -> ())
      in
      loop ()
    in
    (* All chunks are seeded before any worker starts, so a worker may
       retire once every deque reads empty: nothing is pushed later. *)
    let pool = Array.init (d - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    worker 0;
    Array.iter Domain.join pool
  end;
  let per_chunk =
    Array.map (function Some r -> r | None -> assert false) results
  in
  ( per_chunk,
    { domains = d; chunks = n; total_bytes; stolen = Atomic.get stolen;
      seeded_bytes } )

(* Modeled finish time of a batched stage pipeline: stage [s] of batch
   [k] may start only when stage [s-1] of the same batch and stage [s]
   of the previous batch have both finished. Each stage's total cycles
   are split across batches with the remainder spread deterministically
   (integer prefix shares), so the projection is a pure function of the
   stage totals. One domain (or one batch) degenerates to the sequential
   sum — there is nobody to overlap with. *)
let pipeline_cycles ~domains ~batches stage_cycles =
  let stages = Array.length stage_cycles in
  let total = Array.fold_left ( + ) 0 stage_cycles in
  if stages = 0 then 0
  else if domains <= 1 || batches <= 1 then total
  else begin
    let b = batches in
    let share s k =
      let c = stage_cycles.(s) in
      (c * (k + 1) / b) - (c * k / b)
    in
    let finish = Array.make stages 0 in
    for k = 0 to b - 1 do
      for s = 0 to stages - 1 do
        let prev_stage = if s = 0 then 0 else finish.(s - 1) in
        finish.(s) <- max prev_stage finish.(s) + share s k
      done
    done;
    min total finish.(stages - 1)
  end

let critical_path_cycles ~single_per_byte ~bandwidth_per_byte stats =
  let slowest =
    Array.fold_left
      (fun acc b -> max acc (Sim.Cost.bytes_cost single_per_byte b))
      0 stats.seeded_bytes
  in
  max slowest (Sim.Cost.bytes_cost bandwidth_per_byte stats.total_bytes)

module Deque = Deque
