(** Work-stealing deque for mark-phase chunks.

    Owner domains push and pop at the bottom (LIFO, so a domain keeps
    working the address range it was seeded with, in cache order);
    thieves steal from the top (FIFO, so a steal takes the chunk the
    owner would have reached last). Work items are page chunks — tens
    to hundreds per sweep, each worth many microseconds of scanning —
    so contention on the per-deque mutex is irrelevant next to the scan
    itself and a lock-free Chase–Lev structure would buy nothing here. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner operation: append at the bottom. *)

val pop : 'a t -> 'a option
(** Owner operation: take the most recently pushed item (bottom). *)

val steal : 'a t -> 'a option
(** Thief operation: take the oldest item (top). Safe from any domain. *)

val length : 'a t -> int
(** Items currently queued (racy under concurrent use, exact when
    quiescent). *)
