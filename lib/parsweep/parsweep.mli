(** Parallel marking engine: domain-sharded page scans with a
    deterministic merge.

    The mark phase is embarrassingly parallel — every readable page can
    be scanned for quarantine hits independently — but MineSweeper's
    outputs (shadow set, counters, sweep decisions, telemetry exports)
    must not depend on how many domains did the scanning or on which
    domain happened to steal which chunk. This engine makes that a
    structural property rather than a testing hope:

    - The coordinator takes a canonical snapshot of the readable pages
      (sorted by base address, zero-copy) and slices it into fixed-size
      chunks of consecutive pages, numbered [0, 1, 2, ...].
    - Chunks are seeded round-robin into per-domain work-stealing
      deques ({!Deque}); idle domains steal from the top of their
      neighbours' deques.
    - Each domain runs a pure [scan] over the chunks it claims: it
      reads page bytes and writes a private result buffer slot indexed
      by chunk id. No shared mutable state is touched from workers —
      the only cross-domain writes are disjoint result slots and the
      steal counter.
    - After joining the pool, the {e coordinator alone} merges the
      per-chunk results in chunk-id order. Since each result is a pure
      function of its pages' bytes and the merge order is fixed, the
      merged outcome is bit-for-bit identical for any domain count and
      any steal schedule.

    The engine is policy-free: it does not know about shadow maps or
    summaries. The sweep pipeline's Mark stage ([Instance.Sweep.run])
    passes a [scan] that collects candidate quarantine hits in full-scan
    mode, or one that builds per-page pointer summaries for the pages
    classified for rescan in incremental mode. *)

type page = {
  base : int;  (** page base address *)
  bytes : Bytes.t;  (** live page frame (read-only; never copied) *)
  write_gen : int;  (** last-write scan generation (incremental mode) *)
}

type chunk = {
  cid : int;  (** dense chunk id: the canonical merge order *)
  pages : page array;  (** consecutive pages, ascending base *)
  chunk_bytes : int;  (** total payload bytes in [pages] *)
}

val default_chunk_pages : int
(** Pages per chunk (32 = 128 KiB of 4 KiB pages): small enough that
    stealing can rebalance a skewed address space, large enough that
    deque traffic is noise against the scan cost. *)

val shard : ?chunk_pages:int -> page array -> chunk array
(** Slice a base-sorted page snapshot into chunks of [chunk_pages]
    consecutive pages (last chunk may be short). Chunk ids number the
    slices in address order. *)

type stats = {
  domains : int;  (** pool size actually used *)
  chunks : int;  (** chunks sharded this run *)
  total_bytes : int;  (** payload bytes across all chunks *)
  stolen : int;
      (** chunks executed by a domain other than the one they were
          seeded into — observational (depends on the host scheduler),
          which is why it only ever feeds [par.*] telemetry *)
  seeded_bytes : int array;
      (** per-domain payload bytes under the static round-robin seeding
          — deterministic, the basis of the imbalance gauge, the
          per-domain spans and the cost projection *)
}

val imbalance : stats -> int
(** Max minus min of {!stats.seeded_bytes}: how unevenly the static
    seeding splits the address space (work stealing erases this at run
    time; the gauge records what there was to erase). *)

val map_chunks :
  domains:int -> scan:(chunk -> 'a) -> chunk array -> 'a array * stats
(** [map_chunks ~domains ~scan chunks] executes [scan] on every chunk
    across a pool of [domains] worker domains (the calling domain works
    too: [domains - 1] are spawned, then joined before returning) and
    returns the results indexed by chunk id, plus run statistics.
    [scan] must be pure up to its private result (it runs off the
    coordinator domain, concurrently with other chunks' scans).
    [domains <= 1] runs inline on the caller with no spawns. *)

val pipeline_cycles : domains:int -> batches:int -> int array -> int
(** [pipeline_cycles ~domains ~batches stage_cycles] is the modeled
    finish time of running the given per-stage cycle totals as a
    software pipeline over [batches] work batches: stage [s] of batch
    [k] starts when stage [s-1] of batch [k] and stage [s] of batch
    [k-1] are both done, so independent stages of different batches
    overlap. Stage totals are split across batches by deterministic
    integer prefix shares (they sum exactly). With [domains <= 1] or
    [batches <= 1] there is nothing to overlap with and the result is
    the sequential sum of [stage_cycles]; the result never exceeds that
    sum. A pure projection of the stage totals — like
    {!critical_path_cycles} it feeds telemetry only and never the
    simulated clock, so exports stay byte-identical across domain
    counts. *)

val critical_path_cycles :
  single_per_byte:float -> bandwidth_per_byte:float -> stats -> int
(** Modeled mark-phase critical path under the static seeding: the
    slowest domain's streaming cost
    [bytes_cost single_per_byte seeded_bytes.(d)] or the DRAM floor
    [bytes_cost bandwidth_per_byte total_bytes], whichever binds. A
    deterministic projection (it ignores the observed steal schedule),
    so it can be exported as a [par.*] metric without breaking export
    determinism; it is how the speedup figure measures scaling on a
    host with fewer cores than domains. *)

(** The work-stealing deque, re-exported for tests and tooling (the
    library is wrapped, so [Deque] is otherwise hidden). *)
module Deque = Deque
