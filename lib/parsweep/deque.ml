(* Mutex-guarded array deque. Slots [top, bottom) hold [Some] items;
   everything outside is [None] so popped chunks are collectable. *)

type 'a t = {
  lock : Mutex.t;
  mutable buf : 'a option array;
  mutable top : int;
  mutable bottom : int;
}

let create () =
  { lock = Mutex.create (); buf = Array.make 16 None; top = 0; bottom = 0 }

let ensure_room t =
  let cap = Array.length t.buf in
  if t.bottom = cap then begin
    let live = t.bottom - t.top in
    if 2 * live <= cap then begin
      (* More than half the array is dead slots: compact in place. *)
      Array.blit t.buf t.top t.buf 0 live;
      Array.fill t.buf live (cap - live) None
    end
    else begin
      let buf = Array.make (2 * cap) None in
      Array.blit t.buf t.top buf 0 live;
      t.buf <- buf
    end;
    t.top <- 0;
    t.bottom <- live
  end

let push t x =
  Mutex.lock t.lock;
  ensure_room t;
  t.buf.(t.bottom) <- Some x;
  t.bottom <- t.bottom + 1;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  let r =
    if t.bottom = t.top then None
    else begin
      t.bottom <- t.bottom - 1;
      let x = t.buf.(t.bottom) in
      t.buf.(t.bottom) <- None;
      x
    end
  in
  Mutex.unlock t.lock;
  r

let steal t =
  Mutex.lock t.lock;
  let r =
    if t.bottom = t.top then None
    else begin
      let x = t.buf.(t.top) in
      t.buf.(t.top) <- None;
      t.top <- t.top + 1;
      x
    end
  in
  Mutex.unlock t.lock;
  r

let length t =
  Mutex.lock t.lock;
  let n = t.bottom - t.top in
  Mutex.unlock t.lock;
  n
