(** Multi-tenant fleet simulation: N protected server instances on one
    simulated machine with a shared physical-page budget.

    The paper evaluates MineSweeper per process; deployment runs many
    protected processes on one box, where quarantine retention in one
    tenant inflates RSS pressure on all the others. This layer runs each
    tenant as a full stack — its own {!Alloc.Machine} (address space +
    clock), any {!Workloads.Harness.scheme} backend, driven by its own
    open-loop {!Workloads.Server} traffic stream — and couples them
    through three machine-level mechanisms:

    - a {e deterministic scheduler} (round-robin or weighted priority)
      that interleaves tenant steps, one served request per quantum;
    - {e interference propagation}: stall cycles (STW rescans,
      allocation pauses) and a bandwidth share of background sweep
      cycles incurred by one tenant are charged as stall inside every
      neighbour's next request window, so one tenant's sweep shows up in
      its neighbours' [srv.*] tail quantiles;
    - a {e shared physical budget}: the summed committed bytes of all
      tenant address spaces are held under [budget] by a reactive
      pressure policy — reclaim (forced sweep + purge) in a configurable
      cross-tenant order, then OOM-kill the largest tenant as the last
      resort — plus per-tenant quarantine budgets trimmed as they
      overrun.

    Everything is deterministic: tenant seeds derive from the fleet seed
    via {!Sim.Rng.split_seed}, scheduling and purge orders break ties on
    tenant index, and interference arithmetic is integer-only — two runs
    with the same inputs export byte-identical metrics. See DESIGN §15. *)

type scheduler =
  | Round_robin  (** one step per alive tenant, cyclic in spec order *)
  | Priority
      (** heaviest-weight tenants first, [weight] consecutive steps per
          quantum *)

type purge_order =
  | Largest_quarantine
      (** reclaim tenants holding the most quarantined bytes first —
          pressure goes where the reclaimable memory is *)
  | Round_robin_purge
      (** rotate a cursor so reclaim cost is spread evenly across
          tenants regardless of who caused the pressure *)

val scheduler_name : scheduler -> string
val scheduler_of_string : string -> scheduler option
val purge_order_name : purge_order -> string
val purge_order_of_string : string -> purge_order option

type tenant_spec = {
  tname : string;
  profile : Workloads.Server.profile;
  scheme : Workloads.Harness.scheme;
  weight : int;  (** consecutive steps per {!Priority} quantum, >= 1 *)
  quarantine_budget : int;
      (** bytes of quarantine this tenant may retain; exceeding it after
          a step forces an immediate reclaim. 0 = unlimited. *)
}

val tenant :
  ?weight:int ->
  ?quarantine_budget:int ->
  ?name:string ->
  Workloads.Server.profile ->
  Workloads.Harness.scheme ->
  tenant_spec
(** [name] defaults to the profile's name. *)

val default_budget : int
(** 192 MiB — comfortably holds five default-scale tenants while letting
    a leaking one build real pressure. *)

type config = {
  budget : int;  (** machine physical-page budget, bytes *)
  scheduler : scheduler;
  purge_order : purge_order;
  stall_share_pm : int;
      (** per-mille of a tenant's stall cycles charged to each
          neighbour (default 1000: an STW pause fences the shared
          machine) *)
  bg_share_pm : int;
      (** per-mille of background sweep cycles charged to each
          neighbour (default 250: marking saturates a share of DRAM
          bandwidth) *)
}

val config :
  ?budget:int ->
  ?scheduler:scheduler ->
  ?purge_order:purge_order ->
  ?stall_share_pm:int ->
  ?bg_share_pm:int ->
  unit ->
  config

type tenant_result = {
  name : string;
  scheme : string;
  server : Workloads.Server.result;
  injected_stall_cycles : int;
      (** neighbour interference this tenant absorbed *)
  reclaims : int;  (** times the pressure policy forced it to reclaim *)
  quarantine_trims : int;
      (** reclaims caused by its own quarantine budget *)
  killed : bool;  (** OOM-killed by the machine (budget unreclaimable) *)
}

type result = {
  budget : int;
  scheduler : scheduler;
  purge_order : purge_order;
  tenants : tenant_result list;
  steps : int;
  committed_peak : int;
      (** highest post-enforcement committed-bytes sum observed at a
          step boundary; never exceeds [budget] (OOM kill is the
          enforcement backstop) *)
  committed_peak_raw : int;
      (** highest within-step watermark, tracked by per-tenant
          {!Vmem.set_commit_observer} hooks — transient overshoot before
          enforcement runs is visible here *)
  overshoot : int;  (** [max 0 (committed_peak_raw - budget)] *)
  pressure_events : int;
  total_reclaims : int;
  oom_kills : int;
  agg_latency : Workloads.Server.quantiles;
      (** request latency across every tenant's requests (bucket-wise
          merged histograms) *)
  agg_stall : Workloads.Server.quantiles;
  agg_pause : Workloads.Server.quantiles;
      (** sweep-pause distribution across tenants (zeros when no tenant
          registers [ms.sweep_pause_cycles]) *)
  registry : Obs.Registry.t;
      (** the fleet registry: live [fleet.*] metrics, every tenant's
          registry merged under [fleet.t<i>.*], and the cross-tenant
          aggregation under [fleet.agg.*] — ready for
          {!Obs.Export.write_file} *)
}

(** The machine layer itself; {!run} below is the one-shot wrapper. *)
module Machine : sig
  type t

  val create : ?seed:int -> config -> tenant_spec list -> t
  (** Build every tenant stack (tenant [i]'s session seed is
      [Sim.Rng.split_seed ~seed ~index:i], default fleet seed 9100),
      install the interference feeds and per-tenant commit observers.
      Raises [Invalid_argument] on an empty tenant list. *)

  val committed_bytes : t -> int
  (** Current machine-wide resident set: summed committed bytes of every
      non-killed tenant address space. *)

  val registry : t -> Obs.Registry.t

  val run : t -> result
  (** Drive the fleet to completion (every tenant finished, OOMed or
      killed), then merge per-tenant registries into the fleet registry.
      Single-shot: a second call raises [Invalid_argument]. *)
end

val run : ?scale:float -> ?seed:int -> config -> tenant_spec list -> result
(** Scale every tenant profile by [scale] (default 1.0), then create and
    run a machine. *)

val run_repeats :
  ?scale:float ->
  ?seed:int ->
  repeats:int ->
  config ->
  tenant_spec list ->
  result list
(** Repeat [i > 0] reruns the fleet under
    [Sim.Rng.split_seed ~seed ~index:i] — independent arrival and
    workload streams per repeat, same convention as
    {!Workloads.Server.run_repeats}. *)

val noisy_neighbour :
  ?steady:int -> Workloads.Harness.scheme -> tenant_spec list
(** The acceptance scenario: one ["slow-leak"] tenant (["leaker"]) plus
    [steady] (default 4) well-behaved ["steady"] tenants, all on the
    given scheme. *)
