(* Multi-tenant fleet simulation: N server instances, one machine, one
   shared physical-page budget. See fleet.mli and DESIGN §15.

   Every tenant owns a full stack (its own Alloc.Machine, so its own
   address space and clock); the machine layer couples them three ways:

   - scheduling: tenant steps (one served request each) interleave in a
     deterministic order, so the fleet makes progress as one machine;
   - interference: stall cycles (STW rescans, allocation pauses) and a
     share of background cycles (sweep marking competing for DRAM
     bandwidth) that one tenant incurs are charged to every neighbour
     inside its next request's measurement window;
   - memory: the sum of committed bytes across tenant address spaces is
     held under a physical budget by a reclaim-then-kill pressure
     policy, exactly like the kernel's direct reclaim / OOM killer. *)

module R = Obs.Registry

type scheduler =
  | Round_robin
  | Priority

type purge_order =
  | Largest_quarantine
  | Round_robin_purge

let scheduler_name = function
  | Round_robin -> "round-robin"
  | Priority -> "priority"

let scheduler_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "priority" -> Some Priority
  | _ -> None

let purge_order_name = function
  | Largest_quarantine -> "largest-quarantine"
  | Round_robin_purge -> "round-robin"

let purge_order_of_string = function
  | "largest-quarantine" | "largest" -> Some Largest_quarantine
  | "round-robin" | "rr" -> Some Round_robin_purge
  | _ -> None

type tenant_spec = {
  tname : string;
  profile : Workloads.Server.profile;
  scheme : Workloads.Harness.scheme;
  weight : int;
  quarantine_budget : int;
}

let tenant ?(weight = 1) ?(quarantine_budget = 0) ?name profile scheme =
  {
    tname =
      (match name with
      | Some n -> n
      | None -> profile.Workloads.Server.name);
    profile;
    scheme;
    weight = max 1 weight;
    quarantine_budget = max 0 quarantine_budget;
  }

let default_budget = 192 * 1024 * 1024

type config = {
  budget : int;
  scheduler : scheduler;
  purge_order : purge_order;
  stall_share_pm : int;
  bg_share_pm : int;
}

let config ?(budget = default_budget) ?(scheduler = Round_robin)
    ?(purge_order = Largest_quarantine) ?(stall_share_pm = 1000)
    ?(bg_share_pm = 250) () =
  {
    budget = max 1 budget;
    scheduler;
    purge_order;
    stall_share_pm = max 0 stall_share_pm;
    bg_share_pm = max 0 bg_share_pm;
  }

type tenant_result = {
  name : string;
  scheme : string;
  server : Workloads.Server.result;
  injected_stall_cycles : int;
  reclaims : int;
  quarantine_trims : int;
  killed : bool;
}

type result = {
  budget : int;
  scheduler : scheduler;
  purge_order : purge_order;
  tenants : tenant_result list;
  steps : int;
  committed_peak : int;
  committed_peak_raw : int;
  overshoot : int;
  pressure_events : int;
  total_reclaims : int;
  oom_kills : int;
  agg_latency : Workloads.Server.quantiles;
  agg_stall : Workloads.Server.quantiles;
  agg_pause : Workloads.Server.quantiles;
  registry : R.t;
}

module Machine = struct
  type tenant = {
    spec : tenant_spec;
    index : int;
    machine : Alloc.Machine.t;
    stack : Workloads.Harness.t;
    session : Workloads.Server.session;
    mutable alive : bool; (* still scheduled: not finished, not killed *)
    mutable killed : bool;
    mutable pending_stall : int; (* neighbour interference not yet served *)
    mutable consumed_stall : int; (* injected during the current step *)
    mutable injected_total : int;
    mutable reclaims : int;
    mutable quarantine_trims : int;
    mutable last_stalled : int;
    mutable last_bg : int;
  }

  type t = {
    cfg : config;
    tenants : tenant array;
    reg : R.t;
    c_steps : R.counter;
    c_pressure : R.counter;
    c_reclaims : R.counter;
    c_trims : R.counter;
    c_injected : R.counter;
    c_oom_kills : R.counter;
    g_peak : R.gauge;
    g_peak_raw : R.gauge;
    mutable purge_cursor : int; (* next start index for round-robin purge *)
    mutable ran : bool;
  }

  (* Physical pages only: simulated metadata (shadow maps, quarantine
     entries) lives outside the paged address spaces and is charged to
     per-tenant RSS reports, not to the machine budget. Killed tenants'
     pages are back with the OS, so they leave the sum. *)
  let committed_bytes t =
    Array.fold_left
      (fun acc tn ->
        if tn.killed then acc
        else acc + Vmem.committed_bytes tn.machine.Alloc.Machine.mem)
      0 t.tenants

  let registry t = t.reg

  let create ?seed (cfg : config) specs =
    if specs = [] then invalid_arg "Fleet.Machine.create: no tenants";
    let base_seed = Option.value seed ~default:9100 in
    let reg = R.create () in
    let tenants =
      Array.of_list
        (List.mapi
           (fun i (spec : tenant_spec) ->
             let machine = Alloc.Machine.create () in
             let stack =
               Workloads.Harness.build spec.scheme ~threads:1 machine
             in
             let tseed = Sim.Rng.split_seed ~seed:base_seed ~index:i in
             (* Per-session OOM limits are disabled: the machine budget
                (enforce_budget below) is the only memory authority, and
                it reclaims before it kills. *)
             let session =
               Workloads.Server.start ~rss_limit:max_int ~seed:tseed
                 spec.profile stack
             in
             {
               spec;
               index = i;
               machine;
               stack;
               session;
               alive = true;
               killed = false;
               pending_stall = 0;
               consumed_stall = 0;
               injected_total = 0;
               reclaims = 0;
               quarantine_trims = 0;
               last_stalled = 0;
               last_bg = 0;
             })
           specs)
    in
    let t =
      {
        cfg;
        tenants;
        reg;
        c_steps = R.counter reg "fleet.steps";
        c_pressure = R.counter reg "fleet.pressure_events";
        c_reclaims = R.counter reg "fleet.reclaims";
        c_trims = R.counter reg "fleet.quarantine_trims";
        c_injected = R.counter reg "fleet.injected_stall_cycles";
        c_oom_kills = R.counter reg "fleet.oom_kills";
        g_peak = R.gauge reg "fleet.committed_peak";
        g_peak_raw = R.gauge reg "fleet.committed_peak_raw";
        purge_cursor = 0;
        ran = false;
      }
    in
    R.derive_gauge reg "fleet.committed_bytes" (fun () -> committed_bytes t);
    R.derive_gauge reg "fleet.budget_bytes" (fun () -> cfg.budget);
    R.derive_gauge reg "fleet.tenants" (fun () -> Array.length tenants);
    R.derive_gauge reg "fleet.wall_cycles" (fun () ->
        Array.fold_left
          (fun acc tn ->
            max acc (Sim.Clock.wall tn.machine.Alloc.Machine.clock))
          0 t.tenants);
    Array.iter
      (fun tn ->
        (* Interference consumption: the session pulls whatever neighbour
           stall accumulated since its last request and pays it inside
           the request window. *)
        Workloads.Server.set_external_stall tn.session (fun () ->
            let n = tn.pending_stall in
            tn.pending_stall <- 0;
            tn.consumed_stall <- tn.consumed_stall + n;
            tn.injected_total <- tn.injected_total + n;
            R.Counter.incr t.c_injected n;
            n);
        (* Within-step budget watermark: every page commit anywhere on
           the machine updates the raw peak, finer than the step-boundary
           enforcement below can see. *)
        Vmem.set_commit_observer tn.machine.Alloc.Machine.mem
          (fun ~addr:_ ~len:_ -> R.Gauge.set_max t.g_peak_raw (committed_bytes t)))
      tenants;
    t

  (* -- pressure policy ---------------------------------------------- *)

  let reclaim_tenant t tn =
    tn.reclaims <- tn.reclaims + 1;
    R.Counter.incr t.c_reclaims 1;
    tn.stack.Workloads.Harness.reclaim ()

  (* Purge order over the alive tenants. Largest-quarantine-first is the
     paper-motivated policy: quarantine is the memory a sweep can
     actually hand back, so pressure goes where the reclaimable bytes
     are. Round-robin rotates a cursor so pressure cost is spread evenly
     regardless of who caused it. Both are deterministic (explicit
     tie-break on index). *)
  let purge_sequence t =
    let alive =
      Array.to_list t.tenants |> List.filter (fun tn -> tn.alive)
    in
    match t.cfg.purge_order with
    | Largest_quarantine ->
      List.stable_sort
        (fun a b ->
          let qa = a.stack.Workloads.Harness.quarantine_bytes () in
          let qb = b.stack.Workloads.Harness.quarantine_bytes () in
          if qa <> qb then compare qb qa else compare a.index b.index)
        alive
    | Round_robin_purge ->
      let n = Array.length t.tenants in
      let start = t.purge_cursor mod n in
      t.purge_cursor <- t.purge_cursor + 1;
      List.stable_sort
        (fun a b ->
          let pos i = (i - start + n) mod n in
          compare (pos a.index) (pos b.index))
        alive

  let kill_largest t =
    let victim =
      Array.fold_left
        (fun acc tn ->
          if not tn.alive then acc
          else
            let rss = Vmem.committed_bytes tn.machine.Alloc.Machine.mem in
            match acc with
            | Some (_, best) when best >= rss -> acc
            | _ -> Some (tn, rss))
        None t.tenants
    in
    match victim with
    | None -> ()
    | Some (tn, _) ->
      tn.alive <- false;
      tn.killed <- true;
      R.Counter.incr t.c_oom_kills 1

  (* Reactive enforcement at quantum boundaries, like kernel reclaim:
     first ask tenants to give memory back (sweep + purge) in policy
     order, then OOM-kill the largest resident tenant until the budget
     holds. Post-enforcement committed bytes never exceed the budget. *)
  let enforce_budget t =
    if committed_bytes t > t.cfg.budget then begin
      R.Counter.incr t.c_pressure 1;
      let rec reclaim_loop = function
        | [] -> ()
        | tn :: rest ->
          if committed_bytes t > t.cfg.budget then begin
            reclaim_tenant t tn;
            reclaim_loop rest
          end
      in
      reclaim_loop (purge_sequence t);
      while
        committed_bytes t > t.cfg.budget
        && Array.exists (fun tn -> tn.alive) t.tenants
      do
        kill_largest t
      done
    end;
    R.Gauge.set_max t.g_peak (committed_bytes t);
    R.Gauge.set_max t.g_peak_raw (committed_bytes t)

  (* -- scheduling --------------------------------------------------- *)

  (* One scheduling quantum: serve one request, trim the tenant's own
     quarantine if it overran its budget, propagate the interference the
     step generated, then enforce the machine budget. *)
  let step_tenant t tn =
    if tn.alive then begin
      tn.consumed_stall <- 0;
      let more = Workloads.Server.step tn.session in
      R.Counter.incr t.c_steps 1;
      if not more then tn.alive <- false;
      if
        tn.spec.quarantine_budget > 0
        && tn.stack.Workloads.Harness.quarantine_bytes ()
           > tn.spec.quarantine_budget
      then begin
        tn.quarantine_trims <- tn.quarantine_trims + 1;
        R.Counter.incr t.c_trims 1;
        reclaim_tenant t tn
      end;
      let clk = tn.machine.Alloc.Machine.clock in
      let stalled = Sim.Clock.stalled clk in
      let bg = Sim.Clock.background_busy clk in
      (* The tenant's own new stall, minus what we injected into it this
         step (no echo), plus a bandwidth share of its sweep work. *)
      let d_stall = max 0 (stalled - tn.last_stalled - tn.consumed_stall) in
      let d_bg = max 0 (bg - tn.last_bg) in
      tn.last_stalled <- stalled;
      tn.last_bg <- bg;
      let share =
        (d_stall * t.cfg.stall_share_pm / 1000)
        + (d_bg * t.cfg.bg_share_pm / 1000)
      in
      if share > 0 then
        Array.iter
          (fun other ->
            if other.index <> tn.index && other.alive then
              other.pending_stall <- other.pending_stall + share)
          t.tenants;
      enforce_budget t
    end

  let quantum t =
    match t.cfg.scheduler with
    | Round_robin -> Array.iter (fun tn -> step_tenant t tn) t.tenants
    | Priority ->
      (* Static priorities: heavier tenants run longer bursts, ordered
         heaviest-first (stable on index). *)
      let order =
        List.stable_sort
          (fun a b ->
            if a.spec.weight <> b.spec.weight then
              compare b.spec.weight a.spec.weight
            else compare a.index b.index)
          (Array.to_list t.tenants)
      in
      List.iter
        (fun tn ->
          for _ = 1 to tn.spec.weight do
            step_tenant t tn
          done)
        order

  let quantiles_of_merged reg name =
    match R.find reg name with
    | Some (R.Histogram h) ->
      {
        Workloads.Server.p50 = R.Histogram.quantile h 0.5;
        p99 = R.Histogram.quantile h 0.99;
        p999 = R.Histogram.quantile h 0.999;
      }
    | Some _ | None -> { Workloads.Server.p50 = 0.; p99 = 0.; p999 = 0. }

  let run t =
    if t.ran then invalid_arg "Fleet.Machine.run: already ran";
    t.ran <- true;
    R.Gauge.set_max t.g_peak (committed_bytes t);
    R.Gauge.set_max t.g_peak_raw (committed_bytes t);
    while Array.exists (fun tn -> tn.alive) t.tenants do
      quantum t
    done;
    let tenants =
      Array.to_list t.tenants
      |> List.map (fun tn ->
             {
               name = tn.spec.tname;
               scheme = tn.stack.Workloads.Harness.scheme;
               server = Workloads.Server.finish tn.session;
               injected_stall_cycles = tn.injected_total;
               reclaims = tn.reclaims;
               quarantine_trims = tn.quarantine_trims;
               killed = tn.killed;
             })
    in
    (* Merge the per-tenant registries twice: once namespaced per tenant
       under "fleet.t<i>." for drill-down, once under a shared
       "fleet.agg." prefix so histograms add bucket-wise into
       machine-wide distributions — the cross-tenant p50/p99 sweep-pause
       and stall quantiles read straight off the merged histograms. *)
    Array.iter
      (fun tn ->
        let src = Workloads.Server.registry tn.session in
        R.merge_into ~prefix:(Printf.sprintf "fleet.t%d." tn.index) src
          ~into:t.reg;
        R.merge_into ~prefix:"fleet.agg." src ~into:t.reg)
      t.tenants;
    let peak = R.Gauge.value t.g_peak in
    let peak_raw = R.Gauge.value t.g_peak_raw in
    {
      budget = t.cfg.budget;
      scheduler = t.cfg.scheduler;
      purge_order = t.cfg.purge_order;
      tenants;
      steps = R.Counter.value t.c_steps;
      committed_peak = peak;
      committed_peak_raw = peak_raw;
      overshoot = max 0 (peak_raw - t.cfg.budget);
      pressure_events = R.Counter.value t.c_pressure;
      total_reclaims = R.Counter.value t.c_reclaims;
      oom_kills = R.Counter.value t.c_oom_kills;
      agg_latency = quantiles_of_merged t.reg "fleet.agg.srv.latency";
      agg_stall = quantiles_of_merged t.reg "fleet.agg.srv.stall_latency";
      agg_pause = quantiles_of_merged t.reg "fleet.agg.ms.sweep_pause_cycles";
      registry = t.reg;
    }
end

let scale_specs factor specs =
  if factor = 1.0 then specs
  else
    List.map
      (fun s -> { s with profile = Workloads.Server.scale factor s.profile })
      specs

let run ?(scale = 1.0) ?seed cfg specs =
  let specs = scale_specs scale specs in
  Machine.run (Machine.create ?seed cfg specs)

let run_repeats ?(scale = 1.0) ?(seed = 9100) ~repeats cfg specs =
  List.init (max 1 repeats) (fun i ->
      let seed =
        if i = 0 then seed else Sim.Rng.split_seed ~seed ~index:i
      in
      run ~scale ~seed cfg specs)

(* The acceptance scenario: one tenant with leaking handlers and
   dangling pointers next to four well-behaved ones, all on the same
   scheme. *)
let noisy_neighbour ?(steady = 4) scheme =
  let leak =
    match Workloads.Server.find "slow-leak" with
    | Some p -> p
    | None -> invalid_arg "Fleet.noisy_neighbour: no slow-leak profile"
  in
  let quiet =
    match Workloads.Server.find "steady" with
    | Some p -> p
    | None -> invalid_arg "Fleet.noisy_neighbour: no steady profile"
  in
  tenant ~name:"leaker" leak scheme
  :: List.init (max 1 steady) (fun i ->
         tenant ~name:(Printf.sprintf "steady%d" i) quiet scheme)
