(** Use-after-free exploitation scenarios (Listing 1 / Figure 2).

    The classic attack: the program erroneously frees an object but keeps
    a dangling pointer; the attacker sprays allocations of the same size,
    filling them with a fake virtual-function table; when the program
    later calls through the dangling pointer, it dispatches into
    attacker-controlled code.

    These scenarios run the attack against any allocator stack and
    classify the outcome. Under plain JeMalloc the spray wins (the freed
    slot is recycled almost immediately). Under MineSweeper the dangling
    pointer keeps the object in quarantine, so the attacker can never
    alias it: the load returns benign (zeroed) data or faults cleanly —
    exactly the "use-after-reallocate becomes benign use-after-free or
    clean termination" guarantee of Section 1.2. *)

type outcome =
  | Exploited
      (** the dangling read observed attacker-written data: the freed
          object was re-allocated to the attacker *)
  | Prevented_fault
      (** the access faulted (memory unmapped/protected): clean
          termination *)
  | Benign
      (** the access read stale or zeroed data: harmless use-after-free *)

val describe : outcome -> string

val vtable_hijack : ?spray:int -> Workloads.Harness.t -> outcome
(** Run the Figure 2 attack with [spray] attacker allocations (default
    4096). The dangling pointer is stored in a root slot, so sweeps can
    see it. *)

val double_free_hijack : ?spray:int -> Workloads.Harness.t -> outcome
(** Variant where the program frees the victim twice before the spray —
    exercises the quarantine's double-free idempotence. The stack's
    [free] must tolerate the second call (MineSweeper does; for unsafe
    stacks the scenario skips the second free). *)

val unlink_corruption : Workloads.Harness.t -> outcome
(** The classic unlink exploit against in-band allocator metadata
    (Section 2, footnote 2): a use-after-free {e write} forges the freed
    chunk's free-list links so the next unlink performs an arbitrary
    write over a "credential" global. Returns [Exploited] when the
    credential was clobbered — which happens under the dlmalloc model,
    and must not happen under MineSweeper (quarantine defers the
    free-list insertion; zeroing destroys forged links) or under
    allocators with out-of-band metadata. *)

val describe_unlink : outcome -> string
(** Outcome text specific to {!unlink_corruption}. *)

val hijack_under_traffic :
  ?spray:int ->
  ?double_free:bool ->
  profile:Workloads.Server.profile ->
  Workloads.Harness.t ->
  outcome * Workloads.Server.result
(** The Figure 2 attack mounted against a {e live server}: open-loop
    traffic flows (a {!Workloads.Server} session over the given stack);
    after a warm-up quarter the program frees the victim but keeps the
    dangling global; the attacker sprays [spray] same-sized allocations
    (default 1024) interleaved with legitimate requests, and the program
    periodically calls through the dangling pointer. [Exploited] if any
    such call dispatches through attacker data; [Prevented_fault] on the
    first faulting/nullified call; [Benign] when every call saw stale,
    zeroed or legitimately-reused data. Also returns the traffic result,
    so detection can be correlated with tail latency. The stack must be
    freshly built (the session registers its [srv.*] metrics). *)

val reuse_after_clear : ?churn:int -> Workloads.Harness.t -> bool
(** The healthy-program counterpart: free an object, later overwrite the
    last pointer to it, keep allocating. Returns [true] once the victim's
    address is eventually served again — showing quarantine releases
    memory as soon as it is provably safe (no leak-forever). *)
