type outcome =
  | Exploited
  | Prevented_fault
  | Benign

let describe = function
  | Exploited -> "EXPLOITED: attacker aliased the freed object"
  | Prevented_fault -> "PREVENTED: dangling access faulted (clean termination)"
  | Benign -> "BENIGN: dangling read saw stale/zeroed data only"

(* Word values standing in for vtable pointers. They sit below the heap
   region so sweeps never mistake them for heap pointers. *)
let legit_vtable = 0x0100_0100
let malicious_vtable = 0x01BA_D000
let victim_size = 48

let dangling_slot = Layout.globals_base + 128
(* a global the program never overwrites *)

let mem (stack : Workloads.Harness.t) = stack.machine.Alloc.Machine.mem

let read_vtable stack victim =
  match Vmem.load (mem stack) victim with
  | v when v = malicious_vtable -> Exploited
  | _ -> Benign
  | exception Vmem.Fault _ -> Prevented_fault

let spray_attack ?(spray = 4096) ~double_free (stack : Workloads.Harness.t) =
  (* The program: allocate an object carrying its vtable pointer... *)
  let victim = stack.malloc victim_size in
  Vmem.store (mem stack) victim legit_vtable;
  (* ...publish a pointer to it (an instrumented pointer store)... *)
  Vmem.store (mem stack) dangling_slot victim;
  stack.on_pointer_write ~slot:dangling_slot ~old_value:0 ~value:victim;
  (* ...then erroneously free it (without clearing the pointer). *)
  stack.free ~thread:0 victim;
  if double_free && stack.tolerates_double_free then
    (* Second buggy free: must be idempotent under quarantine. *)
    stack.free ~thread:0 victim;
  (* The attacker sprays same-sized allocations filled with a fake
     vtable, hoping one lands on the victim's address. *)
  for _ = 1 to spray do
    let a = stack.malloc victim_size in
    Vmem.store (mem stack) a malicious_vtable;
    stack.tick ()
  done;
  (* The program finally calls x->fn() through the dangling pointer.
     Under nullification schemes the slot now holds NULL, so the call is
     a null dereference: clean termination. *)
  match Vmem.load (mem stack) dangling_slot with
  | 0 -> Prevented_fault
  | x -> read_vtable stack x

let vtable_hijack ?spray stack = spray_attack ?spray ~double_free:false stack

let double_free_hijack ?spray stack =
  spray_attack ?spray ~double_free:true stack

(* The unlink exploit (Section 2, footnote 2): in allocators with
   in-band metadata, a use-after-free *write* corrupts the freed chunk's
   free-list links, and the next unlink turns them into an arbitrary
   write — here, over a "credential" global. *)
let credential_slot = Layout.globals_base + 256
let decoy_slot = Layout.globals_base + 512
let credential_sentinel = 0x00C0_FFEE

let unlink_corruption (stack : Workloads.Harness.t) =
  let mem = mem stack in
  Vmem.store mem credential_slot credential_sentinel;
  let victim = stack.malloc victim_size in
  stack.free ~thread:0 victim;
  (* Use-after-free WRITE through the dangling pointer: forge the fd/bk
     links so that unlink writes into the credential slot. *)
  (try
     Vmem.store mem victim (credential_slot - 8);
     Vmem.store mem (victim + 8) decoy_slot
   with Vmem.Fault _ -> () (* unmapped in quarantine: write refused *));
  (* Trigger reuse of the bin. *)
  for _ = 1 to 8 do
    ignore (stack.malloc victim_size);
    stack.tick ()
  done;
  if Vmem.load mem credential_slot <> credential_sentinel then Exploited
  else Benign

let describe_unlink = function
  | Exploited -> "EXPLOITED: unlink wrote attacker data over the credential"
  | Prevented_fault -> "PREVENTED: forged link write faulted (clean termination)"
  | Benign -> "PREVENTED: free-list insertion deferred; forged links destroyed"

(* The Figure 2 attack mounted against a live server instead of an idle
   stack. The server handles open-loop traffic (Workloads.Server); a
   quarter of the way in, a buggy handler frees the victim but leaves the
   dangling global; the attacker then sprays same-sized allocations
   interleaved with legitimate requests. After every burst the "program"
   performs its dangling virtual call — the attacker wins if ANY of those
   calls dispatches through attacker data (under real traffic the victim
   address churns: legitimate handlers may reuse and benignly overwrite
   it, so only the eager check is faithful). The first faulting call
   terminates the program cleanly. *)
let hijack_under_traffic ?(spray = 1024) ?(double_free = false) ~profile
    (stack : Workloads.Harness.t) =
  let session = Workloads.Server.start profile stack in
  let mem = mem stack in
  let total = Workloads.Server.total_requests session in
  let warmup = total / 4 in
  let live = ref true in
  while !live && Workloads.Server.served session < warmup do
    live := Workloads.Server.step session
  done;
  (* The buggy handler: allocate, publish, free, keep the pointer. *)
  let victim = stack.malloc victim_size in
  Vmem.store mem victim legit_vtable;
  Vmem.store mem dangling_slot victim;
  stack.on_pointer_write ~slot:dangling_slot ~old_value:0 ~value:victim;
  stack.free ~thread:0 victim;
  if double_free && stack.tolerates_double_free then stack.free ~thread:0 victim;
  let outcome = ref Benign and decided = ref false in
  let dangling_call () =
    if not !decided then
      match Vmem.load mem dangling_slot with
      | 0 ->
        outcome := Prevented_fault;
        decided := true
      | x -> (
        match read_vtable stack x with
        | Exploited ->
          outcome := Exploited;
          decided := true
        | Prevented_fault ->
          outcome := Prevented_fault;
          decided := true
        | Benign -> ())
  in
  let sprayed = ref 0 in
  while !live && !sprayed < spray do
    live := Workloads.Server.step session;
    let burst = min 4 (spray - !sprayed) in
    for _ = 1 to burst do
      let a = stack.malloc victim_size in
      Vmem.store mem a malicious_vtable
    done;
    sprayed := !sprayed + burst;
    dangling_call ()
  done;
  (* Background traffic continues after the attack window. *)
  while Workloads.Server.step session do
    ()
  done;
  dangling_call ();
  (!outcome, Workloads.Server.finish session)

let reuse_after_clear ?(churn = 200_000) (stack : Workloads.Harness.t) =
  let victim = stack.malloc victim_size in
  Vmem.store (mem stack) victim legit_vtable;
  Vmem.store (mem stack) dangling_slot victim;
  stack.on_pointer_write ~slot:dangling_slot ~old_value:0 ~value:victim;
  stack.free ~thread:0 victim;
  (* The program later overwrites its last pointer to the object... *)
  Vmem.store (mem stack) dangling_slot 0;
  stack.on_pointer_write ~slot:dangling_slot ~old_value:victim ~value:0;
  (* ...so ongoing allocation churn (which drives sweeps) must
     eventually recycle the address. *)
  let reused = ref false in
  let i = ref 0 in
  while (not !reused) && !i < churn do
    let a = stack.malloc victim_size in
    if a = victim then reused := true
    else begin
      stack.free ~thread:0 a;
      stack.tick ()
    end;
    incr i
  done;
  !reused
