(** Vector-clock happens-before analysis of a sweep-protocol run.

    Consumes the observed total order of {!Event.t}s, reconstructs the
    happens-before partial order from the protocol's synchronization
    edges, and reports violations of the release soundness argument
    (paper Section 5.4: an entry may be recycled only when the mark that
    proves it unreachable — or the stop-the-world re-scan that patches
    the mark's blind spots — happened-before the release).

    Edges, per event kind:
    - program order within each logical thread;
    - [Lock_in]: the sweeper joins every mutator clock (acquire — the
      frozen set reflects all earlier frees);
    - [Fence]: full barrier — the stop-the-world thread joins everyone,
      then everyone joins it;
    - [Sweep_done]: every mutator joins the sweeper (release).

    A mutator write during the window that stores a pointer into a
    locked-in entry is a {e hidden write}: the mark may or may not have
    seen it. It is safe iff it happened-before the mark's read of its
    page, or a fence ordered it before the release decision; otherwise
    [rc-mark-hidden-write] fires with both racing clocks. *)

val rules : (string * string) list
(** Rule id -> description, mirroring {!Sanitizer.Trace_lint.rules}. All
    race rules carry severity [Error]. *)

val analyze : threads:int -> Event.t list -> Sanitizer.Diagnostic.t list
(** Events must be in observed order with monotonically increasing
    [seq]; diagnostics come back in detection order, [op_index] holding
    the seq of the racing (or closing) event. *)
