module Diagnostic = Sanitizer.Diagnostic

let rules =
  [
    ( "rc-mark-hidden-write",
      "mutator write publishing a pointer to a locked-in entry during the \
       sweep window, concurrent with the background mark and not ordered by \
       a stop-the-world fence" );
    ( "rc-early-release",
      "entry released before the marking that proves it unreachable \
       happened-before the release" );
    ( "rc-lost-entry",
      "locked-in entry neither released nor requeued by sweep completion — \
       it silently leaks out of the protocol" );
    ( "rc-reuse-quarantined",
      "allocator served an address that is still quarantined: the free \
       interposition was bypassed" );
    ( "rc-stage-order",
      "sweep-pipeline stage boundary out of canonical order: a stage \
       entered while another was still open, re-opened after a later stage \
       completed, or exited without a matching enter" );
  ]

(* Canonical pipeline stage order (Pipeline.stage_index, kept local so
   the checker does not depend on the core library's types). *)
let stage_order = function
  | "mark" -> 0
  | "merge" -> 1
  | "release" -> 2
  | "purge" -> 3
  | _ -> -1

(* An event together with the clock it executed at. *)
type stamped = {
  seq : int;
  clock : Vclock.t;
}

(* Per-sweep window state, opened at [Lock_in], closed (and judged) at
   [Sweep_done]. *)
type window = {
  sweep : int;
  locked : (int * int) array;  (** sorted by address *)
  lock_seq : int;
  mutable mark_done : stamped option;
  mutable fences : stamped list;
  mark_reads : (int, stamped) Hashtbl.t;  (** page base -> last mark read *)
  outcomes : (int, unit) Hashtbl.t;  (** addr released or requeued *)
  mutable hidden : (Event.t * stamped * int * int) list;
      (** window writes whose value points into a locked entry:
          (event, stamp, entry base, entry usable) — judged at close *)
}

(* Greatest locked entry with base <= value, if value falls inside it. *)
let containing locked value =
  let n = Array.length locked in
  let rec go lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let base, _ = locked.(mid) in
      if base <= value then go (mid + 1) hi (Some mid) else go lo (mid - 1) best
  in
  match go 0 (n - 1) None with
  | None -> None
  | Some i ->
    let base, usable = locked.(i) in
    if value >= base && value < base + usable then Some (base, usable) else None

let page_of addr = addr / Vmem.page_size * Vmem.page_size

let analyze ~threads (events : Event.t list) =
  let n = Event.tid_count ~threads in
  let clocks = Array.init n (fun _ -> Vclock.create n) in
  let diags = ref [] in
  let report ~rule ~op_index msg =
    diags :=
      Diagnostic.make ~rule ~severity:Diagnostic.Error ~op_index msg :: !diags
  in
  (* Ground truth for the reuse rule: pushed and not yet released. *)
  let quarantined : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  (* Stage-boundary protocol state, per sweep: the currently open stage
     and the highest stage index already exited. *)
  let stage_cur : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let stage_max : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let window = ref None in
  let close_window (w : window) done_seq =
    (* Hidden writes survive if the mark read of their page saw them
       (write happened-before the read) or a fence ordered them before
       the release decision; otherwise the release raced the write. *)
    List.iter
      (fun ((e : Event.t), (st : stamped), base, usable) ->
        let seen_by_mark =
          match e.kind with
          | Event.Write { addr; _ } -> (
            match Hashtbl.find_opt w.mark_reads (page_of addr) with
            | Some mr -> Vclock.leq st.clock mr.clock
            | None -> false)
          | _ -> false
        in
        let fenced =
          List.exists (fun (f : stamped) -> Vclock.leq st.clock f.clock) w.fences
        in
        if not (seen_by_mark || fenced) then
          let mark_info =
            match e.kind with
            | Event.Write { addr; _ } -> (
              match Hashtbl.find_opt w.mark_reads (page_of addr) with
              | Some mr ->
                Printf.sprintf
                  "; page %#x was marked at event #%d clock %s — concurrent \
                   with the write"
                  (page_of addr) mr.seq (Vclock.to_string mr.clock)
              | None ->
                Printf.sprintf "; page %#x was never marked this sweep"
                  (page_of addr))
            | _ -> ""
          in
          report ~rule:"rc-mark-hidden-write" ~op_index:st.seq
            (Printf.sprintf
               "sweep %d: %s %s (event #%d, clock %s) hides a pointer into \
                locked-in entry %#x+%d from the mark, and no stop-the-world \
                fence orders it before the release decision%s"
               w.sweep
               (Event.tid_to_string e.tid)
               (Event.kind_to_string e.kind) st.seq (Vclock.to_string st.clock)
               base usable mark_info))
      (List.rev w.hidden);
    Array.iter
      (fun (addr, usable) ->
        if not (Hashtbl.mem w.outcomes addr) then
          report ~rule:"rc-lost-entry" ~op_index:done_seq
            (Printf.sprintf
               "sweep %d: locked-in entry %#x+%d neither released nor \
                requeued by sweep completion (event #%d)"
               w.sweep addr usable done_seq))
      w.locked
  in
  List.iter
    (fun (e : Event.t) ->
      let i = Event.tid_index ~threads e.tid in
      Vclock.tick clocks.(i) i;
      (* Synchronization edges. *)
      (match e.kind with
      | Event.Lock_in _ ->
        (* Acquire: the sweeper sees everything every mutator did. *)
        for m = 0 to threads - 1 do
          Vclock.join clocks.(i) clocks.(m)
        done
      | Event.Fence _ ->
        (* Full barrier: the stop-the-world window sees everything, and
           everyone resumes after it. *)
        for j = 0 to n - 1 do
          if j <> i then Vclock.join clocks.(i) clocks.(j)
        done;
        for j = 0 to n - 1 do
          if j <> i then Vclock.join clocks.(j) clocks.(i)
        done
      | Event.Sweep_done _ ->
        (* Release: mutators resume knowing the sweep completed. *)
        for m = 0 to threads - 1 do
          Vclock.join clocks.(m) clocks.(i)
        done
      | _ -> ());
      let st = { seq = e.seq; clock = Vclock.copy clocks.(i) } in
      match e.kind with
      | Event.Push { addr; _ } -> Hashtbl.replace quarantined addr ()
      | Event.Serve { addr; usable } ->
        if Hashtbl.mem quarantined addr then
          report ~rule:"rc-reuse-quarantined" ~op_index:st.seq
            (Printf.sprintf
               "allocator served %#x+%d (event #%d, clock %s) while the \
                address is still quarantined"
               addr usable st.seq (Vclock.to_string st.clock))
      | Event.Lock_in { sweep; entries } ->
        let locked = Array.of_list entries in
        Array.sort compare locked;
        window :=
          Some
            {
              sweep;
              locked;
              lock_seq = st.seq;
              mark_done = None;
              fences = [];
              mark_reads = Hashtbl.create 64;
              outcomes = Hashtbl.create 16;
              hidden = [];
            }
      | Event.Mark_read { base; _ } -> (
        match !window with
        | Some w -> Hashtbl.replace w.mark_reads base st
        | None -> ())
      | Event.Mark_done _ -> (
        match !window with
        | Some w -> w.mark_done <- Some st
        | None -> ())
      | Event.Write { value; _ } -> (
        match !window with
        | Some w -> (
          match containing w.locked value with
          | Some (base, usable) -> w.hidden <- (e, st, base, usable) :: w.hidden
          | None -> ())
        | None -> ())
      | Event.Fence _ -> (
        match !window with
        | Some w -> w.fences <- st :: w.fences
        | None -> ())
      | Event.Rescan_read _ -> ()
      | Event.Requeue { addr; _ } -> (
        match !window with
        | Some w -> Hashtbl.replace w.outcomes addr ()
        | None -> ())
      | Event.Release { sweep; addr } -> (
        Hashtbl.remove quarantined addr;
        match !window with
        | None ->
          report ~rule:"rc-early-release" ~op_index:st.seq
            (Printf.sprintf
               "sweep %d: entry %#x released at event #%d (clock %s) outside \
                any sweep window"
               sweep addr st.seq (Vclock.to_string st.clock))
        | Some w -> (
          Hashtbl.replace w.outcomes addr ();
          match w.mark_done with
          | Some md when Vclock.leq md.clock st.clock -> ()
          | Some md ->
            report ~rule:"rc-early-release" ~op_index:st.seq
              (Printf.sprintf
                 "sweep %d: entry %#x released at event #%d (clock %s) not \
                  ordered after mark completion (event #%d, clock %s)"
                 w.sweep addr st.seq (Vclock.to_string st.clock) md.seq
                 (Vclock.to_string md.clock))
          | None ->
            report ~rule:"rc-early-release" ~op_index:st.seq
              (Printf.sprintf
                 "sweep %d: entry %#x released at event #%d (clock %s) before \
                  marking completed — its unreachability proof does not exist \
                  yet"
                 w.sweep addr st.seq (Vclock.to_string st.clock))))
      | Event.Sweep_done _ -> (
        match !window with
        | Some w ->
          close_window w st.seq;
          window := None
        | None -> ())
      | Event.Stage { sweep; stage; enter } ->
        let idx = stage_order stage in
        let max_done =
          Option.value ~default:(-1) (Hashtbl.find_opt stage_max sweep)
        in
        if idx < 0 then
          report ~rule:"rc-stage-order" ~op_index:st.seq
            (Printf.sprintf "sweep %d: unknown pipeline stage %S (event #%d)"
               sweep stage st.seq)
        else if enter then begin
          (match Hashtbl.find_opt stage_cur sweep with
          | Some open_stage ->
            report ~rule:"rc-stage-order" ~op_index:st.seq
              (Printf.sprintf
                 "sweep %d: stage %s entered (event #%d, clock %s) while \
                  stage %s is still open"
                 sweep stage st.seq (Vclock.to_string st.clock) open_stage)
          | None -> ());
          if idx < max_done then
            report ~rule:"rc-stage-order" ~op_index:st.seq
              (Printf.sprintf
                 "sweep %d: stage %s entered (event #%d, clock %s) after a \
                  later stage already completed — the pipeline ran backwards"
                 sweep stage st.seq (Vclock.to_string st.clock));
          Hashtbl.replace stage_cur sweep stage
        end
        else begin
          (match Hashtbl.find_opt stage_cur sweep with
          | Some open_stage when open_stage = stage ->
            Hashtbl.remove stage_cur sweep
          | Some open_stage ->
            report ~rule:"rc-stage-order" ~op_index:st.seq
              (Printf.sprintf
                 "sweep %d: stage %s exited (event #%d) while stage %s is \
                  the open one"
                 sweep stage st.seq open_stage)
          | None ->
            report ~rule:"rc-stage-order" ~op_index:st.seq
              (Printf.sprintf
                 "sweep %d: stage %s exited (event #%d) without a matching \
                  enter"
                 sweep stage st.seq));
          Hashtbl.replace stage_max sweep (max max_done idx)
        end
      | Event.Flush _ -> ())
    events;
  (* A run truncated mid-sweep is not judged for lost entries: the
     outcome events simply have not happened yet. *)
  List.rev !diags
