(** Record a live stack's synchronization events and race-check them.

    A {!session} subscribes to all four instrumentation hooks of one
    instance — {!Vmem.set_write_observer} (mutator stores, kept only
    inside the sweep window), {!Minesweeper.Quarantine.set_observer}
    (pushes, flushes, lock-in, per-entry outcomes),
    {!Minesweeper.Instance.set_sync_observer} (sweep boundaries, mark
    completion, the stop-the-world fence) and
    {!Alloc.Jemalloc.set_observer} (serves) — and linearises them into
    one {!Event.t} stream for {!Hb.analyze}. The {!Explorer} drives its
    schedules through the same session type.

    {!run} replays a {!Workloads.Trace.t} against a fresh instance under
    observation, analyses the stream, publishes [rc.*] counters into the
    instance registry and one [race] span per finding into its trace
    ring, and returns the findings. A well-behaved trace must come back
    clean under every preset: the generator never republishes a freed
    address, so no window write can hide a locked-in pointer. *)

type session

val attach :
  ?on_event:(Event.t -> unit) ->
  Minesweeper.Instance.t ->
  threads:int ->
  session
(** Install the observers (each hook holds at most one subscriber —
    attaching replaces any previous one). [on_event] additionally sees
    every event synchronously as it is recorded. *)

val detach : session -> unit
(** Remove all four observers. *)

val events : session -> Event.t list
(** Everything recorded so far, in observed order. *)

val set_thread : session -> int -> unit
(** Declare which mutator issues the ops that follow (events from hooks
    fired on the mutator's behalf are attributed to it; out-of-range ids
    alias mutator 0, mirroring the quarantine). *)

type report = {
  trace_name : string;
  config_name : string;
  threads : int;
  ops : int;
  sweeps : int;
  events : int;  (** recorded synchronization events *)
  window_writes : int;  (** mutator stores inside sweep windows *)
  diags : Sanitizer.Diagnostic.t list;
  stream : Event.t list;
      (** the recorded event stream itself, for downstream analyses
          (e.g. static lockset passes) that want the raw schedule *)
}

val run :
  ?config:Minesweeper.Config.t ->
  ?config_name:string ->
  Workloads.Trace.t ->
  report
(** Replay under observation and analyse; deterministic in the trace and
    config. *)
