(** Bounded schedule exploration of the sweep protocol (DPOR-lite).

    Drives a fixed two-mutator script — including a window where a freed
    object is still reachable from a root — through every (sampled)
    placement of one or two sweep start/finish boundaries. Boundaries
    are only placed at commutativity points (after heap-touching steps):
    placements between pure-compute steps execute identically, so the
    partial-order reduction skips them.

    Per schedule, three judgments:
    - {e soundness}: at every observed release, the
      {!Ptrtrack.Registry} ground truth must hold no pointer to the
      entry (a violation is the paper's use-after-free reintroduced);
    - {e race freedom}: the recorded event stream must satisfy
      {!Hb.analyze} with zero findings;
    - {e determinism/consistency}: each schedule runs twice and must
      render identically, and schedules with equal executed signatures
      must account equal swept bytes and outcomes.

    Results export through {!Obs}: [rc.*] counters/gauges in
    [registry], one [race]-phase span per schedule in [ring]. *)

type step
type schedule = (int * int) list
(** [(start_after_step, finish_after_step)] per sweep, in step order. *)

val script : step array
val points : int list
(** Step indices after which a boundary may be placed. *)

val all_schedules : unit -> schedule list
(** The full bounded space: every single-sweep placement, then every
    non-overlapping two-sweep placement, lexicographic. *)

type outcome = {
  index : int;
  boundaries : schedule;
  signature : string;  (** executed synchronization history *)
  swept_bytes : int;
  released : int;
  requeued : int;
  violations : string list;  (** ground-truth soundness failures *)
  races : Sanitizer.Diagnostic.t list;
}

type report = {
  config_name : string;
  space : int;
  outcomes : outcome list;
  deterministic : bool;
  consistent : bool;
  registry : Obs.Registry.t;
  ring : Obs.Trace_ring.t;
}

val run :
  ?config:Minesweeper.Config.t ->
  ?config_name:string ->
  schedules:int ->
  unit ->
  report
(** Explore up to [schedules] placements (stride-sampled from the full
    space when it is larger), each executed twice. Auto-sweep triggers
    are suppressed so sweeps happen exactly at the scheduled
    boundaries. *)

val violations : report -> string list
val races : report -> Sanitizer.Diagnostic.t list

val render : report -> string
(** Deterministic text rendering — byte-identical across repeated runs
    of the same exploration (the CLI gate compares two runs with
    [cmp]). *)
