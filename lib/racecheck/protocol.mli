(** Hand-written sweep-protocol runs: the checker's positive control.

    Emulates two sweeps of a two-mutator stack as an {!Event.t} stream —
    including the canonical hidden write (a mutator republishing a
    locked-in address onto a page the mark already scanned) that the
    stop-the-world fence exists to cover. The unmutated stream must be
    race-free; each {!Sanitizer.Corpus.protocol_mutation} breaks exactly
    one synchronization obligation and {!Hb.analyze} must flag exactly
    the rules the corpus declares. *)

val threads : int
(** Mutator count of the emulated runs (2). *)

val stream :
  ?mutation:Sanitizer.Corpus.protocol_mutation -> unit -> Event.t list
(** The canonical run, optionally with one mutation applied. *)

type mutant_result = {
  name : string;
  expected : string list;  (** rules the corpus declares *)
  got : string list;  (** sorted distinct rules the analysis raised *)
  passed : bool;
}

val self_test : unit -> mutant_result list
(** The unmutated stream (expected clean) followed by every corpus
    mutant. [check --races --corpus] fails unless all pass. *)
