(** The typed synchronization-event vocabulary of the sweep protocol.

    One run is a sequence of events, each attributed to a logical thread
    ({!tid}): the mutators that allocate, free and write; the sweeper
    that locks in, marks and releases; and a synthetic stop-the-world
    "thread" that owns the fence and the dirty-page re-scans. The
    instrumented stack ({!Recorder}) and the protocol emulator
    ({!Protocol}) both speak this vocabulary; {!Hb} consumes it. *)

type tid =
  | Mutator of int  (** application thread [0 .. threads-1] *)
  | Sweeper  (** background mark/release work *)
  | Stw  (** the stop-the-world window: fence + dirty re-scan *)

val tid_index : threads:int -> tid -> int
(** Clock-component index: mutators first, then sweeper, then stw.
    @raise Invalid_argument on a mutator id outside [0, threads). *)

val tid_count : threads:int -> int
(** [threads + 2]: width of the vector clocks for this run. *)

val tid_to_string : tid -> string

type kind =
  | Push of { raw_thread : int; addr : int; usable : int }
      (** free interposed into a thread-local quarantine buffer;
          [raw_thread] is the id before any aliasing to buffer 0 *)
  | Flush of { thread : int }
      (** a thread-local buffer drained into the global queue *)
  | Lock_in of { sweep : int; entries : (int * int) list }
      (** sweep begins: the pending set is frozen; [(addr, usable)] per
          entry. Synchronizes with every mutator (acquire). *)
  | Mark_read of { sweep : int; base : int }
      (** the background mark scanned one page *)
  | Mark_done of { sweep : int }  (** marking finished; proofs exist *)
  | Write of { addr : int; value : int; gen : int }
      (** mutator word store during the sweep window, with the page's
          resulting dirty generation *)
  | Fence of { sweep : int }
      (** stop-the-world barrier: orders every earlier mutator write
          before the release decision (full barrier) *)
  | Rescan_read of { sweep : int; base : int }
      (** dirty page re-scanned inside the stop-the-world window *)
  | Release of { sweep : int; addr : int }
      (** entry proven unreachable and recycled to the backend *)
  | Requeue of { sweep : int; addr : int }
      (** entry still referenced; carried into the next sweep *)
  | Sweep_done of { sweep : int }
      (** sweep completed; synchronizes with every mutator (release) *)
  | Serve of { addr : int; usable : int }
      (** the allocator handed out [addr] — must never be quarantined *)
  | Stage of { sweep : int; stage : string; enter : bool }
      (** the sweep pipeline crossed a stage boundary ([mark], [merge],
          [release] or [purge]); {!Hb}'s [rc-stage-order] rule holds
          these to the canonical order with paired enter/exit *)

type t = {
  seq : int;  (** position in the observed total order *)
  tid : tid;
  kind : kind;
}

val kind_to_string : kind -> string

val kind_signature : kind -> string
(** Compact clock-free form; equal signatures over a whole run mean the
    same synchronization history (the {!Explorer}'s equivalence key). *)

val to_string : t -> string
