(** Fixed-width vector clocks over the logical threads of one run.

    A clock has one component per logical thread ({!Event.tid_count} of
    them: the mutators, the sweeper, and the stop-the-world "thread").
    The usual lattice operations apply: an event [a] happens before [b]
    iff [leq a.clock b.clock]; two events race iff their clocks are
    {!concurrent}. *)

type t

val create : int -> t
(** All-zero clock of the given width. *)

val copy : t -> t
val size : t -> int
val get : t -> int -> int

val tick : t -> int -> unit
(** Advance component [i] — a thread performing its next event. *)

val join : t -> t -> unit
(** [join dst src] folds [src] into [dst] componentwise (max). *)

val leq : t -> t -> bool
(** Componentwise [<=]: the happens-before order. *)

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]: a race candidate. *)

val to_string : t -> string
(** ["<3,0,1,...>"] — used verbatim in race diagnostics. *)
