module Corpus = Sanitizer.Corpus

let threads = 2

let stream ?mutation () =
  let seq = ref 0 in
  let evs = ref [] in
  let emit tid kind =
    evs := { Event.seq = !seq; tid; kind } :: !evs;
    incr seq
  in
  let m0 = Event.Mutator 0 and m1 = Event.Mutator 1 in
  let page = Vmem.page_size in
  let hp = 16 * page in
  let rp = 32 * page in
  let a1 = hp + 64 and a2 = hp + 128 in
  let slot0 = rp and slot1 = rp + 8 in
  let fenced = mutation <> Some Corpus.Skip_stw_fence in
  (* Sweep 1: a1 is freed and locked in; while the background mark runs,
     mutator 1 publishes a1's address into a root slot whose page was
     already scanned — the canonical hidden write. *)
  emit m0 (Event.Serve { addr = a1; usable = 64 });
  emit m1 (Event.Serve { addr = a2; usable = 64 });
  emit m0 (Event.Write { addr = slot0; value = a2; gen = 0 });
  emit m0 (Event.Push { raw_thread = 0; addr = a1; usable = 64 });
  emit m0 (Event.Flush { thread = 0 });
  emit Event.Sweeper (Event.Lock_in { sweep = 1; entries = [ (a1, 64) ] });
  (* Pipeline stage boundaries, in canonical order for every stream
     except the reordering mutant. *)
  let stage sweep name enter =
    emit Event.Sweeper (Event.Stage { sweep; stage = name; enter })
  in
  stage 1 "mark" true;
  emit Event.Sweeper (Event.Mark_read { sweep = 1; base = rp });
  (match mutation with
  | Some Corpus.Release_before_mark_done ->
    (* The mutant recycles a1 while the mark is still running. *)
    emit Event.Sweeper (Event.Release { sweep = 1; addr = a1 })
  | Some Corpus.Reorder_stage_boundaries ->
    (* The pipelined mutant opens its Release stage while the Mark
       stage is still running. *)
    stage 1 "release" true
  | _ -> ());
  emit m1 (Event.Write { addr = slot1; value = a1; gen = 1 });
  emit Event.Sweeper (Event.Mark_read { sweep = 1; base = hp });
  emit Event.Sweeper (Event.Mark_done { sweep = 1 });
  stage 1 "mark" false;
  stage 1 "merge" true;
  stage 1 "merge" false;
  if fenced then begin
    emit Event.Stw (Event.Fence { sweep = 1 });
    emit Event.Stw (Event.Rescan_read { sweep = 1; base = rp })
  end;
  if mutation <> Some Corpus.Reorder_stage_boundaries then
    stage 1 "release" true;
  (match mutation with
  | None | Some Corpus.Reorder_stage_boundaries ->
    (* The re-scan found the hidden pointer: a1 stays quarantined. *)
    emit Event.Sweeper (Event.Requeue { sweep = 1; addr = a1 })
  | Some Corpus.Skip_stw_fence ->
    (* No fence, no re-scan: the hidden pointer goes unseen and the
       entry is unsoundly recycled. *)
    emit Event.Sweeper (Event.Release { sweep = 1; addr = a1 })
  | Some Corpus.Release_before_mark_done -> ()
  | Some Corpus.Lose_requeued_entry -> ());
  stage 1 "release" false;
  emit Event.Sweeper (Event.Sweep_done { sweep = 1 });
  (* Sweep 2: only the well-behaved protocol still holds a1 — the
     mutator clears the published pointer and the retry releases it. *)
  if mutation = None then begin
    emit m1 (Event.Write { addr = slot1; value = 0; gen = 2 });
    emit Event.Sweeper (Event.Lock_in { sweep = 2; entries = [ (a1, 64) ] });
    stage 2 "mark" true;
    emit Event.Sweeper (Event.Mark_read { sweep = 2; base = rp });
    emit Event.Sweeper (Event.Mark_read { sweep = 2; base = hp });
    emit Event.Sweeper (Event.Mark_done { sweep = 2 });
    stage 2 "mark" false;
    stage 2 "merge" true;
    stage 2 "merge" false;
    emit Event.Stw (Event.Fence { sweep = 2 });
    stage 2 "release" true;
    emit Event.Sweeper (Event.Release { sweep = 2; addr = a1 });
    stage 2 "release" false;
    emit Event.Sweeper (Event.Sweep_done { sweep = 2 })
  end;
  List.rev !evs

type mutant_result = {
  name : string;
  expected : string list;
  got : string list;
  passed : bool;
}

let self_test () =
  let check name expected mutation =
    let diags = Hb.analyze ~threads (stream ?mutation ()) in
    let got =
      List.sort_uniq compare
        (List.map (fun d -> d.Sanitizer.Diagnostic.rule) diags)
    in
    { name; expected; got; passed = got = expected }
  in
  check "unmutated" [] None
  :: List.map
       (fun (m : Corpus.protocol_mutant) ->
         check m.Corpus.mutant_name m.Corpus.expected_race_rules
           (Some m.Corpus.mutation))
       Corpus.protocol_mutants
