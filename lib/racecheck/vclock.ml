type t = int array

let create n = Array.make n 0
let copy = Array.copy
let size = Array.length
let get c i = c.(i)
let tick c i = c.(i) <- c.(i) + 1

let join dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let concurrent a b = (not (leq a b)) && not (leq b a)

let to_string c =
  "<"
  ^ String.concat "," (Array.to_list (Array.map string_of_int c))
  ^ ">"
