module Instance = Minesweeper.Instance
module Config = Minesweeper.Config
module Registry = Ptrtrack.Registry
module Diagnostic = Sanitizer.Diagnostic

(* ------------------------------------------------------------------ *)
(* The mutator script: a fixed two-thread program with a deliberate
   dangling window (a is freed at step 7 while root[0] still points at
   it until step 10), so sweeps placed inside the window must requeue
   and sweeps placed after it may release.                             *)

type step =
  | Malloc of { key : int; size : int; thread : int }
  | Store_root of { slot : int; key : int; thread : int }
  | Clear_root of { slot : int; thread : int }
  | Store_field of { holder : int; word : int; key : int; thread : int }
  | Free_key of { key : int; thread : int }
  | Work of int

let script =
  [|
    Malloc { key = 0; size = 64; thread = 0 } (* a *);
    Work 1_000;
    Store_root { slot = 0; key = 0; thread = 0 };
    Malloc { key = 1; size = 64; thread = 1 } (* b *);
    Store_field { holder = 0; word = 0; key = 1; thread = 1 } (* a.f := b *);
    Work 1_000;
    Store_root { slot = 1; key = 1; thread = 1 };
    Free_key { key = 0; thread = 0 } (* root[0] still dangles at a *);
    Malloc { key = 2; size = 4096; thread = 0 } (* c *);
    Work 1_000;
    Clear_root { slot = 0; thread = 0 } (* a now unreferenced *);
    Clear_root { slot = 1; thread = 1 };
    Free_key { key = 1; thread = 1 };
    Store_root { slot = 2; key = 2; thread = 0 };
    Work 1_000;
    Clear_root { slot = 2; thread = 0 };
    Free_key { key = 2; thread = 0 };
  |]

let heap_step = function Work _ -> false | _ -> true

(* Commutativity points: sweep boundaries are only placed after steps
   that touch the heap — placements between two pure-compute steps
   execute identically, so the DPOR-style reduction skips them. *)
let points =
  let acc = ref [] in
  Array.iteri (fun i st -> if heap_step st then acc := i :: !acc) script;
  List.rev !acc

(* A schedule: where to start and where to finish each sweep, as
   (start_after_step, finish_after_step) pairs in step order. *)
type schedule = (int * int) list

let all_schedules () =
  let pts = Array.of_list points in
  let n = Array.length pts in
  let singles = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto a + 1 do
      singles := [ (pts.(a), pts.(b)) ] :: !singles
    done
  done;
  let doubles = ref [] in
  for a = n - 1 downto 0 do
    for b = n - 1 downto a + 1 do
      for c = n - 1 downto b + 1 do
        for d = n - 1 downto c + 1 do
          doubles :=
            [ (pts.(a), pts.(b)); (pts.(c), pts.(d)) ] :: !doubles
        done
      done
    done
  done;
  !singles @ !doubles

type outcome = {
  index : int;
  boundaries : schedule;
  signature : string;
  swept_bytes : int;
  released : int;
  requeued : int;
  violations : string list;
  races : Diagnostic.t list;
}

type report = {
  config_name : string;
  space : int;
  outcomes : outcome list;
  deterministic : bool;
  consistent : bool;
  registry : Obs.Registry.t;
  ring : Obs.Trace_ring.t;
}

let explorer_config base =
  (* Sweeps happen only where the schedule places them: suppress every
     auto trigger and never stall allocation. *)
  {
    base with
    Config.threshold = infinity;
    threshold_min_bytes = max_int;
    unmap_factor = infinity;
    pause_factor = infinity;
  }

let run_schedule config index (boundaries : schedule) =
  let machine = Alloc.Machine.create () in
  let mem = machine.Alloc.Machine.mem in
  List.iter
    (fun (base, size) -> Vmem.map mem ~addr:base ~len:size)
    Layout.root_regions;
  let ms = Instance.create ~config ~threads:2 machine in
  let je = Instance.jemalloc ms in
  let reg = Registry.create je in
  let violations = ref [] in
  (* Ground-truth theorem, checked synchronously at every release: no
     entry leaves quarantine while a recorded pointer to it exists. *)
  let on_event (e : Event.t) =
    match e.Event.kind with
    | Event.Release { sweep; addr } ->
      let n = Registry.in_pointer_count reg ~base:addr in
      if n > 0 then
        violations :=
          Printf.sprintf
            "sweep %d released %#x while %d ground-truth pointer(s) to it \
             exist (event #%d)"
            sweep addr n e.Event.seq
          :: !violations
    | _ -> ()
  in
  let s = Recorder.attach ~on_event ms ~threads:2 in
  let addr_of = Hashtbl.create 8 in
  let drop_dead_slots addr =
    Registry.drop_slots_in reg ~base:addr
      ~usable:(Alloc.Jemalloc.usable_size je addr) (fun ~slot:_ ~target:_ -> ())
  in
  let exec = function
    | Malloc { key; size; thread } ->
      Recorder.set_thread s thread;
      let addr = Instance.malloc ms size in
      (* Fresh memory is zeroed: slots recorded inside the range belong
         to a dead incarnation. *)
      drop_dead_slots addr;
      Hashtbl.replace addr_of key addr;
      Instance.tick ms
    | Store_root { slot; key; thread } -> (
      Recorder.set_thread s thread;
      match Hashtbl.find_opt addr_of key with
      | Some addr ->
        let sl = Layout.stack_base + (8 * slot) in
        Vmem.store mem sl addr;
        Registry.record_write reg ~slot:sl ~value:addr
      | None -> ())
    | Clear_root { slot; thread } ->
      Recorder.set_thread s thread;
      let sl = Layout.stack_base + (8 * slot) in
      Vmem.store mem sl 0;
      Registry.record_write reg ~slot:sl ~value:0
    | Store_field { holder; word; key; thread } -> (
      Recorder.set_thread s thread;
      match (Hashtbl.find_opt addr_of holder, Hashtbl.find_opt addr_of key) with
      | Some haddr, Some taddr ->
        let sl = haddr + (8 * word) in
        Vmem.store mem sl taddr;
        Registry.record_write reg ~slot:sl ~value:taddr
      | _ -> ())
    | Free_key { key; thread } -> (
      Recorder.set_thread s thread;
      match Hashtbl.find_opt addr_of key with
      | Some addr ->
        Hashtbl.remove addr_of key;
        (* Zeroing destroys pointers stored inside the freed object. *)
        drop_dead_slots addr;
        Instance.free ms ~thread addr
      | None -> ())
    | Work cycles ->
      Alloc.Machine.charge machine cycles;
      Instance.tick ms
  in
  Array.iteri
    (fun i st ->
      exec st;
      List.iter
        (fun (start_after, finish_after) ->
          if start_after = i then ignore (Instance.force_sweep ms);
          if finish_after = i then Instance.drain ms)
        boundaries)
    script;
  Instance.drain ms;
  Recorder.detach s;
  let evs = Recorder.events s in
  let races = Hb.analyze ~threads:2 evs in
  let count p = List.length (List.filter p evs) in
  let signature =
    String.concat ";"
      (List.map (fun (e : Event.t) -> Event.kind_signature e.Event.kind) evs)
  in
  {
    index;
    boundaries;
    signature;
    swept_bytes = (Instance.stats ms).Minesweeper.Stats.swept_bytes;
    released =
      count (fun e ->
          match e.Event.kind with Event.Release _ -> true | _ -> false);
    requeued =
      count (fun e ->
          match e.Event.kind with Event.Requeue _ -> true | _ -> false);
    violations = List.rev !violations;
    races;
  }

let render_boundaries (b : schedule) =
  String.concat ","
    (List.map (fun (s, f) -> Printf.sprintf "s%d/f%d" s f) b)

let render_outcome (o : outcome) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "  #%03d %-18s released=%d requeued=%d swept=%d sig=%s\n"
       o.index
       (render_boundaries o.boundaries)
       o.released o.requeued o.swept_bytes
       (string_of_int (Hashtbl.hash o.signature)));
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "    VIOLATION %s\n" v))
    o.violations;
  List.iter
    (fun (d : Diagnostic.t) ->
      Buffer.add_string buf
        (Printf.sprintf "    RACE %s\n" (Diagnostic.to_string d)))
    o.races;
  Buffer.contents buf

let run ?(config = Config.mostly_concurrent) ?(config_name = "?") ~schedules ()
    =
  let config = explorer_config config in
  let all = Array.of_list (all_schedules ()) in
  let space = Array.length all in
  let picked =
    if schedules >= space then Array.to_list all
    else
      (* Deterministic stride sample across the lexicographic space. *)
      List.sort_uniq compare
        (List.init schedules (fun j -> j * space / schedules))
      |> List.map (fun i -> all.(i))
  in
  let deterministic = ref true in
  let outcomes =
    List.mapi
      (fun index sched ->
        let o1 = run_schedule config index sched in
        let o2 = run_schedule config index sched in
        if render_outcome o1 <> render_outcome o2 then deterministic := false;
        o1)
      picked
  in
  (* Equivalence: schedules with the same executed synchronization
     history must account the same work. *)
  let classes = Hashtbl.create 64 in
  let consistent = ref true in
  List.iter
    (fun o ->
      match Hashtbl.find_opt classes o.signature with
      | None -> Hashtbl.replace classes o.signature o
      | Some first ->
        if
          first.swept_bytes <> o.swept_bytes
          || first.released <> o.released
          || first.requeued <> o.requeued
        then consistent := false)
    outcomes;
  let registry = Obs.Registry.create () in
  let count name v =
    Obs.Registry.Counter.incr (Obs.Registry.counter registry name) v
  in
  let gauge name v = Obs.Registry.Gauge.set (Obs.Registry.gauge registry name) v in
  let total f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  count "rc.schedule_space" space;
  count "rc.schedules_explored" (List.length outcomes);
  count "rc.violations" (total (fun o -> List.length o.violations));
  count "rc.races" (total (fun o -> List.length o.races));
  count "rc.released" (total (fun o -> o.released));
  count "rc.requeued" (total (fun o -> o.requeued));
  count "rc.swept_bytes" (total (fun o -> o.swept_bytes));
  gauge "rc.signature_classes" (Hashtbl.length classes);
  gauge "rc.deterministic" (if !deterministic then 1 else 0);
  gauge "rc.consistent" (if !consistent then 1 else 0);
  let ring = Obs.Trace_ring.create ~capacity:1024 () in
  List.iter
    (fun o ->
      let p = Obs.Trace_ring.enter ~now:o.index Obs.Trace_ring.Race "schedule" in
      Obs.Trace_ring.exit ring p ~now:o.index ~bytes:o.swept_bytes
        ~attrs:
          [
            ("schedule", o.index);
            ("violations", List.length o.violations);
            ("races", List.length o.races);
          ]
        ())
    outcomes;
  {
    config_name;
    space;
    outcomes;
    deterministic = !deterministic;
    consistent = !consistent;
    registry;
    ring;
  }

let violations r = List.concat_map (fun o -> o.violations) r.outcomes
let races r = List.concat_map (fun o -> o.races) r.outcomes

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "racecheck explore: config=%s space=%d explored=%d\n"
       r.config_name r.space (List.length r.outcomes));
  List.iter (fun o -> Buffer.add_string buf (render_outcome o)) r.outcomes;
  Buffer.add_string buf
    (Printf.sprintf
       "summary: violations=%d races=%d classes=%d deterministic=%b \
        consistent=%b\n"
       (List.length (violations r))
       (List.length (races r))
       (List.length
          (List.sort_uniq compare (List.map (fun o -> o.signature) r.outcomes)))
       r.deterministic r.consistent);
  Buffer.contents buf
