type tid =
  | Mutator of int
  | Sweeper
  | Stw

let tid_index ~threads = function
  | Mutator i ->
    if i < 0 || i >= threads then
      invalid_arg (Printf.sprintf "Event.tid_index: mutator %d of %d" i threads);
    i
  | Sweeper -> threads
  | Stw -> threads + 1

let tid_count ~threads = threads + 2

let tid_to_string = function
  | Mutator i -> Printf.sprintf "mutator-%d" i
  | Sweeper -> "sweeper"
  | Stw -> "stw"

type kind =
  | Push of { raw_thread : int; addr : int; usable : int }
  | Flush of { thread : int }
  | Lock_in of { sweep : int; entries : (int * int) list }
  | Mark_read of { sweep : int; base : int }
  | Mark_done of { sweep : int }
  | Write of { addr : int; value : int; gen : int }
  | Fence of { sweep : int }
  | Rescan_read of { sweep : int; base : int }
  | Release of { sweep : int; addr : int }
  | Requeue of { sweep : int; addr : int }
  | Sweep_done of { sweep : int }
  | Serve of { addr : int; usable : int }
  | Stage of { sweep : int; stage : string; enter : bool }

type t = {
  seq : int;
  tid : tid;
  kind : kind;
}

let kind_to_string = function
  | Push { raw_thread; addr; usable } ->
    Printf.sprintf "push(%#x+%d from thread %d)" addr usable raw_thread
  | Flush { thread } -> Printf.sprintf "flush(thread %d)" thread
  | Lock_in { sweep; entries } ->
    Printf.sprintf "lock-in(sweep %d, %d entries)" sweep (List.length entries)
  | Mark_read { sweep; base } ->
    Printf.sprintf "mark-read(sweep %d, page %#x)" sweep base
  | Mark_done { sweep } -> Printf.sprintf "mark-done(sweep %d)" sweep
  | Write { addr; value; gen } ->
    Printf.sprintf "write(%#x := %#x, gen %d)" addr value gen
  | Fence { sweep } -> Printf.sprintf "fence(sweep %d)" sweep
  | Rescan_read { sweep; base } ->
    Printf.sprintf "rescan-read(sweep %d, page %#x)" sweep base
  | Release { sweep; addr } -> Printf.sprintf "release(sweep %d, %#x)" sweep addr
  | Requeue { sweep; addr } -> Printf.sprintf "requeue(sweep %d, %#x)" sweep addr
  | Sweep_done { sweep } -> Printf.sprintf "sweep-done(%d)" sweep
  | Serve { addr; usable } -> Printf.sprintf "serve(%#x+%d)" addr usable
  | Stage { sweep; stage; enter } ->
    Printf.sprintf "stage-%s(sweep %d, %s)" (if enter then "enter" else "exit")
      sweep stage

(* Compact, clock-free rendering: two schedules with equal signatures
   executed the same synchronization history. *)
let kind_signature = function
  | Push { raw_thread; addr; usable } ->
    Printf.sprintf "P%d:%x+%d" raw_thread addr usable
  | Flush { thread } -> Printf.sprintf "F%d" thread
  | Lock_in { sweep; entries } ->
    Printf.sprintf "L%d[%s]" sweep
      (String.concat ","
         (List.map (fun (a, u) -> Printf.sprintf "%x+%d" a u) entries))
  | Mark_read { sweep; base } -> Printf.sprintf "m%d:%x" sweep base
  | Mark_done { sweep } -> Printf.sprintf "M%d" sweep
  | Write { addr; value; gen = _ } -> Printf.sprintf "W%x=%x" addr value
  | Fence { sweep } -> Printf.sprintf "B%d" sweep
  | Rescan_read { sweep; base } -> Printf.sprintf "r%d:%x" sweep base
  | Release { sweep; addr } -> Printf.sprintf "R%d:%x" sweep addr
  | Requeue { sweep; addr } -> Printf.sprintf "Q%d:%x" sweep addr
  | Sweep_done { sweep } -> Printf.sprintf "D%d" sweep
  | Serve { addr; usable } -> Printf.sprintf "S%x+%d" addr usable
  | Stage { sweep; stage; enter } ->
    Printf.sprintf "G%d:%s%s" sweep stage (if enter then "+" else "-")

let to_string e =
  Printf.sprintf "#%d %s %s" e.seq (tid_to_string e.tid) (kind_to_string e.kind)
