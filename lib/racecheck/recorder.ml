module Instance = Minesweeper.Instance
module Quarantine = Minesweeper.Quarantine
module Trace = Workloads.Trace
module Diagnostic = Sanitizer.Diagnostic

(* ------------------------------------------------------------------ *)
(* Observer session: subscribes to every instrumentation hook of one
   instance and linearises what they report into an Event.t stream.    *)

type session = {
  ms : Instance.t;
  threads : int;
  funnel : Mutex.t;
      (** serialises [emit]: every observer callback funnels through one
          append. Under parallel marking ([Config.domains > 1]) all
          sync events are still emitted by the coordinator domain in
          canonical page order — workers only fill private buffers — but
          the lock makes the funnel safe by construction should a future
          hook ever fire off-coordinator, so [check --races] stays sound
          for any [--domains] value. *)
  mutable events_rev : Event.t list;
  mutable seq : int;
  mutable current : int;  (** mutator issuing the op being replayed *)
  mutable cur_sweep : int;
  mutable pending_lock : (int * int) list;
  mutable window_writes : int;
  on_event : (Event.t -> unit) option;
}

let mutator s = Event.Mutator (if s.current >= 0 && s.current < s.threads then s.current else 0)

let emit s tid kind =
  Mutex.lock s.funnel;
  let e = { Event.seq = s.seq; tid; kind } in
  s.events_rev <- e :: s.events_rev;
  s.seq <- s.seq + 1;
  Mutex.unlock s.funnel;
  match s.on_event with
  | Some f -> f e
  | None -> ()

let attach ?on_event ms ~threads =
  let s =
    {
      ms;
      threads;
      funnel = Mutex.create ();
      events_rev = [];
      seq = 0;
      current = 0;
      cur_sweep = 0;
      pending_lock = [];
      window_writes = 0;
      on_event;
    }
  in
  let machine = Instance.machine ms in
  let mem = machine.Alloc.Machine.mem in
  (* Mutator writes matter only inside the sweep window: before lock-in
     the frozen set reflects them (acquire edge), after completion the
     release decision is already made. *)
  Vmem.set_write_observer mem (fun ~addr ~value ~gen ->
      if Instance.sweep_in_progress ms then begin
        s.window_writes <- s.window_writes + 1;
        emit s (mutator s) (Event.Write { addr; value; gen })
      end);
  Quarantine.set_observer (Instance.quarantine ms) (function
    | Quarantine.Pushed { thread = _; raw_thread; addr; usable } ->
      emit s (mutator s) (Event.Push { raw_thread; addr; usable })
    | Quarantine.Flushed { thread; entries = _ } ->
      emit s (mutator s) (Event.Flush { thread })
    | Quarantine.Locked_in { entries } ->
      (* Instance confirms with Sweep_locked right after; combine there
         so the event carries the sweep number. *)
      s.pending_lock <- entries
    | Quarantine.Requeued { addr } ->
      emit s Event.Sweeper (Event.Requeue { sweep = s.cur_sweep; addr })
    | Quarantine.Released { addr } ->
      emit s Event.Sweeper (Event.Release { sweep = s.cur_sweep; addr }));
  Instance.set_sync_observer ms (function
    | Instance.Sweep_locked { sweep; entries = _ } ->
      s.cur_sweep <- sweep;
      emit s Event.Sweeper (Event.Lock_in { sweep; entries = s.pending_lock });
      s.pending_lock <- []
    | Instance.Mark_page _ | Instance.Rescan_page _ ->
      (* The sim's marking runs atomically w.r.t. mutator ops, so the
         per-page reads carry no ordering information here; dropping
         them bounds the stream (Protocol streams keep them). *)
      ()
    | Instance.Mark_completed { sweep; scanned_bytes = _ } ->
      emit s Event.Sweeper (Event.Mark_done { sweep })
    | Instance.Stw_fence { sweep } -> emit s Event.Stw (Event.Fence { sweep })
    | Instance.Stage_boundary { sweep; stage; enter } ->
      emit s Event.Sweeper
        (Event.Stage
           { sweep; stage = Minesweeper.Pipeline.stage_name stage; enter })
    | Instance.Sweep_completed { sweep } ->
      emit s Event.Sweeper (Event.Sweep_done { sweep }));
  Alloc.Jemalloc.set_observer (Instance.jemalloc ms) (function
    | Alloc.Jemalloc.Served { addr; usable; from_tcache = _ } ->
      emit s (mutator s) (Event.Serve { addr; usable })
    | Alloc.Jemalloc.Recycled _ -> ());
  s

let detach s =
  let machine = Instance.machine s.ms in
  Vmem.clear_write_observer machine.Alloc.Machine.mem;
  Quarantine.clear_observer (Instance.quarantine s.ms);
  Instance.clear_sync_observer s.ms;
  Alloc.Jemalloc.clear_observer (Instance.jemalloc s.ms)

let events s = List.rev s.events_rev
let set_thread s t = s.current <- t

(* ------------------------------------------------------------------ *)
(* Trace replay under observation                                      *)

type report = {
  trace_name : string;
  config_name : string;
  threads : int;
  ops : int;
  sweeps : int;
  events : int;
  window_writes : int;
  diags : Diagnostic.t list;
  stream : Event.t list;
}

let run ?(config = Minesweeper.Config.default) ?(config_name = "?")
    (trace : Trace.t) =
  let threads = max 1 trace.Trace.threads in
  let machine = Alloc.Machine.create () in
  let mem = machine.Alloc.Machine.mem in
  List.iter
    (fun (base, size) -> Vmem.map mem ~addr:base ~len:size)
    Layout.root_regions;
  let ms = Instance.create ~config ~threads machine in
  let je = Instance.jemalloc ms in
  let s = attach ms ~threads in
  let addr_of = Hashtbl.create 4096 in
  let resolve_loc = function
    | Trace.Root w ->
      Some (Layout.stack_base + (8 * (w mod Trace.root_window_words)))
    | Trace.Field (id, w) -> (
      match Hashtbl.find_opt addr_of id with
      | Some (addr, size) when size >= 8 -> Some (addr + (8 * (w mod (size / 8))))
      | Some _ | None -> None)
  in
  let writable slot =
    Vmem.is_mapped mem slot
    && Vmem.is_committed mem slot
    && Vmem.protection mem slot = Vmem.Read_write
  in
  Array.iter
    (fun op ->
      match op with
      | Trace.Alloc { id; size; site = _ } ->
        s.current <- 0;
        let addr = Instance.malloc ms size in
        Hashtbl.replace addr_of id (addr, size);
        Instance.tick ms
      | Trace.Free { id; thread } -> (
        match Hashtbl.find_opt addr_of id with
        | Some (addr, _) ->
          Hashtbl.remove addr_of id;
          s.current <- (if thread >= 0 && thread < threads then thread else 0);
          Instance.free ms ~thread addr;
          s.current <- 0
        | None -> ())
      | Trace.Store_ptr { loc; target } -> (
        match (resolve_loc loc, Hashtbl.find_opt addr_of target) with
        | Some slot, Some (taddr, _) when writable slot ->
          Vmem.store mem slot taddr
        | _ -> ())
      | Trace.Clear_ptr { loc; target } -> (
        match (resolve_loc loc, Hashtbl.find_opt addr_of target) with
        | Some slot, Some (taddr, _) when writable slot ->
          if Vmem.load mem slot = taddr then Vmem.store mem slot 0
        | _ -> ())
      | Trace.Store_data { loc; value } -> (
        match resolve_loc loc with
        | Some slot when writable slot ->
          let concrete =
            if value >= 0 then value
            else
              match Hashtbl.find_opt addr_of (-value - 1) with
              | Some (addr, _) -> addr
              | None -> 0
          in
          Vmem.store mem slot concrete
        | _ -> ())
      | Trace.Work cycles -> Alloc.Machine.charge machine cycles)
    trace.Trace.ops;
  Instance.drain ms;
  detach s;
  ignore je;
  let evs = events s in
  let diags = Hb.analyze ~threads evs in
  (* Export through the instance's own observability: rc.* counters next
     to the ms.* ones, race spans in the trace ring. *)
  let reg = Instance.registry ms in
  let count name v = Obs.Registry.Counter.incr (Obs.Registry.counter reg name) v in
  count "rc.events" (List.length evs);
  count "rc.window_writes" s.window_writes;
  count "rc.races" (List.length diags);
  let ring = Instance.trace_ring ms in
  let now = Alloc.Machine.now machine in
  List.iter
    (fun (d : Diagnostic.t) ->
      let p = Obs.Trace_ring.enter ~now Obs.Trace_ring.Race d.Diagnostic.rule in
      Obs.Trace_ring.exit ring p ~now
        ~attrs:[ ("event", d.Diagnostic.op_index) ]
        ())
    diags;
  {
    trace_name = trace.Trace.name;
    config_name;
    threads;
    ops = Array.length trace.Trace.ops;
    sweeps = (Instance.stats ms).Minesweeper.Stats.sweeps;
    events = List.length evs;
    window_writes = s.window_writes;
    diags;
    stream = evs;
  }
