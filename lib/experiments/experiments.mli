(** Regeneration of every table and figure in the paper's evaluation.

    Each [figN] function returns the rendered text of the corresponding
    paper figure, computed from simulation runs. Runs are memoised in the
    {!env}, so figures sharing data (e.g. Figures 7/9/10/11/12/13/14 all
    reuse the SPEC CPU2006 matrix) only pay once.

    See DESIGN.md section 3 for the experiment index and EXPERIMENTS.md
    for measured-vs-paper values. *)

type env

val make_env : ?scale:float -> ?verbose:bool -> unit -> env
(** [scale] shortens every trace proportionally (e.g. [0.2] for smoke
    runs); [verbose] logs each simulation run to stderr as it starts. *)

val scheme_keys : string list
(** All scheme keys usable with {!run}: ["baseline"], ["minesweeper"],
    ["minesweeper-mostly"], ["minesweeper-incremental"], ["markus"],
    ["ffmalloc"], the optimisation levels ["ms-unopt"], ["ms-zero"],
    ["ms-unmap"], ["ms-conc"], and the partial versions
    ["ms-partial-base"], ["ms-partial-uz"], ["ms-partial-q"],
    ["ms-partial-c"], ["ms-partial-s"]. *)

val run : env -> suite:string -> bench:string -> scheme:string ->
  Workloads.Driver.result
(** Memoised single run. *)

val fig1 : env -> string
(** Use-after-free vulnerabilities per year (NVD + Linux kernel). *)

val fig2 : env -> string
(** Exploit life-cycle: attack outcomes under each scheme. *)

val fig7 : env -> string
(** SPEC CPU2006 slowdown, all schemes (incl. literature-quoted). *)

val fig8 : env -> string
(** Memory usage over time for sphinx3. *)

val fig9 : env -> string
(** Slowdown vs MarkUs and FFmalloc (re-run head-to-head). *)

val fig10 : env -> string
(** SPEC CPU2006 average memory overhead, all schemes. *)

val fig11 : env -> string
(** Average and peak memory overhead (MineSweeper). *)

val fig12 : env -> string
(** Additional CPU utilisation (MineSweeper). *)

val fig13 : env -> string
(** Fully vs mostly concurrent slowdown. *)

val fig14 : env -> string
(** Number of sweeps triggered per benchmark. *)

val fig15 : env -> string
(** Run-time overhead under cumulative optimisation levels. *)

val fig16 : env -> string
(** Memory overhead under cumulative optimisation levels. *)

val fig17 : env -> string
(** Source of overheads: six partial versions on five benchmarks. *)

val fig18 : env -> string
(** SPECspeed2017 time and memory overheads. *)

val fig19 : env -> string
(** mimalloc-bench stress-test time and memory overheads. *)

val scudo_table : env -> string
(** Section 7: MineSweeper over the Scudo backend vs plain Scudo. *)

val ptrtrack_table : env -> string
(** Extension: CRCount / pSweeper / DangSan implemented over the
    instrumented-store hook and measured against MineSweeper, next to
    the values the paper quotes. *)

val ablation_threshold : env -> string
(** Extension: sensitivity of time/memory to the sweep threshold. *)

val ablation_granule : env -> string
(** Extension: shadow-map precision vs aliasing-induced failed frees. *)

val ablation_helpers : env -> string
(** Extension: sensitivity to the number of sweeper helper threads. *)

val incremental_sweep : env -> string
(** Extension: full-scan vs incremental marking phase on the most
    sweep-heavy SPEC CPU2006 and mimalloc-bench profiles — slowdown,
    bytes swept per mode, pages skipped vs rescanned and the summary
    cache footprint. Prints a REGRESSION marker (grepped by check.sh) if
    incremental mode fails to sweep strictly fewer bytes than full
    mode. *)

val parallel_mark : env -> string
(** Extension: mark-phase scaling of the parallel marking engine
    ([lib/parsweep]) at 1/2/4/8 domains on sweep-heavy mimalloc-bench
    and SPEC profiles. Verifies swept bytes are identical at every
    domain count and reports the modeled critical-path speedup (single
    marker streams 4 B/cycle against a 16 B/cycle DRAM wall, so scaling
    saturates at 4 domains). Prints a REGRESSION marker (grepped by
    check.sh) if any domain count diverges or no profile reaches 1.5x
    at 4 domains. *)

val static_bounds : env -> string
(** Extension: static dataflow analysis vs dynamic replay on every
    mimalloc-bench profile. The flowcheck analyzer computes quarantine
    occupancy / swept-bytes / sweep-count bounds and retention
    predictions from one replay-free trace pass; a real replay provides
    the measured ms.* telemetry and the differential sweep oracle the
    ground-truth findings. Prints a REGRESSION marker (grepped by
    check.sh) if any measured value exceeds its static bound or any
    dynamic oracle finding was not statically predicted. *)

val tail_latency : env -> string
(** Extension: the server-traffic workload family (steady / bursty /
    diurnal / spike / slow-leak) under the open-loop load generator —
    p50/p99/p999 total and stall-induced latency per backend (histogram
    quantiles with within-bucket interpolation), max queue backlog and
    served fraction, plus the vtable-hijack attack mounted under live
    traffic. Prints a REGRESSION marker (grepped by check.sh) if any
    quantile family is non-monotone, stall latency exceeds total
    latency, arrivals differ across backends (the loop closed), the
    baseline is not exploited, or a MineSweeper backend is. *)

val all_figures : (string * (env -> string)) list
(** In paper order; keys are ["fig1"], ["fig2"], ["fig7"] ... ["fig19"],
    plus ["scudo"], ["ptrtrack"], ["ablation-threshold"] and
    ["ablation-helpers"]. *)
