type env = {
  scale : float;
  verbose : bool;
  cache : (string, Workloads.Driver.result) Hashtbl.t;
  srv_cache : (string, Workloads.Server.result) Hashtbl.t;
}

let make_env ?(scale = 1.0) ?(verbose = false) () =
  { scale; verbose; cache = Hashtbl.create 256; srv_cache = Hashtbl.create 64 }

let scheme_keys =
  [
    "baseline"; "minesweeper"; "minesweeper-mostly"; "minesweeper-incremental";
    "markus"; "ffmalloc";
    "ms-unopt"; "ms-zero"; "ms-unmap"; "ms-conc"; "ms-partial-base";
    "ms-partial-uz"; "ms-partial-q"; "ms-partial-c"; "ms-partial-s";
    "scudo"; "scudo-minesweeper"; "crcount"; "psweeper"; "dangsan";
  ]

let scheme_of_key = function
  | "baseline" -> Workloads.Harness.Baseline
  | "minesweeper" -> Workloads.Harness.Mine_sweeper Minesweeper.Config.default
  | "minesweeper-mostly" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.mostly_concurrent
  | "minesweeper-incremental" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.incremental
  | "minesweeper-incremental-mostly" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.incremental_mostly
  | "markus" -> Workloads.Harness.Mark_us
  | "ffmalloc" -> Workloads.Harness.Ff_malloc
  | "ms-unopt" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.unoptimised
  | "ms-zero" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.plus_zeroing
  | "ms-unmap" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.plus_unmapping
  | "ms-conc" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.plus_concurrency
  | "ms-partial-base" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.partial_base
  | "ms-partial-uz" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.partial_unmap_zero
  | "ms-partial-q" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.partial_quarantine
  | "ms-partial-c" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.partial_concurrency
  | "ms-partial-s" ->
    Workloads.Harness.Mine_sweeper Minesweeper.Config.partial_sweep
  | "crcount" -> Workloads.Harness.Cr_count
  | "psweeper" -> Workloads.Harness.P_sweeper
  | "dangsan" -> Workloads.Harness.Dang_san
  | "scudo" -> Workloads.Harness.Scudo_baseline
  | "scudo-minesweeper" ->
    Workloads.Harness.Scudo_sweeper Minesweeper.Config.default
  | "dlmalloc" -> Workloads.Harness.Dl_baseline
  | "dlmalloc-minesweeper" ->
    Workloads.Harness.Dl_sweeper Minesweeper.Config.default
  | key -> invalid_arg ("unknown scheme key " ^ key)

let profiles_of_suite = function
  | "spec2006" -> Workloads.Spec2006.all
  | "spec2017" -> Workloads.Spec2017.all
  | "mimalloc" -> Workloads.Mimalloc_bench.all
  | suite -> invalid_arg ("unknown suite " ^ suite)

let run_scheme env ~suite ~bench ~key scheme =
  let cache_key = Printf.sprintf "%s/%s/%s" suite bench key in
  match Hashtbl.find_opt env.cache cache_key with
  | Some r -> r
  | None ->
    if env.verbose then Printf.eprintf "  [run] %s\n%!" cache_key;
    let profile =
      List.find
        (fun p -> p.Workloads.Profile.name = bench)
        (profiles_of_suite suite)
    in
    let r = Workloads.Driver.run ~ops_scale:env.scale profile scheme in
    Hashtbl.replace env.cache cache_key r;
    r

let run env ~suite ~bench ~scheme =
  run_scheme env ~suite ~bench ~key:scheme (scheme_of_key scheme)

let baseline_for env ~suite ~bench = run env ~suite ~bench ~scheme:"baseline"

let slowdown_of env ~suite ~bench ~scheme =
  let baseline = baseline_for env ~suite ~bench in
  Workloads.Driver.slowdown ~baseline (run env ~suite ~bench ~scheme)

let memory_of env ~suite ~bench ~scheme =
  let baseline = baseline_for env ~suite ~bench in
  Workloads.Driver.memory_overhead ~baseline (run env ~suite ~bench ~scheme)

let buf_figure title body =
  Printf.sprintf "==== %s ====\n\n%s\n" title body

(* ------------------------------------------------------------------ *)

let fig1 _env =
  let render title data =
    let rows =
      List.map
        (fun { Report.Literature.year; uaf_count; proportion_percent } ->
          ( string_of_int year,
            [ float_of_int uaf_count; proportion_percent ] ))
        data
    in
    let table =
      Report.Table.create ~columns:[ "year"; "UAF+DF CVEs"; "% of all" ]
    in
    List.iter (fun (y, vs) -> Report.Table.add_row table y vs) rows;
    title ^ "\n" ^ Report.Table.render table ^ "\n"
    ^ Report.Chart.bars
        (List.map
           (fun { Report.Literature.year; uaf_count; _ } ->
             (string_of_int year, float_of_int uaf_count))
           data)
  in
  buf_figure "Figure 1: reported use-after-free / double-free CVEs by year"
    (render "(a) National Vulnerability Database" Report.Literature.nvd_uaf
    ^ "\n"
    ^ render "(b) Linux kernel" Report.Literature.linux_uaf)

let fresh_attack_stack scheme_key =
  let machine = Alloc.Machine.create () in
  List.iter
    (fun (base, size) ->
      Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  Workloads.Harness.build (scheme_of_key scheme_key) ~threads:1 machine

let fig2 _env =
  let schemes =
    [
      "baseline"; "minesweeper"; "minesweeper-mostly"; "markus"; "ffmalloc";
      "scudo"; "scudo-minesweeper"; "crcount"; "psweeper"; "dangsan";
    ]
  in
  let line scheme =
    let hijack = Attack.vtable_hijack (fresh_attack_stack scheme) in
    let dfree = Attack.double_free_hijack (fresh_attack_stack scheme) in
    let reuse = Attack.reuse_after_clear (fresh_attack_stack scheme) in
    Printf.sprintf "%-20s hijack: %-52s double-free: %-52s reuse-after-clear: %b"
      scheme
      (Attack.describe hijack)
      (Attack.describe dfree)
      reuse
  in
  let unlink_lines =
    List.map
      (fun scheme ->
        Printf.sprintf "%-22s unlink (in-band metadata): %s" scheme
          (Attack.describe_unlink
             (Attack.unlink_corruption (fresh_attack_stack scheme))))
      [ "dlmalloc"; "dlmalloc-minesweeper"; "baseline" ]
  in
  buf_figure
    "Figure 2: exploiting the use-after-free of Listing 1 (per scheme)"
    (String.concat "\n" (List.map line schemes)
    ^ "\n\n"
    ^ String.concat "\n" unlink_lines
    ^ "\n")

(* ------------------------------------------------------------------ *)

let spec2006_names = Workloads.Spec2006.names

let geomean_row values = Report.Summary.geomean values

let fig7 env =
  let measured = [ "markus"; "ffmalloc"; "minesweeper" ] in
  let columns =
    ("benchmark" :: Report.Literature.quoted_schemes)
    @ [ "MarkUs"; "FFmalloc"; "MineSweeper" ]
  in
  let table = Report.Table.create ~columns in
  let acc = Hashtbl.create 8 in
  let note scheme v =
    Hashtbl.replace acc scheme (v :: Option.value ~default:[] (Hashtbl.find_opt acc scheme))
  in
  List.iter
    (fun bench ->
      let lit =
        List.map
          (fun scheme ->
            match Report.Literature.slowdown ~scheme ~bench with
            | Some v ->
              note scheme v;
              v
            | None -> Float.nan)
          Report.Literature.quoted_schemes
      in
      let own =
        List.map
          (fun scheme ->
            let v = slowdown_of env ~suite:"spec2006" ~bench ~scheme in
            note scheme v;
            v)
          measured
      in
      Report.Table.add_row table bench (lit @ own))
    spec2006_names;
  Report.Table.add_row table "geomean"
    (List.map
       (fun scheme ->
         geomean_row (Option.value ~default:[] (Hashtbl.find_opt acc scheme)))
       (Report.Literature.quoted_schemes @ measured));
  let ms = Option.value ~default:[] (Hashtbl.find_opt acc "minesweeper") in
  buf_figure "Figure 7: slowdown for SPEC CPU2006 (C/C++)"
    (Report.Table.render table
    ^ Printf.sprintf
        "\nheadline: MineSweeper geomean slowdown %.1f %% (paper: 5.4 %%), \
         worst case %.1f %% (paper: 72.7 %% for xalancbmk)\n"
        (Report.Summary.percent_overhead (geomean_row ms))
        (Report.Summary.percent_overhead (Report.Summary.worst ms)))

let fig8 env =
  let series =
    List.map
      (fun scheme ->
        let r = run env ~suite:"spec2006" ~bench:"sphinx3" ~scheme in
        ( (match scheme with
          | "baseline" -> "Baseline (JeMalloc)"
          | "ffmalloc" -> "FFMalloc"
          | _ -> "MineSweeper"),
          Array.map
            (fun (x, rss) -> (x, float_of_int rss /. 1048576.))
            r.Workloads.Driver.rss_trace ))
      [ "baseline"; "ffmalloc"; "minesweeper" ]
  in
  buf_figure "Figure 8: memory usage over time for sphinx3 (MiB)"
    (Report.Chart.line ~series ())

let fig9 env =
  let schemes = [ "markus"; "ffmalloc"; "minesweeper" ] in
  let rows =
    List.map
      (fun bench ->
        ( bench,
          List.map
            (fun scheme -> slowdown_of env ~suite:"spec2006" ~bench ~scheme)
            schemes ))
      spec2006_names
  in
  let geo =
    List.mapi
      (fun i _ -> geomean_row (List.map (fun (_, vs) -> List.nth vs i) rows))
      schemes
  in
  buf_figure "Figure 9: slowdown versus MarkUs and FFmalloc (re-run)"
    (Report.Chart.grouped_bars ~series:[ "MarkUs"; "FFmalloc"; "MineSweeper" ]
       (rows @ [ ("geomean", geo) ]))

let fig10 env =
  let measured = [ "markus"; "ffmalloc"; "minesweeper" ] in
  let columns =
    ("benchmark" :: Report.Literature.quoted_schemes)
    @ [ "MarkUs"; "FFmalloc"; "MineSweeper" ]
  in
  let table = Report.Table.create ~columns in
  let acc = Hashtbl.create 8 in
  let note scheme v =
    Hashtbl.replace acc scheme (v :: Option.value ~default:[] (Hashtbl.find_opt acc scheme))
  in
  List.iter
    (fun bench ->
      let lit =
        List.map
          (fun scheme ->
            match Report.Literature.memory_overhead ~scheme ~bench with
            | Some v ->
              note scheme v;
              v
            | None -> Float.nan)
          Report.Literature.quoted_schemes
      in
      let own =
        List.map
          (fun scheme ->
            let v = memory_of env ~suite:"spec2006" ~bench ~scheme in
            note scheme v;
            v)
          measured
      in
      Report.Table.add_row table bench (lit @ own))
    spec2006_names;
  Report.Table.add_row table "geomean"
    (List.map
       (fun scheme ->
         geomean_row (Option.value ~default:[] (Hashtbl.find_opt acc scheme)))
       (Report.Literature.quoted_schemes @ measured));
  let ms = Option.value ~default:[] (Hashtbl.find_opt acc "minesweeper") in
  let ff = Option.value ~default:[] (Hashtbl.find_opt acc "ffmalloc") in
  buf_figure "Figure 10: average memory overhead for SPEC CPU2006"
    (Report.Table.render table
    ^ Printf.sprintf
        "\nheadline: MineSweeper geomean memory overhead %.1f %% (paper: \
         11.1 %%); FFmalloc geomean %.2fx with worst case %.1fx (paper: \
         3.44x / 11.7x)\n"
        (Report.Summary.percent_overhead (geomean_row ms))
        (geomean_row ff) (Report.Summary.worst ff))

let fig11 env =
  let rows =
    List.map
      (fun bench ->
        let baseline = baseline_for env ~suite:"spec2006" ~bench in
        let r = run env ~suite:"spec2006" ~bench ~scheme:"minesweeper" in
        ( bench,
          [
            Workloads.Driver.memory_overhead ~baseline r;
            Workloads.Driver.peak_memory_overhead ~baseline r;
          ] ))
      spec2006_names
  in
  let geo i = geomean_row (List.map (fun (_, vs) -> List.nth vs i) rows) in
  let table =
    Report.Table.create ~columns:[ "benchmark"; "average"; "peak" ]
  in
  List.iter (fun (b, vs) -> Report.Table.add_row table b vs) rows;
  Report.Table.add_row table "geomean" [ geo 0; geo 1 ];
  buf_figure "Figure 11: memory overhead for SPEC CPU2006 (MineSweeper)"
    (Report.Table.render table
    ^ Printf.sprintf "\npaper: geomean 11.1 %% average, 17.7 %% peak\n")

let fig12 env =
  let rows =
    List.map
      (fun bench ->
        let baseline = baseline_for env ~suite:"spec2006" ~bench in
        let r = run env ~suite:"spec2006" ~bench ~scheme:"minesweeper" in
        (bench, Workloads.Driver.cpu_overhead ~baseline r))
      spec2006_names
  in
  let geo = geomean_row (List.map snd rows) in
  (* Section 5.2's DRAM-traffic check: total bytes swept per wall cycle,
     as a share of the machine's ~16 B/cycle memory bandwidth. *)
  let dram_share =
    (* swept volume ~ sweeps x resident set; capacity ~16 B/cycle *)
    let swept, wall =
      List.fold_left
        (fun (s, w) bench ->
          let r = run env ~suite:"spec2006" ~bench ~scheme:"minesweeper" in
          ( s
            +. (float_of_int r.Workloads.Driver.sweeps
               *. r.Workloads.Driver.avg_rss),
            w +. float_of_int r.Workloads.Driver.wall ))
        (0., 0.) spec2006_names
    in
    100. *. swept /. (wall *. 16.)
  in
  buf_figure "Figure 12: additional CPU usage (MineSweeper)"
    (Report.Chart.bars (rows @ [ ("geomean", geo) ])
    ^ Printf.sprintf
        "\npaper: geomean 9.6 %%, maximum 129 %% (xalancbmk); sweeping in \
         background threads is the source\nDRAM-traffic check (Section \
         5.2): sweeps consume ~%.1f %% of the machine's memory bandwidth \
         across the suite - no significant impact, as the paper found\n"
        dram_share)

let fig13 env =
  let rows =
    List.map
      (fun bench ->
        ( bench,
          [
            slowdown_of env ~suite:"spec2006" ~bench ~scheme:"minesweeper";
            slowdown_of env ~suite:"spec2006" ~bench ~scheme:"minesweeper-mostly";
          ] ))
      spec2006_names
  in
  let geo i = geomean_row (List.map (fun (_, vs) -> List.nth vs i) rows) in
  buf_figure
    "Figure 13: slowdown of fully concurrent and mostly concurrent versions"
    (Report.Chart.grouped_bars
       ~series:[ "Fully concurrent"; "Mostly concurrent (STW)" ]
       (rows @ [ ("geomean", [ geo 0; geo 1 ]) ])
    ^ Printf.sprintf
        "\nheadline: mostly concurrent geomean %.1f %% (paper: 8.2 %%) vs \
         fully concurrent %.1f %% (paper: 5.4 %%)\n"
        (Report.Summary.percent_overhead (geo 1))
        (Report.Summary.percent_overhead (geo 0)))

let fig14 env =
  let rows =
    List.map
      (fun bench ->
        let r = run env ~suite:"spec2006" ~bench ~scheme:"minesweeper" in
        (bench, float_of_int r.Workloads.Driver.sweeps))
      spec2006_names
  in
  buf_figure "Figure 14: number of sweeps triggered (fully concurrent)"
    (Report.Chart.bars rows
    ^ "\npaper: omnetpp highest (1075), then xalancbmk (654); traces here \
       are scaled down ~1000x, so counts are proportionally lower\n")

(* ------------------------------------------------------------------ *)

let optimisation_levels =
  [
    ("Unoptimised", "ms-unopt");
    ("+ Zeroing", "ms-zero");
    ("+ Unmapping", "ms-unmap");
    ("+ Concurrency", "ms-conc");
    ("+ Purging", "minesweeper");
  ]

let level_cell env ~bench ~scheme ~metric =
  let baseline = baseline_for env ~suite:"spec2006" ~bench in
  let r = run env ~suite:"spec2006" ~bench ~scheme in
  let v =
    match metric with
    | `Time -> Workloads.Driver.slowdown ~baseline r
    | `Memory -> Workloads.Driver.memory_overhead ~baseline r
  in
  if r.Workloads.Driver.oom_killed then Printf.sprintf ">%.1f" v
  else Printf.sprintf "%.3f" v

let levels_figure env ~metric ~title ~paper_note =
  let columns = "benchmark" :: List.map fst optimisation_levels in
  let table = Report.Table.create ~columns in
  List.iter
    (fun bench ->
      Report.Table.add_text_row table bench
        (List.map
           (fun (_, scheme) -> level_cell env ~bench ~scheme ~metric)
           optimisation_levels))
    spec2006_names;
  let geo scheme =
    geomean_row
      (List.filter_map
         (fun bench ->
           let baseline = baseline_for env ~suite:"spec2006" ~bench in
           let r = run env ~suite:"spec2006" ~bench ~scheme in
           if r.Workloads.Driver.oom_killed then None
           else
             Some
               (match metric with
               | `Time -> Workloads.Driver.slowdown ~baseline r
               | `Memory -> Workloads.Driver.memory_overhead ~baseline r))
         spec2006_names)
  in
  Report.Table.add_text_row table "geomean*"
    (List.map
       (fun (_, scheme) -> Printf.sprintf "%.3f" (geo scheme))
       optimisation_levels);
  buf_figure title
    (Report.Table.render table
    ^ "\n(* geomean over runs that stayed within the memory budget; '>' \
       marks runs killed for exhausting it, like the paper's unoptimised \
       gcc/milc)\n" ^ paper_note)

let fig15 env =
  levels_figure env ~metric:`Time
    ~title:"Figure 15: run-time overhead under different optimisation levels"
    ~paper_note:
      "paper: unoptimised runs are slow or die; +concurrency cuts time to \
       5.0 %, +purging settles at 5.4 %\n"

let fig16 env =
  levels_figure env ~metric:`Memory
    ~title:"Figure 16: memory overhead under different optimisation levels"
    ~paper_note:
      "paper: zeroing and unmapping rescue memory (21.1 %), concurrency \
       costs some back (24.1 %), purging settles at 11.1 %\n"

let fig17_benches = [ "dealII"; "gcc"; "omnetpp"; "perlbench"; "xalancbmk" ]

let partial_versions =
  [
    ("Base overheads", "ms-partial-base");
    ("+ Unmapping + Zeroing", "ms-partial-uz");
    ("+ Quarantine", "ms-partial-q");
    ("+ Concurrency", "ms-partial-c");
    ("+ Sweep", "ms-partial-s");
    ("+ Failed Frees", "minesweeper");
  ]

let fig17 env =
  let section metric label =
    let columns = "version" :: fig17_benches @ [ "geomean" ] in
    let table = Report.Table.create ~columns in
    List.iter
      (fun (name, scheme) ->
        let values =
          List.map
            (fun bench ->
              let baseline = baseline_for env ~suite:"spec2006" ~bench in
              let r = run env ~suite:"spec2006" ~bench ~scheme in
              match metric with
              | `Time -> Workloads.Driver.slowdown ~baseline r
              | `Memory -> Workloads.Driver.memory_overhead ~baseline r)
            fig17_benches
        in
        Report.Table.add_row table name (values @ [ geomean_row values ]))
      partial_versions;
    label ^ "\n" ^ Report.Table.render table
  in
  buf_figure "Figure 17: sources of overheads (five most affected benchmarks)"
    (section `Time "(a) Time" ^ "\n" ^ section `Memory "(b) Memory"
    ^ "\npaper: base 1.1 %, +unmap/zero 5.8 %, quarantining adds the bulk \
       (17.9 % time / 14.8 % memory on these five), full version reaches \
       39.4 % memory\n")

(* ------------------------------------------------------------------ *)

let suite_overheads env ~suite ~title ~paper_note =
  let names =
    List.map (fun p -> p.Workloads.Profile.name) (profiles_of_suite suite)
  in
  let schemes = [ "markus"; "ffmalloc"; "minesweeper" ] in
  let section metric label =
    let table =
      Report.Table.create
        ~columns:[ "benchmark"; "MarkUs"; "FFmalloc"; "MineSweeper" ]
    in
    let acc = Hashtbl.create 8 in
    List.iter
      (fun bench ->
        let baseline = baseline_for env ~suite ~bench in
        let values =
          List.map
            (fun scheme ->
              let r = run env ~suite ~bench ~scheme in
              let v =
                match metric with
                | `Time -> Workloads.Driver.slowdown ~baseline r
                | `Memory -> Workloads.Driver.memory_overhead ~baseline r
              in
              Hashtbl.replace acc scheme
                (v :: Option.value ~default:[] (Hashtbl.find_opt acc scheme));
              v)
            schemes
        in
        Report.Table.add_row table bench values)
      names;
    Report.Table.add_row table "geomean"
      (List.map
         (fun s ->
           geomean_row (Option.value ~default:[] (Hashtbl.find_opt acc s)))
         schemes);
    Report.Table.add_row table "worst"
      (List.map
         (fun s ->
           Report.Summary.worst
             (Option.value ~default:[] (Hashtbl.find_opt acc s)))
         schemes);
    label ^ "\n" ^ Report.Table.render table
  in
  buf_figure title
    (section `Time "(a) Time" ^ "\n" ^ section `Memory "(b) Average memory"
    ^ paper_note)

let fig18 env =
  suite_overheads env ~suite:"spec2017"
    ~title:"Figure 18: overheads for SPECspeed2017 (starred = OpenMP)"
    ~paper_note:
      "\npaper: MineSweeper 10.8 % time / 7.9 % memory; FFmalloc 5.3 % / \
       22.2 %; MarkUs 16.3 % / 12.6 %; worst MineSweeper slowdown 2x \
       (xalancbmk), slowest parallel benchmark wrf (66 %)\n"

let fig19 env =
  suite_overheads env ~suite:"mimalloc"
    ~title:"Figure 19: overheads for mimalloc-bench stress tests"
    ~paper_note:
      "\npaper: MineSweeper 2.7x time / 4.0x memory (worst 31x / 27x); \
       MarkUs 6.7x time; FFmalloc 2.16x time but 7.2x memory (97x worst)\n"

(* ------------------------------------------------------------------ *)
(* Beyond the figures: Section 7's Scudo integration and ablations of
   the design parameters DESIGN.md calls out.                          *)

let scudo_table env =
  let rows =
    List.map
      (fun bench ->
        let scudo = run env ~suite:"spec2006" ~bench ~scheme:"scudo" in
        let protected_run =
          run env ~suite:"spec2006" ~bench ~scheme:"scudo-minesweeper"
        in
        ( bench,
          [
            Workloads.Driver.slowdown ~baseline:scudo protected_run;
            Workloads.Driver.memory_overhead ~baseline:scudo protected_run;
          ] ))
      spec2006_names
  in
  let geo i = geomean_row (List.map (fun (_, vs) -> List.nth vs i) rows) in
  let table =
    Report.Table.create
      ~columns:[ "benchmark"; "slowdown vs Scudo"; "memory vs Scudo" ]
  in
  List.iter (fun (b, vs) -> Report.Table.add_row table b vs) rows;
  Report.Table.add_row table "geomean" [ geo 0; geo 1 ];
  buf_figure
    "Section 7: MineSweeper over the Scudo hardened allocator"
    (Report.Table.render table
    ^ "\npaper: the Scudo integration costs 4.4 % — the layer is \
       allocator-agnostic\n")

let ptrtrack_table env =
  (* The paper quotes CRCount / pSweeper / DangSan from their own papers
     (Figures 7/10); here they are additionally *implemented* over the
     instrumented-pointer-store hook and measured head-to-head. *)
  let schemes = [ "crcount"; "psweeper"; "dangsan" ] in
  let quoted_of = function
    | "crcount" -> "CRCount"
    | "psweeper" -> "pSweeper-1s"
    | _ -> "DangSan"
  in
  let section metric label paper_value =
    let table =
      Report.Table.create
        ~columns:
          [ "benchmark"; "CRCount"; "pSweeper-1s"; "DangSan"; "MineSweeper" ]
    in
    let acc = Hashtbl.create 8 in
    let note scheme v =
      Hashtbl.replace acc scheme
        (v :: Option.value ~default:[] (Hashtbl.find_opt acc scheme))
    in
    List.iter
      (fun bench ->
        let values =
          List.map
            (fun scheme ->
              let v =
                match metric with
                | `Time -> slowdown_of env ~suite:"spec2006" ~bench ~scheme
                | `Memory -> memory_of env ~suite:"spec2006" ~bench ~scheme
              in
              note scheme v;
              v)
            (schemes @ [ "minesweeper" ])
        in
        Report.Table.add_row table bench values)
      spec2006_names;
    Report.Table.add_row table "geomean (measured)"
      (List.map
         (fun s ->
           geomean_row (Option.value ~default:[] (Hashtbl.find_opt acc s)))
         (schemes @ [ "minesweeper" ]));
    Report.Table.add_row table "geomean (quoted)"
      ((List.map
          (fun s ->
            geomean_row
              (List.filter_map
                 (fun bench ->
                   match metric with
                   | `Time ->
                     Report.Literature.slowdown ~scheme:(quoted_of s) ~bench
                   | `Memory ->
                     Report.Literature.memory_overhead ~scheme:(quoted_of s)
                       ~bench)
                 spec2006_names))
          schemes)
      @ [ Float.nan ]);
    label ^ "\n" ^ Report.Table.render table ^ paper_value
  in
  buf_figure
    "Extension: pointer-tracking schemes implemented and measured"
    (section `Time "(a) Slowdown" ""
    ^ "\n"
    ^ section `Memory "(b) Average memory" "")

let ablation_benches = [ "dealII"; "gcc"; "omnetpp"; "perlbench"; "xalancbmk" ]

let ablation_threshold env =
  let thresholds = [ 0.05; 0.10; 0.15; 0.25; 0.35 ] in
  let table =
    Report.Table.create
      ~columns:
        ("threshold"
        :: List.concat_map (fun b -> [ b ^ " time"; b ^ " mem" ]) ablation_benches)
  in
  List.iter
    (fun threshold ->
      let config = { Minesweeper.Config.default with threshold } in
      let cells =
        List.concat_map
          (fun bench ->
            let baseline = baseline_for env ~suite:"spec2006" ~bench in
            let r =
              run_scheme env ~suite:"spec2006" ~bench
                ~key:(Printf.sprintf "ms-t%.2f" threshold)
                (Workloads.Harness.Mine_sweeper config)
            in
            [
              Workloads.Driver.slowdown ~baseline r;
              Workloads.Driver.memory_overhead ~baseline r;
            ])
          ablation_benches
      in
      Report.Table.add_row table (Printf.sprintf "%.0f %%" (threshold *. 100.)) cells)
    thresholds;
  buf_figure
    "Ablation: sweep-trigger threshold (paper default 15 %, MarkUs used 25 %)"
    (Report.Table.render table
    ^ "\nlower thresholds sweep more often (more time, less memory); \
       higher thresholds trade the other way (Section 3.2)\n")

let ablation_granule env =
  let granules = [ 16; 64; 256; 1024 ] in
  let table =
    Report.Table.create
      ~columns:
        ("granule"
        :: List.concat_map
             (fun b -> [ b ^ " mem"; b ^ " failed" ])
             ablation_benches)
  in
  List.iter
    (fun shadow_granule ->
      let config = { Minesweeper.Config.default with shadow_granule } in
      let cells =
        List.concat_map
          (fun bench ->
            let baseline = baseline_for env ~suite:"spec2006" ~bench in
            let r =
              run_scheme env ~suite:"spec2006" ~bench
                ~key:(Printf.sprintf "ms-g%d" shadow_granule)
                (Workloads.Harness.Mine_sweeper config)
            in
            [
              Workloads.Driver.memory_overhead ~baseline r;
              float_of_int r.Workloads.Driver.failed_frees;
            ])
          ablation_benches
      in
      Report.Table.add_row table (Printf.sprintf "%d B" shadow_granule) cells)
    granules;
  buf_figure
    "Ablation: shadow-map granularity (paper default: one bit per 16 B)"
    (Report.Table.render table
    ^ "\ncoarser shadow bits alias adjacent allocations: spurious failed \
       frees rise and memory follows (Section 3.2's precision trade-off); \
       the shadow itself is <1 % of the heap at every setting\n")

let ablation_helpers env =
  let helper_counts = [ 0; 1; 2; 6; 12 ] in
  let table =
    Report.Table.create
      ~columns:
        ("helpers"
        :: List.concat_map (fun b -> [ b ^ " time"; b ^ " cpu" ]) ablation_benches)
  in
  List.iter
    (fun helpers ->
      let config =
        {
          Minesweeper.Config.default with
          concurrency =
            Minesweeper.Config.Concurrent { helpers; stop_the_world = false };
        }
      in
      let cells =
        List.concat_map
          (fun bench ->
            let baseline = baseline_for env ~suite:"spec2006" ~bench in
            let r =
              run_scheme env ~suite:"spec2006" ~bench
                ~key:(Printf.sprintf "ms-h%d" helpers)
                (Workloads.Harness.Mine_sweeper config)
            in
            [
              Workloads.Driver.slowdown ~baseline r;
              Workloads.Driver.cpu_overhead ~baseline r;
            ])
          ablation_benches
      in
      Report.Table.add_row table (string_of_int helpers) cells)
    helper_counts;
  buf_figure
    "Ablation: parallel sweeping helper threads (paper default: 6)"
    (Report.Table.render table
    ^ "\nmore helpers shorten each sweep (prompter recycling, less \
       allocation-pause risk) at the same total CPU cost (Section 4.4)\n")

let incremental_benches =
  [
    ("spec2006", [ "perlbench"; "gcc"; "omnetpp"; "xalancbmk"; "dealII" ]);
    ("mimalloc", [ "espresso"; "cfrac"; "barnes"; "alloc-test1" ]);
  ]

let incremental_sweep env =
  let extra (r : Workloads.Driver.result) key =
    Option.value ~default:0. (List.assoc_opt key r.Workloads.Driver.extra)
  in
  let mb v = v /. 1048576. in
  let table =
    Report.Table.create
      ~columns:
        [
          "benchmark"; "slowdown full"; "slowdown inc"; "swept full MB";
          "swept inc MB"; "pages skipped"; "pages rescanned"; "cache KB";
        ]
  in
  let regressions = ref [] in
  List.iter
    (fun (suite, benches) ->
      List.iter
        (fun bench ->
          let baseline = baseline_for env ~suite ~bench in
          let full = run env ~suite ~bench ~scheme:"minesweeper" in
          let inc = run env ~suite ~bench ~scheme:"minesweeper-incremental" in
          let swept_full = extra full "swept_bytes" in
          let swept_inc = extra inc "swept_bytes" in
          (* The first incremental sweep has no summaries to replay and
             necessarily rescans everything; incrementality can only pay
             off from the second sweep on. *)
          if full.Workloads.Driver.sweeps > 1 && swept_inc >= swept_full then
            regressions := Printf.sprintf "%s/%s" suite bench :: !regressions;
          Report.Table.add_row table (suite ^ "/" ^ bench)
            [
              Workloads.Driver.slowdown ~baseline full;
              Workloads.Driver.slowdown ~baseline inc;
              mb swept_full;
              mb swept_inc;
              extra inc "pages_skipped";
              extra inc "pages_rescanned";
              extra inc "summary_cache_bytes" /. 1024.;
            ])
        benches)
    incremental_benches;
  let verdict =
    match !regressions with
    | [] ->
      "incremental mode swept strictly fewer bytes than full mode on every \
       sweeping profile\n"
    | l ->
      Printf.sprintf "REGRESSION: incremental swept >= full on: %s\n"
        (String.concat ", " (List.rev l))
  in
  buf_figure
    "Extension: full vs incremental marking phase (bytes swept per mode)"
    (Report.Table.render table
    ^ "\nincremental mode rescans only pages dirtied since the previous \
       sweep and replays cached per-page pointer summaries for the rest; \
       protection is unchanged (the inv-summary audit certifies the rebuilt \
       shadow equals a from-scratch full mark)\n" ^ verdict)

(* Sweep-heavy profiles: big live heaps and frequent sweeps, where the
   mark phase dominates the sweeper's CPU — the workloads the parallel
   marking engine exists for. *)
let parallel_mark_benches =
  [
    ("mimalloc", [ "espresso"; "cfrac"; "barnes" ]);
    ("spec2006", [ "xalancbmk"; "omnetpp" ]);
  ]

let parallel_mark env =
  let extra (r : Workloads.Driver.result) key =
    Option.value ~default:0. (List.assoc_opt key r.Workloads.Driver.extra)
  in
  let mb v = v /. 1048576. in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let table =
    Report.Table.create
      ~columns:
        [
          "benchmark"; "swept MB"; "throughput d1 B/cyc"; "speedup d2";
          "speedup d4"; "speedup d8"; "imbalance d4 KB";
        ]
  in
  let regressions = ref [] in
  let best_speedup4 = ref 0.0 in
  List.iter
    (fun (suite, benches) ->
      List.iter
        (fun bench ->
          let results =
            List.map
              (fun d ->
                let scheme =
                  Workloads.Harness.Mine_sweeper
                    (Minesweeper.Config.with_domains d
                       Minesweeper.Config.default)
                in
                ( d,
                  run_scheme env ~suite ~bench
                    ~key:(Printf.sprintf "ms-par-d%d" d)
                    scheme ))
              domain_counts
          in
          let swept d = extra (List.assoc d results) "swept_bytes" in
          (* Determinism is the contract: any domain count must mark and
             sweep exactly the same bytes. *)
          List.iter
            (fun d ->
              if swept d <> swept 1 then
                regressions :=
                  Printf.sprintf "%s/%s: swept_bytes differs at %d domains"
                    suite bench d
                  :: !regressions)
            domain_counts;
          (* The modeled mark-phase critical path: [par_mark_cycles_est]
             accumulates max(slowest domain, DRAM floor) per sweep,
             [par_mark_cycles_seq_est] the single-marker cost over the
             same bytes — their ratio is the modeled speedup. *)
          let speedup d =
            if d = 1 then 1.0
            else
              let r = List.assoc d results in
              let est = extra r "par_mark_cycles_est" in
              if est > 0.0 then extra r "par_mark_cycles_seq_est" /. est
              else 0.0
          in
          best_speedup4 := max !best_speedup4 (speedup 4);
          let seq_cycles =
            extra (List.assoc 2 results) "par_mark_cycles_seq_est"
          in
          let xput1 = if seq_cycles > 0.0 then swept 1 /. seq_cycles else 0.0 in
          Report.Table.add_row table (suite ^ "/" ^ bench)
            [
              mb (swept 1); xput1; speedup 2; speedup 4; speedup 8;
              extra (List.assoc 4 results) "par_imbalance" /. 1024.;
            ])
        benches)
    parallel_mark_benches;
  if !best_speedup4 < 1.5 then
    regressions :=
      Printf.sprintf
        "no profile reached 1.5x modeled mark speedup at 4 domains (best \
         %.2fx)"
        !best_speedup4
      :: !regressions;
  let verdict =
    match !regressions with
    | [] ->
      Printf.sprintf
        "identical swept bytes at every domain count; best modeled mark \
         speedup at 4 domains: %.2fx (saturates at the DRAM-bandwidth wall)\n"
        !best_speedup4
    | l -> Printf.sprintf "REGRESSION: %s\n" (String.concat "; " (List.rev l))
  in
  buf_figure
    "Extension: parallel marking speedup (page chunks work-stolen across \
     domains)"
    (Report.Table.render table
    ^ "\nmark output is byte-identical for every domain count (canonical \
       chunk-order merge); throughput is the deterministic cost-model \
       projection: one marker streams 4 B/cycle, DRAM feeds 16 B/cycle, so \
       scaling saturates at 4 domains\n" ^ verdict)

(* End-to-end sweep-cycle projection of the staged pipeline: the modeled
   sequential total (mark + merge + release + purge, single-threaded)
   against the overlapped schedule where the mark runs on the marker
   domains and batched stages overlap across the cycle. Charging stays
   domain-independent — both totals are pure [sweep.stage.*] projections
   — so swept bytes must be byte-identical at every domain count. *)
let sweep_pipeline env =
  let extra (r : Workloads.Driver.result) key =
    Option.value ~default:0. (List.assoc_opt key r.Workloads.Driver.extra)
  in
  let mb v = v /. 1048576. in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let table =
    Report.Table.create
      ~columns:
        [
          "benchmark"; "swept MB"; "seq Mcyc"; "cycle speedup d2";
          "cycle speedup d4"; "cycle speedup d8"; "flush batches";
        ]
  in
  let regressions = ref [] in
  let best_speedup4 = ref 0.0 in
  List.iter
    (fun (suite, benches) ->
      List.iter
        (fun bench ->
          let results =
            List.map
              (fun d ->
                let scheme =
                  Workloads.Harness.Mine_sweeper
                    (Minesweeper.Config.with_domains d
                       Minesweeper.Config.default)
                in
                ( d,
                  run_scheme env ~suite ~bench
                    ~key:(Printf.sprintf "ms-pipe-d%d" d)
                    scheme ))
              domain_counts
          in
          let swept d = extra (List.assoc d results) "swept_bytes" in
          (* Determinism is the contract: the pipeline is a projection,
             so any domain count must mark and sweep the same bytes. *)
          List.iter
            (fun d ->
              if swept d <> swept 1 then
                regressions :=
                  Printf.sprintf "%s/%s: swept_bytes differs at %d domains"
                    suite bench d
                  :: !regressions)
            domain_counts;
          (* [pipe_seq_cycles_est] accumulates the single-threaded stage
             totals per sweep, [pipe_pipeline_cycles_est] the overlapped
             schedule — their ratio is the modeled end-to-end sweep-cycle
             speedup. *)
          let speedup d =
            let r = List.assoc d results in
            let pipe = extra r "pipe_pipeline_cycles_est" in
            if pipe > 0.0 then extra r "pipe_seq_cycles_est" /. pipe else 1.0
          in
          best_speedup4 := max !best_speedup4 (speedup 4);
          Report.Table.add_row table (suite ^ "/" ^ bench)
            [
              mb (swept 1);
              extra (List.assoc 1 results) "pipe_seq_cycles_est" /. 1e6;
              speedup 2; speedup 4; speedup 8;
              extra (List.assoc 4 results) "pipe_flush_batches";
            ])
        benches)
    parallel_mark_benches;
  if !best_speedup4 < 2.0 then
    regressions :=
      Printf.sprintf
        "no profile reached 2x modeled end-to-end sweep-cycle speedup at 4 \
         domains (best %.2fx)"
        !best_speedup4
      :: !regressions;
  let verdict =
    match !regressions with
    | [] ->
      Printf.sprintf
        "identical swept bytes at every domain count; best modeled sweep-cycle \
         speedup at 4 domains: %.2fx\n"
        !best_speedup4
    | l -> Printf.sprintf "REGRESSION: %s\n" (String.concat "; " (List.rev l))
  in
  buf_figure
    "Extension: staged sweep pipeline (mark/merge/release/purge overlap \
     across domains)"
    (Report.Table.render table
    ^ "\nthe pipeline is a modeled projection over per-stage cycle reports \
       (sweep.stage.*): marking parallelises across domains while batched \
       release/purge overlap the next batch's merge; simulated charging is \
       domain-independent, so every export outside par.*/sweep.stage.* is \
       byte-identical at any domain count\n" ^ verdict)

(* Static-vs-dynamic differential: run the flowcheck analyzer (one pass,
   no replay) next to a real replay plus the differential sweep oracle
   on every mimalloc-bench profile, and certify the two contracts the
   static side makes: its occupancy/swept/sweep-count bounds dominate
   the measured ms.* telemetry, and every dynamic oracle finding was
   statically predicted (zero static false negatives). *)
let static_bounds env =
  let mb v = float_of_int v /. 1048576. in
  let table =
    Report.Table.create
      ~columns:
        [
          "benchmark"; "occ bound MB"; "peak occ MB"; "swept bound MB";
          "swept MB"; "sweeps <="; "sweeps"; "pred ret"; "dyn ret"; "miss";
        ]
  in
  let regressions = ref [] in
  List.iter
    (fun (p : Workloads.Profile.t) ->
      let bench = p.Workloads.Profile.name in
      if env.verbose then Printf.eprintf "  [static] mimalloc/%s\n%!" bench;
      let profile =
        if env.scale = 1.0 then p else Workloads.Profile.scale_ops env.scale p
      in
      let trace = Workloads.Trace.generate profile in
      let sr = Flowcheck.Report.analyze_trace trace in
      (* Dynamic side 1: a plain replay under the default MineSweeper
         stack; the harness telemetry registry carries the measured
         quarantine occupancy and sweep totals. *)
      let machine = Alloc.Machine.create () in
      List.iter
        (fun (base, size) ->
          Vmem.map machine.Alloc.Machine.mem ~addr:base ~len:size)
        Layout.root_regions;
      let stack =
        Workloads.Harness.build
          (Workloads.Harness.Mine_sweeper Minesweeper.Config.default)
          ~threads:1 machine
      in
      ignore (Workloads.Trace.replay trace stack);
      let reg =
        match stack.Workloads.Harness.obs with
        | Some r -> r
        | None -> assert false (* the MineSweeper stack keeps a registry *)
      in
      let read name = Option.value ~default:0 (Obs.Registry.read reg name) in
      let peak = read "ms.peak_quarantine_bytes" in
      let swept = read "ms.swept_bytes" in
      let sweeps = read "ms.sweeps" in
      List.iter
        (fun d ->
          regressions :=
            Printf.sprintf "mimalloc/%s: %s" bench
              (Sanitizer.Diagnostic.to_string d)
            :: !regressions)
        (Flowcheck.Report.check_bounds sr ~policy:"minesweeper"
           ~peak_quarantine_bytes:peak ~swept_bytes:swept ~sweeps);
      (* Dynamic side 2: the differential oracle's ground-truth findings
         must all have been predicted statically. *)
      let orc = Sanitizer.Sweep_oracle.run ~audit:false trace in
      let misses =
        Sanitizer.Sweep_oracle.certify_static
          ~predicted_unsound:sr.Flowcheck.Report.predicted_unsound
          ~predicted_retained:sr.Flowcheck.Report.predicted_retained orc
      in
      List.iter
        (fun d ->
          regressions :=
            Printf.sprintf "mimalloc/%s: %s" bench
              (Sanitizer.Diagnostic.to_string d)
            :: !regressions)
        misses;
      let b =
        List.find
          (fun (b : Flowcheck.Policy.bounds) ->
            b.Flowcheck.Policy.policy = "minesweeper")
          sr.Flowcheck.Report.bounds
      in
      Report.Table.add_row table ("mimalloc/" ^ bench)
        [
          mb b.Flowcheck.Policy.occupancy_bound;
          mb peak;
          mb b.Flowcheck.Policy.swept_bytes_bound;
          mb swept;
          float_of_int b.Flowcheck.Policy.sweeps_bound;
          float_of_int sweeps;
          float_of_int (List.length sr.Flowcheck.Report.predicted_retained);
          float_of_int (List.length orc.Sanitizer.Sweep_oracle.retained_ids);
          float_of_int (List.length misses);
        ])
    Workloads.Mimalloc_bench.all;
  let verdict =
    match !regressions with
    | [] ->
      "static bounds dominate every measured ms.* value and every dynamic \
       oracle finding was statically predicted (zero false negatives)\n"
    | l -> Printf.sprintf "REGRESSION: %s\n" (String.concat "; " (List.rev l))
  in
  buf_figure
    "Extension: static dataflow bounds vs dynamic replay (mimalloc-bench)"
    (Report.Table.render table
    ^ "\nthe static analyzer sees the trace once, with no allocator, no \
       virtual memory and no sweep schedule: its occupancy bound is the \
       sum of freed usable bytes, its sweep bounds assume the DESIGN \
       paragraph-11 fragmentation factor; the dynamic columns come from the \
       ms.* telemetry of a real replay and the differential oracle\n"
    ^ verdict)

(* Pooled landscape: the siteflow pooling analysis across the whole
   mimalloc-bench suite. For every profile, derive the pool plan from
   the trace, replay under the analysis-driven pooled backend with the
   differential UAF oracle attached, and certify both halves of the
   static contract: zero unsound recycles (no pool re-serves a base
   with live recorded pointers into it), and every static
   occupancy/footprint/retired bound dominates the backend's final
   pool telemetry. An identity-plan baseline (one recycling pool per
   site, no analysis) runs alongside to show what the merge pass is
   protecting against. *)
let pooled_landscape env =
  let mb v = float_of_int v /. 1048576. in
  let table =
    Report.Table.create
      ~columns:
        [
          "benchmark"; "sites"; "pools"; "retiring"; "occ bound MB";
          "peak occ MB"; "fp bound MB"; "fp MB"; "ret bound MB"; "ret MB";
          "recycled"; "unsound"; "base unsound";
        ]
  in
  let regressions = ref [] in
  List.iter
    (fun (p : Workloads.Profile.t) ->
      let bench = p.Workloads.Profile.name in
      if env.verbose then Printf.eprintf "  [pooled] mimalloc/%s\n%!" bench;
      let profile =
        if env.scale = 1.0 then p else Workloads.Profile.scale_ops env.scale p
      in
      let trace = Workloads.Trace.generate profile in
      let plan = Flowcheck.Poolplan.of_trace trace in
      let orc =
        Sanitizer.Pool_oracle.run
          ~plan:(Flowcheck.Poolplan.to_alloc_plan plan) trace
      in
      List.iter
        (fun d ->
          regressions :=
            Printf.sprintf "mimalloc/%s: %s" bench
              (Sanitizer.Diagnostic.to_string d)
            :: !regressions)
        (Sanitizer.Pool_oracle.certify orc);
      let checks =
        Flowcheck.Poolplan.check_pool_stats plan
          orc.Sanitizer.Pool_oracle.pool_stats
      in
      List.iter
        (fun (c : Flowcheck.Poolplan.bound_check) ->
          if not c.Flowcheck.Poolplan.holds then
            regressions :=
              Printf.sprintf
                "mimalloc/%s: pool %d %s bound %d < measured %d" bench
                c.Flowcheck.Poolplan.check_pool c.Flowcheck.Poolplan.metric
                c.Flowcheck.Poolplan.bound c.Flowcheck.Poolplan.measured
              :: !regressions)
        checks;
      (* Unsafe baseline: the identity plan recycles per site with no
         exposure analysis; its unsound count is what the merge pass
         must drive to zero. *)
      let base = Sanitizer.Pool_oracle.run trace in
      let sum f =
        Array.fold_left
          (fun acc s -> acc + f s)
          0 orc.Sanitizer.Pool_oracle.pool_stats
      in
      let bound f =
        List.fold_left
          (fun acc (pl : Flowcheck.Poolplan.pool) -> acc + f pl)
          0 plan.Flowcheck.Poolplan.pools
      in
      let retiring =
        List.length
          (List.filter
             (fun (pl : Flowcheck.Poolplan.pool) ->
               not pl.Flowcheck.Poolplan.recycles)
             plan.Flowcheck.Poolplan.pools)
      in
      Report.Table.add_row table ("mimalloc/" ^ bench)
        [
          float_of_int plan.Flowcheck.Poolplan.site_count;
          float_of_int plan.Flowcheck.Poolplan.pool_count;
          float_of_int retiring;
          mb (bound (fun pl -> pl.Flowcheck.Poolplan.occupancy_bound));
          mb (sum (fun s -> s.Alloc.Poolalloc.peak_live_bytes));
          mb (bound (fun pl -> pl.Flowcheck.Poolplan.footprint_bound));
          mb (sum (fun s -> s.Alloc.Poolalloc.footprint_bytes));
          mb (bound (fun pl -> pl.Flowcheck.Poolplan.retired_bound));
          mb (sum (fun s -> s.Alloc.Poolalloc.retired_bytes));
          float_of_int orc.Sanitizer.Pool_oracle.recycled;
          float_of_int (List.length orc.Sanitizer.Pool_oracle.unsound_ids);
          float_of_int (List.length base.Sanitizer.Pool_oracle.unsound_ids);
        ])
    Workloads.Mimalloc_bench.all;
  let verdict =
    match !regressions with
    | [] ->
      "every profile certified: zero unsound recycles under the siteflow \
       plan and every static occupancy/footprint/retired bound dominates \
       the pooled backend's telemetry\n"
    | l -> Printf.sprintf "REGRESSION: %s\n" (String.concat "; " (List.rev l))
  in
  buf_figure
    "Extension: analysis-driven pooled backend landscape (mimalloc-bench)"
    (Report.Table.render table
    ^ "\nthe pooled backend has no quarantine and no sweeps: UAF freedom \
       is the siteflow plan's static claim, certified here by the \
       differential oracle (ptrtrack ground truth at every re-served \
       base); 'base unsound' is the identity plan — one recycling pool \
       per site, no exposure analysis — on the same trace\n" ^ verdict)

(* ------------------------------------------------------------------ *)
(* Tail latency: the server-traffic family under an open-loop load     *)
(* generator — p50/p99/p999 total and stall-induced latency per        *)
(* backend, plus the vtable-hijack attack mounted under live traffic.  *)

let serve_backends =
  [ "baseline"; "minesweeper"; "minesweeper-mostly"; "markus"; "ffmalloc" ]

let run_server env ~(profile : Workloads.Server.profile) ~key =
  let cache_key = Printf.sprintf "serve/%s/%s" profile.Workloads.Server.name key in
  match Hashtbl.find_opt env.srv_cache cache_key with
  | Some r -> r
  | None ->
    if env.verbose then Printf.eprintf "  [serve] %s\n%!" cache_key;
    let r =
      Workloads.Server.run ~scale:env.scale profile (scheme_of_key key)
    in
    Hashtbl.replace env.srv_cache cache_key r;
    r

let tail_latency env =
  let table =
    Report.Table.create
      ~columns:
        [
          "profile/scheme"; "lat p50"; "lat p99"; "lat p999"; "stall p50";
          "stall p99"; "stall p999"; "max queue"; "served %";
        ]
  in
  let regressions = ref [] in
  let flag fmt = Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt in
  List.iter
    (fun (profile : Workloads.Server.profile) ->
      let pname = profile.Workloads.Server.name in
      let baseline_arrivals = ref None in
      List.iter
        (fun key ->
          let r = run_server env ~profile ~key in
          let q = r.Workloads.Server.latency in
          let s = r.Workloads.Server.stall_latency in
          let mono (x : Workloads.Server.quantiles) =
            x.Workloads.Server.p50 <= x.Workloads.Server.p99 +. 1e-9
            && x.Workloads.Server.p99 <= x.Workloads.Server.p999 +. 1e-9
          in
          if not (mono q && mono s) then
            flag "%s/%s: quantiles not monotone" pname key;
          if s.Workloads.Server.p999 > q.Workloads.Server.p999 +. 1e-9 then
            flag "%s/%s: stall latency exceeds total latency" pname key;
          (* Open-loop property: every backend sees the same offered
             timeline; a scheme whose stalls perturbed arrivals would
             mean the loop was closed somewhere. *)
          (match !baseline_arrivals with
          | None -> baseline_arrivals := Some r.Workloads.Server.arrivals
          | Some a ->
            if a <> r.Workloads.Server.arrivals then
              flag "%s/%s: arrivals depend on the backend (loop closed)" pname
                key);
          let served =
            if r.Workloads.Server.requests = 0 then 100.
            else
              100.
              *. float_of_int r.Workloads.Server.completed
              /. float_of_int r.Workloads.Server.requests
          in
          Report.Table.add_row table
            (Printf.sprintf "%s/%s" pname key)
            [
              q.Workloads.Server.p50; q.Workloads.Server.p99;
              q.Workloads.Server.p999; s.Workloads.Server.p50;
              s.Workloads.Server.p99; s.Workloads.Server.p999;
              float_of_int r.Workloads.Server.max_queue_depth; served;
            ])
        serve_backends)
    Workloads.Server.profiles;
  (* The exploit, mounted while traffic flows: recycling allocators hand
     the victim slot to the attacker's spray; MineSweeper's quarantine
     (the dangling global is swept) must keep the call benign. *)
  let attack_lines =
    List.map
      (fun key ->
        if env.verbose then Printf.eprintf "  [serve-attack] %s\n%!" key;
        let machine = Alloc.Machine.create () in
        let stack =
          Workloads.Harness.build (scheme_of_key key) ~threads:1 machine
        in
        let profile =
          Workloads.Server.scale env.scale
            (Option.get (Workloads.Server.find "steady"))
        in
        let outcome, r = Attack.hijack_under_traffic ~profile stack in
        (match (key, outcome) with
        | "baseline", Attack.Exploited -> ()
        | "baseline", _ ->
          flag "attack-under-traffic: baseline was not exploited"
        | _, Attack.Exploited ->
          flag "attack-under-traffic: %s exploited under live traffic" key
        | _, (Attack.Prevented_fault | Attack.Benign) -> ());
        Printf.sprintf "  %-20s %s  (%d requests served during the attack)" key
          (Attack.describe outcome) r.Workloads.Server.completed)
      [ "baseline"; "minesweeper"; "minesweeper-mostly" ]
  in
  let verdict =
    match !regressions with
    | [] ->
      "quantiles monotone, stall latency bounded by total latency, arrivals \
       identical across backends (open loop), attack outcomes as expected\n"
    | l -> Printf.sprintf "REGRESSION: %s\n" (String.concat "; " (List.rev l))
  in
  buf_figure
    "Extension: tail latency under server traffic (open-loop generator)"
    (Report.Table.render table
    ^ "\nlatency in simulated cycles; 'stall' columns are the \
       stall-induced share (coupled stall-free Lindley queue on the same \
       arrivals); profiles: "
    ^ String.concat ", "
        (List.map
           (fun (p : Workloads.Server.profile) ->
             p.Workloads.Server.name ^ " = "
             ^ Sim.Arrival.describe p.Workloads.Server.arrival)
           Workloads.Server.profiles)
    ^ "\n\nvtable hijack under live traffic (steady profile):\n"
    ^ String.concat "\n" attack_lines
    ^ "\n\n" ^ verdict)

let fleet_pressure env =
  (* The noisy-neighbour scenario: one slow-leak tenant plus four steady
     ones share a machine under the default physical budget. Each steady
     tenant is also re-run in isolation on the very seed the fleet hands
     it, so the arrival timelines are identical and any tail-latency
     difference is machine interference, not load. *)
  let backends = [ "minesweeper"; "minesweeper-mostly"; "markus"; "ffmalloc" ] in
  let seed = 9100 in
  let budget = Fleet.default_budget in
  let table =
    Report.Table.create
      ~columns:
        [
          "backend/purge order"; "peak MiB"; "raw MiB"; "press"; "recl";
          "kills"; "nbr stall p99"; "iso stall p99"; "fleet lat p99";
        ]
  in
  let regressions = ref [] in
  let flag fmt = Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt in
  let mib b = float_of_int b /. (1024. *. 1024.) in
  List.iter
    (fun key ->
      let scheme = scheme_of_key key in
      let specs = Fleet.noisy_neighbour scheme in
      let iso =
        List.mapi
          (fun i (spec : Fleet.tenant_spec) ->
            if i = 0 then None (* the leaker is the perturbation, not a probe *)
            else begin
              if env.verbose then
                Printf.eprintf "  [fleet-iso] %s/%s\n%!" key spec.Fleet.tname;
              Some
                (Workloads.Server.run ~scale:env.scale
                   ~seed:(Sim.Rng.split_seed ~seed ~index:i)
                   spec.Fleet.profile scheme)
            end)
          specs
      in
      List.iter
        (fun order ->
          if env.verbose then
            Printf.eprintf "  [fleet] %s/%s\n%!" key
              (Fleet.purge_order_name order);
          let cfg = Fleet.config ~budget ~purge_order:order () in
          let r = Fleet.run ~scale:env.scale ~seed cfg specs in
          if r.Fleet.committed_peak > budget then
            flag "%s/%s: committed peak %d bytes exceeds the %d-byte budget"
              key (Fleet.purge_order_name order) r.Fleet.committed_peak budget;
          let nbr_p99 = ref 0. and iso_p99 = ref 0. in
          List.iteri
            (fun i (tr : Fleet.tenant_result) ->
              match List.nth iso i with
              | None -> ()
              | Some (base : Workloads.Server.result) ->
                let fs = tr.Fleet.server in
                if
                  fs.Workloads.Server.arrivals
                  <> base.Workloads.Server.arrivals
                then
                  flag "%s/%s: %s arrivals differ from isolation (loop closed)"
                    key (Fleet.purge_order_name order) tr.Fleet.name;
                let fp =
                  fs.Workloads.Server.stall_latency.Workloads.Server.p99
                in
                let bp =
                  base.Workloads.Server.stall_latency.Workloads.Server.p99
                in
                nbr_p99 := Float.max !nbr_p99 fp;
                iso_p99 := Float.max !iso_p99 bp;
                (* The acceptance property: a neighbour that absorbed
                   interference must show it in its stall tail. Backends
                   that inject nothing (ffmalloc never sweeps) are
                   exempt from strictness. *)
                if tr.Fleet.injected_stall_cycles > 0 && fp <= bp then
                  flag
                    "%s/%s: %s p99 stall %.0f not above isolation %.0f \
                     despite %d injected cycles"
                    key (Fleet.purge_order_name order) tr.Fleet.name fp bp
                    tr.Fleet.injected_stall_cycles)
            r.Fleet.tenants;
          Report.Table.add_row table
            (Printf.sprintf "%s/%s" key (Fleet.purge_order_name order))
            [
              mib r.Fleet.committed_peak; mib r.Fleet.committed_peak_raw;
              float_of_int r.Fleet.pressure_events;
              float_of_int r.Fleet.total_reclaims;
              float_of_int r.Fleet.oom_kills; !nbr_p99; !iso_p99;
              r.Fleet.agg_latency.Workloads.Server.p99;
            ])
        [ Fleet.Largest_quarantine; Fleet.Round_robin_purge ])
    backends;
  let verdict =
    match !regressions with
    | [] ->
      "committed peak within budget for every backend and purge order, \
       arrivals identical to isolation (open loop preserved across the \
       fleet), neighbour p99 stall strictly above isolation wherever \
       interference was injected\n"
    | l -> Printf.sprintf "REGRESSION: %s\n" (String.concat "; " (List.rev l))
  in
  buf_figure
    "Extension: multi-tenant fleet under a shared physical-page budget"
    (Report.Table.render table
    ^ "\none slow-leak tenant + 4 steady tenants per row; 'nbr stall p99' \
       is the worst steady tenant's stall-latency tail inside the fleet, \
       'iso stall p99' the same tenant alone on the machine (same seed, \
       same arrivals); 'press'/'recl'/'kills' count pressure events, \
       forced reclaims and OOM kills under the "
    ^ string_of_int (Fleet.default_budget / (1024 * 1024))
    ^ " MiB budget\n\n" ^ verdict)

let all_figures =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("fig18", fig18);
    ("fig19", fig19);
    ("scudo", scudo_table);
    ("ptrtrack", ptrtrack_table);
    ("ablation-threshold", ablation_threshold);
    ("ablation-granule", ablation_granule);
    ("ablation-helpers", ablation_helpers);
    ("incremental-sweep", incremental_sweep);
    ("parallel-mark", parallel_mark);
    ("sweep-pipeline", sweep_pipeline);
    ("static-bounds", static_bounds);
    ("pooled-landscape", pooled_landscape);
    ("tail-latency", tail_latency);
    ("fleet-pressure", fleet_pressure);
  ]
