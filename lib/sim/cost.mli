(** Cycle-cost model for the simulated machine.

    The paper reports relative overheads (slowdown, CPU utilisation) on an
    Intel i7-7700. We reproduce relative behaviour with a deterministic
    cost model: every action in the simulated system charges a number of
    cycles to the thread performing it. The constants below were
    calibrated against the micro-benchmarks in [bench/main.ml] and the
    per-benchmark figures of the paper; they are grouped in a record so
    ablation experiments can perturb them. *)

type t = {
  malloc_fast : int;  (** tcache hit on the malloc fast path *)
  malloc_slow : int;  (** slab refill / extent allocation path *)
  free_fast : int;  (** tcache push on the free fast path *)
  free_slow : int;  (** slab bookkeeping on tcache flush *)
  quarantine_push : int;  (** append to a thread-local quarantine buffer *)
  quarantine_flush_per_entry : int;  (** move one entry to the global list *)
  quarantine_flush_lock : int;
      (** acquire/release of the global quarantine lock, paid once per
          batched flush ([Quarantine.flush_batch]) instead of per entry *)
  quarantine_flush_batch_per_entry : int;
      (** per-entry cost under the batched flush: a splice into the
          global list with the lock already held *)
  merge_per_page : int;
      (** coordinator merge of one scanned page's hit list into the
          shadow map (the pipeline's Merge stage) *)
  zero_per_byte : float;  (** zero-filling a freed allocation *)
  sweep_per_byte : float;  (** linear streaming sweep (marking phase) *)
  mark_single_per_byte : float;
      (** single marker-thread streaming throughput (~4 B/cycle): the
          per-domain cost the parallel marking projection charges before
          the aggregate hits the DRAM-bandwidth wall *)
  mark_per_byte : float;  (** transitive (pointer-chasing) marking, MarkUs *)
  shadow_test_per_granule : float;  (** checking shadow bits on release *)
  release_per_entry : int;  (** quarantine-list walk per entry *)
  syscall : int;  (** mprotect / madvise / mmap round trip *)
  page_fault : int;  (** demand-commit minor fault *)
  touch_per_byte : float;  (** application writing freshly served memory *)
  cold_alloc_per_byte : float;  (** extra cache misses when reuse is delayed *)
  work_unit : int;  (** one unit of application compute work *)
  stw_signal : int;  (** stopping / restarting the world, fixed part *)
  stw_per_thread : int;  (** per-thread signalling cost *)
}

val default : t
(** The calibrated model used by all headline experiments. *)

val scale_sweep : float -> t -> t
(** Multiply the sweep cost, for sensitivity studies. *)

val bytes_cost : float -> int -> int
(** [bytes_cost per_byte n] is the rounded cycle cost of an [n]-byte
    streaming operation (at least 1 cycle when [n > 0]). *)
