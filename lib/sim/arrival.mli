(** Open-loop arrival processes for the server workload family.

    A generator emits a strictly increasing sequence of absolute cycle
    timestamps at which requests enter the system. The sequence is a pure
    function of the process parameters and the RNG seed: it never
    observes service completions, which is what makes the load
    {e open-loop} — when the allocator stalls, arrivals keep coming and
    queueing delay accumulates instead of being absorbed by a
    slowed-down client (the closed-loop fallacy).

    Rates are in arrivals per million cycles (aMc). Degenerate
    parameters are clamped, never raised on: a non-positive or NaN rate
    generates no arrivals ({!next} returns [None]), dwell times and
    periods are clamped to [>= 1], diurnal depth to [\[0, 1\]], and the
    spike multiplier to [>= 0]. Inter-arrival gaps are floored at one
    cycle and capped at 1e15 cycles, so the float->int conversion is
    always defined and timestamps are strictly monotone. *)

type process =
  | Poisson of { rate : float }
      (** Memoryless arrivals at a constant rate — the steady profile. *)
  | Mmpp of { rate_lo : float; rate_hi : float; dwell_lo : int; dwell_hi : int }
      (** Markov-modulated Poisson process: alternates between a quiet
          phase ([rate_lo] for [dwell_lo] cycles) and a burst phase
          ([rate_hi] for [dwell_hi] cycles). Draws crossing a phase
          boundary restart from the boundary (memoryless). *)
  | Diurnal of { rate : float; period : int; depth : float }
      (** Sinusoidally modulated Poisson process via Lewis-Shedler
          thinning: instantaneous rate
          [rate * (1 + depth * sin (2 pi t / period))]. *)
  | Spike of { rate : float; spike_at : int; spike_len : int; spike_mult : float }
      (** Piecewise-constant rate: [rate] outside
          [\[spike_at, spike_at + spike_len)], [rate * spike_mult]
          inside — a flash crowd. *)

type t
(** A generator: process + RNG + cursor. *)

val make : ?start:int -> process -> Rng.t -> t
(** [make ?start process rng] positions the generator at absolute cycle
    [start] (default 0). The generator owns [rng] from here on. *)

val next : t -> int option
(** Next absolute arrival timestamp, strictly greater than the previous
    one. [None] once the process can produce no further arrivals (zero
    rate, or a zero-rate tail segment). *)

val take : t -> int -> int array
(** [take t n] collects up to [n] arrivals ([< n] only if the process
    runs dry). *)

val mean_rate : process -> float
(** Long-run average rate in aMc, for sizing runs a priori. *)

val peak_rate : process -> float
(** Largest instantaneous rate the process can reach, in aMc. *)

val describe : process -> string
(** One-line human-readable description, used by [msweep serve]. *)
