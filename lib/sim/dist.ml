type t =
  | Constant of int
  | Uniform of int * int
  | Exponential of float
  | Pareto of float * int * int
  | Choice of (float * t) array * float (* branches, total weight *)
  | Shifted of int * t

(* Degenerate-parameter policy (see dist.mli): constructors never raise on
   out-of-range numeric parameters — they clamp to the nearest value with
   well-defined semantics. This matters because the arrival processes in
   [Arrival] build distributions from user-tunable rates that can
   legitimately hit 0 or extreme magnitudes. The clamps are chosen so that
   every parameter that was previously accepted produces bit-identical
   samples (the byte-identical-export CI gates depend on this). *)

let finite_or f default = if Float.is_finite f then f else default

let constant n = Constant n

let uniform ~lo ~hi =
  (* Reversed bounds are swapped rather than rejected. *)
  if lo <= hi then Uniform (lo, hi) else Uniform (hi, lo)

let exponential ~mean =
  (* A non-positive (or NaN) mean degenerates to the minimum sample, 1. *)
  let mean = finite_or mean 0. in
  Exponential (if mean > 0. then mean else 0.)

let pareto ~shape ~scale ~cap =
  (* shape <= 0 (or NaN) means an arbitrarily heavy tail: all mass lands on
     [cap]. We encode that as shape = 0 and special-case it in [sample].
     scale is clamped to >= 1 and cap to >= scale. *)
  let shape = finite_or shape 0. in
  let shape = if shape > 0. then shape else 0. in
  let scale = max 1 scale in
  let cap = max scale cap in
  Pareto (shape, scale, cap)

let choice branches =
  (* Negative weights are clamped to 0. A zero (or NaN) total weight
     degenerates to always picking the last branch — [sample] still draws
     from the RNG so stream alignment is preserved. An empty branch list is
     a structural error and still raises. *)
  if branches = [] then invalid_arg "Dist.choice: empty branch list";
  let branches =
    Array.of_list
      (List.map (fun (w, d) -> ((if w > 0. then finite_or w 0. else 0.), d))
         branches)
  in
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0. branches in
  Choice (branches, total)

let shifted k d = Shifted (k, d)

(* Largest float that converts to int without overflow on 64-bit OCaml.
   [int_of_float] on values outside [min_int, max_int] is unspecified, so
   every float->int conversion of an unbounded variate goes through here. *)
let to_int_clamped x =
  if Float.is_nan x then 0
  else if x >= 4.611686018427387904e18 then max_int
  else if x <= 0. then 0
  else int_of_float x

let rec sample t rng =
  match t with
  | Constant n -> n
  | Uniform (lo, hi) -> lo + Rng.int rng (hi - lo + 1)
  | Exponential mean ->
    (* u in (0, 1]: [Rng.float] returns [0, 1), so [1 - u'] never hits 0
       and [log u] is finite. u = 1 gives log u = 0, i.e. a sample of 1
       after the floor below. *)
    let u = 1.0 -. Rng.float rng 1.0 in
    max 1 (to_int_clamped (-.mean *. log u))
  | Pareto (shape, scale, cap) ->
    let u = 1.0 -. Rng.float rng 1.0 in
    if shape <= 0. then begin
      (* Degenerate heavy tail: all mass at the cap. The draw above keeps
         the RNG stream aligned with the non-degenerate case. *)
      ignore u;
      cap
    end
    else
      let x = float_of_int scale /. (u ** (1.0 /. shape)) in
      (* x can overflow to inf for tiny u and small shape. *)
      if not (Float.is_finite x) || x >= float_of_int cap then cap
      else max scale (to_int_clamped x)
  | Choice (branches, total) ->
    let x = Rng.float rng (if total > 0. then total else 0.) in
    let rec pick i acc =
      let w, d = branches.(i) in
      if (w > 0. && x < acc +. w) || i = Array.length branches - 1 then d
      else pick (i + 1) (acc +. w)
    in
    sample (pick 0 0.) rng
  | Shifted (k, d) -> k + sample d rng

let rec mean_estimate = function
  | Constant n -> float_of_int n
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.0
  | Exponential mean -> Float.max 1. mean
  | Pareto (shape, scale, cap) ->
    if shape > 1.0 then
      let m = shape *. float_of_int scale /. (shape -. 1.0) in
      Float.min m (float_of_int cap)
    else float_of_int cap /. 2.0
  | Choice (branches, total) ->
    if total > 0. then
      Array.fold_left
        (fun acc (w, d) -> acc +. (w /. total *. mean_estimate d))
        0. branches
    else mean_estimate (snd branches.(Array.length branches - 1))
  | Shifted (k, d) -> float_of_int k +. mean_estimate d
