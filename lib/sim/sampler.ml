type t = {
  mutable times : int array;
  mutable values : int array;
  mutable len : int;
}

let create () = { times = Array.make 1024 0; values = Array.make 1024 0; len = 0 }

let ensure_capacity t =
  if t.len = Array.length t.times then begin
    let grow a = Array.append a (Array.make (Array.length a) 0) in
    t.times <- grow t.times;
    t.values <- grow t.values
  end

let record t ~now ~rss =
  assert (t.len = 0 || now >= t.times.(t.len - 1));
  ensure_capacity t;
  t.times.(t.len) <- now;
  t.values.(t.len) <- rss;
  t.len <- t.len + 1

let peak t =
  let best = ref 0 in
  for i = 0 to t.len - 1 do
    if t.values.(i) > !best then best := t.values.(i)
  done;
  !best

let average t =
  if t.len = 0 then 0.
  else if t.len = 1 then float_of_int t.values.(0)
  else begin
    (* Trapezoidal time-weighted mean over the sampled trace. *)
    let weighted = ref 0. in
    for i = 1 to t.len - 1 do
      let dt = float_of_int (t.times.(i) - t.times.(i - 1)) in
      let mid = float_of_int (t.values.(i) + t.values.(i - 1)) /. 2. in
      weighted := !weighted +. (dt *. mid)
    done;
    let span = float_of_int (t.times.(t.len - 1) - t.times.(0)) in
    if span <= 0. then float_of_int t.values.(t.len - 1)
    else !weighted /. span
  end

let samples t = Array.init t.len (fun i -> (t.times.(i), t.values.(i)))

let normalised t ~points =
  if t.len = 0 || points <= 0 then [||]
  else begin
    let t0 = t.times.(0) and t1 = t.times.(t.len - 1) in
    let span = max 1 (t1 - t0) in
    let value_at time =
      (* Last sample at or before [time]; the trace is a step function. *)
      let rec search lo hi =
        if lo >= hi then t.values.(lo)
        else
          let mid = (lo + hi + 1) / 2 in
          if t.times.(mid) <= time then search mid hi else search lo (mid - 1)
      in
      search 0 (t.len - 1)
    in
    Array.init points (fun i ->
        let frac = float_of_int i /. float_of_int (max 1 (points - 1)) in
        let time = t0 + int_of_float (frac *. float_of_int span) in
        (frac, value_at time))
  end
