(* SplitMix64 (Steele, Lea, Flood 2014), truncated to OCaml's 63-bit ints.
   Chosen for speed, statistical quality and trivially splittable streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }

let split t = { state = next64 t }

let split_seed ~seed ~index =
  (* Indexed stream derivation: position [index + 1] of the SplitMix64
     sequence rooted at [seed], re-mixed so that consecutive indices give
     uncorrelated child seeds. Pure — does not allocate a generator. *)
  let base = mix (Int64.of_int seed) in
  let z = Int64.add base (Int64.mul golden_gamma (Int64.of_int (index + 1))) in
  Int64.to_int (Int64.shift_right_logical (mix z) 1)

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let word t = Int64.to_int (Int64.shift_right_logical (next64 t) 1)

let int t bound =
  assert (bound > 0);
  next t mod bound

let float t bound =
  let x = Int64.to_int (Int64.shift_right_logical (next64 t) 11) in
  bound *. (float_of_int x /. 9007199254740992.0)

let bool t p = float t 1.0 < p
