(** Deterministic pseudo-random number generation for the simulator.

    All randomness in the reproduction flows through this SplitMix64
    generator so that every experiment is exactly reproducible from its
    seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created from
    the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each benchmark / thread its own stream. *)

val split_seed : seed:int -> index:int -> int
(** [split_seed ~seed ~index] deterministically derives the [index]-th
    child seed of a top-level [seed] without mutating any generator.
    Distinct indices yield statistically independent streams; repeat [i]
    of an experiment uses [split_seed ~seed ~index:i] so that
    median-of-N estimates are not biased by correlated replicas while
    the whole family stays reproducible from the one top-level seed. *)

val next : t -> int
(** [next t] returns a uniformly distributed non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)]. [bound] must
    be positive. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val word : t -> int
(** [word t] returns a full 63-bit pattern (may be "negative" when viewed
    as an OCaml int); used to synthesise arbitrary non-pointer data. *)
