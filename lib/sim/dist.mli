(** Random-variate distributions used by the workload generators.

    A distribution is a value of type {!t}; sampling always goes through a
    {!Rng.t} so results stay deterministic.

    {2 Degenerate-parameter semantics}

    The arrival processes ({!Arrival}) build distributions from
    user-tunable rates, so out-of-range numeric parameters are clamped
    rather than rejected, with the semantics documented per constructor
    below. Two invariants hold for every constructor:

    - parameters that were already in range produce bit-identical sample
      streams (CI compares metric exports byte-for-byte);
    - [sample] never divides by zero, never evaluates [log 0.], and never
      converts an out-of-range float to int (which is unspecified in
      OCaml) — unbounded variates are clamped to [max_int] first. *)

type t

val constant : int -> t
(** Always returns the same value. *)

val uniform : lo:int -> hi:int -> t
(** Uniform over the inclusive range [\[lo, hi\]]. Reversed bounds are
    swapped: [uniform ~lo:9 ~hi:3] means [uniform ~lo:3 ~hi:9]. *)

val exponential : mean:float -> t
(** Exponential with the given mean, rounded to int, minimum 1.
    Sampling draws u in (0, 1] — u = 0 cannot reach [log] — and a
    non-positive or NaN [mean] degenerates to the constant minimum 1.
    Astronomically large means saturate at [max_int] instead of
    overflowing the float->int conversion. *)

val pareto : shape:float -> scale:int -> cap:int -> t
(** Bounded Pareto: heavy-tailed sizes/lifetimes, truncated at [cap].
    [scale] is clamped to [>= 1] and [cap] to [>= scale]; a non-positive
    or NaN [shape] (arbitrarily heavy tail) puts all mass on [cap].
    Overflowing variates (tiny u at small shape) also land on [cap]. *)

val choice : (float * t) list -> t
(** Mixture distribution: pick a branch with the given weights (weights
    need not sum to one; they are normalised). Negative or NaN weights
    are clamped to 0; if the total weight is 0 the last branch is always
    picked (the RNG is still advanced, keeping streams aligned).
    An empty list raises [Invalid_argument]. *)

val shifted : int -> t -> t
(** [shifted k d] samples [d] and adds [k]. *)

val sample : t -> Rng.t -> int
(** Draw one variate. Results are always [>= 0] for the built-in
    constructors with non-negative parameters. *)

val mean_estimate : t -> float
(** Analytic or approximate mean, used for sizing simulations a priori.
    Respects the minimum-1 floor of {!exponential}. *)
