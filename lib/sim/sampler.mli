(** Memory-usage-over-time sampling (the simulation's PSRecord).

    The paper collects resident-set-size traces with PSRecord and reports
    both the time-weighted average and the peak (Figures 8 and 11). The
    runner records a sample whenever it chooses; averages are weighted by
    the wall-time distance between consecutive samples. *)

type t

val create : unit -> t

val record : t -> now:int -> rss:int -> unit
(** Add a sample: resident bytes [rss] at wall time [now] (cycles).
    Samples must be recorded with non-decreasing [now]. *)

val peak : t -> int
(** Largest recorded RSS, 0 if empty. *)

val average : t -> float
(** Time-weighted mean RSS, 0 if fewer than one sample. *)

val samples : t -> (int * int) array
(** All samples in recording order, as [(wall_cycles, rss_bytes)]. *)

val normalised : t -> points:int -> (float * int) array
(** Resample onto [points] equally spaced positions of normalised time
    [0..1] — the x-axis used by Figure 8. Empty traces and non-positive
    [points] yield [[||]] rather than raising. *)
