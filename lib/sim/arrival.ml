(* Open-loop arrival processes for the server workload family.

   An arrival process produces a strictly increasing sequence of absolute
   cycle timestamps at which requests enter the system. The sequence is a
   pure function of (process, seed): it never observes the service side,
   which is what makes the load OPEN-loop — when the allocator stalls, the
   generator keeps firing and queueing delay accumulates instead of being
   absorbed by a slowed-down client.

   Rates are expressed in arrivals per million cycles (aMc). At the cost
   model's scale one million cycles is roughly a third of a millisecond,
   so aMc numbers read like requests-per-millisecond-ish figures.

   Degenerate parameters follow the same clamp-don't-raise policy as
   [Dist]: a non-positive rate simply generates no arrivals. *)

type process =
  | Poisson of { rate : float }
  | Mmpp of { rate_lo : float; rate_hi : float; dwell_lo : int; dwell_hi : int }
  | Diurnal of { rate : float; period : int; depth : float }
  | Spike of { rate : float; spike_at : int; spike_len : int; spike_mult : float }

type mmpp_phase = Lo | Hi

type t = {
  process : process;
  rng : Rng.t;
  mutable cursor : int; (* last generated timestamp (or start) *)
  (* MMPP modulation state *)
  mutable phase : mmpp_phase;
  mutable phase_end : int;
}

let clean_rate r = if Float.is_finite r && r > 0. then r else 0.

let normalise = function
  | Poisson { rate } -> Poisson { rate = clean_rate rate }
  | Mmpp { rate_lo; rate_hi; dwell_lo; dwell_hi } ->
    Mmpp
      {
        rate_lo = clean_rate rate_lo;
        rate_hi = clean_rate rate_hi;
        dwell_lo = max 1 dwell_lo;
        dwell_hi = max 1 dwell_hi;
      }
  | Diurnal { rate; period; depth } ->
    let depth = if Float.is_finite depth then Float.min 1. (Float.max 0. depth) else 0. in
    Diurnal { rate = clean_rate rate; period = max 1 period; depth }
  | Spike { rate; spike_at; spike_len; spike_mult } ->
    let spike_mult =
      if Float.is_finite spike_mult && spike_mult > 0. then spike_mult else 0.
    in
    Spike { rate = clean_rate rate; spike_at = max 0 spike_at;
            spike_len = max 0 spike_len; spike_mult }

let make ?(start = 0) process rng =
  let process = normalise process in
  let phase_end =
    match process with
    | Mmpp { dwell_lo; _ } -> start + dwell_lo
    | _ -> start
  in
  { process; rng; cursor = start; phase = Lo; phase_end }

(* One exponential inter-arrival gap at [rate] aMc, floored at 1 cycle so
   timestamps are strictly increasing. Returns None when the rate is 0.
   u in (0, 1] as in [Dist.sample]; the 1e15-cycle ceiling keeps the
   float->int conversion defined even for absurdly small rates. *)
let exp_gap rng ~rate =
  if rate <= 0. then None
  else begin
    let u = 1.0 -. Rng.float rng 1.0 in
    let gap = -.log u *. 1_000_000.0 /. rate in
    let gap = if Float.is_finite gap then Float.min gap 1e15 else 1e15 in
    Some (max 1 (int_of_float gap))
  end

let mean_rate = function
  | Poisson { rate } -> rate
  | Mmpp { rate_lo; rate_hi; dwell_lo; dwell_hi } ->
    let dl = float_of_int dwell_lo and dh = float_of_int dwell_hi in
    ((rate_lo *. dl) +. (rate_hi *. dh)) /. (dl +. dh)
  | Diurnal { rate; _ } -> rate (* sinusoid integrates to zero over a period *)
  | Spike { rate; _ } -> rate (* dominated by the infinite off-spike segment *)

let peak_rate = function
  | Poisson { rate } -> rate
  | Mmpp { rate_lo; rate_hi; _ } -> Float.max rate_lo rate_hi
  | Diurnal { rate; depth; _ } -> rate *. (1. +. depth)
  | Spike { rate; spike_mult; _ } -> Float.max rate (rate *. spike_mult)

let describe = function
  | Poisson { rate } -> Printf.sprintf "poisson(%.1f aMc)" rate
  | Mmpp { rate_lo; rate_hi; dwell_lo; dwell_hi } ->
    Printf.sprintf "mmpp(%.1f/%.1f aMc, dwell %d/%d)" rate_lo rate_hi dwell_lo
      dwell_hi
  | Diurnal { rate; period; depth } ->
    Printf.sprintf "diurnal(%.1f aMc, period %d, depth %.2f)" rate period depth
  | Spike { rate; spike_at; spike_len; spike_mult } ->
    Printf.sprintf "spike(%.1f aMc, x%.1f @ %d for %d)" rate spike_mult
      spike_at spike_len

(* MMPP: exponential gaps at the current phase rate; a draw that crosses
   the phase boundary is discarded and redrawn from the boundary — valid
   because the exponential is memoryless. A zero-rate phase just fast
   forwards to its end. *)
let next_mmpp t ~rate_lo ~rate_hi ~dwell_lo ~dwell_hi =
  if rate_lo <= 0. && rate_hi <= 0. then None
  else begin
    let result = ref None in
    while !result = None do
      let rate = match t.phase with Lo -> rate_lo | Hi -> rate_hi in
      (* The caller parks the cursor on the boundary before switching, so
         the new phase starts exactly where the old one ended. *)
      let switch () =
        match t.phase with
        | Lo ->
          t.phase <- Hi;
          t.phase_end <- t.phase_end + dwell_hi
        | Hi ->
          t.phase <- Lo;
          t.phase_end <- t.phase_end + dwell_lo
      in
      match exp_gap t.rng ~rate with
      | None ->
        (* Silent phase: fast-forward to the phase boundary. *)
        t.cursor <- t.phase_end;
        switch ()
      | Some gap ->
        let candidate = t.cursor + gap in
        if candidate >= t.phase_end then begin
          t.cursor <- t.phase_end;
          switch ()
        end
        else begin
          t.cursor <- candidate;
          result := Some candidate
        end
    done;
    !result
  end

(* Diurnal: Lewis-Shedler thinning against the peak rate. Candidate points
   arrive at rate_max; each is accepted with probability
   rate(t)/rate_max where rate(t) = rate * (1 + depth * sin(2 pi t / period)).
   Every candidate advances the cursor by >= 1 cycle, so the loop always
   terminates and accepted timestamps are strictly increasing. *)
let next_diurnal t ~rate ~period ~depth =
  if rate <= 0. then None
  else begin
    let rate_max = rate *. (1. +. depth) in
    let result = ref None in
    while !result = None do
      match exp_gap t.rng ~rate:rate_max with
      | None -> result := Some (-1) (* unreachable: rate_max > 0 *)
      | Some gap ->
        let candidate = t.cursor + gap in
        t.cursor <- candidate;
        let phase =
          2.0 *. Float.pi *. float_of_int candidate /. float_of_int period
        in
        let inst = rate *. (1. +. (depth *. sin phase)) in
        if Rng.float t.rng 1.0 < inst /. rate_max then result := Some candidate
    done;
    match !result with Some x when x >= 0 -> Some x | _ -> None
  end

(* Spike: piecewise-constant rate — [rate] outside the spike window,
   [rate * spike_mult] inside. Draws that cross a segment boundary restart
   from the boundary (memoryless). *)
let next_spike t ~rate ~spike_at ~spike_len ~spike_mult =
  let spike_end = spike_at + spike_len in
  let rate_in = rate *. spike_mult in
  if rate <= 0. && rate_in <= 0. then None
  else begin
    let result = ref None and exhausted = ref false in
    while !result = None && not !exhausted do
      let in_spike = t.cursor >= spike_at && t.cursor < spike_end in
      let seg_rate = if in_spike then rate_in else rate in
      let seg_end =
        if t.cursor < spike_at then spike_at
        else if in_spike then spike_end
        else max_int
      in
      match exp_gap t.rng ~rate:seg_rate with
      | None ->
        if seg_end = max_int then exhausted := true
        else t.cursor <- seg_end
      | Some gap ->
        let candidate =
          if t.cursor > max_int - gap then max_int else t.cursor + gap
        in
        if candidate >= seg_end then
          if seg_end = max_int then exhausted := true (* clock overflow *)
          else t.cursor <- seg_end
        else begin
          t.cursor <- candidate;
          result := Some candidate
        end
    done;
    !result
  end

let next t =
  match t.process with
  | Poisson { rate } -> (
    match exp_gap t.rng ~rate with
    | None -> None
    | Some gap ->
      t.cursor <- t.cursor + gap;
      Some t.cursor)
  | Mmpp { rate_lo; rate_hi; dwell_lo; dwell_hi } ->
    next_mmpp t ~rate_lo ~rate_hi ~dwell_lo ~dwell_hi
  | Diurnal { rate; period; depth } -> next_diurnal t ~rate ~period ~depth
  | Spike { rate; spike_at; spike_len; spike_mult } ->
    next_spike t ~rate ~spike_at ~spike_len ~spike_mult

let take t n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else match next t with None -> List.rev acc | Some x -> go (x :: acc) (k - 1)
  in
  Array.of_list (go [] (max 0 n))
