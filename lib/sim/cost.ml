type t = {
  malloc_fast : int;
  malloc_slow : int;
  free_fast : int;
  free_slow : int;
  quarantine_push : int;
  quarantine_flush_per_entry : int;
  quarantine_flush_lock : int;
  quarantine_flush_batch_per_entry : int;
  merge_per_page : int;
  zero_per_byte : float;
  sweep_per_byte : float;
  mark_single_per_byte : float;
  mark_per_byte : float;
  shadow_test_per_granule : float;
  release_per_entry : int;
  syscall : int;
  page_fault : int;
  touch_per_byte : float;
  cold_alloc_per_byte : float;
  work_unit : int;
  stw_signal : int;
  stw_per_thread : int;
}

(* Calibration notes:
   - sweep_per_byte models a streaming read + shadow store; DRAM-bandwidth
     bound at ~16 B/cycle on the paper's machine gives ~0.0625, we charge a
     little more for the shadow-map update.
   - mark_single_per_byte is what ONE marker thread moves through memory:
     a single core's load + range-test + buffer-append loop streams ~4
     bytes per cycle, a quarter of the DRAM bandwidth above. The gap is
     exactly the headroom the parallel marking engine (lib/parsweep)
     exploits: aggregate marker throughput scales with domains until it
     hits the 16 B/cycle memory wall at four of them.
   - mark_per_byte is much higher: transitive marking chases pointers and
     takes a cache miss on most object visits (MarkUs/Boehm behaviour).
   - cold_alloc_per_byte captures the L2/L3 misses caused by the quarantine
     delaying reuse of hot memory; the paper identifies this (not sweeping)
     as the dominant time overhead (Section 5.5 / 5.6). *)
let default = {
  malloc_fast = 22;
  malloc_slow = 260;
  free_fast = 18;
  free_slow = 90;
  quarantine_push = 10;
  quarantine_flush_per_entry = 6;
  quarantine_flush_lock = 40;
  quarantine_flush_batch_per_entry = 2;
  merge_per_page = 12;
  zero_per_byte = 0.05;
  sweep_per_byte = 0.04;
  mark_single_per_byte = 0.25;
  mark_per_byte = 0.30;
  shadow_test_per_granule = 0.9;
  release_per_entry = 40;
  syscall = 1200;
  page_fault = 1400;
  touch_per_byte = 0.05;
  cold_alloc_per_byte = 1.5;
  work_unit = 1;
  stw_signal = 12000;
  stw_per_thread = 2500;
}

let scale_sweep f t = { t with sweep_per_byte = t.sweep_per_byte *. f }

let bytes_cost per_byte n =
  if n <= 0 then 0 else max 1 (int_of_float (per_byte *. float_of_int n))
