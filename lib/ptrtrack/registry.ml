let page = Vmem.page_size

type t = {
  resolve : int -> (int * int) option; (* value -> (base, usable) *)
  slot_target : (int, int) Hashtbl.t; (* slot -> target base *)
  incoming : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* base -> slot set *)
  slots_by_page : (int, (int, unit) Hashtbl.t) Hashtbl.t;
}

let create_with ~resolve =
  {
    resolve;
    slot_target = Hashtbl.create 4096;
    incoming = Hashtbl.create 4096;
    slots_by_page = Hashtbl.create 1024;
  }

let create heap =
  create_with ~resolve:(fun value ->
      Alloc.Jemalloc.allocation_containing heap value)

let set_member table key slot =
  let set =
    match Hashtbl.find_opt table key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace table key s;
      s
  in
  Hashtbl.replace set slot ()

let set_remove table key slot =
  match Hashtbl.find_opt table key with
  | None -> ()
  | Some s ->
    Hashtbl.remove s slot;
    if Hashtbl.length s = 0 then Hashtbl.remove table key

let forget_slot t ~slot =
  match Hashtbl.find_opt t.slot_target slot with
  | None -> ()
  | Some target ->
    Hashtbl.remove t.slot_target slot;
    set_remove t.incoming target slot;
    set_remove t.slots_by_page (slot / page) slot

let record_write t ~slot ~value =
  forget_slot t ~slot;
  if Layout.in_heap value then
    match t.resolve value with
    | Some (base, _) ->
      Hashtbl.replace t.slot_target slot base;
      set_member t.incoming base slot;
      set_member t.slots_by_page (slot / page) slot
    | None -> ()

let target_of t ~slot = Hashtbl.find_opt t.slot_target slot

let in_pointers t ~base =
  match Hashtbl.find_opt t.incoming base with
  | None -> []
  | Some set -> Hashtbl.fold (fun slot () acc -> slot :: acc) set []

let in_pointer_count t ~base =
  match Hashtbl.find_opt t.incoming base with
  | None -> 0
  | Some set -> Hashtbl.length set

let drop_slots_in t ~base ~usable f =
  let first = base / page and last = (base + usable - 1) / page in
  for p = first to last do
    match Hashtbl.find_opt t.slots_by_page p with
    | None -> ()
    | Some set ->
      let victims =
        Hashtbl.fold
          (fun slot () acc ->
            if slot >= base && slot < base + usable then slot :: acc else acc)
          set []
      in
      List.iter
        (fun slot ->
          match Hashtbl.find_opt t.slot_target slot with
          | Some target ->
            f ~slot ~target;
            forget_slot t ~slot
          | None -> ())
        victims
  done

let tracked_slots t = Hashtbl.length t.slot_target

let metadata_bytes t =
  (* slot->target entry + reverse-index entry + page-index entry *)
  Hashtbl.length t.slot_target * 48

let iter_slots t f =
  Hashtbl.iter (fun slot target -> f ~slot ~target) t.slot_target
