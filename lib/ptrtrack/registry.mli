(** Shared machinery for the compiler-instrumented pointer-tracking
    schemes (CRCount, pSweeper, DangSan — Sections 6.4/6.6).

    These schemes do not scan memory: the compiler instruments every
    pointer-typed store, so at runtime they know exactly which slots
    hold which pointers. The registry maintains that knowledge:
    slot → target-allocation mappings, the reverse index (who points at
    a given allocation), and the per-holder index needed to drop records
    when the memory containing a slot is itself freed.

    The price of exactness is coverage: integer writes that merely alias
    an address are invisible (no instrumentation fired), which is the
    structural difference from MineSweeper's conservative sweep. *)

type t

val create : Alloc.Jemalloc.t -> t
(** Registry over a jemalloc heap: values resolve through
    [Jemalloc.allocation_containing]. *)

val create_with : resolve:(int -> (int * int) option) -> t
(** Registry over any heap: [resolve value] returns [(base, usable)] of
    the allocation containing [value], or [None]. Lets the same
    ground-truth machinery audit non-jemalloc backends (the pooled
    allocator's differential oracle). *)

val record_write : t -> slot:int -> value:int -> unit
(** The instrumented store: replaces any previous record for [slot];
    records nothing when [value] does not resolve to a live heap
    allocation. *)

val target_of : t -> slot:int -> int option
(** Allocation base currently recorded for this slot. *)

val in_pointers : t -> base:int -> int list
(** Slots currently recorded as pointing into the allocation at [base]
    (lazily pruned: stale entries are dropped on read). *)

val in_pointer_count : t -> base:int -> int

val drop_slots_in : t -> base:int -> usable:int -> (slot:int -> target:int -> unit) -> unit
(** The memory holding these slots is being freed: remove every record
    whose slot lies in [base, base+usable) and report each removal. *)

val forget_slot : t -> slot:int -> unit

val tracked_slots : t -> int
val metadata_bytes : t -> int
(** Resident cost of the tracking structures. *)

val iter_slots : t -> (slot:int -> target:int -> unit) -> unit
