(** Typed metrics registry: the one place every layer of the stack
    publishes its accounting through.

    A registry holds named metrics of four kinds:

    - {e counters} — monotonically increasing integers (events, bytes);
    - {e gauges} — instantaneous levels (cache footprints, peaks);
    - {e histograms} — distributions over fixed log2 buckets;
    - {e derived} metrics — read-through callbacks onto state another
      module already maintains (resident bytes, live allocations), so
      existing accounting can join the registry without duplicating it.

    Metric names are unique per registry ({!Duplicate} otherwise) and
    conventionally dot-separated with a layer prefix: [ms.sweeps],
    [vmem.committed_bytes], [alloc.mallocs]. All values are plain
    integers — the export layer never has to format a float, which is
    what keeps metric exports byte-identical across identical runs. *)

type counter
type gauge
type histogram

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Derived_counter of (unit -> int)
  | Derived_gauge of (unit -> int)

type t

exception Duplicate of string
(** Raised when registering a name the registry already holds. *)

exception Kind_mismatch of string
(** Raised by {!merge_into} when a source metric collides with an
    existing destination metric of a different kind (or with a derived
    metric, which has no cell to merge into); carries the destination
    name. *)

val create : unit -> t

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val derive_counter : t -> string -> (unit -> int) -> unit
(** Register a read-through counter: the callback is consulted at
    read/export time. Not affected by {!reset}. *)

val derive_gauge : t -> string -> (unit -> int) -> unit

val metrics : t -> (string * metric) list
(** All registered metrics, sorted by name (the deterministic export
    order). *)

val names : t -> string list
val mem : t -> string -> bool
val find : t -> string -> metric option

val read : t -> string -> int option
(** Current scalar value: counter/gauge value, a histogram's observation
    count, or the callback's result for derived metrics. *)

val reset : t -> unit
(** Zero every stored counter, gauge and histogram. Derived metrics
    read through to live state and are unaffected. *)

val merge_into : ?prefix:string -> t -> into:t -> unit
(** [merge_into ~prefix src ~into] folds every metric of [src] into
    [into] under the name [prefix ^ name] (default prefix [""]) — the
    fleet aggregator's building block. Merging is {e additive union}:

    - counters (and sampled derived counters) add their value into a
      plain counter, created if absent;
    - gauges (and sampled derived gauges) add into a plain gauge —
      levels sum across processes; note a high-watermark gauge's sum
      over-approximates the true union watermark;
    - histograms add {e bucket-wise}, including observation count and
      sum, so quantiles over the merged histogram are exact at bucket
      granularity.

    Derived metrics are sampled once at merge time and materialise as
    plain cells in [into]; [src] is never mutated. Name collisions with
    a same-kind destination metric aggregate as above (merging several
    sources under one prefix is how cross-tenant quantiles are built);
    collisions with a different kind — or with any derived destination —
    raise {!Kind_mismatch}. Source metrics are processed in sorted name
    order, so the result is deterministic. *)

module Counter : sig
  val incr : counter -> int -> unit
  (** [incr c n] adds [n] (≥ 0) to the counter. *)

  val reset : counter -> unit
  val value : counter -> int
  val name : counter -> string
end

module Gauge : sig
  val set : gauge -> int -> unit

  val set_max : gauge -> int -> unit
  (** Keep the maximum of the current level and the new sample —
      high-watermark gauges (peak quarantine, peak RSS). *)

  val value : gauge -> int
  val name : gauge -> string
end

module Histogram : sig
  val bucket_count : int
  (** Number of fixed log2 buckets (63: every non-negative OCaml [int]
      maps to one). *)

  val bucket_of : int -> int
  (** [bucket_of v] — the bucket index for an observation: 0 for
      [v <= 1], otherwise [floor (log2 v)]. Bucket [i] therefore counts
      observations in [[2^i, 2^(i+1))]. *)

  val lower_bound : int -> int
  (** Smallest observation value the bucket covers (0 for bucket 0). *)

  val upper_bound : int -> int
  (** Exclusive upper edge of the bucket: 2 for bucket 0, [2^(i+1)]
      otherwise; the open-ended last bucket reports [max_int]. *)

  val observe : histogram -> int -> unit
  (** Record one observation. Negative values clamp to 0. *)

  val count : histogram -> int
  val sum : histogram -> int

  val buckets : histogram -> (int * int) list
  (** Non-empty buckets as [(lower_bound, count)] pairs, ascending. *)

  val quantile : histogram -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.], clamped)
      with {e within-bucket linear interpolation}: the target rank
      [q * count] is located in its bucket and interpolated between the
      bucket's edges assuming observations are uniform inside it. This
      replaces the raw-upper-bound readout, which overstated tails by up
      to 2x: the error is now bounded by the bucket width, i.e. a
      worst-case relative error of [(hi-lo)/lo] (< 100% for buckets
      >= 1, typically far smaller — see DESIGN §8 for the derivation).
      [q <= 0] reads the first non-empty bucket's lower edge; [q >= 1]
      the last non-empty bucket's upper edge (the open-ended last bucket
      interpolates against a synthetic [2*lower_bound] edge). Empty
      histograms read 0. *)

  val name : histogram -> string
end
