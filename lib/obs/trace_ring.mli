(** Bounded structured trace ring: the span store behind the stack's
    tracing.

    Spans carry a phase tag (the five cost centres of a sweeping
    allocator), a free-form label, simulated-clock timestamps, the
    cost-model bytes the phase charged, and small integer attributes.
    The ring is fixed-size: once full, each emission evicts the oldest
    retained span, so tracing can stay on in production configurations.
    An instantaneous event is a span with [t_start = t_end]. *)

type phase =
  | Mark  (** marking phase of a sweep (full or incremental) *)
  | Scan  (** stop-the-world dirty-page re-scan *)
  | Purge  (** post-sweep allocator purge *)
  | Quarantine  (** quarantine traffic: free intercepts, release phase *)
  | Alloc_slow  (** allocation slow path (allocation pauses) *)
  | Race  (** race-checker window: lock-in to sweep completion, and detected race spans *)
  | Request  (** server-family request processing (slow-request spans) *)
  | Stage  (** sweep-pipeline stage execution (mark/merge/release/purge) *)

val phase_name : phase -> string
val phase_of_name : string -> phase option

type span = {
  seq : int;  (** emission index, monotonically increasing, never reused *)
  phase : phase;
  label : string;
  t_start : int;  (** simulated cycles *)
  t_end : int;
  bytes : int;  (** cost-model bytes charged by the phase; 0 if n/a *)
  attrs : (string * int) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 1024 spans. *)

val capacity : t -> int

val emit :
  t ->
  phase:phase ->
  label:string ->
  t_start:int ->
  t_end:int ->
  ?bytes:int ->
  ?attrs:(string * int) list ->
  unit ->
  unit

type pending
(** An entered-but-not-exited span (the begin half of a begin/end
    profiling hook). *)

val enter : now:int -> phase -> string -> pending

val exit :
  t -> pending -> now:int -> ?bytes:int -> ?attrs:(string * int) list ->
  unit -> unit
(** Complete a pending span and emit it. *)

val spans : t -> span list
(** Retained spans, oldest first. *)

val emitted : t -> int
(** Total spans ever emitted (≥ retained once the ring wraps). *)

val retained : t -> int

val wrapped : t -> bool
(** Whether eviction has discarded any span yet — when [false], [spans]
    is the complete history of the run. *)
