(** Deterministic JSONL export of a registry and a trace ring.

    One schema for everything that counts: experiments, report tables
    and the check.sh gates all read these lines. Every value is an
    integer and every timestamp comes from the simulated clock, so two
    identical runs export byte-identical files.

    Metrics ([metrics_schema]):
    {v
    {"schema":"msweep-metrics-v1","metrics":N}
    {"metric":"ms.sweeps","type":"counter","value":12}
    {"metric":"ms.summary_cache_bytes","type":"gauge","value":3456}
    {"metric":"ms.sweep_duration_cycles","type":"histogram","count":3,
     "sum":900,"buckets":[[256,2],[512,1]]}
    v}
    Lines are sorted by metric name; derived metrics export as their
    underlying kind. The header's [metrics] field equals the number of
    metric lines that follow (a truncation check).

    Spans ([spans_schema]):
    {v
    {"schema":"msweep-spans-v1","retained":N,"emitted":M}
    {"span":7,"phase":"mark","label":"mark-full","start":10,"end":42,
     "bytes":8192,"attrs":{"sweep":2}}
    v} *)

val metrics_schema : string
val spans_schema : string

val metrics_to_string : Registry.t -> string
(** Header line plus one line per metric, each ["\n"]-terminated. *)

val spans_to_string : Trace_ring.t -> string

val write_file : string -> string -> unit
(** [write_file path contents] — binary mode, so exports are
    byte-identical across platforms. *)

(** {1 Reading the format back}

    A minimal parser for exactly the JSON subset the exporter emits
    (objects, arrays, integers, strings without escapes) — enough for
    round-trip tests and downstream consumers inside this repo. *)

type json =
  | J_int of int
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

val parse_line : string -> (json, string) result

val member : string -> json -> json option
(** [member key (J_obj ...)] — field lookup; [None] on other shapes. *)

val to_int : json -> int option
val to_string : json -> string option

val parse_metrics : string -> ((string * int) list, string) result
(** Parse a full metrics export back into [(name, scalar)] pairs —
    counters/gauges yield their value, histograms their observation
    count. Validates the header line and the advertised line count. *)
