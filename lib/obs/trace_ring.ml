type phase =
  | Mark
  | Scan
  | Purge
  | Quarantine
  | Alloc_slow
  | Race
  | Request
  | Stage

let phase_name = function
  | Mark -> "mark"
  | Scan -> "scan"
  | Purge -> "purge"
  | Quarantine -> "quarantine"
  | Alloc_slow -> "alloc_slow"
  | Race -> "race"
  | Request -> "request"
  | Stage -> "stage"

let phase_of_name = function
  | "mark" -> Some Mark
  | "scan" -> Some Scan
  | "purge" -> Some Purge
  | "quarantine" -> Some Quarantine
  | "alloc_slow" -> Some Alloc_slow
  | "race" -> Some Race
  | "request" -> Some Request
  | "stage" -> Some Stage
  | _ -> None

type span = {
  seq : int;
  phase : phase;
  label : string;
  t_start : int;
  t_end : int;
  bytes : int;
  attrs : (string * int) list;
}

type t = {
  ring : span option array;
  mutable next : int;
  mutable emitted : int;
}

let create ?(capacity = 1024) () =
  assert (capacity > 0);
  { ring = Array.make capacity None; next = 0; emitted = 0 }

let capacity t = Array.length t.ring

let emit t ~phase ~label ~t_start ~t_end ?(bytes = 0) ?(attrs = []) () =
  let s = { seq = t.emitted; phase; label; t_start; t_end; bytes; attrs } in
  t.ring.(t.next) <- Some s;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.emitted <- t.emitted + 1

type pending = { p_phase : phase; p_label : string; p_start : int }

let enter ~now phase label = { p_phase = phase; p_label = label; p_start = now }

let exit t p ~now ?bytes ?attrs () =
  emit t ~phase:p.p_phase ~label:p.p_label ~t_start:p.p_start ~t_end:now
    ?bytes ?attrs ()

let spans t =
  let n = Array.length t.ring in
  let rec collect i acc =
    if i = n then List.rev acc
    else
      let idx = (t.next + i) mod n in
      collect (i + 1)
        (match t.ring.(idx) with Some s -> s :: acc | None -> acc)
  in
  collect 0 []

let emitted t = t.emitted
let retained t = min t.emitted (Array.length t.ring)
let wrapped t = t.emitted > Array.length t.ring
