(* Metric cells are Atomic.t so handles handed to worker domains (the
   parallel marking engine bumps counters from its pool) are safe to
   update without a lock: counter increments and histogram observations
   are fetch-and-add, gauge high-water marks are a CAS loop. The public
   API is unchanged — callers never see the atomics. *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : int Atomic.t }

let log2_buckets = 63

type histogram = {
  h_name : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Derived_counter of (unit -> int)
  | Derived_gauge of (unit -> int)

(* Insertion-ordered assoc (reversed); reads sort by name, so the
   export order is independent of registration order. Registration
   itself stays coordinator-only — only the cells are domain-safe. *)
type t = { mutable entries : (string * metric) list }

exception Duplicate of string
exception Kind_mismatch of string

let create () = { entries = [] }

let register t name metric =
  if List.mem_assoc name t.entries then raise (Duplicate name);
  t.entries <- (name, metric) :: t.entries

let counter t name =
  let c = { c_name = name; c_value = Atomic.make 0 } in
  register t name (Counter c);
  c

let gauge t name =
  let g = { g_name = name; g_value = Atomic.make 0 } in
  register t name (Gauge g);
  g

let histogram t name =
  let h =
    { h_name = name;
      h_buckets = Array.init log2_buckets (fun _ -> Atomic.make 0);
      h_count = Atomic.make 0;
      h_sum = Atomic.make 0 }
  in
  register t name (Histogram h);
  h

let derive_counter t name fn = register t name (Derived_counter fn)
let derive_gauge t name fn = register t name (Derived_gauge fn)

let metrics t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) t.entries

let names t = List.map fst (metrics t)
let mem t name = List.mem_assoc name t.entries
let find t name = List.assoc_opt name t.entries

let read t name =
  match find t name with
  | None -> None
  | Some (Counter c) -> Some (Atomic.get c.c_value)
  | Some (Gauge g) -> Some (Atomic.get g.g_value)
  | Some (Histogram h) -> Some (Atomic.get h.h_count)
  | Some (Derived_counter fn) | Some (Derived_gauge fn) -> Some (fn ())

let reset t =
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c -> Atomic.set c.c_value 0
      | Gauge g -> Atomic.set g.g_value 0
      | Histogram h ->
        Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
        Atomic.set h.h_count 0;
        Atomic.set h.h_sum 0
      | Derived_counter _ | Derived_gauge _ -> ())
    t.entries

(* Namespaced additive union: every metric of [src] lands in [into] under
   [prefix ^ name]. Scalars merge by their kind's value (derived metrics
   are sampled at merge time and materialise as plain cells); histograms
   merge bucket-wise, preserving count and sum so quantiles over the
   union stay exact at bucket granularity. Merging the same prefix twice
   (or several sources under one prefix) therefore aggregates — the fleet
   layer's cross-tenant quantiles are exactly this. Iteration follows
   [metrics src] (sorted by name), so the result is deterministic
   regardless of registration order. *)
let merge_into ?(prefix = "") src ~into =
  let add_counter name v =
    match List.assoc_opt name into.entries with
    | None ->
      let c = { c_name = name; c_value = Atomic.make v } in
      register into name (Counter c)
    | Some (Counter c) -> ignore (Atomic.fetch_and_add c.c_value v)
    | Some _ -> raise (Kind_mismatch name)
  in
  let add_gauge name v =
    match List.assoc_opt name into.entries with
    | None ->
      let g = { g_name = name; g_value = Atomic.make v } in
      register into name (Gauge g)
    | Some (Gauge g) -> ignore (Atomic.fetch_and_add g.g_value v)
    | Some _ -> raise (Kind_mismatch name)
  in
  let add_histogram name (h : histogram) =
    let dst =
      match List.assoc_opt name into.entries with
      | None ->
        let fresh =
          { h_name = name;
            h_buckets = Array.init log2_buckets (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0 }
        in
        register into name (Histogram fresh);
        fresh
      | Some (Histogram dst) -> dst
      | Some _ -> raise (Kind_mismatch name)
    in
    for i = 0 to log2_buckets - 1 do
      let n = Atomic.get h.h_buckets.(i) in
      if n > 0 then ignore (Atomic.fetch_and_add dst.h_buckets.(i) n)
    done;
    ignore (Atomic.fetch_and_add dst.h_count (Atomic.get h.h_count));
    ignore (Atomic.fetch_and_add dst.h_sum (Atomic.get h.h_sum))
  in
  List.iter
    (fun (name, m) ->
      let name = prefix ^ name in
      match m with
      | Counter c -> add_counter name (Atomic.get c.c_value)
      | Derived_counter fn -> add_counter name (fn ())
      | Gauge g -> add_gauge name (Atomic.get g.g_value)
      | Derived_gauge fn -> add_gauge name (fn ())
      | Histogram h -> add_histogram name h)
    (metrics src)

module Counter = struct
  let incr c n =
    assert (n >= 0);
    ignore (Atomic.fetch_and_add c.c_value n)

  let reset c = Atomic.set c.c_value 0
  let value c = Atomic.get c.c_value
  let name c = c.c_name
end

module Gauge = struct
  let set g v = Atomic.set g.g_value v

  let rec set_max g v =
    let cur = Atomic.get g.g_value in
    if v > cur && not (Atomic.compare_and_set g.g_value cur v) then
      set_max g v

  let value g = Atomic.get g.g_value
  let name g = g.g_name
end

module Histogram = struct
  let bucket_count = log2_buckets

  let bucket_of v =
    if v <= 1 then 0
    else begin
      let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
      min (log2_buckets - 1) (go v 0)
    end

  let lower_bound i = if i = 0 then 0 else 1 lsl i

  (* Exclusive upper edge of bucket [i]. Bucket 0 covers [0, 2); bucket i
     covers [2^i, 2^(i+1)); the last bucket is open-ended and reports
     max_int (1 lsl 63 would overflow). *)
  let upper_bound i =
    if i = 0 then 2 else if i >= log2_buckets - 1 then max_int else 1 lsl (i + 1)

  let observe h v =
    let v = max 0 v in
    let b = bucket_of v in
    ignore (Atomic.fetch_and_add h.h_buckets.(b) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    ignore (Atomic.fetch_and_add h.h_sum v)

  let count h = Atomic.get h.h_count
  let sum h = Atomic.get h.h_sum

  let buckets h =
    let acc = ref [] in
    for i = log2_buckets - 1 downto 0 do
      let n = Atomic.get h.h_buckets.(i) in
      if n > 0 then acc := (lower_bound i, n) :: !acc
    done;
    !acc

  (* Quantile with within-bucket linear interpolation. Reporting a raw
     bucket upper bound overstates the tail by up to 2x (a p999 of 1025
     cycles would read as 2048); interpolating linearly inside the bucket
     assumes observations are uniform there, which bounds the absolute
     error by the bucket width — worst-case relative error (hi-lo)/lo,
     i.e. < 100% for buckets >= 1 and typically far less. See DESIGN §8.

       q <= 0 -> lower edge of the first non-empty bucket
       q >= 1 -> upper edge of the last non-empty bucket
       empty histogram -> 0.                                            *)
  let quantile h q =
    let count = Atomic.get h.h_count in
    if count = 0 then 0.
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let target = q *. float_of_int count in
      let result = ref None and cum = ref 0 in
      let i = ref 0 in
      while !result = None && !i < log2_buckets do
        let n = Atomic.get h.h_buckets.(!i) in
        if n > 0 && float_of_int (!cum + n) >= target then begin
          let lo = float_of_int (lower_bound !i) in
          (* The last bucket is open-ended; interpolate against a synthetic
             2*lo edge rather than max_int. *)
          let hi =
            if !i >= log2_buckets - 1 then lo *. 2.
            else float_of_int (upper_bound !i)
          in
          let within = (target -. float_of_int !cum) /. float_of_int n in
          let within = Float.min 1. (Float.max 0. within) in
          result := Some (lo +. (within *. (hi -. lo)))
        end
        else begin
          cum := !cum + n;
          incr i
        end
      done;
      (* Unreachable fallback: the cumulative count always reaches
         [count] >= target within the loop. *)
      match !result with Some x -> x | None -> 0.
    end

  let name h = h.h_name
end
