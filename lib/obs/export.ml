let metrics_schema = "msweep-metrics-v1"
let spans_schema = "msweep-spans-v1"

(* Metric names and span labels are identifier-like by convention, but
   escape the JSON-significant characters anyway. *)
let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_attrs b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v))
    attrs;
  Buffer.add_char b '}'

let add_metric_line b name (metric : Registry.metric) =
  let scalar kind v =
    Buffer.add_string b "{\"metric\":";
    add_json_string b name;
    Buffer.add_string b ",\"type\":\"";
    Buffer.add_string b kind;
    Buffer.add_string b "\",\"value\":";
    Buffer.add_string b (string_of_int v);
    Buffer.add_string b "}\n"
  in
  match metric with
  | Registry.Counter c -> scalar "counter" (Registry.Counter.value c)
  | Registry.Derived_counter fn -> scalar "counter" (fn ())
  | Registry.Gauge g -> scalar "gauge" (Registry.Gauge.value g)
  | Registry.Derived_gauge fn -> scalar "gauge" (fn ())
  | Registry.Histogram h ->
    Buffer.add_string b "{\"metric\":";
    add_json_string b name;
    Buffer.add_string b ",\"type\":\"histogram\",\"count\":";
    Buffer.add_string b (string_of_int (Registry.Histogram.count h));
    Buffer.add_string b ",\"sum\":";
    Buffer.add_string b (string_of_int (Registry.Histogram.sum h));
    Buffer.add_string b ",\"buckets\":[";
    List.iteri
      (fun i (lo, n) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "[%d,%d]" lo n))
      (Registry.Histogram.buckets h);
    Buffer.add_string b "]}\n"

let metrics_to_string reg =
  let ms = Registry.metrics reg in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"%s\",\"metrics\":%d}\n" metrics_schema
       (List.length ms));
  List.iter (fun (name, m) -> add_metric_line b name m) ms;
  Buffer.contents b

let spans_to_string ring =
  let spans = Trace_ring.spans ring in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"%s\",\"retained\":%d,\"emitted\":%d}\n"
       spans_schema (List.length spans) (Trace_ring.emitted ring));
  List.iter
    (fun (s : Trace_ring.span) ->
      Buffer.add_string b (Printf.sprintf "{\"span\":%d,\"phase\":\"%s\"" s.seq
        (Trace_ring.phase_name s.phase));
      Buffer.add_string b ",\"label\":";
      add_json_string b s.label;
      Buffer.add_string b
        (Printf.sprintf ",\"start\":%d,\"end\":%d,\"bytes\":%d,\"attrs\":"
           s.t_start s.t_end s.bytes);
      add_attrs b s.attrs;
      Buffer.add_string b "}\n")
    spans;
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)

(* ------------------------------------------------------------------ *)
(* Minimal reader for the subset above                                 *)

type json =
  | J_int of int
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some 'n' -> Buffer.add_char b '\n'
        | _ -> fail "unsupported escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected integer";
    int_of_string (String.sub line start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J_obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_list []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J_list (items [])
      end
    | Some ('-' | '0' .. '9') -> J_int (parse_int ())
    | _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | J_obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function J_int i -> Some i | _ -> None
let to_string = function J_str s -> Some s | _ -> None

let parse_metrics contents =
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' contents)
  in
  match lines with
  | [] -> Error "empty export"
  | header :: rest -> (
    match parse_line header with
    | Error e -> Error ("header: " ^ e)
    | Ok h -> (
      match (member "schema" h, member "metrics" h) with
      | Some (J_str s), _ when s <> metrics_schema ->
        Error ("unexpected schema " ^ s)
      | Some (J_str _), Some (J_int count) ->
        if count <> List.length rest then
          Error
            (Printf.sprintf "header advertises %d metrics, found %d" count
               (List.length rest))
        else
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | line :: rest -> (
              match parse_line line with
              | Error e -> Error e
              | Ok j -> (
                match (member "metric" j, member "type" j) with
                | Some (J_str name), Some (J_str "histogram") -> (
                  match member "count" j with
                  | Some (J_int c) -> go ((name, c) :: acc) rest
                  | _ -> Error (name ^ ": histogram without count"))
                | Some (J_str name), Some (J_str _) -> (
                  match member "value" j with
                  | Some (J_int v) -> go ((name, v) :: acc) rest
                  | _ -> Error (name ^ ": missing value"))
                | _ -> Error "line without metric/type"))
          in
          go [] rest
      | _ -> Error "malformed header"))
