(** The one-pass analyzer: fold a trace stream through the abstract
    domain and emit the static UAF-exposure report, retention
    predictions and per-policy bounds.

    No Vmem, no Instance, no replay: state is the points-to graph plus
    per-id lifetimes, so memory is proportional to simultaneously-live
    state, independent of trace length (the analyzer reads the trace
    through {!Workloads.Trace.fold_stream}).

    Prediction contract (the soundness argument, DESIGN §11): every
    dynamic [oracle-unsound] id is in [predicted_unsound], and every
    dynamic [oracle-retention] id is in [predicted_retained] —
    {!Sanitizer.Sweep_oracle.certify_static} enforces zero static false
    negatives. *)

type window_stats = Lifetime.window_stats = {
  opened : int;
  closed : int;
  open_at_end : int;
  max_len : int;
  total_len : int;
}

type t = {
  trace_name : string;
  threads : int;
  ops : int;
  allocs : int;
  frees : int;
  findings : Sanitizer.Diagnostic.t list;  (** sorted (rule, op, message) *)
  predicted_unsound : int list;
      (** ids freed with a surviving instrumented-pointer edge: if the
          backend recycles one of these while the pointer lives, that is
          the oracle's soundness violation *)
  predicted_retained : int list;
      (** superset of ids conservative sweeping may retain with no
          registry pointer: surviving pointer or alias edges, frees
          under live wild data, sub-granule extents *)
  windows : window_stats;
  wild_stores : int;
  subgranule_frees : int;
  bounds : Policy.bounds list;
}

val analyze : ?policies:Policy.t list -> Workloads.Trace.stream -> t
(** Consumes the stream (single pass). The first MineSweeper policy (or
    the default configuration if none) fixes the graph semantics:
    zeroing decides whether interior slots die at free; its shadow
    granule decides the sub-granule retention class. *)

val analyze_trace : ?policies:Policy.t list -> Workloads.Trace.t -> t

val to_json : ?pools:Poolplan.t -> t -> string
(** One line of deterministic JSON (schema [msweep-flowcheck-v2]):
    integers and strings only, fields in fixed order — byte-identical
    across runs on equal input. v2 keeps every v1 field unchanged (name,
    type, order) and appends [sites] and [pools], carrying the pooling
    analysis when [?pools] is given and empty arrays otherwise, so v1
    consumers remain correct on v2 documents. *)

val json_field : string -> string -> string option
(** [json_field doc key]: tolerant top-level field extractor (raw value
    text, trimmed of nothing). String- and bracket-aware but schema
    agnostic: reads v1 and v2 documents alike, which is the
    compatibility contract the schema bump relies on. *)

val render : t -> string
(** Human-readable multi-line summary (findings sorted). *)

val check_bounds :
  t ->
  policy:string ->
  peak_quarantine_bytes:int ->
  swept_bytes:int ->
  sweeps:int ->
  Sanitizer.Diagnostic.t list
(** Differential regression detector: compare measured [ms.*] values
    from a dynamic replay against the static bounds of [policy].
    Returns [flow-bound-occupancy] / [flow-bound-swept] /
    [flow-bound-sweeps] errors for every exceeded bound (empty when the
    bounds dominate, as they must). *)

val corpus_expectations : (string * string list) list
(** Expected flowcheck rule sets for each {!Sanitizer.Corpus} lint case
    (cases whose badness is not a dangling-pointer exposure expect
    the empty set). *)

val corpus_self_test : unit -> (string * string list * string list * bool) list
(** [(name, expected, got, passed)] per corpus case. *)
