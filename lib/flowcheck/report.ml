module Trace = Workloads.Trace
module Diagnostic = Sanitizer.Diagnostic

type window_stats = Lifetime.window_stats = {
  opened : int;
  closed : int;
  open_at_end : int;
  max_len : int;
  total_len : int;
}

type t = {
  trace_name : string;
  threads : int;
  ops : int;
  allocs : int;
  frees : int;
  findings : Diagnostic.t list;
  predicted_unsound : int list;
  predicted_retained : int list;
  windows : window_stats;
  wild_stores : int;
  subgranule_frees : int;
  bounds : Policy.bounds list;
}

let primary_policy policies =
  match
    List.find_opt (function Policy.Minesweeper _ -> true | _ -> false) policies
  with
  | Some p -> p
  | None -> Policy.Minesweeper Minesweeper.Config.default

let render_chain chain id =
  let hops =
    List.rev_map
      (fun (slot, op) -> Printf.sprintf "%s@%d" (Absval.slot_to_string slot) op)
      chain
  in
  String.concat " -> " (hops @ [ Printf.sprintf "id %d" id ])

let analyze ?(policies = Policy.default_policies) stream =
  let primary = primary_policy policies in
  let zeroing = Policy.zeroing primary in
  let granule = Option.value ~default:16 (Policy.shadow_granule primary) in
  let lt = Lifetime.create () in
  let pt = Pointsto.create () in
  let accs = List.map (fun p -> (p, Policy.acc p)) policies in
  let diags = ref [] in
  let flag ~rule ~op message =
    diags :=
      Diagnostic.make ~rule ~severity:Diagnostic.Warning ~op_index:op message
      :: !diags
  in
  let unsound : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let retained : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let retain id size = Hashtbl.replace retained id size in
  let wild_stores = ref 0 in
  let subgranule = ref 0 in
  let allocs = ref 0 in
  let frees = ref 0 in
  (* An edge to [id] died at [op]: close the dangling window once the
     last one is gone. *)
  let edge_died op = function
    | None -> ()
    | Some (target, _stored_at) -> (
      match Absval.target_id target with
      | Some id
        when Lifetime.find lt id = None
             && Lifetime.window_is_open lt id
             && Pointsto.holder_count pt id = 0 ->
        Lifetime.close_window lt ~id ~op
      | Some _ | None -> ())
  in
  let resolve loc =
    match loc with
    | Trace.Root w -> Some (Absval.normalize_root w)
    | Trace.Field (id, w) -> (
      match Lifetime.find lt id with
      | Some { Lifetime.size; _ } -> Absval.normalize_field ~id ~size w
      | None -> None)
  in
  let step () i op =
    (match op with
    | Trace.Alloc { id; size; site = _ } ->
      incr allocs;
      List.iter (fun (_, a) -> Policy.acc_alloc a ~size) accs;
      Lifetime.on_alloc lt ~id ~size ~op:i
    | Trace.Free { id; thread = _ } -> (
      match Lifetime.on_free lt ~id ~op:i with
      | None -> ()
      | Some { Lifetime.size; _ } ->
        incr frees;
        List.iter (fun (_, a) -> Policy.acc_free a ~size) accs;
        let edges = Pointsto.holders pt id in
        let outside =
          List.filter
            (fun (slot, _, _) ->
              match slot with
              | Absval.Field_slot (h, _) -> h <> id
              | Absval.Root_slot _ -> true)
            edges
        in
        (* Zeroing destroys every slot stored inside the dying object —
           exactly what the replay's registry drop models. *)
        if zeroing then
          List.iter
            (fun (_, target, stored_at) ->
              edge_died i (Some (target, stored_at)))
            (Pointsto.drop_fields_of pt id);
        let ptrs, aliases =
          List.partition
            (fun (_, target, _) ->
              match target with Absval.Ptr _ -> true | _ -> false)
            outside
        in
        (match ptrs with
        | (slot, _, _) :: _ ->
          Hashtbl.replace unsound id ();
          retain id size;
          flag ~rule:"flow-dangling" ~op:i
            (Printf.sprintf
               "id %d freed while %d live slot(s) still point at it; \
                witness: %s"
               id (List.length ptrs)
               (render_chain (Pointsto.witness_chain pt slot) id))
        | [] -> ());
        (match (ptrs, aliases) with
        | [], (slot, _, _) :: _ ->
          retain id size;
          flag ~rule:"flow-alias" ~op:i
            (Printf.sprintf
               "id %d freed while %d data slot(s) alias its address \
                (unlucky integers, e.g. %s): conservative retention expected"
               id (List.length aliases)
               (Absval.slot_to_string slot))
        | _ -> ());
        if outside <> [] then Lifetime.open_window lt ~id ~op:i;
        if Pointsto.wild_count pt > 0 then retain id size;
        if Policy.usable primary size < granule then begin
          incr subgranule;
          retain id size
        end)
    | Trace.Store_ptr { loc; target } -> (
      match (resolve loc, Lifetime.find lt target) with
      | Some slot, Some _ ->
        edge_died i (Pointsto.store pt slot (Absval.Ptr target) ~op:i)
      | _ -> ())
    | Trace.Clear_ptr { loc; target } -> (
      match (resolve loc, Lifetime.find lt target) with
      | Some slot, Some _ -> (
        match Pointsto.contents pt slot with
        | Some ((Absval.Ptr t | Absval.Alias t), _) when t = target ->
          edge_died i (Pointsto.clear pt slot)
        | Some _ | None -> ())
      | _ -> ())
    | Trace.Store_data { loc; value } -> (
      match resolve loc with
      | None -> ()
      | Some slot -> (
        match Absval.classify_data value with
        | `Alias id when Lifetime.find lt id <> None ->
          edge_died i (Pointsto.store pt slot (Absval.Alias id) ~op:i)
        | `Alias _ | `Harmless ->
          (* dead-alias values resolve to 0 at replay: a plain clear *)
          edge_died i (Pointsto.clear pt slot)
        | `Wild ->
          incr wild_stores;
          flag ~rule:"flow-wild" ~op:i
            (Printf.sprintf
               "heap-range data value %#x stored at %s may alias any \
                allocation (conservative retention possible)"
               value (Absval.slot_to_string slot));
          edge_died i (Pointsto.store pt slot Absval.Wild ~op:i)))
    | Trace.Work _ -> ());
    ()
  in
  let ops = ref 0 in
  Trace.fold_stream stream ~init:() ~f:(fun () i op ->
      ops := i + 1;
      step () i op);
  let sorted_keys tbl =
    Hashtbl.fold (fun id _ acc -> id :: acc) tbl [] |> List.sort compare
  in
  let retained_ids = sorted_keys retained in
  let bounds =
    List.map
      (fun (pol, a) ->
        let retained_bytes =
          Hashtbl.fold
            (fun _ size acc -> acc + Policy.usable pol size)
            retained 0
        in
        Policy.finish a ~retained_bytes)
      accs
  in
  {
    trace_name = Trace.stream_name stream;
    threads = Trace.stream_threads stream;
    ops = !ops;
    allocs = !allocs;
    frees = !frees;
    findings = Diagnostic.sort (List.rev !diags);
    predicted_unsound = sorted_keys unsound;
    predicted_retained = retained_ids;
    windows = Lifetime.window_stats lt ~end_op:!ops;
    wild_stores = !wild_stores;
    subgranule_frees = !subgranule;
    bounds;
  }

let analyze_trace ?policies trace =
  analyze ?policies (Trace.stream_of_trace trace)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_ints ids =
  "[" ^ String.concat "," (List.map string_of_int ids) ^ "]"

let bounds_to_json (b : Policy.bounds) =
  Printf.sprintf
    "{\"policy\":\"%s\",\"allocs\":%d,\"frees\":%d,\"peak_live_bytes\":%d,\
     \"total_freed_bytes\":%d,\"max_entry_bytes\":%d,\"occupancy_bound\":%d,\
     \"modeled_occupancy\":%d,\"sweeps_bound\":%d,\"swept_bytes_bound\":%d,\
     \"never_reuse\":%b}"
    (json_escape b.Policy.policy)
    b.Policy.allocs b.Policy.frees b.Policy.peak_live_bytes
    b.Policy.total_freed_bytes b.Policy.max_entry_bytes
    b.Policy.occupancy_bound b.Policy.modeled_occupancy b.Policy.sweeps_bound
    b.Policy.swept_bytes_bound b.Policy.never_reuse

let finding_to_json (d : Diagnostic.t) =
  Printf.sprintf "{\"rule\":\"%s\",\"severity\":\"%s\",\"op\":%d,\"message\":\"%s\"}"
    (json_escape d.Diagnostic.rule)
    (Diagnostic.severity_to_string d.Diagnostic.severity)
    d.Diagnostic.op_index
    (json_escape d.Diagnostic.message)

(* Schema v2 = v1 plus the two siteflow fields ([sites], [pools]),
   empty when the pooling analysis was not run. Every v1 field keeps
   its name, type and order, so v1 consumers keep working. *)
let to_json ?pools t =
  let sites_json, pools_json =
    match pools with
    | None -> ("[]", "[]")
    | Some plan -> (Poolplan.sites_json plan, Poolplan.pools_json plan)
  in
  Printf.sprintf
    "{\"schema\":\"msweep-flowcheck-v2\",\"trace\":\"%s\",\"threads\":%d,\
     \"ops\":%d,\"allocs\":%d,\"frees\":%d,\"findings\":[%s],\
     \"predicted_unsound\":%s,\"predicted_retained\":%s,\
     \"windows\":{\"opened\":%d,\"closed\":%d,\"open_at_end\":%d,\
     \"max_len\":%d,\"total_len\":%d},\"wild_stores\":%d,\
     \"subgranule_frees\":%d,\"bounds\":[%s],\"sites\":%s,\"pools\":%s}"
    (json_escape t.trace_name) t.threads t.ops t.allocs t.frees
    (String.concat "," (List.map finding_to_json t.findings))
    (json_ints t.predicted_unsound)
    (json_ints t.predicted_retained)
    t.windows.opened t.windows.closed t.windows.open_at_end t.windows.max_len
    t.windows.total_len t.wild_stores t.subgranule_frees
    (String.concat "," (List.map bounds_to_json t.bounds))
    sites_json pools_json

(* Tolerant top-level field extractor: enough JSON awareness (strings,
   escapes, bracket depth) to pull one field out of any v1 or v2
   document without a parser dependency. Consumers that read documents
   this way are insensitive to fields added by later schemas — the
   compatibility contract the v1->v2 bump relies on. *)
let json_field doc key =
  let needle = "\"" ^ key ^ "\":" in
  let nlen = String.length needle and dlen = String.length doc in
  let rec find i in_string escaped depth =
    if i >= dlen then None
    else
      let c = doc.[i] in
      if in_string then
        find (i + 1)
          (not (c = '"' && not escaped))
          (c = '\\' && not escaped)
          depth
      else
        match c with
        | '"' when depth = 1 && i + nlen <= dlen && String.sub doc i nlen = needle
          -> Some (i + nlen)
        | '"' -> find (i + 1) true false depth
        | '{' | '[' -> find (i + 1) false false (depth + 1)
        | '}' | ']' -> find (i + 1) false false (depth - 1)
        | _ -> find (i + 1) false false depth
  in
  match find 0 false false 0 with
  | None -> None
  | Some start ->
    (* Take the value: until a comma or closing brace at this depth. *)
    let buf = Buffer.create 32 in
    let rec take i in_string escaped depth =
      if i >= dlen then Buffer.contents buf
      else
        let c = doc.[i] in
        if in_string then begin
          Buffer.add_char buf c;
          take (i + 1) (not (c = '"' && not escaped)) (c = '\\' && not escaped)
            depth
        end
        else
          match c with
          | (',' | '}') when depth = 0 -> Buffer.contents buf
          | '"' ->
            Buffer.add_char buf c;
            take (i + 1) true false depth
          | '{' | '[' ->
            Buffer.add_char buf c;
            take (i + 1) false false (depth + 1)
          | '}' | ']' ->
            Buffer.add_char buf c;
            take (i + 1) false false (depth - 1)
          | _ ->
            Buffer.add_char buf c;
            take (i + 1) false false depth
    in
    Some (take start false false 0)

let render t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "flowcheck: %s: %d ops, %d allocs, %d frees, %d finding(s)"
    t.trace_name t.ops t.allocs t.frees (List.length t.findings);
  List.iter (fun d -> line "  %s" (Diagnostic.to_string d)) t.findings;
  line
    "  dangling windows: %d opened, %d closed, %d open at end (max %d ops, \
     total %d ops)"
    t.windows.opened t.windows.closed t.windows.open_at_end t.windows.max_len
    t.windows.total_len;
  line "  predicted unsound-if-recycled: %d id(s); predicted retention: %d \
        id(s); wild stores: %d; sub-granule frees: %d"
    (List.length t.predicted_unsound)
    (List.length t.predicted_retained)
    t.wild_stores t.subgranule_frees;
  List.iter
    (fun (b : Policy.bounds) ->
      line
        "  [%s] peak live %d B; occupancy bound %d B (modeled %d B); sweeps \
         <= %d; swept <= %d B%s"
        b.Policy.policy b.Policy.peak_live_bytes b.Policy.occupancy_bound
        b.Policy.modeled_occupancy b.Policy.sweeps_bound
        b.Policy.swept_bytes_bound
        (if b.Policy.never_reuse then " (never-reuse: retired address space)"
         else ""))
    t.bounds;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Differential bound check                                            *)

let check_bounds t ~policy ~peak_quarantine_bytes ~swept_bytes ~sweeps =
  match
    List.find_opt (fun (b : Policy.bounds) -> b.Policy.policy = policy) t.bounds
  with
  | None ->
    [
      Diagnostic.make ~rule:"flow-bound-missing" ~severity:Diagnostic.Error
        (Printf.sprintf "no static bounds for policy %s in this report" policy);
    ]
  | Some b ->
    let out = ref [] in
    let check rule measured bound what =
      if measured > bound then
        out :=
          Diagnostic.make ~rule ~severity:Diagnostic.Error
            (Printf.sprintf
               "measured %s (%d) exceeds the static bound (%d) for %s" what
               measured bound policy)
          :: !out
    in
    check "flow-bound-occupancy" peak_quarantine_bytes b.Policy.occupancy_bound
      "ms.peak_quarantine_bytes";
    check "flow-bound-swept" swept_bytes b.Policy.swept_bytes_bound
      "ms.swept_bytes";
    check "flow-bound-sweeps" sweeps b.Policy.sweeps_bound "ms.sweeps";
    Diagnostic.sort !out

(* ------------------------------------------------------------------ *)
(* Corpus self-test                                                    *)

let corpus_expectations =
  [
    ("double-free", []);
    ("free-unallocated", []);
    ("duplicate-alloc", []);
    ("store-after-free", []);
    ("store-unallocated", []);
    ("dangling-target", []);
    ("unclear-before-free", [ "flow-dangling" ]);
    ("field-out-of-range", []);
    ("uaf-chain", [ "flow-dangling" ]);
    ("free-thread-out-of-range", []);
    ("alloc-site-out-of-range", []);
  ]

let corpus_self_test () =
  List.map
    (fun (c : Sanitizer.Corpus.case) ->
      let r = analyze_trace c.Sanitizer.Corpus.trace in
      let got =
        List.sort_uniq compare
          (List.map (fun d -> d.Diagnostic.rule) r.findings)
      in
      let expected =
        Option.value ~default:[]
          (List.assoc_opt c.Sanitizer.Corpus.name corpus_expectations)
      in
      (c.Sanitizer.Corpus.name, expected, got, got = expected))
    Sanitizer.Corpus.cases
