(** Static allocation-site pooling analysis, stage two: the pool-merge
    optimisation and its resource bounds.

    Partitions the trace's allocation sites into the fewest pools such
    that no pool may recycle a freed object while any site in that pool
    has a live dangling alias to it. Under {!Siteflow}'s exposure
    lattice the optimum is closed-form:

    - all pointer-exposed sites merge into one {e retiring} pool (a
      pool that never recycles is trivially safe to share);
    - each alias- or wild-exposed site gets a {e singleton recycling}
      pool (same-site reuse cannot confuse types under a surviving
      alias, cross-site reuse could);
    - all clean sites merge into one shared recycling pool.

    Pool ids are assigned by first encounter over sites in ascending
    order; the whole plan is a pure function of the op sequence and so
    byte-identical across chunk sizes, runs and domain counts. *)

type reason = Clean | Alias_isolated | Ptr_retired

val reason_to_string : reason -> string

type pool = {
  id : int;
  members : int list;  (** sites, ascending *)
  recycles : bool;
  reason : reason;
  occupancy_bound : int;
      (** bound on peak concurrent live usable bytes: the sum of member
          sites' peaks dominates the peak of the pool's sum *)
  footprint_bound : int;
      (** bound on address space the pool ever owns. Slab need is
          sub-additive (ceil(a+b) <= ceil a + ceil b), so summing
          per-site slab/page-run ceilings — over peak demand for
          recycling pools, total demand for retiring ones — dominates
          the slabs the backend actually creates *)
  retired_bound : int;
      (** bound on bytes retired forever; 0 for recycling pools *)
}

type t = {
  trace_name : string;
  site_count : int;
  pool_count : int;
  pool_of_site : int array;  (** total: every site mapped to one pool *)
  pools : pool list;  (** ascending id, pairwise-disjoint members *)
  flow : Siteflow.t;  (** the underlying site analysis *)
}

val build : Siteflow.t -> t
val of_stream : Workloads.Trace.stream -> t
val of_trace : Workloads.Trace.t -> t

val to_alloc_plan : t -> Alloc.Poolalloc.plan
(** The runtime-neutral plan the pooled backend consumes. *)

(** One static-bound-vs-telemetry comparison row. *)
type bound_check = {
  check_pool : int;
  metric : string;  (** ["occupancy"], ["footprint"] or ["retired"] *)
  bound : int;
  measured : int;
  holds : bool;
}

val check_pool_stats : t -> Alloc.Poolalloc.pool_stats array -> bound_check list
(** Compare every pool's static bounds against the backend's live
    telemetry; raises [Invalid_argument] on a pool-count mismatch. *)

val render : t -> string

val sites_json : t -> string
(** JSON array of per-site records (schema v2 [sites] field). *)

val pools_json : t -> string
(** JSON array of per-pool records (schema v2 [pools] field). *)
