(** The backend-policy lattice: how each scheme under evaluation turns a
    requested size into usable bytes, and the static bounds the analyzer
    can prove about its quarantine from a single trace pass.

    The bounds come in two strengths, kept separate on purpose:

    - [occupancy_bound] is *unconditionally sound*: a quarantine can
      never hold more than the sum of usable bytes of everything ever
      freed, whatever the sweep schedule does. The differential gate
      compares the measured [ms.peak_quarantine_bytes] against it.
    - [modeled_occupancy] is the trigger-aware estimate (threshold,
      pause factor, retained candidates): informative, not a guarantee.
    - [sweeps_bound] and [swept_bytes_bound] are sound under the stated
      fragmentation assumption (committed heap at most [frag_factor]
      times peak live-plus-quarantined bytes, plus one slab per size
      class) — see DESIGN §11; the dynamic comparison exists exactly to
      catch the assumption breaking. *)

type t =
  | Minesweeper of Minesweeper.Config.t
  | Ffmalloc
  | Markus

val name : t -> string
val default_policies : t list
(** [minesweeper (default); ffmalloc; markus] — the head is the primary
    policy driving the points-to graph semantics (zeroing, granule). *)

val of_string : string -> (t list, string) result
(** ["all"], ["minesweeper"]/["ms"], a MineSweeper preset name
    (["mostly"], ["incremental"], ...), ["ffmalloc"]/["ff"] or
    ["markus"]. *)

val usable : t -> int -> int
(** Usable bytes backing a request: the policy's own size rounding
    (MineSweeper adds the paper's extra byte before class rounding). *)

val pooled_usable : int -> int
(** Size rounding of the analysis-driven pooled backend: jemalloc
    classes with no extra byte (no quarantine, no sweep). {!Siteflow}'s
    demand model uses exactly this, so the plan's footprint bounds are
    stated in the same units {!Alloc.Poolalloc} reports. *)

val zeroing : t -> bool
val shadow_granule : t -> int option
(** MineSweeper only. *)

type bounds = {
  policy : string;
  allocs : int;
  frees : int;
  peak_live_bytes : int;  (** peak of sum of live usable bytes *)
  total_freed_bytes : int;  (** sum of usable bytes over every free *)
  max_entry_bytes : int;
  occupancy_bound : int;  (** sound quarantine-occupancy ceiling *)
  modeled_occupancy : int;  (** trigger-aware estimate, <= occupancy_bound *)
  sweeps_bound : int;
  swept_bytes_bound : int;
  never_reuse : bool;  (** ffmalloc: the bound is retired address space *)
}

type acc

val acc : t -> acc
val acc_alloc : acc -> size:int -> unit
val acc_free : acc -> size:int -> unit

val finish : acc -> retained_bytes:int -> bounds
(** [retained_bytes]: usable bytes of frees the analyzer predicts the
    conservative sweep may retain (feeds [modeled_occupancy] only). *)
