module Config = Minesweeper.Config

type t =
  | Minesweeper of Config.t
  | Ffmalloc
  | Markus

let name = function
  | Ffmalloc -> "ffmalloc"
  | Markus -> "markus"
  | Minesweeper c -> (
    match Config.preset_name c with
    | Some "default" | None -> "minesweeper"
    | Some p -> "minesweeper-" ^ p)

let default_policies = [ Minesweeper Config.default; Ffmalloc; Markus ]

let of_string s =
  match s with
  | "all" -> Ok default_policies
  | "ffmalloc" | "ff" -> Ok [ Ffmalloc ]
  | "markus" -> Ok [ Markus ]
  | "minesweeper" | "ms" -> Ok [ Minesweeper Config.default ]
  | p -> (
    match Config.of_preset p with
    | Ok c -> Ok [ Minesweeper c ]
    | Error msg -> Error msg)

let page = Vmem.page_size

let jemalloc_usable size =
  if Alloc.Size_class.is_small size then
    Alloc.Size_class.size_of_class (Alloc.Size_class.class_of_size size)
  else Alloc.Size_class.large_pages size * page

(* The pooled backend keeps jemalloc's size rounding exactly (no
   past-the-end byte: with no quarantine there is no sweep to confuse),
   so the siteflow demand model and Poolalloc agree byte-for-byte. *)
let pooled_usable size = jemalloc_usable (max 1 size)

let usable t size =
  match t with
  | Minesweeper _ ->
    (* Instance backends always run with the extra past-the-end byte. *)
    jemalloc_usable (max 1 size + 1)
  | Markus -> jemalloc_usable (max 1 size)
  | Ffmalloc ->
    let size = max 1 size in
    if size <= 2048 then (size + 15) / 16 * 16
    else (size + page - 1) / page * page

let zeroing = function
  | Minesweeper c -> c.Config.zeroing
  | Ffmalloc -> false
  | Markus -> true

let shadow_granule = function
  | Minesweeper c -> Some c.Config.shadow_granule
  | Ffmalloc | Markus -> None

type bounds = {
  policy : string;
  allocs : int;
  frees : int;
  peak_live_bytes : int;
  total_freed_bytes : int;
  max_entry_bytes : int;
  occupancy_bound : int;
  modeled_occupancy : int;
  sweeps_bound : int;
  swept_bytes_bound : int;
  never_reuse : bool;
}

type acc = {
  pol : t;
  mutable allocs : int;
  mutable frees : int;
  mutable live : int;
  mutable peak_live : int;
  mutable total_freed : int;
  mutable max_entry : int;
  mutable unmappable_freed : int;  (* frees spanning at least one page *)
}

let acc pol =
  {
    pol;
    allocs = 0;
    frees = 0;
    live = 0;
    peak_live = 0;
    total_freed = 0;
    max_entry = 0;
    unmappable_freed = 0;
  }

let acc_alloc a ~size =
  let u = usable a.pol size in
  a.allocs <- a.allocs + 1;
  a.live <- a.live + u;
  if a.live > a.peak_live then a.peak_live <- a.live

let acc_free a ~size =
  let u = usable a.pol size in
  a.frees <- a.frees + 1;
  a.live <- max 0 (a.live - u);
  a.total_freed <- a.total_freed + u;
  if u > a.max_entry then a.max_entry <- u;
  if u >= page then a.unmappable_freed <- a.unmappable_freed + u

let roots_bytes =
  List.fold_left (fun acc (_, size) -> acc + size) 0 Layout.root_regions

(* Committed-heap ceiling for the swept-bytes bound: the mark only reads
   committed pages, and jemalloc's footprint is live + quarantined data
   times a slab-fragmentation factor, plus at most one partly-used slab
   per small class. Stated as an assumption in DESIGN §11. *)
let frag_factor = 4

let finish a ~retained_bytes =
  let policy = name a.pol in
  match a.pol with
  | Ffmalloc ->
    {
      policy;
      allocs = a.allocs;
      frees = a.frees;
      peak_live_bytes = a.peak_live;
      total_freed_bytes = a.total_freed;
      max_entry_bytes = a.max_entry;
      (* never-reuse: "occupancy" is retired address space *)
      occupancy_bound = a.total_freed;
      modeled_occupancy = a.total_freed;
      sweeps_bound = 0;
      swept_bytes_bound = 0;
      never_reuse = true;
    }
  | Markus ->
    {
      policy;
      allocs = a.allocs;
      frees = a.frees;
      peak_live_bytes = a.peak_live;
      total_freed_bytes = a.total_freed;
      max_entry_bytes = a.max_entry;
      occupancy_bound = a.total_freed;
      modeled_occupancy = a.total_freed;
      sweeps_bound = 0;
      swept_bytes_bound = 0;
      never_reuse = false;
    }
  | Minesweeper c ->
    let quarantining = c.Config.quarantining in
    let occupancy_bound = if quarantining then a.total_freed else 0 in
    let ceil_mul f v = int_of_float (ceil (f *. float_of_int v)) in
    let modeled_occupancy =
      if not quarantining then 0
      else
        min occupancy_bound
          (max c.Config.threshold_min_bytes
             (ceil_mul c.Config.threshold a.peak_live)
          + ceil_mul c.Config.pause_factor a.peak_live
          + retained_bytes + a.max_entry)
    in
    let sweeps_bound =
      if not quarantining then 0
      else begin
        (* Each threshold-triggered sweep consumes at least
           [threshold_min_bytes] of fresh quarantine inflow, and total
           inflow is [total_freed]; the unmap trigger can only fire at
           all when enough page-spanning bytes were freed to clear the
           factor against the always-committed root regions. *)
        let threshold_sweeps =
          (a.total_freed / max 1 c.Config.threshold_min_bytes) + 2
        in
        let unmap_risk =
          c.Config.unmapping
          && float_of_int a.unmappable_freed
             >= c.Config.unmap_factor *. float_of_int roots_bytes
        in
        if unmap_risk then a.frees + 2 else min threshold_sweeps (a.frees + 2)
      end
    in
    let per_sweep_scan =
      (* mark pass + stop-the-world rescan, each over at most the
         committed footprint *)
      2
      * (roots_bytes
        + (frag_factor * (a.peak_live + occupancy_bound))
        + (Alloc.Size_class.count * 8 * page))
    in
    {
      policy;
      allocs = a.allocs;
      frees = a.frees;
      peak_live_bytes = a.peak_live;
      total_freed_bytes = a.total_freed;
      max_entry_bytes = a.max_entry;
      occupancy_bound;
      modeled_occupancy;
      sweeps_bound;
      swept_bytes_bound = sweeps_bound * per_sweep_scan;
      never_reuse = false;
    }
