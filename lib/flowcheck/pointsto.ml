type t = {
  contents : (Absval.slot, Absval.target * int) Hashtbl.t;
  (* target id -> slots binding it (pointer or alias edges) *)
  holders : (int, (Absval.slot, unit) Hashtbl.t) Hashtbl.t;
  (* holder id -> slots living inside it *)
  fields : (int, (Absval.slot, unit) Hashtbl.t) Hashtbl.t;
  mutable wilds : int;
}

let create () =
  {
    contents = Hashtbl.create 4096;
    holders = Hashtbl.create 1024;
    fields = Hashtbl.create 1024;
    wilds = 0;
  }

let index_add tbl key slot =
  let set =
    match Hashtbl.find_opt tbl key with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 4 in
      Hashtbl.replace tbl key s;
      s
  in
  Hashtbl.replace set slot ()

let index_remove tbl key slot =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some set ->
    Hashtbl.remove set slot;
    if Hashtbl.length set = 0 then Hashtbl.remove tbl key

(* Drop one binding and keep every index in step with [contents]. *)
let unbind t slot (target, _op) =
  Hashtbl.remove t.contents slot;
  (match Absval.target_id target with
  | Some id -> index_remove t.holders id slot
  | None -> t.wilds <- t.wilds - 1);
  match slot with
  | Absval.Field_slot (h, _) -> index_remove t.fields h slot
  | Absval.Root_slot _ -> ()

let clear t slot =
  match Hashtbl.find_opt t.contents slot with
  | None -> None
  | Some binding ->
    unbind t slot binding;
    Some binding

let store t slot target ~op =
  let displaced = clear t slot in
  Hashtbl.replace t.contents slot (target, op);
  (match Absval.target_id target with
  | Some id -> index_add t.holders id slot
  | None -> t.wilds <- t.wilds + 1);
  (match slot with
  | Absval.Field_slot (h, _) -> index_add t.fields h slot
  | Absval.Root_slot _ -> ());
  displaced

let contents t slot = Hashtbl.find_opt t.contents slot

let edge_sort edges =
  List.sort
    (fun (s1, _, o1) (s2, _, o2) ->
      match compare o1 o2 with 0 -> Absval.slot_compare s1 s2 | c -> c)
    edges

let holders t id =
  match Hashtbl.find_opt t.holders id with
  | None -> []
  | Some set ->
    Hashtbl.fold
      (fun slot () acc ->
        match Hashtbl.find_opt t.contents slot with
        | Some (target, op) -> (slot, target, op) :: acc
        | None -> acc)
      set []
    |> edge_sort

let holder_count t id =
  match Hashtbl.find_opt t.holders id with
  | None -> 0
  | Some set -> Hashtbl.length set

let drop_fields_of t id =
  match Hashtbl.find_opt t.fields id with
  | None -> []
  | Some set ->
    let slots = Hashtbl.fold (fun slot () acc -> slot :: acc) set [] in
    let removed =
      List.filter_map
        (fun slot ->
          match Hashtbl.find_opt t.contents slot with
          | Some (target, op) ->
            unbind t slot (target, op);
            Some (slot, target, op)
          | None -> None)
        slots
    in
    Hashtbl.remove t.fields id;
    edge_sort removed

let wild_count t = t.wilds
let edge_count t = Hashtbl.length t.contents

let max_chain_depth = 8

let witness_chain t slot =
  let rec walk slot visited depth acc =
    match Hashtbl.find_opt t.contents slot with
    | None -> List.rev acc
    | Some (_, op) -> (
      let acc = (slot, op) :: acc in
      match slot with
      | Absval.Root_slot _ -> List.rev acc
      | Absval.Field_slot (h, _) ->
        if depth >= max_chain_depth || List.mem h visited then List.rev acc
        else (
          match holders t h with
          | [] -> List.rev acc
          | (up, _, _) :: _ -> walk up (h :: visited) (depth + 1) acc))
  in
  walk slot [] 0 []
