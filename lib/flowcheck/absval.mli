(** The abstract domain of the static dataflow analysis.

    The analyzer never touches concrete addresses: its universe is the
    trace's own vocabulary — object ids and normalized slots. A slot is
    a root-window word or a word inside a live object; normalization
    applies exactly the wrapping {!Workloads.Trace.replay} applies when
    it resolves a location, so two location expressions that land on the
    same concrete word always collapse to the same abstract slot. *)

type slot =
  | Root_slot of int  (** root-window word, already reduced mod window *)
  | Field_slot of int * int  (** (holder id, word index reduced mod size) *)

val slot_compare : slot -> slot -> int
val slot_to_string : slot -> string

val normalize_root : int -> slot
(** Reduce a root word index exactly as replay does ([w mod window]). *)

val normalize_field : id:int -> size:int -> int -> slot option
(** Reduce a field word index against the holder's size; [None] when the
    holder has no addressable words ([size < 8]), where replay skips the
    store. *)

(** What a slot may hold, as far as the trace shows. *)
type target =
  | Ptr of int  (** an instrumented pointer to object [id] *)
  | Alias of int
      (** a data word whose value is the address of object [id] — the
          trace's encoded "unlucky integer" (negative [Store_data]) *)
  | Wild
      (** a data word whose value lies in the heap address range: it may
          alias any allocation, so the conservative sweep may mark
          anything through it *)

val target_id : target -> int option
val target_to_string : target -> string

val classify_data : int -> [ `Harmless | `Alias of int | `Wild ]
(** Classify a raw [Store_data] value: negative values encode the
    address of object [-value - 1]; non-negative values at or above
    {!Layout.heap_base} could numerically alias a heap word ([`Wild]);
    everything else can never cause the sweep to mark ([`Harmless]). *)
