(** Static allocation-site pooling analysis, stage one.

    A single pass over a trace stream that folds the points-to graph's
    dangling-exposure answers onto the trace's static allocation sites.
    For every site it computes the demand curve — per-size-class peak
    and total slot counts, in the pooled allocator's own rounding — and
    a three-level exposure summary:

    - {e pointer-exposed}: some object of the site was freed while an
      instrumented pointer to it survived outside the object. Recycling
      such a slot can re-materialise an object under a live dangling
      pointer, so any pool containing the site must retire its memory.
    - {e alias-exposed}: only un-instrumented data words aliasing the
      object survived. Same-site reuse is still type-compatible, so the
      site may recycle — but only in a pool of its own.
    - {e wild-exposed}: a heap-range data word was live somewhere at the
      free; it may alias the object. Treated exactly like an alias.

    Exposure is deliberately conservative: the pooled backend never
    zeroes on free, so edges held inside freed-but-not-yet-reused
    holders persist; the lattice never drops them. Static exposure thus
    over-approximates every state the differential oracle can observe.

    The result is a pure function of the op sequence — identical across
    chunk sizes, runs, and domain counts. {!Poolplan.build} turns it
    into a pool partition. *)

(** Demand unit: one slot of a small size class, or one large page run. *)
type class_key =
  | Small of int  (** size-class index *)
  | Large of int  (** page count *)

val class_key_compare : class_key -> class_key -> int

val class_key_of_size : int -> class_key
(** The class the pooled backend (without the attack extra byte) serves
    a request of [size] from. *)

val usable_of_key : class_key -> int
(** Usable bytes of one slot of the class. *)

type summary = {
  site : int;
  allocs : int;
  frees : int;
  peak_live_bytes : int;  (** peak concurrent usable bytes, pooled rounding *)
  total_freed_bytes : int;  (** usable bytes ever freed *)
  ptr_exposed : bool;
  alias_exposed : bool;
  wild_exposed : bool;
  exposed_frees : int;  (** frees with any surviving outside edge *)
  demand : (class_key * (int * int)) list;
      (** per class: (peak concurrent slots, total slots ever), sorted
          by {!class_key_compare} *)
}

type t = {
  trace_name : string;
  sites : int;  (** declared site count (>= 1) *)
  ops : int;
  allocs : int;
  frees : int;
  out_of_range : int;  (** allocs whose site id was clamped to 0 *)
  summaries : summary array;  (** length [sites], indexed by site *)
}

val analyze : Workloads.Trace.stream -> t
(** One pass; consumes the stream. *)

val analyze_trace : Workloads.Trace.t -> t
