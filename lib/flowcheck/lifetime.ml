type info = {
  size : int;
  alloc_op : int;
}

type window_stats = {
  opened : int;
  closed : int;
  open_at_end : int;
  max_len : int;
  total_len : int;
}

type t = {
  live : (int, info) Hashtbl.t;
  dead_size : (int, int) Hashtbl.t;
  windows : (int, int) Hashtbl.t;  (* id -> open op *)
  mutable opened : int;
  mutable closed : int;
  mutable max_len : int;
  mutable total_len : int;
}

let create () =
  {
    live = Hashtbl.create 4096;
    dead_size = Hashtbl.create 4096;
    windows = Hashtbl.create 256;
    opened = 0;
    closed = 0;
    max_len = 0;
    total_len = 0;
  }

let on_alloc t ~id ~size ~op =
  Hashtbl.remove t.dead_size id;
  Hashtbl.replace t.live id { size; alloc_op = op }

let on_free t ~id ~op:_ =
  match Hashtbl.find_opt t.live id with
  | None -> None
  | Some info ->
    Hashtbl.remove t.live id;
    Hashtbl.replace t.dead_size id info.size;
    Some info

let find t id = Hashtbl.find_opt t.live id
let live_count t = Hashtbl.length t.live
let freed_size t id = Hashtbl.find_opt t.dead_size id

let open_window t ~id ~op =
  if not (Hashtbl.mem t.windows id) then begin
    Hashtbl.replace t.windows id op;
    t.opened <- t.opened + 1
  end

let window_is_open t id = Hashtbl.mem t.windows id

let account t len =
  t.max_len <- max t.max_len len;
  t.total_len <- t.total_len + len

let close_window t ~id ~op =
  match Hashtbl.find_opt t.windows id with
  | None -> ()
  | Some opened_at ->
    Hashtbl.remove t.windows id;
    t.closed <- t.closed + 1;
    account t (op - opened_at)

let window_stats t ~end_op =
  let open_at_end = Hashtbl.length t.windows in
  (* Open windows ran to the end of the trace: measure them there. *)
  let tail =
    Hashtbl.fold (fun _ opened_at acc -> (end_op - opened_at) :: acc)
      t.windows []
  in
  {
    opened = t.opened;
    closed = t.closed;
    open_at_end;
    max_len = List.fold_left max t.max_len tail;
    total_len = List.fold_left ( + ) t.total_len tail;
  }
