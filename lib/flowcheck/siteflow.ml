(* The allocation-site pooling analysis, stage one: a one-pass
   site-lifetime lattice over the same points-to graph the dangling
   report maintains. Where {!Report} asks "which *objects* are exposed
   at their free?", this pass folds the answer onto the trace's static
   allocation sites: per site, the demand curve (per-size-class peaks
   and totals, in the pooled allocator's own rounding) and the
   dangling-exposure summary that {!Poolplan} turns into a pool
   partition.

   Exposure is deliberately more conservative than the report's: the
   pooled backend never zeroes on free, so an edge held inside a freed
   holder persists (physically and in the ground-truth registry) until
   that memory is re-served. The lattice therefore never drops interior
   edges of dead holders — static exposure over-approximates every
   state the differential oracle can observe, which is what makes the
   derived plan certifiable. *)

module Trace = Workloads.Trace

(* Demand is tracked in the pooled allocator's own units: a small
   request occupies one slot of its size class (footprint comes in
   whole slabs), a large one a whole page run. *)
type class_key =
  | Small of int  (** size-class index *)
  | Large of int  (** page count *)

type class_stats = {
  mutable live : int;
  mutable peak : int;  (** peak concurrent live slots *)
  mutable total : int;  (** slots ever allocated *)
}

type summary = {
  site : int;
  allocs : int;
  frees : int;
  peak_live_bytes : int;  (** usable bytes, pooled rounding *)
  total_freed_bytes : int;
  ptr_exposed : bool;
      (** some free left a live instrumented pointer to the object from
          outside it: recycling its slot can re-materialise the object
          under that pointer — the pool must retire *)
  alias_exposed : bool;
      (** some free left only data words aliasing the object's address:
          invisible to instrumentation, so reuse is only safe if it
          returns an object of the same site (no cross-site confusion) *)
  wild_exposed : bool;
      (** some free happened while a heap-range data word was live
          anywhere: it may alias this object — treated like an alias *)
  exposed_frees : int;  (** frees with any surviving outside edge *)
  demand : (class_key * (int * int)) list;
      (** per class: (peak concurrent slots, total slots), ascending *)
}

type t = {
  trace_name : string;
  sites : int;  (** declared site count (>= 1) *)
  ops : int;
  allocs : int;
  frees : int;
  out_of_range : int;  (** allocs whose site id was clamped to 0 *)
  summaries : summary array;  (** length [sites], indexed by site *)
}

let class_key_compare a b =
  match (a, b) with
  | Small a, Small b -> compare a b
  | Large a, Large b -> compare a b
  | Small _, Large _ -> -1
  | Large _, Small _ -> 1

let class_key_of_size size =
  let size = max 1 size in
  if Alloc.Size_class.is_small size then
    Small (Alloc.Size_class.class_of_size size)
  else Large (Alloc.Size_class.large_pages size)

(* usable_of_key ∘ class_key_of_size = Policy.pooled_usable: the demand
   model is stated in exactly the backend's units (tested). *)
let usable_of_key = function
  | Small cls -> Alloc.Size_class.size_of_class cls
  | Large pages -> pages * Vmem.page_size

(* Mutable per-site accumulator. *)
type acc = {
  mutable a_allocs : int;
  mutable a_frees : int;
  mutable a_live_bytes : int;
  mutable a_peak_live_bytes : int;
  mutable a_total_freed_bytes : int;
  mutable a_ptr : bool;
  mutable a_alias : bool;
  mutable a_wild : bool;
  mutable a_exposed_frees : int;
  a_classes : (class_key, class_stats) Hashtbl.t;
}

let fresh_acc () =
  {
    a_allocs = 0;
    a_frees = 0;
    a_live_bytes = 0;
    a_peak_live_bytes = 0;
    a_total_freed_bytes = 0;
    a_ptr = false;
    a_alias = false;
    a_wild = false;
    a_exposed_frees = 0;
    a_classes = Hashtbl.create 16;
  }

let analyze stream =
  let sites = max 1 (Trace.stream_sites stream) in
  let accs = Array.init sites (fun _ -> fresh_acc ()) in
  let site_of_id : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let lt = Lifetime.create () in
  let pt = Pointsto.create () in
  let allocs = ref 0 in
  let frees = ref 0 in
  let out_of_range = ref 0 in
  let resolve lt loc =
    match loc with
    | Trace.Root w -> Some (Absval.normalize_root w)
    | Trace.Field (id, w) -> (
      match Lifetime.find lt id with
      | Some { Lifetime.size; _ } -> Absval.normalize_field ~id ~size w
      | None -> None)
  in
  let step i op =
    match op with
    | Trace.Alloc { id; size; site } ->
      incr allocs;
      if site < 0 || site >= sites then incr out_of_range;
      let site = Trace.clamp_site ~sites site in
      Hashtbl.replace site_of_id id site;
      Lifetime.on_alloc lt ~id ~size ~op:i;
      let a = accs.(site) in
      a.a_allocs <- a.a_allocs + 1;
      let key = class_key_of_size size in
      let cs =
        match Hashtbl.find_opt a.a_classes key with
        | Some cs -> cs
        | None ->
          let cs = { live = 0; peak = 0; total = 0 } in
          Hashtbl.replace a.a_classes key cs;
          cs
      in
      cs.live <- cs.live + 1;
      if cs.live > cs.peak then cs.peak <- cs.live;
      cs.total <- cs.total + 1;
      a.a_live_bytes <- a.a_live_bytes + usable_of_key key;
      if a.a_live_bytes > a.a_peak_live_bytes then
        a.a_peak_live_bytes <- a.a_live_bytes
    | Trace.Free { id; thread = _ } -> (
      match Lifetime.on_free lt ~id ~op:i with
      | None -> ()
      | Some { Lifetime.size; _ } ->
        incr frees;
        let site =
          Option.value ~default:0 (Hashtbl.find_opt site_of_id id)
        in
        let a = accs.(site) in
        a.a_frees <- a.a_frees + 1;
        let key = class_key_of_size size in
        (match Hashtbl.find_opt a.a_classes key with
        | Some cs -> cs.live <- cs.live - 1
        | None -> ());
        let usable = usable_of_key key in
        a.a_live_bytes <- a.a_live_bytes - usable;
        a.a_total_freed_bytes <- a.a_total_freed_bytes + usable;
        (* Which edges survive this free, from outside the dying
           object? Interior edges of *other* dead holders persist by
           design (no zeroing on free in the pooled backend). *)
        let outside =
          List.filter
            (fun (slot, _, _) ->
              match slot with
              | Absval.Field_slot (h, _) -> h <> id
              | Absval.Root_slot _ -> true)
            (Pointsto.holders pt id)
        in
        let has_ptr =
          List.exists
            (fun (_, target, _) ->
              match target with Absval.Ptr _ -> true | _ -> false)
            outside
        in
        let has_alias =
          List.exists
            (fun (_, target, _) ->
              match target with Absval.Alias _ -> true | _ -> false)
            outside
        in
        let has_wild = Pointsto.wild_count pt > 0 in
        if has_ptr then a.a_ptr <- true;
        if has_alias then a.a_alias <- true;
        if has_wild then a.a_wild <- true;
        if has_ptr || has_alias || has_wild then
          a.a_exposed_frees <- a.a_exposed_frees + 1)
    | Trace.Store_ptr { loc; target } -> (
      match (resolve lt loc, Lifetime.find lt target) with
      | Some slot, Some _ ->
        ignore (Pointsto.store pt slot (Absval.Ptr target) ~op:i)
      | _ -> ())
    | Trace.Clear_ptr { loc; target } -> (
      match (resolve lt loc, Lifetime.find lt target) with
      | Some slot, Some _ -> (
        match Pointsto.contents pt slot with
        | Some ((Absval.Ptr t | Absval.Alias t), _) when t = target ->
          ignore (Pointsto.clear pt slot)
        | Some _ | None -> ())
      | _ -> ())
    | Trace.Store_data { loc; value } -> (
      match resolve lt loc with
      | None -> ()
      | Some slot -> (
        match Absval.classify_data value with
        | `Alias id when Lifetime.find lt id <> None ->
          ignore (Pointsto.store pt slot (Absval.Alias id) ~op:i)
        | `Alias _ | `Harmless -> ignore (Pointsto.clear pt slot)
        | `Wild -> ignore (Pointsto.store pt slot Absval.Wild ~op:i)))
    | Trace.Work _ -> ()
  in
  let ops = ref 0 in
  Trace.fold_stream stream ~init:() ~f:(fun () i op ->
      ops := i + 1;
      step i op);
  let summaries =
    Array.mapi
      (fun site a ->
        let demand =
          Hashtbl.fold
            (fun key cs acc -> (key, (cs.peak, cs.total)) :: acc)
            a.a_classes []
          |> List.sort (fun (k1, _) (k2, _) -> class_key_compare k1 k2)
        in
        {
          site;
          allocs = a.a_allocs;
          frees = a.a_frees;
          peak_live_bytes = a.a_peak_live_bytes;
          total_freed_bytes = a.a_total_freed_bytes;
          ptr_exposed = a.a_ptr;
          alias_exposed = a.a_alias;
          wild_exposed = a.a_wild;
          exposed_frees = a.a_exposed_frees;
          demand;
        })
      accs
  in
  {
    trace_name = Trace.stream_name stream;
    sites;
    ops = !ops;
    allocs = !allocs;
    frees = !frees;
    out_of_range = !out_of_range;
    summaries;
  }

let analyze_trace trace = analyze (Trace.stream_of_trace trace)
