(** The allocation-site-keyed points-to graph, maintained in one pass.

    Nodes are object ids and abstract slots ({!Absval.slot}); an edge
    [slot -> target] records the last store into the slot and the op
    index at which it happened. The graph holds only *live* state — one
    binding per slot, dropped when the slot is overwritten, cleared or
    its holder dies — so its size is bounded by the number of
    simultaneously-live slots, never by trace length. *)

type t

val create : unit -> t

val store : t -> Absval.slot -> Absval.target -> op:int -> (Absval.target * int) option
(** Bind the slot, returning the displaced binding (if any) so the
    caller can account for the edge that just died. *)

val clear : t -> Absval.slot -> (Absval.target * int) option
(** Remove the slot's binding and return it. *)

val contents : t -> Absval.slot -> (Absval.target * int) option

val holders : t -> int -> (Absval.slot * Absval.target * int) list
(** Every slot whose binding targets object [id] (pointer or alias),
    with the kind and the store op; sorted by (op, slot) so iteration is
    deterministic. *)

val holder_count : t -> int -> int

val drop_fields_of : t -> int -> (Absval.slot * Absval.target * int) list
(** Remove every binding held in a slot *inside* object [id] (the
    object died and its memory was zeroed); returns the removed edges
    sorted by (op, slot). *)

val wild_count : t -> int
(** Live slots currently holding a heap-range data value. *)

val edge_count : t -> int

val witness_chain : t -> Absval.slot -> (Absval.slot * int) list
(** The write chain that keeps a slot reachable: the slot itself (with
    its store op), then — while the slot lives inside an object — a
    deterministic holder of that object (earliest store op wins), up to
    a root slot or a bounded depth. Innermost slot first. *)
