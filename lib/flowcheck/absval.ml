type slot =
  | Root_slot of int
  | Field_slot of int * int

let slot_compare (a : slot) (b : slot) = compare a b

let slot_to_string = function
  | Root_slot w -> Printf.sprintf "root[%d]" w
  | Field_slot (id, w) -> Printf.sprintf "obj%d[%d]" id w

let normalize_root w = Root_slot (w mod Workloads.Trace.root_window_words)

let normalize_field ~id ~size w =
  if size < 8 then None else Some (Field_slot (id, w mod (size / 8)))

type target =
  | Ptr of int
  | Alias of int
  | Wild

let target_id = function
  | Ptr id | Alias id -> Some id
  | Wild -> None

let target_to_string = function
  | Ptr id -> Printf.sprintf "&%d" id
  | Alias id -> Printf.sprintf "alias(%d)" id
  | Wild -> "wild"

let classify_data value =
  if value < 0 then `Alias (-value - 1)
  else if value >= Layout.heap_base then `Wild
  else `Harmless
