module Event = Racecheck.Event
module Diagnostic = Sanitizer.Diagnostic

let rules =
  [
    ("ls-early-release", "release decision not dominated by Mark_done");
    ( "ls-hidden-publish",
      "a locked-in address was republished in the window and released \
       with no Fence ordering the write before the decision" );
    ("ls-release-unlocked", "release of an address the sweep never locked in");
    ( "ls-lost-entry",
      "a requeued entry missing from the next lock-in, or a locked-in \
       entry neither released nor requeued by sweep end" );
    ("ls-serve-quarantined", "allocator served an address still locked in");
  ]

type sweep_state = {
  sweep : int;
  locked : (int, unit) Hashtbl.t;
  released : (int, unit) Hashtbl.t;
  requeued : (int, unit) Hashtbl.t;
  mutable mark_done : bool;
  (* addresses republished by a mutator since the last Fence *)
  unfenced : (int, unit) Hashtbl.t;
}

let analyze events =
  let diags = ref [] in
  let flag ~rule ~seq fmt =
    Printf.ksprintf
      (fun message ->
        diags :=
          Diagnostic.make ~rule ~severity:Diagnostic.Error ~op_index:seq
            message
          :: !diags)
      fmt
  in
  let current = ref None in
  let pending_requeues : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      let seq = e.Event.seq in
      match e.Event.kind with
      | Event.Lock_in { sweep; entries } ->
        let locked = Hashtbl.create 64 in
        List.iter (fun (addr, _usable) -> Hashtbl.replace locked addr ()) entries;
        Hashtbl.iter
          (fun addr () ->
            if not (Hashtbl.mem locked addr) then
              flag ~rule:"ls-lost-entry" ~seq
                "sweep %d lock-in dropped requeued entry %#x" sweep addr)
          pending_requeues;
        Hashtbl.reset pending_requeues;
        current :=
          Some
            {
              sweep;
              locked;
              released = Hashtbl.create 64;
              requeued = Hashtbl.create 16;
              mark_done = false;
              unfenced = Hashtbl.create 16;
            }
      | Event.Mark_done _ -> (
        match !current with
        | Some s -> s.mark_done <- true
        | None -> ())
      | Event.Write { value; _ } -> (
        match !current with
        | Some s
          when Hashtbl.mem s.locked value && not (Hashtbl.mem s.released value)
          ->
          Hashtbl.replace s.unfenced value ()
        | Some _ | None -> ())
      | Event.Fence _ -> (
        match !current with
        | Some s -> Hashtbl.reset s.unfenced
        | None -> ())
      | Event.Release { sweep; addr } -> (
        match !current with
        | None ->
          flag ~rule:"ls-release-unlocked" ~seq
            "sweep %d released %#x outside any lock-in" sweep addr
        | Some s ->
          if not s.mark_done then
            flag ~rule:"ls-early-release" ~seq
              "sweep %d released %#x before Mark_done" sweep addr;
          if not (Hashtbl.mem s.locked addr) then
            flag ~rule:"ls-release-unlocked" ~seq
              "sweep %d released %#x which it never locked in" sweep addr;
          if Hashtbl.mem s.unfenced addr then
            flag ~rule:"ls-hidden-publish" ~seq
              "sweep %d released %#x after a window write republished it \
               with no intervening Fence"
              s.sweep addr;
          Hashtbl.replace s.released addr ())
      | Event.Requeue { addr; _ } -> (
        match !current with
        | Some s -> Hashtbl.replace s.requeued addr ()
        | None -> ())
      | Event.Sweep_done { sweep } -> (
        match !current with
        | None -> ()
        | Some s ->
          Hashtbl.iter
            (fun addr () ->
              if
                (not (Hashtbl.mem s.released addr))
                && not (Hashtbl.mem s.requeued addr)
              then
                flag ~rule:"ls-lost-entry" ~seq
                  "sweep %d ended with locked-in entry %#x neither released \
                   nor requeued"
                  sweep addr)
            s.locked;
          Hashtbl.reset pending_requeues;
          Hashtbl.iter
            (fun addr () -> Hashtbl.replace pending_requeues addr ())
            s.requeued;
          current := None)
      | Event.Serve { addr; _ } -> (
        let quarantined =
          Hashtbl.mem pending_requeues addr
          ||
          match !current with
          | Some s ->
            Hashtbl.mem s.locked addr && not (Hashtbl.mem s.released addr)
          | None -> false
        in
        if quarantined then
          flag ~rule:"ls-serve-quarantined" ~seq
            "allocator served %#x while it is still locked in / requeued" addr)
      | Event.Push _ | Event.Flush _ | Event.Mark_read _
      | Event.Rescan_read _ | Event.Stage _ ->
        ())
    events;
  List.rev !diags

type mutant_result = {
  name : string;
  expected : string list;
  got : string list;
  passed : bool;
}

let expected_rules = function
  | Sanitizer.Corpus.Skip_stw_fence -> [ "ls-hidden-publish" ]
  | Sanitizer.Corpus.Release_before_mark_done -> [ "ls-early-release" ]
  | Sanitizer.Corpus.Lose_requeued_entry -> [ "ls-lost-entry" ]
  | Sanitizer.Corpus.Reorder_stage_boundaries ->
    (* Stage ordering is a happens-before property; the lockset pass
       ignores stage-boundary events, so this mutant is (correctly)
       invisible to it — the vector-clock checker owns the rule. *)
    []

let self_test () =
  let check name expected mutation =
    let diags = analyze (Racecheck.Protocol.stream ?mutation ()) in
    let got =
      List.sort_uniq compare (List.map (fun d -> d.Diagnostic.rule) diags)
    in
    { name; expected; got; passed = got = expected }
  in
  check "unmutated" [] None
  :: List.map
       (fun (m : Sanitizer.Corpus.protocol_mutant) ->
         check m.Sanitizer.Corpus.mutant_name
           (expected_rules m.Sanitizer.Corpus.mutation)
           (Some m.Sanitizer.Corpus.mutation))
       Sanitizer.Corpus.protocol_mutants
