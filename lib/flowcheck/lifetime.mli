(** Per-object live ranges and dangling windows.

    An object's *dangling window* opens at the [Free] that leaves at
    least one live slot targeting it (the paper's Section 3.2
    precondition: exactly the state in which MineSweeper must keep the
    extent quarantined) and closes when the last such slot dies —
    overwritten, cleared, or its holder freed. Window lengths are
    measured in trace ops. *)

type info = {
  size : int;  (** requested bytes *)
  alloc_op : int;
}

type window_stats = {
  opened : int;
  closed : int;
  open_at_end : int;  (** windows still open when the trace ended *)
  max_len : int;  (** longest window, in ops (open windows measured to
                      the end of the trace) *)
  total_len : int;
}

type t

val create : unit -> t
val on_alloc : t -> id:int -> size:int -> op:int -> unit

val on_free : t -> id:int -> op:int -> info option
(** Retire a live id, returning its record; [None] if the id is not
    live (double-free / never allocated — the lint's department). *)

val find : t -> int -> info option
(** Live ids only. *)

val live_count : t -> int
val freed_size : t -> int -> int option
(** Requested size of a freed (dead) id. *)

val open_window : t -> id:int -> op:int -> unit
(** Idempotent: reopening an already-open window is a no-op. *)

val window_is_open : t -> int -> bool

val close_window : t -> id:int -> op:int -> unit
(** Close the id's window at [op]; no-op when none is open. *)

val window_stats : t -> end_op:int -> window_stats
