(** Eraser-style static lockset discipline over the sweep protocol.

    Where {!Racecheck.Hb} proves presence/absence of happens-before
    edges with vector clocks, this pass checks a purely syntactic
    discipline on the same {!Racecheck.Event.t} stream: every release
    decision must be dominated by its sweep's [Lock_in]/[Mark_done] and,
    when a mutator republished a locked-in address during the window, by
    a [Fence]. It needs no clocks and no replay, so it runs on recorded
    streams and on the protocol emulator alike and complements the
    vector-clock detector (a conservative discipline can flag schedules
    the clocks prove benign — the point is drift detection, not
    precision). *)

val rules : (string * string) list
(** Rule id, one-line description. *)

val analyze : Racecheck.Event.t list -> Sanitizer.Diagnostic.t list
(** Findings in event order; [op_index] is the event's [seq]. *)

type mutant_result = {
  name : string;
  expected : string list;
  got : string list;
  passed : bool;
}

val self_test : unit -> mutant_result list
(** Run {!Racecheck.Protocol.stream} unmutated (must come back clean)
    and under every seeded mutant (each must raise exactly its expected
    lockset rules). *)
