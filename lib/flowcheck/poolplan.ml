(* Stage two of the pooling analysis: turn the per-site exposure
   summaries into a pool partition plus static resource bounds.

   The merge objective is "fewest pools subject to the safety
   constraint": no pool may recycle a freed object while any site in
   that pool has a live dangling alias to it. Under the three-level
   exposure lattice {!Siteflow} computes, the optimum has a closed
   form:

   - pointer-exposed sites can never recycle, and pools that never
     recycle can always be merged — one shared retiring pool;
   - alias-exposed (or wild-exposed) sites may recycle only among
     objects of their own site (same-site reuse cannot confuse types
     under the surviving alias) — one singleton recycling pool each;
   - unexposed sites can all share one recycling pool.

   Pool ids are assigned by first encounter over sites in ascending
   order, so the partition is a pure function of the summaries. *)

type reason =
  | Clean  (** no exposed free: shared recycling pool *)
  | Alias_isolated  (** alias/wild exposure: recycles, but alone *)
  | Ptr_retired  (** pointer exposure: never recycles *)

let reason_to_string = function
  | Clean -> "clean"
  | Alias_isolated -> "alias-isolated"
  | Ptr_retired -> "ptr-retired"

type pool = {
  id : int;
  members : int list;  (** sites, ascending *)
  recycles : bool;
  reason : reason;
  occupancy_bound : int;
      (** static bound on peak concurrent live usable bytes *)
  footprint_bound : int;
      (** static bound on address space the pool ever owns, in whole
          slabs / page runs *)
  retired_bound : int;
      (** static bound on bytes retired forever (0 for recycling pools) *)
}

type t = {
  trace_name : string;
  site_count : int;
  pool_count : int;
  pool_of_site : int array;
  pools : pool list;  (** ascending id *)
  flow : Siteflow.t;
}

let page = Vmem.page_size

(* Address-space bound for one site's demand inside a pool. Slab need
   is sub-additive across sites (ceil(a+b) <= ceil a + ceil b), so
   summing per-site ceilings dominates the pool's true slab count. *)
let footprint_of_demand ~use_total demand =
  List.fold_left
    (fun acc (key, (peak, total)) ->
      let n = if use_total then total else peak in
      match key with
      | Siteflow.Small cls ->
        let slots = Alloc.Size_class.slab_slots cls in
        let slabs = (n + slots - 1) / slots in
        acc + (slabs * Alloc.Size_class.slab_pages cls * page)
      | Siteflow.Large pages -> acc + (n * pages * page))
    0 demand

let classify (s : Siteflow.summary) =
  if s.Siteflow.ptr_exposed then Ptr_retired
  else if s.Siteflow.alias_exposed || s.Siteflow.wild_exposed then
    Alias_isolated
  else Clean

let build (flow : Siteflow.t) =
  let sites = flow.Siteflow.sites in
  let pool_of_site = Array.make sites (-1) in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let shared = ref (-1) and retire = ref (-1) in
  Array.iter
    (fun (s : Siteflow.summary) ->
      let pool =
        match classify s with
        | Clean ->
          if !shared < 0 then shared := fresh ();
          !shared
        | Alias_isolated -> fresh ()
        | Ptr_retired ->
          if !retire < 0 then retire := fresh ();
          !retire
      in
      pool_of_site.(s.Siteflow.site) <- pool)
    flow.Siteflow.summaries;
  let pool_count = max 1 !next in
  (* Degenerate empty-summary case cannot happen (sites >= 1), but keep
     the array total: any unassigned site falls into pool 0. *)
  Array.iteri
    (fun i p -> if p < 0 then pool_of_site.(i) <- 0)
    pool_of_site;
  let members = Array.make pool_count [] in
  for site = sites - 1 downto 0 do
    let p = pool_of_site.(site) in
    members.(p) <- site :: members.(p)
  done;
  let pools =
    List.init pool_count (fun id ->
        let member_sites = members.(id) in
        let summaries =
          List.map (fun s -> flow.Siteflow.summaries.(s)) member_sites
        in
        let reason =
          match summaries with
          | [] -> Clean
          | s :: _ -> classify s
        in
        let recycles = reason <> Ptr_retired in
        let occupancy_bound =
          List.fold_left
            (fun acc (s : Siteflow.summary) ->
              acc + s.Siteflow.peak_live_bytes)
            0 summaries
        in
        let footprint_bound =
          List.fold_left
            (fun acc (s : Siteflow.summary) ->
              acc
              + footprint_of_demand ~use_total:(not recycles)
                  s.Siteflow.demand)
            0 summaries
        in
        let retired_bound =
          if recycles then 0
          else
            List.fold_left
              (fun acc (s : Siteflow.summary) ->
                acc + s.Siteflow.total_freed_bytes)
              0 summaries
        in
        {
          id;
          members = member_sites;
          recycles;
          reason;
          occupancy_bound;
          footprint_bound;
          retired_bound;
        })
  in
  {
    trace_name = flow.Siteflow.trace_name;
    site_count = sites;
    pool_count;
    pool_of_site;
    pools;
    flow;
  }

let of_stream stream = build (Siteflow.analyze stream)
let of_trace trace = build (Siteflow.analyze_trace trace)

let to_alloc_plan t =
  {
    Alloc.Poolalloc.sites = t.site_count;
    pools = t.pool_count;
    pool_of_site = Array.copy t.pool_of_site;
    recycles =
      (let a = Array.make t.pool_count true in
       List.iter (fun p -> a.(p.id) <- p.recycles) t.pools;
       a);
  }

(* ------------------------------------------------------------------ *)
(* Certification: the static bounds must dominate what the pooled
   backend actually did. *)

type bound_check = {
  check_pool : int;
  metric : string;
  bound : int;
  measured : int;
  holds : bool;
}

let check_pool_stats t (stats : Alloc.Poolalloc.pool_stats array) =
  if Array.length stats <> t.pool_count then
    invalid_arg "Poolplan.check_pool_stats: pool count mismatch";
  List.concat_map
    (fun p ->
      let st = stats.(p.id) in
      let mk metric bound measured =
        { check_pool = p.id; metric; bound; measured; holds = measured <= bound }
      in
      [
        mk "occupancy" p.occupancy_bound st.Alloc.Poolalloc.peak_live_bytes;
        mk "footprint" p.footprint_bound st.Alloc.Poolalloc.footprint_bytes;
        mk "retired" p.retired_bound st.Alloc.Poolalloc.retired_bytes;
      ])
    t.pools

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "pool plan for %s: %d site%s -> %d pool%s\n"
       t.trace_name t.site_count
       (if t.site_count = 1 then "" else "s")
       t.pool_count
       (if t.pool_count = 1 then "" else "s"));
  List.iter
    (fun p ->
      Buffer.add_string b
        (Printf.sprintf
           "  pool %d [%s, %s]: sites {%s} occupancy<=%d footprint<=%d%s\n"
           p.id
           (if p.recycles then "recycling" else "retiring")
           (reason_to_string p.reason)
           (String.concat "," (List.map string_of_int p.members))
           p.occupancy_bound p.footprint_bound
           (if p.recycles then ""
            else Printf.sprintf " retired<=%d" p.retired_bound)))
    t.pools;
  Buffer.contents b

let site_json (t : t) (s : Siteflow.summary) =
  Printf.sprintf
    "{\"site\":%d,\"pool\":%d,\"allocs\":%d,\"frees\":%d,\"peak_live_bytes\":%d,\"total_freed_bytes\":%d,\"ptr_exposed\":%b,\"alias_exposed\":%b,\"wild_exposed\":%b,\"exposed_frees\":%d}"
    s.Siteflow.site
    t.pool_of_site.(s.Siteflow.site)
    s.Siteflow.allocs s.Siteflow.frees s.Siteflow.peak_live_bytes
    s.Siteflow.total_freed_bytes s.Siteflow.ptr_exposed
    s.Siteflow.alias_exposed s.Siteflow.wild_exposed
    s.Siteflow.exposed_frees

let pool_json p =
  Printf.sprintf
    "{\"pool\":%d,\"recycles\":%b,\"reason\":\"%s\",\"sites\":[%s],\"occupancy_bound\":%d,\"footprint_bound\":%d,\"retired_bound\":%d}"
    p.id p.recycles
    (reason_to_string p.reason)
    (String.concat "," (List.map string_of_int p.members))
    p.occupancy_bound p.footprint_bound p.retired_bound

let sites_json t =
  "["
  ^ String.concat ","
      (Array.to_list (Array.map (site_json t) t.flow.Siteflow.summaries))
  ^ "]"

let pools_json t =
  "[" ^ String.concat "," (List.map pool_json t.pools) ^ "]"
