type prot =
  | No_access
  | Read_only
  | Read_write

type fault_kind =
  | Unmapped_access
  | Protection_violation

exception Fault of fault_kind * int

let page_size = 4096
let word_size = 8
let granule = 16

type page = {
  mutable data : Bytes.t option; (* None while decommitted *)
  mutable prot : prot;
  mutable soft_dirty : bool;
  mutable write_gen : int; (* scan generation of the last content change *)
}

type t = {
  pages : (int, page) Hashtbl.t; (* keyed by page index *)
  mutable committed : int; (* resident bytes *)
  mutable demand_commit_hook : pages:int -> unit;
  mutable generation : int; (* current scan generation (see mli) *)
  mutable write_observer : (addr:int -> value:int -> gen:int -> unit) option;
  mutable commit_observer : (addr:int -> len:int -> unit) option;
  mutable decommit_observer : (addr:int -> len:int -> unit) option;
}

let create () =
  {
    pages = Hashtbl.create 4096;
    committed = 0;
    demand_commit_hook = (fun ~pages:_ -> ());
    generation = 0;
    write_observer = None;
    commit_observer = None;
    decommit_observer = None;
  }

let generation t = t.generation

let advance_generation t =
  t.generation <- t.generation + 1;
  t.generation

let set_demand_commit_hook t f = t.demand_commit_hook <- f
let set_write_observer t f = t.write_observer <- Some f
let clear_write_observer t = t.write_observer <- None
let set_commit_observer t f = t.commit_observer <- Some f
let clear_commit_observer t = t.commit_observer <- None
let set_decommit_observer t f = t.decommit_observer <- Some f
let clear_decommit_observer t = t.decommit_observer <- None

let notify_commit t ~addr ~len =
  match t.commit_observer with
  | None -> ()
  | Some f -> f ~addr ~len

let page_index addr = addr / page_size
let page_base addr = addr - (addr mod page_size)

let check_page_range addr len =
  assert (len > 0);
  assert (addr mod page_size = 0);
  assert (len mod page_size = 0)

let iter_page_indices ~addr ~len f =
  let first = page_index addr in
  let last = page_index (addr + len - 1) in
  for i = first to last do
    f i
  done

let map t ~addr ~len =
  check_page_range addr len;
  iter_page_indices ~addr ~len (fun i ->
      assert (not (Hashtbl.mem t.pages i));
      Hashtbl.replace t.pages i
        { data = Some (Bytes.make page_size '\000');
          prot = Read_write;
          soft_dirty = false;
          write_gen = t.generation };
      t.committed <- t.committed + page_size);
  notify_commit t ~addr ~len

let unmap t ~addr ~len =
  check_page_range addr len;
  iter_page_indices ~addr ~len (fun i ->
      match Hashtbl.find_opt t.pages i with
      | None -> ()
      | Some p ->
        if p.data <> None then t.committed <- t.committed - page_size;
        Hashtbl.remove t.pages i)

let find_page t addr =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None -> raise (Fault (Unmapped_access, addr))
  | Some p -> p

let decommit t ~addr ~len =
  check_page_range addr len;
  (match t.decommit_observer with
  | None -> ()
  | Some f -> f ~addr ~len);
  iter_page_indices ~addr ~len (fun i ->
      let p =
        match Hashtbl.find_opt t.pages i with
        | None -> raise (Fault (Unmapped_access, i * page_size))
        | Some p -> p
      in
      if p.data <> None then begin
        p.data <- None;
        p.write_gen <- t.generation;
        t.committed <- t.committed - page_size
      end)

let commit_page t i p =
  if p.data = None then begin
    p.data <- Some (Bytes.make page_size '\000');
    p.write_gen <- t.generation;
    t.committed <- t.committed + page_size;
    notify_commit t ~addr:(i * page_size) ~len:page_size
  end

let commit t ~addr ~len =
  check_page_range addr len;
  iter_page_indices ~addr ~len (fun i ->
      match Hashtbl.find_opt t.pages i with
      | None -> raise (Fault (Unmapped_access, i * page_size))
      | Some p -> commit_page t i p)

let protect t ~addr ~len prot =
  check_page_range addr len;
  iter_page_indices ~addr ~len (fun i ->
      match Hashtbl.find_opt t.pages i with
      | None -> raise (Fault (Unmapped_access, i * page_size))
      | Some p ->
        (* Conservative: visibility changes invalidate cached page
           summaries even though the bytes themselves are untouched. *)
        if p.prot <> prot then p.write_gen <- t.generation;
        p.prot <- prot)

let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

let is_committed t addr =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None -> false
  | Some p -> p.data <> None

let protection t addr = (find_page t addr).prot

(* Demand-commit on access: a decommitted-but-accessible page behaves like
   madvise(DONTNEED)'d memory — the OS hands back a zeroed page. *)
let readable_page t addr =
  let p = find_page t addr in
  (match p.prot with
  | No_access -> raise (Fault (Protection_violation, addr))
  | Read_only | Read_write -> ());
  if p.data = None then begin
    commit_page t (page_index addr) p;
    t.demand_commit_hook ~pages:1
  end;
  p

let writable_page t addr =
  let p = find_page t addr in
  (match p.prot with
  | No_access | Read_only -> raise (Fault (Protection_violation, addr))
  | Read_write -> ());
  if p.data = None then begin
    commit_page t (page_index addr) p;
    t.demand_commit_hook ~pages:1
  end;
  p

let page_bytes p =
  match p.data with
  | Some b -> b
  | None -> assert false

let load t addr =
  assert (addr mod word_size = 0);
  let p = readable_page t addr in
  Int64.to_int (Bytes.get_int64_le (page_bytes p) (addr mod page_size))

let store t addr w =
  assert (addr mod word_size = 0);
  let p = writable_page t addr in
  Bytes.set_int64_le (page_bytes p) (addr mod page_size) (Int64.of_int w);
  p.soft_dirty <- true;
  p.write_gen <- t.generation;
  match t.write_observer with
  | None -> ()
  | Some f -> f ~addr ~value:w ~gen:p.write_gen

let zero_range t ~addr ~len =
  if len > 0 then begin
    let finish = addr + len in
    let pos = ref addr in
    while !pos < finish do
      let p = writable_page t !pos in
      let off = !pos mod page_size in
      let n = min (page_size - off) (finish - !pos) in
      Bytes.fill (page_bytes p) off n '\000';
      p.soft_dirty <- true;
      p.write_gen <- t.generation;
      pos := !pos + n
    done
  end

let committed_bytes t = t.committed

let mapped_bytes t = Hashtbl.length t.pages * page_size

let iter_committed_words t ~addr ~len f =
  if len > 0 then begin
    let finish = addr + len in
    let pos = ref (page_base addr) in
    if !pos < addr then pos := addr;
    (* Walk page by page; words are always page-aligned chunks so a word
       never straddles two pages. *)
    let pos = ref !pos in
    while !pos < finish do
      let next_page = page_base !pos + page_size in
      let chunk_end = min next_page finish in
      (match Hashtbl.find_opt t.pages (page_index !pos) with
      | Some { data = Some bytes; prot = Read_only | Read_write; _ } ->
        let off0 = !pos mod page_size in
        let words = (chunk_end - !pos) / word_size in
        for k = 0 to words - 1 do
          let off = off0 + (k * word_size) in
          let w = Int64.to_int (Bytes.get_int64_le bytes off) in
          f (page_base !pos + off) w
        done
      | Some _ | None -> ());
      pos := chunk_end
    done
  end

let iter_readable_pages t f =
  Hashtbl.iter
    (fun i p ->
      match p with
      | { data = Some bytes; prot = Read_only | Read_write; _ } ->
        f (i * page_size) bytes
      | { data = None; _ } | { prot = No_access; _ } -> ())
    t.pages

let iter_readable_pages_gen t f =
  Hashtbl.iter
    (fun i p ->
      match p with
      | { data = Some bytes; prot = Read_only | Read_write; write_gen; _ } ->
        f (i * page_size) bytes ~write_gen
      | { data = None; _ } | { prot = No_access; _ } -> ())
    t.pages

(* Zero-copy snapshot for the markers: the live page frames themselves,
   sorted by base address so every consumer sees the one canonical
   order regardless of hash-table iteration order. No Bytes are copied —
   callers must treat the frames as read-only and must not interleave
   stores, protection changes or unmaps with reads of the snapshot
   (the marking phase holds that property: nothing mutates the address
   space while it scans). *)
let snapshot_readable_pages t =
  let acc =
    Hashtbl.fold
      (fun i p acc ->
        match p with
        | { data = Some bytes; prot = Read_only | Read_write; write_gen; _ } ->
          (i * page_size, bytes, write_gen) :: acc
        | { data = None; _ } | { prot = No_access; _ } -> acc)
      t.pages []
  in
  let pages = Array.of_list acc in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) pages;
  pages

let write_generation t addr = (find_page t addr).write_gen

let readable_bytes t =
  Hashtbl.fold
    (fun _ p acc ->
      match p with
      | { data = Some _; prot = Read_only | Read_write; _ } -> acc + page_size
      | { data = None; _ } | { prot = No_access; _ } -> acc)
    t.pages 0

let clear_soft_dirty t =
  Hashtbl.iter (fun _ p -> p.soft_dirty <- false) t.pages

let soft_dirty_pages t =
  Hashtbl.fold (fun _ p acc -> if p.soft_dirty then acc + 1 else acc) t.pages 0

(* Pages that were dirtied and then decommitted or protected [No_access]
   carry nothing a re-scan could read: visiting them would inflate the
   simulated pause with bytes no sweep ever touches. *)
let iter_soft_dirty_pages t f =
  Hashtbl.iter
    (fun i p ->
      match p with
      | { soft_dirty = true; data = Some _; prot = Read_only | Read_write; _ }
        ->
        f (i * page_size)
      | _ -> ())
    t.pages

(* Publish the address-space accounting as read-through metrics: the
   registry consults these at export time, so the hot paths above carry
   no extra bookkeeping. *)
let attach_obs ?(prefix = "") t reg =
  let n name = prefix ^ name in
  Obs.Registry.derive_gauge reg (n "vmem.committed_bytes") (fun () ->
      committed_bytes t);
  Obs.Registry.derive_gauge reg (n "vmem.mapped_bytes") (fun () ->
      mapped_bytes t);
  Obs.Registry.derive_gauge reg (n "vmem.readable_bytes") (fun () ->
      readable_bytes t);
  Obs.Registry.derive_counter reg (n "vmem.scan_generation") (fun () ->
      generation t)
