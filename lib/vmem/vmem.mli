(** Simulated virtual memory.

    This is the substrate the whole reproduction runs on: a paged, sparse
    64-bit-style address space with the operations MineSweeper needs from
    the OS — map/unmap, commit/decommit of physical backing, page
    protection, soft-dirty tracking (Linux's [/proc/pid/pagemap] feature
    used by the mostly-concurrent mode) and resident-set accounting.

    Addresses are plain OCaml [int]s. Loads and stores operate on aligned
    8-byte words so that sweeps can interpret every word of memory as a
    potential pointer, exactly as the paper does. *)

type t

type prot =
  | No_access
  | Read_only
  | Read_write

type fault_kind =
  | Unmapped_access
  | Protection_violation

exception Fault of fault_kind * int
(** Raised on an access the simulated MMU refuses; carries the faulting
    address. A use-after-free on an unmapped quarantined page surfaces as
    this exception — the "clean termination" of Section 2. *)

val page_size : int
(** 4096 bytes. *)

val word_size : int
(** 8 bytes. *)

val granule : int
(** 16 bytes — the smallest allocation granule, one shadow-map bit each. *)

val create : unit -> t

val set_demand_commit_hook : t -> (pages:int -> unit) -> unit
(** Called whenever an access demand-commits decommitted pages, so the
    caller can charge page-fault costs. *)

val set_write_observer :
  t -> (addr:int -> value:int -> gen:int -> unit) -> unit
(** Observe every word {!store} (address, stored value, and the page's
    resulting write generation). [zero_range] is deliberately not
    observed: it only ever writes zeros, which can never encode a heap
    pointer. Used by the race checker ({!Racecheck}) to attribute
    mutator writes to pages with their dirty-generation ordering edge;
    at most one observer is active. *)

val clear_write_observer : t -> unit

val set_commit_observer : t -> (addr:int -> len:int -> unit) -> unit
(** Observe every transition of pages to the committed (resident) state:
    fresh {!map}s, explicit {!commit}s, and demand-commits triggered by
    access to a decommitted page. The callback fires after the pages are
    resident, so [committed_bytes] already reflects them. The mirror of
    {!set_decommit_observer} — together the two observers see every
    change to the resident set, which is how the fleet layer
    ({!Fleet.Machine}) tracks a machine-wide physical-page budget across
    tenant address spaces; at most one observer is active. *)

val clear_commit_observer : t -> unit

val set_decommit_observer : t -> (addr:int -> len:int -> unit) -> unit
(** Observe every {!decommit} of a page-aligned range, before the backing
    is dropped. Used by the sweep pipeline's Purge stage to account
    decommit work (madvise-equivalent syscalls) without the allocator
    backends needing any extra plumbing; at most one observer is
    active. *)

val clear_decommit_observer : t -> unit

(** {1 Mapping and physical backing} *)

val map : t -> addr:int -> len:int -> unit
(** Reserve and commit a page-aligned range. Fresh pages are zeroed. *)

val unmap : t -> addr:int -> len:int -> unit
(** Remove the range entirely; later accesses fault. *)

val decommit : t -> addr:int -> len:int -> unit
(** Drop the physical backing (contents are lost) but keep the range
    mapped. A later access demand-commits zeroed pages — unless the range
    is also protected [No_access]. *)

val commit : t -> addr:int -> len:int -> unit
(** Restore physical backing (zeroed) for a decommitted range. *)

val protect : t -> addr:int -> len:int -> prot -> unit

val is_mapped : t -> int -> bool
val is_committed : t -> int -> bool
val protection : t -> int -> prot
(** [protection t addr] — the page must be mapped. *)

(** {1 Word access} *)

val load : t -> int -> int
(** [load t addr] reads the aligned word at [addr]. *)

val store : t -> int -> int -> unit
(** [store t addr w] writes [w] at the aligned address [addr] and marks
    the page soft-dirty. *)

val zero_range : t -> addr:int -> len:int -> unit
(** Zero an arbitrary byte range (must be mapped and writable). *)

(** {1 Accounting} *)

val committed_bytes : t -> int
(** Resident set size of the simulated process. *)

val mapped_bytes : t -> int

(** {1 Sweeping support} *)

val iter_committed_words :
  t -> addr:int -> len:int -> (int -> int -> unit) -> unit
(** [iter_committed_words t ~addr ~len f] calls [f address word] for every
    aligned word in the committed, readable portion of the range.
    Decommitted or [No_access] pages are skipped without faulting — this
    is how sweeps avoid touching purged memory (Section 4.5). *)

val iter_readable_pages : t -> (int -> Bytes.t -> unit) -> unit
(** [iter_readable_pages t f] calls [f page_base bytes] for every
    committed page that is readable. This is the sweep's view of "all
    program memory": decommitted and [No_access] (unmapped-in-quarantine)
    pages are excluded. Iteration order is unspecified. The [bytes] are
    the live page frame, not a copy — callers must not mutate it. *)

val snapshot_readable_pages : t -> (int * Bytes.t * int) array
(** Zero-copy snapshot of every committed readable page as
    [(page_base, bytes, write_gen)] triples sorted by base address — the
    canonical page order of the marking phase, the one every parallel
    merge reproduces. The [bytes] are the live page frames (no copies,
    no per-page allocation beyond the array itself): callers must treat
    them as read-only and must not interleave stores, protection changes
    or unmaps with reads of the snapshot. *)

(** {1 Scan generations}

    Support for incremental sweeping: the address space carries a
    monotonically increasing {e scan generation}, and every page records
    the generation of its last content change ([store], [zero_range],
    decommit, (re-)commit, demand-commit, protection change, or fresh
    mapping). A per-page summary captured while generation [g] was
    current is still coherent at a later sweep iff the page's
    [write_gen < g]: nothing has touched the page at or after the
    capture. Generations never reset, so soft-dirty clearing (used by the
    stop-the-world re-scan) and summary validity are independent. *)

val generation : t -> int
(** The current scan generation. *)

val advance_generation : t -> int
(** Start a new scan generation (the beginning of an incremental sweep's
    marking phase) and return it. *)

val write_generation : t -> int -> int
(** [write_generation t addr] — generation of the page's last content
    change. The page must be mapped. *)

val iter_readable_pages_gen :
  t -> (int -> Bytes.t -> write_gen:int -> unit) -> unit
(** {!iter_readable_pages}, additionally passing each page's last-write
    generation so callers can decide between a cached summary and a
    rescan. *)

val readable_bytes : t -> int
(** Total bytes {!iter_readable_pages} would visit. *)

val clear_soft_dirty : t -> unit

val soft_dirty_pages : t -> int
(** Number of pages written since the last {!clear_soft_dirty}
    (readable or not — the raw kernel-style counter). *)

val iter_soft_dirty_pages : t -> (int -> unit) -> unit
(** Iterate the start addresses of soft-dirty pages that are still
    committed and readable. Pages dirtied and then decommitted or
    protected [No_access] (e.g. unmapped-in-quarantine allocations) are
    skipped: a re-scan has nothing to read there, so counting them would
    overstate the stop-the-world pause. *)

val attach_obs : ?prefix:string -> t -> Obs.Registry.t -> unit
(** Register read-through metrics ([vmem.committed_bytes],
    [vmem.mapped_bytes], [vmem.readable_bytes], [vmem.scan_generation])
    in the registry, each name prepended with [prefix] (default [""]).
    Read-through means the gauges consult the live accounting at export
    time — commit and decommit round-trip the gauge back to its prior
    value with no extra bookkeeping on the hot paths. A namespaced
    [prefix] (e.g. ["ms."] for an instance, ["fleet.t3."] for a fleet
    tenant) lets several address spaces publish into one registry.
    Raises {!Obs.Registry.Duplicate} if the prefixed names are already
    claimed there. *)
