let page_size = Vmem.page_size

type t = {
  granule : int;
  bitmap_bytes : int;
  mutable pages : (int, Bytes.t) Hashtbl.t;
}

let create ?(granule = Vmem.granule) () =
  assert (granule >= 8 && page_size mod granule = 0);
  {
    granule;
    bitmap_bytes = page_size / granule / 8;
    pages = Hashtbl.create 1024;
  }

let granule t = t.granule

let clear t = t.pages <- Hashtbl.create (Hashtbl.length t.pages)

let mark t p =
  assert (Layout.in_heap p);
  let page = p / page_size in
  let bitmap =
    match Hashtbl.find_opt t.pages page with
    | Some b -> b
    | None ->
      let b = Bytes.make t.bitmap_bytes '\000' in
      Hashtbl.replace t.pages page b;
      b
  in
  let g = p mod page_size / t.granule in
  let byte = g / 8 and bit = g mod 8 in
  Bytes.unsafe_set bitmap byte
    (Char.chr (Char.code (Bytes.unsafe_get bitmap byte) lor (1 lsl bit)))

let is_marked t p =
  match Hashtbl.find_opt t.pages (p / page_size) with
  | None -> false
  | Some bitmap ->
    let g = p mod page_size / t.granule in
    Char.code (Bytes.unsafe_get bitmap (g / 8)) land (1 lsl (g mod 8)) <> 0

let range_marked t ~addr ~len =
  assert (len > 0);
  (* Check every granule the range intersects; granule-sized steps from
     the aligned start. *)
  let granule = t.granule in
  let first = addr - (addr mod granule) in
  let rec check p = p < addr + len && (is_marked t p || check (p + granule)) in
  check first

let iter_marked t f =
  Hashtbl.iter
    (fun pg bitmap ->
      Bytes.iteri
        (fun byte c ->
          let x = Char.code c in
          if x <> 0 then
            for bit = 0 to 7 do
              if x land (1 lsl bit) <> 0 then
                f ((pg * page_size) + (((byte * 8) + bit) * t.granule))
            done)
        bitmap)
    t.pages

let marked_granules t =
  Hashtbl.fold
    (fun _ bitmap acc ->
      let count = ref 0 in
      Bytes.iter
        (fun c ->
          let x = Char.code c in
          for bit = 0 to 7 do
            if x land (1 lsl bit) <> 0 then incr count
          done)
        bitmap;
      acc + !count)
    t.pages 0

let shadow_bytes t = Hashtbl.length t.pages * t.bitmap_bytes
