module Ring = Obs.Trace_ring

type event =
  | Free_intercepted of { addr : int; usable : int }
  | Double_free of { addr : int }
  | Unmapped of { addr : int; len : int }
  | Sweep_started of { sweep : int; quarantined_bytes : int }
  | Sweep_finished of { sweep : int; released : int; failed : int }
  | Stop_the_world of { cycles : int }
  | Allocation_paused of { cycles : int }

(* The log is a thin emitter: events are encoded as instantaneous spans
   in an [Obs.Trace_ring] (possibly shared with the instance's phase
   profiling) and decoded back on read. [recorded] counts this log's own
   emissions — the shared ring may hold other producers' spans too. *)
type t = {
  ring : Ring.t;
  mutable recorded : int;
}

let create ?(capacity = 1024) ?ring () =
  let ring =
    match ring with Some r -> r | None -> Ring.create ~capacity ()
  in
  { ring; recorded = 0 }

let ring t = t.ring

let span_of_event event =
  match event with
  | Free_intercepted { addr; usable } ->
    (Ring.Quarantine, "free", [ ("addr", addr); ("usable", usable) ])
  | Double_free { addr } -> (Ring.Quarantine, "double-free", [ ("addr", addr) ])
  | Unmapped { addr; len } ->
    (Ring.Quarantine, "unmap", [ ("addr", addr); ("len", len) ])
  | Sweep_started { sweep; quarantined_bytes } ->
    ( Ring.Mark,
      "sweep-start",
      [ ("sweep", sweep); ("quarantined_bytes", quarantined_bytes) ] )
  | Sweep_finished { sweep; released; failed } ->
    ( Ring.Mark,
      "sweep-finish",
      [ ("sweep", sweep); ("released", released); ("failed", failed) ] )
  | Stop_the_world { cycles } -> (Ring.Scan, "stw", [ ("cycles", cycles) ])
  | Allocation_paused { cycles } ->
    (Ring.Alloc_slow, "alloc-pause", [ ("cycles", cycles) ])

let event_of_span (s : Ring.span) =
  let attr name = List.assoc_opt name s.Ring.attrs in
  match (s.Ring.label, s.Ring.attrs) with
  | "free", _ -> (
    match (attr "addr", attr "usable") with
    | Some addr, Some usable -> Some (Free_intercepted { addr; usable })
    | _ -> None)
  | "double-free", _ -> (
    match attr "addr" with
    | Some addr -> Some (Double_free { addr })
    | None -> None)
  | "unmap", _ -> (
    match (attr "addr", attr "len") with
    | Some addr, Some len -> Some (Unmapped { addr; len })
    | _ -> None)
  | "sweep-start", _ -> (
    match (attr "sweep", attr "quarantined_bytes") with
    | Some sweep, Some quarantined_bytes ->
      Some (Sweep_started { sweep; quarantined_bytes })
    | _ -> None)
  | "sweep-finish", _ -> (
    match (attr "sweep", attr "released", attr "failed") with
    | Some sweep, Some released, Some failed ->
      Some (Sweep_finished { sweep; released; failed })
    | _ -> None)
  | "stw", _ -> (
    match attr "cycles" with
    | Some cycles -> Some (Stop_the_world { cycles })
    | None -> None)
  | "alloc-pause", _ -> (
    match attr "cycles" with
    | Some cycles -> Some (Allocation_paused { cycles })
    | None -> None)
  | _ -> None

let record t ~now event =
  let phase, label, attrs = span_of_event event in
  Ring.emit t.ring ~phase ~label ~t_start:now ~t_end:now ~attrs ();
  t.recorded <- t.recorded + 1

let events t =
  List.filter_map
    (fun (s : Ring.span) ->
      match event_of_span s with
      | Some e -> Some (s.Ring.t_start, e)
      | None -> None)
    (Ring.spans t.ring)

let recorded t = t.recorded

let pp_event ppf = function
  | Free_intercepted { addr; usable } ->
    Format.fprintf ppf "free %#x (%d B) -> quarantine" addr usable
  | Double_free { addr } -> Format.fprintf ppf "double free %#x (absorbed)" addr
  | Unmapped { addr; len } ->
    Format.fprintf ppf "unmapped %d B of quarantined pages at %#x" len addr
  | Sweep_started { sweep; quarantined_bytes } ->
    Format.fprintf ppf "sweep #%d started (%d B quarantined)" sweep
      quarantined_bytes
  | Sweep_finished { sweep; released; failed } ->
    Format.fprintf ppf "sweep #%d finished: released %d, failed %d" sweep
      released failed
  | Stop_the_world { cycles } ->
    Format.fprintf ppf "stop-the-world re-scan (%d cycles)" cycles
  | Allocation_paused { cycles } ->
    Format.fprintf ppf "allocation paused %d cycles (sweep lagging)" cycles

let dump ppf t =
  List.iter
    (fun (now, event) -> Format.fprintf ppf "[%12d] %a@." now pp_event event)
    (events t)
