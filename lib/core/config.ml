type concurrency =
  | Sequential
  | Concurrent of { helpers : int; stop_the_world : bool }

(* The sweep knobs live in their own record so a pipeline plan can be
   derived from exactly one place (see [Pipeline.plan_of_config]).
   [Sweep0] is the structural definition; the public [Sweep] module at
   the bottom of this file re-exports it together with preset routing
   (which needs the preset table defined below). *)
module Sweep0 = struct
  type mode =
    | Full_scan
    | Incremental

  type t = {
    mode : mode;
    domains : int;
    flush_batch : int;
  }

  let default = { mode = Full_scan; domains = 1; flush_batch = 64 }

  let make ?(mode = default.mode) ?(domains = default.domains)
      ?(flush_batch = default.flush_batch) () =
    { mode; domains = max 1 domains; flush_batch = max 1 flush_batch }

  let pp ppf t =
    let mode =
      match t.mode with Full_scan -> "full" | Incremental -> "incremental"
    in
    Format.fprintf ppf "{mode=%s domains=%d flush_batch=%d}" mode t.domains
      t.flush_batch
end

type sweep_mode = Sweep0.mode =
  | Full_scan
  | Incremental

type t = {
  quarantining : bool;
  zeroing : bool;
  unmapping : bool;
  sweeping : bool;
  keep_failed : bool;
  purging : bool;
  concurrency : concurrency;
  sweep : Sweep0.t;
  threshold : float;
  threshold_min_bytes : int;
  unmap_factor : float;
  pause_factor : float;
  shadow_granule : int;
  debug_double_free : bool;
}

let default = {
  quarantining = true;
  zeroing = true;
  unmapping = true;
  sweeping = true;
  keep_failed = true;
  purging = true;
  concurrency = Concurrent { helpers = 6; stop_the_world = false };
  sweep = Sweep0.default;
  threshold = 0.15;
  threshold_min_bytes = 128 * 1024;
  unmap_factor = 9.0;
  pause_factor = 1.0;
  shadow_granule = 16;
  debug_double_free = false;
}

(* Accessors for the nested sweep knobs, so call sites read as before
   the [Sweep.t] collapse. *)
let sweep_mode t = t.sweep.Sweep0.mode
let domains t = t.sweep.Sweep0.domains
let flush_batch t = t.sweep.Sweep0.flush_batch

let with_sweep_mode mode t =
  { t with sweep = { t.sweep with Sweep0.mode } }

let with_domains n t =
  { t with sweep = { t.sweep with Sweep0.domains = max 1 n } }

let with_flush_batch n t =
  { t with sweep = { t.sweep with Sweep0.flush_batch = max 1 n } }

let mostly_concurrent =
  { default with concurrency = Concurrent { helpers = 6; stop_the_world = true } }

let incremental = with_sweep_mode Incremental default

let incremental_mostly = with_sweep_mode Incremental mostly_concurrent

(* Cumulative optimisation levels, in the paper's order of estimated
   importance (Section 5.4). *)
let unoptimised = {
  default with
  zeroing = false;
  unmapping = false;
  purging = false;
  concurrency = Sequential;
}

let plus_zeroing = { unoptimised with zeroing = true }
let plus_unmapping = { plus_zeroing with unmapping = true }

let plus_concurrency =
  { plus_unmapping with
    concurrency = Concurrent { helpers = 6; stop_the_world = false } }

let plus_purging = { plus_concurrency with purging = true }

let optimisation_levels =
  [
    ("Unoptimised", unoptimised);
    ("+ Zeroing", plus_zeroing);
    ("+ Unmapping", plus_unmapping);
    ("+ Concurrency", plus_concurrency);
    ("+ Purging", plus_purging);
  ]

(* Partial versions for the source-of-overheads study (Section 5.5). *)
let partial_base = {
  default with
  quarantining = false;
  zeroing = false;
  unmapping = false;
  sweeping = false;
  purging = false;
}

let partial_unmap_zero = { partial_base with zeroing = true; unmapping = true }

let partial_quarantine =
  { partial_unmap_zero with quarantining = true;
    sweeping = false; concurrency = Sequential }

let partial_concurrency =
  { partial_quarantine with
    concurrency = Concurrent { helpers = 6; stop_the_world = false } }

let partial_sweep = { partial_concurrency with sweeping = true; keep_failed = false }
let partial_full = { partial_sweep with keep_failed = true; purging = true }

let partial_versions =
  [
    ("Base overheads", partial_base);
    ("+ Unmapping + Zeroing", partial_unmap_zero);
    ("+ Quarantine", partial_quarantine);
    ("+ Concurrency", partial_concurrency);
    ("+ Sweep", partial_sweep);
    ("+ Failed Frees", partial_full);
  ]

(* Labelled constructor: every field defaults to the shipping
   configuration, so call sites name only what they change. The sweep
   knobs keep their historical labels and feed the nested record. *)
let make ?(quarantining = default.quarantining) ?(zeroing = default.zeroing)
    ?(unmapping = default.unmapping) ?(sweeping = default.sweeping)
    ?(keep_failed = default.keep_failed) ?(purging = default.purging)
    ?(concurrency = default.concurrency)
    ?(sweep_mode = Sweep0.default.Sweep0.mode)
    ?(domains = Sweep0.default.Sweep0.domains)
    ?(flush_batch = Sweep0.default.Sweep0.flush_batch)
    ?(threshold = default.threshold)
    ?(threshold_min_bytes = default.threshold_min_bytes)
    ?(unmap_factor = default.unmap_factor)
    ?(pause_factor = default.pause_factor)
    ?(shadow_granule = default.shadow_granule)
    ?(debug_double_free = default.debug_double_free) () =
  {
    quarantining;
    zeroing;
    unmapping;
    sweeping;
    keep_failed;
    purging;
    concurrency;
    sweep = Sweep0.make ~mode:sweep_mode ~domains ~flush_batch ();
    threshold;
    threshold_min_bytes;
    unmap_factor;
    pause_factor;
    shadow_granule;
    debug_double_free;
  }

(* The canonical preset table: the single place a preset string is tied
   to a configuration. The CLI, the harness and the oracle all resolve
   through it; aliases keep historical spellings working. *)
let presets =
  [
    ("default", default);
    ("mostly", mostly_concurrent);
    ("incremental", incremental);
    ("incremental-mostly", incremental_mostly);
    ("unoptimised", unoptimised);
    ("partial", partial_quarantine);
  ]

let preset_aliases =
  [ ("fully", "default"); ("ms", "default"); ("ms-inc", "incremental") ]

let of_preset name =
  let canonical =
    match List.assoc_opt name preset_aliases with
    | Some target -> target
    | None -> name
  in
  match List.assoc_opt canonical presets with
  | Some config -> Ok config
  | None ->
    Error
      (Printf.sprintf "unknown MineSweeper preset %S (expected one of: %s)"
         name
         (String.concat ", " (List.map fst presets)))

let preset_name config =
  let rec find = function
    | [] -> None
    | (name, preset) :: rest -> if config = preset then Some name else find rest
  in
  find presets

let pp ppf t =
  let concurrency =
    match t.concurrency with
    | Sequential -> "sequential"
    | Concurrent { helpers; stop_the_world } ->
      Printf.sprintf "concurrent(helpers=%d%s)" helpers
        (if stop_the_world then ", stw" else "")
  in
  let mode =
    match sweep_mode t with Full_scan -> "full" | Incremental -> "incremental"
  in
  let domains_s =
    if domains t > 1 then Printf.sprintf " domains=%d" (domains t) else ""
  in
  Format.fprintf ppf
    "{quarantine=%b zero=%b unmap=%b sweep=%b(%s) keep_failed=%b purge=%b %s%s \
     threshold=%.2f}"
    t.quarantining t.zeroing t.unmapping t.sweeping mode t.keep_failed
    t.purging concurrency domains_s t.threshold

(* Public sweep-knob module: the structural record plus preset routing.
   [Sweep.of_preset] resolves the same preset table as {!of_preset} and
   projects the sweep knobs, so a pipeline plan is constructed from
   exactly one place. *)
module Sweep = struct
  include Sweep0

  let of_preset name = Result.map (fun c -> c.sweep) (of_preset name)
end
