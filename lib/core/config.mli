(** MineSweeper configuration: operation modes, feature toggles and
    thresholds.

    Besides the two shipping modes (fully and mostly concurrent), the
    toggles expose every intermediate design point evaluated in the
    paper: the cumulative optimisation levels of Section 5.4
    (Figures 15/16) and the partial "source of overheads" versions of
    Section 5.5 (Figure 17). *)

type concurrency =
  | Sequential  (** sweep and recycle in the application thread *)
  | Concurrent of { helpers : int; stop_the_world : bool }
      (** dedicated sweeper thread plus [helpers] helper threads;
          [stop_the_world] adds the mostly-concurrent dirty-page re-scan *)

(** The sweep knobs, collapsed into one record: marking mode, worker
    domain count, and quarantine flush batching. A sweep-pipeline plan
    ([Pipeline.plan_of_config]) is derived from exactly this record plus
    the concurrency/feature toggles — there is no other plumbing. *)
module Sweep : sig
  type mode =
    | Full_scan
        (** every sweep rescans all readable program memory (the paper's
            baseline marking phase, Section 4.4) *)
    | Incremental
        (** keep soft-dirty-style write tracking live between sweeps and
            cache a per-page pointer summary: only pages written since
            the previous sweep are rescanned, clean pages replay their
            cached summary into the shadow map *)

  type t = {
    mode : mode;
    domains : int;
        (** worker domains for the pipelined sweep stages. [1] (the
            default) keeps the historical single-threaded sweep;
            [n > 1] shards work across [n] OCaml domains through
            [lib/parsweep]. Outputs are byte-identical for every value —
            only the [par.*] / [sweep.stage.*] telemetry changes *)
    flush_batch : int;
        (** quarantine entries locked in per batched flush during sweep
            setup; each batch takes the quarantine lock once *)
  }

  val default : t
  (** [Full_scan], one domain, 64-entry flush batches. *)

  val make : ?mode:mode -> ?domains:int -> ?flush_batch:int -> unit -> t
  (** Labelled constructor over {!default}; [domains] and [flush_batch]
      are clamped to at least 1. *)

  val of_preset : string -> (t, string) result
  (** The sweep knobs of a named preset (same table and aliases as
      {!Config.of_preset}); the single routing point from preset string
      to pipeline plan inputs. *)

  val pp : Format.formatter -> t -> unit
end

type sweep_mode = Sweep.mode =
  | Full_scan
  | Incremental
      (** Compatibility re-export of {!Sweep.mode}: bare [Full_scan] /
          [Incremental] keep working at the [Config] level. *)

type t = {
  quarantining : bool;
      (** [false]: frees forward straight to the allocator (partial
          versions 1–2 of Section 5.5) *)
  zeroing : bool;  (** zero-fill freed data (Section 4.1) *)
  unmapping : bool;
      (** release physical pages of page-spanning quarantined
          allocations (Section 4.2) *)
  sweeping : bool;
      (** [false]: "sweeps" recycle everything without scanning memory
          (partial versions 3–4) *)
  keep_failed : bool;
      (** [false]: release allocations even when dangling pointers were
          found (partial version 5) *)
  purging : bool;  (** full allocator purge after each sweep (Section 4.5) *)
  concurrency : concurrency;
  sweep : Sweep.t;
      (** the collapsed sweep knobs: marking mode, worker domains,
          flush batching — see {!Sweep} *)
  threshold : float;
      (** sweep when pending quarantine exceeds this fraction of the
          heap (paper default 15 %) *)
  threshold_min_bytes : int;
      (** floor below which the quarantine never triggers a sweep *)
  unmap_factor : float;
      (** also sweep when unmapped quarantine exceeds this multiple of
          the resident footprint (paper: 9×) *)
  pause_factor : float;
      (** stall allocation when pending quarantine exceeds this multiple
          of the heap while a sweep is already running (Section 5.7) *)
  shadow_granule : int;
      (** bytes per shadow-map bit (default 16, the smallest allocation
          granule; coarser = smaller map, more aliasing — Section 3.2) *)
  debug_double_free : bool;  (** report double frees instead of counting *)
}

val default : t
(** The fully concurrent shipping configuration: all optimisations on,
    15 % threshold, 6 helper threads. *)

val mostly_concurrent : t
(** Same but with the brief stop-the-world re-scan (Section 5.3). *)

val incremental : t
(** {!default} with [Sweep.mode = Incremental]: marking rescans only
    pages dirtied since the previous sweep and replays cached per-page
    pointer summaries for the rest. Protection guarantees are identical —
    the rebuilt shadow equals a from-scratch full mark (audited by
    [Sanitizer.Invariants]). *)

val incremental_mostly : t
(** {!mostly_concurrent} with the incremental marking phase. *)

(** {1 Cumulative optimisation levels (Figures 15/16)} *)

val unoptimised : t
val plus_zeroing : t
val plus_unmapping : t
val plus_concurrency : t
val plus_purging : t
(** [plus_purging = default]. *)

val optimisation_levels : (string * t) list

(** {1 Partial versions (Figure 17)} *)

val partial_base : t
val partial_unmap_zero : t
val partial_quarantine : t
val partial_concurrency : t
val partial_sweep : t
val partial_full : t

val partial_versions : (string * t) list

(** {1 Construction and presets} *)

val make :
  ?quarantining:bool ->
  ?zeroing:bool ->
  ?unmapping:bool ->
  ?sweeping:bool ->
  ?keep_failed:bool ->
  ?purging:bool ->
  ?concurrency:concurrency ->
  ?sweep_mode:sweep_mode ->
  ?domains:int ->
  ?flush_batch:int ->
  ?threshold:float ->
  ?threshold_min_bytes:int ->
  ?unmap_factor:float ->
  ?pause_factor:float ->
  ?shadow_granule:int ->
  ?debug_double_free:bool ->
  unit ->
  t
(** Labelled constructor; every omitted field takes its {!default}
    value, so [make ~sweep_mode:Incremental ()] reads as a delta. The
    historical [sweep_mode]/[domains] labels feed the nested
    {!Sweep.t}. *)

val sweep_mode : t -> sweep_mode
(** The marking mode of the nested sweep record. *)

val domains : t -> int
(** The worker-domain count of the nested sweep record. *)

val flush_batch : t -> int
(** The quarantine flush batch size of the nested sweep record. *)

val with_sweep_mode : sweep_mode -> t -> t
(** Replace the marking mode, keeping the other sweep knobs. *)

val with_domains : int -> t -> t
(** [with_domains n t] is [t] sweeping with [max 1 n] worker domains —
    the CLI's [--domains] override, applicable to any preset. *)

val with_flush_batch : int -> t -> t
(** Replace the flush batch size (clamped to at least 1). *)

val presets : (string * t) list
(** The named configurations the CLI and harness accept:
    [default], [mostly], [incremental], [incremental-mostly],
    [unoptimised], [partial]. *)

val of_preset : string -> (t, string) result
(** Resolve a preset string (including the historical aliases [fully],
    [ms], [ms-inc]); the error carries the accepted names. *)

val preset_name : t -> string option
(** The canonical preset name of a configuration, if it equals one
    ([None] for hand-built variants). *)

val pp : Format.formatter -> t -> unit
