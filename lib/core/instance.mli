(** A MineSweeper instance: the drop-in layer between the application and
    the allocator (Figure 3).

    [malloc]/[free] replace the allocator's entry points. Frees are
    intercepted and quarantined; periodic linear sweeps of all program
    memory mark the targets of potential pointers in a shadow map, and
    quarantined allocations without marks are recycled through the real
    allocator. See {!Config} for the operation modes.

    The layer is allocator-agnostic: {!Make} builds it over any
    {!Alloc.Backend.S} (the paper reports both JeMalloc and Scudo
    integrations). The default instance included at the top level runs
    over the JeMalloc model.

    The instance is driven by simulated time: sweeps scheduled on the
    background sweeper threads complete when the application's clock
    reaches their completion time. Callers should invoke [tick]
    periodically (every [malloc]/[free] does so implicitly). *)

module type S = Instance_intf.S

type error = Instance_intf.error =
  | Unknown_pointer of int
  | Double_free of int
  | Size_overflow
      (** Outcomes of the typed deallocation API ([free_result],
          [realloc_result], [calloc_result]); see {!Instance_intf.error}. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type sweep_event = Instance_intf.sweep_event =
  | Sweep_locked of { sweep : int; entries : int }
  | Stage_boundary of { sweep : int; stage : Pipeline.stage; enter : bool }
  | Mark_page of { sweep : int; base : int }
  | Mark_completed of { sweep : int; scanned_bytes : int }
  | Stw_fence of { sweep : int }
  | Rescan_page of { sweep : int; base : int }
  | Sweep_completed of { sweep : int }
      (** Synchronization events of the sweep protocol, consumed by the
          race checker via [set_sync_observer]; see
          {!Instance_intf.sweep_event}. *)

module Make (B : Alloc.Backend.S) : S with type backend = B.t

include S with type backend = Alloc.Jemalloc.t

val jemalloc : t -> Alloc.Jemalloc.t
(** Alias of {!backend} for the default JeMalloc instantiation. *)
