(** Bounded in-memory event log for a MineSweeper instance.

    The production analogue is the debug/telemetry channel an operator
    would tail when deploying a drop-in mitigation: what was quarantined,
    when sweeps ran and what they recycled, where pauses came from.

    Redesigned as a thin emitter over {!Obs.Trace_ring}: each event is
    one instantaneous span (phase-tagged, attrs carrying the payload),
    and {!events} decodes the retained spans back. When the ring is
    shared with the instance's phase-profiling spans, unknown labels are
    skipped on decode — the event view stays clean while [msweep trace]
    sees everything. *)

type event =
  | Free_intercepted of { addr : int; usable : int }
  | Double_free of { addr : int }
  | Unmapped of { addr : int; len : int }
  | Sweep_started of { sweep : int; quarantined_bytes : int }
  | Sweep_finished of { sweep : int; released : int; failed : int }
  | Stop_the_world of { cycles : int }
  | Allocation_paused of { cycles : int }

type t

val create : ?capacity:int -> ?ring:Obs.Trace_ring.t -> unit -> t
(** Default capacity: 1024 events. [ring] shares an existing trace ring
    instead of allocating a private one (capacity is then the ring's). *)

val ring : t -> Obs.Trace_ring.t
(** The backing span ring (shared with the instance when created with
    [?ring]). *)

val record : t -> now:int -> event -> unit

val events : t -> (int * event) list
(** Retained events, oldest first, each with its wall-cycle timestamp.
    Spans in the backing ring that are not event-encoded (e.g. phase
    profiling) are skipped. *)

val recorded : t -> int
(** Total events ever recorded through this log (≥ retained count once
    the ring wraps). *)

val pp_event : Format.formatter -> event -> unit

val dump : Format.formatter -> t -> unit
(** Human-readable listing of the retained window. *)
