(** Counters published by a MineSweeper instance.

    Redesigned over the {!Obs} registry: the counters live as typed
    registry handles ({!Live.t}) that the instance increments on its hot
    paths, and {!t} is a plain read-only snapshot taken from them. Every
    consumer — result tables, the CLI, the metrics export — reads the
    same registry, so a counter cannot exist in one view and be missing
    from another ({!to_fields} vs {!registered_names} is test-enforced). *)

type t = {
  frees_intercepted : int;
  double_frees : int;
  sweeps : int;
  swept_bytes : int;
      (** memory actually scanned across all marking phases, the
          stop-the-world dirty re-scans included; under the incremental
          sweep mode, clean pages served from the summary cache do not
          count *)
  stw_rescanned_bytes : int;
      (** the share of {!swept_bytes} scanned inside stop-the-world
          dirty-page re-scans (mostly concurrent mode), kept separate so
          pause work stays distinguishable from background marking *)
  sweep_pages_skipped : int;
      (** incremental mode: clean pages whose cached pointer summary was
          replayed instead of rescanned *)
  sweep_pages_rescanned : int;
      (** incremental mode: pages rescanned because they were written
          (or decommitted/protected/remapped) since the previous sweep *)
  summary_cache_bytes : int;
      (** current footprint of the per-page pointer-summary cache
          (gauge, refreshed after every incremental marking phase) *)
  releases : int;  (** allocations recycled after a clean sweep *)
  released_bytes : int;
  failed_frees : int;  (** release attempts blocked by a mark *)
  unmapped_allocations : int;
  unmapped_bytes : int;
  stw_pauses : int;
  stw_cycles : int;
  alloc_pauses : int;
  alloc_pause_cycles : int;
  peak_quarantine_bytes : int;  (** high-watermark gauge *)
  uaf_prevented : int;
      (** accesses to quarantined memory observed by the checker *)
}

(** The live, registry-backed side: one handle per counter above,
    registered under the [ms.] prefix. Mutated only by {!Instance}. *)
module Live : sig
  type t = {
    frees_intercepted : Obs.Registry.counter;
    double_frees : Obs.Registry.counter;
    sweeps : Obs.Registry.counter;
    swept_bytes : Obs.Registry.counter;
    stw_rescanned_bytes : Obs.Registry.counter;
    sweep_pages_skipped : Obs.Registry.counter;
    sweep_pages_rescanned : Obs.Registry.counter;
    summary_cache_bytes : Obs.Registry.gauge;
    releases : Obs.Registry.counter;
    released_bytes : Obs.Registry.counter;
    failed_frees : Obs.Registry.counter;
    unmapped_allocations : Obs.Registry.counter;
    unmapped_bytes : Obs.Registry.counter;
    stw_pauses : Obs.Registry.counter;
    stw_cycles : Obs.Registry.counter;
    alloc_pauses : Obs.Registry.counter;
    alloc_pause_cycles : Obs.Registry.counter;
    peak_quarantine_bytes : Obs.Registry.gauge;
    uaf_prevented : Obs.Registry.counter;
  }

  val create : Obs.Registry.t -> t
  (** Register every counter in the registry (names [ms.<field>]).
      Raises {!Obs.Registry.Duplicate} on a registry that already holds
      a MineSweeper instance's counters. *)
end

val prefix : string
(** ["ms."] — the registry namespace of the counters above. *)

val snapshot : Live.t -> t

val reset : Live.t -> unit
(** Zero every counter and gauge — no counter survives (test-enforced
    against the field set). *)

val zero : t
(** The all-zero snapshot (what {!snapshot} returns right after
    {!reset}). *)

val to_fields : t -> (string * int) list
(** Every field as [(name, value)], in declaration order. The name set
    is exactly {!field_names}. *)

val field_names : string list

val registered_names : string list
(** The registry names {!Live.create} claims: [ms.<field>] for every
    field of {!t}, sorted. *)

val pp : Format.formatter -> t -> unit
