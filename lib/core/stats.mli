(** Counters published by a MineSweeper instance. *)

type t = {
  mutable frees_intercepted : int;
  mutable double_frees : int;
  mutable sweeps : int;
  mutable swept_bytes : int;
      (** memory actually scanned across all marking phases, the
          stop-the-world dirty re-scans included; under the incremental
          sweep mode, clean pages served from the summary cache do not
          count *)
  mutable stw_rescanned_bytes : int;
      (** the share of {!swept_bytes} scanned inside stop-the-world
          dirty-page re-scans (mostly concurrent mode), kept separate so
          pause work stays distinguishable from background marking *)
  mutable sweep_pages_skipped : int;
      (** incremental mode: clean pages whose cached pointer summary was
          replayed instead of rescanned *)
  mutable sweep_pages_rescanned : int;
      (** incremental mode: pages rescanned because they were written
          (or decommitted/protected/remapped) since the previous sweep *)
  mutable summary_cache_bytes : int;
      (** current footprint of the per-page pointer-summary cache
          (gauge, refreshed after every incremental marking phase) *)
  mutable releases : int;  (** allocations recycled after a clean sweep *)
  mutable released_bytes : int;
  mutable failed_frees : int;  (** release attempts blocked by a mark *)
  mutable unmapped_allocations : int;
  mutable unmapped_bytes : int;
  mutable stw_pauses : int;
  mutable stw_cycles : int;
  mutable alloc_pauses : int;
  mutable alloc_pause_cycles : int;
  mutable peak_quarantine_bytes : int;
  mutable uaf_prevented : int;
      (** accesses to quarantined memory observed by the checker *)
}

val create : unit -> t
val pp : Format.formatter -> t -> unit
