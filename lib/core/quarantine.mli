(** The quarantine: freed allocations awaiting proof of safety.

    Frees are buffered per-thread (to reduce lock contention, Section 1.1
    contribution (c)) and flushed to the global list, which feeds the
    sweep trigger. Entries that fail to free (a mark was found) are kept
    on a separate list so they can be excluded from the trigger
    arithmetic — the paper subtracts failed frees "from both sides" so
    that persistent dangling pointers cannot force a sweep on every
    [free()] (Section 3.2).

    A dedup table keyed by address makes double frees idempotent
    (Section 3): the second [free()] of a quarantined address is a no-op
    (reported in debug mode). *)

type entry = {
  addr : int;
  usable : int;  (** usable size, including the past-the-end byte *)
  mutable unmapped_len : int;
      (** bytes of fully covered pages whose backing was released *)
  mutable failures : int;  (** sweeps that found a mark on this entry *)
}

type t

val create : Alloc.Machine.t -> threads:int -> t

val threads : t -> int
(** Number of per-thread buffers the quarantine was created with. *)

val contains : t -> int -> bool
(** Whether the address is currently quarantined (dedup check). *)

val find : t -> int -> entry option

val push : t -> thread:int -> entry -> unit
(** Quarantine an entry through the thread's local buffer. The address
    must not already be quarantined. A [thread] outside
    [0, threads) aliases buffer 0 (as a hashed-tid cache would):
    correct but contention-prone — {!Sanitizer.Trace_lint}'s
    [free-thread-out-of-range] rule flags traces that do this. *)

val flush_thread : t -> thread:int -> unit
val flush_all : t -> unit

val flush_batch : t -> batch:int -> int
(** Flush every thread buffer to the global list taking the lock once
    per [batch] entries (clamped to at least 1) instead of once per
    entry: the cycle charge is
    [batches * quarantine_flush_lock
     + entries * quarantine_flush_batch_per_entry].
    The resulting fresh-list order, the emitted [Flushed] events and the
    byte accounting are identical to {!flush_all} — only the modeled
    lock cost changes. Returns the number of batches (0 when all
    buffers were empty). *)

val lock_in : t -> entry list
(** Take everything (fresh and previously failed, buffers included) as
    the working set of a starting sweep; subsequent pushes accumulate for
    the next sweep. *)

val requeue_failed : t -> entry -> unit
(** Put a locked-in entry back after its release was blocked. *)

val release : t -> entry -> unit
(** Forget a locked-in entry whose memory was recycled. *)

(** {1 Introspection for the sanitizer's cross-layer audit}

    Visit the entries behind each aggregate counter so the audit can
    recompute {!fresh_mapped_bytes} & co. independently. Read-only. *)

val iter_fresh : t -> (entry -> unit) -> unit
val iter_failed : t -> (entry -> unit) -> unit
val iter_buffered : t -> (entry -> unit) -> unit
(** Entries still sitting in thread-local buffers (not yet flushed, so
    not yet part of the fresh accounting). *)

(** {1 Synchronization-event observation}

    The race checker ({!Racecheck}) subscribes to the quarantine's
    protocol transitions: thread-local pushes (with the raw, pre-clamp
    thread id), buffer flushes, the lock-in barrier that opens a sweep,
    and the per-entry requeue/release outcomes that close it. At most
    one observer is active; emission is synchronous and in program
    order. *)

type event =
  | Pushed of { thread : int; raw_thread : int; addr : int; usable : int }
      (** [thread] is the buffer actually written (after clamping),
          [raw_thread] the id the caller passed. *)
  | Flushed of { thread : int; entries : int }
  | Locked_in of { entries : (int * int) list }
      (** [(addr, usable)] of every entry taken by {!lock_in}. *)
  | Requeued of { addr : int }
  | Released of { addr : int }

val set_observer : t -> (event -> unit) -> unit
val clear_observer : t -> unit

val fresh_mapped_bytes : t -> int
(** Trigger numerator: quarantined bytes that are neither failed nor
    unmapped. *)

val failed_bytes : t -> int
val unmapped_bytes : t -> int
val total_bytes : t -> int
val entry_count : t -> int
