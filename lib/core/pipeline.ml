type stage =
  | Mark
  | Merge
  | Release
  | Purge

let stage_name = function
  | Mark -> "mark"
  | Merge -> "merge"
  | Release -> "release"
  | Purge -> "purge"

let all_stages = [ Mark; Merge; Release; Purge ]

let stage_index = function Mark -> 0 | Merge -> 1 | Release -> 2 | Purge -> 3

type plan = {
  mode : Config.sweep_mode;
  domains : int;
  flush_batch : int;
  helpers : int;
  stop_the_world : bool;
  stages : stage list;
}

(* The single place a plan is constructed from configuration: the
   collapsed sweep knobs ([Config.Sweep.t]) pick mode, domain count and
   flush batching; the feature toggles pick which stages exist at all
   (a non-sweeping partial version has no Mark/Merge, a non-purging one
   no Purge). *)
let plan_of_config (config : Config.t) =
  let helpers, stop_the_world =
    match config.Config.concurrency with
    | Config.Sequential -> (0, false)
    | Config.Concurrent { helpers; stop_the_world } -> (helpers, stop_the_world)
  in
  let stages =
    (if config.Config.sweeping then [ Mark; Merge ] else [])
    @ [ Release ]
    @ (if config.Config.purging then [ Purge ] else [])
  in
  {
    mode = Config.sweep_mode config;
    domains = Config.domains config;
    flush_batch = Config.flush_batch config;
    helpers;
    stop_the_world;
    stages;
  }

let mark_only plan = { plan with stages = [ Mark; Merge ] }

let batches plan ~entries =
  if plan.flush_batch <= 0 then 1
  else max 1 ((entries + plan.flush_batch - 1) / plan.flush_batch)

type stage_report = {
  stage : stage;
  cycles : int;
  items : int;
  bytes : int;
}

type outcome = {
  sweep : int;
  plan : plan;
  scanned_bytes : int;
  replayed_words : int;
  entries : int;
  released : int;
  requeued : int;
  flush_batches : int;
  reports : stage_report list;
  sequential_cycles : int;
  pipelined_cycles : int;
}

(* Both totals are pure projections over the stage reports: the
   sequential total is the plain sum of the single-threaded stage costs;
   the pipelined total substitutes the parallel mark estimate and runs
   the batched-overlap recurrence. Neither ever feeds the simulated
   clock — actual charging is domain-independent. *)
let modeled_cycles plan ~batches ~mark_pipelined reports =
  let sequential = List.fold_left (fun acc r -> acc + r.cycles) 0 reports in
  let stage_cycles =
    Array.of_list
      (List.map
         (fun r -> if r.stage = Mark then mark_pipelined else r.cycles)
         reports)
  in
  let pipelined =
    Parsweep.pipeline_cycles ~domains:plan.domains ~batches stage_cycles
  in
  (sequential, min sequential pipelined)

let speedup outcome =
  if outcome.pipelined_cycles <= 0 then 1.0
  else float_of_int outcome.sequential_cycles
       /. float_of_int outcome.pipelined_cycles

let pp_plan ppf plan =
  let mode =
    match plan.mode with
    | Config.Full_scan -> "full"
    | Config.Incremental -> "incremental"
  in
  Format.fprintf ppf "{mode=%s domains=%d flush_batch=%d helpers=%d%s stages=%s}"
    mode plan.domains plan.flush_batch plan.helpers
    (if plan.stop_the_world then " stw" else "")
    (String.concat "," (List.map stage_name plan.stages))
