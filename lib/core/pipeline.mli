(** The sweep pipeline: typed stage descriptors, plans and outcomes.

    A sweep is no longer a bundle of ad-hoc entry points — it is a
    {!plan} (derived from {!Config.t} in exactly one place,
    {!plan_of_config}) run through the staged pipeline
    mark → merge → release → purge by [Instance.Sweep.run]. Each stage's
    work is reported back as a {!stage_report}; the whole run as an
    {!outcome} carrying both the sequential and the batched-overlap
    (pipelined) cycle projections.

    Determinism contract: the pipelined projection is telemetry only
    ([sweep.stage.*] counters and spans). The simulated clock, the
    shadow set, release decisions and every non-[par.*] /
    non-[sweep.stage.*] export are byte-identical for any [domains]
    value — the same discipline [lib/parsweep] established for the mark
    phase, extended to the whole sweep. *)

type stage =
  | Mark  (** scan readable pages for quarantine hits (parallelisable) *)
  | Merge  (** canonical chunk-id-order merge into the shadow map *)
  | Release  (** shadow-test each locked-in entry; release or requeue *)
  | Purge  (** decommit retained extents back to the OS *)

val stage_name : stage -> string
(** ["mark"], ["merge"], ["release"], ["purge"] — the spelling used by
    [sweep.stage.*] metric names, span labels and racecheck events. *)

val all_stages : stage list
(** The canonical stage order: [Mark; Merge; Release; Purge]. *)

val stage_index : stage -> int
(** Position in {!all_stages}; the order racecheck's [rc-stage-order]
    rule enforces at stage boundaries. *)

type plan = {
  mode : Config.sweep_mode;  (** marking mode of the Mark stage *)
  domains : int;  (** worker domains available to the pipeline *)
  flush_batch : int;
      (** quarantine flush batch size; also the batch granularity of
          the overlap model *)
  helpers : int;  (** helper threads of the concurrent sweeper (0 = app thread) *)
  stop_the_world : bool;  (** mostly-concurrent dirty-page re-scan *)
  stages : stage list;
      (** stages this configuration actually runs, in canonical order:
          no Mark/Merge when [sweeping = false], no Purge when
          [purging = false] *)
}

val plan_of_config : Config.t -> plan
(** Derive the pipeline plan from a configuration — the only
    construction path, so preset → plan routing has a single source of
    truth ([Config.Sweep.of_preset] picks the sweep knobs, the feature
    toggles pick the stage list). *)

val mark_only : plan -> plan
(** The plan restricted to [Mark; Merge] — what the deprecated
    mark-entry-point shims run: marking without lock-in, release or
    purge. *)

val batches : plan -> entries:int -> int
(** Number of flush batches a sweep over [entries] locked-in entries
    uses: [ceil (entries / flush_batch)], at least 1. *)

type stage_report = {
  stage : stage;
  cycles : int;
      (** modeled single-threaded cycle cost of the stage (for Mark:
          the sequential scan estimate) *)
  items : int;  (** stage-specific unit count: pages, entries, extents *)
  bytes : int;  (** bytes the stage moved or examined *)
}

type outcome = {
  sweep : int;  (** sweep ordinal this outcome describes *)
  plan : plan;
  scanned_bytes : int;  (** bytes the Mark stage actually scanned *)
  replayed_words : int;  (** summary words replayed (incremental mode) *)
  entries : int;  (** locked-in quarantine entries *)
  released : int;  (** entries recycled by the Release stage *)
  requeued : int;  (** entries kept because a mark was found *)
  flush_batches : int;  (** batched quarantine flushes during setup *)
  reports : stage_report list;  (** one per executed stage, in order *)
  sequential_cycles : int;
      (** modeled end-to-end cost with no overlap: sum of stage costs *)
  pipelined_cycles : int;
      (** modeled cost with the parallel mark estimate and batched
          stage overlap; equals [sequential_cycles] at one domain *)
}

val modeled_cycles :
  plan -> batches:int -> mark_pipelined:int -> stage_report list -> int * int
(** [(sequential, pipelined)] projections for a stage-report list:
    sequential is the sum of report cycles; pipelined substitutes
    [mark_pipelined] (the parallel mark critical path) for the Mark
    stage and applies {!Parsweep.pipeline_cycles} over [batches].
    Clamped so pipelined never exceeds sequential. Pure projection —
    never charged to the simulated clock. *)

val speedup : outcome -> float
(** [sequential_cycles /. pipelined_cycles] (1.0 when degenerate). *)

val pp_plan : Format.formatter -> plan -> unit
