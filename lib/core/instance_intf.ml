(** Signature of a MineSweeper instance; see {!Instance} for the
    documentation of the layer itself. *)

module type S = sig
  type t

  type backend
  (** The underlying allocator's handle. *)

  val create : ?config:Config.t -> ?threads:int -> Alloc.Machine.t -> t
  (** Builds the layer over a fresh allocator (with the extra-byte
      modification). [threads] sizes the thread-local quarantine
      buffers. *)

  val malloc : t -> int -> int
  (** Allocate. May stall (allocation pause) when a sweep is struggling
      to keep up with the free rate (Section 5.7). *)

  val free : t -> ?thread:int -> int -> unit
  (** Intercepted free: quarantine (zero, maybe unmap) rather than
      recycle. Double frees of a quarantined address are idempotent. *)

  val calloc : t -> int -> int -> int
  (** [calloc t count size]: zero-initialised array allocation. *)

  val realloc : t -> ?thread:int -> int -> int -> int
  (** [realloc t addr size] allocates, copies the overlapping prefix and
      frees the old block through the quarantine. [realloc t 0 size]
      behaves as [malloc]; size 0 behaves as [free] and returns 0. *)

  val tick : t -> unit
  (** Complete any sweep whose scheduled completion time has passed, and
      run the allocator's decay purging when MineSweeper's post-sweep
      purging is disabled. *)

  val drain : t -> unit
  (** Force-finish the in-flight sweep, if any (end of run). *)

  val is_quarantined : t -> int -> bool
  (** Whether this address is currently held in quarantine — an access
      to it is a use-after-free that MineSweeper has prevented from
      becoming a use-after-reallocate. *)

  val note_prevented_uaf : t -> unit
  (** Record that the application just accessed quarantined memory. *)

  val backend : t -> backend

  val live_bytes : t -> int
  (** Live bytes as seen by the underlying allocator (quarantined
      allocations included: they are not yet freed). *)

  val machine : t -> Alloc.Machine.t
  val config : t -> Config.t
  val stats : t -> Stats.t
  val quarantine_bytes : t -> int
  val quarantine_entries : t -> int

  val event_log : t -> Event_log.t
  (** The instance's bounded debug/telemetry event ring. *)

  val shadow_resident_bytes : t -> int
  (** Bytes of shadow-map backing currently resident (for memory
      accounting; the paper reports it below 1 % of the heap). *)

  val sweep_in_progress : t -> bool

  (** {1 Audit support}

      Read-only views for the sanitizer's cross-layer invariant audit
      ({!Sanitizer.Invariants}); not part of the drop-in API. *)

  val quarantine : t -> Quarantine.t
  val shadow : t -> Shadow.t

  val reference_full_mark : t -> Shadow.t
  (** A from-scratch full mark of all readable memory into a scratch
      shadow map: no simulated cost is charged and no instance state is
      touched. The ground truth the incremental strategy must match. *)

  val reference_incremental_mark : t -> Shadow.t
  (** The mark set the incremental strategy would produce right now —
      cached summaries replayed for clean pages, dirty pages rescanned —
      into a scratch shadow map, without advancing the scan generation or
      replacing the summary cache. [Sanitizer.Invariants] checks it
      equals {!reference_full_mark}. *)

  val iter_unmapped_pages : t -> (int -> unit) -> unit
  (** Visit the base address of every page whose backing was released
      while its allocation sits in quarantine (Section 4.2). *)

  val set_post_sweep_hook : t -> (unit -> unit) -> unit
  (** [set_post_sweep_hook t f] runs [f] after every completed sweep
      (release phase included) — the debug-mode hook the sanitizer uses
      to audit the stack at its most delicate moment. *)
end
