(** Signature of a MineSweeper instance; see {!Instance} for the
    documentation of the layer itself. *)

type error =
  | Unknown_pointer of int
      (** The address is not the base of an allocation the application
          owns: never allocated, already recycled, or interior. *)
  | Double_free of int
      (** The address is currently quarantined: the application already
          freed it. MineSweeper absorbs the free (Section 3). *)
  | Size_overflow
      (** [calloc count size] with [count * size] overflowing. *)

let pp_error ppf = function
  | Unknown_pointer addr -> Format.fprintf ppf "unknown pointer %#x" addr
  | Double_free addr -> Format.fprintf ppf "double free of %#x" addr
  | Size_overflow -> Format.fprintf ppf "allocation size overflow"

let error_to_string e = Format.asprintf "%a" pp_error e

(** Synchronization events of the sweep protocol, in the order the
    sweeper/STW logical threads perform them. The race checker
    ({!Racecheck}) reconstructs happens-before edges from this stream:
    [Sweep_locked] is the barrier that joins every mutator's quarantine
    buffer into the sweeper; [Mark_page]/[Rescan_page] are the
    background (resp. stop-the-world) reads of one page; [Stw_fence] is
    the full barrier that opens the dirty-page re-scan; and
    [Sweep_completed] publishes the release decisions back to the
    mutators. *)
type sweep_event =
  | Sweep_locked of { sweep : int; entries : int }
      (** The quarantine working set was locked in; [entries] is its
          size (the per-entry detail arrives via
          {!Quarantine.set_observer}'s [Locked_in]). *)
  | Stage_boundary of { sweep : int; stage : Pipeline.stage; enter : bool }
      (** The sweep pipeline entered ([enter = true]) or exited one of
          its stages. Boundaries are emitted in the canonical
          mark → merge → release → purge order within a sweep; the race
          checker's [rc-stage-order] rule holds every execution to it. *)
  | Mark_page of { sweep : int; base : int }
      (** The marking phase consumed the page at [base] — a fresh read
          under [Full_scan], a read or a generation-checked summary
          replay under [Incremental]. *)
  | Mark_completed of { sweep : int; scanned_bytes : int }
      (** Marking finished; emitted even when [sweeping] is off (with 0
          bytes) so every sweep has a complete event bracket. *)
  | Stw_fence of { sweep : int }
      (** Stop-the-world: all mutators are fenced before the dirty-page
          re-scan (mostly-concurrent mode only). *)
  | Rescan_page of { sweep : int; base : int }
      (** The STW re-scan consumed the soft-dirty page at [base]. *)
  | Sweep_completed of { sweep : int }
      (** Release phase done; quarantine decisions are visible to every
          mutator. *)

module type S = sig
  type t

  type backend
  (** The underlying allocator's handle. *)

  val create :
    ?config:Config.t -> ?threads:int -> ?obs:Obs.Registry.t ->
    Alloc.Machine.t -> t
  (** Builds the layer over a fresh allocator (with the extra-byte
      modification). [threads] sizes the thread-local quarantine
      buffers. [obs] joins an existing metrics registry (the instance
      registers its counters under the [ms.] prefix and raises
      {!Obs.Registry.Duplicate} if another instance already claimed
      them); by default a private registry is created. *)

  val malloc : t -> int -> int
  (** Allocate. May stall (allocation pause) when a sweep is struggling
      to keep up with the free rate (Section 5.7). *)

  (** {1 Typed result API}

      The primary entry points for the deallocation paths: outcomes a
      drop-in deployment wants to observe (double frees absorbed,
      wild frees rejected) are values, not logs. *)

  val free_result : t -> ?thread:int -> int -> (unit, error) result
  (** Intercepted free: quarantine (zero, maybe unmap) rather than
      recycle. [Error (Double_free _)] reports an absorbed double free
      of a quarantined address (counted, logged — the program keeps
      running); [Error (Unknown_pointer _)] reports a free of an
      address the allocator never handed out (nothing is counted and
      the heap is untouched). *)

  val calloc_result : t -> int -> int -> (int, error) result
  (** [calloc_result t count size]: zero-initialised array allocation;
      [Error Size_overflow] when [count * size] overflows. *)

  val realloc_result : t -> ?thread:int -> int -> int -> (int, error) result
  (** [realloc_result t addr size] allocates, copies the overlapping
      prefix and frees the old block through the quarantine.
      [realloc t 0 size] behaves as [malloc]; size 0 behaves as [free]
      and returns [Ok 0]. Quarantined or unknown [addr] is rejected
      with the corresponding error before any allocation happens. *)

  (** {1 Deprecated shims}

      Pre-redesign entry points, kept so existing call sites compile;
      new code should use the [_result] forms. *)

  val free : t -> ?thread:int -> int -> unit
  (** [free_result] with the double-free outcome absorbed silently
      (the historical behaviour) and [Unknown_pointer] raised as
      [Invalid_argument]. *)

  val calloc : t -> int -> int -> int
  (** [calloc_result] with [Size_overflow] collapsed to address 0. *)

  val realloc : t -> ?thread:int -> int -> int -> int
  (** [realloc_result] with errors collapsed to address 0. *)

  (** {1 The sweep pipeline}

      The redesigned sweep API: one typed entry point over the staged
      mark → merge → release → purge pipeline, replacing the four
      ad-hoc mark entry points of earlier versions. *)

  module Sweep : sig
    val plan : t -> Pipeline.plan
    (** The pipeline plan the instance's configuration derives
        ({!Pipeline.plan_of_config}): mode × domains × batching plus the
        stage list implied by the feature toggles. *)

    val run : t -> Pipeline.plan -> Pipeline.outcome
    (** [run t plan] executes one complete sweep cycle under [plan],
        synchronously, and returns its outcome. With a Release stage in
        the plan this is a full sweep — batched quarantine flush,
        lock-in, mark/merge, release decisions, purge — finished before
        returning even under concurrent configurations (any sweep
        already in flight is finished instead of starting a new one).
        A {!Pipeline.mark_only} plan runs just the Mark/Merge stages
        into the live shadow map: no lock-in, no release decisions, no
        sweep counted and no simulated cost charged. Stage boundaries
        are observable via {!val-set_sync_observer} and the modeled
        per-stage costs via the [sweep.stage.*] metrics; neither feeds
        the simulated clock, so outcomes are byte-identical at any
        domain count. *)

    val last : t -> Pipeline.outcome option
    (** The most recently completed pipeline outcome (from the
        background schedule or from [run]), if any. *)
  end

  val mark_all_memory : t -> int
  (** @deprecated Shim over {!Sweep.run} with a mark-only [Full_scan]
      plan; returns the swept bytes. New code should call [Sweep.run]
      directly. *)

  val mark_incremental : t -> int * int
  (** @deprecated Shim over {!Sweep.run} with a mark-only [Incremental]
      plan; returns [(rescanned_bytes, replayed_words)]. New code
      should call [Sweep.run] directly. *)

  val tick : t -> unit
  (** Complete any sweep whose scheduled completion time has passed, and
      run the allocator's decay purging when MineSweeper's post-sweep
      purging is disabled. *)

  val drain : t -> unit
  (** Force-finish the in-flight sweep, if any (end of run). *)

  val is_quarantined : t -> int -> bool
  (** Whether this address is currently held in quarantine — an access
      to it is a use-after-free that MineSweeper has prevented from
      becoming a use-after-reallocate. *)

  val note_prevented_uaf : t -> unit
  (** Record that the application just accessed quarantined memory. *)

  val backend : t -> backend

  val live_bytes : t -> int
  (** Live bytes as seen by the underlying allocator (quarantined
      allocations included: they are not yet freed). *)

  val machine : t -> Alloc.Machine.t
  val config : t -> Config.t

  val stats : t -> Stats.t
  (** A point-in-time snapshot of the instance's counters. The
      underlying values live in {!registry}; call again for fresh
      numbers — the returned record never changes. *)

  val reset_stats : t -> unit
  (** Zero the instance's [ms.] counters (see {!Stats.reset}). *)

  val registry : t -> Obs.Registry.t
  (** The metrics registry the instance publishes through (the one
      passed as [?obs], or the private one). *)

  val trace_ring : t -> Obs.Trace_ring.t
  (** The span ring holding both the event log's entries and the
      per-sweep phase profiling spans ([mark]/[scan]/[purge]/
      [quarantine]/[alloc_slow]). *)

  val quarantine_bytes : t -> int
  val quarantine_entries : t -> int

  val event_log : t -> Event_log.t
  (** The instance's bounded debug/telemetry event view (a decoder over
      {!trace_ring}). *)

  val shadow_resident_bytes : t -> int
  (** Bytes of shadow-map backing currently resident (for memory
      accounting; the paper reports it below 1 % of the heap). *)

  val sweep_in_progress : t -> bool

  (** {1 Audit support}

      Read-only views for the sanitizer's cross-layer invariant audit
      ({!Sanitizer.Invariants}); not part of the drop-in API. *)

  val quarantine : t -> Quarantine.t
  val shadow : t -> Shadow.t

  val reference_full_mark : t -> Shadow.t
  (** A from-scratch full mark of all readable memory into a scratch
      shadow map: no simulated cost is charged and no instance state is
      touched. The ground truth the incremental strategy must match. *)

  val reference_incremental_mark : t -> Shadow.t
  (** The mark set the incremental strategy would produce right now —
      cached summaries replayed for clean pages, dirty pages rescanned —
      into a scratch shadow map, without advancing the scan generation or
      replacing the summary cache. [Sanitizer.Invariants] checks it
      equals {!reference_full_mark}. *)

  val iter_unmapped_pages : t -> (int -> unit) -> unit
  (** Visit the base address of every page whose backing was released
      while its allocation sits in quarantine (Section 4.2). *)

  val set_post_sweep_hook : t -> (unit -> unit) -> unit
  (** [set_post_sweep_hook t f] runs [f] after every completed sweep
      (release phase included) — the debug-mode hook the sanitizer uses
      to audit the stack at its most delicate moment. *)

  (** {1 Race-checker hooks} *)

  val set_sync_observer : t -> (sweep_event -> unit) -> unit
  (** Subscribe to the sweep protocol's synchronization events (see
      {!sweep_event}). At most one observer; emission is synchronous and
      in protocol order. *)

  val clear_sync_observer : t -> unit

  val force_sweep : t -> bool
  (** Start a sweep immediately, regardless of the quarantine trigger —
      the schedule explorer's way of placing sweep boundaries at chosen
      interleaving points. Returns [false] (and does nothing) if a sweep
      is already in flight or quarantining is disabled. Under
      [Sequential] concurrency the sweep also completes before
      returning. *)
end
