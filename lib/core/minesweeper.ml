(** MineSweeper: drop-in use-after-free prevention by quarantine and
    linear memory sweeps.

    Reproduction of Erdős, Ainsworth & Jones, ASPLOS 2022. The library
    entry point re-exports the public modules:

    - {!Instance} — the drop-in [malloc]/[free] layer itself;
    - {!Config} — operation modes, optimisation levels, thresholds;
    - {!Pipeline} — sweep stage descriptors, plans and outcomes;
    - {!Shadow} — the per-granule mark bitmap used by sweeps;
    - {!Quarantine} — the delayed-free list with thread-local buffers;
    - {!Stats} — counters published by a running instance.

    Quickstart:
    {[
      let machine = Alloc.Machine.create () in
      let ms = Minesweeper.Instance.create machine in
      let p = Minesweeper.Instance.malloc ms 64 in
      Minesweeper.Instance.free ms p;
      (* p stays quarantined until a sweep proves no dangling pointers *)
    ]} *)

module Config = Config
module Pipeline = Pipeline
module Shadow = Shadow
module Stats = Stats
module Quarantine = Quarantine
module Event_log = Event_log
module Instance = Instance
