(** The shadow map: one mark bit per 16-byte granule of heap address
    space (Section 3.2).

    During the marking phase of a sweep, every word of program memory is
    interpreted as a pointer and the granule it targets is marked. The
    release phase then checks, for each quarantined allocation, whether
    any granule in its range carries a mark — if none does, no dangling
    pointer to it exists and it can be recycled.

    The map is sparse (backed per page), so its footprint follows the
    used portion of the address space: 32 bytes of shadow per 4 KiB page,
    i.e. less than 1 % overhead as in the paper. *)

type t

val create : ?granule:int -> unit -> t
(** [granule] (default 16, the smallest allocation granule) sets the
    bytes covered per mark bit. A coarser shadow is smaller but aliases
    adjacent allocations, causing spurious failed frees — the trade-off
    Section 3.2 notes and the [ablation-granule] bench measures. *)

val granule : t -> int

val clear : t -> unit
(** Reset all marks (start of a sweep's marking phase). *)

val mark : t -> int -> unit
(** [mark t p] marks the granule containing address [p]. [p] must lie in
    the heap region. *)

val is_marked : t -> int -> bool
(** Whether the granule containing the address carries a mark. *)

val range_marked : t -> addr:int -> len:int -> bool
(** [range_marked t ~addr ~len] — is any granule intersecting
    [addr, addr+len) marked? This is the release-phase test; [len] must
    cover the allocation's full usable size (which already includes the
    extra byte for past-the-end pointers). *)

val iter_marked : t -> (int -> unit) -> unit
(** Visit the start address of every marked granule (audit support;
    order unspecified). *)

val marked_granules : t -> int
(** Total marks, for stats/tests. *)

val shadow_bytes : t -> int
(** Memory used by the shadow structure itself. *)
