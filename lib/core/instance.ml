(* The body is generic over the allocator backend; see instance.mli. *)

module type S = Instance_intf.S

type error = Instance_intf.error =
  | Unknown_pointer of int
  | Double_free of int
  | Size_overflow

let pp_error = Instance_intf.pp_error
let error_to_string = Instance_intf.error_to_string

type sweep_event = Instance_intf.sweep_event =
  | Sweep_locked of { sweep : int; entries : int }
  | Stage_boundary of { sweep : int; stage : Pipeline.stage; enter : bool }
  | Mark_page of { sweep : int; base : int }
  | Mark_completed of { sweep : int; scanned_bytes : int }
  | Stw_fence of { sweep : int }
  | Rescan_page of { sweep : int; base : int }
  | Sweep_completed of { sweep : int }

module Make (B : Alloc.Backend.S) = struct
  type backend = B.t

let page = Vmem.page_size
let word = Vmem.word_size

module R = Obs.Registry
module Ring = Obs.Trace_ring

type sweep_state = {
  entries : Quarantine.entry list;
  completion : int;
  started : int;
  plan : Pipeline.plan;
  scanned_bytes : int;
  replayed_words : int;
  flush_batches : int;
  (* Mark/Merge stage reports in pipeline order; Release/Purge are
     appended when the sweep finishes. *)
  head_reports : Pipeline.stage_report list;
  (* Modeled critical path of the parallel mark, substituted for the
     Mark stage in the pipelined projection. *)
  mark_pipelined : int;
}

(* Incremental sweeping (Config.Incremental): what the last scan of a
   page found. [targets] holds every word of the page that lay in the
   heap address range [heap_base, heap_limit) at capture time, deduped
   and sorted; the wilderness filter is applied at replay time because
   the wilderness moves between sweeps. [gen] is the vmem scan
   generation current when the summary was captured: the summary is
   coherent iff the page's write generation is still below it. *)
type page_summary = {
  gen : int;
  targets : int array;
}

(* Telemetry of the parallel marking engine, registered only when the
   configuration asks for more than one marker domain: a domains=1 run
   exports exactly the historical metric set, which is what lets the
   check.sh gate byte-compare 1-domain and n-domain exports after
   stripping the [par.*] lines. *)
type par_telemetry = {
  par_domains : R.gauge;
  par_chunks : R.counter;
  par_chunks_stolen : R.counter;
  par_imbalance : R.gauge;
  par_mark_cycles_est : R.counter;
  par_mark_cycles_seq_est : R.counter;
}

(* Per-stage telemetry of the sweep pipeline, registered at every domain
   count. All of it is a modeled projection over the stage reports —
   nothing here feeds the simulated clock — and every series except
   [sweep.stage.pipeline_cycles_est] is domain-independent; determinism
   gates strip the whole [sweep.stage.*] prefix alongside [par.*]. *)
type stage_telemetry = {
  st_mark_cycles : R.counter;
  st_merge_cycles : R.counter;
  st_release_cycles : R.counter;
  st_purge_cycles : R.counter;
  st_seq_cycles : R.counter;
  st_pipe_cycles : R.counter;
  st_batches : R.counter;
  st_flush_batches : R.counter;
}

type t = {
  machine : Alloc.Machine.t;
  je : B.t;
  config : Config.t;
  quarantine : Quarantine.t;
  shadow : Shadow.t;
  registry : R.t;
  ring : Ring.t;
  stats : Stats.Live.t;
  scan_hist : R.histogram; (* per-sweep scanned bytes distribution *)
  alloc_hist : R.histogram; (* malloc request sizes *)
  pause_hist : R.histogram;
      (* mutator-visible pause distribution: STW rescans and allocation
         pauses — the fleet layer aggregates this across tenants *)
  unmapped_pages : (int, unit) Hashtbl.t; (* page index -> () *)
  par : par_telemetry option;
  stage_obs : stage_telemetry;
  log : Event_log.t;
  mutable summaries : (int, page_summary) Hashtbl.t; (* page index *)
  mutable sweep : sweep_state option;
  mutable last_decay_tick : int;
  mutable post_sweep_hook : (unit -> unit) option;
  mutable sync_observer : (sweep_event -> unit) option;
  mutable last_outcome : Pipeline.outcome option;
  (* Purge-stage accounting: the vmem decommit observer counts decommits
     only while [purging_now] is set around [B.purge_all]. *)
  mutable purging_now : bool;
  mutable purge_decommits : int;
  mutable purge_decommit_bytes : int;
}

let decay_tick_interval = 1_000_000

(* Parallel sweeping divides the compute cost, but the wall-clock floor
   of a sweep is DRAM bandwidth: ~16 bytes per cycle however many helper
   threads run. *)
let bandwidth_cycles_per_byte = 0.0625

(* The shared span ring: sized for the event traffic plus a handful of
   profiling spans per sweep, so a sweep's phase spans are retained long
   enough for coverage checks even under free-heavy workloads. *)
let ring_capacity = 8192

let cost t = t.machine.Alloc.Machine.cost
let mem t = t.machine.Alloc.Machine.mem
let now t = Alloc.Machine.now t.machine

let count = R.Counter.incr

let emit_sync t ev =
  match t.sync_observer with None -> () | Some f -> f ev

let sweep_number t = R.Counter.value t.stats.Stats.Live.sweeps

let create ?(config = Config.default) ?(threads = 1) ?obs machine =
  let je = B.create ~extra_byte:true machine in
  let registry = match obs with Some r -> r | None -> R.create () in
  let ring = Ring.create ~capacity:ring_capacity () in
  let par =
    if Config.domains config > 1 then begin
      let p =
        {
          par_domains = R.gauge registry "par.domains";
          par_chunks = R.counter registry "par.chunks";
          par_chunks_stolen = R.counter registry "par.chunks_stolen";
          par_imbalance = R.gauge registry "par.imbalance";
          par_mark_cycles_est = R.counter registry "par.mark_cycles_est";
          par_mark_cycles_seq_est = R.counter registry "par.mark_cycles_seq_est";
        }
      in
      R.Gauge.set p.par_domains (Config.domains config);
      Some p
    end
    else None
  in
  let stage_obs =
    {
      st_mark_cycles = R.counter registry "sweep.stage.mark_cycles_est";
      st_merge_cycles = R.counter registry "sweep.stage.merge_cycles_est";
      st_release_cycles = R.counter registry "sweep.stage.release_cycles_est";
      st_purge_cycles = R.counter registry "sweep.stage.purge_cycles_est";
      st_seq_cycles = R.counter registry "sweep.stage.seq_cycles_est";
      st_pipe_cycles = R.counter registry "sweep.stage.pipeline_cycles_est";
      st_batches = R.counter registry "sweep.stage.batches";
      st_flush_batches = R.counter registry "sweep.stage.flush_batches";
    }
  in
  let t =
    {
      machine;
      je;
      config;
      quarantine = Quarantine.create machine ~threads;
      shadow = Shadow.create ~granule:config.Config.shadow_granule ();
      registry;
      ring;
      stats = Stats.Live.create registry;
      scan_hist = R.histogram registry "ms.sweep_scan_bytes";
      alloc_hist = R.histogram registry "ms.alloc_request_bytes";
      pause_hist = R.histogram registry "ms.sweep_pause_cycles";
      unmapped_pages = Hashtbl.create 1024;
      par;
      stage_obs;
      log = Event_log.create ~ring ();
      summaries = Hashtbl.create 1024;
      sweep = None;
      last_decay_tick = 0;
      post_sweep_hook = None;
      sync_observer = None;
      last_outcome = None;
      purging_now = false;
      purge_decommits = 0;
      purge_decommit_bytes = 0;
    }
  in
  (* The surrounding layers publish their accounting into the same
     registry as read-through metrics — one export covers the stack. *)
  Vmem.attach_obs (mem t) registry;
  (* Also publish the resident-set gauge under the instance namespace so
     consumers that only see `ms.*` metrics (fleet aggregation, pressure
     policies) can read RSS without knowing about the vmem layer. *)
  R.derive_gauge registry "ms.vmem.committed_bytes" (fun () ->
      Vmem.committed_bytes (mem t));
  (* Purge-stage accounting: every decommit the allocator performs while
     the Purge stage runs is one madvise-equivalent syscall. *)
  Vmem.set_decommit_observer (mem t) (fun ~addr:_ ~len ->
      if t.purging_now then begin
        t.purge_decommits <- t.purge_decommits + 1;
        t.purge_decommit_bytes <- t.purge_decommit_bytes + len
      end);
  R.derive_gauge registry "alloc.backend_live_bytes" (fun () ->
      B.live_bytes je);
  R.derive_gauge registry "ms.quarantine_bytes" (fun () ->
      Quarantine.total_bytes t.quarantine);
  R.derive_gauge registry "ms.shadow_resident_bytes" (fun () ->
      Shadow.shadow_bytes t.shadow);
  (* Integrate with the allocator's extent life-cycle (Section 4.5):
     purged extents are decommitted *and* protected so that sweeps skip
     them instead of demand-allocating them back in, and are restored on
     reuse. *)
  B.set_extent_hooks je
    {
      Alloc.Extent.on_decommit =
        (fun ~addr ~pages ->
          Vmem.protect (mem t) ~addr ~len:(pages * page) Vmem.No_access);
      on_commit =
        (fun ~addr ~pages ->
          Vmem.protect (mem t) ~addr ~len:(pages * page) Vmem.Read_write);
    };
  t

(* Page-aligned sub-range of [addr, addr+len) fully covered by it. Only
   large allocations (beyond the slab classes) are worth the two
   syscalls; sub-page and slab-interior ranges stay mapped. *)
let unmap_min_bytes = 16384

let covered_pages ~addr ~len =
  if len < unmap_min_bytes then None
  else
    let lo = (addr + page - 1) / page * page in
    let hi = (addr + len) / page * page in
    if hi - lo >= page then Some (lo, hi - lo) else None

(* ------------------------------------------------------------------ *)
(* Marking phase: the Mark and Merge stages of the sweep pipeline       *)

(* Bracket one pipeline stage: a [Stage_boundary] pair for the race
   checker and a [Ring.Stage] span for the profile. Every attribute is
   domain-independent (item count, bytes, single-threaded cycle
   estimate), so stage spans compare byte-identical across domain
   counts. [f] returns [(items, bytes, cycles_est, result)]. *)
let in_stage t stage f =
  let sweep = sweep_number t in
  emit_sync t (Stage_boundary { sweep; stage; enter = true });
  let pending =
    Ring.enter ~now:(now t) Ring.Stage (Pipeline.stage_name stage)
  in
  let items, bytes, cycles, result = f () in
  Ring.exit t.ring pending ~now:(now t) ~bytes
    ~attrs:[ ("sweep", sweep); ("items", items); ("cycles_est", cycles) ]
    ();
  emit_sync t (Stage_boundary { sweep; stage; enter = false });
  ({ Pipeline.stage; cycles; items; bytes }, result)

(* ---- Worker scans (lib/parsweep) ----------------------------------- *)

(* Record a parallel run into the [par.*] telemetry. Everything written
   here is either deterministic (chunk counts, static-seeding imbalance,
   the modeled critical path) or explicitly observational and stripped
   from determinism gates ([par.chunks_stolen]). The per-domain mark
   spans carry the deterministic static byte assignment. *)
let record_par t (stats : Parsweep.stats) =
  match t.par with
  | None -> ()
  | Some p ->
    let c = cost t in
    R.Gauge.set p.par_domains stats.Parsweep.domains;
    count p.par_chunks stats.Parsweep.chunks;
    count p.par_chunks_stolen stats.Parsweep.stolen;
    R.Gauge.set p.par_imbalance (Parsweep.imbalance stats);
    count p.par_mark_cycles_est
      (Parsweep.critical_path_cycles
         ~single_per_byte:c.Sim.Cost.mark_single_per_byte
         ~bandwidth_per_byte:bandwidth_cycles_per_byte stats);
    count p.par_mark_cycles_seq_est
      (Sim.Cost.bytes_cost c.Sim.Cost.mark_single_per_byte
         stats.Parsweep.total_bytes);
    let sweep = sweep_number t in
    Array.iteri
      (fun d bytes ->
        let pending =
          Ring.enter ~now:(now t) Ring.Mark (Printf.sprintf "mark-domain-%d" d)
        in
        Ring.exit t.ring pending ~now:(now t) ~bytes
          ~attrs:[ ("sweep", sweep); ("domain", d) ]
          ())
      stats.Parsweep.seeded_bytes

(* Worker-side page scan: the exact heap-range words of one page, as a
   private array. Two passes (count, then fill) so the buffer is sized
   exactly — the common page has no hits and allocates the shared empty
   array only. *)
let empty_hits : int array = [||]

let page_hits bytes ~wilderness =
  let words = page / word in
  let n = ref 0 in
  for k = 0 to words - 1 do
    let w = Int64.to_int (Bytes.get_int64_le bytes (k * word)) in
    if w >= Layout.heap_base && w < wilderness then incr n
  done;
  if !n = 0 then empty_hits
  else begin
    let hits = Array.make !n 0 in
    let i = ref 0 in
    for k = 0 to words - 1 do
      let w = Int64.to_int (Bytes.get_int64_le bytes (k * word)) in
      if w >= Layout.heap_base && w < wilderness then begin
        hits.(!i) <- w;
        incr i
      end
    done;
    hits
  end

(* Full scan as a Mark/Merge stage pair, unified over every domain
   count. The Mark stage has the workers compute per-page hit arrays
   over a canonical (base-sorted, zero-copy) snapshot — at domains = 1
   the chunk map runs inline on the calling domain, same structure, no
   pool. The Merge stage then walks the chunks in chunk-id order: emits
   the Mark_page events, writes the shadow map and counts swept bytes.
   The merge is the only writer of shared state, so the outcome is
   byte-identical for any domain count and steal schedule. Returns
   [(swept_bytes, stage_reports, mark_pipelined)]. *)
let run_full_scan t =
  Shadow.clear t.shadow;
  let c = cost t in
  let wilderness = B.wilderness t.je in
  let pages =
    Array.map
      (fun (base, bytes, write_gen) -> { Parsweep.base; bytes; write_gen })
      (Vmem.snapshot_readable_pages (mem t))
  in
  let chunks = Parsweep.shard pages in
  let scan (ch : Parsweep.chunk) =
    Array.map
      (fun (p : Parsweep.page) -> page_hits p.Parsweep.bytes ~wilderness)
      ch.Parsweep.pages
  in
  let mark_report, (per_chunk, stats) =
    in_stage t Pipeline.Mark (fun () ->
        let per_chunk, stats =
          Parsweep.map_chunks ~domains:(Config.domains t.config) ~scan chunks
        in
        let bytes = stats.Parsweep.total_bytes in
        ( Array.length pages,
          bytes,
          Sim.Cost.bytes_cost c.Sim.Cost.mark_single_per_byte bytes,
          (per_chunk, stats) ))
  in
  let sweep = sweep_number t in
  let merge_report, swept =
    in_stage t Pipeline.Merge (fun () ->
        let swept = ref 0 in
        Array.iteri
          (fun ci hits_per_page ->
            let chunk = chunks.(ci) in
            Array.iteri
              (fun pi hits ->
                emit_sync t
                  (Mark_page
                     { sweep; base = chunk.Parsweep.pages.(pi).Parsweep.base });
                Array.iter (Shadow.mark t.shadow) hits;
                swept := !swept + page)
              hits_per_page)
          per_chunk;
        let pages_n = !swept / page in
        (pages_n, !swept, pages_n * c.Sim.Cost.merge_per_page, !swept))
  in
  record_par t stats;
  count t.stats.Stats.Live.swept_bytes swept;
  let mark_pipelined =
    Parsweep.critical_path_cycles
      ~single_per_byte:c.Sim.Cost.mark_single_per_byte
      ~bandwidth_per_byte:bandwidth_cycles_per_byte stats
  in
  (swept, [ mark_report; merge_report ], mark_pipelined)

(* All words of a page that lie in the heap *address range*, deduped and
   sorted. The wilderness is deliberately not consulted here: it grows
   between sweeps, so a summary filtered by today's wilderness would miss
   pointers into tomorrow's heap. Filtering happens at mark time. *)
let summarize_page bytes =
  let acc = ref [] in
  let words = page / word in
  for k = words - 1 downto 0 do
    let w = Int64.to_int (Bytes.get_int64_le bytes (k * word)) in
    if w >= Layout.heap_base && w < Layout.heap_limit then acc := w :: !acc
  done;
  match !acc with
  | [] -> [||]
  | l -> Array.of_list (List.sort_uniq compare l)

(* Incremental marking as a Mark/Merge stage pair, unified over every
   domain count: rescan only pages written (or zeroed, decommitted,
   protected, remapped) since their summary was captured; replay the
   cached summary for the rest. The summary table is not domain-safe,
   so the coordinator classifies every page (replay vs rescan) against
   it up front; the Mark stage ships only the rescan pages to the
   workers, which run [summarize_page] — the expensive part — on
   private buffers. The Merge stage then walks the full canonical
   snapshot: replayed pages take their cached targets, rescanned pages
   the worker-produced summary, and the table is rebuilt from scratch so
   entries for unmapped pages fall away. Every counter, gauge and
   Mark_page event is identical at any domain count. Returns
   [(rescanned_bytes, replayed_targets, stage_reports, mark_pipelined)]. *)
let run_incremental t =
  Shadow.clear t.shadow;
  let c = cost t in
  let m = mem t in
  let gen = Vmem.advance_generation m in
  let wilderness = B.wilderness t.je in
  let snapshot = Vmem.snapshot_readable_pages m in
  let replayable base write_gen =
    match Hashtbl.find_opt t.summaries (base / page) with
    | Some s -> write_gen < s.gen
    | None -> false
  in
  let rescan_pages =
    Array.of_list
      (List.filter_map
         (fun (base, bytes, write_gen) ->
           if replayable base write_gen then None
           else Some { Parsweep.base; bytes; write_gen })
         (Array.to_list snapshot))
  in
  let chunks = Parsweep.shard rescan_pages in
  let scan (ch : Parsweep.chunk) =
    Array.map
      (fun (p : Parsweep.page) -> summarize_page p.Parsweep.bytes)
      ch.Parsweep.pages
  in
  let mark_report, (per_chunk, stats) =
    in_stage t Pipeline.Mark (fun () ->
        let per_chunk, stats =
          Parsweep.map_chunks ~domains:(Config.domains t.config) ~scan chunks
        in
        let bytes = stats.Parsweep.total_bytes in
        ( Array.length rescan_pages,
          bytes,
          Sim.Cost.bytes_cost c.Sim.Cost.mark_single_per_byte bytes,
          (per_chunk, stats) ))
  in
  let fresh_targets = Hashtbl.create (max 64 (Array.length rescan_pages)) in
  Array.iteri
    (fun ci targets_per_page ->
      Array.iteri
        (fun pi targets ->
          Hashtbl.replace fresh_targets
            (chunks.(ci).Parsweep.pages.(pi).Parsweep.base / page)
            targets)
        targets_per_page)
    per_chunk;
  let sweep = sweep_number t in
  let merge_report, (rescanned, replayed) =
    in_stage t Pipeline.Merge (fun () ->
        let fresh = Hashtbl.create (max 64 (Hashtbl.length t.summaries)) in
        let rescanned = ref 0 and replayed = ref 0 in
        let skipped_pages = ref 0 and rescanned_pages = ref 0 in
        Array.iter
          (fun (base, _bytes, write_gen) ->
            emit_sync t (Mark_page { sweep; base });
            let index = base / page in
            match Hashtbl.find_opt t.summaries index with
            | Some s when write_gen < s.gen ->
              (* Untouched since capture: the cached targets are exactly
                 what a rescan would find. *)
              Array.iter
                (fun v -> if v < wilderness then Shadow.mark t.shadow v)
                s.targets;
              replayed := !replayed + Array.length s.targets;
              incr skipped_pages;
              Hashtbl.replace fresh index { gen; targets = s.targets }
            | Some _ | None ->
              let targets =
                match Hashtbl.find_opt fresh_targets index with
                | Some targets -> targets
                | None -> assert false
              in
              Array.iter
                (fun v -> if v < wilderness then Shadow.mark t.shadow v)
                targets;
              rescanned := !rescanned + page;
              incr rescanned_pages;
              Hashtbl.replace fresh index { gen; targets })
          snapshot;
        t.summaries <- fresh;
        count t.stats.Stats.Live.swept_bytes !rescanned;
        count t.stats.Stats.Live.sweep_pages_skipped !skipped_pages;
        count t.stats.Stats.Live.sweep_pages_rescanned !rescanned_pages;
        R.Gauge.set t.stats.Stats.Live.summary_cache_bytes
          (Hashtbl.fold
             (fun _ s acc -> acc + (3 * word) + (Array.length s.targets * word))
             fresh 0);
        let pages_n = Array.length snapshot in
        ( pages_n,
          !rescanned,
          pages_n * c.Sim.Cost.merge_per_page,
          (!rescanned, !replayed) ))
  in
  record_par t stats;
  let mark_pipelined =
    Parsweep.critical_path_cycles
      ~single_per_byte:c.Sim.Cost.mark_single_per_byte
      ~bandwidth_per_byte:bandwidth_cycles_per_byte stats
  in
  (rescanned, replayed, [ mark_report; merge_report ], mark_pipelined)

(* Audit-only reference marks: build the mark set each strategy would
   produce right now into a scratch shadow, charging no simulated cost
   and mutating no instance state (no generation advance, no summary
   swap). [Sanitizer.Invariants] compares the two for equality. *)
let reference_full_mark t =
  let shadow = Shadow.create ~granule:t.config.Config.shadow_granule () in
  let wilderness = B.wilderness t.je in
  Vmem.iter_readable_pages (mem t) (fun _base bytes ->
      let words = page / word in
      for k = 0 to words - 1 do
        let w = Int64.to_int (Bytes.get_int64_le bytes (k * word)) in
        if w >= Layout.heap_base && w < wilderness then Shadow.mark shadow w
      done);
  shadow

let reference_incremental_mark t =
  let shadow = Shadow.create ~granule:t.config.Config.shadow_granule () in
  let wilderness = B.wilderness t.je in
  let mark v = if v < wilderness then Shadow.mark shadow v in
  Vmem.iter_readable_pages_gen (mem t) (fun base bytes ~write_gen ->
      match Hashtbl.find_opt t.summaries (base / page) with
      | Some s when write_gen < s.gen -> Array.iter mark s.targets
      | Some _ | None -> Array.iter mark (summarize_page bytes));
  shadow

let mark_dirty_pages t =
  let swept = ref 0 in
  let sweep = sweep_number t in
  Vmem.iter_soft_dirty_pages (mem t) (fun base ->
      emit_sync t (Rescan_page { sweep; base });
      Vmem.iter_committed_words (mem t) ~addr:base ~len:page (fun _ w ->
          if w >= Layout.heap_base && w < B.wilderness t.je then
            Shadow.mark t.shadow w);
      swept := !swept + page);
  !swept

(* ------------------------------------------------------------------ *)
(* Release phase                                                       *)

let restore_unmapped t (e : Quarantine.entry) =
  if e.Quarantine.unmapped_len > 0 then begin
    match covered_pages ~addr:e.Quarantine.addr ~len:e.Quarantine.usable with
    | None -> assert false
    | Some (lo, len) ->
      Vmem.protect (mem t) ~addr:lo ~len Vmem.Read_write;
      Alloc.Machine.charge t.machine (cost t).Sim.Cost.syscall;
      for i = 0 to (len / page) - 1 do
        Hashtbl.remove t.unmapped_pages ((lo / page) + i)
      done;
      e.Quarantine.unmapped_len <- 0
  end

let release_entry t (e : Quarantine.entry) =
  restore_unmapped t e;
  Quarantine.release t.quarantine e;
  B.free t.je e.Quarantine.addr;
  count t.stats.Stats.Live.releases 1;
  count t.stats.Stats.Live.released_bytes e.Quarantine.usable

let release_all t entries =
  let c = cost t in
  List.iter
    (fun (e : Quarantine.entry) ->
      Alloc.Machine.charge t.machine c.Sim.Cost.release_per_entry;
      let blocked =
        t.config.Config.sweeping
        &&
        (Alloc.Machine.charge_bytes t.machine
           (c.Sim.Cost.shadow_test_per_granule /. float_of_int Vmem.granule)
           e.Quarantine.usable;
         Shadow.range_marked t.shadow ~addr:e.Quarantine.addr
           ~len:e.Quarantine.usable)
      in
      if blocked then begin
        count t.stats.Stats.Live.failed_frees 1;
        if t.config.Config.keep_failed then Quarantine.requeue_failed t.quarantine e
        else release_entry t e
      end
      else release_entry t e)
    entries

(* ------------------------------------------------------------------ *)
(* Sweep orchestration                                                 *)

let sweep_sink t =
  match t.config.Config.concurrency with
  | Config.Sequential -> Alloc.Machine.App
  | Config.Concurrent _ -> Alloc.Machine.Background

let log_event t event = Event_log.record t.log ~now:(now t) event

(* Fold a finished sweep's outcome into the [sweep.stage.*] telemetry
   and publish it as [last_outcome]. *)
let publish_outcome t (o : Pipeline.outcome) =
  let so = t.stage_obs in
  List.iter
    (fun (r : Pipeline.stage_report) ->
      let ctr =
        match r.Pipeline.stage with
        | Pipeline.Mark -> so.st_mark_cycles
        | Pipeline.Merge -> so.st_merge_cycles
        | Pipeline.Release -> so.st_release_cycles
        | Pipeline.Purge -> so.st_purge_cycles
      in
      count ctr r.Pipeline.cycles)
    o.Pipeline.reports;
  count so.st_seq_cycles o.Pipeline.sequential_cycles;
  count so.st_pipe_cycles o.Pipeline.pipelined_cycles;
  count so.st_batches
    (Pipeline.batches o.Pipeline.plan ~entries:o.Pipeline.entries);
  count so.st_flush_batches o.Pipeline.flush_batches;
  t.last_outcome <- Some o

let finish_sweep t state =
  let plan = state.plan in
  (* Mostly concurrent mode: brief stop-the-world re-scan of the pages
     written during the sweep, so moved dangling pointers are seen. *)
  if t.config.Config.sweeping && plan.Pipeline.stop_the_world then begin
    let c = cost t in
    emit_sync t (Stw_fence { sweep = sweep_number t });
    let pending = Ring.enter ~now:(now t) Ring.Scan "stw-rescan" in
    let dirty_bytes =
      Alloc.Machine.with_sink t.machine Alloc.Machine.Background (fun () ->
          mark_dirty_pages t)
    in
    (* The re-scan is real marking work: account it with the rest of the
       swept bytes, and separately so pause work stays visible. *)
    count t.stats.Stats.Live.swept_bytes dirty_bytes;
    count t.stats.Stats.Live.stw_rescanned_bytes dirty_bytes;
    let scan_cycles = Sim.Cost.bytes_cost c.Sim.Cost.sweep_per_byte dirty_bytes in
    let pause =
      c.Sim.Cost.stw_signal + (scan_cycles / (plan.Pipeline.helpers + 1))
    in
    Sim.Clock.stall t.machine.Alloc.Machine.clock pause;
    Sim.Clock.background t.machine.Alloc.Machine.clock scan_cycles;
    count t.stats.Stats.Live.stw_pauses 1;
    count t.stats.Stats.Live.stw_cycles pause;
    R.Histogram.observe t.pause_hist pause;
    Ring.exit t.ring pending ~now:(now t) ~bytes:dirty_bytes
      ~attrs:[ ("sweep", sweep_number t); ("pause_cycles", pause) ]
      ();
    log_event t (Event_log.Stop_the_world { cycles = pause })
  end;
  let c = cost t in
  let released_before = R.Counter.value t.stats.Stats.Live.releases in
  let failed_before = R.Counter.value t.stats.Stats.Live.failed_frees in
  let released_bytes_before = R.Counter.value t.stats.Stats.Live.released_bytes in
  let pending = Ring.enter ~now:(now t) Ring.Quarantine "release" in
  let release_report, () =
    in_stage t Pipeline.Release (fun () ->
        Alloc.Machine.with_sink t.machine (sweep_sink t) (fun () ->
            release_all t state.entries);
        let entries_n = List.length state.entries in
        let bytes =
          R.Counter.value t.stats.Stats.Live.released_bytes
          - released_bytes_before
        in
        (entries_n, bytes, entries_n * c.Sim.Cost.release_per_entry, ()))
  in
  let purge_reports =
    if List.mem Pipeline.Purge plan.Pipeline.stages then begin
      let report, () =
        in_stage t Pipeline.Purge (fun () ->
            t.purge_decommits <- 0;
            t.purge_decommit_bytes <- 0;
            t.purging_now <- true;
            Alloc.Machine.with_sink t.machine (sweep_sink t) (fun () ->
                let p = Ring.enter ~now:(now t) Ring.Purge "purge" in
                B.purge_all t.je;
                Ring.exit t.ring p ~now:(now t)
                  ~attrs:[ ("sweep", sweep_number t) ]
                  ());
            t.purging_now <- false;
            ( t.purge_decommits,
              t.purge_decommit_bytes,
              t.purge_decommits * c.Sim.Cost.syscall,
              () ))
      in
      [ report ]
    end
    else []
  in
  let released = R.Counter.value t.stats.Stats.Live.releases - released_before in
  let failed = R.Counter.value t.stats.Stats.Live.failed_frees - failed_before in
  Ring.exit t.ring pending ~now:(now t)
    ~bytes:(R.Counter.value t.stats.Stats.Live.released_bytes
            - released_bytes_before)
    ~attrs:[ ("sweep", sweep_number t); ("released", released);
             ("failed", failed) ]
    ();
  log_event t
    (Event_log.Sweep_finished { sweep = sweep_number t; released; failed });
  let entries_n = List.length state.entries in
  let reports = state.head_reports @ (release_report :: purge_reports) in
  let sequential_cycles, pipelined_cycles =
    Pipeline.modeled_cycles plan
      ~batches:(Pipeline.batches plan ~entries:entries_n)
      ~mark_pipelined:state.mark_pipelined reports
  in
  publish_outcome t
    {
      Pipeline.sweep = sweep_number t;
      plan;
      scanned_bytes = state.scanned_bytes;
      replayed_words = state.replayed_words;
      entries = entries_n;
      released;
      requeued = (if t.config.Config.keep_failed then failed else 0);
      flush_batches = state.flush_batches;
      reports;
      sequential_cycles;
      pipelined_cycles;
    };
  t.sweep <- None;
  emit_sync t (Sweep_completed { sweep = sweep_number t });
  match t.post_sweep_hook with None -> () | Some hook -> hook ()

let start_sweep_plan t (plan : Pipeline.plan) =
  count t.stats.Stats.Live.sweeps 1;
  log_event t
    (Event_log.Sweep_started
       {
         sweep = sweep_number t;
         quarantined_bytes = Quarantine.total_bytes t.quarantine;
       });
  (* Batched quarantine flush: drain every thread buffer into the global
     list taking the lock once per [flush_batch] entries, so the lock-in
     below sees the complete set at amortised per-entry cost. *)
  let flush_batches =
    Quarantine.flush_batch t.quarantine ~batch:plan.Pipeline.flush_batch
  in
  let entries = Quarantine.lock_in t.quarantine in
  emit_sync t
    (Sweep_locked { sweep = sweep_number t; entries = List.length entries });
  if plan.Pipeline.stop_the_world then Vmem.clear_soft_dirty (mem t);
  let c = cost t in
  let sink = sweep_sink t in
  let busy = ref 0 in
  (* Bytes the marking phase actually moved through memory; also the
     basis for the DRAM-bandwidth wall-clock floor below. Incremental
     mode reads rescanned pages plus the cached summaries it replays,
     not the whole readable footprint. *)
  let scanned_bytes = ref 0 in
  let replayed_words = ref 0 in
  let head_reports = ref [] in
  let mark_pipelined = ref 0 in
  if List.mem Pipeline.Mark plan.Pipeline.stages then begin
    (* The mark span's [bytes] carries exactly what this phase charged to
       [swept_bytes]: summing mark + scan spans reproduces the counter. *)
    (match plan.Pipeline.mode with
    | Config.Full_scan ->
      let pending = Ring.enter ~now:(now t) Ring.Mark "mark-full" in
      let swept, reports, mp =
        Alloc.Machine.with_sink t.machine sink (fun () -> run_full_scan t)
      in
      Ring.exit t.ring pending ~now:(now t) ~bytes:swept
        ~attrs:[ ("sweep", sweep_number t) ]
        ();
      scanned_bytes := swept;
      head_reports := reports;
      mark_pipelined := mp
    | Config.Incremental ->
      let pending = Ring.enter ~now:(now t) Ring.Mark "mark-incremental" in
      let rescanned, replayed, reports, mp =
        Alloc.Machine.with_sink t.machine sink (fun () -> run_incremental t)
      in
      Ring.exit t.ring pending ~now:(now t) ~bytes:rescanned
        ~attrs:[ ("sweep", sweep_number t); ("replayed_words", replayed) ]
        ();
      scanned_bytes := rescanned + (replayed * word);
      replayed_words := replayed;
      head_reports := reports;
      mark_pipelined := mp);
    R.Histogram.observe t.scan_hist !scanned_bytes;
    busy := Sim.Cost.bytes_cost c.Sim.Cost.sweep_per_byte !scanned_bytes
  end;
  emit_sync t
    (Mark_completed
       { sweep = sweep_number t; scanned_bytes = !scanned_bytes });
  (* The release phase charges itself per entry in [release_all]; the
     wall-clock duration below accounts for it via the same estimate. *)
  let release_estimate = List.length entries * c.Sim.Cost.release_per_entry in
  let state completion =
    {
      entries;
      completion;
      started = now t;
      plan;
      scanned_bytes = !scanned_bytes;
      replayed_words = !replayed_words;
      flush_batches;
      head_reports = !head_reports;
      mark_pipelined = !mark_pipelined;
    }
  in
  match t.config.Config.concurrency with
  | Config.Sequential ->
    Alloc.Machine.charge t.machine !busy;
    finish_sweep t (state (now t))
  | Config.Concurrent { helpers; _ } ->
    Sim.Clock.background t.machine.Alloc.Machine.clock !busy;
    let parallel = (!busy + release_estimate) / (helpers + 1) in
    let floor_cycles =
      if List.mem Pipeline.Mark plan.Pipeline.stages then
        Sim.Cost.bytes_cost bandwidth_cycles_per_byte !scanned_bytes
      else 0
    in
    let duration = max parallel floor_cycles in
    t.sweep <- Some (state (now t + duration))

let start_sweep t = start_sweep_plan t (Pipeline.plan_of_config t.config)

(* Execute one complete sweep cycle under [plan], synchronously, and
   return its outcome — the [Sweep.run] entry point. A plan without a
   Release stage (see {!Pipeline.mark_only}) runs just the Mark/Merge
   stages: no quarantine flush or lock-in, no release decisions, no
   sweep counted and no simulated cost charged — the semantics of the
   deprecated [mark_all_memory]/[mark_incremental] entry points. *)
let run_pipeline t (plan : Pipeline.plan) =
  if not (List.mem Pipeline.Release plan.Pipeline.stages) then begin
    let scanned_bytes, replayed_words, reports, mark_pipelined =
      match plan.Pipeline.mode with
      | Config.Full_scan ->
        let swept, reports, mp = run_full_scan t in
        (swept, 0, reports, mp)
      | Config.Incremental ->
        let rescanned, replayed, reports, mp = run_incremental t in
        (rescanned + (replayed * word), replayed, reports, mp)
    in
    let sequential_cycles, pipelined_cycles =
      Pipeline.modeled_cycles plan ~batches:1 ~mark_pipelined reports
    in
    let outcome =
      {
        Pipeline.sweep = sweep_number t;
        plan;
        scanned_bytes;
        replayed_words;
        entries = 0;
        released = 0;
        requeued = 0;
        flush_batches = 0;
        reports;
        sequential_cycles;
        pipelined_cycles;
      }
    in
    publish_outcome t outcome;
    outcome
  end
  else begin
    if t.sweep = None then start_sweep_plan t plan;
    (match t.sweep with
    | Some state -> finish_sweep t state
    | None -> ());
    match t.last_outcome with Some o -> o | None -> assert false
  end

let trigger_due t =
  let q = t.quarantine in
  let fresh = Quarantine.fresh_mapped_bytes q in
  let heap =
    B.live_bytes t.je
    - Quarantine.failed_bytes q
    - Quarantine.unmapped_bytes q
  in
  let by_threshold =
    fresh >= t.config.Config.threshold_min_bytes
    && float_of_int fresh >= t.config.Config.threshold *. float_of_int (max heap 1)
  in
  let by_unmapped =
    float_of_int (Quarantine.unmapped_bytes q)
    >= t.config.Config.unmap_factor
       *. float_of_int (Vmem.committed_bytes (mem t))
  in
  by_threshold || by_unmapped

let maybe_sweep t =
  if t.sweep = None && t.config.Config.quarantining && trigger_due t then
    start_sweep t

let tick t =
  (match t.sweep with
  | Some state when now t >= state.completion ->
    finish_sweep t state;
    maybe_sweep t
  | Some _ | None -> ());
  if not t.config.Config.purging then begin
    let n = now t in
    if n - t.last_decay_tick >= decay_tick_interval then begin
      t.last_decay_tick <- n;
      Alloc.Machine.with_sink t.machine Alloc.Machine.Background (fun () ->
          B.purge_tick t.je)
    end
  end

let drain t =
  Quarantine.flush_all t.quarantine;
  match t.sweep with
  | Some state ->
    finish_sweep t state
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Allocation entry points                                             *)

let malloc t size =
  tick t;
  (match t.sweep with
  | Some state ->
    (* Allocation pausing: if the quarantine has outgrown the heap while
       a sweep is still running, stall until it completes rather than
       letting memory balloon (Section 5.7). *)
    let heap = max 1 (B.live_bytes t.je) in
    if
      float_of_int (Quarantine.fresh_mapped_bytes t.quarantine)
      >= t.config.Config.pause_factor *. float_of_int heap
    then begin
      let pending = Ring.enter ~now:(now t) Ring.Alloc_slow "alloc-stall" in
      let wait = max 0 (state.completion - now t) in
      Sim.Clock.stall t.machine.Alloc.Machine.clock wait;
      Ring.exit t.ring pending ~now:(now t)
        ~attrs:[ ("cycles", wait) ]
        ();
      log_event t (Event_log.Allocation_paused { cycles = wait });
      count t.stats.Stats.Live.alloc_pauses 1;
      count t.stats.Stats.Live.alloc_pause_cycles wait;
      R.Histogram.observe t.pause_hist wait;
      tick t
    end
  | None -> ());
  R.Histogram.observe t.alloc_hist size;
  B.malloc t.je size

let zero_entry t addr usable skip =
  (* Zero the freed data (Section 4.1), skipping any middle range that is
     about to be unmapped anyway (its reincarnation is zero-filled by the
     OS). *)
  let c = cost t in
  let zero ~addr ~len =
    if len > 0 then begin
      Vmem.zero_range (mem t) ~addr ~len;
      Alloc.Machine.charge_bytes t.machine c.Sim.Cost.zero_per_byte len
    end
  in
  match skip with
  | None -> zero ~addr ~len:usable
  | Some (lo, len) ->
    zero ~addr ~len:(lo - addr);
    zero ~addr:(lo + len) ~len:(addr + usable - lo - len)

let unmap_entry t (e : Quarantine.entry) (lo, len) =
  Vmem.decommit (mem t) ~addr:lo ~len;
  Vmem.protect (mem t) ~addr:lo ~len Vmem.No_access;
  Alloc.Machine.charge t.machine (2 * (cost t).Sim.Cost.syscall);
  for i = 0 to (len / page) - 1 do
    Hashtbl.replace t.unmapped_pages ((lo / page) + i) ()
  done;
  e.Quarantine.unmapped_len <- len;
  log_event t (Event_log.Unmapped { addr = lo; len });
  count t.stats.Stats.Live.unmapped_allocations 1;
  count t.stats.Stats.Live.unmapped_bytes len

let forward_free t addr =
  (* Quarantining disabled (partial versions 1-2): optionally unmap-and-
     remap large allocations and zero small ones, then recycle at once. *)
  let usable = B.usable_size t.je addr in
  if t.config.Config.unmapping || t.config.Config.zeroing then begin
    match
      if t.config.Config.unmapping then covered_pages ~addr ~len:usable
      else None
    with
    | Some (lo, len) ->
      Vmem.decommit (mem t) ~addr:lo ~len;
      Vmem.commit (mem t) ~addr:lo ~len;
      Alloc.Machine.charge t.machine (2 * (cost t).Sim.Cost.syscall);
      if t.config.Config.zeroing then zero_entry t addr usable (Some (lo, len))
    | None -> if t.config.Config.zeroing then zero_entry t addr usable None
  end;
  B.free t.je addr

(* The quarantining path proper: [addr] is known live and not yet
   quarantined. *)
let quarantine_free t ~thread addr =
  let usable = B.usable_size t.je addr in
  log_event t (Event_log.Free_intercepted { addr; usable });
  let e = { Quarantine.addr; usable; unmapped_len = 0; failures = 0 } in
  let covered =
    if t.config.Config.unmapping then covered_pages ~addr ~len:usable
    else None
  in
  if t.config.Config.zeroing then zero_entry t addr usable covered;
  (match covered with
  | Some range -> unmap_entry t e range
  | None -> ());
  Quarantine.push t.quarantine ~thread e;
  (* Unmapped entries are rare and large: flush them to the global
     quarantine at once so the 9x-footprint trigger sees them. *)
  if e.Quarantine.unmapped_len > 0 then
    Quarantine.flush_thread t.quarantine ~thread;
  R.Gauge.set_max t.stats.Stats.Live.peak_quarantine_bytes
    (Quarantine.total_bytes t.quarantine);
  maybe_sweep t

let free_result t ?(thread = 0) addr =
  tick t;
  if not t.config.Config.quarantining then
    if not (B.is_live t.je addr) then Error (Unknown_pointer addr)
    else begin
      count t.stats.Stats.Live.frees_intercepted 1;
      forward_free t addr;
      Ok ()
    end
  else if Quarantine.contains t.quarantine addr then begin
    (* Double free while quarantined: idempotent (Section 3). *)
    count t.stats.Stats.Live.frees_intercepted 1;
    count t.stats.Stats.Live.double_frees 1;
    log_event t (Event_log.Double_free { addr });
    if t.config.Config.debug_double_free then
      Logs.warn (fun m -> m "MineSweeper: double free of %#x" addr);
    Error (Double_free addr)
  end
  else if not (B.is_live t.je addr) then Error (Unknown_pointer addr)
  else begin
    count t.stats.Stats.Live.frees_intercepted 1;
    quarantine_free t ~thread addr;
    Ok ()
  end

let free t ?(thread = 0) addr =
  match free_result t ~thread addr with
  | Ok () | Error (Double_free _) -> ()
  | Error (Unknown_pointer _) ->
    invalid_arg (Printf.sprintf "Instance.free: unknown pointer %#x" addr)
  | Error Size_overflow -> assert false

(* calloc/realloc complete the drop-in allocator API. realloc frees
   through the quarantine like any other free: the old range stays
   protected until sweeps prove it safe. *)

let calloc_result t count size =
  assert (count >= 0 && size >= 0);
  (* Reject requests whose total size overflows, like a real allocator:
     returning a short block for [count * size] bytes would hand the
     program silently truncated memory. *)
  if size <> 0 && count > max_int / size then Error Size_overflow
  else
    (* The backend already serves zeroed memory. *)
    Ok (malloc t (count * size))

let calloc t count size =
  match calloc_result t count size with Ok addr -> addr | Error _ -> 0

let realloc_result t ?(thread = 0) addr size =
  if addr = 0 then Ok (malloc t size)
  else if t.config.Config.quarantining && Quarantine.contains t.quarantine addr
  then Error (Double_free addr)
  else if not (B.is_live t.je addr) then Error (Unknown_pointer addr)
  else if size = 0 then
    match free_result t ~thread addr with
    | Ok () -> Ok 0
    | Error e -> Error e
  else begin
    let old_usable = B.usable_size t.je addr in
    let fresh = malloc t size in
    let copy = min size old_usable in
    let m = mem t in
    let rec copy_words off =
      if off + word <= copy then begin
        Vmem.store m (fresh + off) (Vmem.load m (addr + off));
        copy_words (off + word)
      end
    in
    copy_words 0;
    (* Partial trailing word: usable sizes are word-multiples on both
       sides, so a masked word-granularity read-modify-write stays inside
       both blocks while copying only the surviving tail bytes. *)
    let full = copy - (copy mod word) in
    let tail = copy - full in
    if tail > 0 then begin
      let mask = (1 lsl (8 * tail)) - 1 in
      let old_w = Vmem.load m (addr + full) in
      let cur = Vmem.load m (fresh + full) in
      Vmem.store m (fresh + full) ((old_w land mask) lor (cur land (lnot mask)))
    end;
    Alloc.Machine.charge_bytes t.machine (cost t).Sim.Cost.touch_per_byte copy;
    free t ~thread addr;
    Ok fresh
  end

let realloc t ?(thread = 0) addr size =
  match realloc_result t ~thread addr size with
  | Ok fresh -> fresh
  | Error _ -> 0

let is_quarantined t addr = Quarantine.contains t.quarantine addr

let note_prevented_uaf t = count t.stats.Stats.Live.uaf_prevented 1

let backend t = t.je
let live_bytes t = B.live_bytes t.je
let machine t = t.machine
let config t = t.config
let stats t = Stats.snapshot t.stats
let reset_stats t = Stats.reset t.stats
let registry t = t.registry
let trace_ring t = t.ring
let quarantine_bytes t = Quarantine.total_bytes t.quarantine
let quarantine_entries t = Quarantine.entry_count t.quarantine
let event_log t = t.log
let shadow_resident_bytes t = Shadow.shadow_bytes t.shadow
let sweep_in_progress t = t.sweep <> None
let quarantine t = t.quarantine
let shadow t = t.shadow

let iter_unmapped_pages t f =
  Hashtbl.iter (fun page_index () -> f (page_index * page)) t.unmapped_pages

let set_post_sweep_hook t hook = t.post_sweep_hook <- Some hook
let set_sync_observer t f = t.sync_observer <- Some f
let clear_sync_observer t = t.sync_observer <- None

let force_sweep t =
  if t.sweep <> None || not t.config.Config.quarantining then false
  else begin
    start_sweep t;
    true
  end

(* ------------------------------------------------------------------ *)
(* The sweep pipeline API                                              *)

module Sweep = struct
  let plan t = Pipeline.plan_of_config t.config
  let run = run_pipeline
  let last t = t.last_outcome
end

(* Deprecated shims over the pipeline; see instance_intf.ml. *)

let mark_all_memory t =
  let plan =
    {
      (Pipeline.mark_only (Pipeline.plan_of_config t.config)) with
      Pipeline.mode = Config.Full_scan;
    }
  in
  (run_pipeline t plan).Pipeline.scanned_bytes

let mark_incremental t =
  let plan =
    {
      (Pipeline.mark_only (Pipeline.plan_of_config t.config)) with
      Pipeline.mode = Config.Incremental;
    }
  in
  let o = run_pipeline t plan in
  ( o.Pipeline.scanned_bytes - (o.Pipeline.replayed_words * word),
    o.Pipeline.replayed_words )
end

include Make (Alloc.Backends.Jemalloc_backend)

let jemalloc = backend
