type t = {
  frees_intercepted : int;
  double_frees : int;
  sweeps : int;
  swept_bytes : int;
  stw_rescanned_bytes : int;
  sweep_pages_skipped : int;
  sweep_pages_rescanned : int;
  summary_cache_bytes : int;
  releases : int;
  released_bytes : int;
  failed_frees : int;
  unmapped_allocations : int;
  unmapped_bytes : int;
  stw_pauses : int;
  stw_cycles : int;
  alloc_pauses : int;
  alloc_pause_cycles : int;
  peak_quarantine_bytes : int;
  uaf_prevented : int;
}

let prefix = "ms."

module Live = struct
  type t = {
    frees_intercepted : Obs.Registry.counter;
    double_frees : Obs.Registry.counter;
    sweeps : Obs.Registry.counter;
    swept_bytes : Obs.Registry.counter;
    stw_rescanned_bytes : Obs.Registry.counter;
    sweep_pages_skipped : Obs.Registry.counter;
    sweep_pages_rescanned : Obs.Registry.counter;
    summary_cache_bytes : Obs.Registry.gauge;
    releases : Obs.Registry.counter;
    released_bytes : Obs.Registry.counter;
    failed_frees : Obs.Registry.counter;
    unmapped_allocations : Obs.Registry.counter;
    unmapped_bytes : Obs.Registry.counter;
    stw_pauses : Obs.Registry.counter;
    stw_cycles : Obs.Registry.counter;
    alloc_pauses : Obs.Registry.counter;
    alloc_pause_cycles : Obs.Registry.counter;
    peak_quarantine_bytes : Obs.Registry.gauge;
    uaf_prevented : Obs.Registry.counter;
  }

  let create reg =
    let c name = Obs.Registry.counter reg (prefix ^ name) in
    let g name = Obs.Registry.gauge reg (prefix ^ name) in
    {
      frees_intercepted = c "frees_intercepted";
      double_frees = c "double_frees";
      sweeps = c "sweeps";
      swept_bytes = c "swept_bytes";
      stw_rescanned_bytes = c "stw_rescanned_bytes";
      sweep_pages_skipped = c "sweep_pages_skipped";
      sweep_pages_rescanned = c "sweep_pages_rescanned";
      summary_cache_bytes = g "summary_cache_bytes";
      releases = c "releases";
      released_bytes = c "released_bytes";
      failed_frees = c "failed_frees";
      unmapped_allocations = c "unmapped_allocations";
      unmapped_bytes = c "unmapped_bytes";
      stw_pauses = c "stw_pauses";
      stw_cycles = c "stw_cycles";
      alloc_pauses = c "alloc_pauses";
      alloc_pause_cycles = c "alloc_pause_cycles";
      peak_quarantine_bytes = g "peak_quarantine_bytes";
      uaf_prevented = c "uaf_prevented";
    }
end

let snapshot (l : Live.t) =
  let c = Obs.Registry.Counter.value in
  let g = Obs.Registry.Gauge.value in
  {
    frees_intercepted = c l.Live.frees_intercepted;
    double_frees = c l.Live.double_frees;
    sweeps = c l.Live.sweeps;
    swept_bytes = c l.Live.swept_bytes;
    stw_rescanned_bytes = c l.Live.stw_rescanned_bytes;
    sweep_pages_skipped = c l.Live.sweep_pages_skipped;
    sweep_pages_rescanned = c l.Live.sweep_pages_rescanned;
    summary_cache_bytes = g l.Live.summary_cache_bytes;
    releases = c l.Live.releases;
    released_bytes = c l.Live.released_bytes;
    failed_frees = c l.Live.failed_frees;
    unmapped_allocations = c l.Live.unmapped_allocations;
    unmapped_bytes = c l.Live.unmapped_bytes;
    stw_pauses = c l.Live.stw_pauses;
    stw_cycles = c l.Live.stw_cycles;
    alloc_pauses = c l.Live.alloc_pauses;
    alloc_pause_cycles = c l.Live.alloc_pause_cycles;
    peak_quarantine_bytes = g l.Live.peak_quarantine_bytes;
    uaf_prevented = c l.Live.uaf_prevented;
  }

(* Reset goes through the same handle record as snapshot: a counter
   added to one and forgotten in the other fails the completeness test
   rather than silently surviving resets. *)
let reset (l : Live.t) =
  let handles =
    [
      `C l.Live.frees_intercepted;
      `C l.Live.double_frees;
      `C l.Live.sweeps;
      `C l.Live.swept_bytes;
      `C l.Live.stw_rescanned_bytes;
      `C l.Live.sweep_pages_skipped;
      `C l.Live.sweep_pages_rescanned;
      `G l.Live.summary_cache_bytes;
      `C l.Live.releases;
      `C l.Live.released_bytes;
      `C l.Live.failed_frees;
      `C l.Live.unmapped_allocations;
      `C l.Live.unmapped_bytes;
      `C l.Live.stw_pauses;
      `C l.Live.stw_cycles;
      `C l.Live.alloc_pauses;
      `C l.Live.alloc_pause_cycles;
      `G l.Live.peak_quarantine_bytes;
      `C l.Live.uaf_prevented;
    ]
  in
  List.iter
    (function
      | `C c -> Obs.Registry.Counter.reset c
      | `G g -> Obs.Registry.Gauge.set g 0)
    handles

let zero =
  {
    frees_intercepted = 0;
    double_frees = 0;
    sweeps = 0;
    swept_bytes = 0;
    stw_rescanned_bytes = 0;
    sweep_pages_skipped = 0;
    sweep_pages_rescanned = 0;
    summary_cache_bytes = 0;
    releases = 0;
    released_bytes = 0;
    failed_frees = 0;
    unmapped_allocations = 0;
    unmapped_bytes = 0;
    stw_pauses = 0;
    stw_cycles = 0;
    alloc_pauses = 0;
    alloc_pause_cycles = 0;
    peak_quarantine_bytes = 0;
    uaf_prevented = 0;
  }

let to_fields t =
  [
    ("frees_intercepted", t.frees_intercepted);
    ("double_frees", t.double_frees);
    ("sweeps", t.sweeps);
    ("swept_bytes", t.swept_bytes);
    ("stw_rescanned_bytes", t.stw_rescanned_bytes);
    ("sweep_pages_skipped", t.sweep_pages_skipped);
    ("sweep_pages_rescanned", t.sweep_pages_rescanned);
    ("summary_cache_bytes", t.summary_cache_bytes);
    ("releases", t.releases);
    ("released_bytes", t.released_bytes);
    ("failed_frees", t.failed_frees);
    ("unmapped_allocations", t.unmapped_allocations);
    ("unmapped_bytes", t.unmapped_bytes);
    ("stw_pauses", t.stw_pauses);
    ("stw_cycles", t.stw_cycles);
    ("alloc_pauses", t.alloc_pauses);
    ("alloc_pause_cycles", t.alloc_pause_cycles);
    ("peak_quarantine_bytes", t.peak_quarantine_bytes);
    ("uaf_prevented", t.uaf_prevented);
  ]

let field_names = List.map fst (to_fields zero)

let registered_names =
  List.sort String.compare (List.map (fun n -> prefix ^ n) field_names)

let pp ppf t =
  Format.fprintf ppf
    "frees=%d double_frees=%d sweeps=%d swept=%dB stw_rescanned=%dB \
     pages_skipped=%d pages_rescanned=%d summary_cache=%dB releases=%d \
     failed=%d unmapped=%d stw=%d pauses=%d peak_quarantine=%dB"
    t.frees_intercepted t.double_frees t.sweeps t.swept_bytes
    t.stw_rescanned_bytes t.sweep_pages_skipped t.sweep_pages_rescanned
    t.summary_cache_bytes t.releases t.failed_frees t.unmapped_allocations
    t.stw_pauses t.alloc_pauses t.peak_quarantine_bytes
