type t = {
  mutable frees_intercepted : int;
  mutable double_frees : int;
  mutable sweeps : int;
  mutable swept_bytes : int;
  mutable stw_rescanned_bytes : int;
  mutable sweep_pages_skipped : int;
  mutable sweep_pages_rescanned : int;
  mutable summary_cache_bytes : int;
  mutable releases : int;
  mutable released_bytes : int;
  mutable failed_frees : int;
  mutable unmapped_allocations : int;
  mutable unmapped_bytes : int;
  mutable stw_pauses : int;
  mutable stw_cycles : int;
  mutable alloc_pauses : int;
  mutable alloc_pause_cycles : int;
  mutable peak_quarantine_bytes : int;
  mutable uaf_prevented : int;
}

let create () =
  {
    frees_intercepted = 0;
    double_frees = 0;
    sweeps = 0;
    swept_bytes = 0;
    stw_rescanned_bytes = 0;
    sweep_pages_skipped = 0;
    sweep_pages_rescanned = 0;
    summary_cache_bytes = 0;
    releases = 0;
    released_bytes = 0;
    failed_frees = 0;
    unmapped_allocations = 0;
    unmapped_bytes = 0;
    stw_pauses = 0;
    stw_cycles = 0;
    alloc_pauses = 0;
    alloc_pause_cycles = 0;
    peak_quarantine_bytes = 0;
    uaf_prevented = 0;
  }

let pp ppf t =
  Format.fprintf ppf
    "frees=%d double_frees=%d sweeps=%d swept=%dB stw_rescanned=%dB \
     pages_skipped=%d pages_rescanned=%d summary_cache=%dB releases=%d \
     failed=%d unmapped=%d stw=%d pauses=%d peak_quarantine=%dB"
    t.frees_intercepted t.double_frees t.sweeps t.swept_bytes
    t.stw_rescanned_bytes t.sweep_pages_skipped t.sweep_pages_rescanned
    t.summary_cache_bytes t.releases t.failed_frees t.unmapped_allocations
    t.stw_pauses t.alloc_pauses t.peak_quarantine_bytes
