type entry = {
  addr : int;
  usable : int;
  mutable unmapped_len : int;
  mutable failures : int;
}

let buffer_flush_threshold = 64

type t = {
  machine : Alloc.Machine.t;
  mutable fresh : entry list;
  mutable failed : entry list;
  mutable fresh_mapped : int;
  mutable failed_total : int;
  mutable unmapped : int;
  dedup : (int, entry) Hashtbl.t;
  buffers : entry list array;
  buffer_lens : int array;
}

let create machine ~threads =
  assert (threads >= 1);
  {
    machine;
    fresh = [];
    failed = [];
    fresh_mapped = 0;
    failed_total = 0;
    unmapped = 0;
    dedup = Hashtbl.create 4096;
    buffers = Array.make threads [];
    buffer_lens = Array.make threads 0;
  }

let contains t addr = Hashtbl.mem t.dedup addr
let find t addr = Hashtbl.find_opt t.dedup addr

let account_fresh t e =
  t.fresh_mapped <- t.fresh_mapped + (e.usable - e.unmapped_len);
  t.unmapped <- t.unmapped + e.unmapped_len

let flush_thread t ~thread =
  let buffered = t.buffers.(thread) in
  if buffered <> [] then begin
    let cost = t.machine.Alloc.Machine.cost in
    Alloc.Machine.charge t.machine
      (t.buffer_lens.(thread) * cost.Sim.Cost.quarantine_flush_per_entry);
    t.fresh <- List.rev_append buffered t.fresh;
    List.iter (fun e -> account_fresh t e) buffered;
    t.buffers.(thread) <- [];
    t.buffer_lens.(thread) <- 0
  end

let flush_all t =
  for thread = 0 to Array.length t.buffers - 1 do
    flush_thread t ~thread
  done

let push t ~thread e =
  assert (not (contains t e.addr));
  let cost = t.machine.Alloc.Machine.cost in
  Alloc.Machine.charge t.machine cost.Sim.Cost.quarantine_push;
  Hashtbl.replace t.dedup e.addr e;
  t.buffers.(thread) <- e :: t.buffers.(thread);
  t.buffer_lens.(thread) <- t.buffer_lens.(thread) + 1;
  if t.buffer_lens.(thread) >= buffer_flush_threshold then flush_thread t ~thread

let lock_in t =
  flush_all t;
  let locked = List.rev_append t.failed t.fresh in
  t.fresh <- [];
  t.failed <- [];
  t.fresh_mapped <- 0;
  t.failed_total <- 0;
  t.unmapped <- 0;
  locked

let requeue_failed t e =
  e.failures <- e.failures + 1;
  t.failed <- e :: t.failed;
  t.failed_total <- t.failed_total + (e.usable - e.unmapped_len);
  t.unmapped <- t.unmapped + e.unmapped_len

let release t e = Hashtbl.remove t.dedup e.addr

let iter_fresh t f = List.iter f t.fresh
let iter_failed t f = List.iter f t.failed

let iter_buffered t f =
  Array.iter (fun buffered -> List.iter f buffered) t.buffers

let fresh_mapped_bytes t = t.fresh_mapped
let failed_bytes t = t.failed_total
let unmapped_bytes t = t.unmapped
let total_bytes t = t.fresh_mapped + t.failed_total + t.unmapped

let entry_count t =
  List.length t.fresh + List.length t.failed
  + Array.fold_left (fun acc l -> acc + List.length l) 0 t.buffers
