type entry = {
  addr : int;
  usable : int;
  mutable unmapped_len : int;
  mutable failures : int;
}

let buffer_flush_threshold = 64

(* Synchronization events for the race checker: every protocol-relevant
   transition of the quarantine is observable, so a happens-before
   analysis can reconstruct the push -> flush -> lock_in -> requeue/
   release lifecycle of each entry. *)
type event =
  | Pushed of { thread : int; raw_thread : int; addr : int; usable : int }
  | Flushed of { thread : int; entries : int }
  | Locked_in of { entries : (int * int) list }  (* (addr, usable) *)
  | Requeued of { addr : int }
  | Released of { addr : int }

type t = {
  machine : Alloc.Machine.t;
  mutable fresh : entry list;
  mutable failed : entry list;
  mutable fresh_mapped : int;
  mutable failed_total : int;
  mutable unmapped : int;
  dedup : (int, entry) Hashtbl.t;
  buffers : entry list array;
  buffer_lens : int array;
  mutable observer : (event -> unit) option;
}

let create machine ~threads =
  assert (threads >= 1);
  {
    machine;
    fresh = [];
    failed = [];
    fresh_mapped = 0;
    failed_total = 0;
    unmapped = 0;
    dedup = Hashtbl.create 4096;
    buffers = Array.make threads [];
    buffer_lens = Array.make threads 0;
    observer = None;
  }

let set_observer t f = t.observer <- Some f
let clear_observer t = t.observer <- None

let emit t ev =
  match t.observer with None -> () | Some f -> f ev

let threads t = Array.length t.buffers

(* Out-of-range thread ids alias buffer 0 (a real per-thread cache keyed
   by a hashed tid would do the same): correctness is unaffected — the
   entry still reaches the global list at the next flush — but the
   aliasing silently serialises what was meant to be contention-free,
   which is why {!Sanitizer.Trace_lint} flags traces that do this. *)
let clamp_thread t thread =
  if thread >= 0 && thread < Array.length t.buffers then thread else 0

let contains t addr = Hashtbl.mem t.dedup addr
let find t addr = Hashtbl.find_opt t.dedup addr

let account_fresh t e =
  t.fresh_mapped <- t.fresh_mapped + (e.usable - e.unmapped_len);
  t.unmapped <- t.unmapped + e.unmapped_len

let flush_thread t ~thread =
  let thread = clamp_thread t thread in
  let buffered = t.buffers.(thread) in
  if buffered <> [] then begin
    let cost = t.machine.Alloc.Machine.cost in
    Alloc.Machine.charge t.machine
      (t.buffer_lens.(thread) * cost.Sim.Cost.quarantine_flush_per_entry);
    emit t (Flushed { thread; entries = t.buffer_lens.(thread) });
    t.fresh <- List.rev_append buffered t.fresh;
    List.iter (fun e -> account_fresh t e) buffered;
    t.buffers.(thread) <- [];
    t.buffer_lens.(thread) <- 0
  end

let flush_all t =
  for thread = 0 to Array.length t.buffers - 1 do
    flush_thread t ~thread
  done

(* Batched flush for sweep setup: the global-list lock is taken once per
   [batch] entries instead of once per entry, so the per-entry cost drops
   from [quarantine_flush_per_entry] to [quarantine_flush_batch_per_entry]
   plus an amortised [quarantine_flush_lock]. The resulting fresh-list
   order, events and accounting are identical to {!flush_all}. *)
let flush_batch t ~batch =
  let batch = max 1 batch in
  let total = Array.fold_left ( + ) 0 t.buffer_lens in
  if total = 0 then 0
  else begin
    let cost = t.machine.Alloc.Machine.cost in
    let batches = (total + batch - 1) / batch in
    Alloc.Machine.charge t.machine
      ((batches * cost.Sim.Cost.quarantine_flush_lock)
      + (total * cost.Sim.Cost.quarantine_flush_batch_per_entry));
    for thread = 0 to Array.length t.buffers - 1 do
      let buffered = t.buffers.(thread) in
      if buffered <> [] then begin
        emit t (Flushed { thread; entries = t.buffer_lens.(thread) });
        t.fresh <- List.rev_append buffered t.fresh;
        List.iter (fun e -> account_fresh t e) buffered;
        t.buffers.(thread) <- [];
        t.buffer_lens.(thread) <- 0
      end
    done;
    batches
  end

let push t ~thread e =
  assert (not (contains t e.addr));
  let raw_thread = thread in
  let thread = clamp_thread t thread in
  let cost = t.machine.Alloc.Machine.cost in
  Alloc.Machine.charge t.machine cost.Sim.Cost.quarantine_push;
  emit t (Pushed { thread; raw_thread; addr = e.addr; usable = e.usable });
  Hashtbl.replace t.dedup e.addr e;
  t.buffers.(thread) <- e :: t.buffers.(thread);
  t.buffer_lens.(thread) <- t.buffer_lens.(thread) + 1;
  if t.buffer_lens.(thread) >= buffer_flush_threshold then flush_thread t ~thread

let lock_in t =
  flush_all t;
  let locked = List.rev_append t.failed t.fresh in
  t.fresh <- [];
  t.failed <- [];
  t.fresh_mapped <- 0;
  t.failed_total <- 0;
  t.unmapped <- 0;
  emit t (Locked_in { entries = List.map (fun e -> (e.addr, e.usable)) locked });
  locked

let requeue_failed t e =
  e.failures <- e.failures + 1;
  t.failed <- e :: t.failed;
  t.failed_total <- t.failed_total + (e.usable - e.unmapped_len);
  t.unmapped <- t.unmapped + e.unmapped_len;
  emit t (Requeued { addr = e.addr })

let release t e =
  Hashtbl.remove t.dedup e.addr;
  emit t (Released { addr = e.addr })

let iter_fresh t f = List.iter f t.fresh
let iter_failed t f = List.iter f t.failed

let iter_buffered t f =
  Array.iter (fun buffered -> List.iter f buffered) t.buffers

let fresh_mapped_bytes t = t.fresh_mapped
let failed_bytes t = t.failed_total
let unmapped_bytes t = t.unmapped
let total_bytes t = t.fresh_mapped + t.failed_total + t.unmapped

let entry_count t =
  List.length t.fresh + List.length t.failed
  + Array.fold_left (fun acc l -> acc + List.length l) 0 t.buffers
