type scheme =
  | Baseline
  | Mine_sweeper of Minesweeper.Config.t
  | Mark_us
  | Ff_malloc
  | Scudo_baseline
  | Scudo_sweeper of Minesweeper.Config.t
  | Cr_count
  | P_sweeper
  | Dang_san
  | Dl_baseline
  | Dl_sweeper of Minesweeper.Config.t
  | Pooled of Alloc.Poolalloc.plan option
      (** site-keyed pooling; [None] falls back to one recycling pool
          per site ([identity_plan]) when no siteflow plan is at hand *)

(* MineSweeper instantiated over the Scudo backend (Section 7). *)
module Scudo_ms = Minesweeper.Instance.Make (Alloc.Backends.Scudo_backend)

(* ...and over the in-band-metadata dlmalloc model (Section 2 footnote). *)
module Dl_ms = Minesweeper.Instance.Make (Alloc.Backends.Dlmalloc_backend)

(* Scheme names derive from the canonical preset table in
   {!Minesweeper.Config}: one place ties a configuration to a name. *)
let ms_suffix config =
  match Minesweeper.Config.preset_name config with
  | Some "default" -> ""
  | Some (("mostly" | "incremental" | "incremental-mostly") as preset) ->
    "-" ^ preset
  | Some _ | None -> "-variant"

let scheme_name = function
  | Baseline -> "baseline"
  | Mine_sweeper config -> "minesweeper" ^ ms_suffix config
  | Mark_us -> "markus"
  | Ff_malloc -> "ffmalloc"
  | Cr_count -> "crcount"
  | Dl_baseline -> "dlmalloc"
  | Dl_sweeper config ->
    if Minesweeper.Config.preset_name config = Some "default" then
      "dlmalloc-minesweeper"
    else "dlmalloc-minesweeper-variant"
  | P_sweeper -> "psweeper"
  | Dang_san -> "dangsan"
  | Scudo_baseline -> "scudo"
  | Scudo_sweeper config ->
    if Minesweeper.Config.preset_name config = Some "default" then
      "scudo-minesweeper"
    else "scudo-minesweeper-variant"
  | Pooled _ -> "pooled"

type t = {
  scheme : string;
  machine : Alloc.Machine.t;
  obs : Obs.Registry.t option;
  trace : Obs.Trace_ring.t option;
  malloc : int -> int;
  malloc_site : site:int -> int -> int;
      (** site-attributed allocation; every scheme except [Pooled]
          ignores the site and behaves exactly like [malloc] *)
  free : thread:int -> int -> unit;
  tick : unit -> unit;
  drain : unit -> unit;
  reclaim : unit -> unit;
      (** release memory now: force a sweep/purge cycle regardless of
          thresholds — the lever a machine-wide RSS-pressure policy
          (fleet layer) pulls on a tenant *)
  quarantine_bytes : unit -> int;
      (** bytes currently held back from reuse (quarantine / deferred /
          pending), 0 for schemes with no retention *)
  live_bytes : unit -> int;
  metadata_bytes : unit -> int;
  cold_penalty : int -> int;
  is_protected_addr : int -> bool;
  tolerates_double_free : bool;
  on_pointer_write : slot:int -> old_value:int -> value:int -> unit;
  sweeps : unit -> int;
  failed_frees : unit -> int;
  extra : unit -> (string * float) list;
}

let no_pointer_tracking ~slot:_ ~old_value:_ ~value:_ = ()

let quarantine_entry_overhead = 48 (* bytes of metadata per quarantined entry *)

let cold_penalty_fn machine factor =
  let per_byte = machine.Alloc.Machine.cost.Sim.Cost.cold_alloc_per_byte in
  fun size ->
    if factor = 0.0 then 0
    else int_of_float (factor *. per_byte *. float_of_int (min size 8192))

let decay_interval = 1_000_000

(* Matches the [Profile.make] default: a plan-free [Pooled None] stack
   segregates the same site universe the generators attribute to. *)
let default_pool_sites = 8

let build scheme ~threads machine =
  match scheme with
  | Baseline ->
    let je = Alloc.Jemalloc.create ~extra_byte:false machine in
    let last_decay = ref 0 in
    {
      scheme = scheme_name scheme;
      machine;
      obs = None;
      trace = None;
      malloc = Alloc.Jemalloc.malloc je;
      malloc_site = (fun ~site:_ size -> Alloc.Jemalloc.malloc je size);
      free = (fun ~thread:_ addr -> Alloc.Jemalloc.free je addr);
      tick =
        (fun () ->
          let n = Alloc.Machine.now machine in
          if n - !last_decay >= decay_interval then begin
            last_decay := n;
            Alloc.Machine.with_sink machine Alloc.Machine.Background (fun () ->
                Alloc.Jemalloc.purge_tick je)
          end);
      drain = (fun () -> ());
      reclaim =
        (fun () ->
          Alloc.Machine.with_sink machine Alloc.Machine.Background (fun () ->
              Alloc.Jemalloc.purge_all je));
      quarantine_bytes = (fun () -> 0);
      live_bytes = (fun () -> Alloc.Jemalloc.live_bytes je);
      metadata_bytes = (fun () -> 0);
      cold_penalty = cold_penalty_fn machine 0.0;
      is_protected_addr = (fun _ -> false);
      tolerates_double_free = false;
      on_pointer_write = no_pointer_tracking;
      sweeps = (fun () -> 0);
      failed_frees = (fun () -> 0);
      extra = (fun () -> []);
    }
  | Mine_sweeper config ->
    let ms = Minesweeper.Instance.create ~config ~threads machine in
    (* The instance registers [ms.]/[vmem.] metrics at creation; the
       allocator joins the same registry here so one export covers the
       whole stack. *)
    Alloc.Jemalloc.attach_obs
      (Minesweeper.Instance.jemalloc ms)
      (Minesweeper.Instance.registry ms);
    (* [Instance.stats] is a point-in-time snapshot: take a fresh one at
       every read rather than holding the build-time (all-zero) one. *)
    let stats () = Minesweeper.Instance.stats ms in
    let factor = if config.Minesweeper.Config.quarantining then 1.0 else 0.0 in
    {
      scheme = scheme_name scheme;
      machine;
      obs = Some (Minesweeper.Instance.registry ms);
      trace = Some (Minesweeper.Instance.trace_ring ms);
      malloc = Minesweeper.Instance.malloc ms;
      malloc_site = (fun ~site:_ size -> Minesweeper.Instance.malloc ms size);
      free = (fun ~thread addr -> Minesweeper.Instance.free ms ~thread addr);
      tick = (fun () -> Minesweeper.Instance.tick ms);
      drain = (fun () -> Minesweeper.Instance.drain ms);
      reclaim =
        (fun () ->
          (* Start a sweep even below threshold, then force-finish it:
             the pipeline's release+purge stages hand pages back. *)
          ignore (Minesweeper.Instance.force_sweep ms : bool);
          Minesweeper.Instance.drain ms);
      quarantine_bytes = (fun () -> Minesweeper.Instance.quarantine_bytes ms);
      live_bytes =
        (fun () ->
          Alloc.Jemalloc.live_bytes (Minesweeper.Instance.jemalloc ms));
      metadata_bytes =
        (fun () ->
          (* shadow map + out-of-line quarantine bookkeeping + the
             incremental mode's per-page pointer-summary cache *)
          Minesweeper.Instance.shadow_resident_bytes ms
          + (quarantine_entry_overhead * Minesweeper.Instance.quarantine_entries ms)
          + (stats ()).Minesweeper.Stats.summary_cache_bytes);
      cold_penalty = cold_penalty_fn machine factor;
      is_protected_addr = (fun addr -> Minesweeper.Instance.is_quarantined ms addr);
      tolerates_double_free = config.Minesweeper.Config.quarantining;
      on_pointer_write = no_pointer_tracking;
      sweeps = (fun () -> (stats ()).Minesweeper.Stats.sweeps);
      failed_frees = (fun () -> (stats ()).Minesweeper.Stats.failed_frees);
      extra =
        (fun () ->
          let s = stats () in
          (* When the parallel marking engine ran (domains > 1), surface
             its telemetry to the experiments layer: the speedup figure
             reads the modeled critical-path cycles from here. *)
          let reg = Minesweeper.Instance.registry ms in
          let par =
            List.filter_map
              (fun name ->
                match Obs.Registry.read reg ("par." ^ name) with
                | Some v -> Some ("par_" ^ name, float_of_int v)
                | None -> None)
              [ "domains"; "chunks"; "chunks_stolen"; "imbalance";
                "mark_cycles_est"; "mark_cycles_seq_est" ]
          in
          (* The sweep pipeline's per-stage projections (always
             registered): the pipeline figure reads the modeled
             sequential vs overlapped cycle totals from here. *)
          let pipe =
            List.filter_map
              (fun name ->
                match Obs.Registry.read reg ("sweep.stage." ^ name) with
                | Some v -> Some ("pipe_" ^ name, float_of_int v)
                | None -> None)
              [ "mark_cycles_est"; "merge_cycles_est"; "release_cycles_est";
                "purge_cycles_est"; "seq_cycles_est"; "pipeline_cycles_est";
                "batches"; "flush_batches" ]
          in
          [
            ("double_frees", float_of_int s.Minesweeper.Stats.double_frees);
            ("stw_pauses", float_of_int s.Minesweeper.Stats.stw_pauses);
            ("alloc_pauses", float_of_int s.Minesweeper.Stats.alloc_pauses);
            ("unmapped", float_of_int s.Minesweeper.Stats.unmapped_allocations);
            ("swept_bytes", float_of_int s.Minesweeper.Stats.swept_bytes);
            ("stw_rescanned_bytes",
             float_of_int s.Minesweeper.Stats.stw_rescanned_bytes);
            ("pages_skipped",
             float_of_int s.Minesweeper.Stats.sweep_pages_skipped);
            ("pages_rescanned",
             float_of_int s.Minesweeper.Stats.sweep_pages_rescanned);
            ("summary_cache_bytes",
             float_of_int s.Minesweeper.Stats.summary_cache_bytes);
          ]
          @ par @ pipe);
    }
  | Mark_us ->
    let mk = Markus.create machine in
    {
      scheme = scheme_name scheme;
      machine;
      obs = None;
      trace = None;
      malloc = Markus.malloc mk;
      malloc_site = (fun ~site:_ size -> Markus.malloc mk size);
      free = (fun ~thread:_ addr -> Markus.free mk addr);
      tick = (fun () -> Markus.tick mk);
      drain = (fun () -> Markus.drain mk);
      reclaim =
        (fun () ->
          Markus.drain mk;
          Alloc.Machine.with_sink machine Alloc.Machine.Background (fun () ->
              Alloc.Jemalloc.purge_all (Markus.jemalloc mk)));
      quarantine_bytes = (fun () -> Markus.quarantine_bytes mk);
      live_bytes = (fun () -> Alloc.Jemalloc.live_bytes (Markus.jemalloc mk));
      metadata_bytes = (fun () -> 0);
      cold_penalty = cold_penalty_fn machine 1.15;
      is_protected_addr = (fun addr -> Markus.is_quarantined mk addr);
      tolerates_double_free = true;
      on_pointer_write = no_pointer_tracking;
      sweeps = (fun () -> Markus.sweeps mk);
      failed_frees = (fun () -> Markus.failed_frees mk);
      extra =
        (fun () ->
          [ ("visited_bytes", float_of_int (Markus.marked_visited_bytes mk)) ]);
    }
  | Scudo_baseline ->
    let sc = Alloc.Scudo.create machine in
    let last_decay = ref 0 in
    {
      scheme = scheme_name scheme;
      machine;
      obs = None;
      trace = None;
      malloc = Alloc.Scudo.malloc sc;
      malloc_site = (fun ~site:_ size -> Alloc.Scudo.malloc sc size);
      free = (fun ~thread:_ addr -> Alloc.Scudo.free sc addr);
      tick =
        (fun () ->
          let n = Alloc.Machine.now machine in
          if n - !last_decay >= decay_interval then begin
            last_decay := n;
            Alloc.Machine.with_sink machine Alloc.Machine.Background (fun () ->
                Alloc.Scudo.purge_tick sc)
          end);
      drain = (fun () -> ());
      reclaim =
        (fun () ->
          Alloc.Machine.with_sink machine Alloc.Machine.Background (fun () ->
              Alloc.Scudo.purge_all sc));
      quarantine_bytes = (fun () -> 0);
      live_bytes = (fun () -> Alloc.Scudo.live_bytes sc);
      metadata_bytes = (fun () -> 0);
      (* The randomisation pool delays some reuse: a small cold share. *)
      cold_penalty = cold_penalty_fn machine 0.1;
      is_protected_addr = (fun _ -> false);
      tolerates_double_free = false;
      on_pointer_write = no_pointer_tracking;
      sweeps = (fun () -> 0);
      failed_frees = (fun () -> 0);
      extra =
        (fun () -> [ ("pool", float_of_int (Alloc.Scudo.pool_size sc)) ]);
    }
  | Scudo_sweeper config ->
    let ms = Scudo_ms.create ~config ~threads machine in
    let stats () = Scudo_ms.stats ms in
    let factor = if config.Minesweeper.Config.quarantining then 1.0 else 0.0 in
    {
      scheme = scheme_name scheme;
      machine;
      obs = Some (Scudo_ms.registry ms);
      trace = Some (Scudo_ms.trace_ring ms);
      malloc = Scudo_ms.malloc ms;
      malloc_site = (fun ~site:_ size -> Scudo_ms.malloc ms size);
      free = (fun ~thread addr -> Scudo_ms.free ms ~thread addr);
      tick = (fun () -> Scudo_ms.tick ms);
      drain = (fun () -> Scudo_ms.drain ms);
      reclaim =
        (fun () ->
          ignore (Scudo_ms.force_sweep ms : bool);
          Scudo_ms.drain ms);
      quarantine_bytes = (fun () -> Scudo_ms.quarantine_bytes ms);
      live_bytes = (fun () -> Scudo_ms.live_bytes ms);
      metadata_bytes =
        (fun () ->
          Scudo_ms.shadow_resident_bytes ms
          + (quarantine_entry_overhead * Scudo_ms.quarantine_entries ms));
      cold_penalty = cold_penalty_fn machine factor;
      is_protected_addr = (fun addr -> Scudo_ms.is_quarantined ms addr);
      tolerates_double_free = config.Minesweeper.Config.quarantining;
      on_pointer_write = no_pointer_tracking;
      sweeps = (fun () -> (stats ()).Minesweeper.Stats.sweeps);
      failed_frees = (fun () -> (stats ()).Minesweeper.Stats.failed_frees);
      extra = (fun () -> []);
    }
  | Dl_baseline ->
    let dl = Alloc.Dlmalloc.create machine in
    {
      scheme = scheme_name scheme;
      machine;
      obs = None;
      trace = None;
      malloc = Alloc.Dlmalloc.malloc dl;
      malloc_site = (fun ~site:_ size -> Alloc.Dlmalloc.malloc dl size);
      free = (fun ~thread:_ addr -> Alloc.Dlmalloc.free dl addr);
      tick = (fun () -> ());
      drain = (fun () -> ());
      reclaim =
        (fun () ->
          Alloc.Machine.with_sink machine Alloc.Machine.Background (fun () ->
              Alloc.Dlmalloc.purge_all dl));
      quarantine_bytes = (fun () -> 0);
      live_bytes = (fun () -> Alloc.Dlmalloc.live_bytes dl);
      metadata_bytes = (fun () -> 0) (* metadata lives in-band *);
      cold_penalty = cold_penalty_fn machine 0.0;
      is_protected_addr = (fun _ -> false);
      tolerates_double_free = false;
      on_pointer_write = no_pointer_tracking;
      sweeps = (fun () -> 0);
      failed_frees = (fun () -> 0);
      extra =
        (fun () ->
          [
            ("bin_integrity",
             if Alloc.Dlmalloc.check_bin_integrity dl then 1.0 else 0.0);
          ]);
    }
  | Dl_sweeper config ->
    let ms = Dl_ms.create ~config ~threads machine in
    let stats () = Dl_ms.stats ms in
    {
      scheme = scheme_name scheme;
      machine;
      obs = Some (Dl_ms.registry ms);
      trace = Some (Dl_ms.trace_ring ms);
      malloc = Dl_ms.malloc ms;
      malloc_site = (fun ~site:_ size -> Dl_ms.malloc ms size);
      free = (fun ~thread addr -> Dl_ms.free ms ~thread addr);
      tick = (fun () -> Dl_ms.tick ms);
      drain = (fun () -> Dl_ms.drain ms);
      reclaim =
        (fun () ->
          ignore (Dl_ms.force_sweep ms : bool);
          Dl_ms.drain ms);
      quarantine_bytes = (fun () -> Dl_ms.quarantine_bytes ms);
      live_bytes = (fun () -> Dl_ms.live_bytes ms);
      metadata_bytes =
        (fun () ->
          Dl_ms.shadow_resident_bytes ms
          + (quarantine_entry_overhead * Dl_ms.quarantine_entries ms));
      cold_penalty = cold_penalty_fn machine 1.0;
      is_protected_addr = (fun addr -> Dl_ms.is_quarantined ms addr);
      tolerates_double_free = config.Minesweeper.Config.quarantining;
      on_pointer_write = no_pointer_tracking;
      sweeps = (fun () -> (stats ()).Minesweeper.Stats.sweeps);
      failed_frees = (fun () -> (stats ()).Minesweeper.Stats.failed_frees);
      extra = (fun () -> []);
    }
  | Cr_count ->
    let cr = Ptrtrack.Crcount.create machine in
    {
      scheme = scheme_name scheme;
      machine;
      obs = None;
      trace = None;
      malloc = Ptrtrack.Crcount.malloc cr;
      malloc_site = (fun ~site:_ size -> Ptrtrack.Crcount.malloc cr size);
      free = (fun ~thread:_ addr -> Ptrtrack.Crcount.free cr addr);
      tick = (fun () -> ());
      drain = (fun () -> ());
      reclaim = (fun () -> ());
      quarantine_bytes = (fun () -> Ptrtrack.Crcount.pending_bytes cr);
      live_bytes = (fun () -> Ptrtrack.Crcount.live_bytes cr);
      metadata_bytes = (fun () -> Ptrtrack.Crcount.metadata_bytes cr);
      cold_penalty = cold_penalty_fn machine 0.2;
      is_protected_addr = (fun addr -> Ptrtrack.Crcount.is_pending cr addr);
      tolerates_double_free = true;
      on_pointer_write =
        (fun ~slot ~old_value ~value ->
          Ptrtrack.Crcount.on_pointer_write cr ~slot ~old_value ~value);
      sweeps = (fun () -> 0);
      failed_frees = (fun () -> 0);
      extra =
        (fun () ->
          [ ("pending_bytes", float_of_int (Ptrtrack.Crcount.pending_bytes cr)) ]);
    }
  | P_sweeper ->
    let ps = Ptrtrack.Psweeper.create machine in
    {
      scheme = scheme_name scheme;
      machine;
      obs = None;
      trace = None;
      malloc = Ptrtrack.Psweeper.malloc ps;
      malloc_site = (fun ~site:_ size -> Ptrtrack.Psweeper.malloc ps size);
      free = (fun ~thread:_ addr -> Ptrtrack.Psweeper.free ps addr);
      tick = (fun () -> Ptrtrack.Psweeper.tick ps);
      drain = (fun () -> Ptrtrack.Psweeper.drain ps);
      reclaim = (fun () -> Ptrtrack.Psweeper.drain ps);
      quarantine_bytes = (fun () -> Ptrtrack.Psweeper.deferred_bytes ps);
      live_bytes = (fun () -> Ptrtrack.Psweeper.live_bytes ps);
      metadata_bytes = (fun () -> Ptrtrack.Psweeper.metadata_bytes ps);
      cold_penalty = cold_penalty_fn machine 0.4;
      is_protected_addr = (fun addr -> Ptrtrack.Psweeper.is_deferred ps addr);
      tolerates_double_free = true;
      on_pointer_write =
        (fun ~slot ~old_value ~value ->
          Ptrtrack.Psweeper.on_pointer_write ps ~slot ~old_value ~value);
      sweeps = (fun () -> Ptrtrack.Psweeper.sweeps ps);
      failed_frees = (fun () -> 0);
      extra =
        (fun () ->
          [
            ("deferred_bytes",
             float_of_int (Ptrtrack.Psweeper.deferred_bytes ps));
          ]);
    }
  | Dang_san ->
    let ds = Ptrtrack.Dangsan.create machine in
    {
      scheme = scheme_name scheme;
      machine;
      obs = None;
      trace = None;
      malloc = Ptrtrack.Dangsan.malloc ds;
      malloc_site = (fun ~site:_ size -> Ptrtrack.Dangsan.malloc ds size);
      free = (fun ~thread:_ addr -> Ptrtrack.Dangsan.free ds addr);
      tick = (fun () -> ());
      drain = (fun () -> ());
      reclaim = (fun () -> ());
      quarantine_bytes = (fun () -> 0);
      live_bytes = (fun () -> Ptrtrack.Dangsan.live_bytes ds);
      metadata_bytes = (fun () -> Ptrtrack.Dangsan.metadata_bytes ds);
      cold_penalty = cold_penalty_fn machine 0.1;
      is_protected_addr = (fun _ -> false);
      tolerates_double_free = false;
      on_pointer_write =
        (fun ~slot ~old_value ~value ->
          Ptrtrack.Dangsan.on_pointer_write ds ~slot ~old_value ~value);
      sweeps = (fun () -> 0);
      failed_frees = (fun () -> 0);
      extra =
        (fun () ->
          [ ("log_entries", float_of_int (Ptrtrack.Dangsan.log_entries ds)) ]);
    }
  | Ff_malloc ->
    let ff = Ffmalloc.create machine in
    {
      scheme = scheme_name scheme;
      machine;
      obs = None;
      trace = None;
      malloc = Ffmalloc.malloc ff;
      malloc_site = (fun ~site:_ size -> Ffmalloc.malloc ff size);
      free = (fun ~thread:_ addr -> Ffmalloc.free ff addr);
      tick = (fun () -> ());
      drain = (fun () -> ());
      reclaim = (fun () -> ()) (* never reuses: nothing held back to purge *);
      quarantine_bytes = (fun () -> 0);
      live_bytes = (fun () -> Ffmalloc.live_bytes ff);
      metadata_bytes = (fun () -> 0);
      cold_penalty = cold_penalty_fn machine 0.05;
      is_protected_addr = (fun addr -> Ffmalloc.is_freed_address ff addr);
      tolerates_double_free = false;
      on_pointer_write = no_pointer_tracking;
      sweeps = (fun () -> 0);
      failed_frees = (fun () -> 0);
      extra =
        (fun () ->
          [ ("va_consumed", float_of_int (Ffmalloc.va_consumed ff)) ]);
    }
  | Pooled plan ->
    let plan =
      match plan with
      | Some p -> p
      | None -> Alloc.Poolalloc.identity_plan ~sites:default_pool_sites
    in
    let pa = Alloc.Poolalloc.create ~plan machine in
    let reg = Obs.Registry.create () in
    Alloc.Poolalloc.attach_obs pa reg;
    {
      scheme = scheme_name scheme;
      machine;
      obs = Some reg;
      trace = None;
      malloc = Alloc.Poolalloc.malloc pa;
      malloc_site =
        (fun ~site size -> Alloc.Poolalloc.malloc_site pa ~site size);
      free = (fun ~thread:_ addr -> Alloc.Poolalloc.free pa addr);
      tick = (fun () -> ());
      drain = (fun () -> ());
      reclaim =
        (fun () ->
          Alloc.Machine.with_sink machine Alloc.Machine.Background (fun () ->
              Alloc.Poolalloc.purge_all pa));
      quarantine_bytes = (fun () -> Alloc.Poolalloc.retired_bytes pa);
      live_bytes = (fun () -> Alloc.Poolalloc.live_bytes pa);
      metadata_bytes = (fun () -> 0);
      (* Segregation delays spatial reuse a little; far milder than a
         quarantine since pools recycle their own slots immediately. *)
      cold_penalty = cold_penalty_fn machine 0.05;
      is_protected_addr = (fun _ -> false);
      tolerates_double_free = false;
      on_pointer_write = no_pointer_tracking;
      sweeps = (fun () -> 0);
      failed_frees = (fun () -> 0);
      extra =
        (fun () ->
          [
            ("pools",
             float_of_int (Alloc.Poolalloc.plan pa).Alloc.Poolalloc.pools);
            ("footprint_bytes",
             float_of_int (Alloc.Poolalloc.footprint_bytes pa));
            ("retired_bytes",
             float_of_int (Alloc.Poolalloc.retired_bytes pa));
          ]);
    }
