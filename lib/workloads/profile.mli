(** A workload profile: the synthetic stand-in for one benchmark binary.

    The paper's overheads are functions of a few observable properties of
    each benchmark — allocation rate relative to compute, object-size and
    lifetime distributions, live-heap size, phase behaviour, and how the
    program treats pointers to freed objects. A profile captures those
    properties; {!Driver} turns it into a concrete operation trace
    against a real allocator stack, with object addresses genuinely
    written into (and cleared from) simulated memory so that sweeps and
    marking see a realistic reference graph. *)

type t = {
  name : string;
  suite : string;
  ops : int;  (** allocation events in the trace *)
  size : Sim.Dist.t;  (** request sizes, bytes *)
  lifetime : Sim.Dist.t;  (** object lifetimes, in allocation events *)
  lifetime_large : Sim.Dist.t option;
      (** separate lifetimes for large (>= 16 KiB) objects; real
          programs' big buffers live much longer than their nodes *)
  work_per_op : int;  (** application compute cycles between allocations *)
  pointer_density : float;
      (** probability a new object's address is stored (and tracked) in
          another live object or a root slot *)
  root_fraction : float;
      (** of tracked pointers, the fraction stored in stack/globals *)
  dangling_rate : float;
      (** probability a tracked pointer is left behind (dangling) when
          its target is freed *)
  false_pointer_rate : float;
      (** probability per allocation of writing an untracked word that
          aliases a live heap address ("unlucky data") *)
  back_pointer_rate : float;
      (** probability a new object also stores a pointer back to its
          holder (parent/prev pointers), creating the cyclic structures
          that make zeroing essential (Section 4.1, Figure 6) *)
  phase_ops : int option;
      (** if set, every [phase_ops] events the program drops most of its
          live structures and rebuilds (gcc-style phases) *)
  phase_kill : float;  (** fraction of live objects dropped at a phase edge *)
  threads : int;  (** application threads (thread-local buffer pressure) *)
  leak_rate : float;  (** fraction of objects never freed *)
  cache_sensitivity : float;
      (** how strongly the benchmark's performance depends on allocator
          locality; scales the delayed-reuse cache penalty *)
  sites : int;
      (** distinct allocation sites the generator attributes allocs to;
          a site is a stable function of the sampled size class, standing
          in for a call-site/type key (siteflow pooling analysis) *)
  seed : int;
}

val make :
  name:string ->
  suite:string ->
  ops:int ->
  size:Sim.Dist.t ->
  lifetime:Sim.Dist.t ->
  ?lifetime_large:Sim.Dist.t ->
  work_per_op:int ->
  ?pointer_density:float ->
  ?root_fraction:float ->
  ?dangling_rate:float ->
  ?false_pointer_rate:float ->
  ?back_pointer_rate:float ->
  ?phase_ops:int option ->
  ?phase_kill:float ->
  ?threads:int ->
  ?leak_rate:float ->
  ?cache_sensitivity:float ->
  ?sites:int ->
  ?seed:int ->
  unit ->
  t

val scale_ops : float -> t -> t
(** Shrink or grow the trace length, e.g. for quick test runs. *)
