type t = {
  name : string;
  suite : string;
  ops : int;
  size : Sim.Dist.t;
  lifetime : Sim.Dist.t;
  lifetime_large : Sim.Dist.t option;
  work_per_op : int;
  pointer_density : float;
  root_fraction : float;
  dangling_rate : float;
  false_pointer_rate : float;
  back_pointer_rate : float;
  phase_ops : int option;
  phase_kill : float;
  threads : int;
  leak_rate : float;
  cache_sensitivity : float;
  sites : int;
  seed : int;
}

let make ~name ~suite ~ops ~size ~lifetime ?lifetime_large ~work_per_op
    ?(pointer_density = 0.9) ?(root_fraction = 0.12) ?(dangling_rate = 0.004)
    ?(false_pointer_rate = 0.002) ?(back_pointer_rate = 0.15)
    ?(phase_ops = None) ?(phase_kill = 0.7)
    ?(threads = 1) ?(leak_rate = 0.0005) ?(cache_sensitivity = 0.2)
    ?(sites = 8) ?(seed = 42) () =
  {
    name;
    suite;
    ops;
    size;
    lifetime;
    lifetime_large;
    work_per_op;
    pointer_density;
    root_fraction;
    dangling_rate;
    false_pointer_rate;
    back_pointer_rate;
    phase_ops;
    phase_kill;
    threads;
    leak_rate;
    cache_sensitivity;
    sites;
    seed;
  }

let scale_ops f t =
  let ops = max 1000 (int_of_float (f *. float_of_int t.ops)) in
  let phase_ops =
    Option.map
      (fun p -> max 500 (int_of_float (f *. float_of_int p)))
      t.phase_ops
  in
  { t with ops; phase_ops }
