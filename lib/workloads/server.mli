(** Server-traffic workload family: request/response churn under an
    open-loop load generator, with tail-latency accounting.

    The batch driver ({!Driver}) measures total cycles; a serving system
    cares about the {e tail} of per-request latency, where sweep pauses
    and allocation stalls surface as queueing delay. This family models a
    single-worker server:

    - requests arrive at absolute cycle timestamps drawn from an
      {!Sim.Arrival.process} — {e open-loop}: the generator never
      observes the service side, so when the allocator stalls the backlog
      grows instead of the offered load politely slowing down;
    - each request allocates a per-request arena (a handful of objects),
      writes into them, performs service work, and frees the arena on
      completion — allocator-heavy churn with occasional leaks and
      dangling pointers;
    - connections churn in the background: every N-th request opens a
      connection (longer-lived buffers) and the oldest connection closes
      once a cap is reached.

    Latency is decomposed with a coupled pair of Lindley recursions: the
    real FIFO queue uses the measured per-request service time [s] (which
    includes allocation/sweep stalls [st]); a shadow stall-free queue
    replays the {e same arrivals} with service [s - st]. The difference
    of the two sojourn times is the {b stall-induced latency} — it counts
    both the stall itself and the queueing it inflicts on later requests,
    and is provably [>= 0]. Quantiles are read from [srv.*] histograms
    via {!Obs.Registry.Histogram.quantile} (within-bucket interpolation).

    Metrics are registered into the stack's own registry when it has one
    (MineSweeper schemes), so one export carries [ms.*] and [srv.*]
    side by side; slow requests additionally emit [Request] spans. *)

type profile = {
  name : string;
  description : string;
  arrival : Sim.Arrival.process;
  requests : int;  (** arrivals to generate (open-loop offered load) *)
  allocs_per_request : Sim.Dist.t;  (** arena objects per request *)
  request_size : Sim.Dist.t;  (** bytes per arena object *)
  service_work : Sim.Dist.t;  (** application cycles per request *)
  connection_every : int;  (** open a connection every N requests *)
  connection_buffers : int;  (** buffers allocated per connection *)
  connection_size : Sim.Dist.t;  (** bytes per connection buffer *)
  max_connections : int;  (** oldest connection closes beyond this *)
  leak_rate : float;  (** P(request leaks one arena object) *)
  dangling_rate : float;
      (** P(request frees an object but leaves a root pointer dangling) *)
  cache_sensitivity : float;  (** scales the stack's cold-reuse penalty *)
  seed : int;
}

val profiles : profile list
(** The built-in family: [steady] (Poisson), [bursty] (MMPP), [diurnal]
    (sinusoidal modulation), [spike] (flash crowd) and [slow-leak]
    (steady traffic with elevated leak/dangling rates). *)

val names : string list
val find : string -> profile option

val scale : float -> profile -> profile
(** Scale the offered load for smoke runs: multiplies [requests] and the
    time-anchored arrival parameters (spike window, diurnal period) by
    the factor, keeping the process shape at a shorter horizon. *)

type quantiles = { p50 : float; p99 : float; p999 : float }

type result = {
  profile : string;
  scheme : string;
  requests : int;  (** arrivals offered (= generated timestamps) *)
  completed : int;  (** requests fully served *)
  wall : int;
  app_busy : int;
  stalled : int;
  latency : quantiles;  (** total sojourn time (queue + service) *)
  stall_latency : quantiles;
      (** stall-induced share of the sojourn time (see above) *)
  queue_wait : quantiles;
  service : quantiles;
  max_queue_depth : int;
  peak_rss : int;
  avg_rss : float;
  sweeps : int;
  failed_frees : int;
  leaked : int;
  dangling_left : int;
  arrivals : int array;
      (** the offered arrival timestamps, strictly increasing — a pure
          function of (profile, seed), identical across schemes (the
          open-loop property; asserted by tests) *)
  oom_killed : bool;
  extra : (string * float) list;
}

(** {1 Session API}

    The step-wise interface lets a caller (the attack scenarios)
    interleave its own allocator traffic with live requests. *)

type session

val start : ?rss_limit:int -> ?seed:int -> profile -> Harness.t -> session
(** Maps the root regions and pre-generates the open-loop arrival
    timeline. [seed] overrides the profile's seed (used by repeat
    derivation). Registers the [srv.*] metrics into the stack's registry
    when it has one. *)

val total_requests : session -> int
val served : session -> int

val registry : session -> Obs.Registry.t
(** The registry the [srv.*] metrics live in: the stack's own registry
    when it has one, otherwise the private one the session created. The
    fleet aggregator merges these across tenants. *)

val set_external_stall : session -> (unit -> int) -> unit
(** Install a machine-interference feed: before serving each request the
    session asks the callback for stall cycles to charge (sink [Stall])
    {e inside} the request's measurement window, so they surface in the
    [srv.latency] and [srv.stall_latency] quantiles and compound through
    the queueing recursion like any other stall. The fleet scheduler uses
    this to make one tenant's STW sweep visible in its neighbours'
    tails; the callback must be deterministic for exports to stay
    byte-identical. *)

val step : session -> bool
(** Serve the next request; [false] once the timeline is exhausted (or
    the memory budget was exceeded — never raises). *)

val finish : session -> result
(** Drain the stack and assemble the result. *)

(** {1 One-shot runs} *)

val run :
  ?scale:float ->
  ?seed:int ->
  ?rss_limit:int ->
  ?on_build:(Harness.t -> unit) ->
  profile ->
  Harness.scheme ->
  result

val run_repeats :
  ?scale:float -> repeats:int -> profile -> Harness.scheme -> result list
(** [run_repeats ~repeats profile scheme] runs the profile [repeats]
    times. Repeat 0 uses the profile's own seed; repeat [i > 0] uses
    [Sim.Rng.split_seed ~seed:profile.seed ~index:i] — independent
    streams per repeat (correlated replicas bias median-of-N tail
    estimates), deterministic given the top-level seed. *)

val median : float list -> float
(** Median of a non-empty list (mean of the middle pair for even
    lengths); 0. for the empty list. Used for median-of-N reporting. *)

val to_trace : ?seed:int -> profile -> Trace.t
(** Lower the profile into a portable batch allocation trace
    ({!Trace.t}): per-request arenas become alloc/store/free/work runs,
    connection churn becomes longer-lived objects. The open-loop
    timestamps are not representable in a batch trace and are dropped;
    the lowering exists so server workloads round-trip through the trace
    tooling (serialisation, lint, replay against any scheme). *)
