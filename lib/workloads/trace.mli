(** Portable allocation traces: generate, serialise, replay.

    A trace is a self-contained program of allocator events — object
    ids, not addresses — so the same workload can be replayed bit-for-
    bit against any allocator stack, saved to a text file, inspected or
    edited by hand, and shared (the role SPEC run scripts play in the
    paper's artifact). {!generate} derives a trace from a {!Profile.t};
    {!replay} executes one against a {!Harness.t}. *)

type location =
  | Root of int  (** word index into the root (stack/globals) window *)
  | Field of int * int  (** object id, word index within the object *)

type op =
  | Alloc of { id : int; size : int; site : int }
      (** allocation attributed to static site [site]. Serialised as
          [a id size site], with the site column omitted when 0 so
          site-free traces keep the compact v1 form. Site ids outside
          [0, sites) alias site 0 (flagged by the
          [alloc-site-out-of-range] lint rule). *)
  | Store_ptr of { loc : location; target : int }
      (** instrumented pointer store: [&target] written at [loc] *)
  | Clear_ptr of { loc : location; target : int }
      (** well-behaved clear: write 0 at [loc] if it still points at
          [target] *)
  | Store_data of { loc : location; value : int }
      (** raw data write (never instrumented) *)
  | Free of { id : int; thread : int }
      (** free issued from logical thread [thread] — selects the
          quarantine's thread-local buffer at replay. Ids outside
          [0, threads) alias buffer 0 (flagged by the
          [free-thread-out-of-range] lint rule). *)
  | Work of int  (** application compute, cycles *)

type t = {
  name : string;
  threads : int;
      (** declared mutator thread count; serialised as a [# threads N]
          header line (omitted, and 1, for single-threaded traces) *)
  sites : int;
      (** declared allocation-site count; serialised as a [# sites N]
          header line (omitted, and 1, for site-free traces, so old
          traces parse unchanged) *)
  ops : op array;
}

val clamp_site : sites:int -> int -> int
(** [clamp_site ~sites site] is [site] when it lies in [0, sites) and 0
    otherwise — the aliasing rule replay and analysis share. *)

val site_of_size : sites:int -> int -> int
(** The generator's stable site key: the log2 size-class bucket of the
    request folded onto [0, sites). A pure function of the size so
    trace generation, [Driver]'s synthetic load, and any re-derivation
    agree on the attribution. *)

val root_window_words : int
(** Size of the root (stack/globals) window in words. {!replay} resolves
    [Root w] as [w mod root_window_words]; the lint pass flags indices
    that would wrap. *)

val generate : ?seed:int -> Profile.t -> t
(** Derive a concrete trace from a profile: allocations with sampled
    sizes, deaths on schedule, pointer publications and (mostly) clears
    before frees, occasional unlucky integers. Deterministic in the
    seed. *)

val replay : t -> Harness.t -> int
(** Execute the trace against a stack; returns the number of operations
    executed. Stores into objects that are already freed (or into ids
    never allocated) are skipped — a trace is replayable against any
    scheme regardless of its recycling decisions. *)

val length : t -> int
val allocation_count : t -> int

(** {1 Text serialisation} *)

val to_string : t -> string
val of_string : string -> t
(** @raise Failure on malformed input, with a line number. *)

val to_file : t -> string -> unit
val of_file : string -> t

(** {1 Chunked streaming}

    A one-pass, constant-memory view of a trace: ops are pulled through
    a bounded chunk buffer ([chunk_ops], default 4096) instead of being
    materialised as an array. [stream_of_file] reads the file line by
    line, so folding a stream holds at most one chunk of ops plus the
    consumer's own state — memory independent of trace length. The
    chunked fold and {!of_string} share one line parser, so they agree
    exactly (including parse errors and their line numbers). *)

type stream

val default_chunk_ops : int
(** 4096. *)

val stream_of_string : ?chunk_ops:int -> string -> stream
val stream_of_file : ?chunk_ops:int -> string -> stream
val stream_of_trace : ?chunk_ops:int -> t -> stream

val stream_name : stream -> string
(** Trace name. Header lines at the top of the input are consumed at
    stream construction; a header buried below the first op is only
    reflected once the fold has passed it. *)

val stream_threads : stream -> int
(** Declared mutator thread count (see {!stream_name} for timing). *)

val stream_sites : stream -> int
(** Declared allocation-site count (see {!stream_name} for timing). *)

val fold_stream : stream -> init:'a -> f:('a -> int -> op -> 'a) -> 'a
(** [fold_stream st ~init ~f] applies [f acc op_index op] over every op
    in order. Single-shot: a stream can only be folded once.
    @raise Failure on malformed input, with a line number.
    @raise Invalid_argument if the stream was already consumed. *)
