(* Server-traffic workload family. See server.mli for the model.

   The core accounting trick is the coupled Lindley recursion pair: with
   arrival timestamps a_k and measured per-request service s_k (wall
   cycles, stalls included) the real FIFO queue evolves as

     start_k  = max (finish_{k-1}, a_k)      finish_k = start_k + s_k

   and a shadow stall-free queue replays the same arrivals with service
   s_k - st_k (st_k = stall cycles measured inside request k):

     start0_k = max (finish0_{k-1}, a_k)     finish0_k = start0_k + s_k - st_k

   stall_latency_k = (finish_k - a_k) - (finish0_k - a_k)
                   = finish_k - finish0_k  >= 0   (by induction: s >= s - st
                     and max is monotone), so the metric captures both the
   stall itself and the queueing it inflicts on every later request —
   which is exactly what an open-loop client observes. *)

type profile = {
  name : string;
  description : string;
  arrival : Sim.Arrival.process;
  requests : int;
  allocs_per_request : Sim.Dist.t;
  request_size : Sim.Dist.t;
  service_work : Sim.Dist.t;
  connection_every : int;
  connection_buffers : int;
  connection_size : Sim.Dist.t;
  max_connections : int;
  leak_rate : float;
  dangling_rate : float;
  cache_sensitivity : float;
  seed : int;
}

(* A benign word servers write into request buffers: below the heap base,
   distinct from the attack module's vtable constants, so reused memory
   is visibly overwritten by legitimate traffic. *)
let payload_word = 0x000B_EEF0

let word = Vmem.word_size

let p ~name ~description ~arrival ?(requests = 30_000)
    ?(allocs_per_request = Sim.Dist.uniform ~lo:4 ~hi:12)
    ?(request_size = Sim.Dist.pareto ~shape:1.3 ~scale:64 ~cap:8192)
    ?(service_work = Sim.Dist.exponential ~mean:1600.)
    ?(connection_every = 64) ?(connection_buffers = 4)
    ?(connection_size = Sim.Dist.uniform ~lo:512 ~hi:4096)
    ?(max_connections = 256) ?(leak_rate = 0.0) ?(dangling_rate = 0.002)
    ?(cache_sensitivity = 0.3) ~seed () =
  {
    name;
    description;
    arrival;
    requests;
    allocs_per_request;
    request_size;
    service_work;
    connection_every;
    connection_buffers;
    connection_size;
    max_connections;
    leak_rate;
    dangling_rate;
    cache_sensitivity;
    seed;
  }

let profiles =
  [
    p ~name:"steady" ~description:"constant-rate Poisson traffic"
      ~arrival:(Sim.Arrival.Poisson { rate = 320. })
      ~seed:7001 ();
    p ~name:"bursty" ~description:"MMPP on/off bursts (quiet vs storm)"
      ~arrival:
        (Sim.Arrival.Mmpp
           { rate_lo = 150.; rate_hi = 700.; dwell_lo = 400_000; dwell_hi = 150_000 })
      ~seed:7002 ();
    p ~name:"diurnal" ~description:"sinusoidally modulated day/night load"
      ~arrival:
        (Sim.Arrival.Diurnal { rate = 280.; period = 2_000_000; depth = 0.6 })
      ~seed:7003 ();
    p ~name:"spike" ~description:"flash crowd: 4x rate for a window"
      ~arrival:
        (Sim.Arrival.Spike
           { rate = 240.; spike_at = 20_000_000; spike_len = 8_000_000; spike_mult = 4.0 })
      ~seed:7004 ();
    p ~name:"slow-leak"
      ~description:"steady traffic with leaking handlers and dangling pointers"
      ~arrival:(Sim.Arrival.Poisson { rate = 300. })
      ~leak_rate:0.02 ~dangling_rate:0.01 ~seed:7005 ();
  ]

let names = List.map (fun pr -> pr.name) profiles
let find name = List.find_opt (fun pr -> pr.name = name) profiles

let scale factor pr =
  if factor = 1.0 then pr
  else begin
    let s n = max 1 (int_of_float (float_of_int n *. factor)) in
    let arrival =
      match pr.arrival with
      | Sim.Arrival.Spike { rate; spike_at; spike_len; spike_mult } ->
        Sim.Arrival.Spike
          { rate; spike_at = s spike_at; spike_len = s spike_len; spike_mult }
      | Sim.Arrival.Diurnal { rate; period; depth } ->
        Sim.Arrival.Diurnal { rate; period = s period; depth }
      | (Sim.Arrival.Poisson _ | Sim.Arrival.Mmpp _) as a -> a
    in
    { pr with requests = s pr.requests; arrival }
  end

type quantiles = { p50 : float; p99 : float; p999 : float }

type result = {
  profile : string;
  scheme : string;
  requests : int;
  completed : int;
  wall : int;
  app_busy : int;
  stalled : int;
  latency : quantiles;
  stall_latency : quantiles;
  queue_wait : quantiles;
  service : quantiles;
  max_queue_depth : int;
  peak_rss : int;
  avg_rss : float;
  sweeps : int;
  failed_frees : int;
  leaked : int;
  dangling_left : int;
  arrivals : int array;
  oom_killed : bool;
  extra : (string * float) list;
}

exception Out_of_memory_budget

type session = {
  sp : profile;
  stack : Harness.t;
  reg : Obs.Registry.t;
  ring : Obs.Trace_ring.t;
  arrivals : int array;
  rng : Sim.Rng.t;  (* leak/dangling coin flips, dangling slot choice *)
  size_rng : Sim.Rng.t;
  work_rng : Sim.Rng.t;
  sampler : Sim.Sampler.t;
  h_latency : Obs.Registry.histogram;
  h_stall : Obs.Registry.histogram;
  h_queue : Obs.Registry.histogram;
  h_service : Obs.Registry.histogram;
  c_requests : Obs.Registry.counter;
  c_completed : Obs.Registry.counter;
  c_leaked : Obs.Registry.counter;
  c_dangling : Obs.Registry.counter;
  g_depth : Obs.Registry.gauge;
  g_connections : Obs.Registry.gauge;
  connections : int array Queue.t;
  slow_span : int;  (* latency above which a Request span is emitted *)
  sample_every : int;
  rss_limit : int;
  mutable next_req : int;
  mutable arrival_ptr : int;  (* arrivals.(0..ptr-1) are <= current start *)
  mutable server_time : int;  (* finish_{k-1} of the real queue *)
  mutable ideal_time : int;  (* finish0_{k-1} of the stall-free queue *)
  mutable completed : int;
  mutable leaked : int;
  mutable dangling : int;
  mutable max_depth : int;
  mutable oom : bool;
  mutable external_stall : (unit -> int) option;
      (* machine-level interference: cycles of stall to charge inside the
         next request's measurement window (fleet neighbour pressure) *)
}

let machine (s : session) = s.stack.Harness.machine
let mem s = (machine s).Alloc.Machine.mem
let clock s = (machine s).Alloc.Machine.clock

let start ?(rss_limit = 768 * 1024 * 1024) ?seed sp (stack : Harness.t) =
  let seed = Option.value seed ~default:sp.seed in
  List.iter
    (fun (base, size) ->
      if not (Vmem.is_mapped stack.Harness.machine.Alloc.Machine.mem base) then
        Vmem.map stack.Harness.machine.Alloc.Machine.mem ~addr:base ~len:size)
    Layout.root_regions;
  let rng = Sim.Rng.create seed in
  let arrival_rng = Sim.Rng.split rng in
  let size_rng = Sim.Rng.split rng in
  let work_rng = Sim.Rng.split rng in
  let gen = Sim.Arrival.make sp.arrival arrival_rng in
  let arrivals = Sim.Arrival.take gen sp.requests in
  let reg =
    match stack.Harness.obs with Some r -> r | None -> Obs.Registry.create ()
  in
  let ring =
    match stack.Harness.trace with
    | Some r -> r
    | None -> Obs.Trace_ring.create ()
  in
  let slow_span =
    let per_alloc = 60. in
    4
    * int_of_float
        (Sim.Dist.mean_estimate sp.service_work
        +. (per_alloc *. Sim.Dist.mean_estimate sp.allocs_per_request))
  in
  {
    sp;
    stack;
    reg;
    ring;
    arrivals;
    rng;
    size_rng;
    work_rng;
    sampler = Sim.Sampler.create ();
    h_latency = Obs.Registry.histogram reg "srv.latency";
    h_stall = Obs.Registry.histogram reg "srv.stall_latency";
    h_queue = Obs.Registry.histogram reg "srv.queue_wait";
    h_service = Obs.Registry.histogram reg "srv.service";
    c_requests = Obs.Registry.counter reg "srv.requests";
    c_completed = Obs.Registry.counter reg "srv.completed";
    c_leaked = Obs.Registry.counter reg "srv.leaked_objects";
    c_dangling = Obs.Registry.counter reg "srv.dangling_ptrs";
    g_depth = Obs.Registry.gauge reg "srv.queue_depth_max";
    g_connections = Obs.Registry.gauge reg "srv.connections";
    connections = Queue.create ();
    slow_span;
    sample_every = max 1 (Array.length arrivals / 240);
    rss_limit;
    next_req = 0;
    arrival_ptr = 0;
    server_time = 0;
    ideal_time = 0;
    completed = 0;
    leaked = 0;
    dangling = 0;
    max_depth = 0;
    oom = false;
    external_stall = None;
  }

let set_external_stall s f = s.external_stall <- Some f

let total_requests s = Array.length s.arrivals
let served s = s.completed
let registry s = s.reg

(* Driver.static_rss is not exported; the server family carries the same
   whole-process constant so RSS figures are comparable across drivers. *)
let static_rss = 3 * 1024 * 1024

let record_rss s =
  let rss =
    static_rss
    + Vmem.committed_bytes (mem s)
    + s.stack.Harness.metadata_bytes ()
  in
  Sim.Sampler.record s.sampler ~now:(Sim.Clock.now (clock s)) ~rss;
  if rss > s.rss_limit then raise Out_of_memory_budget

(* An instrumented pointer store, as the compiler pass would emit. *)
let store_ptr s slot value =
  let old_value = Vmem.load (mem s) slot in
  Vmem.store (mem s) slot value;
  s.stack.Harness.on_pointer_write ~slot ~old_value ~value

(* Root slots for deliberately-dangling pointers live above the first KiB
   of the globals window, which the attack scenarios use for their own
   victim/credential slots. *)
let dangling_root_slot s =
  let lo = 1024 in
  Layout.globals_base + lo
  + word * Sim.Rng.int s.rng ((Layout.globals_size - lo) / word)

let open_connection s =
  let bufs =
    Array.init s.sp.connection_buffers (fun _ ->
        let size = Sim.Dist.sample s.sp.connection_size s.size_rng in
        let addr = s.stack.Harness.malloc size in
        Alloc.Machine.charge (machine s)
          (int_of_float
             (s.sp.cache_sensitivity
             *. float_of_int (s.stack.Harness.cold_penalty size)));
        Vmem.store (mem s) addr payload_word;
        addr)
  in
  Queue.push bufs s.connections;
  if Queue.length s.connections > s.sp.max_connections then begin
    let old = Queue.pop s.connections in
    Array.iter (fun addr -> s.stack.Harness.free ~thread:0 addr) old
  end;
  Obs.Registry.Gauge.set s.g_connections (Queue.length s.connections)

let serve_one s k =
  let a = s.arrivals.(k) in
  let w0 = Sim.Clock.wall (clock s) in
  let st0 = Sim.Clock.stalled (clock s) in
  Obs.Registry.Counter.incr s.c_requests 1;
  (* Neighbour interference lands inside the measurement window (after
     w0/st0 are read) so it flows into sv and st below, and from there
     into the latency and stall-latency Lindley recursions — an open-loop
     client cannot tell whose sweep delayed its request. *)
  (match s.external_stall with
  | None -> ()
  | Some f ->
    let n = f () in
    if n > 0 then
      Alloc.Machine.with_sink (machine s) Alloc.Machine.Stall (fun () ->
          Alloc.Machine.charge (machine s) n));
  if s.sp.connection_every > 0 && k mod s.sp.connection_every = 0 then
    open_connection s;
  (* Per-request arena. *)
  let n = max 1 (Sim.Dist.sample s.sp.allocs_per_request s.size_rng) in
  let arena =
    Array.init n (fun _ ->
        let size = Sim.Dist.sample s.sp.request_size s.size_rng in
        let addr = s.stack.Harness.malloc size in
        Alloc.Machine.charge (machine s)
          (int_of_float
             (s.sp.cache_sensitivity
             *. float_of_int (s.stack.Harness.cold_penalty size)));
        Vmem.store (mem s) addr payload_word;
        addr)
  in
  (* A buggy handler publishes a root pointer it will never clear. *)
  if Sim.Rng.bool s.rng s.sp.dangling_rate then begin
    store_ptr s (dangling_root_slot s) arena.(0);
    s.dangling <- s.dangling + 1;
    Obs.Registry.Counter.incr s.c_dangling 1
  end;
  Alloc.Machine.charge (machine s) (Sim.Dist.sample s.sp.service_work s.work_rng);
  (* Tear the arena down; a leaking handler forgets its last object. *)
  let leak = Sim.Rng.bool s.rng s.sp.leak_rate in
  let keep = if leak then n - 1 else n in
  for i = 0 to keep - 1 do
    s.stack.Harness.free ~thread:0 arena.(i)
  done;
  if leak then begin
    s.leaked <- s.leaked + 1;
    Obs.Registry.Counter.incr s.c_leaked 1
  end;
  s.stack.Harness.tick ();
  (* Latency accounting (see the header comment). *)
  let sv = Sim.Clock.wall (clock s) - w0 in
  let st = Sim.Clock.stalled (clock s) - st0 in
  let begins = max s.server_time a in
  s.server_time <- begins + sv;
  let begins0 = max s.ideal_time a in
  s.ideal_time <- begins0 + (sv - st);
  let latency = s.server_time - a in
  let stall_latency = s.server_time - s.ideal_time in
  let queue_wait = begins - a in
  Obs.Registry.Histogram.observe s.h_latency latency;
  Obs.Registry.Histogram.observe s.h_stall stall_latency;
  Obs.Registry.Histogram.observe s.h_queue queue_wait;
  Obs.Registry.Histogram.observe s.h_service sv;
  (* Backlog when this request started: arrived minus completed. *)
  while
    s.arrival_ptr < Array.length s.arrivals
    && s.arrivals.(s.arrival_ptr) <= begins
  do
    s.arrival_ptr <- s.arrival_ptr + 1
  done;
  let depth = s.arrival_ptr - k in
  if depth > s.max_depth then s.max_depth <- depth;
  Obs.Registry.Gauge.set_max s.g_depth depth;
  if stall_latency > 0 || latency >= s.slow_span then
    Obs.Trace_ring.emit s.ring ~phase:Obs.Trace_ring.Request ~label:s.sp.name
      ~t_start:a ~t_end:(a + latency)
      ~attrs:
        [ ("latency", latency); ("stall", stall_latency); ("queue", queue_wait) ]
      ();
  s.completed <- s.completed + 1;
  Obs.Registry.Counter.incr s.c_completed 1;
  if k mod s.sample_every = 0 then record_rss s

let step s =
  if s.oom || s.next_req >= Array.length s.arrivals then false
  else begin
    let k = s.next_req in
    s.next_req <- k + 1;
    (try serve_one s k with Out_of_memory_budget -> s.oom <- true);
    (not s.oom) && s.next_req < Array.length s.arrivals
  end

let quantiles_of h =
  {
    p50 = Obs.Registry.Histogram.quantile h 0.5;
    p99 = Obs.Registry.Histogram.quantile h 0.99;
    p999 = Obs.Registry.Histogram.quantile h 0.999;
  }

let finish s =
  if not s.oom then begin
    s.stack.Harness.drain ();
    try record_rss s with Out_of_memory_budget -> s.oom <- true
  end;
  let clk = clock s in
  {
    profile = s.sp.name;
    scheme = s.stack.Harness.scheme;
    requests = Array.length s.arrivals;
    completed = s.completed;
    wall = Sim.Clock.wall clk;
    app_busy = Sim.Clock.app_busy clk;
    stalled = Sim.Clock.stalled clk;
    latency = quantiles_of s.h_latency;
    stall_latency = quantiles_of s.h_stall;
    queue_wait = quantiles_of s.h_queue;
    service = quantiles_of s.h_service;
    max_queue_depth = s.max_depth;
    peak_rss = Sim.Sampler.peak s.sampler;
    avg_rss = Sim.Sampler.average s.sampler;
    sweeps = s.stack.Harness.sweeps ();
    failed_frees = s.stack.Harness.failed_frees ();
    leaked = s.leaked;
    dangling_left = s.dangling;
    arrivals = s.arrivals;
    oom_killed = s.oom;
    extra = s.stack.Harness.extra ();
  }

let scale_profile = scale

let run ?(scale = 1.0) ?seed ?rss_limit ?on_build sp scheme =
  let sp = scale_profile scale sp in
  let machine = Alloc.Machine.create () in
  let stack = Harness.build scheme ~threads:1 machine in
  (match on_build with Some f -> f stack | None -> ());
  let s = start ?rss_limit ?seed sp stack in
  while step s do
    ()
  done;
  finish s

let run_repeats ?(scale = 1.0) ~repeats sp scheme =
  List.init (max 1 repeats) (fun i ->
      let seed =
        if i = 0 then sp.seed else Sim.Rng.split_seed ~seed:sp.seed ~index:i
      in
      run ~scale ~seed sp scheme)

let median xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    if n land 1 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

(* Lowering into a portable batch trace: the same request structure
   (arena allocs, payload stores, occasional dangling publication or
   leak, service work, arena teardown, connection churn) expressed as
   {!Trace.op}s over object ids. Open-loop timestamps have no batch
   equivalent and are dropped.

   Sites are semantic here, not size-derived: site 1 is the
   connection-buffer arena, site 0 the per-request arena — the two
   genuinely distinct allocation sites of the server loop. *)
let trace_sites = 2
let connection_site = 1
let request_site = 0

let to_trace ?seed sp =
  let seed = Option.value seed ~default:sp.seed in
  let rng = Sim.Rng.create seed in
  let _arrival_rng = Sim.Rng.split rng in
  let size_rng = Sim.Rng.split rng in
  let work_rng = Sim.Rng.split rng in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let connections : int list Queue.t = Queue.create () in
  let root_slot () = Sim.Rng.int rng Trace.root_window_words in
  for k = 0 to sp.requests - 1 do
    if sp.connection_every > 0 && k mod sp.connection_every = 0 then begin
      let ids =
        List.init sp.connection_buffers (fun _ ->
            let id = fresh () in
            let size = Sim.Dist.sample sp.connection_size size_rng in
            emit (Trace.Alloc { id; size; site = connection_site });
            emit
              (Trace.Store_data
                 { loc = Trace.Field (id, 0); value = payload_word });
            id)
      in
      Queue.push ids connections;
      if Queue.length connections > sp.max_connections then
        List.iter
          (fun id -> emit (Trace.Free { id; thread = 0 }))
          (Queue.pop connections)
    end;
    let n = max 1 (Sim.Dist.sample sp.allocs_per_request size_rng) in
    let arena =
      List.init n (fun _ ->
          let id = fresh () in
          let size = Sim.Dist.sample sp.request_size size_rng in
          emit (Trace.Alloc { id; size; site = request_site });
          emit
            (Trace.Store_data { loc = Trace.Field (id, 0); value = payload_word });
          id)
    in
    if Sim.Rng.bool rng sp.dangling_rate then
      emit
        (Trace.Store_ptr { loc = Trace.Root (root_slot ()); target = List.hd arena });
    emit (Trace.Work (Sim.Dist.sample sp.service_work work_rng));
    let leak = Sim.Rng.bool rng sp.leak_rate in
    let keep = if leak then n - 1 else n in
    List.iteri
      (fun i id -> if i < keep then emit (Trace.Free { id; thread = 0 }))
      arena
  done;
  {
    Trace.name = sp.name;
    threads = 1;
    sites = trace_sites;
    ops = Array.of_list (List.rev !ops);
  }
