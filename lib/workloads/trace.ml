type location =
  | Root of int
  | Field of int * int

type op =
  | Alloc of { id : int; size : int; site : int }
  | Store_ptr of { loc : location; target : int }
  | Clear_ptr of { loc : location; target : int }
  | Store_data of { loc : location; value : int }
  | Free of { id : int; thread : int }
  | Work of int

type t = {
  name : string;
  threads : int;
  sites : int;
  ops : op array;
}

(* Site ids out of [0, sites) alias site 0 — the same convention the
   free-thread column uses, so malformed traces stay replayable (the
   lint pass flags them). *)
let clamp_site ~sites site = if site >= 0 && site < sites then site else 0

let length t = Array.length t.ops

let allocation_count t =
  Array.fold_left
    (fun acc op -> match op with Alloc _ -> acc + 1 | _ -> acc)
    0 t.ops

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)

let root_window_words = 8192

(* The stable allocation-site key: a pure function of the sampled size
   (log2 size-class bucket, folded onto [0, sites)), standing in for the
   call-site/type key a compiler pass would emit. Being a function of
   the size alone keeps the generator's RNG streams untouched and lets
   [Driver] attribute its own mallocs to the same sites. *)
let site_of_size ~sites size =
  if sites <= 1 then 0
  else begin
    let rec bucket acc n = if n <= 8 then acc else bucket (acc + 1) (n lsr 1) in
    bucket 0 (max 1 size) mod sites
  end

let generate ?(seed = 1) profile =
  let rng = Sim.Rng.create (seed lxor profile.Profile.seed) in
  let size_rng = Sim.Rng.split rng in
  let life_rng = Sim.Rng.split rng in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let live = ref [] in (* (id, size, refs) most-recent first *)
  let live_count = ref 0 in
  let deaths = Hashtbl.create 1024 in
  let refs = Hashtbl.create 1024 in (* id -> (location * target) list *)
  let pick_live () =
    if !live_count = 0 then None
    else begin
      let n = Sim.Rng.int rng !live_count in
      List.nth_opt !live n
    end
  in
  let total = profile.Profile.ops in
  for i = 0 to total - 1 do
    (match Hashtbl.find_opt deaths i with
    | Some ids ->
      Hashtbl.remove deaths i;
      List.iter
        (fun id ->
          (* Clear (most of) the pointers to the dying object first. *)
          List.iter
            (fun loc ->
              if not (Sim.Rng.bool rng profile.Profile.dangling_rate) then
                emit (Clear_ptr { loc; target = id }))
            (Option.value ~default:[] (Hashtbl.find_opt refs id));
          Hashtbl.remove refs id;
          emit (Free { id; thread = 0 });
          live := List.filter (fun (x, _) -> x <> id) !live;
          decr live_count)
        ids
    | None -> ());
    let size = Sim.Dist.sample profile.Profile.size size_rng in
    let site = site_of_size ~sites:profile.Profile.sites size in
    emit (Alloc { id = i; size; site });
    live := (i, size) :: !live;
    incr live_count;
    if Sim.Rng.bool rng profile.Profile.pointer_density then begin
      let loc =
        if Sim.Rng.bool rng profile.Profile.root_fraction then
          Root (Sim.Rng.int rng root_window_words)
        else
          match pick_live () with
          | Some (h, hsize) when h <> i && hsize >= 8 ->
            Field (h, Sim.Rng.int rng (hsize / 8))
          | Some _ | None -> Root (Sim.Rng.int rng root_window_words)
      in
      emit (Store_ptr { loc; target = i });
      Hashtbl.replace refs i
        (loc :: Option.value ~default:[] (Hashtbl.find_opt refs i))
    end;
    if Sim.Rng.bool rng profile.Profile.false_pointer_rate then
      (* An unlucky integer: recorded as data so instrumented schemes do
         not see it. Value resolved at replay time from a live id. *)
      (match pick_live () with
      | Some (target, _) ->
        emit (Store_data { loc = Root (Sim.Rng.int rng root_window_words);
                           value = - target - 1 })
        (* negative values encode "address of object ~target" *)
      | None -> ());
    if not (Sim.Rng.bool rng profile.Profile.leak_rate) then begin
      let lifetime = Sim.Dist.sample profile.Profile.lifetime life_rng in
      let at = i + 1 + lifetime in
      if at < total then
        Hashtbl.replace deaths at
          (i :: Option.value ~default:[] (Hashtbl.find_opt deaths at))
    end;
    emit (Work profile.Profile.work_per_op)
  done;
  { name = profile.Profile.name; threads = 1;
    sites = max 1 profile.Profile.sites;
    ops = Array.of_list (List.rev !ops) }

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let replay t (stack : Harness.t) =
  let mem = stack.Harness.machine.Alloc.Machine.mem in
  let addr_of = Hashtbl.create 4096 in (* id -> (addr, size) *)
  let executed = ref 0 in
  let resolve_loc = function
    | Root w -> Some (Layout.stack_base + (8 * (w mod root_window_words)))
    | Field (id, w) ->
      (match Hashtbl.find_opt addr_of id with
      | Some (addr, size) when size >= 8 -> Some (addr + (8 * (w mod (size / 8))))
      | Some _ | None -> None)
  in
  let writable slot =
    Vmem.is_mapped mem slot
    && Vmem.is_committed mem slot
    && Vmem.protection mem slot = Vmem.Read_write
  in
  Array.iter
    (fun op ->
      incr executed;
      match op with
      | Alloc { id; size; site } ->
        let site = clamp_site ~sites:t.sites site in
        let addr = stack.Harness.malloc_site ~site size in
        Hashtbl.replace addr_of id (addr, size);
        stack.Harness.tick ()
      | Free { id; thread } ->
        (match Hashtbl.find_opt addr_of id with
        | Some (addr, _) ->
          Hashtbl.remove addr_of id;
          stack.Harness.free ~thread addr
        | None -> ())
      | Store_ptr { loc; target } ->
        (match (resolve_loc loc, Hashtbl.find_opt addr_of target) with
        | Some slot, Some (taddr, _) when writable slot ->
          let old_value = Vmem.load mem slot in
          Vmem.store mem slot taddr;
          stack.Harness.on_pointer_write ~slot ~old_value ~value:taddr
        | _ -> ())
      | Clear_ptr { loc; target } ->
        (match (resolve_loc loc, Hashtbl.find_opt addr_of target) with
        | Some slot, Some (taddr, _) when writable slot ->
          if Vmem.load mem slot = taddr then begin
            Vmem.store mem slot 0;
            stack.Harness.on_pointer_write ~slot ~old_value:taddr ~value:0
          end
        | _ -> ())
      | Store_data { loc; value } ->
        (match resolve_loc loc with
        | Some slot when writable slot ->
          let concrete =
            if value >= 0 then value
            else
              (* encoded "address of object ~(-value-1)" *)
              match Hashtbl.find_opt addr_of (-value - 1) with
              | Some (addr, _) -> addr
              | None -> 0
          in
          Vmem.store mem slot concrete
        | _ -> ())
      | Work cycles -> Alloc.Machine.charge stack.Harness.machine cycles)
    t.ops;
  stack.Harness.drain ();
  !executed

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)

let loc_to_string = function
  | Root w -> Printf.sprintf "r %d" w
  | Field (id, w) -> Printf.sprintf "f %d %d" id w

let to_string t =
  let buffer = Buffer.create (Array.length t.ops * 12) in
  Buffer.add_string buffer (Printf.sprintf "# msweep-trace v1 %s\n" t.name);
  if t.threads <> 1 then
    Buffer.add_string buffer (Printf.sprintf "# threads %d\n" t.threads);
  if t.sites <> 1 then
    Buffer.add_string buffer (Printf.sprintf "# sites %d\n" t.sites);
  Array.iter
    (fun op ->
      Buffer.add_string buffer
        (match op with
        | Alloc { id; size; site } ->
          if site = 0 then Printf.sprintf "a %d %d\n" id size
          else Printf.sprintf "a %d %d %d\n" id size site
        | Free { id; thread } ->
          if thread = 0 then Printf.sprintf "x %d\n" id
          else Printf.sprintf "x %d %d\n" id thread
        | Store_ptr { loc; target } ->
          Printf.sprintf "p %s %d\n" (loc_to_string loc) target
        | Clear_ptr { loc; target } ->
          Printf.sprintf "c %s %d\n" (loc_to_string loc) target
        | Store_data { loc; value } ->
          Printf.sprintf "d %s %d\n" (loc_to_string loc) value
        | Work cycles -> Printf.sprintf "w %d\n" cycles))
    t.ops;
  Buffer.contents buffer

let parse_error line_no what =
  failwith (Printf.sprintf "Trace.of_string: line %d: %s" line_no what)

(* One line of the text format. The one-shot parser and the chunked
   stream share this so they can never disagree on the grammar. *)
type parsed_line =
  | L_op of op
  | L_name of string
  | L_threads of int
  | L_sites of int
  | L_nothing

let parse_line ~line_no line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  let int_at msg w =
    match int_of_string_opt w with
    | Some v -> v
    | None -> parse_error line_no msg
  in
  match words with
  | [] -> L_nothing
  | "#" :: "msweep-trace" :: "v1" :: rest ->
    if rest <> [] then L_name (String.concat " " rest) else L_nothing
  | [ "#"; "threads"; n ] ->
    let n = int_at "threads" n in
    if n < 1 then parse_error line_no "threads must be >= 1";
    L_threads n
  | [ "#"; "sites"; n ] ->
    let n = int_at "sites" n in
    if n < 1 then parse_error line_no "sites must be >= 1";
    L_sites n
  | "#" :: _ -> L_nothing
  | [ "a"; id; size ] ->
    L_op (Alloc { id = int_at "id" id; size = int_at "size" size; site = 0 })
  | [ "a"; id; size; site ] ->
    L_op
      (Alloc
         {
           id = int_at "id" id;
           size = int_at "size" size;
           site = int_at "site" site;
         })
  | [ "x"; id ] -> L_op (Free { id = int_at "id" id; thread = 0 })
  | [ "x"; id; thread ] ->
    L_op (Free { id = int_at "id" id; thread = int_at "thread" thread })
  | [ "w"; cycles ] -> L_op (Work (int_at "cycles" cycles))
  | [ kind; "r"; w; v ] when kind = "p" || kind = "c" || kind = "d" ->
    let loc = Root (int_at "word" w) in
    let v = int_at "value" v in
    L_op
      (match kind with
      | "p" -> Store_ptr { loc; target = v }
      | "c" -> Clear_ptr { loc; target = v }
      | _ -> Store_data { loc; value = v })
  | [ kind; "f"; id; w; v ] when kind = "p" || kind = "c" || kind = "d" ->
    let loc = Field (int_at "id" id, int_at "word" w) in
    let v = int_at "value" v in
    L_op
      (match kind with
      | "p" -> Store_ptr { loc; target = v }
      | "c" -> Clear_ptr { loc; target = v }
      | _ -> Store_data { loc; value = v })
  | _ -> parse_error line_no ("unrecognised op: " ^ line)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let name = ref "trace" in
  let threads = ref 1 in
  let sites = ref 1 in
  let ops = ref [] in
  List.iteri
    (fun idx line ->
      match parse_line ~line_no:(idx + 1) line with
      | L_op op -> ops := op :: !ops
      | L_name n -> name := n
      | L_threads n -> threads := n
      | L_sites n -> sites := n
      | L_nothing -> ())
    lines;
  { name = !name; threads = !threads; sites = !sites;
    ops = Array.of_list (List.rev !ops) }

(* ------------------------------------------------------------------ *)
(* Chunked streaming                                                   *)

let default_chunk_ops = 4096

type stream = {
  s_name : string ref;
  s_threads : int ref;
  s_sites : int ref;
  s_chunk : int;
  s_pull : unit -> op option;
  s_close : unit -> unit;
  mutable s_peek : op option;
  mutable s_consumed : bool;
}

(* Build a stream over a line producer. Leading header/comment lines are
   consumed eagerly (one op of lookahead) so [stream_name] and
   [stream_threads] are usable before the fold; header lines appearing
   later in the file are still honoured as the fold passes them. *)
let stream_of_lines ?(chunk_ops = default_chunk_ops) next_line close =
  let name = ref "trace" in
  let threads = ref 1 in
  let sites = ref 1 in
  let line_no = ref 0 in
  let rec pull () =
    match next_line () with
    | None -> None
    | Some line -> (
      incr line_no;
      match parse_line ~line_no:!line_no line with
      | L_op op -> Some op
      | L_name n ->
        name := n;
        pull ()
      | L_threads n ->
        threads := n;
        pull ()
      | L_sites n ->
        sites := n;
        pull ()
      | L_nothing -> pull ())
  in
  let peek = pull () in
  {
    s_name = name;
    s_threads = threads;
    s_sites = sites;
    s_chunk = max 1 chunk_ops;
    s_pull = pull;
    s_close = close;
    s_peek = peek;
    s_consumed = false;
  }

let stream_of_string ?chunk_ops s =
  let len = String.length s in
  let pos = ref 0 in
  (* Mirrors [String.split_on_char '\n']: [n] newlines make [n + 1]
     lines, so a trailing segment (possibly empty) still counts. *)
  let next_line () =
    if !pos > len then None
    else begin
      let start = !pos in
      let stop =
        match String.index_from_opt s start '\n' with
        | Some i -> i
        | None -> len
      in
      pos := stop + 1;
      Some (String.sub s start (stop - start))
    end
  in
  stream_of_lines ?chunk_ops next_line (fun () -> ())

let stream_of_file ?chunk_ops path =
  let ic = open_in path in
  let next_line () =
    match input_line ic with
    | line -> Some line
    | exception End_of_file -> None
  in
  stream_of_lines ?chunk_ops next_line (fun () -> close_in_noerr ic)

let stream_of_trace ?(chunk_ops = default_chunk_ops) t =
  let i = ref 0 in
  let pull () =
    if !i >= Array.length t.ops then None
    else begin
      let op = t.ops.(!i) in
      incr i;
      Some op
    end
  in
  {
    s_name = ref t.name;
    s_threads = ref t.threads;
    s_sites = ref t.sites;
    s_chunk = max 1 chunk_ops;
    s_pull = pull;
    s_close = (fun () -> ());
    s_peek = None;
    s_consumed = false;
  }

let stream_name st = !(st.s_name)
let stream_threads st = !(st.s_threads)
let stream_sites st = !(st.s_sites)

let fold_stream st ~init ~f =
  if st.s_consumed then
    invalid_arg "Trace.fold_stream: stream already consumed";
  st.s_consumed <- true;
  Fun.protect ~finally:st.s_close (fun () ->
      let buf = Array.make st.s_chunk (Work 0) in
      let next () =
        match st.s_peek with
        | Some op ->
          st.s_peek <- None;
          Some op
        | None -> st.s_pull ()
      in
      let rec refill n =
        if n >= st.s_chunk then n
        else
          match next () with
          | None -> n
          | Some op ->
            buf.(n) <- op;
            refill (n + 1)
      in
      let acc = ref init in
      let idx = ref 0 in
      let rec loop () =
        let n = refill 0 in
        for i = 0 to n - 1 do
          acc := f !acc !idx buf.(i);
          incr idx
        done;
        if n = st.s_chunk then loop ()
      in
      loop ();
      !acc)

let to_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
