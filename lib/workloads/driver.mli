(** The trace runner: executes a {!Profile.t} against a {!Harness.t}
    stack on a fresh simulated machine and collects the metrics every
    figure in the paper is built from.

    The runner maintains a real object population in simulated memory:
    object addresses are written into other live objects and into the
    stack/globals root regions, cleared (or deliberately left dangling)
    when objects are freed, and overwritten by background stack churn.
    Sweeps and marking passes therefore scan genuine reference graphs —
    failed frees, quarantine growth and protection behaviour all emerge
    from the memory contents rather than from modelling shortcuts. *)

type result = {
  benchmark : string;
  scheme : string;
  wall : int;  (** application wall time, cycles *)
  app_busy : int;
  background_busy : int;
  stalled : int;
  cpu_utilisation : float;
  avg_rss : float;  (** time-weighted average resident bytes *)
  peak_rss : int;
  rss_trace : (float * int) array;  (** normalised-time RSS samples *)
  sweeps : int;
  failed_frees : int;
  allocations : int;
  frees : int;
  live_bytes_end : int;
  oom_killed : bool;
      (** the run exceeded its memory budget and was terminated early —
          the fate of the paper's unoptimised gcc/milc runs *)
  extra : (string * float) list;
}

val run :
  ?trace_points:int ->
  ?ops_scale:float ->
  ?rss_limit:int ->
  ?on_build:(Harness.t -> unit) ->
  Profile.t ->
  Harness.scheme ->
  result
(** Run one benchmark under one scheme. Deterministic for a given
    profile seed. [ops_scale] shortens traces for quick runs; a run whose
    resident set exceeds [rss_limit] (default 768 MiB) is killed and
    returned with [oom_killed] set. [on_build] receives the freshly
    built stack before any operation runs — the hook for capturing its
    metrics registry and trace ring for post-run export. *)

val slowdown : baseline:result -> result -> float
val memory_overhead : baseline:result -> result -> float
val peak_memory_overhead : baseline:result -> result -> float
val cpu_overhead : baseline:result -> result -> float
