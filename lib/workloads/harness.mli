(** Allocator stacks: a uniform face over the schemes under evaluation.

    A stack bundles the scheme's entry points with the accounting the
    driver needs: how much extra metadata it keeps resident, how cold its
    served memory is (delayed reuse causes the cache misses the paper
    identifies as MineSweeper's main run-time cost), and scheme-specific
    statistics for the result tables. *)

type scheme =
  | Baseline  (** unmodified JeMalloc (the paper's comparison baseline) *)
  | Mine_sweeper of Minesweeper.Config.t
  | Mark_us
  | Ff_malloc
  | Scudo_baseline  (** the Scudo hardened-allocator model, unprotected *)
  | Scudo_sweeper of Minesweeper.Config.t
      (** MineSweeper layered over Scudo (the Section 7 integration) *)
  | Cr_count  (** reference-counting pointer invalidation (CRCount) *)
  | P_sweeper  (** concurrent live-pointer-table sweeping (pSweeper-1s) *)
  | Dang_san  (** log-based pointer nullification (DangSan) *)
  | Dl_baseline
      (** GNU-malloc-style allocator with in-band metadata (exploitable
          free-list links, Section 2's footnote) *)
  | Dl_sweeper of Minesweeper.Config.t
      (** MineSweeper layered over the dlmalloc model *)
  | Pooled of Alloc.Poolalloc.plan option
      (** SeMalloc/CAMP-style site-keyed pooling driven by a flowcheck
          siteflow plan; [None] uses [Poolalloc.identity_plan] over
          {!default_pool_sites} sites (maximum segregation) *)

val scheme_name : scheme -> string

val default_pool_sites : int
(** Site universe assumed by a plan-free [Pooled None] stack; matches
    the [Profile.make] default. *)

type t = {
  scheme : string;
  machine : Alloc.Machine.t;
  obs : Obs.Registry.t option;
      (** the stack's metrics registry (MineSweeper schemes: the
          instance's, with the allocator's and address space's
          read-through metrics attached); [None] for stacks that keep no
          registry *)
  trace : Obs.Trace_ring.t option;
      (** the stack's span ring (events + sweep-phase profiling) *)
  malloc : int -> int;
  malloc_site : site:int -> int -> int;
      (** site-attributed allocation ({!Trace} replay calls this);
          every scheme except [Pooled] ignores the site and behaves
          exactly like [malloc] *)
  free : thread:int -> int -> unit;
  tick : unit -> unit;
  drain : unit -> unit;
  reclaim : unit -> unit;
      (** release memory now, regardless of thresholds: sweeper schemes
          force a sweep cycle and finish it (release + purge stages hand
          pages back), allocators purge their page caches. The lever a
          machine-wide RSS-pressure policy ({!Fleet}) pulls on a tenant;
          a no-op for schemes that retain nothing reclaimable
          (ffmalloc's one-way address consumption). *)
  quarantine_bytes : unit -> int;
      (** bytes currently held back from reuse (quarantine, deferred
          frees, pending invalidations); 0 for schemes with no
          retention. Drives largest-quarantine-first purge ordering and
          per-tenant quarantine budgets. *)
  live_bytes : unit -> int;
  metadata_bytes : unit -> int;
      (** resident metadata beyond the simulated pages (shadow map,
          quarantine entries); added to RSS in reports *)
  cold_penalty : int -> int;
      (** extra application cycles charged when serving an allocation of
          this size, modelling the cache misses of delayed reuse *)
  is_protected_addr : int -> bool;
      (** the address is currently quarantined / permanently retired, so
          a use-after-free cannot become a use-after-reallocate *)
  tolerates_double_free : bool;
      (** whether a second [free] of the same pointer is absorbed
          (quarantine dedup) rather than undefined behaviour *)
  on_pointer_write : slot:int -> old_value:int -> value:int -> unit;
      (** called for every *instrumented* pointer store the program
          performs (compiler-inserted instrumentation in DangSan /
          CRCount / pSweeper; a no-op for uninstrumented schemes).
          Integer writes that merely alias addresses are NOT reported —
          that is precisely the coverage gap of non-conservative
          pointer-tracking schemes. *)
  sweeps : unit -> int;
  failed_frees : unit -> int;
  extra : unit -> (string * float) list;
}

val build : scheme -> threads:int -> Alloc.Machine.t -> t
