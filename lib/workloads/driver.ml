type result = {
  benchmark : string;
  scheme : string;
  wall : int;
  app_busy : int;
  background_busy : int;
  stalled : int;
  cpu_utilisation : float;
  avg_rss : float;
  peak_rss : int;
  rss_trace : (float * int) array;
  sweeps : int;
  failed_frees : int;
  allocations : int;
  frees : int;
  live_bytes_end : int;
  oom_killed : bool;
      (* exceeded the memory budget and was terminated early, like the
         paper's unoptimised gcc/milc runs (Figure 16's ">" entries) *)
  extra : (string * float) list;
}

type obj = {
  id : int;
  addr : int;
  size : int;
  mutable refs : (int * int) list; (* slot address, holder id (-1 = root) *)
}

(* Growable array of live objects with O(1) random pick and removal. *)
module Live = struct
  type t = {
    mutable items : obj array;
    mutable len : int;
    pos : (int, int) Hashtbl.t; (* object id -> index *)
  }

  let dummy = { id = -1; addr = 0; size = 0; refs = [] }
  let create () = { items = Array.make 4096 dummy; len = 0; pos = Hashtbl.create 4096 }

  let add t o =
    if t.len = Array.length t.items then
      t.items <- Array.append t.items (Array.make t.len dummy);
    t.items.(t.len) <- o;
    Hashtbl.replace t.pos o.id t.len;
    t.len <- t.len + 1

  let remove t o =
    match Hashtbl.find_opt t.pos o.id with
    | None -> ()
    | Some i ->
      Hashtbl.remove t.pos o.id;
      let last = t.len - 1 in
      if i <> last then begin
        t.items.(i) <- t.items.(last);
        Hashtbl.replace t.pos t.items.(i).id i
      end;
      t.items.(last) <- dummy;
      t.len <- last

  let pick t rng = if t.len = 0 then None else Some t.items.(Sim.Rng.int rng t.len)
  let mem t o = Hashtbl.mem t.pos o.id
  let mem_id t id = id = -1 || Hashtbl.mem t.pos id

  let to_list t =
    let rec go i acc = if i < 0 then acc else go (i - 1) (t.items.(i) :: acc) in
    go (t.len - 1) []
end

let word = Vmem.word_size
let stack_window = 64 * 1024 (* actively churned stack bytes *)

(* Program text + statics: PSRecord measures whole-process RSS, so every
   run carries the image's constant resident share. *)
let static_rss = 3 * 1024 * 1024

exception Out_of_memory_budget

let run ?(trace_points = 240) ?(ops_scale = 1.0) ?(rss_limit = 768 * 1024 * 1024)
    ?on_build profile scheme =
  let profile =
    if ops_scale = 1.0 then profile else Profile.scale_ops ops_scale profile
  in
  let machine = Alloc.Machine.create () in
  let mem = machine.Alloc.Machine.mem in
  let stack = Harness.build scheme ~threads:profile.Profile.threads machine in
  (match on_build with Some f -> f stack | None -> ());
  List.iter
    (fun (base, size) -> Vmem.map mem ~addr:base ~len:size)
    Layout.root_regions;
  let rng = Sim.Rng.create profile.Profile.seed in
  let size_rng = Sim.Rng.split rng in
  let life_rng = Sim.Rng.split rng in
  let live = Live.create () in
  let deaths : (int, obj list) Hashtbl.t = Hashtbl.create 4096 in
  let sampler = Sim.Sampler.create () in
  let frees = ref 0 in
  let next_id = ref 0 in

  (* Instrumented pointer store: compiler-inserted tracking sees the old
     and new value of every pointer-typed write. *)
  let store_ptr slot value =
    let old_value = Vmem.load mem slot in
    Vmem.store mem slot value;
    stack.Harness.on_pointer_write ~slot ~old_value ~value
  in

  let pick_root_slot () =
    if Sim.Rng.bool rng 0.85 then
      Layout.stack_base + (word * Sim.Rng.int rng (stack_window / word))
    else
      Layout.globals_base + (word * Sim.Rng.int rng (Layout.globals_size / word))
  in

  (* Store [o]'s address somewhere and remember where, so the free path
     can clear it (or deliberately leave it dangling). *)
  let add_tracked_ref o =
    let holder =
      if Sim.Rng.bool rng profile.Profile.root_fraction then None
      else
        match Live.pick live rng with
        | Some h when h.size >= word && h.id <> o.id -> Some h
        | Some _ | None -> None
    in
    (match holder with
    | None ->
      let slot = pick_root_slot () in
      store_ptr slot o.addr;
      o.refs <- (slot, -1) :: o.refs
    | Some h ->
      let slot = h.addr + (word * Sim.Rng.int rng (h.size / word)) in
      store_ptr slot o.addr;
      o.refs <- (slot, h.id) :: o.refs;
      (* Parent / prev pointer: the new object points back at its
         holder, forming the doubly-linked shapes whose cycles only
         zeroing can break once both ends are in quarantine. *)
      if
        o.size >= word
        && Sim.Rng.bool rng profile.Profile.back_pointer_rate
      then begin
        let back = o.addr + (word * Sim.Rng.int rng (o.size / word)) in
        if back <> slot then begin
          store_ptr back h.addr;
          h.refs <- (back, o.id) :: h.refs
        end
      end)
  in

  (* "Unlucky data": an untracked word that happens to equal a live heap
     address (interior pointers included). Nothing will ever clear it
     except reuse of its holder or stack churn. *)
  let write_false_pointer () =
    match Live.pick live rng with
    | None -> ()
    | Some target ->
      let value =
        target.addr + (word * Sim.Rng.int rng (max 1 (target.size / word)))
      in
      let slot =
        match Live.pick live rng with
        | Some holder when holder.size >= word ->
          holder.addr + (word * Sim.Rng.int rng (holder.size / word))
        | Some _ | None -> pick_root_slot ()
      in
      Vmem.store mem slot value
  in

  let slot_writable slot =
    Vmem.is_mapped mem slot
    && Vmem.is_committed mem slot
    && Vmem.protection mem slot = Vmem.Read_write
  in

  let kill o =
    (* An object can be claimed both by a phase teardown and by its
       scheduled death; only the first free is real. *)
    if Live.mem live o then begin
      Live.remove live o;
    (* A well-behaved program clears its pointers before freeing; a buggy
       one leaves some dangling. Clearing only happens when the slot
       still holds our address (it may have been overwritten or its
       holder recycled since). *)
    List.iter
      (fun (slot, holder) ->
        (* The program only clears pointers it still owns: slots inside
           already-freed holders are not touched (writing there would be
           a use-after-free of its own). *)
        if
          Live.mem_id live holder
          && not (Sim.Rng.bool rng profile.Profile.dangling_rate)
          && slot_writable slot
          && Vmem.load mem slot = o.addr
        then store_ptr slot 0)
      o.refs;
    let thread =
      if profile.Profile.threads > 1 then Sim.Rng.int rng profile.Profile.threads
      else 0
    in
      stack.Harness.free ~thread o.addr;
      incr frees
    end
  in

  let schedule_death o ~at =
    Hashtbl.replace deaths at
      (o :: Option.value ~default:[] (Hashtbl.find_opt deaths at))
  in

  let churn_stack () =
    (* Stack frames dying: pointer-typed locals are "overwritten"; the
       instrumentation sees those too. *)
    for _ = 1 to 2 do
      let slot =
        Layout.stack_base + (word * Sim.Rng.int rng (stack_window / word))
      in
      if Layout.in_heap (Vmem.load mem slot) then store_ptr slot 0
      else Vmem.store mem slot 0
    done
  in

  let ops = profile.Profile.ops in
  let sample_every = max 1 (ops / trace_points) in
  let oom = ref false in
  let record () =
    let rss =
      static_rss + Vmem.committed_bytes mem + stack.Harness.metadata_bytes ()
    in
    Sim.Sampler.record sampler ~now:(Alloc.Machine.now machine) ~rss;
    if rss > rss_limit then raise Out_of_memory_budget
  in

  (try
  for i = 0 to ops - 1 do
    (match Hashtbl.find_opt deaths i with
    | Some dead ->
      Hashtbl.remove deaths i;
      List.iter kill dead
    | None -> ());
    (match profile.Profile.phase_ops with
    | Some phase when i > 0 && i mod phase = 0 ->
      (* Phase boundary: the program tears down most of its structures
         (gcc between functions, xalancbmk between documents). *)
      let victims =
        List.filter
          (fun _ -> Sim.Rng.bool rng profile.Profile.phase_kill)
          (Live.to_list live)
      in
      List.iter kill victims
    | Some _ | None -> ());
    let size = Sim.Dist.sample profile.Profile.size size_rng in
    let site = Trace.site_of_size ~sites:profile.Profile.sites size in
    let addr = stack.Harness.malloc_site ~site size in
    Alloc.Machine.charge machine
      (int_of_float
         (profile.Profile.cache_sensitivity
          *. float_of_int (stack.Harness.cold_penalty size)));
    let o = { id = !next_id; addr; size; refs = [] } in
    incr next_id;
    Live.add live o;
    if Sim.Rng.bool rng profile.Profile.pointer_density then add_tracked_ref o;
    if Sim.Rng.bool rng profile.Profile.false_pointer_rate then
      write_false_pointer ();
    if not (Sim.Rng.bool rng profile.Profile.leak_rate) then begin
      let lifetime_dist =
        match profile.Profile.lifetime_large with
        | Some d when size >= 16384 -> d
        | Some _ | None -> profile.Profile.lifetime
      in
      let lifetime = Sim.Dist.sample lifetime_dist life_rng in
      let at = i + 1 + lifetime in
      if at < ops then schedule_death o ~at
    end;
    churn_stack ();
    Alloc.Machine.charge machine profile.Profile.work_per_op;
    stack.Harness.tick ();
    if i mod sample_every = 0 then record ()
  done;
  stack.Harness.drain ();
  record ()
  with Out_of_memory_budget -> oom := true);

  let clock = machine.Alloc.Machine.clock in
  (* On heavily threaded runs (the paper's i7-7700 has 4 cores / 8 SMT
     threads) the sweeper and helper threads compete with the application
     for cores: a share of background work surfaces as application
     time. *)
  let contention =
    let threads = profile.Profile.threads in
    if threads >= 4 then Float.min 0.4 (float_of_int (threads - 2) /. 12.0)
    else 0.0
  in
  if contention > 0.0 then
    Sim.Clock.stall clock
      (int_of_float (contention *. float_of_int (Sim.Clock.background_busy clock)));
  {
    benchmark = profile.Profile.name;
    scheme = stack.Harness.scheme;
    wall = Sim.Clock.wall clock;
    app_busy = Sim.Clock.app_busy clock;
    background_busy = Sim.Clock.background_busy clock;
    stalled = Sim.Clock.stalled clock;
    cpu_utilisation = Sim.Clock.cpu_utilisation clock;
    avg_rss = Sim.Sampler.average sampler;
    peak_rss = Sim.Sampler.peak sampler;
    rss_trace = Sim.Sampler.normalised sampler ~points:trace_points;
    sweeps = stack.Harness.sweeps ();
    failed_frees = stack.Harness.failed_frees ();
    allocations = ops;
    frees = !frees;
    live_bytes_end = stack.Harness.live_bytes ();
    oom_killed = !oom;
    extra = stack.Harness.extra ();
  }

let slowdown ~baseline r = float_of_int r.wall /. float_of_int baseline.wall

let memory_overhead ~baseline r = r.avg_rss /. baseline.avg_rss

let peak_memory_overhead ~baseline r =
  float_of_int r.peak_rss /. float_of_int baseline.peak_rss

let cpu_overhead ~baseline r = r.cpu_utilisation /. baseline.cpu_utilisation
