(** Address-space layout of the simulated process.

    Fixed, disjoint regions for globals, the stack and the heap. Sweeps
    cover all three (Section 4.4: "heap, stack and globals"); the shadow
    map only needs to span the heap, because only heap allocations are
    quarantined. *)

val globals_base : int
val globals_size : int

val stack_base : int
val stack_size : int

val heap_base : int
val heap_limit : int
(** Exclusive upper bound for heap extents; pointers outside
    [heap_base, heap_limit) can never refer to a quarantined allocation
    and are filtered out for free during sweeps. *)

val in_heap : int -> bool
(** Whether a word value could be a pointer into the heap region. *)

val root_regions : (int * int) list
(** The non-heap regions [(base, size)] that contain application roots. *)
