lib/vmem/vmem.ml: Bytes Hashtbl Int64
