lib/vmem/vmem.mli: Bytes
