lib/vmem/layout.mli:
