lib/vmem/layout.ml:
