let globals_base = 0x1000_0000
let globals_size = 16 * 4096 (* 64 KiB of globals *)

let stack_base = 0x2000_0000
let stack_size = 80 * 4096 (* 320 KiB of active stack *)

let heap_base = 0x4000_0000
let heap_limit = 0x40_0000_0000 (* 255 GiB of heap address space *)

let in_heap addr = addr >= heap_base && addr < heap_limit

let root_regions =
  [ (globals_base, globals_size); (stack_base, stack_size) ]
