type sink =
  | App
  | Background
  | Stall

type t = {
  mem : Vmem.t;
  cost : Sim.Cost.t;
  clock : Sim.Clock.t;
  mutable sink : sink;
}

let charge t n =
  if n > 0 then
    match t.sink with
    | App -> Sim.Clock.advance t.clock n
    | Background -> Sim.Clock.background t.clock n
    | Stall -> Sim.Clock.stall t.clock n

let create ?(cost = Sim.Cost.default) () =
  let t = { mem = Vmem.create (); cost; clock = Sim.Clock.create (); sink = App } in
  Vmem.set_demand_commit_hook t.mem (fun ~pages ->
      charge t (pages * cost.Sim.Cost.page_fault));
  t

let charge_bytes t per_byte n = charge t (Sim.Cost.bytes_cost per_byte n)

let with_sink t sink f =
  let saved = t.sink in
  t.sink <- sink;
  Fun.protect ~finally:(fun () -> t.sink <- saved) f

let now t = Sim.Clock.now t.clock
