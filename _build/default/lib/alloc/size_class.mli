(** JeMalloc-style size classes.

    Small requests are rounded up to one of a fixed set of classes (four
    classes per power-of-two group, as in JeMalloc); each class is served
    from slabs of a few pages. Requests above {!small_max} are "large"
    and rounded to whole pages. *)

val small_max : int
(** Largest small class (14336 B, 3.5 pages — JeMalloc's boundary). *)

val count : int
(** Number of small classes. *)

val size_of_class : int -> int
(** [size_of_class i] is the allocation size of class [i < count]. *)

val class_of_size : int -> int
(** [class_of_size sz] is the smallest class index whose size is
    [>= sz]. [sz] must be in [1, small_max]. *)

val slab_pages : int -> int
(** Pages per slab for the class, chosen to keep per-slab waste low. *)

val slab_slots : int -> int
(** Objects per slab for the class. *)

val large_pages : int -> int
(** [large_pages sz] is the page count backing a large request. *)

val is_small : int -> bool
