(** Shared simulation context: memory + clock + cost model.

    Every component charges cycles through the machine; the [sink]
    selects which thread pays. The application thread pays [`App] costs
    as wall time, sweeper threads pay [`Background] costs that overlap
    the application, and [`Stall] charges wall time without busy time
    (stop-the-world pauses, allocation pauses). *)

type sink =
  | App
  | Background
  | Stall

type t = {
  mem : Vmem.t;
  cost : Sim.Cost.t;
  clock : Sim.Clock.t;
  mutable sink : sink;
}

val create : ?cost:Sim.Cost.t -> unit -> t
(** Builds the machine and installs a demand-commit hook that charges
    page-fault costs to the current sink. *)

val charge : t -> int -> unit

val charge_bytes : t -> float -> int -> unit
(** [charge_bytes t per_byte n] charges a streaming cost. *)

val with_sink : t -> sink -> (unit -> 'a) -> 'a
(** Run a closure with a temporarily switched sink. *)

val now : t -> int
(** Wall-clock position in cycles. *)
