lib/alloc/extent.ml: Int Layout List Machine Map Seq Sim Vmem
