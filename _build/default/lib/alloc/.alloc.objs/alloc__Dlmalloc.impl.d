lib/alloc/dlmalloc.ml: Array Extent Machine Sim Vmem
