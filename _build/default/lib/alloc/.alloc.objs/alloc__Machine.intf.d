lib/alloc/machine.mli: Sim Vmem
