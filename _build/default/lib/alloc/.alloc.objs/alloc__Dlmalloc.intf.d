lib/alloc/dlmalloc.mli: Extent Machine
