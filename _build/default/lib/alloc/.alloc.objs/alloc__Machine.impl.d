lib/alloc/machine.ml: Fun Sim Vmem
