lib/alloc/backends.ml: Backend Dlmalloc Jemalloc Scudo
