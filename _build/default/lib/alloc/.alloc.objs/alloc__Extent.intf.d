lib/alloc/extent.mli: Machine
