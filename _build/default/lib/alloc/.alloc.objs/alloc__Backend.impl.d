lib/alloc/backend.ml: Extent Machine
