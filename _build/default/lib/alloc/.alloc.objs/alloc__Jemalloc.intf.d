lib/alloc/jemalloc.mli: Extent Machine
