lib/alloc/scudo.mli: Extent Machine
