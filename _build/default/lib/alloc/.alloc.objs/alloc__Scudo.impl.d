lib/alloc/scudo.ml: Array Jemalloc Machine Sim
