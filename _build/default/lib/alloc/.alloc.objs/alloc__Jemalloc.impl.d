lib/alloc/jemalloc.ml: Array Extent Fun Hashtbl List Machine Sim Size_class Vmem
