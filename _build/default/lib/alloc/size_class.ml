let page = Vmem.page_size
let small_max = 14336

(* The class table mirrors JeMalloc's layout: an initial linear region of
   16-byte steps, then four classes per power-of-two group. *)
let sizes =
  let linear = [ 8; 16; 32; 48; 64; 80; 96; 112; 128 ] in
  let grouped =
    let rec groups base acc =
      if base >= small_max then List.rev acc
      else
        let delta = base / 4 in
        let cls =
          List.filter_map
            (fun k ->
              let sz = base + (k * delta) in
              if sz <= small_max then Some sz else None)
            [ 1; 2; 3; 4 ]
        in
        groups (base * 2) (List.rev_append cls acc)
    in
    groups 128 []
  in
  Array.of_list (linear @ grouped)

let count = Array.length sizes

let size_of_class i =
  assert (i >= 0 && i < count);
  sizes.(i)

let class_of_size sz =
  assert (sz >= 1 && sz <= small_max);
  (* Binary search for the first class >= sz. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if sizes.(mid) >= sz then search lo mid else search (mid + 1) hi
  in
  search 0 (count - 1)

(* Pick the smallest slab (up to 8 pages) wasting < 1/16 of its space,
   falling back to the least-waste choice. *)
let slab_pages_table =
  Array.map
    (fun sz ->
      let waste p = (p * page) mod sz in
      let rec pick p best best_waste =
        if p > 8 then best
        else
          let w = waste p in
          if w * 16 < p * page then p
          else if w * best < best_waste * p then pick (p + 1) p w
          else pick (p + 1) best best_waste
      in
      let min_pages = (sz + page - 1) / page in
      pick min_pages min_pages (waste min_pages))
    sizes

let slab_pages i =
  assert (i >= 0 && i < count);
  slab_pages_table.(i)

let slab_slots i = slab_pages i * page / size_of_class i

let large_pages sz =
  assert (sz > 0);
  (sz + page - 1) / page

let is_small sz = sz <= small_max
