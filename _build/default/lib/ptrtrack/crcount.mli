(** CRCount baseline (Shin et al., NDSS 2019): pointer invalidation by
    reference counting (Section 6.6).

    Compiler-maintained instrumentation keeps an exact reference count
    per allocation: every instrumented pointer store decrements the old
    target's count and increments the new one. [free] only marks the
    allocation as freed by the programmer; deallocation happens when the
    count reaches zero. Freed allocations are zero-filled, which drops
    the counts of everything they pointed to (the same insight
    MineSweeper's zeroing builds on, as the paper notes).

    The characteristic cost is on the write path — every pointer store
    pays, even in benchmarks that barely allocate (the paper calls out
    mcf and povray). *)

type t

val create : Alloc.Machine.t -> t
val malloc : t -> int -> int
val free : t -> int -> unit

val on_pointer_write : t -> slot:int -> old_value:int -> value:int -> unit

val refcount : t -> int -> int
(** Current count for a live or pending allocation base. *)

val is_pending : t -> int -> bool
(** Freed by the programmer but still referenced. *)

val pending_bytes : t -> int
val live_bytes : t -> int
val metadata_bytes : t -> int
val heap : t -> Alloc.Jemalloc.t
