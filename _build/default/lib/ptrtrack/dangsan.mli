(** DangSan baseline (van der Kouwe, Nigade & Giuffrida, EuroSys 2017):
    log-based pointer tracking (Section 6.4).

    DangSan's observation: pointer metadata is written on every pointer
    store but read only once, at deallocation. So the write path is a
    cheap append to a per-target log (with only opportunistic
    de-duplication), and [free] walks the target's log, nullifying every
    recorded location that still points at the object, then deallocates
    immediately. The price is the logs' memory: they grow with pointer-
    store volume, not with live data — the source of DangSan's extreme
    memory overheads on pointer-heavy benchmarks (Figure 10). *)

type t

val create : Alloc.Machine.t -> t
val malloc : t -> int -> int
val free : t -> int -> unit
val on_pointer_write : t -> slot:int -> old_value:int -> value:int -> unit

val log_entries : t -> int
(** Total log records currently held (the memory-overhead driver). *)

val log_entries_for : t -> int -> int
val live_bytes : t -> int
val metadata_bytes : t -> int
val heap : t -> Alloc.Jemalloc.t
