lib/ptrtrack/registry.ml: Alloc Hashtbl Layout List Vmem
