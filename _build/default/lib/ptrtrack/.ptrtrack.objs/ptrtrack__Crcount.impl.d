lib/ptrtrack/crcount.ml: Alloc Hashtbl Option Registry Sim Vmem
