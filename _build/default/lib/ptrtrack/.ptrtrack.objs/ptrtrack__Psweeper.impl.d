lib/ptrtrack/psweeper.ml: Alloc Hashtbl List Registry Vmem
