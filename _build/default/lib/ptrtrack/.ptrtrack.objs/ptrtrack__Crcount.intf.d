lib/ptrtrack/crcount.mli: Alloc
