lib/ptrtrack/psweeper.mli: Alloc
