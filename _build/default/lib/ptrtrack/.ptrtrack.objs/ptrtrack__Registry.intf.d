lib/ptrtrack/registry.mli: Alloc
