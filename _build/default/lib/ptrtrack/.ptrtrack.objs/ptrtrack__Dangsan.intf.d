lib/ptrtrack/dangsan.mli: Alloc
