lib/ptrtrack/dangsan.ml: Alloc Hashtbl Layout List Vmem
