(* Per-instrumented-store cost. The synthetic traces materialise ~1.3
   pointer stores per allocation, where compiled code performs an order
   of magnitude more (locals, spills, argument copies); the constant
   folds that density difference in, calibrated against the figures the
   CRCount paper reports. *)
let write_cycles = 70
let free_cycles = 60 (* scan the pointer bitmap of the freed object *)

type t = {
  machine : Alloc.Machine.t;
  heap : Alloc.Jemalloc.t;
  registry : Registry.t;
  counts : (int, int) Hashtbl.t; (* base -> reference count *)
  pending : (int, int) Hashtbl.t; (* freed-but-referenced: base -> usable *)
  mutable pending_total : int;
}

let create machine =
  let heap = Alloc.Jemalloc.create machine in
  {
    machine;
    heap;
    registry = Registry.create heap;
    counts = Hashtbl.create 4096;
    pending = Hashtbl.create 256;
    pending_total = 0;
  }

let refcount t base = Option.value ~default:0 (Hashtbl.find_opt t.counts base)

let release t base =
  match Hashtbl.find_opt t.pending base with
  | None -> ()
  | Some usable ->
    Hashtbl.remove t.pending base;
    t.pending_total <- t.pending_total - usable;
    Alloc.Jemalloc.free t.heap base

let adjust t base delta =
  let current = refcount t base in
  let updated = current + delta in
  assert (updated >= 0);
  if updated = 0 then begin
    Hashtbl.remove t.counts base;
    (* Freed by the programmer and no references left: deallocate. *)
    if Hashtbl.mem t.pending base then release t base
  end
  else Hashtbl.replace t.counts base updated

let on_pointer_write t ~slot ~old_value:_ ~value =
  Alloc.Machine.charge t.machine write_cycles;
  (* The registry knows the slot's previous target exactly. *)
  (match Registry.target_of t.registry ~slot with
  | Some old_target -> adjust t old_target (-1)
  | None -> ());
  Registry.record_write t.registry ~slot ~value;
  match Registry.target_of t.registry ~slot with
  | Some target -> adjust t target 1
  | None -> ()

let malloc t size = Alloc.Jemalloc.malloc t.heap size

let free t addr =
  Alloc.Machine.charge t.machine free_cycles;
  if not (Hashtbl.mem t.pending addr) then begin
    let usable = Alloc.Jemalloc.usable_size t.heap addr in
    (* Zero-fill the freed object: its outgoing pointers die, dropping
       the counts of everything it referenced. *)
    Vmem.zero_range t.machine.Alloc.Machine.mem ~addr ~len:usable;
    Alloc.Machine.charge_bytes t.machine
      t.machine.Alloc.Machine.cost.Sim.Cost.zero_per_byte usable;
    Registry.drop_slots_in t.registry ~base:addr ~usable
      (fun ~slot:_ ~target -> adjust t target (-1));
    if refcount t addr = 0 then Alloc.Jemalloc.free t.heap addr
    else begin
      Hashtbl.replace t.pending addr usable;
      t.pending_total <- t.pending_total + usable
    end
  end

let is_pending t base = Hashtbl.mem t.pending base
let pending_bytes t = t.pending_total
let live_bytes t = Alloc.Jemalloc.live_bytes t.heap

let metadata_bytes t =
  (* registry + per-object count + the pointer-location bitmap pages the
     real system keeps (density-scaled, as for write_cycles) *)
  (3 * Registry.metadata_bytes t.registry) + (Hashtbl.length t.counts * 48)

let heap t = t.heap
