(* Density-scaled like Crcount.write_cycles; see that comment. *)
let write_cycles = 160
let entry_sweep_cycles = 5 (* visiting one table entry during a sweep *)

type t = {
  machine : Alloc.Machine.t;
  heap : Alloc.Jemalloc.t;
  registry : Registry.t;
  period_cycles : int;
  freed : (int, int) Hashtbl.t; (* base -> usable, awaiting sweep *)
  mutable deferred_total : int;
  mutable last_sweep : int;
  mutable sweeps : int;
}

(* "pSweeper-1s": one second between sweeps on the paper's 3.6 GHz parts
   would be 3.6e9 cycles; traces here are ~1000x shorter, so the scaled
   period keeps the same sweeps-per-run ratio. *)
let default_period = 4_000_000

let create ?(period_cycles = default_period) machine =
  let heap = Alloc.Jemalloc.create machine in
  {
    machine;
    heap;
    registry = Registry.create heap;
    period_cycles;
    freed = Hashtbl.create 256;
    deferred_total = 0;
    last_sweep = 0;
    sweeps = 0;
  }

let on_pointer_write t ~slot ~old_value:_ ~value =
  Alloc.Machine.charge t.machine write_cycles;
  Registry.record_write t.registry ~slot ~value

let malloc t size = Alloc.Jemalloc.malloc t.heap size

let free t addr =
  if not (Hashtbl.mem t.freed addr) then begin
    let usable = Alloc.Jemalloc.usable_size t.heap addr in
    Hashtbl.replace t.freed addr usable;
    t.deferred_total <- t.deferred_total + usable
  end

let sweep t =
  t.sweeps <- t.sweeps + 1;
  let mem = t.machine.Alloc.Machine.mem in
  (* Walk the live-pointer table, nullifying pointers whose target the
     programmer has freed. Runs on the background thread. *)
  Alloc.Machine.with_sink t.machine Alloc.Machine.Background (fun () ->
      let visited = ref 0 in
      let to_nullify = ref [] in
      Registry.iter_slots t.registry (fun ~slot ~target ->
          incr visited;
          if Hashtbl.mem t.freed target then to_nullify := slot :: !to_nullify);
      Alloc.Machine.charge t.machine (!visited * entry_sweep_cycles);
      List.iter
        (fun slot ->
          if Vmem.is_mapped mem slot && Vmem.is_committed mem slot then
            Vmem.store mem slot 0;
          Registry.forget_slot t.registry ~slot)
        !to_nullify;
      (* Every free that preceded this sweep is now unreachable via
         tracked pointers: deallocate. *)
      let victims = Hashtbl.fold (fun b u acc -> (b, u) :: acc) t.freed [] in
      List.iter
        (fun (base, usable) ->
          Registry.drop_slots_in t.registry ~base ~usable
            (fun ~slot:_ ~target:_ -> ());
          Hashtbl.remove t.freed base;
          t.deferred_total <- t.deferred_total - usable;
          Alloc.Jemalloc.free t.heap base)
        victims)

let tick t =
  let now = Alloc.Machine.now t.machine in
  if now - t.last_sweep >= t.period_cycles then begin
    t.last_sweep <- now;
    sweep t
  end

let drain t = sweep t
let sweeps t = t.sweeps
let is_deferred t base = Hashtbl.mem t.freed base
let deferred_bytes t = t.deferred_total
let live_bytes t = Alloc.Jemalloc.live_bytes t.heap

let metadata_bytes t =
  (* The live-pointer table dominates: per-slot record plus the paper's
     per-pointer auxiliary state, density-scaled. *)
  (6 * Registry.metadata_bytes t.registry) + (Hashtbl.length t.freed * 24)

let heap t = t.heap
