(* Density-scaled like Crcount.write_cycles; DangSan's append is cheap
   per store but fires far more often than the trace materialises. *)
let write_cycles = 195
let entry_free_cycles = 4 (* processing one log entry at deallocation *)
(* Real DangSan keeps per-thread multi-level log tables; the per-entry
   figure below carries both that structure and the density scaling. *)
let log_entry_bytes = 256

type t = {
  machine : Alloc.Machine.t;
  heap : Alloc.Jemalloc.t;
  logs : (int, int list ref) Hashtbl.t; (* target base -> slots logged *)
  mutable total_entries : int;
}

let create machine =
  {
    machine;
    heap = Alloc.Jemalloc.create machine;
    logs = Hashtbl.create 4096;
    total_entries = 0;
  }

let on_pointer_write t ~slot ~old_value:_ ~value =
  Alloc.Machine.charge t.machine write_cycles;
  if Layout.in_heap value then
    match Alloc.Jemalloc.allocation_containing t.heap value with
    | Some (base, _) ->
      let log =
        match Hashtbl.find_opt t.logs base with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace t.logs base l;
          l
      in
      (* Opportunistic de-duplication: skip if this slot was the last
         one logged (DangSan's cheap same-pointer filter). *)
      (match !log with
      | last :: _ when last = slot -> ()
      | _ ->
        log := slot :: !log;
        t.total_entries <- t.total_entries + 1)
    | None -> ()

let malloc t size = Alloc.Jemalloc.malloc t.heap size

let free t addr =
  let mem = t.machine.Alloc.Machine.mem in
  (match Hashtbl.find_opt t.logs addr with
  | None -> ()
  | Some log ->
    let entries = List.length !log in
    Alloc.Machine.charge t.machine (entries * entry_free_cycles);
    let usable = Alloc.Jemalloc.usable_size t.heap addr in
    List.iter
      (fun slot ->
        (* Stale entries are expected: only nullify slots that still
           point into the object being freed. *)
        if
          Vmem.is_mapped mem slot
          && Vmem.is_committed mem slot
          && Vmem.protection mem slot = Vmem.Read_write
        then begin
          let v = Vmem.load mem slot in
          if v >= addr && v < addr + usable then Vmem.store mem slot 0
        end)
      !log;
    t.total_entries <- t.total_entries - entries;
    Hashtbl.remove t.logs addr);
  Alloc.Jemalloc.free t.heap addr

let log_entries t = t.total_entries

let log_entries_for t base =
  match Hashtbl.find_opt t.logs base with
  | None -> 0
  | Some log -> List.length !log

let live_bytes t = Alloc.Jemalloc.live_bytes t.heap
let metadata_bytes t = t.total_entries * log_entry_bytes
let heap t = t.heap
