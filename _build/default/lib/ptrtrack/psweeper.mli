(** pSweeper baseline (Liu, Zhang & Wang, CCS 2018): concurrent pointer
    sweeping with deferred deallocation (Section 6.4).

    A live-pointer table records every instrumented pointer store. A
    background thread periodically sweeps the *table* (not memory):
    entries whose target has been freed are nullified in place, and a
    freed allocation is deallocated only after the first full sweep that
    follows its [free] — so no dangling pointer can survive a
    deallocation. The paper's comparison point is the 1-second sweep
    period ("pSweeper-1s"). *)

type t

val create : ?period_cycles:int -> Alloc.Machine.t -> t
val malloc : t -> int -> int
val free : t -> int -> unit
val on_pointer_write : t -> slot:int -> old_value:int -> value:int -> unit

val tick : t -> unit
(** Run the background sweep when its period has elapsed. *)

val drain : t -> unit
(** Force a final sweep (end of run). *)

val sweeps : t -> int
val is_deferred : t -> int -> bool
(** Freed but awaiting its deallocation sweep. *)

val deferred_bytes : t -> int
val live_bytes : t -> int
val metadata_bytes : t -> int
val heap : t -> Alloc.Jemalloc.t
