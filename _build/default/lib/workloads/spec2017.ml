open Sim

let tiny_nodes =
  Dist.choice
    [
      (0.55, Dist.uniform ~lo:16 ~hi:96);
      (0.35, Dist.uniform ~lo:96 ~hi:256);
      (0.10, Dist.pareto ~shape:1.4 ~scale:256 ~cap:4096);
    ]

let small_mix =
  Dist.choice
    [
      (0.50, Dist.uniform ~lo:16 ~hi:128);
      (0.35, Dist.uniform ~lo:128 ~hi:512);
      (0.15, Dist.pareto ~shape:1.3 ~scale:512 ~cap:16384);
    ]

let medium_mix =
  Dist.choice
    [
      (0.55, Dist.uniform ~lo:64 ~hi:1024);
      (0.35, Dist.uniform ~lo:1024 ~hi:8192);
      (0.10, Dist.pareto ~shape:1.2 ~scale:8192 ~cap:262144);
    ]

let array_buffers ~lo ~hi = Dist.uniform ~lo ~hi

let churn_life ~short ~long_weight ~long =
  Dist.choice
    [
      (1.0 -. long_weight, Dist.exponential ~mean:short);
      (long_weight, Dist.exponential ~mean:long);
    ]

let p = Profile.make ~suite:"spec2017"

let all =
  [
    p ~name:"perlbench" ~ops:280_000 ~size:small_mix
      ~lifetime:(churn_life ~short:4000. ~long_weight:0.05 ~long:40000.)
      ~work_per_op:520 ~dangling_rate:0.006 ~leak_rate:0.015
      ~cache_sensitivity:0.12 ~seed:201 ();
    p ~name:"gcc" ~ops:170_000 ~size:medium_mix
      ~lifetime:(churn_life ~short:1200. ~long_weight:0.05 ~long:6000.)
      ~work_per_op:2000 ~phase_ops:(Some 28_000) ~phase_kill:0.85
      ~dangling_rate:0.010 ~cache_sensitivity:0.04 ~seed:202 ();
    p ~name:"mcf" ~ops:15_000
      ~size:
        (Dist.choice
           [ (0.97, small_mix); (0.03, array_buffers ~lo:65536 ~hi:262144) ])
      ~lifetime:(Dist.exponential ~mean:1500.)
      ~lifetime_large:(Dist.constant 15_000)
      ~work_per_op:40_000 ~cache_sensitivity:0.1 ~seed:203 ();
    p ~name:"xalancbmk" ~ops:430_000 ~size:tiny_nodes
      ~lifetime:(churn_life ~short:6000. ~long_weight:0.04 ~long:80000.)
      ~work_per_op:130 ~phase_ops:(Some 70_000) ~phase_kill:0.9
      ~dangling_rate:0.008 ~cache_sensitivity:0.75 ~seed:204 ();
    p ~name:"x264" ~ops:20_000
      ~size:
        (Dist.choice
           [ (0.9, medium_mix); (0.1, array_buffers ~lo:65536 ~hi:262144) ])
      ~lifetime:(Dist.exponential ~mean:900.)
      ~lifetime_large:(Dist.exponential ~mean:300.) (* reference frames *)
      ~work_per_op:30_000 ~cache_sensitivity:0.08 ~seed:205 ();
    p ~name:"deepsjeng" ~ops:2_500 ~size:medium_mix
      ~lifetime:(Dist.exponential ~mean:900.) ~work_per_op:400_000 ~cache_sensitivity:0.1 ~seed:206 ();
    p ~name:"leela" ~ops:45_000 ~size:small_mix
      ~lifetime:(Dist.exponential ~mean:2500.) ~work_per_op:9_000 ~cache_sensitivity:0.1 ~seed:207 ();
    p ~name:"exchange2" ~ops:800 ~size:small_mix
      ~lifetime:(Dist.exponential ~mean:300.) ~work_per_op:1_000_000 ~seed:208 ();
    p ~name:"xz" ~ops:3_000
      ~size:
        (Dist.choice
           [ (0.99, small_mix); (0.01, array_buffers ~lo:262144 ~hi:1048576) ])
      ~lifetime:(Dist.exponential ~mean:400.)
      ~lifetime_large:(Dist.constant 3_000) (* dictionary + window *)
      ~work_per_op:300_000 ~threads:4 ~seed:209 ();
    p ~name:"bwaves" ~ops:1_000
      ~size:
        (Dist.choice
           [ (0.994, small_mix); (0.006, array_buffers ~lo:1048576 ~hi:2097152) ])
      ~lifetime:(Dist.exponential ~mean:200.)
      ~lifetime_large:(Dist.constant 1_000)
      ~work_per_op:900_000 ~threads:8 ~seed:210 ();
    p ~name:"cactuBSSN" ~ops:20_000
      ~size:
        (Dist.choice
           [ (0.92, medium_mix); (0.08, array_buffers ~lo:16384 ~hi:131072) ])
      ~lifetime:(Dist.exponential ~mean:900.)
      ~lifetime_large:(Dist.exponential ~mean:800.) (* grid hierarchies *)
      ~work_per_op:22_000 ~threads:8 ~seed:211 ();
    p ~name:"lbm" ~ops:1_000
      ~size:
        (Dist.choice
           [ (0.995, small_mix); (0.005, array_buffers ~lo:1048576 ~hi:2097152) ])
      ~lifetime:(Dist.exponential ~mean:200.)
      ~lifetime_large:(Dist.constant 1_000)
      ~work_per_op:900_000 ~threads:8 ~seed:212 ();
    p ~name:"wrf" ~ops:120_000
      ~size:(Dist.choice
               [ (0.85, Dist.uniform ~lo:1024 ~hi:16384);
                 (0.15, Dist.uniform ~lo:16384 ~hi:131072) ])
      ~lifetime:(churn_life ~short:350. ~long_weight:0.05 ~long:2000.)
      ~work_per_op:2_500 ~threads:8 ~cache_sensitivity:0.04 ~seed:213 ();
    p ~name:"pop2" ~ops:40_000 ~size:medium_mix
      ~lifetime:(Dist.exponential ~mean:1000.) ~work_per_op:8_000 ~threads:8
      ~cache_sensitivity:0.1 ~seed:214 ();
    p ~name:"imagick" ~ops:25_000
      ~size:
        (Dist.choice
           [ (0.9, medium_mix); (0.1, array_buffers ~lo:65536 ~hi:524288) ])
      ~lifetime:(Dist.exponential ~mean:700.)
      ~lifetime_large:(Dist.exponential ~mean:150.) (* pixel caches *)
      ~work_per_op:25_000 ~threads:8 ~cache_sensitivity:0.08 ~seed:215 ();
    p ~name:"nab" ~ops:60_000 ~size:medium_mix
      ~lifetime:(churn_life ~short:1500. ~long_weight:0.04 ~long:10000.)
      ~work_per_op:4_500 ~threads:8 ~cache_sensitivity:0.08 ~seed:216 ();
    p ~name:"fotonik3d" ~ops:1_500
      ~size:
        (Dist.choice
           [ (0.99, small_mix); (0.01, array_buffers ~lo:524288 ~hi:1048576) ])
      ~lifetime:(Dist.exponential ~mean:300.)
      ~lifetime_large:(Dist.constant 1_500)
      ~work_per_op:600_000 ~threads:8 ~seed:217 ();
    p ~name:"roms" ~ops:6_000
      ~size:
        (Dist.choice
           [ (0.97, small_mix); (0.03, array_buffers ~lo:131072 ~hi:524288) ])
      ~lifetime:(Dist.exponential ~mean:1000.)
      ~lifetime_large:(Dist.constant 6_000)
      ~work_per_op:120_000 ~threads:8 ~seed:218 ();
  ]

let names = List.map (fun q -> q.Profile.name) all
let find name = List.find (fun q -> q.Profile.name = name) all
let threaded name = (find name).Profile.threads > 1
