(** Synthetic profiles for the 19 C/C++ benchmarks of SPEC CPU2006 used
    by the paper (Section 5.2).

    Parameters encode each benchmark's published allocation character:
    how allocation-intensive it is relative to compute, its object size
    and lifetime distributions, phase behaviour and live-heap scale.
    Traces are scaled to simulator size (hundreds of thousands of events
    rather than hundreds of millions), which preserves relative overheads
    but not absolute sweep counts. *)

val all : Profile.t list
(** In the paper's figure order (alphabetical). *)

val find : string -> Profile.t
(** @raise Not_found if the benchmark name is unknown. *)

val names : string list
