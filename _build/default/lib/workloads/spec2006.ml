open Sim

(* Size distributions reflecting the published allocation profiles:
   tiny node-churn benchmarks (xalancbmk, omnetpp) vs. buffer-oriented
   ones (mcf, milc, bzip2). Lifetimes are chosen so that each profile's
   steady live heap (~ mean lifetime x mean size) matches the
   benchmark's scaled-down footprint. *)

let tiny_nodes =
  Dist.choice
    [
      (0.55, Dist.uniform ~lo:16 ~hi:96);
      (0.35, Dist.uniform ~lo:96 ~hi:256);
      (0.10, Dist.pareto ~shape:1.4 ~scale:256 ~cap:4096);
    ]

let small_mix =
  Dist.choice
    [
      (0.50, Dist.uniform ~lo:16 ~hi:128);
      (0.35, Dist.uniform ~lo:128 ~hi:512);
      (0.15, Dist.pareto ~shape:1.3 ~scale:512 ~cap:16384);
    ]

let medium_mix =
  Dist.choice
    [
      (0.55, Dist.uniform ~lo:64 ~hi:1024);
      (0.35, Dist.uniform ~lo:1024 ~hi:8192);
      (0.10, Dist.pareto ~shape:1.2 ~scale:8192 ~cap:262144);
    ]

let large_buffers ~lo ~hi = Dist.uniform ~lo ~hi

(* Lifetime with a long-lived minority: the long tail is what pins
   FFmalloc's pages and sets each benchmark's steady live heap. *)
let churn_life ~short ~long_weight ~long =
  Dist.choice
    [
      (1.0 -. long_weight, Dist.exponential ~mean:short);
      (long_weight, Dist.exponential ~mean:long);
    ]

let p = Profile.make ~suite:"spec2006"

let all =
  [
    p ~name:"astar" ~ops:60_000 ~size:small_mix
      ~lifetime:(churn_life ~short:2500. ~long_weight:0.03 ~long:20000.)
      ~work_per_op:6000 ~cache_sensitivity:0.1 ~seed:101 ();
    p ~name:"bzip2" ~ops:3_000
      ~size:
        (Dist.choice
           [ (0.995, small_mix); (0.005, large_buffers ~lo:262144 ~hi:1048576) ])
      ~lifetime:(Dist.exponential ~mean:400.)
      ~lifetime_large:(Dist.constant 3_000) (* working buffers live to exit *)
      ~work_per_op:400_000 ~cache_sensitivity:0.1 ~seed:102 ();
    p ~name:"dealII" ~ops:200_000 ~size:small_mix
      ~lifetime:(churn_life ~short:3000. ~long_weight:0.03 ~long:25000.)
      ~work_per_op:1300 ~cache_sensitivity:0.05 ~seed:103 ();
    p ~name:"gcc" ~ops:60_000
      ~size:(Dist.choice
               [ (0.55, Dist.uniform ~lo:64 ~hi:1024);
                 (0.35, Dist.uniform ~lo:1024 ~hi:8192);
                 (0.10, Dist.pareto ~shape:1.4 ~scale:2048 ~cap:15000) ])
      ~lifetime:(churn_life ~short:3500. ~long_weight:0.05 ~long:15000.)
      ~work_per_op:3000 ~phase_ops:(Some 12_000) ~phase_kill:0.9
      ~dangling_rate:0.030 ~back_pointer_rate:0.3 ~cache_sensitivity:0.04 ~seed:104 ();
    p ~name:"gobmk" ~ops:30_000 ~size:small_mix
      ~lifetime:(Dist.exponential ~mean:1500.) ~work_per_op:12_000
      ~cache_sensitivity:0.1 ~seed:105 ();
    p ~name:"h264ref" ~ops:25_000 ~size:medium_mix
      ~lifetime:(Dist.exponential ~mean:500.) ~work_per_op:18_000
      ~cache_sensitivity:0.08 ~seed:106 ();
    p ~name:"hmmer" ~ops:15_000 ~size:small_mix
      ~lifetime:(Dist.exponential ~mean:800.) ~work_per_op:25_000
      ~cache_sensitivity:0.1 ~seed:107 ();
    p ~name:"lbm" ~ops:1_500
      ~size:
        (Dist.choice
           [ (0.996, small_mix); (0.004, large_buffers ~lo:1048576 ~hi:2097152) ])
      ~lifetime:(Dist.exponential ~mean:200.)
      ~lifetime_large:(Dist.constant 1_500) (* the two lattice grids *)
      ~work_per_op:700_000 ~cache_sensitivity:0.05 ~seed:108 ();
    p ~name:"libquantum" ~ops:1_500
      ~size:
        (Dist.choice
           [ (0.992, small_mix); (0.008, large_buffers ~lo:131072 ~hi:524288) ])
      ~lifetime:(Dist.exponential ~mean:250.)
      ~lifetime_large:(Dist.constant 1_500) (* the quantum register *)
      ~work_per_op:500_000 ~cache_sensitivity:0.05 ~seed:109 ();
    p ~name:"mcf" ~ops:2_000
      ~size:
        (Dist.choice
           [ (0.98, small_mix); (0.02, large_buffers ~lo:131072 ~hi:393216) ])
      ~lifetime:(Dist.exponential ~mean:300.)
      ~lifetime_large:(Dist.constant 2_000) (* network arrays live to exit *)
      ~work_per_op:300_000 ~cache_sensitivity:0.3 ~seed:110 ();
    p ~name:"milc" ~ops:10_000
      ~size:
        (Dist.choice
           [ (0.90, small_mix); (0.10, large_buffers ~lo:16384 ~hi:131072) ])
      ~lifetime:(Dist.exponential ~mean:400.)
      ~lifetime_large:(Dist.exponential ~mean:500.) (* per-phase field buffers *)
      ~work_per_op:30_000 ~cache_sensitivity:0.1 ~seed:111 ();
    p ~name:"namd" ~ops:2_000 ~size:medium_mix
      ~lifetime:(Dist.exponential ~mean:900.) ~work_per_op:500_000
      ~cache_sensitivity:0.1 ~seed:112 ();
    p ~name:"omnetpp" ~ops:400_000 ~size:tiny_nodes
      ~lifetime:(churn_life ~short:15000. ~long_weight:0.03 ~long:100000.)
      ~work_per_op:500 ~dangling_rate:0.006 ~cache_sensitivity:0.05
      ~back_pointer_rate:0.35 ~leak_rate:0.02 ~seed:113 ();
    p ~name:"perlbench" ~ops:260_000 ~size:small_mix
      ~lifetime:(churn_life ~short:4000. ~long_weight:0.05 ~long:40000.)
      ~work_per_op:600 ~dangling_rate:0.006 ~cache_sensitivity:0.05
      ~leak_rate:0.015 ~seed:114 ();
    p ~name:"povray" ~ops:120_000 ~size:tiny_nodes
      ~lifetime:(Dist.exponential ~mean:350.) ~work_per_op:2_500
      ~cache_sensitivity:0.2 ~seed:115 ();
    p ~name:"sjeng" ~ops:2_000 ~size:small_mix
      ~lifetime:(Dist.exponential ~mean:400.) ~work_per_op:400_000
      ~cache_sensitivity:0.1 ~seed:116 ();
    p ~name:"soplex" ~ops:8_000
      ~size:
        (Dist.choice
           [ (0.85, small_mix);
             (0.15, Dist.pareto ~shape:1.2 ~scale:16384 ~cap:262144) ])
      ~lifetime:(Dist.exponential ~mean:800.)
      ~lifetime_large:(Dist.exponential ~mean:800.) (* LP matrices *)
      ~work_per_op:60_000 ~cache_sensitivity:0.1 ~seed:117 ();
    p ~name:"sphinx3" ~ops:300_000 ~size:tiny_nodes
      ~lifetime:(churn_life ~short:1000. ~long_weight:0.02 ~long:100000.)
      ~work_per_op:700 ~cache_sensitivity:0.10 ~leak_rate:0.03 ~seed:118 ();
    p ~name:"xalancbmk" ~ops:400_000 ~size:tiny_nodes
      ~lifetime:(churn_life ~short:5000. ~long_weight:0.04 ~long:60000.)
      ~work_per_op:170 ~phase_ops:(Some 70_000) ~phase_kill:0.9
      ~dangling_rate:0.008 ~back_pointer_rate:0.3 ~cache_sensitivity:0.55 ~leak_rate:0.025 ~seed:119 ();
  ]

let names = List.map (fun q -> q.Profile.name) all

let find name = List.find (fun q -> q.Profile.name = name) all
