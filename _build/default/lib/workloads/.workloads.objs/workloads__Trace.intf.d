lib/workloads/trace.mli: Harness Profile
