lib/workloads/mimalloc_bench.ml: Dist List Profile Sim
