lib/workloads/driver.mli: Harness Profile
