lib/workloads/harness.mli: Alloc Minesweeper
