lib/workloads/spec2017.ml: Dist List Profile Sim
