lib/workloads/trace.ml: Alloc Array Buffer Fun Harness Hashtbl Layout List Option Printf Profile Sim String Vmem
