lib/workloads/driver.ml: Alloc Array Float Harness Hashtbl Layout List Option Profile Sim Vmem
