lib/workloads/harness.ml: Alloc Ffmalloc Markus Minesweeper Ptrtrack Sim
