lib/workloads/profile.ml: Option Sim
