lib/workloads/profile.mli: Sim
