lib/workloads/spec2006.ml: Dist List Profile Sim
