lib/workloads/mimalloc_bench.mli: Profile
