open Sim

let tiny = Dist.uniform ~lo:16 ~hi:128
let small = Dist.uniform ~lo:16 ~hi:512
let sh_batch = Dist.uniform ~lo:64 ~hi:512

(* Stress tests keep almost no pointer structure: low density, few
   parent pointers. *)
let p =
  Profile.make ~suite:"mimalloc" ~pointer_density:0.3 ~back_pointer_rate:0.05

(* Stress profiles share: minimal compute (work_per_op tens of cycles),
   very high allocation rates, and mostly benign pointer behaviour
   (these tests do not leave dangling pointers around). *)

let all =
  [
    p ~name:"alloc-test1" ~ops:220_000 ~size:small
      ~lifetime:(Dist.exponential ~mean:2000.) ~work_per_op:55
      ~dangling_rate:0.0 ~false_pointer_rate:0.0005 ~seed:301 ();
    p ~name:"alloc-testN" ~ops:300_000 ~size:small
      ~lifetime:(Dist.exponential ~mean:2000.) ~work_per_op:45 ~threads:8
      ~dangling_rate:0.0 ~false_pointer_rate:0.0005 ~seed:302 ();
    p ~name:"barnes" ~ops:40_000 ~size:(Dist.uniform ~lo:64 ~hi:2048)
      ~lifetime:(Dist.exponential ~mean:15000.) ~work_per_op:4_000
      ~dangling_rate:0.0 ~seed:303 ();
    p ~name:"cache-scratch1" ~ops:4_000 ~size:(Dist.constant 64)
      ~lifetime:(Dist.exponential ~mean:500.) ~work_per_op:60_000
      ~dangling_rate:0.0 ~seed:304 ();
    p ~name:"cache-scratchN" ~ops:4_000 ~size:(Dist.constant 64)
      ~lifetime:(Dist.exponential ~mean:500.) ~work_per_op:55_000 ~threads:8
      ~dangling_rate:0.0 ~seed:305 ();
    p ~name:"cfrac" ~ops:260_000 ~size:tiny
      ~lifetime:(Dist.exponential ~mean:900.) ~work_per_op:90
      ~dangling_rate:0.0 ~seed:306 ();
    p ~name:"espresso" ~ops:180_000 ~size:small
      ~lifetime:(Dist.exponential ~mean:1500.) ~work_per_op:220
      ~dangling_rate:0.0 ~seed:307 ();
    p ~name:"glibc-simple" ~ops:300_000 ~size:tiny
      ~lifetime:(Dist.exponential ~mean:400.) ~work_per_op:35
      ~dangling_rate:0.0 ~seed:308 ();
    p ~name:"glibc-thread" ~ops:300_000 ~size:tiny
      ~lifetime:(Dist.exponential ~mean:250.) ~work_per_op:30 ~threads:16
      ~dangling_rate:0.0 ~seed:309 ();
    p ~name:"larsonN" ~ops:280_000 ~size:(Dist.uniform ~lo:16 ~hi:1024)
      ~lifetime:(Dist.exponential ~mean:8000.) ~work_per_op:60 ~threads:8
      ~dangling_rate:0.0 ~seed:310 ();
    p ~name:"larsonN-sized" ~ops:280_000 ~size:(Dist.uniform ~lo:16 ~hi:1024)
      ~lifetime:(Dist.exponential ~mean:8000.) ~work_per_op:55 ~threads:8
      ~dangling_rate:0.0 ~seed:311 ();
    p ~name:"mstressN" ~ops:240_000 ~size:small
      ~lifetime:(Dist.exponential ~mean:4000.) ~work_per_op:60 ~threads:8
      ~phase_ops:(Some 30_000) ~phase_kill:0.95 ~dangling_rate:0.0 ~seed:312 ();
    p ~name:"rptestN" ~ops:220_000 ~size:(Dist.uniform ~lo:16 ~hi:8192)
      ~lifetime:(Dist.exponential ~mean:3000.) ~work_per_op:75 ~threads:8
      ~dangling_rate:0.0 ~seed:313 ();
    p ~name:"sh6benchN" ~ops:260_000 ~size:sh_batch
      ~lifetime:(Dist.uniform ~lo:1 ~hi:3000) ~work_per_op:40 ~threads:8
      ~dangling_rate:0.0 ~seed:314 ();
    p ~name:"sh8benchN" ~ops:300_000 ~size:sh_batch
      ~lifetime:(Dist.uniform ~lo:1 ~hi:2000) ~work_per_op:35 ~threads:8
      ~dangling_rate:0.0 ~seed:315 ();
    p ~name:"xmalloc-testN" ~ops:320_000 ~size:tiny
      ~lifetime:(Dist.exponential ~mean:600.) ~work_per_op:25 ~threads:8
      ~dangling_rate:0.0 ~seed:316 ();
  ]

let names = List.map (fun q -> q.Profile.name) all
let find name = List.find (fun q -> q.Profile.name = name) all
