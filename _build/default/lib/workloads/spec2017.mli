(** Synthetic profiles for the SPECspeed2017 benchmarks of Section 5.6.

    Benchmarks marked with [threads > 1] correspond to the paper's
    starred (OpenMP) entries, run at the best of 4/8 threads. Threaded
    runs expose an extra effect: sweeper threads compete with the
    application for cores, which the driver charges as a contention
    stall proportional to background work. *)

val all : Profile.t list
val find : string -> Profile.t
val names : string list

val threaded : string -> bool
(** Whether the paper runs this benchmark under OpenMP (starred). *)
