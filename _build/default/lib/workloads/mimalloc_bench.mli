(** Profiles for the mimalloc-bench stress tests of Section 5.7.

    These are allocator torture tests: nearly all "work" is allocation
    and deallocation, violating MineSweeper's assumption that sweeps can
    keep up in the background. They exercise the allocation-pausing
    safety valve and the worst-case behaviours of all three schemes. *)

val all : Profile.t list
val find : string -> Profile.t
val names : string list
